#include "graph/task_graph.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "common/error.hpp"

namespace prs::graph {

NodeId TaskGraph::add_node(TaskNode n) {
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

NodeId TaskGraph::add_host(std::string name, std::string kind, int rank,
                           std::function<void()> fn) {
  TaskNode n;
  n.name = std::move(name);
  n.kind = std::move(kind);
  n.rank = rank;
  n.host = std::move(fn);
  return add_node(std::move(n));
}

NodeId TaskGraph::add_work(std::string name, std::string kind, int rank,
                           WorkFn fn) {
  PRS_REQUIRE(fn != nullptr, "add_work requires a coroutine factory");
  TaskNode n;
  n.name = std::move(name);
  n.kind = std::move(kind);
  n.rank = rank;
  n.work = std::move(fn);
  return add_node(std::move(n));
}

void TaskGraph::depend(NodeId node, NodeId before) {
  if (before == kNoNode) return;
  PRS_REQUIRE(node < nodes_.size() && before < nodes_.size(),
              "depend() on an unknown node id");
  PRS_REQUIRE(node != before, "a node cannot depend on itself");
  auto& deps = nodes_[node].deps;
  auto it = std::lower_bound(deps.begin(), deps.end(), before);
  if (it != deps.end() && *it == before) return;  // duplicate edge
  deps.insert(it, before);
  nodes_[before].outs.push_back(node);
  ++edges_;
}

void TaskGraph::depend_all(NodeId node, const std::vector<NodeId>& before) {
  for (NodeId b : before) depend(node, b);
}

void TaskGraph::validate() const {
  std::vector<std::size_t> indegree(nodes_.size(), 0);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    indegree[id] = nodes_[id].deps.size();
  }
  std::deque<NodeId> ready;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (indegree[id] == 0) ready.push_back(id);
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    NodeId id = ready.front();
    ready.pop_front();
    ++processed;
    for (NodeId out : nodes_[id].outs) {
      if (--indegree[out] == 0) ready.push_back(out);
    }
  }
  if (processed == nodes_.size()) return;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (indegree[id] > 0) {
      throw Error("task graph '" + name_ + "' has a dependency cycle through "
                  "node '" + nodes_[id].name + "'");
    }
  }
}

namespace {

const char* dot_shape(const std::string& kind) {
  if (kind == "host") return "ellipse";
  if (kind == "cpu") return "box";
  if (kind == "kernel") return "box3d";
  if (kind == "h2d" || kind == "d2h") return "parallelogram";
  if (kind == "net") return "diamond";
  return "oval";  // "delay" and anything else
}

std::string dot_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string TaskGraph::to_dot() const {
  std::string out;
  out += "digraph \"" + dot_escape(name_) + "\" {\n";
  out += "  rankdir=LR;\n";
  out += "  node [fontsize=10];\n";
  // Nodes grouped into one cluster per rank; ranks ascending, node ids
  // ascending within each cluster. std::map keeps rank order sorted.
  std::map<int, std::vector<NodeId>> by_rank;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    by_rank[nodes_[id].rank].push_back(id);
  }
  for (const auto& [rank, ids] : by_rank) {
    out += "  subgraph cluster_node" + std::to_string(rank) + " {\n";
    out += "    label=\"node" + std::to_string(rank) + "\";\n";
    for (NodeId id : ids) {
      const TaskNode& n = nodes_[id];
      out += "    n" + std::to_string(id) + " [label=\"" +
             dot_escape(n.name) + "\", shape=" + dot_shape(n.kind) + "];\n";
    }
    out += "  }\n";
  }
  // Edges sorted by (src, dst): deps are kept ascending, so emitting each
  // node's dep -> node pairs in id order yields (dst-major) order; collect
  // and sort to get the documented (src, dst) order instead.
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(edges_);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    for (NodeId dep : nodes_[id].deps) edges.emplace_back(dep, id);
  }
  std::sort(edges.begin(), edges.end());
  for (const auto& [src, dst] : edges) {
    out += "  n" + std::to_string(src) + " -> n" + std::to_string(dst) + ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace prs::graph
