#include "graph/executor.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "simtime/future.hpp"

namespace prs::graph {

GraphExecutor::GraphExecutor(sim::Simulator& sim, TaskGraph& graph)
    : sim_(sim), graph_(graph) {}

void GraphExecutor::start() {
  PRS_REQUIRE(!started_, "GraphExecutor::start called twice");
  started_ = true;
  graph_.validate();
  indegree_.assign(graph_.size(), 0);
  state_.assign(graph_.size(), kPending);
  for (NodeId id = 0; id < graph_.size(); ++id) {
    indegree_[id] = graph_.node(id).deps.size();
  }
  if (auto* tr = sim_.tracer(); tr != nullptr && tr->enabled()) {
    tr->metrics().counter("graph.nodes").add(
        static_cast<double>(graph_.size()));
    tr->metrics().counter("graph.edges").add(
        static_cast<double>(graph_.edge_count()));
  }
  // Initial ready set, ascending id order. dispatch() may cascade (host
  // chains complete inline), so re-check state before each dispatch.
  for (NodeId id = 0; id < graph_.size(); ++id) {
    if (indegree_[id] == 0 && state_[id] == kPending) dispatch(id);
  }
}

void GraphExecutor::record_span(const TaskNode& n, double t0, double t1) {
  auto* tr = sim_.tracer();
  if (tr == nullptr || !tr->enabled()) return;
  const obs::TrackId track =
      tr->track("node" + std::to_string(n.rank), "graph");
  tr->complete(track, n.name, "graph." + n.kind, t0, t1);
  tr->metrics().counter("graph.nodes_run").increment();
}

void GraphExecutor::dispatch(NodeId id) {
  TaskNode& n = graph_.node(id);
  state_[id] = kRunning;
  const double t0 = sim_.now();
  if (n.host) {
    try {
      n.host();
    } catch (...) {
      fail(std::current_exception(), n.name);
      // The node itself still completes (its side effects are void); its
      // successors were just cancelled, so nothing further dispatches.
      record_span(n, t0, sim_.now());
      complete(id);
      return;
    }
  }
  if (!n.work) {
    record_span(n, t0, sim_.now());
    complete(id);
    return;
  }
  // Work node: spawn the coroutine; completion arrives through the
  // promise's event, preserving simulator determinism.
  sim::Promise<sim::Unit> done(sim_);
  sim::Future<sim::Unit> fut = done.get_future();
  fut.on_ready([this, id, t0](const sim::Unit&) { finish_async(id, t0); });
  sim_.spawn(n.work(sim_, std::move(done)));
}

void GraphExecutor::finish_async(NodeId id, double t0) {
  record_span(graph_.node(id), t0, sim_.now());
  complete(id);
}

void GraphExecutor::complete(NodeId id) {
  state_[id] = kDone;
  ++finished_;
  ++completed_;
  const TaskNode& n = graph_.node(id);
  // Newly-ready successors, dispatched in ascending id order. Collect
  // first: a successor completing inline could in principle unblock
  // another entry of this list.
  std::vector<NodeId> ready;
  for (NodeId out : n.outs) {
    if (--indegree_[out] == 0 && state_[out] == kPending) {
      ready.push_back(out);
    }
  }
  std::sort(ready.begin(), ready.end());
  for (NodeId r : ready) {
    if (state_[r] == kPending) dispatch(r);
  }
}

void GraphExecutor::cancel_pending() {
  std::size_t n = 0;
  for (NodeId id = 0; id < state_.size(); ++id) {
    if (state_[id] == kPending) {
      state_[id] = kCancelled;
      ++finished_;
      ++cancelled_;
      ++n;
    }
  }
  if (n == 0) return;
  if (auto* tr = sim_.tracer(); tr != nullptr && tr->enabled()) {
    tr->metrics().counter("graph.cancelled").add(static_cast<double>(n));
  }
}

void GraphExecutor::fail(std::exception_ptr error, const std::string& where) {
  if (error_ != nullptr) return;  // first failure wins
  error_ = std::move(error);
  error_site_ = where;
  error_time_ = sim_.now();
  if (auto* tr = sim_.tracer(); tr != nullptr && tr->enabled()) {
    tr->metrics().counter("graph.failures").increment();
  }
  cancel_pending();
}

}  // namespace prs::graph
