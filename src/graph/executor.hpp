// Deterministic executor for a TaskGraph over the virtual-clock simulator.
//
// start() dispatches every zero-indegree node in ascending id order; as
// nodes complete, newly-ready successors are dispatched (again ascending).
// Host nodes run inline at dispatch (zero virtual time); work nodes are
// spawned as simulator processes and complete when they resolve their
// Promise<Unit>. Drive the simulator (sim.run() or step loop) after
// start(); the graph is drained when done().
//
// Failure model: the first failure wins. fail() records the exception and
// cancels every node not yet dispatched — in-flight work nodes still
// drain (their virtual time is already committed), but nothing new
// starts. rethrow_if_failed() resurfaces the recorded exception. This is
// what gives the runner *immediate* first-failure propagation instead of
// the old full-stage barrier: the throwing node's completion event carries
// the error, and no later sibling is dispatched after it.
//
// Cancellation: cancel_pending() is also exposed directly for early exit
// (e.g. a convergence check in a pipelined iteration window).
//
// Observability: with a tracer attached, every node records a
// "graph.<kind>" span on track (node<rank>, "graph"), and the registry
// counters graph.nodes_run / graph.cancelled / graph.failures tick.
#pragma once

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"
#include "simtime/simulator.hpp"

namespace prs::graph {

class GraphExecutor {
 public:
  GraphExecutor(sim::Simulator& sim, TaskGraph& graph);

  /// Validates the graph and dispatches the initial ready set. Call once.
  void start();

  /// True when every node has either completed or been cancelled.
  bool done() const { return finished_ == graph_.size(); }
  std::size_t completed() const { return completed_; }
  std::size_t cancelled() const { return cancelled_; }

  /// Marks every not-yet-dispatched node cancelled; in-flight work nodes
  /// still drain, but no new node starts.
  void cancel_pending();

  /// Records the first failure (later calls are ignored) and cancels all
  /// pending nodes. `where` names the failing node for diagnostics.
  void fail(std::exception_ptr error, const std::string& where);

  bool failed() const { return error_ != nullptr; }
  const std::string& failure_site() const { return error_site_; }
  /// Virtual time at which the first failure was recorded.
  double failure_time() const { return error_time_; }
  void rethrow_if_failed() const {
    if (error_) std::rethrow_exception(error_);
  }

 private:
  enum State : std::uint8_t { kPending, kRunning, kDone, kCancelled };

  void dispatch(NodeId id);
  void complete(NodeId id);
  void finish_async(NodeId id, double t0);
  void record_span(const TaskNode& n, double t0, double t1);

  sim::Simulator& sim_;
  TaskGraph& graph_;
  std::vector<std::size_t> indegree_;
  std::vector<State> state_;
  std::size_t finished_ = 0;
  std::size_t completed_ = 0;
  std::size_t cancelled_ = 0;
  bool started_ = false;
  std::exception_ptr error_;
  std::string error_site_;
  double error_time_ = 0.0;
};

}  // namespace prs::graph
