// Dependency-driven task graph (StarPU-style codelets over the simulator).
//
// A TaskGraph is a DAG of named nodes; an edge (a -> b) means "b may not
// start until a completed". Nodes come in two flavors:
//
//   * host nodes  — a plain std::function<void()> that runs synchronously
//     at dispatch time (zero virtual time). Used for merges, bookkeeping,
//     convergence checks and stage-gate callbacks.
//   * work nodes  — a coroutine factory (WorkFn) that the executor spawns
//     as a simulator process. The factory receives a Promise<Unit> it must
//     resolve when the node's virtual-time work (CPU task, GPU kernel,
//     PCI-E copy, fabric message, plain delay) is done.
//
// The graph is a pure description: building it performs no simulation.
// GraphExecutor (graph/executor.hpp) walks it deterministically.
//
// Determinism contract: node ids are assigned in insertion order, ready
// nodes are dispatched in ascending id order, and to_dot() emits nodes and
// edges in sorted order — two identical builds produce byte-identical DOT
// and byte-identical execution schedules.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "simtime/future.hpp"
#include "simtime/process.hpp"
#include "simtime/simulator.hpp"

namespace prs::graph {

using NodeId = std::size_t;

/// Sentinel for "no dependency" — depend() on it is a no-op, which lets
/// builders thread an optional predecessor without branching.
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Coroutine factory for a work node. Spawned by the executor when the
/// node becomes ready; must resolve `done` exactly once (even on the
/// error path — failures are reported via GraphExecutor::fail instead of
/// leaking an unresolved promise).
using WorkFn =
    std::function<sim::Process(sim::Simulator&, sim::Promise<sim::Unit>)>;

/// One codelet instance. `kind` is a coarse class used for tracing and
/// DOT styling: "host", "cpu", "kernel", "h2d", "d2h", "net", "delay".
struct TaskNode {
  std::string name;
  std::string kind;
  int rank = 0;  // owning fat node (trace track / DOT cluster)
  std::function<void()> host;
  WorkFn work;
  std::vector<NodeId> deps;  // predecessors, ascending
  std::vector<NodeId> outs;  // successors, insertion order
};

class TaskGraph {
 public:
  explicit TaskGraph(std::string name) : name_(std::move(name)) {}

  /// Adds a host node (runs synchronously at dispatch, zero virtual time).
  NodeId add_host(std::string name, std::string kind, int rank,
                  std::function<void()> fn);

  /// Adds a work node (spawned as a simulator process when ready).
  NodeId add_work(std::string name, std::string kind, int rank, WorkFn fn);

  /// Adds the edge `before -> node`. No-op when before == kNoNode;
  /// duplicate edges are coalesced.
  void depend(NodeId node, NodeId before);
  void depend_all(NodeId node, const std::vector<NodeId>& before);

  std::size_t size() const { return nodes_.size(); }
  std::size_t edge_count() const { return edges_; }
  bool empty() const { return nodes_.empty(); }
  const std::string& name() const { return name_; }
  const TaskNode& node(NodeId id) const { return nodes_[id]; }
  TaskNode& node(NodeId id) { return nodes_[id]; }

  /// Throws prs::Error when the graph has a dependency cycle (Kahn's
  /// algorithm); names one node on the cycle.
  void validate() const;

  /// Graphviz DOT rendering: nodes in id order grouped into one cluster
  /// per rank, edges sorted by (src, dst). Byte-deterministic.
  std::string to_dot() const;

 private:
  NodeId add_node(TaskNode n);

  std::string name_;
  std::vector<TaskNode> nodes_;
  std::size_t edges_ = 0;
};

}  // namespace prs::graph
