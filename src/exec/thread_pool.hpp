// Real multicore host execution: a process-wide work-stealing thread pool.
//
// Everything else in this repository runs against the *virtual* clock — the
// simulator models multicore speed while the actual numeric kernels ran on a
// single host thread. This pool closes that gap: it drives the real map /
// accumulate loops of the apps (and the blocked GEMM in linalg) across all
// host cores, exactly as the paper's CPU daemon drives "one pthread per CPU
// core".
//
// Determinism contract (DESIGN.md "Host execution"):
//   * The pool never decides *what* is computed, only *where*. Callers
//     (exec/parallel.hpp) decompose a range into fixed chunks whose
//     boundaries depend on the range and grain only — never on the thread
//     count — and combine chunk results in a fixed order. Workers race for
//     chunk *indices*; every index produces its result into its own slot.
//   * Consequently every parallel_for/parallel_reduce call produces
//     byte-identical results for any thread count, including 1.
//
// Sizing: PRS_HOST_THREADS=<n> (or prs_run --host-threads=<n> /
// ThreadPool::configure) overrides std::thread::hardware_concurrency().
// The pool is lazily started on first use; `threads()` counts the calling
// thread, so n threads means n-1 workers plus the caller participating.
//
// Nested parallelism: a parallel region entered from inside another
// parallel region executes its chunks inline on the current thread (same
// chunk decomposition, same combine order — same bytes), so kernels may be
// composed freely without deadlock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "numa/topology.hpp"

namespace prs::exec {

/// Cumulative pool counters (monotonic since process start / reset_stats).
/// Exported through prs::obs as the "exec.pool.*" metrics. Chunk/steal
/// attribution depends on OS scheduling, so unlike the virtual-clock
/// metrics these are *not* byte-reproducible across runs.
struct PoolStats {
  std::uint64_t jobs = 0;             ///< parallel regions executed
  std::uint64_t nested_jobs = 0;      ///< regions flattened to inline serial
  std::uint64_t chunks = 0;           ///< chunks executed, all lanes
  std::uint64_t stolen_chunks = 0;    ///< chunks taken from another lane
  std::uint64_t steals_local = 0;     ///< ... from a lane on the same socket
  std::uint64_t steals_remote = 0;    ///< ... from a lane on another socket
  std::uint64_t caller_chunks = 0;    ///< chunks run by the submitting thread
  std::uint64_t lane_engagements = 0; ///< sum over jobs of lanes that ran >=1 chunk
  std::uint64_t lane_slots = 0;       ///< sum over jobs of lanes available
  int threads = 1;                    ///< configured concurrency (incl. caller)
  int sockets = 1;                    ///< socket groups in the active lane map
  int pinned_lanes = 0;               ///< worker lanes pinned to a CPU

  /// Mean fraction of available lanes that did useful work per parallel
  /// region. Slots are accumulated per job, so the ratio stays in [0, 1]
  /// even when the pool is reconfigured between jobs.
  double occupancy() const {
    return lane_slots > 0 ? static_cast<double>(lane_engagements) /
                                static_cast<double>(lane_slots)
                          : 0.0;
  }
};

namespace detail {

/// One parallel region: `run_chunk(i)` must be safe to call concurrently
/// for distinct `i` in [0, chunks). Exceptions are captured per chunk; the
/// one with the lowest chunk index is rethrown to the submitter so failure
/// reporting is deterministic too.
class ParallelJob {
 public:
  /// `steal_allowed = false` turns stealing off for this job: every lane
  /// runs exactly its own block and nothing else. With chunks == lanes
  /// this guarantees chunk i executes *on* lane i — the placement tool
  /// prefault_first_touch needs (completion then requires every worker
  /// to participate, so keep such jobs short).
  explicit ParallelJob(std::size_t chunks, bool steal_allowed = true)
      : chunks_(chunks), steal_allowed_(steal_allowed) {}
  virtual ~ParallelJob() = default;
  virtual void run_chunk(std::size_t chunk) = 0;

  std::size_t chunks() const { return chunks_; }
  bool steal_allowed() const { return steal_allowed_; }

 private:
  std::size_t chunks_;
  bool steal_allowed_;
};

}  // namespace detail

class ThreadPool {
 public:
  /// The process-wide pool (lazily constructed, workers lazily spawned).
  static ThreadPool& instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured concurrency including the calling thread (>= 1).
  int threads() const { return threads_; }

  /// Re-sizes the pool to `n` threads total (0 = re-read PRS_HOST_THREADS /
  /// hardware_concurrency). Joins existing workers first; must not be
  /// called from inside a parallel region.
  void configure(int n);

  /// Joins all workers. The next parallel region restarts them lazily.
  void shutdown();

  /// True on a pool worker thread or inside a parallel region (nested
  /// regions run inline).
  static bool in_parallel_region();

  /// The calling thread's lane index: 0 for the submitting thread (and any
  /// thread outside the pool), 1..threads-1 for workers. Stable for the
  /// lifetime of a worker and across nested regions (they run inline), so
  /// per-lane data structures — numa::LaneKvStore — can be indexed by it:
  /// distinct concurrent threads always report distinct lanes.
  static int current_lane();

  /// Resolves the default thread count: PRS_HOST_THREADS if set and valid,
  /// else std::thread::hardware_concurrency(), clamped to [1, kMaxThreads].
  static int default_threads();

  static constexpr int kMaxThreads = 256;

  PoolStats stats() const;
  void reset_stats();

  /// Executes `job` across the pool; returns when every chunk has run.
  /// Rethrows the lowest-chunk-index exception, if any. Called by the
  /// parallel_for / parallel_reduce wrappers, not by end users.
  void run(detail::ParallelJob& job);

 private:
  ThreadPool();

  /// Per-lane chunk queue for the current job: lane w owns indices
  /// [base, base + next_end) and claims them via fetch_add on `next`;
  /// thieves claim from the same end (claim order is irrelevant — results
  /// land in per-chunk slots).
  struct Lane {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
    std::size_t base = 0;
    std::atomic<std::uint64_t> executed{0};
  };

  void start_workers_locked();
  void stop_workers();
  /// Samples numa::enabled()/active_topology() and, when the placement
  /// mode changed since the workers started, joins them so the next
  /// start_workers_locked() rebuilds the lane map (and re-pins) under the
  /// new mode. Called at top-level submit, before mutex_ is taken.
  void refresh_placement();
  void worker_loop(int lane);
  /// Claims and runs chunks for `lane` until the job is drained; returns
  /// the number of chunks this lane executed.
  std::uint64_t drain(int lane);
  void execute_chunk(std::size_t chunk);

  std::mutex mutex_;                       // guards job hand-off + lifecycle
  std::condition_variable job_cv_;         // workers wait for a new job
  std::condition_variable done_cv_;        // submitter waits for completion
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  detail::ParallelJob* job_ = nullptr;     // current job (nullptr = idle)
  std::uint64_t generation_ = 0;           // bumped per job; wakes workers
  std::atomic<std::size_t> done_chunks_{0};
  std::size_t total_chunks_ = 0;
  std::size_t checked_in_ = 0;   // workers that entered the current job
  std::size_t checked_out_ = 0;  // ... and left the lane arrays again
  std::exception_ptr error_;               // lowest-chunk exception
  std::size_t error_chunk_ = 0;
  bool stopping_ = false;
  int threads_ = 1;
  std::mutex submit_mutex_;  // serializes concurrent top-level submitters

  /// Per-lane placement decisions for the current worker generation —
  /// socket groups, steal order, pin targets. Rebuilt by
  /// start_workers_locked() from (threads_, NUMA mode); flat (pre-NUMA
  /// behaviour) when NUMA mode is off. Guarded by submit_mutex_ +
  /// worker lifecycle: workers only read it between check-in and
  /// check-out of a job.
  numa::LaneMap lane_map_;
  bool numa_applied_ = false;      // lane_map_ built from applied_topo_
  numa::Topology applied_topo_;    // topology lane_map_ was built from

  // Stats (guarded by stats_mutex_ where not atomic).
  mutable std::mutex stats_mutex_;
  PoolStats stats_;
};

}  // namespace prs::exec
