#include "exec/thread_pool.hpp"

#include <cstdlib>
#include <string>
#include <utility>

#include "common/error.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace prs::exec {
namespace {

/// True while the current thread is executing inside a parallel region
/// (worker lane or participating submitter). Nested regions check this to
/// run inline instead of deadlocking on the single job slot.
thread_local bool tl_in_region = false;

/// The thread's lane index: workers set theirs once at thread start;
/// everything else (the submitter included) is lane 0. Nested regions run
/// inline, so the value is stable across arbitrary kernel composition.
thread_local int tl_lane = 0;

/// Best-effort pin of `worker` to `cpu`. Failure (cgroup masks, exotic
/// kernels, non-Linux hosts) is the documented clean fallback: the lane
/// keeps its socket group and steal order, it just floats.
bool pin_thread(std::thread& worker, int cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(worker.native_handle(), sizeof(set), &set) ==
         0;
#else
  (void)worker;
  (void)cpu;
  return false;
#endif
}

}  // namespace

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() { threads_ = stats_.threads = default_threads(); }

ThreadPool::~ThreadPool() { stop_workers(); }

bool ThreadPool::in_parallel_region() { return tl_in_region; }

int ThreadPool::current_lane() { return tl_lane; }

int ThreadPool::default_threads() {
  long n = 0;
  if (const char* env = std::getenv("PRS_HOST_THREADS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    n = std::strtol(env, &end, 10);
    if (end == nullptr || *end != '\0') n = 0;  // malformed: fall through
  }
  if (n <= 0) n = static_cast<long>(std::thread::hardware_concurrency());
  if (n <= 0) n = 1;
  if (n > kMaxThreads) n = kMaxThreads;
  return static_cast<int>(n);
}

void ThreadPool::configure(int n) {
  PRS_REQUIRE(!tl_in_region,
              "ThreadPool::configure called inside a parallel region");
  PRS_REQUIRE(n >= 0 && n <= kMaxThreads,
              "host thread count out of range [0, 256]");
  stop_workers();
  std::lock_guard<std::mutex> lock(mutex_);
  threads_ = n == 0 ? default_threads() : n;
  std::lock_guard<std::mutex> slock(stats_mutex_);
  stats_.threads = threads_;
}

void ThreadPool::shutdown() {
  PRS_REQUIRE(!tl_in_region,
              "ThreadPool::shutdown called inside a parallel region");
  stop_workers();
}

void ThreadPool::stop_workers() {
  std::vector<std::thread> joining;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    joining.swap(workers_);
  }
  job_cv_.notify_all();
  for (auto& w : joining) w.join();
  std::lock_guard<std::mutex> lock(mutex_);
  stopping_ = false;
}

void ThreadPool::refresh_placement() {
  const bool want = numa::enabled();
  if (!want) {
    // NUMA off (the default): nothing to compare — but if the running
    // workers were placed under NUMA mode, restart them flat.
    if (numa_applied_ && !workers_.empty()) stop_workers();
    numa_applied_ = false;
    return;
  }
  numa::Topology topo = numa::active_topology();
  if (numa_applied_ && topo == applied_topo_) return;
  if (!workers_.empty()) stop_workers();
  numa_applied_ = true;
  applied_topo_ = std::move(topo);
}

void ThreadPool::start_workers_locked() {
  // Placement decisions for this worker generation: socket groups, steal
  // order and pin targets all come from the lane map — flat (pre-NUMA
  // behaviour) unless NUMA mode applied a topology.
  lane_map_ = numa_applied_ ? numa::build_lane_map(threads_, applied_topo_)
                            : numa::flat_lane_map(threads_);
  // Lane 0 is the submitting thread; lanes 1..threads-1 get workers.
  lanes_.clear();
  for (int i = 0; i < threads_; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  int pinned = 0;
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
    // Pin from outside before the worker runs any chunk. Lane 0 (the
    // caller's own thread) is never pinned — the pool must not change
    // the affinity of a thread it does not own.
    if (lane_map_.pin && lane_map_.cpu_of[static_cast<std::size_t>(i)] >= 0 &&
        pin_thread(workers_.back(),
                   lane_map_.cpu_of[static_cast<std::size_t>(i)])) {
      ++pinned;
    }
  }
  std::lock_guard<std::mutex> slock(stats_mutex_);
  stats_.sockets = lane_map_.sockets;
  stats_.pinned_lanes = pinned;
}

void ThreadPool::worker_loop(int lane) {
  tl_lane = lane;
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      // A worker that wakes after the job already drained (or was beaten to
      // every chunk) must not touch the lanes of a later job.
      if (job_ == nullptr) continue;
      ++checked_in_;
    }
    tl_in_region = true;
    const std::uint64_t ran = drain(lane);
    tl_in_region = false;
    if (ran > 0) {
      lanes_[static_cast<std::size_t>(lane)]->executed.store(
          ran, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++checked_out_;
    }
    done_cv_.notify_all();
  }
}

std::uint64_t ThreadPool::drain(int lane) {
  // Own lane first, then the rest of the lane map's probe order: the rest
  // of this lane's socket group, then remote sockets — under the flat map
  // this degenerates to the original (lane + probe) % n round-robin.
  // Chunk claim order is irrelevant for results: each chunk fills its own
  // output slot and combination order is fixed by the caller.
  const auto& order = lane_map_.probe_order[static_cast<std::size_t>(lane)];
  const int my_socket = lane_map_.socket_of[static_cast<std::size_t>(lane)];
  const bool steal = job_->steal_allowed();
  std::uint64_t ran = 0;
  std::uint64_t local = 0;
  std::uint64_t remote = 0;
  for (const int victim : order) {
    if (!steal && victim != lane) break;  // no-steal job: own block only
    Lane& q = *lanes_[static_cast<std::size_t>(victim)];
    for (;;) {
      const std::size_t claimed =
          q.next.fetch_add(1, std::memory_order_relaxed);
      if (claimed >= q.end) break;
      execute_chunk(q.base + claimed);
      ++ran;
      if (victim != lane) {
        const int vs = lane_map_.socket_of[static_cast<std::size_t>(victim)];
        if (vs == my_socket) {
          ++local;
        } else {
          ++remote;
        }
      }
    }
  }
  if (local + remote > 0) {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    stats_.stolen_chunks += local + remote;
    stats_.steals_local += local;
    stats_.steals_remote += remote;
  }
  return ran;
}

void ThreadPool::execute_chunk(std::size_t chunk) {
  try {
    job_->run_chunk(chunk);
  } catch (...) {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    if (error_ == nullptr || chunk < error_chunk_) {
      error_ = std::current_exception();
      error_chunk_ = chunk;
    }
  }
  if (done_chunks_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      total_chunks_) {
    // Last chunk anywhere: wake the submitter (lock pairs with its wait).
    std::lock_guard<std::mutex> lock(mutex_);
    done_cv_.notify_all();
  }
}

void ThreadPool::run(detail::ParallelJob& job) {
  const std::size_t n = job.chunks();
  if (n == 0) return;

  // Nested region, or a 1-thread pool: run every chunk inline. Same chunk
  // decomposition, same combination order (owned by the caller) — same
  // bytes as the multi-threaded path.
  if (tl_in_region || threads_ <= 1) {
    const bool nested = tl_in_region;
    tl_in_region = true;
    std::exception_ptr first;
    std::size_t first_chunk = 0;
    for (std::size_t c = 0; c < n; ++c) {
      try {
        job.run_chunk(c);
      } catch (...) {
        if (first == nullptr || c < first_chunk) {
          first = std::current_exception();
          first_chunk = c;
        }
      }
    }
    tl_in_region = nested;
    {
      std::lock_guard<std::mutex> slock(stats_mutex_);
      if (nested) {
        ++stats_.nested_jobs;
      } else {
        ++stats_.jobs;
        ++stats_.lane_engagements;
        ++stats_.lane_slots;
      }
      stats_.chunks += n;
      stats_.caller_chunks += n;
    }
    if (first != nullptr) std::rethrow_exception(first);
    return;
  }

  // Only one top-level region runs at a time; concurrent submitters queue.
  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  refresh_placement();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    PRS_CHECK(job_ == nullptr, "ThreadPool::run re-entered");
    if (workers_.empty()) start_workers_locked();

    // Balanced fixed split of [0, n) over the lanes; workers steal the
    // remainder from busy lanes.
    const auto lanes = static_cast<std::size_t>(threads_);
    const std::size_t per = n / lanes;
    const std::size_t rem = n % lanes;
    std::size_t base = 0;
    for (std::size_t w = 0; w < lanes; ++w) {
      Lane& q = *lanes_[w];
      const std::size_t len = per + (w < rem ? 1 : 0);
      q.base = base;
      q.end = len;
      q.next.store(0, std::memory_order_relaxed);
      q.executed.store(0, std::memory_order_relaxed);
      base += len;
    }
    job_ = &job;
    done_chunks_.store(0, std::memory_order_relaxed);
    total_chunks_ = n;
    checked_in_ = 0;
    checked_out_ = 0;
    {
      std::lock_guard<std::mutex> slock(stats_mutex_);
      error_ = nullptr;
    }
    ++generation_;
  }
  job_cv_.notify_all();

  // The submitter participates as lane 0, then waits both for every chunk
  // to finish and for every checked-in worker to leave the lane arrays.
  tl_in_region = true;
  const std::uint64_t ran = drain(0);
  tl_in_region = false;

  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return done_chunks_.load(std::memory_order_acquire) == total_chunks_ &&
             checked_in_ == checked_out_;
    });
    job_ = nullptr;
  }
  {
    std::lock_guard<std::mutex> slock(stats_mutex_);
    err = error_;
    error_ = nullptr;
    ++stats_.jobs;
    stats_.lane_slots += static_cast<std::uint64_t>(threads_);
    stats_.chunks += n;
    stats_.caller_chunks += ran;
    if (ran > 0) ++stats_.lane_engagements;
    for (std::size_t w = 1; w < lanes_.size(); ++w) {
      if (lanes_[w]->executed.load(std::memory_order_relaxed) > 0) {
        ++stats_.lane_engagements;
      }
    }
  }
  if (err != nullptr) std::rethrow_exception(err);
}

PoolStats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void ThreadPool::reset_stats() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  const int sockets = stats_.sockets;
  const int pinned = stats_.pinned_lanes;
  stats_ = PoolStats{};
  stats_.threads = threads_;
  // Gauges describing the current worker generation, not counters.
  stats_.sockets = sockets;
  stats_.pinned_lanes = pinned;
}

}  // namespace prs::exec
