// Deterministic parallel-for / parallel-reduce on top of exec::ThreadPool.
//
// The determinism contract (DESIGN.md "Host execution"):
//   * A range [begin, end) with grain g is decomposed into
//     ceil(n / g) fixed chunks — chunk i covers
//     [begin + i*g, min(begin + (i+1)*g, end)). The decomposition depends
//     only on (n, g), never on the thread count.
//   * parallel_reduce evaluates one partial per chunk (body applied to a
//     copy of the identity) and combines the partials with a fixed-shape
//     binary tree in ascending chunk order. Which thread computed a partial
//     is irrelevant; the combination tree is the same for 1 thread and 64.
//   * Exceptions escaping a chunk body are rethrown at the call site; when
//     several chunks throw, the lowest chunk index wins (deterministic).
//
// Grain-size choice mirrors the paper's MinBs floor for GPU blocks
// (DESIGN.md): chunks must be big enough to amortize hand-off, small enough
// to load-balance. Call sites pass an explicit per-kernel grain; the
// kDefaultGrain fallback suits O(100 flop)/item loops.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "exec/thread_pool.hpp"

namespace prs::exec {

inline constexpr std::size_t kDefaultGrain = 1024;

/// Number of fixed chunks for a range of `n` items at grain `g`.
inline std::size_t chunk_count(std::size_t n, std::size_t grain) {
  PRS_REQUIRE(grain > 0, "parallel grain must be positive");
  // 1 + (n-1)/g, not (n+g-1)/g: the latter wraps for grain near
  // SIZE_MAX and would report 0 chunks for a non-empty range.
  return n == 0 ? 0 : 1 + (n - 1) / grain;
}

namespace detail {

template <typename Body>
class ForJob final : public ParallelJob {
 public:
  ForJob(std::size_t begin, std::size_t end, std::size_t grain, Body& body)
      : ParallelJob(chunk_count(end - begin, grain)),
        begin_(begin),
        end_(end),
        grain_(grain),
        body_(body) {}

  void run_chunk(std::size_t chunk) override {
    const std::size_t cb = begin_ + chunk * grain_;
    // end_ - cb > grain_, not cb + grain_ < end_: the sum wraps when the
    // range sits near SIZE_MAX and would hand out a truncated chunk.
    const std::size_t ce = end_ - cb > grain_ ? cb + grain_ : end_;
    body_(cb, ce);
  }

 private:
  std::size_t begin_, end_, grain_;
  Body& body_;
};

template <typename T, typename Body>
class ReduceJob final : public ParallelJob {
 public:
  ReduceJob(std::size_t begin, std::size_t end, std::size_t grain,
            const T& identity, Body& body, std::vector<T>& partials)
      : ParallelJob(chunk_count(end - begin, grain)),
        begin_(begin),
        end_(end),
        grain_(grain),
        identity_(identity),
        body_(body),
        partials_(partials) {}

  void run_chunk(std::size_t chunk) override {
    const std::size_t cb = begin_ + chunk * grain_;
    const std::size_t ce = end_ - cb > grain_ ? cb + grain_ : end_;
    partials_[chunk] = body_(cb, ce, identity_);
  }

 private:
  std::size_t begin_, end_, grain_;
  const T& identity_;
  Body& body_;
  std::vector<T>& partials_;
};

}  // namespace detail

/// Runs body(chunk_begin, chunk_end) over every fixed chunk of
/// [begin, end). The body must only write state disjoint between chunks
/// (e.g. output rows indexed by the chunk's range).
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Body&& body) {
  if (begin >= end) return;
  detail::ForJob<Body> job(begin, end, grain, body);
  ThreadPool::instance().run(job);
}

/// Reduces [begin, end): per fixed chunk evaluates
/// partial = body(chunk_begin, chunk_end, identity) and combines the
/// partials with combine(left, right) in a fixed ascending-index binary
/// tree. Returns identity for an empty range.
template <typename T, typename Body, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T identity, Body&& body, Combine&& combine) {
  if (begin >= end) return identity;
  const std::size_t chunks = chunk_count(end - begin, grain);
  std::vector<T> partials(chunks, identity);
  detail::ReduceJob<T, Body> job(begin, end, grain, identity, body, partials);
  ThreadPool::instance().run(job);

  // Fixed-shape tree fold: combine partials (i, i+stride) in ascending
  // order, doubling the stride — the same association for every thread
  // count (and byte-identical to running the chunks serially).
  for (std::size_t stride = 1; stride < chunks; stride *= 2) {
    for (std::size_t i = 0; i + stride < chunks; i += 2 * stride) {
      partials[i] = combine(std::move(partials[i]),
                            std::move(partials[i + stride]));
    }
  }
  return std::move(partials[0]);
}

}  // namespace prs::exec
