#include "exec/prefault.hpp"

#include <vector>

#include "exec/thread_pool.hpp"
#include "numa/topology.hpp"

namespace prs::exec {
namespace {

/// Chunk i touches the plan extents owned by lane i (at most one today,
/// but the loop keeps this robust to future multi-extent plans).
class PrefaultJob : public detail::ParallelJob {
 public:
  PrefaultJob(const unsigned char* base,
              std::vector<numa::PrefaultExtent> plan, std::size_t lanes)
      : ParallelJob(lanes, /*steal_allowed=*/false),
        base_(base),
        plan_(std::move(plan)) {}

  void run_chunk(std::size_t chunk) override {
    for (const numa::PrefaultExtent& e : plan_) {
      if (static_cast<std::size_t>(e.lane) != chunk) continue;
      const volatile unsigned char* p = base_;
      unsigned char sink = 0;
      for (std::size_t b = e.begin; b < e.end;
           b += numa::kPrefaultPageBytes) {
        sink = static_cast<unsigned char>(sink + p[b]);
      }
      if (e.end > e.begin) {
        sink = static_cast<unsigned char>(sink + p[e.end - 1]);
      }
      sink_ = sink;  // volatile reads cannot be elided; keep sink anyway
    }
  }

 private:
  const unsigned char* base_;
  std::vector<numa::PrefaultExtent> plan_;
  volatile unsigned char sink_ = 0;
};

}  // namespace

void prefault_first_touch(const void* data, std::size_t bytes) {
  if (data == nullptr || bytes == 0) return;
  if (!numa::enabled()) return;
  // Inside a region the chunks would run inline on one lane — the plan's
  // placement promise cannot hold, so skip rather than mislead.
  if (ThreadPool::in_parallel_region()) return;
  ThreadPool& pool = ThreadPool::instance();
  const auto lanes = static_cast<std::size_t>(pool.threads());
  std::vector<numa::PrefaultExtent> plan =
      numa::plan_prefault(bytes, static_cast<int>(lanes),
                          numa::active_topology());
  if (plan.empty()) return;
  PrefaultJob job(static_cast<const unsigned char*>(data), std::move(plan),
                  lanes);
  pool.run(job);
}

}  // namespace prs::exec
