// First-touch prefaulting of job inputs (NUMA mode's placement tool).
//
// Linux places an anonymous page on the socket of the CPU that first
// *writes* it. The pool's NUMA mode therefore wants each input extent
// touched by the lane that will process it — numa::plan_prefault computes
// the extents, and this module executes the plan as a *no-steal* pool job
// (chunks == lanes, stealing off), so extent i really is walked on lane i
// and, with pinning, on lane i's socket.
//
// Honesty about what a read-through achieves: inputs handed to a job are
// typically already written by the caller, so their pages already live
// wherever the writing thread ran — walking them from the owning lane
// then warms that socket's caches and TLBs, it does not migrate pages.
// True first-touch applies to memory whose pages are still unmapped when
// the plan runs; the per-lane kv-stores get exactly that for free, because
// each store grows inside its owner lane (numa/kv_store.hpp). The plan
// itself (which lane touches which extent, on which socket) is pure data
// and is what tests/numa_test.cpp asserts.
//
// Determinism: touching memory computes nothing — PRS_NUMA on/off and any
// topology produce byte-identical job results (swept in tests).
#pragma once

#include <cstddef>

namespace prs::exec {

/// Walks [data, data + bytes) page-by-page from the lanes assigned by
/// numa::plan_prefault, via a no-steal pool job. Volatile reads only —
/// safe on const inputs, never alters contents. No-op when NUMA mode is
/// off, when `bytes == 0`, or when called inside a parallel region.
void prefault_first_touch(const void* data, std::size_t bytes);

}  // namespace prs::exec
