// Internal: the per-level kernel tables (one per TU). kernels_for() in
// dispatch.cpp is the only consumer; user code goes through
// simd::active_kernels().
#pragma once

#include "simd/kernels.hpp"

namespace prs::simd {

const Kernels& scalar_kernels();
const Kernels& avx2_kernels();    // scalar table if the TU lacked -mavx2
const Kernels& avx512_kernels();  // scalar table if the TU lacked -mavx512f

}  // namespace prs::simd
