// Scalar reference implementations of every simd kernel — the ground
// truth the vector TUs must match bit-for-bit (deterministic tier) or to
// ULP bounds (fma tier). Header-only so the AVX2/AVX-512 TUs can reuse
// them for tail lanes; the arithmetic is plain IEEE multiply/add in a
// fixed order, so recompiling them per-TU cannot change the results
// (those TUs use -ffp-contract=off, and reductions are never
// auto-reassociated without -ffast-math).
//
// The loops mirror the original app/linalg code they replaced (cmeans.cpp
// fuzzy_weights, gmm.cpp log_gaussian, blas.hpp gemm/dot, stencil.cpp
// relax_rows) operation-for-operation: that is what makes PRS_SIMD=scalar
// byte-identical to the pre-simd runner.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace prs::simd::ref {

inline void dist2_block(const double* x, const double* ct, std::size_t m,
                        std::size_t d, double* out) {
  for (std::size_t j = 0; j < m; ++j) {
    double acc = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double diff = x[c] - ct[c * m + j];
      acc += diff * diff;
    }
    out[j] = acc;
  }
}

inline void quad_block(const double* x, const double* mu_t,
                       const double* var_t, std::size_t m, std::size_t d,
                       double* out) {
  for (std::size_t j = 0; j < m; ++j) {
    double quad = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double diff = x[c] - mu_t[c * m + j];
      quad += diff * diff / var_t[c * m + j];
    }
    out[j] = quad;
  }
}

inline void axpy_acc(double* acc, const double* x, double w, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += w * x[i];
}

inline void add_acc(double* acc, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += x[i];
}

inline void moments_acc(double* p1, double* p2, const double* x, double r,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    p1[i] += r * x[i];
    p2[i] += r * x[i] * x[i];  // (r*x)*x, the original gmm order
  }
}

inline void scale(double* v, double s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) v[i] *= s;
}

inline void row_dots(const double* a, std::size_t lda, std::size_t rows,
                     std::size_t d, const double* x, double* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* row = a + r * lda;
    double acc = 0.0;
    for (std::size_t c = 0; c < d; ++c) acc += row[c] * x[c];
    out[r] = acc;
  }
}

inline double stencil_row(double* out, const double* mid, const double* up,
                          const double* down, std::size_t cols) {
  double max_update = 0.0;
  for (std::size_t c = 1; c + 1 < cols; ++c) {
    const double v = 0.25 * (up[c] + down[c] + mid[c - 1] + mid[c + 1]);
    out[c] = v;
    max_update = std::max(max_update, std::fabs(v - mid[c]));
  }
  return max_update;
}

inline double dot(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

/// Scaled nrm2 with the linalg::nrm2 contract: any NaN => NaN, else any
/// Inf => +Inf, ±0 skipped, overflow/underflow-safe scaling.
inline double nrm2(const double* x, std::size_t n) {
  double scale = 0.0;
  double ssq = 1.0;
  bool any = false;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = x[i];
    if (v == 0.0) continue;
    const double av = v < 0.0 ? -v : v;
    if (!any) {
      scale = av;
      ssq = 1.0;
      any = true;
    } else if (scale < av) {
      const double r = scale / av;
      ssq = 1.0 + ssq * r * r;
      scale = av;
    } else if (av == scale) {
      // r would be exactly 1 — adding 1 directly keeps inf/inf (which
      // would otherwise produce NaN) on the +Inf contract.
      ssq += 1.0;
    } else {
      const double r = av / scale;
      ssq += r * r;
    }
  }
  if (!any) return 0.0;
  return scale * std::sqrt(ssq);
}

}  // namespace prs::simd::ref
