// Scalar kernel table: every entry (including the fma-tier ones) points
// at the reference implementation, so PRS_SIMD=scalar runs exactly the
// arithmetic of the pre-simd code paths and PRS_SIMD_FMA is a no-op at
// this level.
#include "simd/kernels.hpp"
#include "simd/scalar_ref.hpp"

namespace prs::simd {

const Kernels& scalar_kernels() {
  static const Kernels table = {
      ref::dist2_block, ref::quad_block,  ref::axpy_acc,
      ref::add_acc,     ref::moments_acc, ref::scale,
      ref::row_dots,    ref::stencil_row,
      // fma tier: deterministic references at the scalar level.
      ref::dot,         ref::nrm2,        ref::axpy_acc,
  };
  return table;
}

}  // namespace prs::simd
