// AVX-512 kernel table (8-wide). Compiled with -mavx512f -mavx512dq
// -ffp-contract=off; falls back to the scalar table when the compiler
// lacks the flags. Same lane-per-output determinism argument as the AVX2
// TU — only the fma-tier entries fuse or reassociate.
#include "simd/tables.hpp"

#include "simd/scalar_ref.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__)
#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <limits>

namespace prs::simd {
namespace {

constexpr std::size_t kW = 8;  // doubles per __m512d

void dist2_block(const double* x, const double* ct, std::size_t m,
                 std::size_t d, double* out) {
  std::size_t j = 0;
  for (; j + kW <= m; j += kW) {
    __m512d acc = _mm512_setzero_pd();
    for (std::size_t c = 0; c < d; ++c) {
      const __m512d xc = _mm512_set1_pd(x[c]);
      const __m512d cc = _mm512_loadu_pd(ct + c * m + j);
      const __m512d diff = _mm512_sub_pd(xc, cc);
      acc = _mm512_add_pd(acc, _mm512_mul_pd(diff, diff));
    }
    _mm512_storeu_pd(out + j, acc);
  }
  for (; j < m; ++j) {
    double acc = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double diff = x[c] - ct[c * m + j];
      acc += diff * diff;
    }
    out[j] = acc;
  }
}

void quad_block(const double* x, const double* mu_t, const double* var_t,
                std::size_t m, std::size_t d, double* out) {
  std::size_t j = 0;
  for (; j + kW <= m; j += kW) {
    __m512d acc = _mm512_setzero_pd();
    for (std::size_t c = 0; c < d; ++c) {
      const __m512d xc = _mm512_set1_pd(x[c]);
      const __m512d mu = _mm512_loadu_pd(mu_t + c * m + j);
      const __m512d var = _mm512_loadu_pd(var_t + c * m + j);
      const __m512d diff = _mm512_sub_pd(xc, mu);
      acc = _mm512_add_pd(acc,
                          _mm512_div_pd(_mm512_mul_pd(diff, diff), var));
    }
    _mm512_storeu_pd(out + j, acc);
  }
  for (; j < m; ++j) {
    double quad = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double diff = x[c] - mu_t[c * m + j];
      quad += diff * diff / var_t[c * m + j];
    }
    out[j] = quad;
  }
}

void axpy_acc(double* acc, const double* x, double w, std::size_t n) {
  const __m512d wv = _mm512_set1_pd(w);
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m512d a = _mm512_loadu_pd(acc + i);
    const __m512d xv = _mm512_loadu_pd(x + i);
    _mm512_storeu_pd(acc + i, _mm512_add_pd(a, _mm512_mul_pd(wv, xv)));
  }
  for (; i < n; ++i) acc[i] += w * x[i];
}

void add_acc(double* acc, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m512d a = _mm512_loadu_pd(acc + i);
    _mm512_storeu_pd(acc + i, _mm512_add_pd(a, _mm512_loadu_pd(x + i)));
  }
  for (; i < n; ++i) acc[i] += x[i];
}

void moments_acc(double* p1, double* p2, const double* x, double r,
                 std::size_t n) {
  const __m512d rv = _mm512_set1_pd(r);
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m512d xv = _mm512_loadu_pd(x + i);
    const __m512d rx = _mm512_mul_pd(rv, xv);
    _mm512_storeu_pd(p1 + i, _mm512_add_pd(_mm512_loadu_pd(p1 + i), rx));
    _mm512_storeu_pd(
        p2 + i, _mm512_add_pd(_mm512_loadu_pd(p2 + i), _mm512_mul_pd(rx, xv)));
  }
  for (; i < n; ++i) {
    p1[i] += r * x[i];
    p2[i] += r * x[i] * x[i];
  }
}

void scale(double* v, double s, std::size_t n) {
  const __m512d sv = _mm512_set1_pd(s);
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    _mm512_storeu_pd(v + i, _mm512_mul_pd(_mm512_loadu_pd(v + i), sv));
  }
  for (; i < n; ++i) v[i] *= s;
}

void row_dots(const double* a, std::size_t lda, std::size_t rows,
              std::size_t d, const double* x, double* out) {
  std::size_t r = 0;
  for (; r + kW <= rows; r += kW) {
    const double* rp[kW];
    for (std::size_t l = 0; l < kW; ++l) rp[l] = a + (r + l) * lda;
    __m512d acc = _mm512_setzero_pd();
    for (std::size_t c = 0; c < d; ++c) {
      const __m512d av =
          _mm512_set_pd(rp[7][c], rp[6][c], rp[5][c], rp[4][c], rp[3][c],
                        rp[2][c], rp[1][c], rp[0][c]);
      const __m512d xv = _mm512_set1_pd(x[c]);
      acc = _mm512_add_pd(acc, _mm512_mul_pd(av, xv));
    }
    _mm512_storeu_pd(out + r, acc);
  }
  if (r < rows) ref::row_dots(a + r * lda, lda, rows - r, d, x, out + r);
}

double stencil_row(double* out, const double* mid, const double* up,
                   const double* down, std::size_t cols) {
  const __m512d quarter = _mm512_set1_pd(0.25);
  __m512d vmax = _mm512_setzero_pd();
  std::size_t c = 1;
  if (cols >= 2) {
    for (; c + kW <= cols - 1; c += kW) {
      const __m512d sum = _mm512_add_pd(
          _mm512_add_pd(
              _mm512_add_pd(_mm512_loadu_pd(up + c), _mm512_loadu_pd(down + c)),
              _mm512_loadu_pd(mid + c - 1)),
          _mm512_loadu_pd(mid + c + 1));
      const __m512d v = _mm512_mul_pd(quarter, sum);
      _mm512_storeu_pd(out + c, v);
      const __m512d diff = _mm512_abs_pd(_mm512_sub_pd(v, _mm512_loadu_pd(mid + c)));
      // Masked form with an explicit src operand: GCC 12's plain
      // _mm512_max_pd routes through _mm512_undefined_pd and trips
      // -Wmaybe-uninitialized on the header's self-initialized temp.
      vmax = _mm512_mask_max_pd(vmax, static_cast<__mmask8>(0xff), vmax, diff);
    }
  }
  double lanes[kW];
  _mm512_storeu_pd(lanes, vmax);
  double max_update = lanes[0];
  for (std::size_t l = 1; l < kW; ++l) max_update = std::max(max_update, lanes[l]);
  for (; c + 1 < cols; ++c) {
    const double v = 0.25 * (up[c] + down[c] + mid[c - 1] + mid[c + 1]);
    out[c] = v;
    max_update = std::max(max_update, std::fabs(v - mid[c]));
  }
  return max_update;
}

// ---- fma tier ----

double dot_fast(const double* a, const double* b, std::size_t n) {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 * kW <= n; i += 2 * kW) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i),
                           acc0);
    acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i + kW),
                           _mm512_loadu_pd(b + i + kW), acc1);
  }
  for (; i + kW <= n; i += kW) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(a + i), _mm512_loadu_pd(b + i),
                           acc0);
  }
  double lanes[kW];
  _mm512_storeu_pd(lanes, _mm512_add_pd(acc0, acc1));
  double sum = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
               ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double nrm2_fast(const double* x, std::size_t n) {
  double amax = 0.0;
  bool any_nan = false;
  for (std::size_t i = 0; i < n; ++i) {
    const double av = std::fabs(x[i]);
    if (std::isnan(av)) any_nan = true;
    amax = std::max(amax, av);
  }
  if (any_nan) return std::numeric_limits<double>::quiet_NaN();
  if (amax == 0.0) return 0.0;
  if (std::isinf(amax)) return std::numeric_limits<double>::infinity();
  const __m512d av = _mm512_set1_pd(amax);
  __m512d acc = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m512d r = _mm512_div_pd(_mm512_loadu_pd(x + i), av);
    acc = _mm512_fmadd_pd(r, r, acc);
  }
  double lanes[kW];
  _mm512_storeu_pd(lanes, acc);
  double ssq = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
               ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
  for (; i < n; ++i) {
    const double r = x[i] / amax;
    ssq += r * r;
  }
  return amax * std::sqrt(ssq);
}

void axpy_acc_fast(double* acc, const double* x, double w, std::size_t n) {
  const __m512d wv = _mm512_set1_pd(w);
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m512d a = _mm512_loadu_pd(acc + i);
    _mm512_storeu_pd(acc + i,
                     _mm512_fmadd_pd(wv, _mm512_loadu_pd(x + i), a));
  }
  for (; i < n; ++i) acc[i] += w * x[i];
}

}  // namespace

bool avx512_compiled() { return true; }

const Kernels& avx512_kernels() {
  static const Kernels table = {
      dist2_block, quad_block,  axpy_acc, add_acc,   moments_acc, scale,
      row_dots,    stencil_row, dot_fast, nrm2_fast, axpy_acc_fast,
  };
  return table;
}

}  // namespace prs::simd

#else  // !__AVX512F__

namespace prs::simd {
bool avx512_compiled() { return false; }
const Kernels& avx512_kernels() { return scalar_kernels(); }
}  // namespace prs::simd

#endif
