// The prs::simd kernel table: vectorized forms of the hot inner loops of
// the eight applications and the linalg BLAS subset.
//
// Layout convention: the *_block kernels take the small model matrix
// (centers / means / variances, M x D row-major everywhere else) packed
// COLUMN-major — ct[c * m + j] = centers(j, c) — so that lane j of a
// vector register walks center j while consecutive lanes load contiguous
// memory. pack_transposed() below builds that layout; the packing is pure
// data movement, so results are bit-identical to reading rows directly.
//
// Determinism: every kernel above the "fma tier" marker accumulates each
// output element in exactly the scalar reference order (lane-per-output,
// separate multiply and add, -ffp-contract=off in the vector TUs), so
// scalar / AVX2 / AVX-512 produce the same bytes. The fma-tier entries
// reassociate (multiple accumulators, fused multiply-add) and are only
// reachable behind simd::fma_allowed().
#pragma once

#include <cstddef>
#include <vector>

#include "simd/dispatch.hpp"

namespace prs::simd {

struct Kernels {
  // ---- deterministic tier: bit-identical across ISA levels ----

  /// out[j] = sum_c (x[c] - ct[c*m+j])^2 for j in [0, m) — the cmeans /
  /// kmeans distance row (linalg::squared_distance against every center).
  void (*dist2_block)(const double* x, const double* ct, std::size_t m,
                      std::size_t d, double* out);

  /// out[j] = sum_c (x[c] - mu_t[c*m+j])^2 / var_t[c*m+j] — the GMM
  /// Mahalanobis quadratic term (diagonal covariance, Eq (15)).
  void (*quad_block)(const double* x, const double* mu_t,
                     const double* var_t, std::size_t m, std::size_t d,
                     double* out);

  /// acc[i] += w * x[i] (cmeans weighted accumulation, gemm row update).
  void (*axpy_acc)(double* acc, const double* x, double w, std::size_t n);

  /// acc[i] += x[i] (kmeans per-cluster sums).
  void (*add_acc)(double* acc, const double* x, std::size_t n);

  /// p1[i] += r * x[i]; p2[i] += (r * x[i]) * x[i] (GMM M-step moments —
  /// note the second product uses the first, matching the scalar order).
  void (*moments_acc)(double* p1, double* p2, const double* x, double r,
                      std::size_t n);

  /// v[i] *= s (gemm beta pre-scaling).
  void (*scale)(double* v, double s, std::size_t n);

  /// out[r] = dot(a + r*lda, x) for r in [0, rows): lane-per-row gemv.
  /// Each row's accumulation runs in ascending-c scalar order (the lanes
  /// hold different rows), so every out[r] is bit-identical to the scalar
  /// dot of that row.
  void (*row_dots)(const double* a, std::size_t lda, std::size_t rows,
                   std::size_t d, const double* x, double* out);

  /// Jacobi relaxation of one interior row: for c in [1, cols-1)
  ///   out[c] = 0.25 * (((up[c] + down[c]) + mid[c-1]) + mid[c+1])
  /// returns max_c |out[c] - mid[c]| (max is exact, order-independent).
  /// Boundary cells out[0] / out[cols-1] are the caller's.
  double (*stencil_row)(double* out, const double* mid, const double* up,
                        const double* down, std::size_t cols);

  // ---- fma tier: reassociated/fused, ULP-bounded vs the reference.
  //      Call sites must guard with simd::fma_allowed(). In the scalar
  //      table these point at the deterministic reference. ----

  /// Multi-accumulator fused dot product.
  double (*dot_fast)(const double* a, const double* b, std::size_t n);

  /// Vectorized two-pass scaled nrm2 (same NaN/Inf/±0 contract as
  /// linalg::nrm2: any NaN => NaN, else any Inf => +Inf, else finite).
  double (*nrm2_fast)(const double* x, std::size_t n);

  /// acc[i] += w * x[i] with fused multiply-add.
  void (*axpy_acc_fast)(double* acc, const double* x, double w,
                        std::size_t n);
};

/// The kernel table for one level (scalar table when the level's TU was
/// compiled without its instruction set).
const Kernels& kernels_for(Level level);

/// Table for active_level().
inline const Kernels& active_kernels() { return kernels_for(active_level()); }

/// Packs a row-major (rows x cols) block into the column-major lane
/// layout the *_block kernels read: out[c * rows + j] = a[j * cols + c].
inline void pack_transposed(const double* a, std::size_t rows,
                            std::size_t cols, std::vector<double>& out) {
  out.resize(rows * cols);
  for (std::size_t j = 0; j < rows; ++j) {
    for (std::size_t c = 0; c < cols; ++c) {
      out[c * rows + j] = a[j * cols + c];
    }
  }
}

}  // namespace prs::simd
