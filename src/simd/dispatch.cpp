#include "simd/dispatch.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <vector>

#include "common/error.hpp"
#include "simd/tables.hpp"

namespace prs::simd {
namespace {

/// Programmatic overrides; -1 = none. Plain atomics: overrides are set up
/// front (CLI parse, test SetUp) — never while kernels are in flight.
std::atomic<int> g_level_override{-1};
std::atomic<int> g_fma_override{-1};

Level detect() {
#if defined(__x86_64__) || defined(__i386__)
  if (avx512_compiled() && __builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq")) {
    return Level::kAvx512;
  }
  if (avx2_compiled() && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma")) {
    return Level::kAvx2;
  }
#endif
  return Level::kScalar;
}

bool truthy(const char* v) {
  const std::string s = v;
  return s == "1" || s == "true" || s == "on" || s == "yes";
}

/// PRS_SIMD resolved once (an env change mid-process is not a supported
/// way to switch levels — use set_level, as the CLI does).
Level env_or_detected() {
  static const Level cached = [] {
    const char* e = std::getenv("PRS_SIMD");
    if (e != nullptr && *e != '\0') {
      const Level lvl = parse_level(e);
      if (!level_supported(lvl)) {
        throw InvalidArgument(std::string("PRS_SIMD=") + e +
                              " is not supported on this host (detected: " +
                              level_name(detected_level()) + ")");
      }
      return lvl;
    }
    return detected_level();
  }();
  return cached;
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "scalar";
}

Level detected_level() {
  static const Level cached = detect();
  return cached;
}

bool level_supported(Level level) {
  return static_cast<int>(level) <= static_cast<int>(detected_level());
}

Level parse_level(const std::string& name) {
  if (name == "scalar") return Level::kScalar;
  if (name == "avx2") return Level::kAvx2;
  if (name == "avx512") return Level::kAvx512;
  if (name == "auto") return detected_level();
  throw InvalidArgument("unknown SIMD level: " + name +
                        " (scalar | avx2 | avx512 | auto)");
}

Level active_level() {
  const int forced = g_level_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Level>(forced);
  return env_or_detected();
}

void set_level(Level level) {
  if (!level_supported(level)) {
    throw InvalidArgument(std::string("SIMD level ") + level_name(level) +
                          " is not supported on this host (detected: " +
                          level_name(detected_level()) + ")");
  }
  g_level_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void set_level(const std::string& name) {
  if (name == "auto") {
    clear_level_override();
    return;
  }
  set_level(parse_level(name));
}

void clear_level_override() {
  g_level_override.store(-1, std::memory_order_relaxed);
}

bool fma_allowed() {
  const int forced = g_fma_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced == 1;
  static const bool from_env = [] {
    const char* e = std::getenv("PRS_SIMD_FMA");
    return e != nullptr && truthy(e);
  }();
  return from_env;
}

void set_fma_allowed(bool allowed) {
  g_fma_override.store(allowed ? 1 : 0, std::memory_order_relaxed);
}

void clear_fma_override() {
  g_fma_override.store(-1, std::memory_order_relaxed);
}

const Kernels& kernels_for(Level level) {
  switch (level) {
    case Level::kAvx512:
      return avx512_kernels();
    case Level::kAvx2:
      return avx2_kernels();
    case Level::kScalar:
      break;
  }
  return scalar_kernels();
}

double measure_host_speedup() {
  const Kernels& vec = kernels_for(active_level());
  const Kernels& sc = scalar_kernels();
  if (&vec == &sc) return 1.0;

  // Shapes representative of the clustering hot loops: 16 centers x 64
  // dims distances plus a 1024-wide weighted row update.
  constexpr std::size_t kM = 16, kD = 64, kN = 1024, kReps = 400;
  std::vector<double> x(kD), ct(kM * kD), dist(kM);
  std::vector<double> acc(kN, 0.0), row(kN);
  for (std::size_t i = 0; i < kD; ++i) x[i] = 0.25 * static_cast<double>(i);
  for (std::size_t i = 0; i < ct.size(); ++i) {
    ct[i] = 1.0 + 0.001 * static_cast<double>(i % 997);
  }
  for (std::size_t i = 0; i < kN; ++i) {
    row[i] = 0.5 + 0.002 * static_cast<double>(i % 499);
  }

  auto run = [&](const Kernels& k) {
    using clock = std::chrono::steady_clock;
    double best = 1e300;
    for (int trial = 0; trial < 3; ++trial) {
      const auto t0 = clock::now();
      for (std::size_t rep = 0; rep < kReps; ++rep) {
        k.dist2_block(x.data(), ct.data(), kM, kD, dist.data());
        k.axpy_acc(acc.data(), row.data(), 1.0 + dist[0] * 1e-300, kN);
      }
      const double s =
          std::chrono::duration<double>(clock::now() - t0).count();
      best = best < s ? best : s;
    }
    return best;
  };

  run(sc);  // warm caches before timing either side
  const double t_vec = run(vec);
  const double t_sc = run(sc);
  if (t_vec <= 0.0 || t_sc <= 0.0) return 1.0;
  const double ratio = t_sc / t_vec;
  if (ratio < 1.0) return 1.0;
  return ratio > 16.0 ? 16.0 : ratio;
}

}  // namespace prs::simd
