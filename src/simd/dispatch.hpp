// Runtime ISA dispatch for the prs::simd kernel layer.
//
// Three implementation tiers of the hot inner kernels are compiled into
// every binary: a scalar reference, AVX2 and AVX-512 (each in its own TU
// with the matching -m flags). Which tier runs is decided at runtime:
//
//   programmatic override (set_level / --simd)
//     > PRS_SIMD environment variable (scalar | avx2 | avx512 | auto)
//       > CPUID detection (best level this build AND this CPU support)
//
// Requesting a level the CPU (or the compiler that built this binary)
// cannot execute is an error, never a silent fallback — a mis-set
// PRS_SIMD on a heterogeneous fleet should fail loudly.
//
// Determinism contract (DESIGN.md §4j): every kernel reachable without
// fma_allowed() produces bit-identical results at all three levels — the
// vector forms keep the scalar accumulation order per output element and
// are compiled with -ffp-contract=off. Kernels that reassociate or fuse
// (multi-accumulator dot, vectorized nrm2, FMA gemm updates) are only
// dispatched behind the explicit fma_allowed() opt-in (PRS_SIMD_FMA /
// --simd-fma) and are tested to ULP bounds instead.
#pragma once

#include <string>

namespace prs::simd {

/// ISA tiers, ordered: a CPU supporting level L supports every L' < L.
enum class Level : int {
  kScalar = 0,
  kAvx2 = 1,    // AVX2 (+FMA present on every AVX2 part we target)
  kAvx512 = 2,  // AVX-512 F+DQ
};

/// "scalar" | "avx2" | "avx512".
const char* level_name(Level level);

/// Best level this build and this CPU both support (CPUID, cached).
Level detected_level();

/// True when `level` can execute here: compiled in AND CPU-supported.
bool level_supported(Level level);

/// Parses "scalar" | "avx2" | "avx512" | "auto" ("auto" resolves to
/// detected_level()). Throws prs::InvalidArgument on unknown names.
Level parse_level(const std::string& name);

/// The level kernels dispatch to right now (override > env > detected).
/// Throws prs::InvalidArgument the first time it runs if PRS_SIMD names
/// an unknown or unsupported level.
Level active_level();

/// Forces a level; throws prs::InvalidArgument when unsupported here.
/// The string overload accepts "auto" to clear the override. Not
/// thread-safe against concurrently running kernels — set it up front
/// (CLI parse time, test SetUp), as prs_run and the tests do.
void set_level(Level level);
void set_level(const std::string& name);
void clear_level_override();

/// FMA-tier opt-in: reassociated/fused kernels (multi-accumulator dot,
/// vectorized nrm2, fused gemm row updates) are dispatched only when this
/// returns true. Default comes from PRS_SIMD_FMA (1/true/on); at the
/// scalar level the flag is a no-op (the scalar table points the fast
/// entries at the deterministic reference).
bool fma_allowed();
void set_fma_allowed(bool allowed);
void clear_fma_override();

/// Wall-clock micro-benchmark of the active level against the scalar
/// reference on the distance / row-update kernels. Returns the speedup
/// ratio clamped to [1, 16] (1.0 when the active level IS scalar). Feeds
/// Eq (8) through JobConfig::host_simd_scale (--simd-calibrate).
double measure_host_speedup();

// Build probes, defined in the per-ISA kernel TUs: whether that TU was
// actually compiled with its vector instruction set (false when the
// compiler lacked the flags — the table then falls back to scalar).
bool avx2_compiled();
bool avx512_compiled();

}  // namespace prs::simd
