// AVX2 kernel table. Compiled with -mavx2 -mfma -ffp-contract=off (see
// simd/CMakeLists.txt); when the compiler lacks those flags the table
// falls back to the scalar reference and avx2_compiled() reports false.
//
// Determinism: the deterministic-tier kernels are lane-per-output —
// vector lane j accumulates output element j over the SAME ascending-c
// sequence of unfused multiplies and adds as the scalar reference, so
// each lane reproduces the scalar rounding exactly. Only the fma-tier
// entries at the bottom use _mm256_fmadd_pd / multiple accumulators.
#include "simd/tables.hpp"

#include "simd/scalar_ref.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <limits>

namespace prs::simd {
namespace {

constexpr std::size_t kW = 4;  // doubles per __m256d

void dist2_block(const double* x, const double* ct, std::size_t m,
                 std::size_t d, double* out) {
  std::size_t j = 0;
  for (; j + kW <= m; j += kW) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t c = 0; c < d; ++c) {
      const __m256d xc = _mm256_set1_pd(x[c]);
      const __m256d cc = _mm256_loadu_pd(ct + c * m + j);
      const __m256d diff = _mm256_sub_pd(xc, cc);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    }
    _mm256_storeu_pd(out + j, acc);
  }
  if (j < m) {
    // Tail centers: the scalar reference on the same packed layout.
    for (; j < m; ++j) {
      double acc = 0.0;
      for (std::size_t c = 0; c < d; ++c) {
        const double diff = x[c] - ct[c * m + j];
        acc += diff * diff;
      }
      out[j] = acc;
    }
  }
}

void quad_block(const double* x, const double* mu_t, const double* var_t,
                std::size_t m, std::size_t d, double* out) {
  std::size_t j = 0;
  for (; j + kW <= m; j += kW) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t c = 0; c < d; ++c) {
      const __m256d xc = _mm256_set1_pd(x[c]);
      const __m256d mu = _mm256_loadu_pd(mu_t + c * m + j);
      const __m256d var = _mm256_loadu_pd(var_t + c * m + j);
      const __m256d diff = _mm256_sub_pd(xc, mu);
      acc = _mm256_add_pd(acc,
                          _mm256_div_pd(_mm256_mul_pd(diff, diff), var));
    }
    _mm256_storeu_pd(out + j, acc);
  }
  for (; j < m; ++j) {
    double quad = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double diff = x[c] - mu_t[c * m + j];
      quad += diff * diff / var_t[c * m + j];
    }
    out[j] = quad;
  }
}

void axpy_acc(double* acc, const double* x, double w, std::size_t n) {
  const __m256d wv = _mm256_set1_pd(w);
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256d a = _mm256_loadu_pd(acc + i);
    const __m256d xv = _mm256_loadu_pd(x + i);
    _mm256_storeu_pd(acc + i, _mm256_add_pd(a, _mm256_mul_pd(wv, xv)));
  }
  for (; i < n; ++i) acc[i] += w * x[i];
}

void add_acc(double* acc, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256d a = _mm256_loadu_pd(acc + i);
    const __m256d xv = _mm256_loadu_pd(x + i);
    _mm256_storeu_pd(acc + i, _mm256_add_pd(a, xv));
  }
  for (; i < n; ++i) acc[i] += x[i];
}

void moments_acc(double* p1, double* p2, const double* x, double r,
                 std::size_t n) {
  const __m256d rv = _mm256_set1_pd(r);
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256d xv = _mm256_loadu_pd(x + i);
    const __m256d rx = _mm256_mul_pd(rv, xv);
    _mm256_storeu_pd(p1 + i, _mm256_add_pd(_mm256_loadu_pd(p1 + i), rx));
    _mm256_storeu_pd(
        p2 + i, _mm256_add_pd(_mm256_loadu_pd(p2 + i), _mm256_mul_pd(rx, xv)));
  }
  for (; i < n; ++i) {
    p1[i] += r * x[i];
    p2[i] += r * x[i] * x[i];
  }
}

void scale(double* v, double s, std::size_t n) {
  const __m256d sv = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    _mm256_storeu_pd(v + i, _mm256_mul_pd(_mm256_loadu_pd(v + i), sv));
  }
  for (; i < n; ++i) v[i] *= s;
}

void row_dots(const double* a, std::size_t lda, std::size_t rows,
              std::size_t d, const double* x, double* out) {
  std::size_t r = 0;
  for (; r + kW <= rows; r += kW) {
    const double* r0 = a + (r + 0) * lda;
    const double* r1 = a + (r + 1) * lda;
    const double* r2 = a + (r + 2) * lda;
    const double* r3 = a + (r + 3) * lda;
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t c = 0; c < d; ++c) {
      const __m256d av = _mm256_set_pd(r3[c], r2[c], r1[c], r0[c]);
      const __m256d xv = _mm256_set1_pd(x[c]);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(av, xv));
    }
    _mm256_storeu_pd(out + r, acc);
  }
  if (r < rows) ref::row_dots(a + r * lda, lda, rows - r, d, x, out + r);
}

double stencil_row(double* out, const double* mid, const double* up,
                   const double* down, std::size_t cols) {
  const __m256d quarter = _mm256_set1_pd(0.25);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d vmax = _mm256_setzero_pd();
  std::size_t c = 1;
  if (cols >= 2) {
    for (; c + kW <= cols - 1; c += kW) {
      const __m256d sum = _mm256_add_pd(
          _mm256_add_pd(
              _mm256_add_pd(_mm256_loadu_pd(up + c), _mm256_loadu_pd(down + c)),
              _mm256_loadu_pd(mid + c - 1)),
          _mm256_loadu_pd(mid + c + 1));
      const __m256d v = _mm256_mul_pd(quarter, sum);
      _mm256_storeu_pd(out + c, v);
      const __m256d diff = _mm256_andnot_pd(
          sign_mask, _mm256_sub_pd(v, _mm256_loadu_pd(mid + c)));
      vmax = _mm256_max_pd(vmax, diff);
    }
  }
  double lanes[kW];
  _mm256_storeu_pd(lanes, vmax);
  double max_update = std::max(std::max(lanes[0], lanes[1]),
                               std::max(lanes[2], lanes[3]));
  for (; c + 1 < cols; ++c) {
    const double v = 0.25 * (up[c] + down[c] + mid[c - 1] + mid[c + 1]);
    out[c] = v;
    max_update = std::max(max_update, std::fabs(v - mid[c]));
  }
  return max_update;
}

// ---- fma tier ----

double dot_fast(const double* a, const double* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 * kW <= n; i += 4 * kW) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + kW <= n; i += kW) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  }
  const __m256d acc =
      _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
  double lanes[kW];
  _mm256_storeu_pd(lanes, acc);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

double nrm2_fast(const double* x, std::size_t n) {
  // Pass 1 (exact): max magnitude + NaN/Inf screening.
  double amax = 0.0;
  bool any_nan = false;
  for (std::size_t i = 0; i < n; ++i) {
    const double av = std::fabs(x[i]);
    if (std::isnan(av)) any_nan = true;
    amax = std::max(amax, av);
  }
  if (any_nan) return std::numeric_limits<double>::quiet_NaN();
  if (amax == 0.0) return 0.0;
  if (std::isinf(amax)) return std::numeric_limits<double>::infinity();
  // Pass 2: vectorized sum of (x/amax)^2 with fused accumulators.
  const __m256d av = _mm256_set1_pd(amax);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256d r = _mm256_div_pd(_mm256_loadu_pd(x + i), av);
    acc = _mm256_fmadd_pd(r, r, acc);
  }
  double lanes[kW];
  _mm256_storeu_pd(lanes, acc);
  double ssq = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    const double r = x[i] / amax;
    ssq += r * r;
  }
  return amax * std::sqrt(ssq);
}

void axpy_acc_fast(double* acc, const double* x, double w, std::size_t n) {
  const __m256d wv = _mm256_set1_pd(w);
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256d a = _mm256_loadu_pd(acc + i);
    _mm256_storeu_pd(acc + i,
                     _mm256_fmadd_pd(wv, _mm256_loadu_pd(x + i), a));
  }
  for (; i < n; ++i) acc[i] += w * x[i];
}

}  // namespace

bool avx2_compiled() { return true; }

const Kernels& avx2_kernels() {
  static const Kernels table = {
      dist2_block, quad_block,  axpy_acc, add_acc,   moments_acc, scale,
      row_dots,    stencil_row, dot_fast, nrm2_fast, axpy_acc_fast,
  };
  return table;
}

}  // namespace prs::simd

#else  // !__AVX2__

namespace prs::simd {
bool avx2_compiled() { return false; }
const Kernels& avx2_kernels() { return scalar_kernels(); }
}  // namespace prs::simd

#endif
