// Iterative-application support (paper §III.C.3) with checkpoint/restart.
//
// C-means and GMM re-run the map/reduce pipeline every iteration over
// loop-invariant input (the event matrix) plus a small evolving state (the
// cluster parameters). The paper's runtime:
//   * caches the invariant data in GPU memory once, so iterations skip the
//     PCI-E staging (the GPU device daemon is the only GPU-context holder);
//   * treats the initial staging as one-off, amortized overhead that is
//     excluded from iteration timing (§IV.B);
//   * broadcasts the evolving state to all nodes each iteration.
//
// The driver below implements exactly that on top of run_job(). The
// application updates its state inside `on_iteration` (its map lambdas
// capture the state by shared pointer) and returns whether to continue.
//
// Checkpoint/restart (prs::ckpt): when a CheckpointConfig + StateCodec are
// supplied, the driver snapshots {iteration index, app state, accumulated
// JobStats, schedule-policy state, seeds} into the configured store every
// `interval` completed iterations (plus once before the first iteration and
// once at the end), charging the snapshot bytes to the virtual clock. On a
// node crash reported by the fault-tolerant layer it either halts (keeping
// the checkpoints for a fresh process to --resume from, which replays the
// exact fault-free trajectory and is therefore byte-identical) or recovers
// in place over the surviving nodes (re-split; not byte-identical by
// design — FP combine order follows the block boundaries).
#pragma once

#include <functional>
#include <memory>

#include "ckpt/checkpoint.hpp"
#include "core/job_runner.hpp"

namespace prs::core {
namespace detail {

/// Broadcasts `state_bytes` of iteration state from the master and charges
/// the fabric for it.
inline sim::Process broadcast_state(Cluster& cluster, int rank,
                                    double state_bytes,
                                    std::shared_ptr<int> remaining) {
  auto& comm = cluster.fabric().comm(rank);
  simnet::Message mine =
      rank == 0 ? simnet::Message{state_bytes, true} : simnet::Message{};
  auto b = comm.broadcast(0, std::move(mine), kStateBroadcastTag);
  (void)co_await b;
  --*remaining;
}

/// Charges the one-time host->GPU staging of the cached invariant data.
inline sim::Process stage_invariant_data(Cluster& cluster, int rank,
                                         double bytes,
                                         std::shared_ptr<int> remaining) {
  auto& node = cluster.node(rank);
  if (node.gpu_count() > 0 && bytes > 0.0) {
    auto copy = node.gpu().default_stream().memcpy_h2d(bytes);
    co_await copy;
  }
  --*remaining;
}

/// Charges snapshot IO (write or restore) to the driver's virtual clock.
inline sim::Process ckpt_io_cost(sim::Simulator& sim, double seconds,
                                 std::shared_ptr<int> remaining) {
  if (seconds > 0.0) {
    auto d = sim::delay(sim, seconds);
    co_await d;
  }
  --*remaining;
}

}  // namespace detail

/// Result of an iterative run: final output plus accumulated statistics.
/// `stats.elapsed` covers the iterations only; `staging_time` holds the
/// one-off initial staging the paper amortizes away.
template <typename K, typename V>
struct IterativeResult {
  JobResult<K, V> last;
  JobStats stats;         // accumulated over iterations
  double staging_time = 0.0;
  int iterations = 0;     // distinct iterations completed (replays excluded)
};

/// Runs up to `max_iterations` map/reduce rounds. After each round,
/// `on_iteration(iter, result)` inspects the master's output, updates the
/// application state captured by the spec's lambdas, and returns true to
/// continue. `state_bytes` is the per-iteration broadcast size of that
/// state (e.g. the cluster-centers matrix).
///
/// `checkpoint` + `codec` (both or neither) enable checkpoint/restart; see
/// the header comment. With checkpointing off the run is byte-identical to
/// a build without the ckpt subsystem.
template <typename K, typename V>
IterativeResult<K, V> run_iterative(
    Cluster& cluster, const MapReduceSpec<K, V>& spec, const JobConfig& cfg,
    std::size_t n_items, int max_iterations,
    const std::function<bool(int, const std::map<K, V>&)>& on_iteration,
    double state_bytes = 0.0,
    const ckpt::CheckpointConfig* checkpoint = nullptr,
    const ckpt::StateCodec* codec = nullptr) {
  PRS_REQUIRE(max_iterations >= 1, "need at least one iteration");
  const bool checkpointing = checkpoint != nullptr;
  if (checkpointing) {
    PRS_REQUIRE(checkpoint->store != nullptr,
                "CheckpointConfig needs a store");
    PRS_REQUIRE(codec != nullptr && codec->encode && codec->decode,
                "checkpointing needs a StateCodec with encode and decode");
    PRS_REQUIRE(checkpoint->interval >= 1,
                "checkpoint interval must be >= 1");
    PRS_REQUIRE(checkpoint->write_bandwidth > 0.0,
                "checkpoint write bandwidth must be positive");
  }
  auto& sim = cluster.simulator();
  obs::TraceRecorder* tr = sim.tracer();
  if (tr != nullptr && !tr->enabled()) tr = nullptr;
  IterativeResult<K, V> out;

  // One-off staging of the loop-invariant data into GPU memory. The data
  // stays allocated for the whole iterative run, so it must actually fit
  // (a C2070 has 6 GB, Table 4) — allocation failures surface here rather
  // than as mysterious mid-job errors. `dead` masks crashed nodes during
  // in-place recovery re-staging; the initial pass stages every node.
  std::vector<simdev::DeviceAllocation> cached_allocations;
  auto stage_cached = [&](const std::vector<char>& dead, bool allocate) {
    if (!spec.gpu_data_cached || !cfg.use_gpu) return;
    int live = 0;
    for (int r = 0; r < cluster.size(); ++r) {
      if (dead.empty() || !dead[static_cast<std::size_t>(r)]) ++live;
    }
    PRS_CHECK(live > 0, "no live nodes to stage data onto");
    auto remaining = std::make_shared<int>(live);
    const double bytes_per_node = static_cast<double>(n_items) *
                                  spec.item_bytes / static_cast<double>(live);
    for (int r = 0; r < cluster.size(); ++r) {
      if (!dead.empty() && dead[static_cast<std::size_t>(r)]) continue;
      auto& node = cluster.node(r);
      if (allocate && node.gpu_count() > 0) {
        // The invariant data is spread across the node's cards.
        const auto per_card =
            static_cast<std::uint64_t>(bytes_per_node / node.gpu_count());
        for (int g = 0; g < node.gpu_count(); ++g) {
          cached_allocations.push_back(node.gpu(g).allocate(per_card));
        }
      }
      sim.spawn(detail::stage_invariant_data(cluster, r, bytes_per_node,
                                             remaining));
    }
    sim.run();
    PRS_CHECK(*remaining == 0, "staging did not complete");
  };
  {
    const double t0 = sim.now();
    stage_cached({}, /*allocate=*/true);
    out.staging_time = sim.now() - t0;
  }

  double iter_t0 = sim.now();
  JobConfig iter_cfg = cfg;
  // One policy instance across all iterations: stateful policies (e.g.
  // AdaptiveFeedbackPolicy) refine their split from each iteration's
  // observed busy times instead of starting over every round.
  std::unique_ptr<SchedulePolicy> owned_policy;
  if (iter_cfg.policy == nullptr) {
    owned_policy = make_policy(cfg.scheduling);
    iter_cfg.policy = owned_policy.get();
  }

  // Checkpoint bookkeeping. out.stats holds normalized totals for the
  // `out.iterations` distinct iterations completed so far: `iterations`
  // counts each distinct iteration exactly once (replayed work after a
  // recovery is NOT double-counted), `job_attempts` is 1 + retries beyond
  // one run_job per iteration, and `elapsed` is maintained across process
  // restarts via the snapshot.
  double restored_elapsed = 0.0;  // elapsed accumulated by prior processes
  int extra_attempts = 0;
  int recoveries = 0;
  int start_iter = 0;
  bool finished = false;

  auto charge_io = [&](double seconds) {
    auto remaining = std::make_shared<int>(1);
    sim.spawn(detail::ckpt_io_cost(sim, seconds, remaining));
    sim.run();
    PRS_CHECK(*remaining == 0, "checkpoint IO did not complete");
  };

  auto write_snapshot = [&](int next_iteration, bool fin) {
    ckpt::Snapshot snap;
    snap.app = codec->tag;
    snap.next_iteration = next_iteration;
    snap.iterations_done = out.iterations;
    snap.finished = fin;
    snap.run_seed = checkpoint->run_seed;
    snap.fault_seed = checkpoint->fault_seed;
    snap.policy_name = iter_cfg.policy->name();
    {
      ckpt::Writer w;
      iter_cfg.policy->save_state(w);
      snap.policy_state = w.take();
    }
    {
      ckpt::Writer w;
      codec->encode(w);
      snap.app_state = w.take();
    }
    snap.stats = out.stats;
    snap.stats.elapsed = restored_elapsed + (sim.now() - iter_t0);
    snap.stats.iterations = out.iterations;
    snap.stats.job_attempts = 1 + extra_attempts;
    const std::string blob = ckpt::encode_snapshot(snap);
    const double t0 = sim.now();
    charge_io(checkpoint->write_latency +
              static_cast<double>(blob.size()) / checkpoint->write_bandwidth);
    checkpoint->store->put(
        ckpt::snapshot_key(checkpoint->prefix, next_iteration), blob);
    ckpt::prune_snapshots(*checkpoint->store, checkpoint->prefix,
                          checkpoint->keep);
    if (tr != nullptr) {
      tr->complete(tr->track("ckpt", "driver"), "ckpt.write", "ckpt", t0,
                   sim.now(),
                   {obs::arg("next_iteration",
                             static_cast<std::uint64_t>(
                                 static_cast<unsigned>(next_iteration))),
                    obs::arg("bytes",
                             static_cast<std::uint64_t>(blob.size()))});
      tr->metrics().counter("ckpt.writes").add(1.0);
      tr->metrics().counter("ckpt.write_bytes")
          .add(static_cast<double>(blob.size()));
    }
  };

  // Restores a snapshot into the driver state. `fresh` marks a restart in a
  // new process (elapsed continues from the snapshot); in-place recovery
  // keeps the wall clock running across the wasted crash round instead.
  auto restore_snapshot = [&](const ckpt::Snapshot& snap, bool fresh) {
    PRS_REQUIRE(snap.app == codec->tag,
                "checkpoint belongs to app '" + snap.app +
                    "', cannot resume '" + codec->tag + "'");
    PRS_REQUIRE(snap.run_seed == checkpoint->run_seed &&
                    snap.fault_seed == checkpoint->fault_seed,
                "checkpoint was taken under different seeds; resuming would "
                "diverge from the original trajectory");
    PRS_REQUIRE(snap.policy_name == iter_cfg.policy->name(),
                "checkpoint was taken under policy '" + snap.policy_name +
                    "', run uses '" + iter_cfg.policy->name() + "'");
    {
      ckpt::Reader r(snap.policy_state);
      iter_cfg.policy->restore_state(r);
    }
    {
      ckpt::Reader r(snap.app_state);
      codec->decode(r);
    }
    out.stats = snap.stats;
    out.iterations = snap.iterations_done;
    extra_attempts = snap.stats.job_attempts - 1;
    if (fresh) {
      restored_elapsed = snap.stats.elapsed;
      iter_t0 = sim.now();
    }
  };

  // Fresh-process resume: pick up the newest snapshot before running
  // anything. The charged restore time models reading the snapshot back.
  bool resumed = false;
  if (checkpointing && checkpoint->recover) {
    const std::string key =
        ckpt::latest_snapshot_key(*checkpoint->store, checkpoint->prefix);
    if (!key.empty()) {
      std::string blob;
      PRS_CHECK(checkpoint->store->get(key, &blob),
                "latest snapshot key vanished from the store");
      const double t0 = sim.now();
      charge_io(checkpoint->write_latency +
                static_cast<double>(blob.size()) /
                    checkpoint->write_bandwidth);
      const ckpt::Snapshot snap = ckpt::decode_snapshot(blob);
      restore_snapshot(snap, /*fresh=*/true);
      iter_t0 = t0;  // the restore IO charged above counts toward elapsed
      start_iter = snap.next_iteration;
      finished = snap.finished;
      resumed = true;
      if (tr != nullptr) {
        tr->complete(tr->track("ckpt", "driver"), "ckpt.restore", "ckpt", t0,
                     sim.now(),
                     {obs::arg("next_iteration",
                               static_cast<std::uint64_t>(
                                   static_cast<unsigned>(start_iter)))});
        tr->metrics().counter("ckpt.restores").add(1.0);
      }
    }
  }
  // Baseline snapshot before the first iteration, so a crash inside
  // iteration 0 is recoverable too.
  if (checkpointing && !resumed) write_snapshot(start_iter, false);

  // Pipelined iteration windows (graph engine, pipeline_depth > 1): up to
  // `depth` iterations run as one task graph, chained through per-iteration
  // advance nodes. Fault injection keeps the per-iteration tolerant path;
  // a learning policy needs its per-iteration observe() calls, and the
  // multi-tenant stage gate must fire (and may cancel) at every iteration
  // boundary — all three clamp the window to one iteration, which is the
  // plain run_job path below.
  const bool windowed =
      iter_cfg.engine == ExecEngine::kGraph && iter_cfg.pipeline_depth > 1 &&
      iter_cfg.faults == nullptr && iter_cfg.presumed_dead.empty() &&
      iter_cfg.policy->dispatch() == SchedulingMode::kStatic &&
      !iter_cfg.policy->learns() && !cfg.stage_gate;

  int iter = start_iter;
  while (iter < max_iterations && !finished) {
    // Multi-tenant service gate: the job server interleaves concurrent
    // jobs at this boundary (and cancels cooperatively by throwing).
    if (cfg.stage_gate) cfg.stage_gate(iter);

    int window = 1;
    if (windowed) {
      window = std::min(iter_cfg.pipeline_depth, max_iterations - iter);
      if (checkpointing) {
        // Snapshots are host-side cut points; windows never straddle one.
        const int to_snapshot =
            checkpoint->interval - out.iterations % checkpoint->interval;
        window = std::min(window, to_snapshot);
      }
    }
    if (window > 1) {
      auto w = detail::run_job_window<K, V>(
          cluster, spec, iter_cfg, n_items, iter_cfg.policy, iter, window,
          max_iterations, state_bytes, on_iteration);
      out.last.output = std::move(w.last.output);
      out.last.stats = w.last.stats;
      out.stats.accumulate(w.last.stats);
      out.iterations += w.completed;
      out.stats.iterations = out.iterations;
      out.stats.job_attempts = 1 + extra_attempts;
      iter += w.completed;
      finished = w.finished;
      if (checkpointing &&
          (finished || out.iterations % checkpoint->interval == 0)) {
        write_snapshot(iter, finished);
      }
      continue;
    }
    iter_cfg.charge_job_startup = cfg.charge_job_startup && iter == 0;

    // Broadcast the evolving state (cluster centers etc.).
    if (state_bytes > 0.0 && cluster.size() > 1) {
      auto remaining = std::make_shared<int>(cluster.size());
      for (int r = 0; r < cluster.size(); ++r) {
        sim.spawn(detail::broadcast_state(cluster, r, state_bytes,
                                          remaining));
      }
      sim.run();
      PRS_CHECK(*remaining == 0, "state broadcast did not complete");
    }

    out.last = run_job(cluster, spec, iter_cfg, n_items);

    // A blacklisted node this round means the fault-tolerant layer saw a
    // node failure. With checkpointing on, the iteration's output is
    // discarded (its FP state was produced by a survivor re-split) and the
    // run either halts for a fresh --resume or recovers in place.
    const bool node_failed =
        iter_cfg.faults != nullptr && out.last.stats.blacklisted_nodes > 0;
    if (checkpointing && node_failed) {
      if (checkpoint->on_crash == ckpt::OnCrash::kHalt) {
        const std::string key = ckpt::latest_snapshot_key(
            *checkpoint->store, checkpoint->prefix);
        throw Error("node crash during iteration " + std::to_string(iter) +
                    "; state up to the latest checkpoint '" + key +
                    "' is preserved in " + checkpoint->store->name() +
                    " — rerun with recovery enabled to resume");
      }
      // In-place recovery: keep the cost of the wasted round on the books,
      // rewind to the latest snapshot, mark the dead nodes so the next
      // attempts split around them, and re-stage the invariant data over
      // the survivors (their shares grew).
      PRS_CHECK(++recoveries < cluster.size(),
                "crash recovery loop did not converge");
      const JobStats lost = out.last.stats;
      const std::string key = ckpt::latest_snapshot_key(
          *checkpoint->store, checkpoint->prefix);
      PRS_CHECK(!key.empty(), "node crash with no checkpoint to restore");
      std::string blob;
      PRS_CHECK(checkpoint->store->get(key, &blob),
                "latest snapshot key vanished from the store");
      const double t0 = sim.now();
      charge_io(checkpoint->write_latency +
                static_cast<double>(blob.size()) /
                    checkpoint->write_bandwidth);
      const ckpt::Snapshot snap = ckpt::decode_snapshot(blob);
      restore_snapshot(snap, /*fresh=*/false);
      // Wasted work stays visible in the totals; iterations does not move.
      extra_attempts += lost.job_attempts;
      out.stats.accumulate(lost);
      out.stats.iterations = out.iterations;
      out.stats.job_attempts = 1 + extra_attempts;
      std::vector<char> dead(static_cast<std::size_t>(cluster.size()), 0);
      iter_cfg.presumed_dead.clear();
      for (int r = 1; r < cluster.size(); ++r) {
        if (cfg.faults->node_crashed(r)) {
          iter_cfg.presumed_dead.push_back(r);
          dead[static_cast<std::size_t>(r)] = 1;
        }
      }
      stage_cached(dead, /*allocate=*/false);
      if (tr != nullptr) {
        tr->complete(tr->track("ckpt", "driver"), "ckpt.restore", "ckpt", t0,
                     sim.now(),
                     {obs::arg("next_iteration",
                               static_cast<std::uint64_t>(static_cast<unsigned>(
                                   snap.next_iteration)))});
        tr->metrics().counter("ckpt.restores").add(1.0);
        tr->metrics().counter("ckpt.recoveries").add(1.0);
      }
      iter = snap.next_iteration;
      continue;
    }

    out.stats.accumulate(out.last.stats);
    ++out.iterations;
    extra_attempts += out.last.stats.job_attempts - 1;
    // Re-normalize the fields accumulate() summed blindly: iterations
    // counts distinct iterations, job_attempts is 1 + extra retries, and
    // elapsed is recomputed from the clock below.
    out.stats.iterations = out.iterations;
    out.stats.job_attempts = 1 + extra_attempts;

    const bool cont = on_iteration(iter, out.last.output);
    finished = !cont || iter + 1 >= max_iterations;
    if (checkpointing &&
        (finished || out.iterations % checkpoint->interval == 0)) {
      write_snapshot(iter + 1, finished);
    }
    ++iter;
  }
  out.stats.elapsed = restored_elapsed + (sim.now() - iter_t0);
  out.stats.iterations = out.iterations;
  out.stats.job_attempts = 1 + extra_attempts;
  return out;
}

}  // namespace prs::core
