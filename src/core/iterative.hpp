// Iterative-application support (paper §III.C.3).
//
// C-means and GMM re-run the map/reduce pipeline every iteration over
// loop-invariant input (the event matrix) plus a small evolving state (the
// cluster parameters). The paper's runtime:
//   * caches the invariant data in GPU memory once, so iterations skip the
//     PCI-E staging (the GPU device daemon is the only GPU-context holder);
//   * treats the initial staging as one-off, amortized overhead that is
//     excluded from iteration timing (§IV.B);
//   * broadcasts the evolving state to all nodes each iteration.
//
// The driver below implements exactly that on top of run_job(). The
// application updates its state inside `on_iteration` (its map lambdas
// capture the state by shared pointer) and returns whether to continue.
#pragma once

#include <functional>
#include <memory>

#include "core/job_runner.hpp"

namespace prs::core {
namespace detail {

inline constexpr int kStateBroadcastTag = 400;

/// Broadcasts `state_bytes` of iteration state from the master and charges
/// the fabric for it.
inline sim::Process broadcast_state(Cluster& cluster, int rank,
                                    double state_bytes,
                                    std::shared_ptr<int> remaining) {
  auto& comm = cluster.fabric().comm(rank);
  simnet::Message mine =
      rank == 0 ? simnet::Message{state_bytes, true} : simnet::Message{};
  auto b = comm.broadcast(0, std::move(mine), kStateBroadcastTag);
  (void)co_await b;
  --*remaining;
}

/// Charges the one-time host->GPU staging of the cached invariant data.
inline sim::Process stage_invariant_data(Cluster& cluster, int rank,
                                         double bytes,
                                         std::shared_ptr<int> remaining) {
  auto& node = cluster.node(rank);
  if (node.gpu_count() > 0 && bytes > 0.0) {
    auto copy = node.gpu().default_stream().memcpy_h2d(bytes);
    co_await copy;
  }
  --*remaining;
}

}  // namespace detail

/// Result of an iterative run: final output plus accumulated statistics.
/// `stats.elapsed` covers the iterations only; `staging_time` holds the
/// one-off initial staging the paper amortizes away.
template <typename K, typename V>
struct IterativeResult {
  JobResult<K, V> last;
  JobStats stats;         // accumulated over iterations
  double staging_time = 0.0;
  int iterations = 0;
};

/// Runs up to `max_iterations` map/reduce rounds. After each round,
/// `on_iteration(iter, result)` inspects the master's output, updates the
/// application state captured by the spec's lambdas, and returns true to
/// continue. `state_bytes` is the per-iteration broadcast size of that
/// state (e.g. the cluster-centers matrix).
template <typename K, typename V>
IterativeResult<K, V> run_iterative(
    Cluster& cluster, const MapReduceSpec<K, V>& spec, const JobConfig& cfg,
    std::size_t n_items, int max_iterations,
    const std::function<bool(int, const std::map<K, V>&)>& on_iteration,
    double state_bytes = 0.0) {
  PRS_REQUIRE(max_iterations >= 1, "need at least one iteration");
  auto& sim = cluster.simulator();
  IterativeResult<K, V> out;

  // One-off staging of the loop-invariant data into GPU memory. The data
  // stays allocated for the whole iterative run, so it must actually fit
  // (a C2070 has 6 GB, Table 4) — allocation failures surface here rather
  // than as mysterious mid-job errors.
  std::vector<simdev::DeviceAllocation> cached_allocations;
  if (spec.gpu_data_cached && cfg.use_gpu) {
    const double t0 = sim.now();
    auto remaining = std::make_shared<int>(cluster.size());
    const double bytes_per_node = static_cast<double>(n_items) *
                                  spec.item_bytes /
                                  static_cast<double>(cluster.size());
    for (int r = 0; r < cluster.size(); ++r) {
      auto& node = cluster.node(r);
      if (node.gpu_count() > 0) {
        // The invariant data is spread across the node's cards.
        const auto per_card = static_cast<std::uint64_t>(
            bytes_per_node / node.gpu_count());
        for (int g = 0; g < node.gpu_count(); ++g) {
          cached_allocations.push_back(node.gpu(g).allocate(per_card));
        }
      }
      sim.spawn(detail::stage_invariant_data(cluster, r, bytes_per_node,
                                             remaining));
    }
    sim.run();
    PRS_CHECK(*remaining == 0, "staging did not complete");
    out.staging_time = sim.now() - t0;
  }

  const double iter_t0 = sim.now();
  JobConfig iter_cfg = cfg;
  // One policy instance across all iterations: stateful policies (e.g.
  // AdaptiveFeedbackPolicy) refine their split from each iteration's
  // observed busy times instead of starting over every round.
  std::unique_ptr<SchedulePolicy> owned_policy;
  if (iter_cfg.policy == nullptr) {
    owned_policy = make_policy(cfg.scheduling);
    iter_cfg.policy = owned_policy.get();
  }
  for (int iter = 0; iter < max_iterations; ++iter) {
    iter_cfg.charge_job_startup = cfg.charge_job_startup && iter == 0;

    // Broadcast the evolving state (cluster centers etc.).
    if (state_bytes > 0.0 && cluster.size() > 1) {
      auto remaining = std::make_shared<int>(cluster.size());
      for (int r = 0; r < cluster.size(); ++r) {
        sim.spawn(detail::broadcast_state(cluster, r, state_bytes,
                                          remaining));
      }
      sim.run();
      PRS_CHECK(*remaining == 0, "state broadcast did not complete");
    }

    out.last = run_job(cluster, spec, iter_cfg, n_items);
    out.stats.cpu_busy += out.last.stats.cpu_busy;
    out.stats.gpu_busy += out.last.stats.gpu_busy;
    out.stats.cpu_flops += out.last.stats.cpu_flops;
    out.stats.gpu_flops += out.last.stats.gpu_flops;
    out.stats.pcie_bytes += out.last.stats.pcie_bytes;
    out.stats.network_bytes += out.last.stats.network_bytes;
    out.stats.map_tasks += out.last.stats.map_tasks;
    out.stats.reduce_tasks += out.last.stats.reduce_tasks;
    out.stats.intermediate_pairs += out.last.stats.intermediate_pairs;
    out.stats.startup_time += out.last.stats.startup_time;
    out.stats.map_time += out.last.stats.map_time;
    out.stats.shuffle_time += out.last.stats.shuffle_time;
    out.stats.reduce_time += out.last.stats.reduce_time;
    out.stats.gather_time += out.last.stats.gather_time;
    ++out.iterations;

    if (!on_iteration(iter, out.last.output)) break;
  }
  out.stats.elapsed = sim.now() - iter_t0;
  out.stats.iterations = out.iterations;
  return out;
}

}  // namespace prs::core
