// Level-2 sub-task scheduling policies (paper §III.B.2, §III.B.3).
//
// The per-node sub-task scheduler is a first-class, swappable component
// (the StarPU shape: pluggable policies with performance-model feedback):
//
//   * StaticAnalyticPolicy  — the paper's static strategy: CPU share p from
//     Eq (8), stream count from Eqs (9)-(11), blocks enqueued up front;
//   * DynamicBlockPolicy    — the paper's dynamic strategy: fixed-size
//     blocks in a channel polled by idle device daemons, block size floored
//     at MinBs (Eqs (10)-(11)) so GPU blocks still saturate the card;
//   * AdaptiveFeedbackPolicy — starts from the analytic p and refines it
//     per node after every job/iteration from the observed CPU/GPU busy
//     times (the paper's "runtime measurements" escape hatch).
//
// A policy answers three questions for the runner, in order:
//   1. node_decision(): the CPU fraction p and the node's capability weight
//      (consumed by the level-1 Partitioner);
//   2. gpu_streams(): the per-node stream count once partitions are known;
//   3. block_items(): the dynamic-dispatch block granularity (only read
//      when dispatch() == SchedulingMode::kDynamic).
// After each job the runner calls observe() with per-node busy times, which
// stateful policies use to learn; the iterative driver carries one policy
// instance across iterations so that learning accumulates.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/job.hpp"
#include "roofline/analytic_scheduler.hpp"

namespace prs::ckpt {
class Writer;  // ckpt/codec.hpp; policies serialize learned state into
class Reader;  // checkpoint snapshots without depending on the full header
}

namespace prs::core {

class Cluster;

/// Type-erased view of the MapReduceSpec fields the scheduler reads —
/// policies are not templated on the job's key/value types.
struct JobShape {
  double ai_cpu = 1.0;
  double ai_gpu = 1.0;
  bool gpu_data_cached = false;
  double item_bytes = 0.0;
  /// AI as a function of GPU block bytes (Fag, Eq (10)); never null.
  roofline::AiOfBlock ai_of_block;
};

/// One node's level-2 decision, produced before the level-1 split.
struct NodeDecision {
  double cpu_fraction = 0.0;  // p: share of the node's input mapped on CPU
  double capability = 0.0;    // Fc + Fg: the node's level-1 weight
};

/// Observed execution of one job on one node, fed back to the policy.
struct NodeFeedback {
  int rank = 0;
  double cpu_fraction = 0.0;  // p the node ran with
  double cpu_busy = 0.0;      // core-seconds this job
  double gpu_busy = 0.0;      // card-seconds this job
  int cpu_cores = 1;
  int gpu_cards = 0;
};

struct JobFeedback {
  double elapsed = 0.0;
  std::vector<NodeFeedback> nodes;
};

class SchedulePolicy {
 public:
  virtual ~SchedulePolicy();

  /// Identifier used in traces ("sched.decision" mode arg) and the CLI.
  virtual std::string name() const = 0;

  /// How the map stage hands blocks to the device daemons.
  virtual SchedulingMode dispatch() const = 0;

  /// The CPU fraction p (Eq (8), overrides, single-backend cases) and the
  /// node's capability weight for the level-1 split. The base
  /// implementation is the analytic model; stateful policies refine it.
  virtual NodeDecision node_decision(Cluster& cluster, const JobShape& shape,
                                     const JobConfig& cfg, int rank);

  /// Streams per GPU card (Eqs (9)-(11)) once the node's share is known.
  virtual int gpu_streams(Cluster& cluster, const JobShape& shape,
                          const JobConfig& cfg, int rank,
                          std::size_t node_items, double cpu_fraction);

  /// Dynamic dispatch: items per polled block for one partition.
  virtual std::size_t block_items(Cluster& cluster, const JobShape& shape,
                                  const JobConfig& cfg, int rank,
                                  std::size_t partition_items);

  /// Post-job feedback; default no-op (stateless policies).
  virtual void observe(const JobFeedback& feedback);

  /// True when observe() changes later decisions. Learning policies need
  /// per-iteration feedback, so the pipelined iteration window (which can
  /// only fold feedback in at window boundaries) clamps to one iteration
  /// for them — their split trajectory stays byte-identical to depth 1.
  virtual bool learns() const { return false; }

  /// Serialize / restore learned state for checkpoint snapshots. Stateless
  /// policies write nothing (default). restore_state() must accept a blob
  /// written by save_state() of the same policy class; the snapshot layer
  /// guards cross-policy restores via name().
  virtual void save_state(ckpt::Writer& w) const;
  virtual void restore_state(ckpt::Reader& r);
};

/// §III.B.2 static strategy: pure Eq (8) + Eqs (9)-(11), no runtime state.
class StaticAnalyticPolicy final : public SchedulePolicy {
 public:
  std::string name() const override { return "static"; }
  SchedulingMode dispatch() const override { return SchedulingMode::kStatic; }
};

/// §III.B.2 dynamic strategy: idle daemons poll fixed-size blocks. The
/// automatic block size is the load-balance target partition/(4*(cores+1))
/// floored at MinBs (Eqs (10)-(11)) — blocks smaller than MinBs cannot
/// saturate the GPU, so the analytic floor replaces the ad-hoc heuristic
/// whenever the model yields one.
class DynamicBlockPolicy final : public SchedulePolicy {
 public:
  std::string name() const override { return "dynamic"; }
  SchedulingMode dispatch() const override {
    return SchedulingMode::kDynamic;
  }
  std::size_t block_items(Cluster& cluster, const JobShape& shape,
                          const JobConfig& cfg, int rank,
                          std::size_t partition_items) override;
};

/// StarPU-style measured policy: static dispatch, but p is refined per node
/// after every observed job from the CPU/GPU busy times, starting from the
/// analytic p (or `initial_fraction` when set — useful to demonstrate
/// convergence from a deliberately wrong start).
class AdaptiveFeedbackPolicy final : public SchedulePolicy {
 public:
  /// `gain` in (0, 1]: weight of the newly observed balance point per
  /// update (exponential smoothing towards the measured optimum).
  explicit AdaptiveFeedbackPolicy(double gain = 0.5,
                                  double initial_fraction = -1.0);

  std::string name() const override { return "adaptive"; }
  SchedulingMode dispatch() const override { return SchedulingMode::kStatic; }
  bool learns() const override { return true; }
  NodeDecision node_decision(Cluster& cluster, const JobShape& shape,
                             const JobConfig& cfg, int rank) override;
  void observe(const JobFeedback& feedback) override;
  void save_state(ckpt::Writer& w) const override;
  void restore_state(ckpt::Reader& r) override;

  /// The current learned p for one node; negative when nothing has been
  /// observed yet (the analytic p applies).
  double learned_fraction(int rank) const;

 private:
  double gain_;
  double initial_fraction_;
  std::map<int, double> learned_;
};

/// The default policy for a JobConfig without an explicit one.
std::unique_ptr<SchedulePolicy> make_policy(SchedulingMode mode);

/// CLI factory: "static" | "dynamic" | "adaptive".
std::unique_ptr<SchedulePolicy> make_policy(const std::string& name);

}  // namespace prs::core
