#include "core/partitioner.hpp"

#include "common/error.hpp"

namespace prs::core {

std::vector<InputSlice> Partitioner::node_shares(
    std::size_t n_items, const std::vector<double>& capability) {
  PRS_REQUIRE(!capability.empty(), "need at least one node");
  const auto nodes = capability.size();
  double total_capability = 0.0;
  for (double c : capability) {
    PRS_REQUIRE(c >= 0.0, "node capability must be non-negative");
    total_capability += c;
  }
  PRS_CHECK(total_capability > 0.0, "no usable backend on any node");

  std::vector<InputSlice> shares;
  shares.reserve(nodes);
  std::size_t cursor = 0;
  for (std::size_t r = 0; r < nodes; ++r) {
    const std::size_t share =
        r + 1 == nodes
            ? n_items - cursor
            : static_cast<std::size_t>(static_cast<double>(n_items) *
                                       capability[r] / total_capability);
    shares.push_back(InputSlice{cursor, cursor + share});
    cursor += share;
  }
  PRS_CHECK(cursor == n_items, "input not fully assigned");
  return shares;
}

std::vector<std::vector<InputSlice>> Partitioner::partition(
    std::size_t n_items, const std::vector<double>& capability,
    int partitions_per_node) {
  PRS_REQUIRE(partitions_per_node >= 1,
              "need at least one partition per node");
  const auto shares = node_shares(n_items, capability);
  std::vector<std::vector<InputSlice>> partitions(shares.size());
  for (std::size_t r = 0; r < shares.size(); ++r) {
    for (const InputSlice& p :
         shares[r].blocks(static_cast<std::size_t>(partitions_per_node))) {
      partitions[r].push_back(p);
    }
  }
  return partitions;
}

}  // namespace prs::core
