// Fault-tolerant execution path of the PRS job runner.
//
// Engaged only when JobConfig::faults is set (run_job branches here); the
// fault-free fast path in job_runner.hpp never touches this code, so its
// virtual-time behaviour stays byte-identical with or without a fault plan.
//
// Tolerance mechanisms, layered over the same stage machinery:
//   * per-block timeouts — every map attempt races a deadline derived from
//     its modeled roofline duration (x queue depth x task_timeout_factor);
//   * bounded retry with exponential backoff, alternating device class so
//     a wedged GPU stream falls back to CPU (and vice versa);
//   * straggler speculation — a watchdog compares in-flight blocks against
//     the median completed duration and launches a backup attempt on the
//     other device class; first result wins, late duplicates are discarded;
//   * failure announcement — a node that exhausts retries posts kNodeFailed
//     to every supervisor (the simulator's stand-in for peer failure
//     detection), aborting the job attempt;
//   * blacklisting + re-split — run_job_tolerant removes failed nodes from
//     the alive set, gives them zero capability so the level-1 Partitioner
//     re-splits the input across survivors, and restarts the job (up to
//     max_job_attempts); silent stalls (a node crashing mid-send) are
//     diagnosed post-mortem from the expecting/got message bookkeeping.
//
// Shuffle and gather run over the *alive* set only (keys hash onto alive
// ranks), and every point-to-point send rides the fabric's ack/retransmit
// protocol, which is active whenever a fault hook is attached.
//
// NOTE (GCC 12): all co_await sites follow the named-temporary rule
// documented in simtime/process.hpp.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/partitioner.hpp"
#include "core/pipeline.hpp"
#include "core/schedule_policy.hpp"
#include "fault/injector.hpp"

namespace prs::core {
namespace detail {

/// Each job-level attempt gets its own tag space so messages of an aborted
/// attempt can never be mistaken for the restart's (stride is far below
/// simnet's collective phase stride of 1 << 24).
inline constexpr int kAttemptTagStride = 1 << 16;

/// Event delivered to a node supervisor's event loop.
struct FtEvent {
  enum class Kind { kBlockDone, kNodeFailed, kPeerMessage };
  Kind kind = Kind::kBlockDone;
  bool speculative = false;  // kBlockDone: a backup attempt won
  int rank = -1;             // kNodeFailed: who; kPeerMessage: source
  simnet::Message payload;   // kPeerMessage
};

/// Control state of one job-level attempt, shared by all node supervisors.
struct FtControl {
  explicit FtControl(int nodes)
      : node_done(static_cast<std::size_t>(nodes), 0),
        expecting(static_cast<std::size_t>(nodes),
                  std::vector<char>(static_cast<std::size_t>(nodes), 0)),
        got(static_cast<std::size_t>(nodes),
            std::vector<char>(static_cast<std::size_t>(nodes), 0)) {}

  int attempt = 0;  // job-level attempt index (tag space selector)
  bool aborted = false;
  double finish_time = -1.0;  // sim.now() at master gather completion
  std::vector<char> node_done;
  std::vector<int> failed_ranks;
  // Failure bulletin: every alive supervisor subscribes its event channel.
  std::map<int, std::shared_ptr<sim::Channel<FtEvent>>> subs;
  // Post-mortem stall diagnosis: expecting[r][s] = r still awaits a message
  // from s in the current phase; got[r][s] = r heard from s this attempt.
  std::vector<std::vector<char>> expecting;
  std::vector<std::vector<char>> got;
  // Tolerance counters, folded into JobStats by run_job_tolerant.
  std::uint64_t task_retries = 0;
  std::uint64_t speculations = 0;
  std::uint64_t speculative_wins = 0;
  std::uint64_t double_completions = 0;
};

inline void ft_announce_failure(FtControl& ctl, int rank) {
  for (int r : ctl.failed_ranks) {
    if (r == rank) return;
  }
  ctl.failed_ranks.push_back(rank);
  ctl.aborted = true;
  FtEvent ev;
  ev.kind = FtEvent::Kind::kNodeFailed;
  ev.rank = rank;
  for (auto& [r, ch] : ctl.subs) ch->send(ev);
}

/// Per-node shared state of the fault-tolerant map stage. Heap-allocated and
/// shared: attempt processes, the straggler ticker, recv pumps and every
/// in-flight device body hold a reference, so a late completion (e.g. a
/// timed-out CPU task finishing after the job moved on) can never write
/// into freed emitters.
template <typename K, typename V>
struct FtNodeState {
  StageContext<K, V> ctx;
  std::shared_ptr<JobState<K, V>> st;  // keepalive for ctx.st
  std::shared_ptr<FtControl> ctl;
  std::vector<int> alive;  // alive ranks, ascending (includes self)
  int tag_base = 0;

  struct Block {
    InputSlice slice;
    bool prefer_gpu = false;
    int card = 0;
    int stream = 0;
    bool done = false;
    bool speculated = false;
    double started_at = 0.0;
    std::size_t winner = 0;  // index into `emitters`
    bool winner_gpu = false;
  };
  std::vector<Block> blocks;
  // One emitter + fail flag per launched attempt; deques give stable
  // addresses for the device-body captures. Losers' pairs are discarded.
  std::deque<Emitter<K, V>> emitters;
  std::deque<bool> attempt_failed;
  std::vector<double> durations;  // elapsed times of completed blocks
  std::size_t blocks_done = 0;
  bool map_active = true;  // gates the ticker
  std::shared_ptr<sim::Channel<FtEvent>> events;
  // Expected queueing depth per device class (blocks per execution slot),
  // folded into the per-attempt deadline so a fully loaded fault-free
  // device does not trip spurious timeouts.
  double cpu_depth = 1.0;
  double gpu_depth = 1.0;

  bool cpu_ok() const {
    return st->cfg.use_cpu && ctx.node().cpu().cores() > 0;
  }
  bool gpu_ok() const {
    return st->cfg.use_gpu && ctx.node().gpu_count() > 0;
  }
};

/// One execution attempt chain for one block: launch on a device, race the
/// deadline, retry with backoff on the other device class on failure or
/// timeout; announce node failure when attempts are exhausted. Speculative
/// instances run a single attempt and never fail the node.
template <typename K, typename V>
sim::Process ft_block_attempt(std::shared_ptr<FtNodeState<K, V>> ns,
                              std::size_t bi, bool start_gpu,
                              bool speculative) {
  auto& sim = ns->ctx.sim();
  const FaultToleranceConfig& tol = ns->st->cfg.tolerance;
  const auto& spec = ns->ctx.spec();
  FatNode& node = ns->ctx.node();
  const bool functional = ns->st->cfg.mode == ExecutionMode::kFunctional;

  for (int attempt = 0;; ++attempt) {
    if (ns->blocks[bi].done || ns->ctl->aborted) co_return;
    if (attempt > 0) {
      if (speculative || attempt >= tol.max_task_attempts) break;
      ++ns->ctl->task_retries;
      auto backoff = sim::delay(
          sim, tol.backoff_base * std::pow(2.0, attempt - 1));
      co_await backoff;
      if (ns->blocks[bi].done || ns->ctl->aborted) co_return;
    }
    // Alternate device class per attempt (when both are available) so a
    // wedged device cannot absorb every retry.
    bool use_gpu = start_gpu;
    if (ns->cpu_ok() && ns->gpu_ok()) {
      use_gpu = (attempt % 2 == 0) ? start_gpu : !start_gpu;
    } else {
      use_gpu = ns->gpu_ok();
    }

    const InputSlice slice = ns->blocks[bi].slice;
    const auto items = static_cast<double>(slice.size());
    ns->emitters.emplace_back();
    Emitter<K, V>* em = &ns->emitters.back();
    const std::size_t em_idx = ns->emitters.size() - 1;
    ns->attempt_failed.push_back(false);
    bool* failed = &ns->attempt_failed.back();

    sim::Future<sim::Unit> op;
    double est = 0.0;
    double depth = 1.0;
    if (!use_gpu) {
      simdev::CpuTask t;
      t.name = spec.name + ":map:cpu";
      t.workload.flops = items * spec.cpu_flops_per_item;
      t.workload.mem_traffic = items * spec.cpu_traffic_per_item();
      t.compute_efficiency = spec.efficiency.cpu_compute;
      t.memory_efficiency = spec.efficiency.cpu_memory;
      t.failed = failed;
      const auto& fn = functional ? spec.cpu_map : spec.modeled_map;
      if (fn) t.body = [ns, fn, slice, em] { fn(slice, *em); };
      est = node.cpu().task_duration(t);
      depth = ns->cpu_depth;
      op = node.cpu().submit(std::move(t));
    } else {
      // Rotate card and stream with the attempt index so a retry escapes a
      // hung in-order stream instead of queueing behind it.
      const int cards = node.gpu_count();
      const int streams =
          std::max(1, ns->st->gpu_streams[static_cast<std::size_t>(
                           ns->ctx.rank)]);
      const int card = (ns->blocks[bi].card + attempt) % cards;
      const int stream_idx = (ns->blocks[bi].stream + attempt) % streams;
      auto& gpu = node.gpu(card);
      simdev::Stream& stream = gpu.stream(stream_idx);
      if (!spec.gpu_data_cached) {
        const double h2d = items * spec.item_bytes;
        (void)stream.memcpy_h2d(h2d);
        if (gpu.spec().pcie_bandwidth > 0.0) {
          est += h2d / gpu.spec().pcie_bandwidth;
        }
      }
      simdev::KernelDesc k;
      k.name = spec.name + ":map:gpu";
      k.workload.flops = items * spec.gpu_flops_per_item;
      k.workload.mem_traffic = items * spec.gpu_traffic_per_item();
      k.compute_efficiency = spec.efficiency.gpu_compute;
      k.memory_efficiency = spec.efficiency.gpu_memory;
      k.failed = failed;
      const auto& fn = functional ? spec.gpu_map_or_default()
                                  : spec.modeled_map;
      if (fn) k.body = [ns, fn, slice, em] { fn(slice, *em); };
      est += gpu.kernel_duration(k);
      depth = ns->gpu_depth;
      op = stream.launch(std::move(k));
    }
    ++ns->st->map_tasks;

    const double deadline = std::max(
        tol.min_task_timeout, tol.task_timeout_factor * est * depth);
    auto timed = sim::with_timeout(sim, op, deadline);
    const bool finished = co_await timed;
    if (!finished || *failed) continue;  // timeout or injected task error

    auto& blk = ns->blocks[bi];
    if (blk.done) {
      // A backup (or retry) already won this block; drop the duplicate.
      ++ns->ctl->double_completions;
      co_return;
    }
    blk.done = true;
    blk.winner = em_idx;
    blk.winner_gpu = use_gpu;
    ns->durations.push_back(sim.now() - blk.started_at);
    ++ns->blocks_done;
    if (speculative) ++ns->ctl->speculative_wins;
    FtEvent ev;
    ev.kind = FtEvent::Kind::kBlockDone;
    ev.speculative = speculative;
    ns->events->send(ev);
    co_return;
  }
  if (!speculative) ft_announce_failure(*ns->ctl, ns->ctx.rank);
}

/// Straggler watchdog: every tick, compare in-flight blocks against the
/// median completed duration; past straggler_factor x median, launch one
/// backup attempt on the other device class (first result wins).
template <typename K, typename V>
sim::Process ft_straggler_ticker(std::shared_ptr<FtNodeState<K, V>> ns) {
  auto& sim = ns->ctx.sim();
  const FaultToleranceConfig& tol = ns->st->cfg.tolerance;
  for (;;) {
    auto tick = sim::delay(sim, tol.straggler_tick);
    co_await tick;
    if (!ns->map_active || ns->ctl->aborted) co_return;
    if (ns->durations.size() < tol.straggler_min_completed) continue;
    std::vector<double> d = ns->durations;
    const auto mid = d.size() / 2;
    std::nth_element(d.begin(), d.begin() + static_cast<long>(mid), d.end());
    const double limit = tol.straggler_factor * d[mid];
    for (std::size_t i = 0; i < ns->blocks.size(); ++i) {
      auto& blk = ns->blocks[i];
      if (blk.done || blk.speculated) continue;
      if (sim.now() - blk.started_at <= limit) continue;
      blk.speculated = true;
      ++ns->ctl->speculations;
      bool backup_gpu = !blk.prefer_gpu;
      if (!ns->gpu_ok()) backup_gpu = false;
      if (!ns->cpu_ok()) backup_gpu = true;
      if (ns->ctx.tr != nullptr) {
        ns->ctx.tr->instant(
            ns->ctx.runner_track, "ft.speculate", "fault",
            {obs::arg("block", static_cast<std::uint64_t>(i)),
             obs::arg("backup_gpu", backup_gpu)});
      }
      sim.spawn(ft_block_attempt(ns, i, backup_gpu, /*speculative=*/true));
    }
  }
}

/// Forwards the next (src, tag) message into the node's event loop so the
/// supervisor can keep listening for failure announcements while receiving.
template <typename K, typename V>
sim::Process ft_recv_pump(std::shared_ptr<FtNodeState<K, V>> ns, int src,
                          int tag) {
  auto& comm = ns->ctx.cluster->fabric().comm(ns->ctx.rank);
  auto r = comm.recv(src, tag);
  simnet::Message m = co_await r;
  FtEvent ev;
  ev.kind = FtEvent::Kind::kPeerMessage;
  ev.rank = src;
  ev.payload = std::move(m);
  ns->events->send(ev);
}

/// ShuffleStage::prepare over the alive set: keys hash onto alive ranks
/// only, so a blacklisted node is never chosen as a reduce destination.
/// Returns one message per alive-set position.
template <typename K, typename V>
std::vector<simnet::Message> ft_prepare_outbound(
    std::shared_ptr<FtNodeState<K, V>> ns, NodeMapBatch<K, V>& batch) {
  auto& st = *ns->st;
  const auto& spec = ns->ctx.spec();
  const std::size_t m = ns->alive.size();
  std::vector<std::vector<std::pair<K, V>>> buckets(m);
  if (spec.local_combine) {
    std::map<K, V> combined;
    for (auto& e : batch.emitters) {
      st.intermediate_pairs += e.size();
      combine_into(spec, combined, e.pairs());
    }
    for (auto& [k, v] : combined) {
      buckets[std::hash<K>{}(k) % m].emplace_back(k, std::move(v));
    }
  } else {
    for (auto& e : batch.emitters) {
      st.intermediate_pairs += e.size();
      for (auto& [k, v] : e.pairs()) {
        buckets[std::hash<K>{}(k) % m].emplace_back(std::move(k),
                                                    std::move(v));
      }
    }
  }
  std::vector<simnet::Message> outbound;
  outbound.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    auto payload = std::make_shared<std::vector<std::pair<K, V>>>(
        std::move(buckets[i]));
    const double bytes =
        static_cast<double>(payload->size()) * spec.pair_bytes;
    outbound.emplace_back(bytes, std::move(payload));
  }
  if (ns->ctx.tr != nullptr) {
    auto& h = ns->ctx.tr->metrics().histogram(
        "shuffle.msg_bytes", obs::geometric_buckets(64.0, 4.0, 16));
    for (const auto& msg : outbound) h.observe(msg.bytes);
  }
  return outbound;
}

/// ReduceStage::submit_device_tasks plus a modeled-duration estimate for
/// the reduce deadline (sum over submitted pieces — a safe over-estimate).
template <typename K, typename V>
std::vector<sim::Future<sim::Unit>> ft_submit_reduce(
    std::shared_ptr<FtNodeState<K, V>> ns, std::size_t reduce_pairs,
    double& est) {
  auto& st = *ns->st;
  const auto& spec = ns->ctx.spec();
  FatNode& node = ns->ctx.node();
  const auto rk = static_cast<std::size_t>(ns->ctx.rank);
  std::vector<sim::Future<sim::Unit>> futs;
  est = 0.0;
  if (reduce_pairs == 0) return futs;
  const double cpu_pairs =
      static_cast<double>(reduce_pairs) * st.cpu_fraction[rk];
  const double gpu_pairs = static_cast<double>(reduce_pairs) - cpu_pairs;
  if (cpu_pairs > 0.0 && ns->cpu_ok()) {
    simdev::CpuTask t;
    t.name = spec.name + ":reduce:cpu";
    t.workload.flops = cpu_pairs * spec.reduce_flops_per_pair;
    t.workload.mem_traffic = cpu_pairs * spec.pair_bytes;
    t.compute_efficiency = spec.efficiency.cpu_compute;
    t.memory_efficiency = spec.efficiency.cpu_memory;
    est += node.cpu().task_duration(t);
    futs.push_back(node.cpu().submit(std::move(t)));
    ++st.reduce_tasks;
  }
  if (gpu_pairs > 0.0 && ns->gpu_ok()) {
    const double per_card =
        gpu_pairs / static_cast<double>(node.gpu_count());
    for (int g = 0; g < node.gpu_count(); ++g) {
      auto& gpu = node.gpu(g);
      auto& stream = gpu.default_stream();
      futs.push_back(stream.memcpy_h2d(per_card * spec.pair_bytes));
      simdev::KernelDesc k;
      k.name = spec.name + ":reduce:gpu";
      k.workload.flops = per_card * spec.reduce_flops_per_pair;
      k.workload.mem_traffic = per_card * spec.pair_bytes;
      k.compute_efficiency = spec.efficiency.gpu_compute;
      k.memory_efficiency = spec.efficiency.gpu_memory;
      est += gpu.kernel_duration(k);
      if (gpu.spec().pcie_bandwidth > 0.0) {
        est += 2.0 * per_card * spec.pair_bytes / gpu.spec().pcie_bandwidth;
      }
      futs.push_back(stream.launch(std::move(k)));
      futs.push_back(stream.memcpy_d2h(per_card * spec.pair_bytes));
      ++st.reduce_tasks;
    }
  }
  return futs;
}

/// The fault-tolerant per-node supervisor: runs the same map -> combine ->
/// shuffle -> reduce -> gather pipeline, but every device operation races a
/// deadline, the map stage runs through retryable block attempts, and all
/// cross-node waits stay responsive to failure announcements.
template <typename K, typename V>
sim::Process ft_node_main(Cluster& cluster,
                          std::shared_ptr<JobState<K, V>> st,
                          std::shared_ptr<FtControl> ctl,
                          SchedulePolicy* policy, int rank,
                          std::vector<int> alive) {
  auto& sim = cluster.simulator();
  auto& comm = cluster.fabric().comm(rank);
  const auto& spec = *st->spec;
  const JobConfig& cfg = st->cfg;
  const FaultToleranceConfig& tol = cfg.tolerance;
  const auto rk = static_cast<std::size_t>(rank);
  const int tag_base = ctl->attempt * kAttemptTagStride;

  auto ns = std::make_shared<FtNodeState<K, V>>();
  ns->st = st;
  ns->ctl = ctl;
  ns->alive = alive;
  ns->tag_base = tag_base;
  ns->events = ctl->subs.at(rank);
  ns->ctx.cluster = &cluster;
  ns->ctx.st = st.get();
  ns->ctx.policy = policy;
  ns->ctx.rank = rank;

  obs::TraceRecorder* tr = sim.tracer();
  if (tr != nullptr && !tr->enabled()) tr = nullptr;
  obs::ScopedSpan job_span;
  if (tr != nullptr) {
    ns->ctx.tr = tr;
    ns->ctx.runner_track =
        tr->track("node" + std::to_string(rank), "runner");
    tr->instant(
        ns->ctx.runner_track, "ft.attempt", "fault",
        {obs::arg("attempt", static_cast<std::uint64_t>(ctl->attempt)),
         obs::arg("alive", static_cast<std::uint64_t>(alive.size())),
         obs::arg("p", st->cpu_fraction[rk])});
    job_span = obs::ScopedSpan(tr, ns->ctx.runner_track,
                               spec.name + ":job", "job");
  }

  const double phase_t0 = sim.now();

  // -- job startup (charged per attempt: a restart is a resubmission) --------
  if (cfg.charge_job_startup) {
    auto startup = sim::delay(sim, calib::kPrsJobStartup);
    co_await startup;
  }

  // -- optional input distribution over the (reliable) fabric ----------------
  std::size_t node_items = 0;
  for (const auto& p : st->node_partitions[rk]) node_items += p.size();
  if (cfg.time_input_distribution && alive.size() > 1) {
    if (rank == 0) {
      for (int dst : alive) {
        if (dst == 0) continue;
        std::size_t dst_items = 0;
        for (const auto& p :
             st->node_partitions[static_cast<std::size_t>(dst)]) {
          dst_items += p.size();
        }
        simnet::Message m{static_cast<double>(dst_items) * spec.item_bytes,
                          {}};
        comm.send(dst, tag_base + kDistributeTag, std::move(m));
      }
    } else {
      ctl->expecting[rk][0] = 1;
      auto r = comm.recv(0, tag_base + kDistributeTag);
      (void)co_await r;
      ctl->expecting[rk][0] = 0;
      ctl->got[rk][0] = 1;
    }
  }

  st->startup_time = std::max(st->startup_time, sim.now() - phase_t0);
  if (tr != nullptr && sim.now() > phase_t0) {
    tr->complete(ns->ctx.runner_track, "startup", "phase", phase_t0,
                 sim.now());
  }
  const double map_t0 = sim.now();

  // -- map stage: retryable block attempts ------------------------------------
  // Block granularity honours the policy: static dispatch splits each
  // partition CPU/GPU by p (multiplier x cores CPU blocks, one GPU block
  // per card x stream); dynamic dispatch chops into block_items-sized
  // blocks, the first p share starting on CPU.
  const double p = st->cpu_fraction[rk];
  const int cards = ns->gpu_ok() ? ns->ctx.node().gpu_count() : 0;
  const int streams = std::max(1, st->gpu_streams[rk]);
  const JobShape shape = job_shape(spec);
  for (const InputSlice& partition : st->node_partitions[rk]) {
    if (partition.empty()) continue;
    auto dispatch_pause = sim::delay(sim, calib::kPrsIterationOverhead);
    co_await dispatch_pause;
    std::size_t first = ns->blocks.size();
    if (policy->dispatch() == SchedulingMode::kStatic) {
      auto [cpu_part, gpu_part] = partition.split_at_fraction(
          ns->cpu_ok() ? (cards > 0 ? p : 1.0) : 0.0);
      if (!cpu_part.empty() && ns->cpu_ok()) {
        const int n_blocks = roofline::AnalyticScheduler::cpu_block_count(
            ns->ctx.node().cpu().cores(), cfg.cpu_block_multiplier);
        for (const InputSlice& b :
             cpu_part.blocks(static_cast<std::size_t>(n_blocks))) {
          typename FtNodeState<K, V>::Block blk;
          blk.slice = b;
          ns->blocks.push_back(blk);
        }
      }
      if (!gpu_part.empty() && cards > 0) {
        const auto n_blocks =
            static_cast<std::size_t>(streams) *
            static_cast<std::size_t>(cards);
        std::size_t i = 0;
        for (const InputSlice& b : gpu_part.blocks(n_blocks)) {
          typename FtNodeState<K, V>::Block blk;
          blk.slice = b;
          blk.prefer_gpu = true;
          blk.card = static_cast<int>(i % static_cast<std::size_t>(cards));
          blk.stream = static_cast<int>(
              (i / static_cast<std::size_t>(cards)) %
              static_cast<std::size_t>(streams));
          ++i;
          ns->blocks.push_back(blk);
        }
      }
    } else {
      const std::size_t block_items = policy->block_items(
          cluster, shape, cfg, rank, partition.size());
      auto list = partition.blocks_of(block_items);
      const auto cpu_count = static_cast<std::size_t>(
          static_cast<double>(list.size()) * (cards > 0 ? p : 1.0) + 0.5);
      std::size_t g = 0;
      for (std::size_t i = 0; i < list.size(); ++i) {
        typename FtNodeState<K, V>::Block blk;
        blk.slice = list[i];
        if (i >= cpu_count && cards > 0) {
          blk.prefer_gpu = true;
          blk.card = static_cast<int>(g % static_cast<std::size_t>(cards));
          blk.stream = static_cast<int>(
              (g / static_cast<std::size_t>(cards)) %
              static_cast<std::size_t>(streams));
          ++g;
        }
        ns->blocks.push_back(blk);
      }
    }
    const auto n_new = ns->blocks.size() - first;
    auto dispatch_cost = sim::delay(
        sim, static_cast<double>(n_new) * calib::kPrsTaskDispatch);
    co_await dispatch_cost;
    for (std::size_t i = first; i < ns->blocks.size(); ++i) {
      ns->blocks[i].started_at = sim.now();
      sim.spawn(ft_block_attempt(ns, i, ns->blocks[i].prefer_gpu,
                                 /*speculative=*/false));
    }
  }
  // Queueing depth per class, for the per-attempt deadlines.
  {
    double cpu_blocks = 0.0, gpu_blocks = 0.0;
    for (const auto& b : ns->blocks) (b.prefer_gpu ? gpu_blocks : cpu_blocks) += 1.0;
    const int cores = std::max(1, ns->ctx.node().cpu().cores());
    ns->cpu_depth = std::max(
        1.0, std::ceil(cpu_blocks / static_cast<double>(cores)));
    const int gpu_slots = std::max(1, cards * streams);
    ns->gpu_depth = std::max(
        1.0, std::ceil(gpu_blocks / static_cast<double>(gpu_slots)));
  }
  if (tol.speculation && !ns->blocks.empty()) {
    sim.spawn(ft_straggler_ticker(ns));
  }

  while (ns->blocks_done < ns->blocks.size()) {
    auto ev = co_await ns->events->recv();
    if (!ev) co_return;  // channel torn down (job abandoned)
    if (ev->kind == FtEvent::Kind::kNodeFailed) {
      ns->map_active = false;
      co_return;
    }
    // kBlockDone: progress is tracked in ns->blocks_done by the attempts.
  }
  ns->map_active = false;

  // -- GPU intermediate copy-back (winners only), with a deadline ------------
  NodeMapBatch<K, V> batch;
  for (auto& blk : ns->blocks) {
    if (blk.winner_gpu) {
      batch.gpu_pairs += ns->emitters[blk.winner].size();
      batch.gpu_items += blk.slice.size();
    }
    batch.emitters.push_back(std::move(ns->emitters[blk.winner]));
  }
  {
    const double d2h_bytes =
        static_cast<double>(batch.gpu_pairs) * spec.pair_bytes +
        static_cast<double>(batch.gpu_items) * spec.gpu_item_d2h_bytes;
    if (d2h_bytes > 0.0 && cards > 0) {
      const double per_card = d2h_bytes / static_cast<double>(cards);
      for (int g = 0; g < cards; ++g) {
        auto& gpu = ns->ctx.node().gpu(g);
        auto copy = gpu.default_stream().memcpy_d2h(per_card);
        double est = tol.min_task_timeout;
        if (gpu.spec().pcie_bandwidth > 0.0) {
          est = std::max(est, per_card / gpu.spec().pcie_bandwidth);
        }
        auto timed = sim::with_timeout(
            sim, copy, tol.task_timeout_factor * est);
        const bool ok = co_await timed;
        if (!ok && tr != nullptr) {
          // Hung card: the winning pairs already live host-side (device
          // bodies run on the host), so proceed without the transfer.
          tr->instant(ns->ctx.runner_track, "ft.copyback_timeout", "fault",
                      {obs::arg("card", static_cast<std::uint64_t>(
                                    static_cast<unsigned>(g)))});
        }
        if (ns->ctl->aborted) co_return;
      }
    }
  }
  auto merge_cost = sim::delay(
      sim, static_cast<double>(node_items) * calib::kPrsPerItemOverhead);
  co_await merge_cost;
  st->map_time = std::max(st->map_time, sim.now() - map_t0);
  if (tr != nullptr) {
    tr->complete(
        ns->ctx.runner_track, "map", "phase", map_t0, sim.now(),
        {obs::arg("items", static_cast<std::uint64_t>(node_items)),
         obs::arg("gpu_items", batch.gpu_items),
         obs::arg("blocks", static_cast<std::uint64_t>(ns->blocks.size()))});
  }

  // -- local combine + shuffle over the alive set -----------------------------
  auto outbound = ft_prepare_outbound(ns, batch);
  const double shuffle_t0 = sim.now();
  // Collect inbound buckets keyed by source rank, not in arrival order: the
  // fast path combines the all_to_all result rank-by-rank, and floating-point
  // reduce combines are order-sensitive, so a fault-free run through this
  // path must merge in the same order to stay byte-identical (the checkpoint
  // crash-matrix asserts exactly that).
  std::map<int, simnet::Message> inbound_by_src;
  std::size_t self_pos = 0;
  for (std::size_t i = 0; i < ns->alive.size(); ++i) {
    if (ns->alive[i] == rank) self_pos = i;
  }
  for (std::size_t i = 0; i < ns->alive.size(); ++i) {
    const int peer = ns->alive[i];
    if (peer == rank) continue;
    ctl->expecting[rk][static_cast<std::size_t>(peer)] = 1;
    comm.send(peer, tag_base + kShuffleTag, std::move(outbound[i]));
    sim.spawn(ft_recv_pump(ns, peer, tag_base + kShuffleTag));
  }
  inbound_by_src.emplace(rank, std::move(outbound[self_pos]));
  std::size_t want = ns->alive.size() - 1;
  while (want > 0) {
    auto ev = co_await ns->events->recv();
    if (!ev) co_return;
    if (ev->kind == FtEvent::Kind::kNodeFailed) co_return;
    if (ev->kind != FtEvent::Kind::kPeerMessage) continue;  // late winner
    const auto src = static_cast<std::size_t>(ev->rank);
    ctl->expecting[rk][src] = 0;
    ctl->got[rk][src] = 1;
    inbound_by_src.emplace(ev->rank, std::move(ev->payload));
    --want;
  }
  st->shuffle_time = std::max(st->shuffle_time, sim.now() - shuffle_t0);
  if (tr != nullptr) {
    tr->complete(ns->ctx.runner_track, "shuffle", "phase", shuffle_t0,
                 sim.now());
  }

  // -- reduce, with a deadline and a CPU-retiming fallback --------------------
  const double reduce_t0 = sim.now();
  std::map<K, V> reduced;
  std::size_t reduce_pairs = 0;
  {
    using Payload = std::shared_ptr<std::vector<std::pair<K, V>>>;
    for (auto& [src, m] : inbound_by_src) {
      if (!m.has_payload()) continue;
      auto& pairs = *m.template payload_as<Payload>();
      reduce_pairs += pairs.size();
      combine_into(spec, reduced, pairs);
    }
  }
  for (int round = 0; round < 2; ++round) {
    double est = 0.0;
    std::vector<sim::Future<sim::Unit>> futs;
    if (round == 0) {
      futs = ft_submit_reduce(ns, reduce_pairs, est);
    } else if (ns->cpu_ok() && reduce_pairs > 0) {
      // Fallback: re-time the whole reduce on the CPU (the merge itself is
      // host-side and already done, so this is idempotent).
      simdev::CpuTask t;
      t.name = spec.name + ":reduce:cpu";
      t.workload.flops = static_cast<double>(reduce_pairs) *
                         spec.reduce_flops_per_pair;
      t.workload.mem_traffic =
          static_cast<double>(reduce_pairs) * spec.pair_bytes;
      t.compute_efficiency = spec.efficiency.cpu_compute;
      t.memory_efficiency = spec.efficiency.cpu_memory;
      est = ns->ctx.node().cpu().task_duration(t);
      futs.push_back(ns->ctx.node().cpu().submit(std::move(t)));
      ++st->reduce_tasks;
    }
    if (futs.empty()) break;
    auto all = sim::when_all(sim, futs);
    auto timed = sim::with_timeout(
        sim, all,
        std::max(tol.min_task_timeout, tol.task_timeout_factor * est));
    const bool ok = co_await timed;
    if (ns->ctl->aborted) co_return;
    if (ok) break;
    if (round == 0) {
      ++ctl->task_retries;
      if (tr != nullptr) {
        tr->instant(ns->ctx.runner_track, "ft.reduce_retry", "fault");
      }
      continue;
    }
    ft_announce_failure(*ctl, rank);
    co_return;
  }
  st->reduce_time = std::max(st->reduce_time, sim.now() - reduce_t0);
  if (tr != nullptr) {
    tr->complete(
        ns->ctx.runner_track, "reduce", "phase", reduce_t0, sim.now(),
        {obs::arg("pairs", static_cast<std::uint64_t>(reduce_pairs))});
  }

  // -- gather final values on the master --------------------------------------
  const double gather_t0 = sim.now();
  GatherStage<K, V> gather(ns->ctx);
  simnet::Message mine = gather.pack(std::move(reduced));
  if (rank == 0) {
    std::map<int, simnet::Message> by_rank;
    for (int peer : ns->alive) {
      if (peer == 0) continue;
      ctl->expecting[rk][static_cast<std::size_t>(peer)] = 1;
      sim.spawn(ft_recv_pump(ns, peer, tag_base + kGatherTag));
    }
    std::size_t pending = ns->alive.size() - 1;
    while (pending > 0) {
      auto ev = co_await ns->events->recv();
      if (!ev) co_return;
      if (ev->kind == FtEvent::Kind::kNodeFailed) co_return;
      if (ev->kind != FtEvent::Kind::kPeerMessage) continue;
      const auto src = static_cast<std::size_t>(ev->rank);
      ctl->expecting[rk][src] = 0;
      ctl->got[rk][src] = 1;
      by_rank.emplace(ev->rank, std::move(ev->payload));
      --pending;
    }
    std::vector<simnet::Message> gathered;
    gathered.push_back(std::move(mine));
    for (auto& [r, m] : by_rank) gathered.push_back(std::move(m));
    gather.unpack_on_master(gathered);
    ctl->finish_time = sim.now();
  } else {
    comm.send(0, tag_base + kGatherTag, std::move(mine));
  }
  gather.finish(gather_t0);

  ns->ctx.node().region().clear();
  ctl->node_done[rk] = 1;
  ++st->nodes_done;
}

/// Runs one job on the fault-tolerant path: installs the injector's hooks,
/// runs job attempts until one succeeds, blacklisting failed nodes and
/// re-splitting their partitions across the survivors in between.
template <typename K, typename V>
JobResult<K, V> run_job_tolerant(Cluster& cluster,
                                 const MapReduceSpec<K, V>& spec,
                                 const JobConfig& cfg, std::size_t n_items,
                                 SchedulePolicy* policy) {
  auto& sim = cluster.simulator();
  fault::FaultInjector* inj = cfg.faults;
  cluster.set_fault_hooks(inj, inj);
  const int nodes = cluster.size();
  const JobShape shape = job_shape(spec);
  const double t0 = sim.now();
  const ClusterCounters counters0 = snapshot_counters(cluster);
  const std::uint64_t retrans0 = cluster.fabric().retransmits();

  std::vector<char> alive_mask(static_cast<std::size_t>(nodes), 1);
  // Nodes the caller already knows are dead (run_iterative after a recovered
  // crash) start excluded; they were counted in blacklisted_nodes when first
  // detected, so they do not bump the counter again here.
  for (int r : cfg.presumed_dead) {
    PRS_REQUIRE(r != 0, "master (rank 0) cannot be presumed dead");
    if (r > 0 && r < nodes) alive_mask[static_cast<std::size_t>(r)] = 0;
  }
  int blacklisted = 0;
  std::uint64_t retries = 0, speculations = 0, spec_wins = 0, doubles = 0;

  std::shared_ptr<JobState<K, V>> st;
  std::shared_ptr<FtControl> ctl;
  bool success = false;
  int attempts_used = 0;

  for (int attempt = 0;
       attempt < cfg.tolerance.max_job_attempts && !success; ++attempt) {
    attempts_used = attempt + 1;
    std::vector<int> alive;
    for (int r = 0; r < nodes; ++r) {
      if (alive_mask[static_cast<std::size_t>(r)]) alive.push_back(r);
    }

    st = std::make_shared<JobState<K, V>>();
    st->spec = &spec;
    st->cfg = cfg;
    st->n_items = n_items;
    st->cpu_fraction.resize(static_cast<std::size_t>(nodes), 0.0);
    st->gpu_streams.resize(static_cast<std::size_t>(nodes), 1);
    std::vector<double> capability(static_cast<std::size_t>(nodes), 0.0);
    for (int r : alive) {
      const auto rk = static_cast<std::size_t>(r);
      const NodeDecision d = policy->node_decision(cluster, shape, cfg, r);
      st->cpu_fraction[rk] = d.cpu_fraction;
      capability[rk] = d.capability;  // blacklisted ranks stay at 0
    }
    st->node_partitions = Partitioner::partition(n_items, capability,
                                                 cfg.partitions_per_node);
    for (int r : alive) {
      const auto rk = static_cast<std::size_t>(r);
      std::size_t node_items = 0;
      for (const auto& part : st->node_partitions[rk]) {
        node_items += part.size();
      }
      st->gpu_streams[rk] = policy->gpu_streams(
          cluster, shape, cfg, r, node_items, st->cpu_fraction[rk]);
    }

    ctl = std::make_shared<FtControl>(nodes);
    ctl->attempt = attempt;
    for (int r : alive) {
      ctl->subs[r] = std::make_shared<sim::Channel<FtEvent>>(sim);
    }
    for (int r : alive) {
      sim.spawn(ft_node_main<K, V>(cluster, st, ctl, policy, r, alive));
    }
    sim.run();

    retries += ctl->task_retries;
    speculations += ctl->speculations;
    spec_wins += ctl->speculative_wins;
    doubles += ctl->double_completions;

    bool all_done = true;
    for (int r : alive) {
      all_done = all_done && ctl->node_done[static_cast<std::size_t>(r)];
    }
    success = !ctl->aborted && all_done;
    if (success) break;

    // Post-mortem: who failed? Announced failures first; otherwise diagnose
    // the silent stall from the message bookkeeping.
    std::set<int> failed(ctl->failed_ranks.begin(),
                         ctl->failed_ranks.end());
    if (failed.empty()) {
      std::set<int> stalled;
      for (int r : alive) {
        if (!ctl->node_done[static_cast<std::size_t>(r)]) stalled.insert(r);
      }
      // Finished nodes that still owe a stalled node data (crashed after
      // declaring itself done, e.g. mid-gather-send).
      for (int r : stalled) {
        for (int s : alive) {
          if (ctl->expecting[static_cast<std::size_t>(r)]
                            [static_cast<std::size_t>(s)] &&
              stalled.count(s) == 0) {
            failed.insert(s);
          }
        }
      }
      if (failed.empty()) {
        // Stalled nodes nobody heard from this attempt: they stopped
        // sending (crashed) while everyone else exchanged data normally.
        for (int s : stalled) {
          if (s == 0) continue;
          bool heard = false;
          for (int r : stalled) {
            if (r != s && ctl->got[static_cast<std::size_t>(r)]
                                  [static_cast<std::size_t>(s)]) {
              heard = true;
            }
          }
          if (!heard) failed.insert(s);
        }
      }
      if (failed.empty()) {
        for (int s : stalled) {
          if (s != 0) failed.insert(s);
        }
      }
    }
    PRS_CHECK(!failed.empty(), "job attempt failed with no suspect node");
    PRS_REQUIRE(failed.count(0) == 0,
                "master (rank 0) failed; cannot recover");
    for (int r : failed) {
      if (alive_mask[static_cast<std::size_t>(r)]) {
        alive_mask[static_cast<std::size_t>(r)] = 0;
        ++blacklisted;
      }
    }
    obs::TraceRecorder* tr = sim.tracer();
    if (tr != nullptr && tr->enabled()) {
      for (int r : failed) {
        tr->instant(tr->track("fault", "injector"), "ft.blacklist", "fault",
                    {obs::arg("node", static_cast<std::uint64_t>(
                                  static_cast<unsigned>(r)))});
      }
      tr->metrics().counter("fault.blacklisted_nodes")
          .add(static_cast<double>(failed.size()));
    }
  }
  PRS_CHECK(success, "job failed after max_job_attempts");

  // Elapsed spans failed attempts but stops at the master's completion —
  // the post-success drain (straggler losers timing out) is not charged.
  const double elapsed = ctl->finish_time - t0;
  JobResult<K, V> result;
  result.output = std::move(st->final_output);
  result.stats = collect_stats(cluster, counters0, *st, elapsed);
  // Fold the fault-tolerance counters in through the shared field visitor
  // (JobStats::accumulate) instead of assigning one-by-one, so a counter
  // added to JobStats cannot be silently dropped here.
  JobStats ft_counters;
  ft_counters.iterations = 0;  // neutralize the default-1 field
  ft_counters.task_retries = retries;
  ft_counters.speculations = speculations;
  ft_counters.speculative_wins = spec_wins;
  ft_counters.double_completions = doubles;
  ft_counters.retransmits = cluster.fabric().retransmits() - retrans0;
  ft_counters.blacklisted_nodes = blacklisted;
  ft_counters.job_attempts = attempts_used - 1;  // collect_stats seeded 1
  result.stats.accumulate(ft_counters);

  policy->observe(collect_feedback(cluster, counters0, st->cpu_fraction,
                                   elapsed));
  record_job_metrics(sim, *st, elapsed);
  obs::TraceRecorder* tr = sim.tracer();
  if (tr != nullptr && tr->enabled()) {
    auto& m = tr->metrics();
    m.counter("fault.task_retries").add(static_cast<double>(retries));
    m.counter("fault.speculations")
        .add(static_cast<double>(speculations));
    m.counter("fault.speculative_wins")
        .add(static_cast<double>(spec_wins));
    m.counter("fault.double_completions")
        .add(static_cast<double>(doubles));
    m.counter("fault.retransmits")
        .add(static_cast<double>(result.stats.retransmits));
  }
  cluster.set_fault_hooks(nullptr, nullptr);
  return result;
}

}  // namespace detail
}  // namespace prs::core
