#include "core/fat_node.hpp"

namespace prs::core {

FatNode::FatNode(sim::Simulator& sim, const NodeConfig& cfg, int node_id)
    : id_(node_id), cpu_(sim, cfg.cpu, cfg.reserved_cpu_cores) {
  PRS_REQUIRE(cfg.gpus_per_node >= 0, "gpus_per_node must be >= 0");
  for (int i = 0; i < cfg.gpus_per_node; ++i) {
    gpus_.push_back(std::make_unique<simdev::GpuDevice>(sim, cfg.gpu));
  }
}

simdev::GpuDevice& FatNode::gpu(int i) {
  PRS_REQUIRE(i >= 0 && i < gpu_count(), "GPU index out of range");
  return *gpus_[static_cast<std::size_t>(i)];
}

double FatNode::gpu_busy() const {
  double t = 0.0;
  for (const auto& g : gpus_) t += g->compute_busy_time();
  return t;
}

double FatNode::gpu_flops() const {
  double f = 0.0;
  for (const auto& g : gpus_) f += g->flops_executed();
  return f;
}

double FatNode::pcie_bytes() const {
  double b = 0.0;
  for (const auto& g : gpus_) b += g->pcie_bytes();
  return b;
}

void FatNode::reset_counters() {
  cpu_.reset_counters();
  for (auto& g : gpus_) g->reset_counters();
}

}  // namespace prs::core
