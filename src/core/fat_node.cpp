#include "core/fat_node.hpp"

#include <string>

namespace prs::core {

FatNode::FatNode(sim::Simulator& sim, const NodeConfig& cfg, int node_id)
    : id_(node_id),
      cpu_(sim, cfg.cpu, cfg.reserved_cpu_cores),
      region_(64 * 1024, 8 * 1024 * 1024, &sim,
              "node" + std::to_string(node_id)) {
  PRS_REQUIRE(cfg.gpus_per_node >= 0, "gpus_per_node must be >= 0");
  // All of this node's trace tracks file under one "process" (obs/trace.hpp
  // naming scheme): node<r> -> cpu.core<k> / gpu<g>.s<s> / region / ...
  cpu_.set_trace_process("node" + std::to_string(node_id));
  for (int i = 0; i < cfg.gpus_per_node; ++i) {
    gpus_.push_back(std::make_unique<simdev::GpuDevice>(sim, cfg.gpu));
    gpus_.back()->set_trace_context("node" + std::to_string(node_id),
                                    "gpu" + std::to_string(i));
  }
}

simdev::GpuDevice& FatNode::gpu(int i) {
  PRS_REQUIRE(i >= 0 && i < gpu_count(), "GPU index out of range");
  return *gpus_[static_cast<std::size_t>(i)];
}

double FatNode::gpu_busy() const {
  double t = 0.0;
  for (const auto& g : gpus_) t += g->compute_busy_time();
  return t;
}

double FatNode::gpu_flops() const {
  double f = 0.0;
  for (const auto& g : gpus_) f += g->flops_executed();
  return f;
}

double FatNode::pcie_bytes() const {
  double b = 0.0;
  for (const auto& g : gpus_) b += g->pcie_bytes();
  return b;
}

void FatNode::reset_counters() {
  cpu_.reset_counters();
  for (auto& g : gpus_) g->reset_counters();
}

}  // namespace prs::core
