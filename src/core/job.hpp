// Job-level types of the PRS runtime: input slices, execution/scheduling
// modes, job configuration and result statistics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace prs::fault {
class FaultInjector;  // defined in fault/injector.hpp (layered below core)
}

namespace prs::core {

class SchedulePolicy;

/// A contiguous range of input items [begin, end). The paper's map-task key
/// object "contains the indices bound of input matrices"; this is that key.
struct InputSlice {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }

  /// Splits off the first `fraction` of the slice (rounded to items).
  /// Returns {head, tail}.
  std::pair<InputSlice, InputSlice> split_at_fraction(double fraction) const {
    PRS_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
                "split fraction must be in [0, 1]");
    const auto head_items =
        static_cast<std::size_t>(static_cast<double>(size()) * fraction + 0.5);
    const std::size_t mid = begin + std::min(head_items, size());
    return {InputSlice{begin, mid}, InputSlice{mid, end}};
  }

  /// Chops the slice into at most `n` near-equal blocks (no empty blocks).
  std::vector<InputSlice> blocks(std::size_t n) const;

  /// Chops into blocks of at most `items_per_block` items.
  std::vector<InputSlice> blocks_of(std::size_t items_per_block) const;
};

/// How map/reduce payloads execute (DESIGN.md "Execution modes").
enum class ExecutionMode {
  /// Real kernels on real data; results checked against references.
  kFunctional,
  /// Virtual time charged for the declared workload; functional payloads
  /// skipped. Used by the large paper-scale benches.
  kModeled,
};

/// §III.B.2: the two scheduling strategies of the sub-task scheduler.
enum class SchedulingMode {
  /// Partition split CPU/GPU by the analytic model (Eq (8)), then each
  /// daemon picks its own granularity.
  kStatic,
  /// Partition split into fixed-size blocks polled by idle device daemons.
  kDynamic,
};

/// Which runner executes the job's stages.
enum class ExecEngine {
  /// Stage loop in job_runner.hpp: per-phase barriers, bulk copy-back.
  /// The reference path — byte-identical to the pre-graph runner.
  kStages,
  /// Task-graph runtime (prs::graph): the same stages built as one
  /// dependency graph per job, with per-block D2H copy-back overlapped
  /// against sibling compute and immediate first-failure propagation.
  /// Numeric results are byte-identical to kStages; virtual time differs
  /// only where overlap genuinely shortens the schedule.
  kGraph,
};

/// Tolerance knobs used by the fault-tolerant execution path (engaged only
/// when JobConfig::faults is set; fault-free jobs never read these).
struct FaultToleranceConfig {
  /// Per-task deadline = factor x modeled duration of the attempt.
  double task_timeout_factor = 8.0;
  /// Floor for per-task deadlines (virtual seconds).
  double min_task_timeout = 1e-3;
  /// Total execution attempts per block (first try + retries) before the
  /// node declares itself failed.
  int max_task_attempts = 4;
  /// First retry backoff (virtual seconds); doubles per retry.
  double backoff_base = 250e-6;
  /// A running block is a straggler when its elapsed time exceeds
  /// straggler_factor x median duration of completed blocks.
  double straggler_factor = 2.5;
  /// Completed blocks needed before the median is trusted.
  std::size_t straggler_min_completed = 3;
  /// Speculatively re-execute stragglers on the other device class
  /// (first result wins, losers discarded).
  bool speculation = true;
  /// Straggler watchdog period (virtual seconds).
  double straggler_tick = 500e-6;
  /// Whole-job attempts: after each failed attempt the failed nodes are
  /// blacklisted and partitions re-split across survivors.
  int max_job_attempts = 3;
};

/// Per-job knobs. Defaults follow the paper (§III.B.2).
struct JobConfig {
  ExecutionMode mode = ExecutionMode::kFunctional;
  SchedulingMode scheduling = SchedulingMode::kStatic;

  /// Use GPU / CPU daemons. GPU-only vs GPU+CPU is Figure 6's comparison.
  bool use_gpu = true;
  bool use_cpu = true;

  /// Override of the CPU workload fraction p; negative = derive from the
  /// analytic model (Eq (8)).
  double cpu_fraction_override = -1.0;

  /// Partitions per node created by the master task scheduler; the paper's
  /// default is two partitions per fat node.
  int partitions_per_node = 2;

  /// CPU blocks = multiplier x cores (paper's splitting pattern).
  int cpu_block_multiplier = 4;

  /// Dynamic mode: items per block (0 = auto: partition / (4*(cores+1))).
  std::size_t dynamic_block_items = 0;

  /// Overlap-percentage threshold for multi-stream GPU execution (Eq (9)).
  double stream_overlap_threshold = 0.2;

  /// Charge network time for distributing input partitions. Table 3 /
  /// Figure 6 pre-stage input ("copied into CPU and GPU memories in
  /// advance"), so the default is off.
  bool time_input_distribution = false;

  /// Charge the initial host->GPU staging of cached (loop-invariant) data.
  /// §IV.B excludes it as one-off, amortized overhead.
  bool time_initial_staging = false;

  /// Charge the one-time PRS job startup cost. The iterative driver sets
  /// this only on the first iteration.
  bool charge_job_startup = true;

  /// Explicit level-2 scheduling policy (non-owning; must outlive the job).
  /// When null the runner builds a stateless default from `scheduling` —
  /// set this to share one stateful policy (e.g. AdaptiveFeedbackPolicy)
  /// across jobs/iterations so it can learn.
  SchedulePolicy* policy = nullptr;

  /// Fault injector (non-owning; must outlive the job). When set, the job
  /// runs on the fault-tolerant path: timeouts + retries, straggler
  /// speculation, reliable shuffle/gather, node blacklisting. When null
  /// (default) the fault-free fast path runs, byte-identical to a build
  /// without the fault subsystem.
  fault::FaultInjector* faults = nullptr;

  /// Tolerance knobs; read only when `faults` is set.
  FaultToleranceConfig tolerance;

  /// Service-layer hook (prs::svc): when set, run_iterative invokes it at
  /// every iteration boundary (before the iteration's broadcast/run_job).
  /// The multi-tenant job server parks the job's thread here until its
  /// fair-share scheduler grants the next time slice; throwing aborts the
  /// job between iterations (cooperative cancellation). Unset (the
  /// default) costs one bool check per iteration and changes nothing.
  std::function<void(int iteration)> stage_gate;

  /// Ranks known dead before the job starts (e.g. from a crash detected in a
  /// previous iteration of run_iterative). The fault-tolerant path excludes
  /// them from the initial split instead of rediscovering the crash through
  /// timeouts; they are not re-counted in `JobStats::blacklisted_nodes`.
  /// Rank 0 (the master) cannot be presumed dead. Read only when `faults`
  /// is set.
  std::vector<int> presumed_dead;

  /// Execution engine. kGraph builds each job as one task graph; see
  /// DESIGN.md §4h for the routing rules (dynamic scheduling and
  /// crash/link fault plans fall back to the stage runner).
  ExecEngine engine = ExecEngine::kStages;

  /// Iteration pipelining depth for run_iterative on the graph engine:
  /// up to `depth` iterations are in flight, iteration i+1's map on rank r
  /// starting once iteration i's reduce on r finished (plus the state
  /// broadcast for apps that carry state). 1 = no pipelining. Read only
  /// when engine == kGraph.
  int pipeline_depth = 1;

  /// When non-empty, the graph engine writes each built job graph as
  /// Graphviz DOT to this path (deterministic node ordering) before
  /// executing it. Iterative jobs overwrite the file per window; the
  /// final content is the last graph built.
  std::string graph_dump_path;

  /// Measured host vector-throughput multiplier fed into Eq (8): the
  /// scheduler scales the roofline CPU rate Fc by this factor before
  /// deriving the CPU fraction p = Fc/(Fc+Fg) (see
  /// WorkloadSplit::with_cpu_scale). 1.0 (the default) keeps the
  /// paper-calibrated split untouched; `prs_run --simd-calibrate` sets it
  /// from simd::measure_host_speedup().
  double host_simd_scale = 1.0;

  /// Host NUMA mode for this job: -1 (default) inherits the process-wide
  /// setting (`--numa` / PRS_NUMA), 0 forces it off, 1 forces it on for
  /// the duration of the job (numa::ScopedEnable in run_job). Placement
  /// only — results are byte-identical either way (DESIGN.md §4k).
  int host_numa = -1;
};

/// Utilization and cost accounting for one job (or one iteration batch).
struct JobStats {
  double elapsed = 0.0;            // virtual seconds, job start to finish
  double cpu_busy = 0.0;           // sum over nodes
  double gpu_busy = 0.0;
  double cpu_flops = 0.0;
  double gpu_flops = 0.0;
  double pcie_bytes = 0.0;
  double network_bytes = 0.0;
  std::uint64_t map_tasks = 0;
  std::uint64_t reduce_tasks = 0;
  std::uint64_t intermediate_pairs = 0;
  int iterations = 1;

  // Critical-path phase breakdown (max across nodes, §III.A.2's stages):
  double startup_time = 0.0;  // job startup + input distribution
  double map_time = 0.0;      // map tasks + intermediate D2H
  double shuffle_time = 0.0;  // all-to-all of intermediate pairs
  double reduce_time = 0.0;   // reduce tasks on the devices
  double gather_time = 0.0;   // final gather onto the master

  // Fault-tolerance accounting (all zero on the fault-free path):
  std::uint64_t task_retries = 0;       // re-executions after fail/timeout
  std::uint64_t speculations = 0;       // straggler back-up attempts started
  std::uint64_t speculative_wins = 0;   // back-up finished first
  std::uint64_t double_completions = 0; // late duplicates discarded
  std::uint64_t retransmits = 0;        // wire-level retransmissions
  int blacklisted_nodes = 0;            // nodes excluded after failures
  int job_attempts = 1;                 // 1 = no job-level restart

  /// Aggregate application rate (flops per virtual second).
  double total_flops() const { return cpu_flops + gpu_flops; }
  double flops_rate() const {
    return elapsed > 0.0 ? total_flops() / elapsed : 0.0;
  }

  /// Field-by-field sum of `other` into this (defined below the field
  /// visitor). Note the default-1 fields (`iterations`, `job_attempts`) are
  /// summed like everything else; callers that need "count once" semantics
  /// (run_iterative) overwrite them after accumulating.
  void accumulate(const JobStats& other);
};

/// Visits every numeric field of two JobStats objects in lockstep:
/// fn(field_name, a_field, b_field). This is the single source of truth for
/// the JobStats field list — accumulate(), the checkpoint snapshot codec and
/// the reflection test in tests/ckpt_test.cpp all go through it, so a field
/// added here is summed, persisted and covered automatically. A field added
/// to the struct but NOT listed here trips the sizeof guard in that test.
template <typename StatsA, typename StatsB, typename Fn>
void visit_stats_fields2(StatsA& a, StatsB& b, Fn&& fn) {
  fn("elapsed", a.elapsed, b.elapsed);
  fn("cpu_busy", a.cpu_busy, b.cpu_busy);
  fn("gpu_busy", a.gpu_busy, b.gpu_busy);
  fn("cpu_flops", a.cpu_flops, b.cpu_flops);
  fn("gpu_flops", a.gpu_flops, b.gpu_flops);
  fn("pcie_bytes", a.pcie_bytes, b.pcie_bytes);
  fn("network_bytes", a.network_bytes, b.network_bytes);
  fn("map_tasks", a.map_tasks, b.map_tasks);
  fn("reduce_tasks", a.reduce_tasks, b.reduce_tasks);
  fn("intermediate_pairs", a.intermediate_pairs, b.intermediate_pairs);
  fn("iterations", a.iterations, b.iterations);
  fn("startup_time", a.startup_time, b.startup_time);
  fn("map_time", a.map_time, b.map_time);
  fn("shuffle_time", a.shuffle_time, b.shuffle_time);
  fn("reduce_time", a.reduce_time, b.reduce_time);
  fn("gather_time", a.gather_time, b.gather_time);
  fn("task_retries", a.task_retries, b.task_retries);
  fn("speculations", a.speculations, b.speculations);
  fn("speculative_wins", a.speculative_wins, b.speculative_wins);
  fn("double_completions", a.double_completions, b.double_completions);
  fn("retransmits", a.retransmits, b.retransmits);
  fn("blacklisted_nodes", a.blacklisted_nodes, b.blacklisted_nodes);
  fn("job_attempts", a.job_attempts, b.job_attempts);
}

/// Single-struct flavour of the visitor: fn(field_name, field).
template <typename Stats, typename Fn>
void visit_stats_fields(Stats& s, Fn&& fn) {
  visit_stats_fields2(s, s,
                      [&fn](const char* name, auto& f, auto&) { fn(name, f); });
}

inline void JobStats::accumulate(const JobStats& other) {
  visit_stats_fields2(
      *this, other,
      [](const char*, auto& into, const auto& from) { into += from; });
}

/// Final output of a job: the reduced key/value map plus statistics.
template <typename K, typename V>
struct JobResult {
  std::map<K, V> output;
  JobStats stats;
};

}  // namespace prs::core
