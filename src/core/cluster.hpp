// The simulated GPU+CPU cluster the PRS runs on: fat nodes on a common
// fabric, plus per-node analytic schedulers built from their device specs.
//
// Nodes may be homogeneous (the paper's evaluated case — one NodeConfig for
// all) or inhomogeneous (the paper's §III.B.3.a / future-work case: the
// master task scheduler uses Eq (8)-derived capabilities to split input
// "among homogeneous or inhomogeneous fat nodes").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/fat_node.hpp"
#include "roofline/analytic_scheduler.hpp"
#include "simnet/fabric.hpp"
#include "simtime/simulator.hpp"

namespace prs::obs {
class TraceRecorder;
}

namespace prs::core {

/// Default interconnect: GigE-class links as on the paper's testbeds
/// (125 MB/s effective, 50 us end-to-end MPI latency — the combination that
/// reproduces the ~5% global-reduction overhead at 8 nodes in Fig. 6).
simnet::FabricSpec default_fabric_spec();

class Cluster {
 public:
  /// Homogeneous cluster: every node uses `node_config`.
  Cluster(sim::Simulator& sim, int nodes, NodeConfig node_config,
          simnet::FabricSpec fabric_spec);
  Cluster(sim::Simulator& sim, int nodes, NodeConfig node_config)
      : Cluster(sim, nodes, std::move(node_config), default_fabric_spec()) {}

  /// Inhomogeneous cluster: one config per node.
  Cluster(sim::Simulator& sim, std::vector<NodeConfig> node_configs,
          simnet::FabricSpec fabric_spec);
  Cluster(sim::Simulator& sim, std::vector<NodeConfig> node_configs)
      : Cluster(sim, std::move(node_configs), default_fabric_spec()) {}

  /// Exports the PRS_TRACE_DIR-owned trace, if any (see below).
  ~Cluster();

  int size() const { return static_cast<int>(nodes_.size()); }
  sim::Simulator& simulator() { return sim_; }
  FatNode& node(int rank);
  simnet::Fabric& fabric() { return *fabric_; }

  /// Device configuration of one node (all nodes share index 0's config in
  /// the homogeneous case).
  const NodeConfig& node_config(int rank = 0) const;

  /// True when every node has the same device configuration.
  bool homogeneous() const { return homogeneous_; }

  /// The roofline-derived analytic scheduler for one node's hardware.
  const roofline::AnalyticScheduler& scheduler(int rank = 0) const;

  // Aggregated utilization across all nodes.
  double total_cpu_busy() const;
  double total_gpu_busy() const;
  double total_cpu_flops() const;
  double total_gpu_flops() const;
  double total_pcie_bytes() const;
  void reset_counters();

  /// Attaches (or detaches, with nullptrs) fault-injection hooks on every
  /// device and on the fabric. The fault-tolerant job runner installs the
  /// injector here for the duration of a job; detach only when the
  /// simulator is drained.
  void set_fault_hooks(simdev::ExecFaultHook* exec_hook,
                       simnet::NetFaultHook* net_hook);

 private:
  void build(const std::vector<NodeConfig>& configs);

  // Observability escape hatch: when $PRS_TRACE_DIR is set and the
  // simulator has no recorder attached yet, the cluster owns one and
  // exports <dir>/cluster<N>.json (+ .metrics.csv) on destruction. This is
  // how every bench/tool emits a timeline without per-call-site changes;
  // explicit attachments (prs_run --trace) always win.
  void maybe_attach_env_tracer();

  sim::Simulator& sim_;
  std::vector<NodeConfig> node_configs_;
  bool homogeneous_ = true;
  std::unique_ptr<simnet::Fabric> fabric_;
  std::vector<std::unique_ptr<FatNode>> nodes_;
  std::vector<std::unique_ptr<roofline::AnalyticScheduler>> schedulers_;
  std::unique_ptr<obs::TraceRecorder> env_tracer_;
  std::string env_trace_path_;  // without extension
};

}  // namespace prs::core
