// The task-graph execution path of the PRS runner (JobConfig::engine ==
// ExecEngine::kGraph).
//
// One TaskGraph instance expresses a whole job: the per-node spine
// start -> dispatch(p) -> {cpu/gpu blocks} -> merge -> shuffle -> reduce
// -> gather, with the stage objects from core/pipeline.hpp acting as graph
// builders (MapStage::plan_static enumerates the same blocks the legacy
// enqueue produces, in the same order, so numeric results are
// byte-identical to the stage runner).
//
// Two copy-back shapes:
//   * depth 1 (faithful): GPU intermediates copied back in bulk after the
//     map barrier, exactly like MapStage::copy_back — the graph reproduces
//     the legacy schedule, including virtual time.
//   * depth >= 2 (overlap): each GPU block gets its own D2H node on the
//     card's dedicated copy stream, dependent only on that block's kernel;
//     on devices with more than one hardware queue the copy-back engine
//     runs beside the remaining compute (Fermi-class 1-queue devices
//     serialize either way and lose nothing).
//
// Failure semantics: a functional map/reduce payload that throws is caught
// by a body wrapper that records the failing node in the GraphExecutor
// (cancelling every not-yet-dispatched node) and rethrows — the error
// surfaces out of sim.run() at the failing block's completion time, before
// the stage barrier, wrapped with the graph-node name.
//
// NOTE (GCC 12): all co_await sites follow the named-temporary rule
// documented in simtime/process.hpp.
#pragma once

#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/partitioner.hpp"
#include "core/pipeline.hpp"
#include "graph/executor.hpp"
#include "graph/task_graph.hpp"

namespace prs::core {
namespace detail {

/// Tag stride between pipelined iterations so concurrent windows' shuffle /
/// gather / broadcast collectives never collide (simnet's own collective
/// phase stride is 1<<24; user tags stay well below it).
inline constexpr int kGraphIterTagStride = 1024;

inline constexpr int kStateBroadcastTag = 400;

/// Late-bound executor handle for the failure path: the body wrappers are
/// built while the graph is, before the executor exists.
struct GraphFailBox {
  graph::GraphExecutor* exec = nullptr;
};

/// Wraps a functional payload so a throw is recorded against its graph
/// node (cancelling all pending nodes) before propagating out of the
/// device worker — first-failure propagation at the block's completion
/// time instead of an anonymous error.
inline std::function<void()> graph_wrap_body(
    std::function<void()> body, std::shared_ptr<GraphFailBox> fail,
    std::string node_name) {
  if (!body) return body;
  return [body = std::move(body), fail = std::move(fail),
          node_name = std::move(node_name)] {
    try {
      body();
    } catch (...) {
      if (fail->exec != nullptr) {
        fail->exec->fail(std::current_exception(), node_name);
      }
      throw;
    }
  };
}

/// One GPU map block scheduled through the graph; `emitter` is bound when
/// the kernel node runs and read by the per-block D2H node (the kernel
/// body has produced its pairs by then).
template <typename K, typename V>
struct GraphGpuBlock {
  InputSlice slice;
  int card = 0;
  int stream = 0;
  Emitter<K, V>* emitter = nullptr;
};

/// Per-rank execution state of one graph job: the stage objects plus the
/// transient values the stage nodes hand to each other.
template <typename K, typename V>
struct GraphRankState {
  StageContext<K, V> ctx;
  std::optional<MapStage<K, V>> map;
  std::optional<ShuffleStage<K, V>> shuffle;
  std::optional<ReduceStage<K, V>> reduce;
  std::optional<GatherStage<K, V>> gather;
  int tag_base = 0;
  double phase_t0 = 0.0;
  double map_t0 = 0.0;
  std::size_t node_items = 0;
  std::vector<GraphGpuBlock<K, V>> gpu_blocks;
  std::vector<simnet::Message> inbound;
  std::map<K, V> reduced;
  std::size_t reduce_pairs = 0;
};

/// One job's worth of graph state; `rank_done` holds each rank's gather
/// node so callers (the pipelined iteration window) can hang successor
/// iterations off them.
template <typename K, typename V>
struct GraphJob {
  std::shared_ptr<JobState<K, V>> st;
  std::vector<std::unique_ptr<GraphRankState<K, V>>> ranks;
  std::vector<graph::NodeId> rank_done;
};

/// Builds the JobState (level-1/level-2 scheduling decisions) exactly as
/// run_job does: per-node Eq (8) split and stream counts, capability-
/// weighted partitioning. Shared by both engines so they cannot diverge.
template <typename K, typename V>
std::shared_ptr<JobState<K, V>> make_job_state(Cluster& cluster,
                                               const MapReduceSpec<K, V>& spec,
                                               const JobConfig& cfg,
                                               std::size_t n_items,
                                               SchedulePolicy* policy) {
  auto st = std::make_shared<JobState<K, V>>();
  st->spec = &spec;
  st->cfg = cfg;
  st->n_items = n_items;
  const int nodes = cluster.size();
  const JobShape shape = job_shape(spec);
  st->cpu_fraction.resize(static_cast<std::size_t>(nodes), 0.0);
  st->gpu_streams.resize(static_cast<std::size_t>(nodes), 1);
  std::vector<double> capability(static_cast<std::size_t>(nodes), 0.0);
  for (int r = 0; r < nodes; ++r) {
    const auto rk = static_cast<std::size_t>(r);
    const NodeDecision d = policy->node_decision(cluster, shape, cfg, r);
    st->cpu_fraction[rk] = d.cpu_fraction;
    capability[rk] = d.capability;
  }
  st->node_partitions =
      Partitioner::partition(n_items, capability, cfg.partitions_per_node);
  for (int r = 0; r < nodes; ++r) {
    const auto rk = static_cast<std::size_t>(r);
    std::size_t node_items = 0;
    for (const auto& p : st->node_partitions[rk]) node_items += p.size();
    st->gpu_streams[rk] = policy->gpu_streams(cluster, shape, cfg, r,
                                              node_items,
                                              st->cpu_fraction[rk]);
  }
  return st;
}

// -- graph node coroutines ----------------------------------------------------
// Free coroutine functions taking their context by value/pointer: the
// graph stores plain forwarding lambdas, so no coroutine frame ever
// references a lambda object (the classic captured-lambda-coroutine
// lifetime bug).

template <typename K, typename V>
sim::Process g_startup(GraphRankState<K, V>* rs,
                       sim::Promise<sim::Unit> done) {
  auto& sim = rs->ctx.sim();
  auto& st = *rs->ctx.st;
  const JobConfig& cfg = st.cfg;
  rs->phase_t0 = sim.now();
  if (cfg.charge_job_startup) {
    auto d = sim::delay(sim, calib::kPrsJobStartup);
    co_await d;
  }
  const int nodes = rs->ctx.cluster->size();
  const auto& spec = rs->ctx.spec();
  auto& comm = rs->ctx.cluster->fabric().comm(rs->ctx.rank);
  if (cfg.time_input_distribution && nodes > 1) {
    if (rs->ctx.rank == 0) {
      for (int dst = 1; dst < nodes; ++dst) {
        std::size_t dst_items = 0;
        for (const auto& p :
             st.node_partitions[static_cast<std::size_t>(dst)]) {
          dst_items += p.size();
        }
        simnet::Message m{static_cast<double>(dst_items) * spec.item_bytes,
                          {}};
        comm.send(dst, kDistributeTag + rs->tag_base, std::move(m));
      }
    } else {
      auto r = comm.recv(0, kDistributeTag + rs->tag_base);
      (void)co_await r;
    }
  }
  st.startup_time = std::max(st.startup_time, sim.now() - rs->phase_t0);
  if (rs->ctx.tr != nullptr && sim.now() > rs->phase_t0) {
    rs->ctx.tr->complete(rs->ctx.runner_track, "startup", "phase",
                         rs->phase_t0, sim.now());
  }
  rs->map_t0 = sim.now();
  done.set_value(sim::Unit{});
}

/// Per-partition sub-task scheduler round: the same serial dispatch costs
/// node_main charges before enqueueing a partition's blocks.
template <typename K, typename V>
sim::Process g_dispatch(GraphRankState<K, V>* rs,
                        sim::Promise<sim::Unit> done) {
  auto& sim = rs->ctx.sim();
  auto d1 = sim::delay(sim, calib::kPrsIterationOverhead);
  co_await d1;
  auto d2 = sim::delay(sim, rs->map->static_dispatch_cost());
  co_await d2;
  done.set_value(sim::Unit{});
}

template <typename K, typename V>
sim::Process g_cpu_block(GraphRankState<K, V>* rs, InputSlice slice,
                         std::shared_ptr<GraphFailBox> fail,
                         std::string node_name,
                         sim::Promise<sim::Unit> done) {
  auto& st = *rs->ctx.st;
  simdev::CpuTask t = make_cpu_map_task(st, rs->map->batch(), slice);
  t.body = graph_wrap_body(std::move(t.body), std::move(fail),
                           std::move(node_name));
  ++st.map_tasks;
  auto fut = rs->ctx.node().cpu().submit(std::move(t));
  co_await fut;
  done.set_value(sim::Unit{});
}

/// GPU block: stages input (when not cached) and launches the kernel on
/// the planned (card, stream); the stream is an in-order queue, so
/// awaiting the kernel covers the staging copy too.
template <typename K, typename V>
sim::Process g_gpu_block(GraphRankState<K, V>* rs, std::size_t block_index,
                         std::shared_ptr<GraphFailBox> fail,
                         std::string node_name,
                         sim::Promise<sim::Unit> done) {
  auto& st = *rs->ctx.st;
  const auto& spec = rs->ctx.spec();
  GraphGpuBlock<K, V>& blk = rs->gpu_blocks[block_index];
  simdev::Stream& stream = rs->ctx.node().gpu(blk.card).stream(blk.stream);
  if (!spec.gpu_data_cached) {
    stream.memcpy_h2d(static_cast<double>(blk.slice.size()) *
                      spec.item_bytes);
  }
  simdev::KernelDesc k = make_gpu_map_kernel(st, rs->map->batch(), blk.slice);
  blk.emitter = &rs->map->batch().emitters.back();
  k.body = graph_wrap_body(std::move(k.body), std::move(fail),
                           std::move(node_name));
  rs->map->batch().gpu_items += blk.slice.size();
  ++st.map_tasks;
  auto fut = stream.launch(std::move(k));
  co_await fut;
  done.set_value(sim::Unit{});
}

/// Overlap mode: one D2H copy per GPU block, on the card's dedicated copy
/// stream (index = the compute stream count), dependent only on its own
/// kernel — PCI-E copy-back runs beside the remaining compute instead of
/// waiting for the stage barrier.
template <typename K, typename V>
sim::Process g_block_d2h(GraphRankState<K, V>* rs, std::size_t block_index,
                         sim::Promise<sim::Unit> done) {
  const auto& spec = rs->ctx.spec();
  GraphGpuBlock<K, V>& blk = rs->gpu_blocks[block_index];
  const double pairs =
      blk.emitter != nullptr ? static_cast<double>(blk.emitter->size()) : 0.0;
  const double bytes =
      pairs * spec.pair_bytes +
      static_cast<double>(blk.slice.size()) * spec.gpu_item_d2h_bytes;
  if (bytes <= 0.0) {
    done.set_value(sim::Unit{});
    co_return;
  }
  const int copy_stream = rs->ctx.st->gpu_streams[rs->ctx.rk()];
  simdev::Stream& cs = rs->ctx.node().gpu(blk.card).stream(copy_stream);
  auto fut = cs.memcpy_d2h(bytes);
  co_await fut;
  done.set_value(sim::Unit{});
}

/// Map-stage epilogue. In faithful mode this is the bulk copy-back the
/// legacy runner does after its barrier; in overlap mode the per-block
/// D2H nodes already moved the bytes and only the host merge remains.
template <typename K, typename V>
sim::Process g_merge(GraphRankState<K, V>* rs, bool bulk_copy_back,
                     sim::Promise<sim::Unit> done) {
  auto& sim = rs->ctx.sim();
  if (bulk_copy_back) {
    auto d2h = rs->map->copy_back();
    co_await d2h;
  }
  auto d = sim::delay(sim, rs->map->host_merge_cost(rs->node_items));
  co_await d;
  rs->map->finish(rs->map_t0, rs->node_items);
  done.set_value(sim::Unit{});
}

template <typename K, typename V>
sim::Process g_shuffle(GraphRankState<K, V>* rs,
                       sim::Promise<sim::Unit> done) {
  auto& sim = rs->ctx.sim();
  auto& comm = rs->ctx.cluster->fabric().comm(rs->ctx.rank);
  auto outbound = rs->shuffle->prepare(rs->map->batch());
  const double t0 = sim.now();
  auto a2a = comm.all_to_all(std::move(outbound),
                             kShuffleTag + rs->tag_base);
  rs->inbound = co_await a2a;
  rs->shuffle->finish(t0);
  done.set_value(sim::Unit{});
}

template <typename K, typename V>
sim::Process g_reduce(GraphRankState<K, V>* rs,
                      sim::Promise<sim::Unit> done) {
  auto& sim = rs->ctx.sim();
  const double t0 = sim.now();
  rs->reduced = rs->reduce->merge(rs->inbound, rs->reduce_pairs);
  rs->inbound.clear();
  auto futs = rs->reduce->submit_device_tasks(rs->reduce_pairs);
  auto all = sim::when_all(sim, futs);
  co_await all;
  rs->reduce->finish(t0, rs->reduce_pairs);
  done.set_value(sim::Unit{});
}

template <typename K, typename V>
sim::Process g_gather(GraphRankState<K, V>* rs,
                      sim::Promise<sim::Unit> done) {
  auto& sim = rs->ctx.sim();
  auto& comm = rs->ctx.cluster->fabric().comm(rs->ctx.rank);
  const double t0 = sim.now();
  simnet::Message mine = rs->gather->pack(std::move(rs->reduced));
  auto g = comm.gather(0, std::move(mine), kGatherTag + rs->tag_base);
  std::vector<simnet::Message> gathered = co_await g;
  if (rs->ctx.rank == 0) rs->gather->unpack_on_master(gathered);
  rs->gather->finish(t0);
  if (rs->ctx.tr != nullptr) {
    rs->ctx.tr->complete(rs->ctx.runner_track,
                         rs->ctx.spec().name + ":job", "job", rs->phase_t0,
                         sim.now());
  }
  // Region-based memory: all of this job's intermediates go at once.
  rs->ctx.node().region().clear();
  ++rs->ctx.st->nodes_done;
  done.set_value(sim::Unit{});
}

/// Per-iteration state broadcast inside a pipelined window — the graph-node
/// form of detail::broadcast_state, with a per-iteration tag.
inline sim::Process g_state_broadcast(Cluster* cluster, int rank,
                                      double state_bytes, int tag,
                                      sim::Promise<sim::Unit> done) {
  auto& comm = cluster->fabric().comm(rank);
  simnet::Message mine =
      rank == 0 ? simnet::Message{state_bytes, true} : simnet::Message{};
  auto b = comm.broadcast(0, std::move(mine), tag);
  (void)co_await b;
  done.set_value(sim::Unit{});
}

// -- graph builder ------------------------------------------------------------

/// Builds one whole job into `g`: the per-rank stage spine with the map
/// blocks from MapStage::plan_static. `after_per_rank` (when non-empty)
/// gates each rank's start node on an upstream node — the hook the
/// pipelined iteration window uses to chain iterations. `name_prefix`
/// namespaces node names (e.g. "i3:") so windowed graphs stay readable.
template <typename K, typename V>
void build_job_graph(graph::TaskGraph& g, GraphJob<K, V>& job,
                     Cluster& cluster, SchedulePolicy* policy,
                     std::shared_ptr<GraphFailBox> fail, bool overlap,
                     int tag_base,
                     const std::vector<graph::NodeId>& after_per_rank,
                     const std::string& name_prefix) {
  auto& sim = cluster.simulator();
  JobState<K, V>* st = job.st.get();
  obs::TraceRecorder* tr = sim.tracer();
  if (tr != nullptr && !tr->enabled()) tr = nullptr;
  const int nodes = cluster.size();
  job.rank_done.assign(static_cast<std::size_t>(nodes), graph::kNoNode);

  for (int r = 0; r < nodes; ++r) {
    const auto rk = static_cast<std::size_t>(r);
    job.ranks.push_back(std::make_unique<GraphRankState<K, V>>());
    GraphRankState<K, V>* rs = job.ranks.back().get();
    rs->ctx.cluster = &cluster;
    rs->ctx.st = st;
    rs->ctx.policy = policy;
    rs->ctx.rank = r;
    rs->tag_base = tag_base;
    if (tr != nullptr) {
      rs->ctx.tr = tr;
      rs->ctx.runner_track =
          tr->track("node" + std::to_string(r), "runner");
      tr->instant(
          rs->ctx.runner_track, "sched.decision", "sched",
          {obs::arg("p", st->cpu_fraction[rk]),
           obs::arg("gpu_streams", st->gpu_streams[rk]),
           obs::arg("partitions", static_cast<std::uint64_t>(
                                      st->node_partitions[rk].size())),
           obs::arg("engine", "graph"),
           obs::arg("mode", policy->name())});
    }
    rs->map.emplace(rs->ctx);
    rs->shuffle.emplace(rs->ctx);
    rs->reduce.emplace(rs->ctx);
    rs->gather.emplace(rs->ctx);
    for (const auto& p : st->node_partitions[rk]) rs->node_items += p.size();

    const std::string rp = name_prefix + "n" + std::to_string(r) + ":";
    const graph::NodeId start = g.add_work(
        rp + "start", "delay", r,
        [rs](sim::Simulator& s, sim::Promise<sim::Unit> done) {
          (void)s;
          return g_startup<K, V>(rs, std::move(done));
        });
    if (!after_per_rank.empty()) g.depend(start, after_per_rank[rk]);

    // Partition rounds chain serially (the daemon thread dispatches one
    // partition's blocks before moving to the next), but a partition's
    // blocks do NOT gate the next round — exactly the legacy timeline.
    std::vector<graph::NodeId> tails;  // everything the merge waits on
    graph::NodeId prev_dispatch = start;
    int pi = 0;
    for (const auto& partition : st->node_partitions[rk]) {
      if (partition.empty()) continue;
      const std::string pp = rp + "p" + std::to_string(pi) + ":";
      const graph::NodeId disp = g.add_work(
          pp + "dispatch", "delay", r,
          [rs](sim::Simulator& s, sim::Promise<sim::Unit> done) {
            (void)s;
            return g_dispatch<K, V>(rs, std::move(done));
          });
      g.depend(disp, prev_dispatch);
      prev_dispatch = disp;

      const auto plan = rs->map->plan_static(partition);
      int bi = 0;
      for (const InputSlice& b : plan.cpu_blocks) {
        const std::string name =
            pp + "map:cpu" + std::to_string(bi++);
        const graph::NodeId n = g.add_work(
            name, "cpu", r,
            [rs, b, fail, name](sim::Simulator& s,
                                sim::Promise<sim::Unit> done) {
              (void)s;
              return g_cpu_block<K, V>(rs, b, fail, name, std::move(done));
            });
        g.depend(n, disp);
        tails.push_back(n);
      }
      bi = 0;
      for (const auto& gb : plan.gpu_blocks) {
        const std::size_t slot = rs->gpu_blocks.size();
        GraphGpuBlock<K, V> blk;
        blk.slice = gb.slice;
        blk.card = gb.card;
        blk.stream = gb.stream;
        rs->gpu_blocks.push_back(blk);
        const std::string name =
            pp + "map:gpu" + std::to_string(bi++);
        const graph::NodeId n = g.add_work(
            name, "kernel", r,
            [rs, slot, fail, name](sim::Simulator& s,
                                   sim::Promise<sim::Unit> done) {
              (void)s;
              return g_gpu_block<K, V>(rs, slot, fail, name,
                                       std::move(done));
            });
        g.depend(n, disp);
        if (overlap) {
          const graph::NodeId d2h = g.add_work(
              name + ":d2h", "d2h", r,
              [rs, slot](sim::Simulator& s, sim::Promise<sim::Unit> done) {
                (void)s;
                return g_block_d2h<K, V>(rs, slot, std::move(done));
              });
          g.depend(d2h, n);
          tails.push_back(d2h);
        } else {
          tails.push_back(n);
        }
      }
      ++pi;
    }

    const bool bulk = !overlap;
    const graph::NodeId merge = g.add_work(
        rp + "merge", overlap ? "host" : "d2h", r,
        [rs, bulk](sim::Simulator& s, sim::Promise<sim::Unit> done) {
          (void)s;
          return g_merge<K, V>(rs, bulk, std::move(done));
        });
    g.depend(merge, prev_dispatch);  // empty-partition ranks still merge
    g.depend_all(merge, tails);

    const graph::NodeId shuffle = g.add_work(
        rp + "shuffle", "net", r,
        [rs](sim::Simulator& s, sim::Promise<sim::Unit> done) {
          (void)s;
          return g_shuffle<K, V>(rs, std::move(done));
        });
    g.depend(shuffle, merge);

    const graph::NodeId reduce = g.add_work(
        rp + "reduce", "cpu", r,
        [rs](sim::Simulator& s, sim::Promise<sim::Unit> done) {
          (void)s;
          return g_reduce<K, V>(rs, std::move(done));
        });
    g.depend(reduce, shuffle);

    const graph::NodeId gather = g.add_work(
        rp + "gather", "net", r,
        [rs](sim::Simulator& s, sim::Promise<sim::Unit> done) {
          (void)s;
          return g_gather<K, V>(rs, std::move(done));
        });
    g.depend(gather, reduce);
    job.rank_done[rk] = gather;
  }
}

/// Writes the DOT rendering of `g` to `path` (--graph-dump).
inline void write_graph_dot(const graph::TaskGraph& g,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open graph dump file: " + path);
  out << g.to_dot();
  if (!out) throw Error("failed writing graph dump file: " + path);
}

/// Runs one job through the task-graph engine. Numeric results are
/// byte-identical to run_job's stage path; at pipeline_depth 1 virtual
/// time matches too (the graph reproduces the legacy schedule).
template <typename K, typename V>
JobResult<K, V> run_job_graph(Cluster& cluster,
                              const MapReduceSpec<K, V>& spec,
                              const JobConfig& cfg, std::size_t n_items,
                              SchedulePolicy* policy) {
  auto& sim = cluster.simulator();
  GraphJob<K, V> job;
  job.st = make_job_state(cluster, spec, cfg, n_items, policy);
  graph::TaskGraph g(spec.name + ":job");
  auto fail = std::make_shared<GraphFailBox>();
  const bool overlap = cfg.pipeline_depth > 1;
  build_job_graph(g, job, cluster, policy, fail, overlap, /*tag_base=*/0,
                  {}, "");
  if (!cfg.graph_dump_path.empty()) {
    write_graph_dot(g, cfg.graph_dump_path);
  }

  const double t0 = sim.now();
  const ClusterCounters counters0 = snapshot_counters(cluster);
  graph::GraphExecutor exec(sim, g);
  fail->exec = &exec;
  exec.start();
  try {
    sim.run();
  } catch (const Error&) {
    throw;  // already carries context (or is a runtime invariant)
  } catch (const std::exception& e) {
    if (exec.failed()) {
      throw Error("task graph node '" + exec.failure_site() +
                  "' failed: " + e.what());
    }
    throw;
  }
  if (exec.failed()) {
    try {
      exec.rethrow_if_failed();
    } catch (const std::exception& e) {
      throw Error("task graph node '" + exec.failure_site() +
                  "' failed: " + e.what());
    }
  }
  PRS_CHECK(exec.done(), "job graph drained with unfinished nodes");
  PRS_CHECK(job.st->nodes_done == cluster.size(),
            "job finished with missing nodes");

  JobResult<K, V> result;
  result.output = std::move(job.st->final_output);
  result.stats =
      collect_stats(cluster, counters0, *job.st, sim.now() - t0);
  policy->observe(collect_feedback(cluster, counters0,
                                   job.st->cpu_fraction,
                                   result.stats.elapsed));
  record_job_metrics(sim, *job.st, result.stats.elapsed);
  return result;
}

// -- pipelined iteration window -----------------------------------------------

/// Shared convergence state of one pipelined window (written by the
/// per-iteration advance host nodes, in iteration order).
template <typename K, typename V>
struct GraphWindow {
  bool finished = false;   // on_iteration said stop (or max reached)
  int completed = 0;       // counted iterations (overrun excluded)
  std::map<K, V> last_output;  // master output of the last counted one
};

/// Result of one window: the last counted iteration's output, window-total
/// stats (one counter diff over the whole window — overrun work included,
/// since those cycles really were spent), and how far the run advanced.
template <typename K, typename V>
struct WindowResult {
  JobResult<K, V> last;
  int completed = 0;
  bool finished = false;
};

/// Runs `window` iterations of an iterative job as ONE task graph
/// (JobConfig::pipeline_depth > 1): iteration j+1's per-rank spine hangs
/// off iteration j's advance node — the host node that applies
/// `on_iteration` to the master's gathered output. Iterative state updates
/// are globally synchronized (broadcast from the master), so the
/// cross-iteration edges keep the numeric trajectory byte-identical to
/// depth 1; the throughput win comes from the per-block D2H overlap inside
/// each iteration and from dispatching iteration j+1's startup without
/// returning to the host driver.
///
/// No node is ever cancelled mid-window: a converged run lets the
/// already-built successor iterations drain (their collectives are wired
/// into the graph; cancelling one rank's node would deadlock its peers)
/// and simply ignores their updates — the overrun is bounded by the window
/// size and visible in the stats.
template <typename K, typename V>
WindowResult<K, V> run_job_window(
    Cluster& cluster, const MapReduceSpec<K, V>& spec, const JobConfig& cfg,
    std::size_t n_items, SchedulePolicy* policy, int first_iter, int window,
    int max_iterations, double state_bytes,
    const std::function<bool(int, const std::map<K, V>&)>& on_iteration) {
  PRS_REQUIRE(window >= 1, "window needs at least one iteration");
  auto& sim = cluster.simulator();
  const int nodes = cluster.size();
  graph::TaskGraph g(spec.name + ":window@" + std::to_string(first_iter));
  auto fail = std::make_shared<GraphFailBox>();
  auto win = std::make_shared<GraphWindow<K, V>>();
  std::vector<GraphJob<K, V>> jobs;
  jobs.reserve(static_cast<std::size_t>(window));

  graph::NodeId prev_advance = graph::kNoNode;
  for (int j = 0; j < window; ++j) {
    const int it = first_iter + j;
    const std::string prefix = "i" + std::to_string(it) + ":";
    const int tag_base = j * kGraphIterTagStride;
    jobs.emplace_back();
    GraphJob<K, V>& job = jobs.back();
    job.st = make_job_state(cluster, spec, cfg, n_items, policy);
    job.st->cfg.charge_job_startup = cfg.charge_job_startup && it == 0;

    // The evolving state reaches the workers before their maps run: each
    // rank's spine hangs off its broadcast node (or directly off the
    // previous advance when there is nothing to broadcast).
    std::vector<graph::NodeId> after;
    if (state_bytes > 0.0 && nodes > 1) {
      after.resize(static_cast<std::size_t>(nodes), graph::kNoNode);
      for (int r = 0; r < nodes; ++r) {
        const int tag = kStateBroadcastTag + tag_base;
        const graph::NodeId bc = g.add_work(
            prefix + "n" + std::to_string(r) + ":state-bcast", "net", r,
            [cl = &cluster, r, state_bytes, tag](
                sim::Simulator& s, sim::Promise<sim::Unit> done) {
              (void)s;
              return g_state_broadcast(cl, r, state_bytes, tag,
                                       std::move(done));
            });
        g.depend(bc, prev_advance);
        after[static_cast<std::size_t>(r)] = bc;
      }
    } else if (prev_advance != graph::kNoNode) {
      after.assign(static_cast<std::size_t>(nodes), prev_advance);
    }
    build_job_graph(g, job, cluster, policy, fail, /*overlap=*/true,
                    tag_base, after, prefix);

    const graph::NodeId advance = g.add_host(
        prefix + "advance", "host", 0,
        [win, st = job.st, on_iteration, it, max_iterations] {
          if (win->finished) return;  // overrun: update ignored
          win->last_output = std::move(st->final_output);
          ++win->completed;
          const bool cont = on_iteration(it, win->last_output);
          win->finished = !cont || it + 1 >= max_iterations;
        });
    for (const graph::NodeId d : job.rank_done) g.depend(advance, d);
    prev_advance = advance;
  }
  if (!cfg.graph_dump_path.empty()) {
    write_graph_dot(g, cfg.graph_dump_path);
  }

  const double t0 = sim.now();
  const ClusterCounters counters0 = snapshot_counters(cluster);
  graph::GraphExecutor exec(sim, g);
  fail->exec = &exec;
  exec.start();
  try {
    sim.run();
  } catch (const Error&) {
    throw;
  } catch (const std::exception& e) {
    if (exec.failed()) {
      throw Error("task graph node '" + exec.failure_site() +
                  "' failed: " + e.what());
    }
    throw;
  }
  if (exec.failed()) {
    try {
      exec.rethrow_if_failed();
    } catch (const std::exception& e) {
      throw Error("task graph node '" + exec.failure_site() +
                  "' failed: " + e.what());
    }
  }
  PRS_CHECK(exec.done(), "iteration window drained with unfinished nodes");
  for (const auto& job : jobs) {
    PRS_CHECK(job.st->nodes_done == nodes,
              "window iteration finished with missing nodes");
  }
  PRS_CHECK(win->completed >= 1, "window completed no iterations");

  WindowResult<K, V> out;
  out.completed = win->completed;
  out.finished = win->finished;
  out.last.output = std::move(win->last_output);
  // One counter diff covers the window; the per-iteration JobState fields
  // (task counts, phase times) are summed across every iteration that ran.
  JobStats ws = collect_stats(cluster, counters0, *jobs.back().st,
                              sim.now() - t0);
  for (std::size_t j = 0; j + 1 < jobs.size(); ++j) {
    const JobState<K, V>& st = *jobs[j].st;
    ws.map_tasks += st.map_tasks;
    ws.reduce_tasks += st.reduce_tasks;
    ws.intermediate_pairs += st.intermediate_pairs;
    ws.startup_time += st.startup_time;
    ws.map_time += st.map_time;
    ws.shuffle_time += st.shuffle_time;
    ws.reduce_time += st.reduce_time;
    ws.gather_time += st.gather_time;
  }
  ws.iterations = win->completed;
  out.last.stats = ws;
  policy->observe(collect_feedback(cluster, counters0,
                                   jobs.back().st->cpu_fraction, ws.elapsed));
  record_job_metrics(sim, *jobs.back().st, ws.elapsed);
  return out;
}

}  // namespace detail
}  // namespace prs::core
