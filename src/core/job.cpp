#include "core/job.hpp"

namespace prs::core {

std::vector<InputSlice> InputSlice::blocks(std::size_t n) const {
  PRS_REQUIRE(n >= 1, "need at least one block");
  std::vector<InputSlice> out;
  const std::size_t total = size();
  if (total == 0) return out;
  const std::size_t count = std::min(n, total);
  std::size_t cursor = begin;
  for (std::size_t i = 0; i < count; ++i) {
    // Distribute the remainder over the first blocks.
    const std::size_t len = total / count + (i < total % count ? 1 : 0);
    out.push_back(InputSlice{cursor, cursor + len});
    cursor += len;
  }
  PRS_CHECK(cursor == end, "blocks must cover the slice exactly");
  return out;
}

std::vector<InputSlice> InputSlice::blocks_of(
    std::size_t items_per_block) const {
  PRS_REQUIRE(items_per_block >= 1, "block size must be positive");
  std::vector<InputSlice> out;
  for (std::size_t cursor = begin; cursor < end;
       cursor += items_per_block) {
    out.push_back(InputSlice{cursor, std::min(cursor + items_per_block, end)});
  }
  return out;
}

}  // namespace prs::core
