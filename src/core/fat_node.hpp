// A "fat node": host CPUs plus attached GPUs (paper §I).
//
// One FatNode owns the simulated devices of one cluster node and the
// region-based memory pool its device daemons allocate intermediates from
// (§III.C.2). Device daemons themselves are spawned per job by the job
// runner; the node is the long-lived hardware container.
#pragma once

#include <memory>
#include <vector>

#include "simdev/cpu_device.hpp"
#include "simdev/device_spec.hpp"
#include "simdev/gpu_device.hpp"
#include "simdev/region.hpp"
#include "simtime/simulator.hpp"

namespace prs::core {

/// Hardware configuration of every node in a cluster (homogeneous fat
/// nodes, the case the paper studies).
struct NodeConfig {
  simdev::DeviceSpec cpu = simdev::delta_cpu();
  simdev::DeviceSpec gpu = simdev::delta_c2070();
  int gpus_per_node = 1;
  /// CPU cores the runtime may use (0 = all). The paper spawns one daemon
  /// thread per GPU plus one for the CPU cores.
  int reserved_cpu_cores = 0;
};

class FatNode {
 public:
  FatNode(sim::Simulator& sim, const NodeConfig& cfg, int node_id);
  FatNode(const FatNode&) = delete;
  FatNode& operator=(const FatNode&) = delete;

  int id() const { return id_; }
  simdev::CpuDevice& cpu() { return cpu_; }
  const simdev::CpuDevice& cpu() const { return cpu_; }
  simdev::GpuDevice& gpu(int i = 0);
  int gpu_count() const { return static_cast<int>(gpus_.size()); }

  /// Region-based pool for intermediate key/value storage; cleared (freed
  /// all at once) when a job finishes on this node.
  simdev::Region& region() { return region_; }

  /// Sum of utilization counters across this node's devices.
  double cpu_busy() const { return cpu_.busy_time(); }
  double gpu_busy() const;
  double cpu_flops() const { return cpu_.flops_executed(); }
  double gpu_flops() const;
  double pcie_bytes() const;
  void reset_counters();

 private:
  int id_;
  simdev::CpuDevice cpu_;
  std::vector<std::unique_ptr<simdev::GpuDevice>> gpus_;
  simdev::Region region_;
};

}  // namespace prs::core
