// The PRS job runner: the paper's two-level scheduler plus the
// map -> combine -> shuffle -> reduce -> gather pipeline (§III).
//
// Level 1 (master task scheduler): splits the input into
// `partitions_per_node x nodes` partitions (paper default: two per fat
// node) and assigns them round-robin to worker nodes.
//
// Level 2 (per-node sub-task scheduler): for each partition either
//   * static  — split CPU/GPU at the analytic fraction p (Eq (8)); the CPU
//     daemon then makes multiplier x cores blocks, the GPU daemon makes one
//     block per recommended stream (Eqs (9)-(11));
//   * dynamic — fixed-size blocks in a channel, polled by per-core CPU
//     workers and per-stream GPU pipelines whenever they go idle.
//
// Everything runs as coroutine processes on the cluster's simulator; the
// blocking call run_job() drives the simulator until the job completes and
// returns results + utilization stats.
//
// NOTE (GCC 12): all co_await sites below follow the named-temporary rule
// documented in simtime/process.hpp.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/calibration.hpp"
#include "core/cluster.hpp"
#include "core/job.hpp"
#include "core/mapreduce_spec.hpp"
#include "obs/trace.hpp"
#include "simtime/channel.hpp"
#include "simtime/future.hpp"
#include "simtime/process.hpp"

namespace prs::core {
namespace detail {

inline constexpr int kShuffleTag = 100;
inline constexpr int kGatherTag = 200;
inline constexpr int kDistributeTag = 300;

/// Mutable state shared by the per-node processes of one job run.
template <typename K, typename V>
struct JobState {
  const MapReduceSpec<K, V>* spec = nullptr;
  JobConfig cfg;
  std::size_t n_items = 0;
  // Per-node scheduling decisions (inhomogeneous fat nodes get their own
  // Eq (8) split and stream count, §III.B.3.a).
  std::vector<double> cpu_fraction;  // p: share mapped on the node's CPU
  std::vector<int> gpu_streams;
  std::vector<std::vector<InputSlice>> node_partitions;

  // Outputs / accounting (single-threaded simulator: no locking needed).
  std::map<K, V> final_output;
  int nodes_done = 0;
  std::uint64_t map_tasks = 0;
  std::uint64_t reduce_tasks = 0;
  std::uint64_t intermediate_pairs = 0;

  // Phase breakdown: max over nodes (the stage barrier is the slowest node).
  double startup_time = 0.0;
  double map_time = 0.0;
  double shuffle_time = 0.0;
  double reduce_time = 0.0;
  double gather_time = 0.0;
};

/// Per-node transient state for the map stage.
template <typename K, typename V>
struct NodeMapBatch {
  std::deque<Emitter<K, V>> emitters;           // one per map task
  std::vector<sim::Future<sim::Unit>> futures;  // one per async device op
  std::uint64_t gpu_pairs = 0;                  // pairs produced on the GPU
  std::uint64_t gpu_items = 0;                  // input items mapped on GPU
};

/// Builds the timed CPU map task for `slice` (payload emits into a fresh
/// emitter owned by `batch`).
template <typename K, typename V>
simdev::CpuTask make_cpu_map_task(const JobState<K, V>& st,
                                  NodeMapBatch<K, V>& batch,
                                  InputSlice slice) {
  const auto& spec = *st.spec;
  const auto items = static_cast<double>(slice.size());
  simdev::CpuTask t;
  t.name = spec.name + ":map:cpu";
  t.workload.flops = items * spec.cpu_flops_per_item;
  t.workload.mem_traffic = items * spec.cpu_traffic_per_item();
  t.compute_efficiency = spec.efficiency.cpu_compute;
  t.memory_efficiency = spec.efficiency.cpu_memory;

  batch.emitters.emplace_back();
  Emitter<K, V>* emitter = &batch.emitters.back();
  const auto& fn = st.cfg.mode == ExecutionMode::kFunctional
                       ? spec.cpu_map
                       : spec.modeled_map;
  if (fn) {
    t.body = [fn, slice, emitter] { fn(slice, *emitter); };
  }
  return t;
}

/// Builds the timed GPU map kernel for `slice`.
template <typename K, typename V>
simdev::KernelDesc make_gpu_map_kernel(const JobState<K, V>& st,
                                       NodeMapBatch<K, V>& batch,
                                       InputSlice slice) {
  const auto& spec = *st.spec;
  const auto items = static_cast<double>(slice.size());
  simdev::KernelDesc k;
  k.name = spec.name + ":map:gpu";
  k.workload.flops = items * spec.gpu_flops_per_item;
  k.workload.mem_traffic = items * spec.gpu_traffic_per_item();
  k.compute_efficiency = spec.efficiency.gpu_compute;
  k.memory_efficiency = spec.efficiency.gpu_memory;

  batch.emitters.emplace_back();
  Emitter<K, V>* emitter = &batch.emitters.back();
  NodeMapBatch<K, V>* b = &batch;
  const auto& fn = st.cfg.mode == ExecutionMode::kFunctional
                       ? spec.gpu_map_or_default()
                       : spec.modeled_map;
  if (fn) {
    k.body = [fn, slice, emitter, b] {
      fn(slice, *emitter);
      b->gpu_pairs += emitter->size();
    };
  }
  return k;
}

/// Static dispatch of one partition: CPU share into multiplier x cores
/// blocks, GPU share into one block per stream. Pure enqueue, no awaiting.
template <typename K, typename V>
void dispatch_static(JobState<K, V>& st, FatNode& node,
                     NodeMapBatch<K, V>& batch, const InputSlice& partition) {
  const auto& spec = *st.spec;
  const auto rank = static_cast<std::size_t>(node.id());
  const int streams = st.gpu_streams[rank];
  auto [cpu_part, gpu_part] =
      partition.split_at_fraction(st.cpu_fraction[rank]);

  if (!cpu_part.empty()) {
    const int n_blocks = roofline::AnalyticScheduler::cpu_block_count(
        node.cpu().cores(), st.cfg.cpu_block_multiplier);
    for (const InputSlice& b :
         cpu_part.blocks(static_cast<std::size_t>(n_blocks))) {
      simdev::CpuTask t = make_cpu_map_task(st, batch, b);
      batch.futures.push_back(node.cpu().submit(std::move(t)));
      ++st.map_tasks;
    }
  }
  if (!gpu_part.empty() && node.gpu_count() > 0) {
    // One daemon per GPU card (paper §III.C.1): blocks round-robin over
    // cards, then over each card's streams.
    const auto cards = static_cast<std::size_t>(node.gpu_count());
    const auto n_blocks = static_cast<std::size_t>(streams) * cards;
    std::size_t i = 0;
    for (const InputSlice& b : gpu_part.blocks(n_blocks)) {
      auto& gpu = node.gpu(static_cast<int>(i % cards));
      simdev::Stream& stream =
          gpu.stream(static_cast<int>((i / cards) %
                                      static_cast<std::size_t>(streams)));
      ++i;
      if (!spec.gpu_data_cached) {
        batch.futures.push_back(stream.memcpy_h2d(
            static_cast<double>(b.size()) * spec.item_bytes));
      }
      simdev::KernelDesc k = make_gpu_map_kernel(st, batch, b);
      batch.futures.push_back(stream.launch(std::move(k)));
      batch.gpu_items += b.size();
      ++st.map_tasks;
    }
  }
}

/// Dynamic-mode CPU worker: polls blocks whenever its core frees up.
template <typename K, typename V>
sim::Process cpu_block_worker(sim::Simulator& sim, JobState<K, V>& st,
                              FatNode& node, NodeMapBatch<K, V>& batch,
                              sim::Channel<InputSlice>& blocks,
                              std::shared_ptr<int> live,
                              sim::Promise<sim::Unit> all_done) {
  (void)sim;
  for (;;) {
    auto b = co_await blocks.recv();
    if (!b) break;
    simdev::CpuTask t = make_cpu_map_task(st, batch, *b);
    ++st.map_tasks;
    auto fut = node.cpu().submit(std::move(t));
    co_await fut;
  }
  if (--*live == 0) all_done.set_value(sim::Unit{});
}

/// Dynamic-mode GPU pipeline: one per (card, stream), polls when idle.
template <typename K, typename V>
sim::Process gpu_block_worker(sim::Simulator& sim, JobState<K, V>& st,
                              FatNode& node, NodeMapBatch<K, V>& batch,
                              sim::Channel<InputSlice>& blocks, int card,
                              int stream_index, std::shared_ptr<int> live,
                              sim::Promise<sim::Unit> all_done) {
  (void)sim;
  auto& gpu = node.gpu(card);
  simdev::Stream& stream = gpu.stream(stream_index);
  const auto& spec = *st.spec;
  for (;;) {
    auto b = co_await blocks.recv();
    if (!b) break;
    if (!spec.gpu_data_cached) {
      auto copy = stream.memcpy_h2d(static_cast<double>(b->size()) *
                                    spec.item_bytes);
      co_await copy;
    }
    simdev::KernelDesc k = make_gpu_map_kernel(st, batch, *b);
    batch.gpu_items += b->size();
    ++st.map_tasks;
    auto fut = stream.launch(std::move(k));
    co_await fut;
  }
  if (--*live == 0) all_done.set_value(sim::Unit{});
}

/// Merges emitted pairs into an ordered map with the spec's combiner
/// (the node-local combine step; also used for the reduce merge).
template <typename K, typename V>
void combine_into(const MapReduceSpec<K, V>& spec, std::map<K, V>& acc,
                  std::vector<std::pair<K, V>>& pairs) {
  for (auto& [k, v] : pairs) {
    auto it = acc.find(k);
    if (it == acc.end()) {
      acc.emplace(std::move(k), std::move(v));
    } else {
      it->second = spec.combine(it->second, v);
    }
  }
}

/// The per-node worker process: §III.A.2's map stage and reduce stage.
template <typename K, typename V>
sim::Process node_main(Cluster& cluster, std::shared_ptr<JobState<K, V>> st,
                       int rank) {
  auto& sim = cluster.simulator();
  auto& node = cluster.node(rank);
  auto& comm = cluster.fabric().comm(rank);
  const auto& spec = *st->spec;
  const JobConfig& cfg = st->cfg;
  const int nodes = cluster.size();

  // Per-node phase spans + scheduler-decision markers go on the node's
  // "runner" track; tr == nullptr (the default) keeps every record site to
  // one branch.
  obs::TraceRecorder* tr = sim.tracer();
  if (tr != nullptr && !tr->enabled()) tr = nullptr;
  obs::TrackId runner_track = 0;
  obs::ScopedSpan job_span;
  if (tr != nullptr) {
    const auto rk = static_cast<std::size_t>(rank);
    runner_track = tr->track("node" + std::to_string(rank), "runner");
    // The level-2 decision this node runs with: Eq (8)'s CPU share p,
    // Eqs (9)-(11)'s stream count, and the block granularities.
    tr->instant(
        runner_track, "sched.decision", "sched",
        {obs::arg("p", st->cpu_fraction[rk]),
         obs::arg("gpu_streams", st->gpu_streams[rk]),
         obs::arg("partitions",
                  static_cast<std::uint64_t>(st->node_partitions[rk].size())),
         obs::arg("cpu_blocks",
                  roofline::AnalyticScheduler::cpu_block_count(
                      node.cpu().cores(), cfg.cpu_block_multiplier)),
         obs::arg("mode", cfg.scheduling == SchedulingMode::kStatic
                              ? "static"
                              : "dynamic")});
    job_span = obs::ScopedSpan(tr, runner_track, spec.name + ":job", "job");
  }

  const double phase_t0 = sim.now();

  // -- job startup (master handshake, daemon spin-up) ------------------------
  if (cfg.charge_job_startup) {
    co_await sim::delay(sim, calib::kPrsJobStartup);
  }

  // -- optional input distribution over the fabric ---------------------------
  std::size_t node_items = 0;
  for (const auto& p : st->node_partitions[static_cast<std::size_t>(rank)]) {
    node_items += p.size();
  }
  if (cfg.time_input_distribution && nodes > 1) {
    if (rank == 0) {
      for (int dst = 1; dst < nodes; ++dst) {
        std::size_t dst_items = 0;
        for (const auto& p :
             st->node_partitions[static_cast<std::size_t>(dst)]) {
          dst_items += p.size();
        }
        simnet::Message m{static_cast<double>(dst_items) * spec.item_bytes,
                          {}};
        comm.send(dst, kDistributeTag, std::move(m));
      }
    } else {
      auto r = comm.recv(0, kDistributeTag);
      (void)co_await r;
    }
  }

  st->startup_time = std::max(st->startup_time, sim.now() - phase_t0);
  if (tr != nullptr && sim.now() > phase_t0) {
    tr->complete(runner_track, "startup", "phase", phase_t0, sim.now());
  }
  const double map_t0 = sim.now();

  // -- map stage --------------------------------------------------------------
  NodeMapBatch<K, V> batch;
  for (const InputSlice& partition :
       st->node_partitions[static_cast<std::size_t>(rank)]) {
    if (partition.empty()) continue;
    // Sub-task scheduler round for this partition.
    co_await sim::delay(sim, calib::kPrsIterationOverhead);

    if (cfg.scheduling == SchedulingMode::kStatic) {
      // Task-dispatch overhead is serial on the daemon thread; charge it
      // up front for the blocks this partition will produce.
      const auto rk = static_cast<std::size_t>(rank);
      const double est_tasks =
          (st->cpu_fraction[rk] > 0.0
               ? roofline::AnalyticScheduler::cpu_block_count(
                     node.cpu().cores(), cfg.cpu_block_multiplier)
               : 0) +
          (st->cpu_fraction[rk] < 1.0
               ? st->gpu_streams[rk] * node.gpu_count()
               : 0);
      co_await sim::delay(sim, est_tasks * calib::kPrsTaskDispatch);
      dispatch_static(*st, node, batch, partition);
    } else {
      // Dynamic: fixed-size blocks polled by idle daemons.
      std::size_t block_items = cfg.dynamic_block_items;
      if (block_items == 0) {
        block_items = std::max<std::size_t>(
            1, partition.size() /
                   (4 * (static_cast<std::size_t>(node.cpu().cores()) + 1)));
      }
      auto blocks_list = partition.blocks_of(block_items);
      co_await sim::delay(
          sim, static_cast<double>(blocks_list.size()) *
                   calib::kPrsTaskDispatch);

      sim::Channel<InputSlice> blocks(sim);
      const int cpu_workers = cfg.use_cpu ? node.cpu().cores() : 0;
      const int gpu_cards =
          (cfg.use_gpu && node.gpu_count() > 0) ? node.gpu_count() : 0;
      const int gpu_workers =
          gpu_cards * st->gpu_streams[static_cast<std::size_t>(rank)];
      PRS_REQUIRE(cpu_workers + gpu_workers > 0,
                  "dynamic scheduling needs at least one device");
      auto live = std::make_shared<int>(cpu_workers + gpu_workers);
      sim::Promise<sim::Unit> all_done(sim);
      for (int w = 0; w < cpu_workers; ++w) {
        sim.spawn(cpu_block_worker(sim, *st, node, batch, blocks, live,
                                   all_done));
      }
      for (int card = 0; card < gpu_cards; ++card) {
        for (int w = 0; w < st->gpu_streams[static_cast<std::size_t>(rank)];
             ++w) {
          sim.spawn(gpu_block_worker(sim, *st, node, batch, blocks, card, w,
                                     live, all_done));
        }
      }
      for (const InputSlice& b : blocks_list) blocks.send(b);
      blocks.close();
      auto done_fut = all_done.get_future();
      co_await done_fut;
    }
  }
  // Barrier over this node's asynchronous map work (static mode).
  auto maps_done = sim::when_all(sim, batch.futures);
  co_await maps_done;

  // Intermediate data in GPU memory is copied back to CPU memory after all
  // local map tasks finish (§III.A.2): emitted pairs plus per-item
  // intermediate rows (spec.gpu_item_d2h_bytes). With several cards the
  // transfers run in parallel over each card's own PCI-E link.
  const double d2h_bytes =
      static_cast<double>(batch.gpu_pairs) * spec.pair_bytes +
      static_cast<double>(batch.gpu_items) * spec.gpu_item_d2h_bytes;
  if (d2h_bytes > 0.0 && node.gpu_count() > 0) {
    std::vector<sim::Future<sim::Unit>> copies;
    const double per_card =
        d2h_bytes / static_cast<double>(node.gpu_count());
    for (int g = 0; g < node.gpu_count(); ++g) {
      copies.push_back(node.gpu(g).default_stream().memcpy_d2h(per_card));
    }
    auto d2h = sim::when_all(sim, copies);
    co_await d2h;
  }

  // Host-side key/value handling cost (emit buffers, local sort/merge).
  co_await sim::delay(sim, static_cast<double>(node_items) *
                               calib::kPrsPerItemOverhead);

  st->map_time = std::max(st->map_time, sim.now() - map_t0);
  if (tr != nullptr) {
    tr->complete(runner_track, "map", "phase", map_t0, sim.now(),
                 {obs::arg("items", static_cast<std::uint64_t>(node_items)),
                  obs::arg("gpu_items", batch.gpu_items)});
  }

  // -- local combine (the paper's optional combiner(), Table 1) ---------------
  // -- then shuffle: pairs with the same key land on hash(key) % nodes --------
  std::vector<std::vector<std::pair<K, V>>> buckets(
      static_cast<std::size_t>(nodes));
  if (spec.local_combine) {
    std::map<K, V> combined;
    for (auto& e : batch.emitters) {
      st->intermediate_pairs += e.size();
      combine_into(spec, combined, e.pairs());
    }
    for (auto& [k, v] : combined) {
      const auto dst = std::hash<K>{}(k) % static_cast<std::size_t>(nodes);
      buckets[dst].emplace_back(k, std::move(v));
    }
  } else {
    // No combiner: every raw emitted pair goes on the wire; the reduce
    // stage does all the merging.
    for (auto& e : batch.emitters) {
      st->intermediate_pairs += e.size();
      for (auto& [k, v] : e.pairs()) {
        const auto dst = std::hash<K>{}(k) % static_cast<std::size_t>(nodes);
        buckets[dst].emplace_back(std::move(k), std::move(v));
      }
    }
  }
  std::vector<simnet::Message> outbound;
  outbound.reserve(static_cast<std::size_t>(nodes));
  for (int r = 0; r < nodes; ++r) {
    auto payload = std::make_shared<std::vector<std::pair<K, V>>>(
        std::move(buckets[static_cast<std::size_t>(r)]));
    const double bytes =
        static_cast<double>(payload->size()) * spec.pair_bytes;
    outbound.emplace_back(bytes, std::move(payload));
  }
  if (tr != nullptr) {
    auto& h = tr->metrics().histogram("shuffle.msg_bytes",
                                      obs::geometric_buckets(64.0, 4.0, 16));
    for (const auto& m : outbound) h.observe(m.bytes);
  }
  const double shuffle_t0 = sim.now();
  auto a2a = comm.all_to_all(std::move(outbound), kShuffleTag);
  std::vector<simnet::Message> inbound = co_await a2a;
  st->shuffle_time = std::max(st->shuffle_time, sim.now() - shuffle_t0);
  if (tr != nullptr) {
    tr->complete(runner_track, "shuffle", "phase", shuffle_t0, sim.now());
  }
  const double reduce_t0 = sim.now();

  // -- reduce stage -------------------------------------------------------------
  using Payload = std::shared_ptr<std::vector<std::pair<K, V>>>;
  std::map<K, V> reduced;
  std::size_t reduce_pairs = 0;
  for (auto& m : inbound) {
    if (!m.has_payload()) continue;
    auto& pairs = *m.template payload_as<Payload>();
    reduce_pairs += pairs.size();
    combine_into(spec, reduced, pairs);
  }
  // Charge the reduce tasks on the devices, split like the map stage.
  if (reduce_pairs > 0) {
    std::vector<sim::Future<sim::Unit>> reduce_futs;
    const auto cpu_pairs =
        static_cast<double>(reduce_pairs) *
        st->cpu_fraction[static_cast<std::size_t>(rank)];
    const double gpu_pairs = static_cast<double>(reduce_pairs) - cpu_pairs;
    if (cpu_pairs > 0.0) {
      simdev::CpuTask t;
      t.name = spec.name + ":reduce:cpu";
      t.workload.flops = cpu_pairs * spec.reduce_flops_per_pair;
      t.workload.mem_traffic = cpu_pairs * spec.pair_bytes;
      t.compute_efficiency = spec.efficiency.cpu_compute;
      t.memory_efficiency = spec.efficiency.cpu_memory;
      reduce_futs.push_back(node.cpu().submit(std::move(t)));
      ++st->reduce_tasks;
    }
    if (gpu_pairs > 0.0 && node.gpu_count() > 0) {
      auto& stream = node.gpu().default_stream();
      // Reduce input starts in CPU memory after the shuffle: stage it.
      reduce_futs.push_back(
          stream.memcpy_h2d(gpu_pairs * spec.pair_bytes));
      simdev::KernelDesc k;
      k.name = spec.name + ":reduce:gpu";
      k.workload.flops = gpu_pairs * spec.reduce_flops_per_pair;
      k.workload.mem_traffic = gpu_pairs * spec.pair_bytes;
      k.compute_efficiency = spec.efficiency.gpu_compute;
      k.memory_efficiency = spec.efficiency.gpu_memory;
      reduce_futs.push_back(stream.launch(std::move(k)));
      reduce_futs.push_back(
          stream.memcpy_d2h(gpu_pairs * spec.pair_bytes));
      ++st->reduce_tasks;
    }
    auto reduces_done = sim::when_all(sim, reduce_futs);
    co_await reduces_done;
  }
  st->reduce_time = std::max(st->reduce_time, sim.now() - reduce_t0);
  if (tr != nullptr) {
    tr->complete(runner_track, "reduce", "phase", reduce_t0, sim.now(),
                 {obs::arg("pairs",
                           static_cast<std::uint64_t>(reduce_pairs))});
  }
  const double gather_t0 = sim.now();

  // -- gather final values on the master ----------------------------------------
  {
    auto payload = std::make_shared<std::map<K, V>>(std::move(reduced));
    const double bytes =
        static_cast<double>(payload->size()) * spec.pair_bytes;
    simnet::Message mine{bytes, std::move(payload)};
    auto g = comm.gather(0, std::move(mine), kGatherTag);
    std::vector<simnet::Message> gathered = co_await g;
    if (rank == 0) {
      using MapPayload = std::shared_ptr<std::map<K, V>>;
      for (auto& m : gathered) {
        if (!m.has_payload()) continue;
        for (auto& [k, v] : *m.template payload_as<MapPayload>()) {
          // Shuffle guarantees disjoint keys across nodes.
          st->final_output.emplace(
              k, spec.finalize ? spec.finalize(k, std::move(v))
                               : std::move(v));
        }
      }
    }
  }

  st->gather_time = std::max(st->gather_time, sim.now() - gather_t0);
  if (tr != nullptr) {
    tr->complete(runner_track, "gather", "phase", gather_t0, sim.now());
  }

  // Region-based memory: all of this job's intermediates go at once.
  node.region().clear();
  ++st->nodes_done;
}

}  // namespace detail

/// Runs one MapReduce job on the cluster and drives the simulator until it
/// completes. Returns results (on the master) and utilization statistics.
template <typename K, typename V>
JobResult<K, V> run_job(Cluster& cluster, const MapReduceSpec<K, V>& spec,
                        const JobConfig& cfg, std::size_t n_items) {
  spec.validate();
  PRS_REQUIRE(cfg.use_cpu || cfg.use_gpu, "job needs at least one backend");
  PRS_REQUIRE(n_items > 0, "job needs a non-empty input");
  auto& sim = cluster.simulator();

  auto st = std::make_shared<detail::JobState<K, V>>();
  st->spec = &spec;
  st->cfg = cfg;
  st->n_items = n_items;

  // Per-node scheduling decisions (Eq (8) per node's hardware).
  const int nodes = cluster.size();
  st->cpu_fraction.resize(static_cast<std::size_t>(nodes), 0.0);
  st->gpu_streams.resize(static_cast<std::size_t>(nodes), 1);
  std::vector<double> capability(static_cast<std::size_t>(nodes), 0.0);
  for (int r = 0; r < nodes; ++r) {
    const auto rk = static_cast<std::size_t>(r);
    const auto& sched = cluster.scheduler(r);
    const int gpus = cluster.node(r).gpu_count();
    const auto split = sched.workload_split(
        spec.ai_cpu, spec.ai_gpu, !spec.gpu_data_cached, std::max(1, gpus));
    // CPU fraction p: override > analytic model > single-backend cases.
    if (!cfg.use_cpu) {
      st->cpu_fraction[rk] = 0.0;
    } else if (!cfg.use_gpu || gpus == 0) {
      st->cpu_fraction[rk] = 1.0;
    } else if (cfg.cpu_fraction_override >= 0.0) {
      PRS_REQUIRE(cfg.cpu_fraction_override <= 1.0,
                  "cpu fraction override must be in [0, 1]");
      st->cpu_fraction[rk] = cfg.cpu_fraction_override;
    } else {
      st->cpu_fraction[rk] = split.cpu_fraction;
    }
    // Node capability for the master's input split among inhomogeneous fat
    // nodes (§III.B.3.a): effective rate of the backends the job may use.
    const double fc = cfg.use_cpu ? split.cpu_rate : 0.0;
    const double fg =
        (cfg.use_gpu && gpus > 0) ? split.gpu_rate : 0.0;
    capability[rk] = fc + fg;
  }

  // Level-1 master scheduling: capability-weighted shares, each chopped
  // into partitions_per_node partitions (all equal in the homogeneous
  // case, reproducing the paper's round-robin).
  st->node_partitions.resize(static_cast<std::size_t>(nodes));
  double total_capability = 0.0;
  for (double c : capability) total_capability += c;
  PRS_CHECK(total_capability > 0.0, "no usable backend on any node");
  std::size_t cursor = 0;
  for (int r = 0; r < nodes; ++r) {
    const auto rk = static_cast<std::size_t>(r);
    const std::size_t share =
        r + 1 == nodes
            ? n_items - cursor
            : static_cast<std::size_t>(static_cast<double>(n_items) *
                                       capability[rk] / total_capability);
    InputSlice node_share{cursor, cursor + share};
    cursor += share;
    for (const InputSlice& p : node_share.blocks(
             static_cast<std::size_t>(cfg.partitions_per_node))) {
      st->node_partitions[rk].push_back(p);
    }
  }
  PRS_CHECK(cursor == n_items, "input not fully assigned");

  // GPU granularity: streams per Eqs (9)-(11), per node.
  for (int r = 0; r < nodes; ++r) {
    const auto rk = static_cast<std::size_t>(r);
    if (!cfg.use_gpu || cluster.node(r).gpu_count() == 0) continue;
    std::size_t node_items = 0;
    for (const auto& p : st->node_partitions[rk]) node_items += p.size();
    const double partition_bytes =
        static_cast<double>(node_items) /
        static_cast<double>(cfg.partitions_per_node) *
        (1.0 - st->cpu_fraction[rk]) * spec.item_bytes;
    if (partition_bytes > 0.0) {
      roofline::AiOfBlock ai = [&spec](double b) {
        return spec.ai_of_block_or_default(b);
      };
      st->gpu_streams[rk] = cluster.scheduler(r).recommended_streams(
          partition_bytes, ai, cfg.stream_overlap_threshold);
    }
  }

  // Snapshot counters, run, and diff.
  const double t0 = sim.now();
  const double cpu_busy0 = cluster.total_cpu_busy();
  const double gpu_busy0 = cluster.total_gpu_busy();
  const double cpu_flops0 = cluster.total_cpu_flops();
  const double gpu_flops0 = cluster.total_gpu_flops();
  const double pcie0 = cluster.total_pcie_bytes();
  const double net0 = cluster.fabric().bytes_sent();

  for (int r = 0; r < nodes; ++r) {
    sim.spawn(detail::node_main<K, V>(cluster, st, r));
  }
  sim.run();
  PRS_CHECK(st->nodes_done == nodes, "job finished with missing nodes");

  JobResult<K, V> result;
  result.output = std::move(st->final_output);
  result.stats.elapsed = sim.now() - t0;
  result.stats.cpu_busy = cluster.total_cpu_busy() - cpu_busy0;
  result.stats.gpu_busy = cluster.total_gpu_busy() - gpu_busy0;
  result.stats.cpu_flops = cluster.total_cpu_flops() - cpu_flops0;
  result.stats.gpu_flops = cluster.total_gpu_flops() - gpu_flops0;
  result.stats.pcie_bytes = cluster.total_pcie_bytes() - pcie0;
  result.stats.network_bytes = cluster.fabric().bytes_sent() - net0;
  result.stats.map_tasks = st->map_tasks;
  result.stats.reduce_tasks = st->reduce_tasks;
  result.stats.intermediate_pairs = st->intermediate_pairs;
  result.stats.startup_time = st->startup_time;
  result.stats.map_time = st->map_time;
  result.stats.shuffle_time = st->shuffle_time;
  result.stats.reduce_time = st->reduce_time;
  result.stats.gather_time = st->gather_time;

  if (obs::TraceRecorder* tr = sim.tracer();
      tr != nullptr && tr->enabled()) {
    auto& m = tr->metrics();
    m.counter("job.runs").increment();
    m.counter("job.map_tasks").add(static_cast<double>(st->map_tasks));
    m.counter("job.reduce_tasks").add(static_cast<double>(st->reduce_tasks));
    m.counter("job.intermediate_pairs")
        .add(static_cast<double>(st->intermediate_pairs));
    m.counter("job.virtual_seconds").add(result.stats.elapsed);
  }
  return result;
}

}  // namespace prs::core
