// The PRS job runner: a thin orchestrator over the layered pipeline.
//
// Level 1 (master task scheduler): the Partitioner splits the input among
// the fat nodes by capability and chops each share into
// `partitions_per_node` partitions (paper default: two per fat node).
//
// Level 2 (per-node sub-task scheduler): a pluggable SchedulePolicy —
// static (Eq (8) + Eqs (9)-(11)), dynamic (channel-polled blocks), or
// adaptive (analytic p refined from observed busy times) — decides the
// CPU/GPU split, stream counts and block granularity.
//
// Each node then runs the map -> combine -> shuffle -> reduce -> gather
// stage objects (core/pipeline.hpp) from the node_main coroutine below;
// run_job() drives the simulator until the job completes and returns
// results + utilization stats, feeding observed busy times back to the
// policy so stateful policies can learn across jobs/iterations.
//
// NOTE (GCC 12): all co_await sites below follow the named-temporary rule
// documented in simtime/process.hpp.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/fault_tolerant.hpp"
#include "numa/topology.hpp"
#include "core/job_graph.hpp"
#include "core/partitioner.hpp"
#include "core/pipeline.hpp"
#include "core/schedule_policy.hpp"

namespace prs::core {
namespace detail {

/// The per-node worker process: §III.A.2's pipeline, one stage at a time.
template <typename K, typename V>
sim::Process node_main(Cluster& cluster, std::shared_ptr<JobState<K, V>> st,
                       SchedulePolicy* policy, int rank) {
  auto& sim = cluster.simulator();
  auto& comm = cluster.fabric().comm(rank);
  const auto& spec = *st->spec;
  const JobConfig& cfg = st->cfg;
  const int nodes = cluster.size();
  const auto rk = static_cast<std::size_t>(rank);

  // Per-node phase spans + scheduler-decision markers go on the node's
  // "runner" track; tr == nullptr (the default) keeps every record site to
  // one branch.
  obs::TraceRecorder* tr = sim.tracer();
  if (tr != nullptr && !tr->enabled()) tr = nullptr;
  StageContext<K, V> ctx;
  ctx.cluster = &cluster;
  ctx.st = st.get();
  ctx.policy = policy;
  ctx.rank = rank;
  obs::ScopedSpan job_span;
  if (tr != nullptr) {
    ctx.tr = tr;
    ctx.runner_track = tr->track("node" + std::to_string(rank), "runner");
    // The level-2 decision this node runs with: Eq (8)'s CPU share p,
    // Eqs (9)-(11)'s stream count, and the block granularities.
    tr->instant(
        ctx.runner_track, "sched.decision", "sched",
        {obs::arg("p", st->cpu_fraction[rk]),
         obs::arg("gpu_streams", st->gpu_streams[rk]),
         obs::arg("partitions",
                  static_cast<std::uint64_t>(st->node_partitions[rk].size())),
         obs::arg("cpu_blocks",
                  roofline::AnalyticScheduler::cpu_block_count(
                      ctx.node().cpu().cores(), cfg.cpu_block_multiplier)),
         obs::arg("mode", policy->name())});
    job_span =
        obs::ScopedSpan(tr, ctx.runner_track, spec.name + ":job", "job");
  }

  const double phase_t0 = sim.now();

  // -- job startup (master handshake, daemon spin-up) ------------------------
  if (cfg.charge_job_startup) {
    co_await sim::delay(sim, calib::kPrsJobStartup);
  }

  // -- optional input distribution over the fabric ---------------------------
  std::size_t node_items = 0;
  for (const auto& p : st->node_partitions[rk]) node_items += p.size();
  if (cfg.time_input_distribution && nodes > 1) {
    if (rank == 0) {
      for (int dst = 1; dst < nodes; ++dst) {
        std::size_t dst_items = 0;
        for (const auto& p :
             st->node_partitions[static_cast<std::size_t>(dst)]) {
          dst_items += p.size();
        }
        simnet::Message m{static_cast<double>(dst_items) * spec.item_bytes,
                          {}};
        comm.send(dst, kDistributeTag, std::move(m));
      }
    } else {
      auto r = comm.recv(0, kDistributeTag);
      (void)co_await r;
    }
  }

  st->startup_time = std::max(st->startup_time, sim.now() - phase_t0);
  if (tr != nullptr && sim.now() > phase_t0) {
    tr->complete(ctx.runner_track, "startup", "phase", phase_t0, sim.now());
  }
  const double map_t0 = sim.now();

  // -- map stage --------------------------------------------------------------
  MapStage<K, V> map(ctx);
  for (const InputSlice& partition : st->node_partitions[rk]) {
    if (partition.empty()) continue;
    // Sub-task scheduler round for this partition.
    co_await sim::delay(sim, calib::kPrsIterationOverhead);
    if (policy->dispatch() == SchedulingMode::kStatic) {
      // Task-dispatch overhead is serial on the daemon thread; charge it
      // up front for the blocks this partition will produce.
      co_await sim::delay(sim, map.static_dispatch_cost());
      map.dispatch_static(partition);
    } else {
      // Dynamic: fixed-size blocks polled by idle daemons; dispatch cost
      // is charged per block as the dispatcher hands them out.
      auto drained = map.start_dynamic(partition);
      co_await drained;
    }
  }
  auto maps_done = map.barrier();
  co_await maps_done;
  auto d2h = map.copy_back();
  co_await d2h;
  co_await sim::delay(sim, map.host_merge_cost(node_items));
  map.finish(map_t0, node_items);

  // -- local combine + shuffle ------------------------------------------------
  ShuffleStage<K, V> shuffle(ctx);
  auto outbound = shuffle.prepare(map.batch());
  const double shuffle_t0 = sim.now();
  auto a2a = comm.all_to_all(std::move(outbound), kShuffleTag);
  std::vector<simnet::Message> inbound = co_await a2a;
  shuffle.finish(shuffle_t0);

  // -- reduce stage -----------------------------------------------------------
  const double reduce_t0 = sim.now();
  ReduceStage<K, V> reduce(ctx);
  std::size_t reduce_pairs = 0;
  std::map<K, V> reduced = reduce.merge(inbound, reduce_pairs);
  auto reduce_futs = reduce.submit_device_tasks(reduce_pairs);
  auto reduces_done = sim::when_all(sim, reduce_futs);
  co_await reduces_done;
  reduce.finish(reduce_t0, reduce_pairs);

  // -- gather final values on the master --------------------------------------
  const double gather_t0 = sim.now();
  GatherStage<K, V> gather(ctx);
  simnet::Message mine = gather.pack(std::move(reduced));
  auto g = comm.gather(0, std::move(mine), kGatherTag);
  std::vector<simnet::Message> gathered = co_await g;
  if (rank == 0) gather.unpack_on_master(gathered);
  gather.finish(gather_t0);

  // Region-based memory: all of this job's intermediates go at once.
  ctx.node().region().clear();
  ++st->nodes_done;
}

}  // namespace detail

/// Runs one MapReduce job on the cluster and drives the simulator until it
/// completes. Returns results (on the master) and utilization statistics.
template <typename K, typename V>
JobResult<K, V> run_job(Cluster& cluster, const MapReduceSpec<K, V>& spec,
                        const JobConfig& cfg, std::size_t n_items) {
  spec.validate();
  PRS_REQUIRE(cfg.use_cpu || cfg.use_gpu, "job needs at least one backend");
  PRS_REQUIRE(n_items > 0, "job needs a non-empty input");

  // Per-job NUMA override: hold the enablement for the whole job (every
  // path below shares this scope), restoring the prior state on return.
  std::optional<numa::ScopedEnable> numa_scope;
  if (cfg.host_numa >= 0) numa_scope.emplace(cfg.host_numa == 1);

  auto& sim = cluster.simulator();

  // The level-2 policy: an explicit (possibly stateful) instance from the
  // config, or a stateless default built from cfg.scheduling.
  std::unique_ptr<SchedulePolicy> default_policy;
  SchedulePolicy* policy = cfg.policy;
  if (policy == nullptr) {
    default_policy = make_policy(cfg.scheduling);
    policy = default_policy.get();
  }

  // With a fault injector attached the job runs on the tolerant path
  // (timeouts, retries, speculation, blacklisting); without one, nothing
  // below this line changes and virtual time stays byte-identical.
  if (cfg.faults != nullptr) {
    return detail::run_job_tolerant<K, V>(cluster, spec, cfg, n_items,
                                          policy);
  }

  // Graph engine: the same stages built as one task graph per job.
  // Dynamic scheduling keeps the channel-polling daemons of the stage
  // runner — its block assignment is inherently time-driven, not a static
  // dependency structure.
  if (cfg.engine == ExecEngine::kGraph &&
      policy->dispatch() == SchedulingMode::kStatic) {
    return detail::run_job_graph<K, V>(cluster, spec, cfg, n_items, policy);
  }

  // Level-1/level-2 scheduling decisions (shared with the graph engine).
  const int nodes = cluster.size();
  auto st = detail::make_job_state(cluster, spec, cfg, n_items, policy);

  // Snapshot counters, run, and diff.
  const double t0 = sim.now();
  const detail::ClusterCounters counters0 = detail::snapshot_counters(cluster);
  for (int r = 0; r < nodes; ++r) {
    sim.spawn(detail::node_main<K, V>(cluster, st, policy, r));
  }
  sim.run();
  PRS_CHECK(st->nodes_done == nodes, "job finished with missing nodes");

  JobResult<K, V> result;
  result.output = std::move(st->final_output);
  result.stats = detail::collect_stats(cluster, counters0, *st,
                                       sim.now() - t0);

  // Feed observed per-node busy times back so stateful policies (adaptive)
  // can refine their split for the next job/iteration.
  policy->observe(detail::collect_feedback(cluster, counters0,
                                           st->cpu_fraction,
                                           result.stats.elapsed));
  detail::record_job_metrics(sim, *st, result.stats.elapsed);
  return result;
}

}  // namespace prs::core
