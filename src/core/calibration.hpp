// Calibration constants for the reproduction.
//
// Two groups:
//  1. Per-application measured-efficiency factors — the fraction of the
//     roofline each app's kernel attains on each device. The paper measures
//     these implicitly (its "p calculated by app profiling" row in Table 5
//     and the speedups in §IV.B); we calibrate them once so the *measured*
//     side of the reproduction lands where the paper's measurements landed.
//  2. Host-side framework overheads — per-job / per-iteration / per-task /
//     per-point costs of each runtime (PRS, plain MPI, Mahout/Hadoop),
//     fitted to Table 3's columns (see DESIGN.md "Calibration" and the
//     derivations in bench/bench_table3_cmeans_runtimes.cpp).
//
// Everything here is a *constant of the simulated testbed*, not a tuning
// knob the scheduler sees: the analytic model (Eq (8)) never reads these.
#pragma once

#include "common/units.hpp"

namespace prs::core::calib {

/// Fraction of the device roofline an application kernel attains.
struct AppEfficiency {
  double cpu_compute = 1.0;
  double cpu_memory = 1.0;
  double gpu_compute = 1.0;
  double gpu_memory = 1.0;
};

/// GEMV (cuBLAS / MKL path, §IV.A.3). CPU attains ~28% of the bandwidth
/// roofline (pageable buffers, no NUMA pinning on the Delta nodes);
/// calibrated so the profiled split lands at the paper's p = 90.8% and the
/// GPU+CPU speedup at ~+1011.8%. The GPU side needs no derating: its rate
/// is PCI-E staging-bound, which the device model charges exactly.
inline constexpr AppEfficiency kGemv{0.28, 0.28, 1.0, 1.0};

/// C-means (Pangborn CUDA kernels + C++ mapper). Calibrated to the paper's
/// profiled p = 11.9% and the +11.56% co-processing speedup.
inline constexpr AppEfficiency kCmeans{0.38, 0.38, 0.35, 0.35};

/// GMM/EM. Higher intensity kernels run closer to peak; calibrated to the
/// profiled p = 13.1% and the +15.4% speedup.
inline constexpr AppEfficiency kGmm{0.60, 0.60, 0.50, 0.50};

/// K-means shares C-means' kernels and efficiencies (§IV.A.1: "similar
/// performance ratios for Kmeans").
inline constexpr AppEfficiency kKmeans = kCmeans;

/// Generic word-count style text processing: bandwidth-bound scalar code.
inline constexpr AppEfficiency kWordCount{0.5, 0.5, 0.4, 0.4};

// -- PRS runtime overheads (fitted to Table 3's PRS/GPU column) ---------------

/// One-time cost of starting a PRS job: master/worker handshakes, partition
/// metadata distribution, daemon spawn-up across the cluster. Fitted to the
/// intercept of Table 3's PRS/GPU column.
inline constexpr double kPrsJobStartup = 1.2;

/// Per-iteration fixed cost of the two-level scheduler (partition split,
/// sub-task scheduler round, result merge bookkeeping).
inline constexpr double kPrsIterationOverhead = 0.5e-3;

/// Per-task dispatch cost (queue operations, key/value buffer setup,
/// region-allocator bookkeeping).
inline constexpr double kPrsTaskDispatch = 5e-6;

/// Per-input-item key/value handling cost on the host (emit + combine
/// path). Kept small: Figure 6's +11.56% co-processing gain bounds how much
/// per-item overhead the PRS path can carry (shared costs dilute it).
inline constexpr double kPrsPerItemOverhead = 2e-9;

// -- plain-MPI baseline overheads (fitted to Table 3's MPI columns) ----------

/// MPI job launch (mpirun + connection setup).
inline constexpr double kMpiJobStartup = 0.1;

/// Host-side per-point-per-iteration cost of the MPI/GPU reference
/// implementation (kernel launch batching, pageable-copy bookkeeping).
/// Fitted to the slope of Table 3's MPI/GPU column net of kernel time.
inline constexpr double kMpiGpuPerItem = 14e-9;

/// The paper's MPI/CPU reference is an unvectorized C++ implementation
/// (gcc 4.4.6, §IV): it attains only ~9.5% of the CPU roofline. This is a
/// property of that baseline binary, not of the hardware.
inline constexpr double kMpiCpuEfficiency = 0.095;

// -- Mahout/Hadoop baseline (fitted to Table 3's Mahout row) -----------------

/// Per-iteration Hadoop job submission + JVM spin-up + scheduling.
inline constexpr double kHadoopPerIterationLaunch = 1.7;

/// Per-point-per-iteration HDFS read/write + serialization cost.
inline constexpr double kHadoopPerItem = 1.2e-6;

// -- shared workload conventions ----------------------------------------------

/// Number of C-means iterations behind Table 3's timings. The paper does
/// not state it; fitting the MPI/GPU column against the calibrated device
/// model yields ~300 (see bench_table3): 300 * (N/4 * 5*M*D flops / Fg)
/// reproduces 0.53 / 0.945 / 1.78 s almost exactly.
inline constexpr int kTable3Iterations = 300;

}  // namespace prs::core::calib
