// Stage objects of the PRS execution pipeline (paper §III.A.2):
// map -> combine -> shuffle -> reduce -> gather, one instance per node per
// job, composed by the thin node_main orchestrator in job_runner.hpp.
//
// Each stage owns its logic, accounting, and tracing/metrics sites; every
// co_await stays in node_main so the orchestrator remains the single
// coroutine and stages stay plain (unit-sized, testable) objects. The only
// auxiliary processes are the dynamic-mode device daemons and the block
// dispatcher (§III.B.2), spawned by MapStage::start_dynamic.
//
// NOTE (GCC 12): all co_await sites follow the named-temporary rule
// documented in simtime/process.hpp.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/calibration.hpp"
#include "core/cluster.hpp"
#include "core/job.hpp"
#include "core/mapreduce_spec.hpp"
#include "core/schedule_policy.hpp"
#include "obs/trace.hpp"
#include "simtime/channel.hpp"
#include "simtime/future.hpp"
#include "simtime/process.hpp"

namespace prs::core {
namespace detail {

inline constexpr int kShuffleTag = 100;
inline constexpr int kGatherTag = 200;
inline constexpr int kDistributeTag = 300;

/// Type-erased scheduling view of a spec (the policy layer is not
/// templated on key/value types). The returned shape borrows `spec`.
template <typename K, typename V>
JobShape job_shape(const MapReduceSpec<K, V>& spec) {
  JobShape shape;
  shape.ai_cpu = spec.ai_cpu;
  shape.ai_gpu = spec.ai_gpu;
  shape.gpu_data_cached = spec.gpu_data_cached;
  shape.item_bytes = spec.item_bytes;
  const auto* s = &spec;
  shape.ai_of_block = [s](double b) { return s->ai_of_block_or_default(b); };
  return shape;
}

/// Mutable state shared by the per-node processes of one job run.
template <typename K, typename V>
struct JobState {
  const MapReduceSpec<K, V>* spec = nullptr;
  JobConfig cfg;
  std::size_t n_items = 0;
  // Per-node scheduling decisions (inhomogeneous fat nodes get their own
  // Eq (8) split and stream count, §III.B.3.a).
  std::vector<double> cpu_fraction;  // p: share mapped on the node's CPU
  std::vector<int> gpu_streams;
  std::vector<std::vector<InputSlice>> node_partitions;

  // Outputs / accounting (single-threaded simulator: no locking needed).
  std::map<K, V> final_output;
  int nodes_done = 0;
  std::uint64_t map_tasks = 0;
  std::uint64_t reduce_tasks = 0;
  std::uint64_t intermediate_pairs = 0;

  // Phase breakdown: max over nodes (the stage barrier is the slowest node).
  double startup_time = 0.0;
  double map_time = 0.0;
  double shuffle_time = 0.0;
  double reduce_time = 0.0;
  double gather_time = 0.0;
};

/// Everything the stages of one node share for one job run.
template <typename K, typename V>
struct StageContext {
  Cluster* cluster = nullptr;
  JobState<K, V>* st = nullptr;
  SchedulePolicy* policy = nullptr;
  int rank = 0;
  obs::TraceRecorder* tr = nullptr;  // nullptr when tracing is off
  obs::TrackId runner_track = 0;

  sim::Simulator& sim() const { return cluster->simulator(); }
  FatNode& node() const { return cluster->node(rank); }
  const MapReduceSpec<K, V>& spec() const { return *st->spec; }
  std::size_t rk() const { return static_cast<std::size_t>(rank); }
};

/// Per-node transient state for the map stage.
template <typename K, typename V>
struct NodeMapBatch {
  std::deque<Emitter<K, V>> emitters;           // one per map task
  std::vector<sim::Future<sim::Unit>> futures;  // one per async device op
  std::uint64_t gpu_pairs = 0;                  // pairs produced on the GPU
  std::uint64_t gpu_items = 0;                  // input items mapped on GPU
};

/// Builds the timed CPU map task for `slice` (payload emits into a fresh
/// emitter owned by `batch`).
template <typename K, typename V>
simdev::CpuTask make_cpu_map_task(const JobState<K, V>& st,
                                  NodeMapBatch<K, V>& batch,
                                  InputSlice slice) {
  const auto& spec = *st.spec;
  const auto items = static_cast<double>(slice.size());
  simdev::CpuTask t;
  t.name = spec.name + ":map:cpu";
  t.workload.flops = items * spec.cpu_flops_per_item;
  t.workload.mem_traffic = items * spec.cpu_traffic_per_item();
  t.compute_efficiency = spec.efficiency.cpu_compute;
  t.memory_efficiency = spec.efficiency.cpu_memory;

  batch.emitters.emplace_back();
  Emitter<K, V>* emitter = &batch.emitters.back();
  const auto& fn = st.cfg.mode == ExecutionMode::kFunctional
                       ? spec.cpu_map
                       : spec.modeled_map;
  if (fn) {
    t.body = [fn, slice, emitter] { fn(slice, *emitter); };
  }
  return t;
}

/// Builds the timed GPU map kernel for `slice`.
template <typename K, typename V>
simdev::KernelDesc make_gpu_map_kernel(const JobState<K, V>& st,
                                       NodeMapBatch<K, V>& batch,
                                       InputSlice slice) {
  const auto& spec = *st.spec;
  const auto items = static_cast<double>(slice.size());
  simdev::KernelDesc k;
  k.name = spec.name + ":map:gpu";
  k.workload.flops = items * spec.gpu_flops_per_item;
  k.workload.mem_traffic = items * spec.gpu_traffic_per_item();
  k.compute_efficiency = spec.efficiency.gpu_compute;
  k.memory_efficiency = spec.efficiency.gpu_memory;

  batch.emitters.emplace_back();
  Emitter<K, V>* emitter = &batch.emitters.back();
  NodeMapBatch<K, V>* b = &batch;
  const auto& fn = st.cfg.mode == ExecutionMode::kFunctional
                       ? spec.gpu_map_or_default()
                       : spec.modeled_map;
  if (fn) {
    k.body = [fn, slice, emitter, b] {
      fn(slice, *emitter);
      b->gpu_pairs += emitter->size();
    };
  }
  return k;
}

/// Dynamic-mode CPU worker: polls blocks whenever its core frees up.
template <typename K, typename V>
sim::Process cpu_block_worker(JobState<K, V>& st, FatNode& node,
                              NodeMapBatch<K, V>& batch,
                              sim::Channel<InputSlice>& blocks,
                              std::shared_ptr<int> live,
                              sim::Promise<sim::Unit> all_done) {
  for (;;) {
    auto b = co_await blocks.recv();
    if (!b) break;
    simdev::CpuTask t = make_cpu_map_task(st, batch, *b);
    ++st.map_tasks;
    auto fut = node.cpu().submit(std::move(t));
    co_await fut;
  }
  if (--*live == 0) all_done.set_value(sim::Unit{});
}

/// Dynamic-mode GPU pipeline: one per (card, stream), polls when idle.
template <typename K, typename V>
sim::Process gpu_block_worker(JobState<K, V>& st, FatNode& node,
                              NodeMapBatch<K, V>& batch,
                              sim::Channel<InputSlice>& blocks, int card,
                              int stream_index, std::shared_ptr<int> live,
                              sim::Promise<sim::Unit> all_done) {
  auto& gpu = node.gpu(card);
  simdev::Stream& stream = gpu.stream(stream_index);
  const auto& spec = *st.spec;
  for (;;) {
    auto b = co_await blocks.recv();
    if (!b) break;
    if (!spec.gpu_data_cached) {
      auto copy = stream.memcpy_h2d(static_cast<double>(b->size()) *
                                    spec.item_bytes);
      co_await copy;
    }
    simdev::KernelDesc k = make_gpu_map_kernel(st, batch, *b);
    batch.gpu_items += b->size();
    ++st.map_tasks;
    auto fut = stream.launch(std::move(k));
    co_await fut;
  }
  if (--*live == 0) all_done.set_value(sim::Unit{});
}

/// Dynamic-mode dispatcher: feeds blocks into the channel, charging the
/// serial per-task dispatch cost as each block is handed out — daemons pay
/// the dispatch latency only for blocks they actually pull, instead of the
/// whole partition's worth up front.
template <typename K, typename V>
sim::Process block_dispatcher(sim::Simulator& sim, JobState<K, V>& st,
                              std::shared_ptr<std::vector<InputSlice>> list,
                              sim::Channel<InputSlice>& blocks) {
  (void)st;
  for (const InputSlice& b : *list) {
    auto handoff = sim::delay(sim, calib::kPrsTaskDispatch);
    co_await handoff;
    blocks.send(b);
  }
  blocks.close();
}

/// Merges emitted pairs into an ordered map with the spec's combiner
/// (the node-local combine step; also used for the reduce merge).
template <typename K, typename V>
void combine_into(const MapReduceSpec<K, V>& spec, std::map<K, V>& acc,
                  std::vector<std::pair<K, V>>& pairs) {
  for (auto& [k, v] : pairs) {
    auto it = acc.find(k);
    if (it == acc.end()) {
      acc.emplace(std::move(k), std::move(v));
    } else {
      it->second = spec.combine(it->second, v);
    }
  }
}

// -- map stage ----------------------------------------------------------------

/// §III.A.2 map stage: dispatches map blocks to the device daemons (static
/// enqueue or dynamic channel polling per the policy), then copies GPU
/// intermediates back and charges host-side key/value handling.
template <typename K, typename V>
class MapStage {
 public:
  explicit MapStage(StageContext<K, V>& ctx) : ctx_(ctx) {}

  NodeMapBatch<K, V>& batch() { return batch_; }

  /// Serial dispatch cost charged up front in static mode: the daemon
  /// thread enqueues every block of this partition before any runs.
  double static_dispatch_cost() const {
    const auto& st = *ctx_.st;
    const double est_tasks =
        (st.cpu_fraction[ctx_.rk()] > 0.0
             ? roofline::AnalyticScheduler::cpu_block_count(
                   ctx_.node().cpu().cores(), st.cfg.cpu_block_multiplier)
             : 0) +
        (st.cpu_fraction[ctx_.rk()] < 1.0
             ? st.gpu_streams[ctx_.rk()] * ctx_.node().gpu_count()
             : 0);
    return est_tasks * calib::kPrsTaskDispatch;
  }

  /// One GPU map block of a static plan, pinned to (card, stream) by the
  /// paper's round-robin (§III.C.1).
  struct GpuBlockPlan {
    InputSlice slice;
    int card = 0;
    int stream = 0;
  };

  /// The static sub-task plan for one partition: CPU share into
  /// multiplier x cores blocks, GPU share into one block per (card,
  /// stream) round-robin. Pure description — shared by the legacy enqueue
  /// below and the task-graph builder (core/job_graph.hpp), so both paths
  /// produce the same blocks in the same order.
  struct StaticPlan {
    std::vector<InputSlice> cpu_blocks;
    std::vector<GpuBlockPlan> gpu_blocks;
  };

  StaticPlan plan_static(const InputSlice& partition) const {
    const auto& st = *ctx_.st;
    FatNode& node = ctx_.node();
    const int streams = st.gpu_streams[ctx_.rk()];
    auto [cpu_part, gpu_part] =
        partition.split_at_fraction(st.cpu_fraction[ctx_.rk()]);
    StaticPlan plan;
    if (!cpu_part.empty()) {
      const int n_blocks = roofline::AnalyticScheduler::cpu_block_count(
          node.cpu().cores(), st.cfg.cpu_block_multiplier);
      for (const InputSlice& b :
           cpu_part.blocks(static_cast<std::size_t>(n_blocks))) {
        plan.cpu_blocks.push_back(b);
      }
    }
    if (!gpu_part.empty() && node.gpu_count() > 0) {
      // One daemon per GPU card (paper §III.C.1): blocks round-robin over
      // cards, then over each card's streams.
      const auto cards = static_cast<std::size_t>(node.gpu_count());
      const auto n_blocks = static_cast<std::size_t>(streams) * cards;
      std::size_t i = 0;
      for (const InputSlice& b : gpu_part.blocks(n_blocks)) {
        GpuBlockPlan gb;
        gb.slice = b;
        gb.card = static_cast<int>(i % cards);
        gb.stream = static_cast<int>(
            (i / cards) % static_cast<std::size_t>(streams));
        ++i;
        plan.gpu_blocks.push_back(gb);
      }
    }
    return plan;
  }

  /// Static dispatch of one partition: enqueues every planned block on its
  /// device. Pure enqueue, no await.
  void dispatch_static(const InputSlice& partition) {
    auto& st = *ctx_.st;
    FatNode& node = ctx_.node();
    const auto& spec = ctx_.spec();
    const StaticPlan plan = plan_static(partition);
    for (const InputSlice& b : plan.cpu_blocks) {
      simdev::CpuTask t = make_cpu_map_task(st, batch_, b);
      batch_.futures.push_back(node.cpu().submit(std::move(t)));
      ++st.map_tasks;
    }
    for (const GpuBlockPlan& gb : plan.gpu_blocks) {
      simdev::Stream& stream = node.gpu(gb.card).stream(gb.stream);
      if (!spec.gpu_data_cached) {
        batch_.futures.push_back(stream.memcpy_h2d(
            static_cast<double>(gb.slice.size()) * spec.item_bytes));
      }
      simdev::KernelDesc k = make_gpu_map_kernel(st, batch_, gb.slice);
      batch_.futures.push_back(stream.launch(std::move(k)));
      batch_.gpu_items += gb.slice.size();
      ++st.map_tasks;
    }
  }

  /// Dynamic dispatch of one partition: spawns the per-device block
  /// workers and the serial dispatcher; the returned future resolves when
  /// every worker has drained the channel and finished.
  sim::Future<sim::Unit> start_dynamic(const InputSlice& partition) {
    auto& st = *ctx_.st;
    auto& sim = ctx_.sim();
    FatNode& node = ctx_.node();

    const JobShape shape = job_shape(ctx_.spec());
    const std::size_t block_items = ctx_.policy->block_items(
        *ctx_.cluster, shape, st.cfg, ctx_.rank, partition.size());
    auto blocks_list = std::make_shared<std::vector<InputSlice>>(
        partition.blocks_of(block_items));

    auto blocks = std::make_shared<sim::Channel<InputSlice>>(sim);
    channels_.push_back(blocks);  // keep alive until the job completes
    const int cpu_workers = st.cfg.use_cpu ? node.cpu().cores() : 0;
    const int gpu_cards =
        (st.cfg.use_gpu && node.gpu_count() > 0) ? node.gpu_count() : 0;
    const int gpu_workers = gpu_cards * st.gpu_streams[ctx_.rk()];
    PRS_REQUIRE(cpu_workers + gpu_workers > 0,
                "dynamic scheduling needs at least one device");
    auto live = std::make_shared<int>(cpu_workers + gpu_workers);
    sim::Promise<sim::Unit> all_done(sim);
    for (int w = 0; w < cpu_workers; ++w) {
      sim.spawn(
          cpu_block_worker(st, node, batch_, *blocks, live, all_done));
    }
    for (int card = 0; card < gpu_cards; ++card) {
      for (int w = 0; w < st.gpu_streams[ctx_.rk()]; ++w) {
        sim.spawn(gpu_block_worker(st, node, batch_, *blocks, card, w, live,
                                   all_done));
      }
    }
    sim.spawn(block_dispatcher(sim, st, std::move(blocks_list), *blocks));
    return all_done.get_future();
  }

  /// Barrier over this node's asynchronous map work (static mode).
  sim::Future<sim::Unit> barrier() {
    return sim::when_all(ctx_.sim(), batch_.futures);
  }

  /// Intermediate data in GPU memory is copied back to CPU memory after
  /// all local map tasks finish (§III.A.2): emitted pairs plus per-item
  /// intermediate rows. With several cards the transfers run in parallel
  /// over each card's own PCI-E link.
  sim::Future<sim::Unit> copy_back() {
    const auto& spec = ctx_.spec();
    FatNode& node = ctx_.node();
    const double d2h_bytes =
        static_cast<double>(batch_.gpu_pairs) * spec.pair_bytes +
        static_cast<double>(batch_.gpu_items) * spec.gpu_item_d2h_bytes;
    std::vector<sim::Future<sim::Unit>> copies;
    if (d2h_bytes > 0.0 && node.gpu_count() > 0) {
      const double per_card =
          d2h_bytes / static_cast<double>(node.gpu_count());
      for (int g = 0; g < node.gpu_count(); ++g) {
        copies.push_back(node.gpu(g).default_stream().memcpy_d2h(per_card));
      }
    }
    return sim::when_all(ctx_.sim(), copies);
  }

  /// Host-side key/value handling cost (emit buffers, local sort/merge).
  double host_merge_cost(std::size_t node_items) const {
    return static_cast<double>(node_items) * calib::kPrsPerItemOverhead;
  }

  /// Records the phase span and folds this node's time into the job max.
  void finish(double t0, std::size_t node_items) {
    auto& st = *ctx_.st;
    const double now = ctx_.sim().now();
    st.map_time = std::max(st.map_time, now - t0);
    if (ctx_.tr != nullptr) {
      ctx_.tr->complete(
          ctx_.runner_track, "map", "phase", t0, now,
          {obs::arg("items", static_cast<std::uint64_t>(node_items)),
           obs::arg("gpu_items", batch_.gpu_items)});
    }
  }

 private:
  StageContext<K, V>& ctx_;
  NodeMapBatch<K, V> batch_;
  // One channel per dynamically dispatched partition; workers may still
  // hold references when the partition loop moves on, so channels live as
  // long as the stage.
  std::vector<std::shared_ptr<sim::Channel<InputSlice>>> channels_;
};

// -- shuffle stage ------------------------------------------------------------

/// Local combine (the paper's optional combiner(), Table 1) followed by
/// bucketing: pairs with the same key land on hash(key) % nodes.
template <typename K, typename V>
class ShuffleStage {
 public:
  explicit ShuffleStage(StageContext<K, V>& ctx) : ctx_(ctx) {}

  std::vector<simnet::Message> prepare(NodeMapBatch<K, V>& batch) {
    auto& st = *ctx_.st;
    const auto& spec = ctx_.spec();
    const int nodes = ctx_.cluster->size();
    std::vector<std::vector<std::pair<K, V>>> buckets(
        static_cast<std::size_t>(nodes));
    if (spec.local_combine) {
      std::map<K, V> combined;
      for (auto& e : batch.emitters) {
        st.intermediate_pairs += e.size();
        combine_into(spec, combined, e.pairs());
      }
      for (auto& [k, v] : combined) {
        const auto dst = std::hash<K>{}(k) % static_cast<std::size_t>(nodes);
        buckets[dst].emplace_back(k, std::move(v));
      }
    } else {
      // No combiner: every raw emitted pair goes on the wire; the reduce
      // stage does all the merging.
      for (auto& e : batch.emitters) {
        st.intermediate_pairs += e.size();
        for (auto& [k, v] : e.pairs()) {
          const auto dst =
              std::hash<K>{}(k) % static_cast<std::size_t>(nodes);
          buckets[dst].emplace_back(std::move(k), std::move(v));
        }
      }
    }
    std::vector<simnet::Message> outbound;
    outbound.reserve(static_cast<std::size_t>(nodes));
    for (int r = 0; r < nodes; ++r) {
      auto payload = std::make_shared<std::vector<std::pair<K, V>>>(
          std::move(buckets[static_cast<std::size_t>(r)]));
      const double bytes =
          static_cast<double>(payload->size()) * spec.pair_bytes;
      outbound.emplace_back(bytes, std::move(payload));
    }
    if (ctx_.tr != nullptr) {
      auto& h = ctx_.tr->metrics().histogram(
          "shuffle.msg_bytes", obs::geometric_buckets(64.0, 4.0, 16));
      for (const auto& m : outbound) h.observe(m.bytes);
    }
    return outbound;
  }

  void finish(double t0) {
    auto& st = *ctx_.st;
    const double now = ctx_.sim().now();
    st.shuffle_time = std::max(st.shuffle_time, now - t0);
    if (ctx_.tr != nullptr) {
      ctx_.tr->complete(ctx_.runner_track, "shuffle", "phase", t0, now);
    }
  }

 private:
  StageContext<K, V>& ctx_;
};

// -- reduce stage -------------------------------------------------------------

/// Merges inbound shuffle payloads and charges the reduce tasks on the
/// devices, split like the map stage. GPU reduce work is spread across all
/// cards (each with its own PCI-E link), mirroring the map-stage D2H path.
template <typename K, typename V>
class ReduceStage {
 public:
  explicit ReduceStage(StageContext<K, V>& ctx) : ctx_(ctx) {}

  std::map<K, V> merge(std::vector<simnet::Message>& inbound,
                       std::size_t& reduce_pairs) {
    using Payload = std::shared_ptr<std::vector<std::pair<K, V>>>;
    std::map<K, V> reduced;
    reduce_pairs = 0;
    for (auto& m : inbound) {
      if (!m.has_payload()) continue;
      auto& pairs = *m.template payload_as<Payload>();
      reduce_pairs += pairs.size();
      combine_into(ctx_.spec(), reduced, pairs);
    }
    return reduced;
  }

  std::vector<sim::Future<sim::Unit>> submit_device_tasks(
      std::size_t reduce_pairs) {
    auto& st = *ctx_.st;
    const auto& spec = ctx_.spec();
    FatNode& node = ctx_.node();
    std::vector<sim::Future<sim::Unit>> futs;
    if (reduce_pairs == 0) return futs;
    const auto cpu_pairs = static_cast<double>(reduce_pairs) *
                           st.cpu_fraction[ctx_.rk()];
    const double gpu_pairs = static_cast<double>(reduce_pairs) - cpu_pairs;
    if (cpu_pairs > 0.0) {
      simdev::CpuTask t;
      t.name = spec.name + ":reduce:cpu";
      t.workload.flops = cpu_pairs * spec.reduce_flops_per_pair;
      t.workload.mem_traffic = cpu_pairs * spec.pair_bytes;
      t.compute_efficiency = spec.efficiency.cpu_compute;
      t.memory_efficiency = spec.efficiency.cpu_memory;
      futs.push_back(node.cpu().submit(std::move(t)));
      ++st.reduce_tasks;
    }
    if (gpu_pairs > 0.0 && node.gpu_count() > 0) {
      // One reduce task per card so multi-GPU nodes use every card's
      // compute and PCI-E link, not just card 0's.
      const double per_card =
          gpu_pairs / static_cast<double>(node.gpu_count());
      for (int g = 0; g < node.gpu_count(); ++g) {
        auto& stream = node.gpu(g).default_stream();
        // Reduce input starts in CPU memory after the shuffle: stage it.
        futs.push_back(stream.memcpy_h2d(per_card * spec.pair_bytes));
        simdev::KernelDesc k;
        k.name = spec.name + ":reduce:gpu";
        k.workload.flops = per_card * spec.reduce_flops_per_pair;
        k.workload.mem_traffic = per_card * spec.pair_bytes;
        k.compute_efficiency = spec.efficiency.gpu_compute;
        k.memory_efficiency = spec.efficiency.gpu_memory;
        futs.push_back(stream.launch(std::move(k)));
        futs.push_back(stream.memcpy_d2h(per_card * spec.pair_bytes));
        ++st.reduce_tasks;
      }
    }
    return futs;
  }

  void finish(double t0, std::size_t reduce_pairs) {
    auto& st = *ctx_.st;
    const double now = ctx_.sim().now();
    st.reduce_time = std::max(st.reduce_time, now - t0);
    if (ctx_.tr != nullptr) {
      ctx_.tr->complete(
          ctx_.runner_track, "reduce", "phase", t0, now,
          {obs::arg("pairs", static_cast<std::uint64_t>(reduce_pairs))});
    }
  }

 private:
  StageContext<K, V>& ctx_;
};

// -- gather stage -------------------------------------------------------------

/// Ships this node's reduced partition to the master and, on the master,
/// merges the gathered partitions into the final output (shuffle
/// guarantees disjoint keys across nodes).
template <typename K, typename V>
class GatherStage {
 public:
  explicit GatherStage(StageContext<K, V>& ctx) : ctx_(ctx) {}

  simnet::Message pack(std::map<K, V>&& reduced) {
    const auto& spec = ctx_.spec();
    auto payload = std::make_shared<std::map<K, V>>(std::move(reduced));
    const double bytes =
        static_cast<double>(payload->size()) * spec.pair_bytes;
    return simnet::Message{bytes, std::move(payload)};
  }

  void unpack_on_master(std::vector<simnet::Message>& gathered) {
    auto& st = *ctx_.st;
    const auto& spec = ctx_.spec();
    using MapPayload = std::shared_ptr<std::map<K, V>>;
    for (auto& m : gathered) {
      if (!m.has_payload()) continue;
      for (auto& [k, v] : *m.template payload_as<MapPayload>()) {
        st.final_output.emplace(
            k, spec.finalize ? spec.finalize(k, std::move(v))
                             : std::move(v));
      }
    }
  }

  void finish(double t0) {
    auto& st = *ctx_.st;
    const double now = ctx_.sim().now();
    st.gather_time = std::max(st.gather_time, now - t0);
    if (ctx_.tr != nullptr) {
      ctx_.tr->complete(ctx_.runner_track, "gather", "phase", t0, now);
    }
  }

 private:
  StageContext<K, V>& ctx_;
};

// -- run accounting -----------------------------------------------------------

/// Cluster-wide counter snapshot; run_job diffs two of these so a job's
/// stats are its own even when the simulator clock keeps running across
/// jobs (iterative drivers).
struct ClusterCounters {
  double cpu_busy = 0.0, gpu_busy = 0.0;
  double cpu_flops = 0.0, gpu_flops = 0.0;
  double pcie = 0.0, net = 0.0;
  std::vector<double> node_cpu_busy, node_gpu_busy;
};

inline ClusterCounters snapshot_counters(Cluster& cluster) {
  ClusterCounters c;
  c.cpu_busy = cluster.total_cpu_busy();
  c.gpu_busy = cluster.total_gpu_busy();
  c.cpu_flops = cluster.total_cpu_flops();
  c.gpu_flops = cluster.total_gpu_flops();
  c.pcie = cluster.total_pcie_bytes();
  c.net = cluster.fabric().bytes_sent();
  for (int r = 0; r < cluster.size(); ++r) {
    c.node_cpu_busy.push_back(cluster.node(r).cpu_busy());
    c.node_gpu_busy.push_back(cluster.node(r).gpu_busy());
  }
  return c;
}

/// Stats of one job: cluster counters since `c0` plus the per-job state.
template <typename K, typename V>
JobStats collect_stats(Cluster& cluster, const ClusterCounters& c0,
                       const JobState<K, V>& st, double elapsed) {
  JobStats s;
  s.elapsed = elapsed;
  s.cpu_busy = cluster.total_cpu_busy() - c0.cpu_busy;
  s.gpu_busy = cluster.total_gpu_busy() - c0.gpu_busy;
  s.cpu_flops = cluster.total_cpu_flops() - c0.cpu_flops;
  s.gpu_flops = cluster.total_gpu_flops() - c0.gpu_flops;
  s.pcie_bytes = cluster.total_pcie_bytes() - c0.pcie;
  s.network_bytes = cluster.fabric().bytes_sent() - c0.net;
  s.map_tasks = st.map_tasks;
  s.reduce_tasks = st.reduce_tasks;
  s.intermediate_pairs = st.intermediate_pairs;
  s.startup_time = st.startup_time;
  s.map_time = st.map_time;
  s.shuffle_time = st.shuffle_time;
  s.reduce_time = st.reduce_time;
  s.gather_time = st.gather_time;
  return s;
}

/// Per-node observed busy times since `c0`, for SchedulePolicy::observe().
inline JobFeedback collect_feedback(Cluster& cluster,
                                    const ClusterCounters& c0,
                                    const std::vector<double>& cpu_fraction,
                                    double elapsed) {
  JobFeedback fb;
  fb.elapsed = elapsed;
  for (int r = 0; r < cluster.size(); ++r) {
    const auto rk = static_cast<std::size_t>(r);
    NodeFeedback nf;
    nf.rank = r;
    nf.cpu_fraction = cpu_fraction[rk];
    nf.cpu_busy = cluster.node(r).cpu_busy() - c0.node_cpu_busy[rk];
    nf.gpu_busy = cluster.node(r).gpu_busy() - c0.node_gpu_busy[rk];
    nf.cpu_cores = cluster.node(r).cpu().cores();
    nf.gpu_cards = cluster.node(r).gpu_count();
    fb.nodes.push_back(nf);
  }
  return fb;
}

/// Job-level metrics counters (no-op when tracing is disabled).
template <typename K, typename V>
void record_job_metrics(sim::Simulator& sim, const JobState<K, V>& st,
                        double elapsed) {
  obs::TraceRecorder* tr = sim.tracer();
  if (tr == nullptr || !tr->enabled()) return;
  auto& m = tr->metrics();
  m.counter("job.runs").increment();
  m.counter("job.map_tasks").add(static_cast<double>(st.map_tasks));
  m.counter("job.reduce_tasks").add(static_cast<double>(st.reduce_tasks));
  m.counter("job.intermediate_pairs")
      .add(static_cast<double>(st.intermediate_pairs));
  m.counter("job.virtual_seconds").add(elapsed);
}

}  // namespace detail
}  // namespace prs::core
