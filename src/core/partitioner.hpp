// Level-1 master task scheduler (paper §III.B.1, §III.B.3.a).
//
// The master splits the job input among the fat nodes proportionally to
// their capability (the Eq (8)-derived effective rate Fc + Fg of the
// backends the job may use), then chops each node share into
// `partitions_per_node` partitions (paper default: two per fat node,
// assigned round-robin by the sub-task scheduler). Homogeneous clusters
// reproduce the paper's equal round-robin split; inhomogeneous clusters get
// the §III.B.3.a capability-weighted split.
//
// Pure integer/double arithmetic on slice bounds — no simulator types — so
// the level-1 decision is unit-testable in isolation (scheduler_policy_test).
#pragma once

#include <cstddef>
#include <vector>

#include "core/job.hpp"

namespace prs::core {

class Partitioner {
 public:
  /// Capability-weighted node shares over [0, n_items): node r receives
  /// floor(n_items * capability[r] / sum(capability)) items; the rounding
  /// remainder goes to the last node so every item is assigned in one pass.
  /// Throws when no node has positive capability.
  static std::vector<InputSlice> node_shares(
      std::size_t n_items, const std::vector<double>& capability);

  /// The full level-1 decision: each node share chopped into at most
  /// `partitions_per_node` non-empty partitions.
  static std::vector<std::vector<InputSlice>> partition(
      std::size_t n_items, const std::vector<double>& capability,
      int partitions_per_node);
};

}  // namespace prs::core
