#include "core/schedule_policy.hpp"

#include <algorithm>
#include <cmath>

#include "ckpt/codec.hpp"
#include "common/error.hpp"
#include "core/cluster.hpp"

namespace prs::core {

SchedulePolicy::~SchedulePolicy() = default;

NodeDecision SchedulePolicy::node_decision(Cluster& cluster,
                                           const JobShape& shape,
                                           const JobConfig& cfg, int rank) {
  const auto& sched = cluster.scheduler(rank);
  const int gpus = cluster.node(rank).gpu_count();
  auto split =
      sched.workload_split(shape.ai_cpu, shape.ai_gpu,
                           !shape.gpu_data_cached, std::max(1, gpus));
  if (cfg.host_simd_scale != 1.0) {
    split = split.with_cpu_scale(cfg.host_simd_scale);
  }

  NodeDecision d;
  // CPU fraction p: override > analytic model > single-backend cases.
  if (!cfg.use_cpu) {
    d.cpu_fraction = 0.0;
  } else if (!cfg.use_gpu || gpus == 0) {
    d.cpu_fraction = 1.0;
  } else if (cfg.cpu_fraction_override >= 0.0) {
    PRS_REQUIRE(cfg.cpu_fraction_override <= 1.0,
                "cpu fraction override must be in [0, 1]");
    d.cpu_fraction = cfg.cpu_fraction_override;
  } else {
    d.cpu_fraction = split.cpu_fraction;
  }
  // Node capability for the level-1 split among inhomogeneous fat nodes
  // (§III.B.3.a): effective rate of the backends the job may use.
  const double fc = cfg.use_cpu ? split.cpu_rate : 0.0;
  const double fg = (cfg.use_gpu && gpus > 0) ? split.gpu_rate : 0.0;
  d.capability = fc + fg;
  return d;
}

int SchedulePolicy::gpu_streams(Cluster& cluster, const JobShape& shape,
                                const JobConfig& cfg, int rank,
                                std::size_t node_items, double cpu_fraction) {
  if (!cfg.use_gpu || cluster.node(rank).gpu_count() == 0) return 1;
  const double partition_bytes =
      static_cast<double>(node_items) /
      static_cast<double>(cfg.partitions_per_node) * (1.0 - cpu_fraction) *
      shape.item_bytes;
  if (partition_bytes <= 0.0) return 1;
  return cluster.scheduler(rank).recommended_streams(
      partition_bytes, shape.ai_of_block, cfg.stream_overlap_threshold);
}

std::size_t SchedulePolicy::block_items(Cluster& cluster,
                                        const JobShape& shape,
                                        const JobConfig& cfg, int rank,
                                        std::size_t partition_items) {
  (void)cluster;
  (void)shape;
  (void)rank;
  if (cfg.dynamic_block_items > 0) return cfg.dynamic_block_items;
  // Legacy load-balance target: enough blocks to keep all daemons busy.
  const auto cores =
      static_cast<std::size_t>(cluster.node(rank).cpu().cores());
  return std::max<std::size_t>(1, partition_items / (4 * (cores + 1)));
}

void SchedulePolicy::observe(const JobFeedback& feedback) { (void)feedback; }

void SchedulePolicy::save_state(ckpt::Writer& w) const { (void)w; }

void SchedulePolicy::restore_state(ckpt::Reader& r) { (void)r; }

std::size_t DynamicBlockPolicy::block_items(Cluster& cluster,
                                            const JobShape& shape,
                                            const JobConfig& cfg, int rank,
                                            std::size_t partition_items) {
  const std::size_t balance = SchedulePolicy::block_items(
      cluster, shape, cfg, rank, partition_items);
  if (cfg.dynamic_block_items > 0) return balance;  // explicit size wins
  // Analytic floor: blocks below MinBs (Eq (11)) cannot saturate the GPU,
  // so never split finer than that even when load balance would like to.
  if (shape.item_bytes <= 0.0 || partition_items == 0 ||
      !cfg.use_gpu || cluster.node(rank).gpu_count() == 0) {
    return balance;
  }
  const double partition_bytes =
      static_cast<double>(partition_items) * shape.item_bytes;
  const auto min_bs = cluster.scheduler(rank).min_block_size(
      shape.ai_of_block, shape.item_bytes, partition_bytes);
  if (!min_bs.has_value()) return balance;
  const auto floor_items = static_cast<std::size_t>(
      std::ceil(*min_bs / shape.item_bytes));
  return std::clamp(std::max(balance, floor_items),
                    static_cast<std::size_t>(1), partition_items);
}

AdaptiveFeedbackPolicy::AdaptiveFeedbackPolicy(double gain,
                                               double initial_fraction)
    : gain_(gain), initial_fraction_(initial_fraction) {
  PRS_REQUIRE(gain > 0.0 && gain <= 1.0, "gain must be in (0, 1]");
  PRS_REQUIRE(initial_fraction <= 1.0,
              "initial fraction must be in [0, 1] (or negative: analytic)");
}

NodeDecision AdaptiveFeedbackPolicy::node_decision(Cluster& cluster,
                                                   const JobShape& shape,
                                                   const JobConfig& cfg,
                                                   int rank) {
  NodeDecision d = SchedulePolicy::node_decision(cluster, shape, cfg, rank);
  // The learned fraction only replaces the *analytic* p: explicit overrides
  // and single-backend configurations keep their forced values.
  const bool adjustable = cfg.use_cpu && cfg.use_gpu &&
                          cluster.node(rank).gpu_count() > 0 &&
                          cfg.cpu_fraction_override < 0.0;
  if (!adjustable) return d;
  if (const auto it = learned_.find(rank); it != learned_.end()) {
    d.cpu_fraction = it->second;
  } else if (initial_fraction_ >= 0.0) {
    d.cpu_fraction = initial_fraction_;
  }
  return d;
}

void AdaptiveFeedbackPolicy::observe(const JobFeedback& feedback) {
  for (const NodeFeedback& nf : feedback.nodes) {
    // Only meaningful when both devices actually worked this job.
    if (nf.cpu_fraction <= 0.0 || nf.cpu_fraction >= 1.0) continue;
    if (nf.cpu_busy <= 0.0 || nf.gpu_busy <= 0.0) continue;
    if (nf.cpu_cores < 1 || nf.gpu_cards < 1) continue;
    const double t_cpu = nf.cpu_busy / nf.cpu_cores;
    const double t_gpu = nf.gpu_busy / nf.gpu_cards;
    const double balanced = roofline::AnalyticScheduler::rebalanced_fraction(
        nf.cpu_fraction, t_cpu, t_gpu);
    const double current = learned_.count(nf.rank) != 0
                               ? learned_[nf.rank]
                               : nf.cpu_fraction;
    learned_[nf.rank] = std::clamp(
        (1.0 - gain_) * current + gain_ * balanced, 0.0, 1.0);
  }
}

void AdaptiveFeedbackPolicy::save_state(ckpt::Writer& w) const {
  w.u64(learned_.size());
  for (const auto& [rank, p] : learned_) {
    w.i32(rank);
    w.f64(p);
  }
}

void AdaptiveFeedbackPolicy::restore_state(ckpt::Reader& r) {
  std::map<int, double> learned;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const int rank = r.i32();
    const double p = r.f64();
    PRS_REQUIRE(rank >= 0, "adaptive policy state holds a negative rank");
    PRS_REQUIRE(p >= 0.0 && p <= 1.0,
                "adaptive policy state holds p outside [0, 1]");
    learned[rank] = p;
  }
  learned_ = std::move(learned);
}

double AdaptiveFeedbackPolicy::learned_fraction(int rank) const {
  const auto it = learned_.find(rank);
  return it != learned_.end() ? it->second : -1.0;
}

std::unique_ptr<SchedulePolicy> make_policy(SchedulingMode mode) {
  if (mode == SchedulingMode::kDynamic) {
    return std::make_unique<DynamicBlockPolicy>();
  }
  return std::make_unique<StaticAnalyticPolicy>();
}

std::unique_ptr<SchedulePolicy> make_policy(const std::string& name) {
  if (name == "static") return std::make_unique<StaticAnalyticPolicy>();
  if (name == "dynamic") return std::make_unique<DynamicBlockPolicy>();
  if (name == "adaptive") return std::make_unique<AdaptiveFeedbackPolicy>();
  throw InvalidArgument("unknown scheduling policy: " + name +
                        " (static | dynamic | adaptive)");
}

}  // namespace prs::core
