// The heterogeneous MapReduce programming interface (paper Table 1).
//
// The paper's user-implemented API has three backend flavours —
// cpu_mapreduce, gpu_device_mapreduce, gpu_host_mapreduce — of four
// functions: map, reduce (here: the combine/finalize pair), combiner and
// compare. This header is the modern-C++ equivalent:
//
//   * `cpu_map` / `gpu_map` — per-backend map over an input slice, emitting
//     intermediate key/value pairs (gpu_map defaults to cpu_map, matching
//     the paper's remark that device sources are often identical);
//   * `combine` — the associative/commutative combiner applied node-locally
//     before the shuffle *and* as the reduce operator after it;
//   * `finalize` — the reduce-side transform producing final values;
//   * ordering of keys replaces `compare` (results are sorted std::maps).
//
// Each spec also carries the *cost model* the runtime charges virtual time
// with: per-item flops, arithmetic intensities (paper Table 5 formulas),
// staging byte counts and the calibrated efficiency factors. Byte fields
// follow the paper's element-counted AI convention (DESIGN.md).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/calibration.hpp"
#include "core/job.hpp"

namespace prs::core {

/// Collects intermediate key/value pairs emitted by one map task.
template <typename K, typename V>
class Emitter {
 public:
  void emit(K key, V value) {
    pairs_.emplace_back(std::move(key), std::move(value));
  }

  std::vector<std::pair<K, V>>& pairs() { return pairs_; }
  const std::vector<std::pair<K, V>>& pairs() const { return pairs_; }
  std::size_t size() const { return pairs_.size(); }

 private:
  std::vector<std::pair<K, V>> pairs_;
};

template <typename K, typename V>
struct MapReduceSpec {
  using MapFn = std::function<void(const InputSlice&, Emitter<K, V>&)>;
  using CombineFn = std::function<V(const V&, const V&)>;
  using FinalizeFn = std::function<V(const K&, V)>;

  std::string name;

  // -- functional payloads ---------------------------------------------------
  /// C/C++ map implementation (cpu_mapreduce in Table 1). Required.
  MapFn cpu_map;
  /// CUDA map implementation (gpu_device/gpu_host_mapreduce). Defaults to
  /// cpu_map when empty.
  MapFn gpu_map;
  /// Cheap stand-in used in ExecutionMode::kModeled: must emit pairs of the
  /// right *shape* (same keys) without touching real data. Defaults to
  /// emitting nothing.
  MapFn modeled_map;
  /// Associative + commutative combiner (required): used node-locally
  /// before the shuffle and as the reduce operator.
  CombineFn combine;
  /// Run the combiner node-locally before the shuffle (the paper's
  /// optional combiner(), Table 1). Disabling it ships every raw emitted
  /// pair over the network — correct but more traffic; the ablation knob
  /// for what local combining buys.
  bool local_combine = true;
  /// Optional final transform applied on the master after the reduce.
  FinalizeFn finalize;

  // -- cost model -------------------------------------------------------------
  /// Flops per input item on each backend (usually equal).
  double cpu_flops_per_item = 0.0;
  double gpu_flops_per_item = 0.0;
  /// Arithmetic intensities Ac / Ag (paper Table 5). Memory traffic per
  /// item is derived as flops/AI.
  double ai_cpu = 1.0;
  double ai_gpu = 1.0;
  /// True when the GPU input is loop-invariant and cached in device memory
  /// across iterations (C-means/GMM); false when every pass stages over
  /// PCI-E (GEMV).
  bool gpu_data_cached = false;
  /// Wire/staging size of one input item (element-counted, see DESIGN.md).
  double item_bytes = 0.0;
  /// Wire size of one intermediate pair (shuffle + gather cost).
  double pair_bytes = 16.0;
  /// Per-GPU-processed-item bytes copied device->host after the map stage
  /// (per-iteration intermediate data such as partial membership rows —
  /// the PRS generality cost the MPI baselines avoid by keeping state on
  /// the GPU). Element-counted like the other byte fields.
  double gpu_item_d2h_bytes = 0.0;
  /// Flops to combine/reduce one intermediate pair.
  double reduce_flops_per_pair = 1.0;
  /// Calibrated roofline-efficiency factors for this application.
  calib::AppEfficiency efficiency;

  /// AI as a function of GPU block size in bytes (Fag, Eq (10)); defaults
  /// to the constant ai_gpu.
  std::function<double(double)> ai_of_block;

  const MapFn& gpu_map_or_default() const {
    return gpu_map ? gpu_map : cpu_map;
  }

  double ai_of_block_or_default(double block_bytes) const {
    return ai_of_block ? ai_of_block(block_bytes) : ai_gpu;
  }

  /// Memory traffic per item (element-counted bytes) on each backend.
  double cpu_traffic_per_item() const { return cpu_flops_per_item / ai_cpu; }
  double gpu_traffic_per_item() const { return gpu_flops_per_item / ai_gpu; }

  void validate() const {
    PRS_REQUIRE(!name.empty(), "spec needs a name");
    PRS_REQUIRE(cpu_map != nullptr, "spec needs a cpu_map");
    PRS_REQUIRE(combine != nullptr, "spec needs a combiner");
    PRS_REQUIRE(cpu_flops_per_item >= 0.0 && gpu_flops_per_item >= 0.0,
                "per-item flops must be non-negative");
    PRS_REQUIRE(ai_cpu > 0.0 && ai_gpu > 0.0,
                "arithmetic intensities must be positive");
    PRS_REQUIRE(item_bytes >= 0.0 && pair_bytes >= 0.0,
                "byte sizes must be non-negative");
  }
};

}  // namespace prs::core
