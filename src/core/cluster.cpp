#include "core/cluster.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/units.hpp"
#include "obs/export.hpp"
#include "obs/pool_metrics.hpp"
#include "obs/trace.hpp"

namespace prs::core {

simnet::FabricSpec default_fabric_spec() {
  // Gigabit-Ethernet-class fabric as on the paper's clusters: ~125 MB/s
  // effective per link, ~50 us end-to-end MPI latency. This combination
  // reproduces both Table 3's MPI allreduce overhead and the ~5% global-
  // reduction drop at 8 nodes in Figure 6.
  simnet::FabricSpec s;
  s.link_bandwidth = units::gb_per_s(0.125);
  s.latency = units::usec(50.0);
  return s;
}

Cluster::Cluster(sim::Simulator& sim, int nodes, NodeConfig node_config,
                 simnet::FabricSpec fabric_spec)
    : sim_(sim),
      fabric_(std::make_unique<simnet::Fabric>(sim, nodes, fabric_spec)) {
  PRS_REQUIRE(nodes >= 1, "cluster needs at least one node");
  build(std::vector<NodeConfig>(static_cast<std::size_t>(nodes),
                                std::move(node_config)));
}

Cluster::Cluster(sim::Simulator& sim, std::vector<NodeConfig> node_configs,
                 simnet::FabricSpec fabric_spec)
    : sim_(sim),
      fabric_(std::make_unique<simnet::Fabric>(
          sim, static_cast<int>(node_configs.size()), fabric_spec)) {
  PRS_REQUIRE(!node_configs.empty(), "cluster needs at least one node");
  build(node_configs);
}

Cluster::~Cluster() {
  if (env_tracer_ == nullptr) return;
  try {
    obs::export_chrome_trace(*env_tracer_, env_trace_path_ + ".json");
    if (!env_tracer_->metrics().empty()) {
      // Runs that recorded metrics also get the host pool's exec.pool.*
      // snapshot (not byte-reproducible — see obs/pool_metrics.hpp).
      obs::record_pool_metrics(env_tracer_->metrics());
      obs::export_metrics(env_tracer_->metrics(),
                          env_trace_path_ + ".metrics.csv");
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "warning: trace export failed: %s\n", e.what());
  }
  if (sim_.tracer() == env_tracer_.get()) sim_.set_tracer(nullptr);
}

void Cluster::maybe_attach_env_tracer() {
  if (sim_.tracer() != nullptr) return;  // explicit attachment wins
  const char* dir = std::getenv("PRS_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') return;
  // One file per cluster, numbered in construction order so repeated
  // cluster setups within one process do not clobber each other.
  static int next_cluster_id = 0;
  env_tracer_ = std::make_unique<obs::TraceRecorder>(sim_);
  env_trace_path_ =
      std::string(dir) + "/cluster" + std::to_string(next_cluster_id++);
  sim_.set_tracer(env_tracer_.get());
}

void Cluster::build(const std::vector<NodeConfig>& configs) {
  maybe_attach_env_tracer();
  node_configs_ = configs;
  for (std::size_t r = 0; r < configs.size(); ++r) {
    nodes_.push_back(
        std::make_unique<FatNode>(sim_, configs[r], static_cast<int>(r)));
    schedulers_.push_back(std::make_unique<roofline::AnalyticScheduler>(
        configs[r].cpu, configs[r].gpu));
    homogeneous_ =
        homogeneous_ &&
        configs[r].cpu.name == configs[0].cpu.name &&
        configs[r].gpu.name == configs[0].gpu.name &&
        configs[r].gpus_per_node == configs[0].gpus_per_node &&
        configs[r].reserved_cpu_cores == configs[0].reserved_cpu_cores;
  }
}

FatNode& Cluster::node(int rank) {
  PRS_REQUIRE(rank >= 0 && rank < size(), "node rank out of range");
  return *nodes_[static_cast<std::size_t>(rank)];
}

const NodeConfig& Cluster::node_config(int rank) const {
  PRS_REQUIRE(rank >= 0 && rank < size(), "node rank out of range");
  return node_configs_[static_cast<std::size_t>(rank)];
}

const roofline::AnalyticScheduler& Cluster::scheduler(int rank) const {
  PRS_REQUIRE(rank >= 0 && rank < size(), "node rank out of range");
  return *schedulers_[static_cast<std::size_t>(rank)];
}

double Cluster::total_cpu_busy() const {
  double t = 0.0;
  for (const auto& n : nodes_) t += n->cpu_busy();
  return t;
}

double Cluster::total_gpu_busy() const {
  double t = 0.0;
  for (const auto& n : nodes_) t += n->gpu_busy();
  return t;
}

double Cluster::total_cpu_flops() const {
  double f = 0.0;
  for (const auto& n : nodes_) f += n->cpu_flops();
  return f;
}

double Cluster::total_gpu_flops() const {
  double f = 0.0;
  for (const auto& n : nodes_) f += n->gpu_flops();
  return f;
}

double Cluster::total_pcie_bytes() const {
  double b = 0.0;
  for (const auto& n : nodes_) b += n->pcie_bytes();
  return b;
}

void Cluster::reset_counters() {
  for (auto& n : nodes_) n->reset_counters();
}

void Cluster::set_fault_hooks(simdev::ExecFaultHook* exec_hook,
                              simnet::NetFaultHook* net_hook) {
  for (int r = 0; r < size(); ++r) {
    FatNode& n = node(r);
    n.cpu().set_fault_context(exec_hook, r);
    for (int g = 0; g < n.gpu_count(); ++g) {
      n.gpu(g).set_fault_context(exec_hook, r, g);
    }
  }
  fabric_->set_fault_hook(net_hook);
}

}  // namespace prs::core
