// Value-returning coroutines (Task<T>) for composing simulator logic.
//
// A Process is detached; a Task<T> is structured: the caller co_awaits it,
// the callee's frame is owned by the Task object in the caller's frame, and
// completion transfers control straight back to the caller (symmetric
// transfer). Collective operations in simnet are Tasks so that SPMD rank
// code reads like MPI:
//
//   sim::Task<Message> r = comm.allreduce(partial, combine, tag);
//   Message total = co_await r;          // or: co_await comm.allreduce(...)
//
// Exceptions thrown in the task propagate to the awaiter.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "common/error.hpp"

namespace prs::sim {

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type {
    std::optional<T> value;
    std::exception_ptr exception;
    std::coroutine_handle<> continuation;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) const noexcept {
        // Resume whoever awaited us; if nobody did (detached misuse), just
        // stop — the Task destructor still frees the frame.
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { exception = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task& operator=(Task&&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  // Awaiter: starts the child lazily on first await.
  bool await_ready() const noexcept { return false; }
  Handle await_suspend(std::coroutine_handle<> caller) {
    h_.promise().continuation = caller;
    return h_;  // symmetric transfer into the child
  }
  T await_resume() {
    auto& p = h_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    PRS_CHECK(p.value.has_value(), "task finished without a value");
    return std::move(*p.value);
  }

 private:
  explicit Task(Handle h) : h_(h) {}
  Handle h_;
};

}  // namespace prs::sim
