// Deterministic discrete-event simulation engine.
//
// The whole reproduction executes on a virtual clock: device kernels, PCI-E
// transfers, network messages and scheduler decisions all charge virtual
// time here instead of wall-clock time. Events with equal timestamps are
// dispatched in scheduling order (FIFO via sequence numbers), so a given
// program produces bit-identical traces on every run and every machine.
//
// Concurrency model: single-threaded. "Processes" are C++20 coroutines
// (see process.hpp) resumed by the event loop; there is no data race by
// construction, which mirrors how the paper's runtime is *reasoned about*
// while keeping the reproduction hardware-independent.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/error.hpp"

namespace prs::obs {
class TraceRecorder;  // defined in obs/trace.hpp (layered above simtime)
}

namespace prs::sim {

/// Virtual time in seconds.
using Time = double;

class Process;  // defined in process.hpp

/// The event loop. Owns the virtual clock and all pending events.
class Simulator {
 public:
  Simulator() = default;
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `t` (>= now).
  void schedule_at(Time t, std::function<void()> fn);

  /// Schedules `fn` to run `dt` seconds from now (dt >= 0).
  void schedule_after(Time dt, std::function<void()> fn);

  /// Starts a coroutine process; its first resume happens as an event at
  /// the current time. The simulator takes ownership of the coroutine frame.
  void spawn(Process process);

  /// Runs until the event queue drains. Rethrows the first exception that
  /// escaped a process or callback.
  void run();

  /// Runs until the clock would pass `t_end`; events at exactly `t_end`
  /// are processed.
  void run_until(Time t_end);

  /// Dispatches a single event. Returns false when the queue is empty.
  bool step();

  /// Number of events dispatched so far (for tests and micro-benches).
  std::uint64_t events_dispatched() const { return dispatched_; }

  /// True when no events are pending.
  bool idle() const { return queue_.empty(); }

  /// Observability hook: the attached trace recorder, or nullptr (default).
  /// Instrumented layers fetch this per operation, so tracing costs one
  /// branch when disabled. The recorder must outlive its attachment; it is
  /// not owned by the simulator.
  obs::TraceRecorder* tracer() const { return tracer_; }
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }

  // -- internal: used by process/future machinery ---------------------------

  /// Takes ownership of a finished coroutine frame; destroyed after the
  /// current event completes (the frame is still live while unwinding).
  void retire(void* coroutine_address);

  /// Number of spawned processes whose frames are still live (suspended or
  /// running). Daemons that block on a channel forever count until the
  /// simulator destroys their frames at teardown.
  std::size_t live_processes() const { return live_.size(); }

  /// Records an exception that escaped a process; rethrown from run().
  void record_exception(std::exception_ptr e);

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;  // min-heap on time
      return a.seq > b.seq;                          // FIFO among ties
    }
  };

  void drain_zombies();
  void maybe_rethrow();

  Time now_ = 0.0;
  obs::TraceRecorder* tracer_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::vector<void*> zombies_;
  // Frames of spawned processes that have not finished yet, in spawn order
  // (deterministic teardown). Mostly eternal daemons waiting on a channel;
  // ~Simulator destroys them so they cannot leak.
  std::vector<void*> live_;
  std::exception_ptr pending_exception_;
};

}  // namespace prs::sim
