// Contended resources on the virtual clock.
//
// Resource      — counting semaphore with strict FIFO grant order; models
//                 things like "k CPU worker slots" or "one GPU context".
// BandwidthLink — serial FIFO server that charges size/bandwidth (+latency);
//                 models the PCI-E bus, DRAM channels and network links.
//                 Utilization accounting feeds the roofline validation tests.
#pragma once

#include <coroutine>
#include <deque>

#include "common/error.hpp"
#include "simtime/simulator.hpp"

namespace prs::sim {

/// Counting semaphore with FIFO fairness. acquire() is awaitable.
class Resource {
 public:
  Resource(Simulator& sim, std::size_t capacity)
      : sim_(sim), capacity_(capacity), available_(capacity) {
    PRS_REQUIRE(capacity > 0, "resource capacity must be positive");
  }
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  std::size_t capacity() const { return capacity_; }
  std::size_t available() const { return available_; }
  std::size_t queued() const { return waiters_.size(); }

  struct AcquireAwaiter {
    Resource& res;
    std::size_t amount;

    bool await_ready() {
      // Strict FIFO: even if units are free, queued waiters go first.
      if (res.waiters_.empty() && res.available_ >= amount) {
        res.available_ -= amount;  // grant inline
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      res.waiters_.push_back({amount, h});
    }
    void await_resume() const {
      // Units were already deducted, either inline in await_ready or by
      // grant() before the resume event was scheduled.
    }
  };

  /// co_await res.acquire(n): blocks until n units can be granted.
  AcquireAwaiter acquire(std::size_t amount = 1) {
    PRS_REQUIRE(amount > 0 && amount <= capacity_,
                "acquire amount must be in [1, capacity]");
    return AcquireAwaiter{*this, amount};
  }

  /// Returns n units and grants queued waiters in FIFO order.
  void release(std::size_t amount = 1) {
    available_ += amount;
    PRS_CHECK(available_ <= capacity_, "resource released above capacity");
    grant();
  }

 private:
  struct Waiter {
    std::size_t amount;
    std::coroutine_handle<> handle;
  };

  void grant() {
    // Deduct units at grant time (not at resume time) so that acquisitions
    // racing between grant and resume cannot double-spend them.
    while (!waiters_.empty() && waiters_.front().amount <= available_) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      available_ -= w.amount;
      sim_.schedule_after(0.0, [h = w.handle] { h.resume(); });
    }
  }

  Simulator& sim_;
  std::size_t capacity_;
  std::size_t available_;
  std::deque<Waiter> waiters_;
};

/// RAII guard for Resource units (release on scope exit).
class ResourceGuard {
 public:
  ResourceGuard(Resource& res, std::size_t amount)
      : res_(&res), amount_(amount) {}
  ResourceGuard(ResourceGuard&& o) noexcept
      : res_(o.res_), amount_(o.amount_) {
    o.res_ = nullptr;
  }
  ResourceGuard(const ResourceGuard&) = delete;
  ResourceGuard& operator=(const ResourceGuard&) = delete;
  ResourceGuard& operator=(ResourceGuard&&) = delete;
  ~ResourceGuard() {
    if (res_) res_->release(amount_);
  }

 private:
  Resource* res_;
  std::size_t amount_;
};

/// Serial FIFO bandwidth server: each transfer occupies the server for
/// size/bandwidth seconds; completion is signalled `latency` seconds after
/// the server releases (latency is pipelined, not occupying).
class BandwidthLink {
 public:
  BandwidthLink(Simulator& sim, double bytes_per_second, double latency = 0.0)
      : sim_(sim), bytes_per_s_(bytes_per_second), latency_(latency) {
    PRS_REQUIRE(bytes_per_second > 0.0, "bandwidth must be positive");
    PRS_REQUIRE(latency >= 0.0, "latency must be non-negative");
  }
  BandwidthLink(const BandwidthLink&) = delete;
  BandwidthLink& operator=(const BandwidthLink&) = delete;

  double bandwidth() const { return bytes_per_s_; }
  double latency() const { return latency_; }

  /// Total time the server has been occupied (for utilization metrics).
  double busy_time() const { return busy_accum_; }
  double bytes_transferred() const { return bytes_accum_; }

  /// Zeroes the utilization accumulators (between repeated runs); in-flight
  /// transfers keep their completion times.
  void reset_counters() {
    busy_accum_ = 0.0;
    bytes_accum_ = 0.0;
  }

  struct TransferAwaiter {
    Simulator& sim;
    Time complete_at;
    bool await_ready() const { return complete_at <= sim.now(); }
    void await_suspend(std::coroutine_handle<> h) {
      sim.schedule_at(complete_at, [h] { h.resume(); });
    }
    void await_resume() const {}
  };

  /// co_await link.transfer(bytes): completes when the transfer finishes.
  /// Zero-byte transfers still pay the latency.
  TransferAwaiter transfer(double bytes) {
    PRS_REQUIRE(bytes >= 0.0, "transfer size must be non-negative");
    const Time start = std::max(sim_.now(), busy_until_);
    const Time hold = bytes / bytes_per_s_;
    busy_until_ = start + hold;
    busy_accum_ += hold;
    bytes_accum_ += bytes;
    return TransferAwaiter{sim_, busy_until_ + latency_};
  }

  /// Time at which a transfer of `bytes` submitted now would complete,
  /// without enqueueing it (used by schedulers for lookahead).
  Time estimate_completion(double bytes) const {
    const Time start = std::max(sim_.now(), busy_until_);
    return start + bytes / bytes_per_s_ + latency_;
  }

 private:
  Simulator& sim_;
  double bytes_per_s_;
  double latency_;
  Time busy_until_ = 0.0;
  double busy_accum_ = 0.0;
  double bytes_accum_ = 0.0;
};

}  // namespace prs::sim
