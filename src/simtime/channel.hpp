// Unbounded MPSC channel for simulator processes.
//
// The PRS device daemons and schedulers communicate through channels: the
// dynamic scheduler is literally "daemons polling a block channel", and the
// shuffle stage is channels keyed by destination node. recv() returns
// std::optional<T>; a closed, drained channel yields std::nullopt which is
// how daemons learn to shut down.
//
// Delivery is rendezvous-style: when a receiver is already waiting, send()
// hands the value directly to that receiver's awaiter slot, so a value
// observed by a woken receiver can never be stolen by a concurrent
// try_recv() in between (determinism + FIFO fairness).
#pragma once

#include <coroutine>
#include <deque>
#include <memory>
#include <optional>

#include "common/error.hpp"
#include "simtime/simulator.hpp"

namespace prs::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim) : sim_(sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// A channel may be destroyed while receivers are still suspended on it
  /// (e.g. a device torn down mid-run). Pending waiters are woken through
  /// the event queue and resolve to nullopt without ever touching the freed
  /// channel: the awaiter checks the shared `alive` flag before reaching
  /// back into channel state. The channel must not outlive its Simulator.
  ~Channel() {
    *alive_ = false;
    for (const Waiter& w : waiters_) {
      sim_.schedule_after(0.0, [h = w.handle] { h.resume(); });
    }
    waiters_.clear();
  }

  struct RecvAwaiter {
    Channel& ch;
    std::shared_ptr<const bool> alive;
    std::optional<T> slot;  // filled by send() on direct handoff

    bool await_ready() const { return !ch.queue_.empty() || ch.closed_; }
    void await_suspend(std::coroutine_handle<> h) {
      ch.waiters_.push_back(Waiter{this, h});
    }
    std::optional<T> await_resume() {
      if (slot.has_value()) return std::move(slot);
      if (!*alive) return std::nullopt;  // channel destroyed while suspended
      if (!ch.queue_.empty()) {
        T v = std::move(ch.queue_.front());
        ch.queue_.pop_front();
        return v;
      }
      return std::nullopt;  // closed and drained
    }
  };

  /// Enqueues a value; if a receiver is waiting, hands it over directly.
  void send(T v) {
    PRS_REQUIRE(!closed_, "send on a closed channel");
    if (!waiters_.empty()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      w.awaiter->slot = std::move(v);
      sim_.schedule_after(0.0, [h = w.handle] { h.resume(); });
      return;
    }
    queue_.push_back(std::move(v));
  }

  /// Closes the channel: queued items can still be received; subsequent
  /// recv() on an empty channel resolves to nullopt. Idempotent.
  void close() {
    if (closed_) return;
    closed_ = true;
    for (const Waiter& w : waiters_) {
      sim_.schedule_after(0.0, [h = w.handle] { h.resume(); });
    }
    waiters_.clear();
  }

  bool closed() const { return closed_; }
  std::size_t size() const { return queue_.size(); }

  /// co_await ch.recv() -> std::optional<T>.
  RecvAwaiter recv() { return RecvAwaiter{*this, alive_, std::nullopt}; }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

 private:
  struct Waiter {
    RecvAwaiter* awaiter;
    std::coroutine_handle<> handle;
  };

  Simulator& sim_;
  std::deque<T> queue_;
  std::deque<Waiter> waiters_;
  bool closed_ = false;
  // Shared with outstanding RecvAwaiters; flipped to false by the
  // destructor so a waiter resumed after channel destruction can detect it.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace prs::sim
