// Coroutine process type for the discrete-event simulator.
//
// A Process is a detached coroutine driven by the Simulator's event loop:
//
//   sim::Process worker(sim::Simulator& sim, Inbox& inbox) {
//     co_await sim::delay(sim, 1e-3);        // sleep 1 ms of virtual time
//     ...
//   }
//   sim.spawn(worker(sim, inbox));
//
// Processes start suspended; Simulator::spawn schedules the first resume as
// a regular event, so creation order and execution order stay decoupled and
// deterministic.
//
// TOOLCHAIN RULE (GCC 12.x, PR-100611-family miscompile): never construct a
// non-trivially-destructible class temporary *as a function argument* inside
// a `co_await` full-expression — GCC 12 relocates such argument temporaries
// into the coroutine frame bitwise, corrupting strings/std::function/
// shared_ptr and double-destroying them. Name the object first:
//
//   // WRONG on GCC 12 — Message temp as argument under co_await:
//   co_await comm.reduce(0, Message{8.0, v}, combiner, tag);
//   // RIGHT — named local (moves of locals are fine):
//   Message m{8.0, v};
//   co_await comm.reduce(0, std::move(m), combiner, tag);
//
// Awaiter/Task/Future objects *returned* by the awaited call are handled
// correctly (they are the await operand, constructed in place in the frame);
// trivially-destructible temporaries (doubles, Workload, spans) are fine.
#pragma once

#include <coroutine>
#include <exception>

#include "simtime/simulator.hpp"

namespace prs::sim {

/// Detached coroutine owned by the Simulator after spawn().
class Process {
 public:
  struct promise_type {
    Simulator* sim = nullptr;

    Process get_return_object() {
      return Process(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(
          std::coroutine_handle<promise_type> h) const noexcept {
        // Hand the frame to the simulator for deferred destruction; the
        // frame is still executing this very suspend, so it cannot be
        // destroyed inline.
        h.promise().sim->retire(h.address());
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() {
      if (sim != nullptr) {
        sim->record_exception(std::current_exception());
      } else {
        std::terminate();
      }
    }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Process(Process&& other) noexcept : h_(other.h_) { other.h_ = nullptr; }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  Process& operator=(Process&&) = delete;

  ~Process() {
    // Destroys the frame only if it was never spawned.
    if (h_) h_.destroy();
  }

  /// Releases the handle to the simulator (called by Simulator::spawn).
  Handle release() {
    Handle h = h_;
    h_ = nullptr;
    return h;
  }

 private:
  explicit Process(Handle h) : h_(h) {}
  Handle h_;
};

/// Awaitable that suspends the current process for `dt` virtual seconds.
class DelayAwaiter {
 public:
  DelayAwaiter(Simulator& sim, Time dt) : sim_(sim), dt_(dt) {}
  bool await_ready() const noexcept { return dt_ <= 0.0; }
  void await_suspend(std::coroutine_handle<> h) {
    sim_.schedule_after(dt_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Simulator& sim_;
  Time dt_;
};

/// co_await delay(sim, dt): sleep for dt virtual seconds.
inline DelayAwaiter delay(Simulator& sim, Time dt) { return {sim, dt}; }

}  // namespace prs::sim
