#include "simtime/simulator.hpp"

#include <coroutine>

#include "simtime/process.hpp"

namespace prs::sim {

Simulator::~Simulator() {
  // Pending events may hold coroutine handles whose frames were retired or
  // will never run; frames retired but not yet drained must still be freed.
  drain_zombies();
  // Processes still suspended at teardown — typically eternal device/daemon
  // loops blocked on a channel that will never deliver — are destroyed in
  // reverse spawn order (locals' destructors run; nothing is resumed).
  // Swap the list out first: unwinding locals may call back into retire().
  std::vector<void*> live;
  live.swap(live_);
  for (auto it = live.rbegin(); it != live.rend(); ++it) {
    std::coroutine_handle<>::from_address(*it).destroy();
  }
  drain_zombies();
}

void Simulator::schedule_at(Time t, std::function<void()> fn) {
  PRS_REQUIRE(t >= now_, "cannot schedule an event in the virtual past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::schedule_after(Time dt, std::function<void()> fn) {
  PRS_REQUIRE(dt >= 0.0, "delay must be non-negative");
  schedule_at(now_ + dt, std::move(fn));
}

void Simulator::spawn(Process process) {
  Process::Handle h = process.release();
  PRS_CHECK(h, "spawn of an empty process");
  h.promise().sim = this;
  live_.push_back(h.address());
  schedule_after(0.0, [h] { h.resume(); });
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the event is copied out cheaply enough
  // (shared function state) and popped before running so that re-entrant
  // scheduling sees a consistent queue.
  Event ev = queue_.top();
  queue_.pop();
  PRS_CHECK(ev.time >= now_, "event queue time went backwards");
  now_ = ev.time;
  ++dispatched_;
  ev.fn();
  drain_zombies();
  return true;
}

void Simulator::run() {
  while (step()) maybe_rethrow();
  maybe_rethrow();
}

void Simulator::run_until(Time t_end) {
  PRS_REQUIRE(t_end >= now_, "run_until target is in the past");
  while (!queue_.empty() && queue_.top().time <= t_end) {
    step();
    maybe_rethrow();
  }
  now_ = std::max(now_, t_end);
  maybe_rethrow();
}

void Simulator::retire(void* coroutine_address) {
  // Finished frames leave the live list (linear scan from the back: the
  // retiring process is usually among the most recently spawned).
  for (auto it = live_.rbegin(); it != live_.rend(); ++it) {
    if (*it == coroutine_address) {
      live_.erase(std::next(it).base());
      break;
    }
  }
  zombies_.push_back(coroutine_address);
}

void Simulator::record_exception(std::exception_ptr e) {
  // Keep only the first exception; later ones are usually cascades.
  if (!pending_exception_) pending_exception_ = std::move(e);
}

void Simulator::drain_zombies() {
  for (void* addr : zombies_) {
    std::coroutine_handle<>::from_address(addr).destroy();
  }
  zombies_.clear();
}

void Simulator::maybe_rethrow() {
  if (pending_exception_) {
    std::exception_ptr e = pending_exception_;
    pending_exception_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace prs::sim
