// Future/Promise pair for passing values between simulator processes.
//
// A Future resolves at a virtual-time instant; awaiting processes are
// resumed through the event queue (at the same timestamp, FIFO), so
// completion order is deterministic.
#pragma once

#include <coroutine>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/error.hpp"
#include "simtime/simulator.hpp"

namespace prs::sim {

/// Empty payload for Future<Unit> (a "void" future).
struct Unit {};

template <typename T>
class Promise;

/// Shared-state, single-assignment future. Copyable; all copies observe the
/// same resolution. Await it (`co_await fut`) or poll `ready()/value()`.
template <typename T>
class Future {
 public:
  Future() = default;

  bool valid() const { return state_ != nullptr; }
  bool ready() const { return state_ && state_->value.has_value(); }

  const T& value() const {
    PRS_REQUIRE(ready(), "Future::value called before resolution");
    return *state_->value;
  }

  /// Registers a callback invoked (via the event queue) when the future
  /// resolves; invoked immediately-as-an-event if already resolved.
  void on_ready(std::function<void(const T&)> fn) const {
    PRS_REQUIRE(valid(), "on_ready on an invalid future");
    if (state_->value.has_value()) {
      auto st = state_;
      state_->sim->schedule_after(0.0,
                                  [st, f = std::move(fn)] { f(*st->value); });
    } else {
      state_->callbacks.push_back(std::move(fn));
    }
  }

  struct Awaiter {
    std::shared_ptr<typename Promise<T>::State> state;
    bool await_ready() const { return state->value.has_value(); }
    void await_suspend(std::coroutine_handle<> h) {
      state->waiters.push_back(h);
    }
    const T& await_resume() const { return *state->value; }
  };
  Awaiter operator co_await() const {
    PRS_REQUIRE(valid(), "co_await on an invalid future");
    return Awaiter{state_};
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<typename Promise<T>::State> s)
      : state_(std::move(s)) {}
  std::shared_ptr<typename Promise<T>::State> state_;
};

/// Producer side. Single assignment; set_value resumes all waiters as
/// events at the current virtual time.
template <typename T>
class Promise {
 public:
  struct State {
    explicit State(Simulator& s) : sim(&s) {}
    Simulator* sim;
    std::optional<T> value;
    std::vector<std::coroutine_handle<>> waiters;
    std::vector<std::function<void(const T&)>> callbacks;
  };

  explicit Promise(Simulator& sim) : state_(std::make_shared<State>(sim)) {}

  Future<T> get_future() const { return Future<T>(state_); }

  bool resolved() const { return state_->value.has_value(); }

  void set_value(T v) {
    PRS_REQUIRE(!state_->value.has_value(), "promise resolved twice");
    state_->value = std::move(v);
    auto st = state_;
    for (auto h : st->waiters) {
      st->sim->schedule_after(0.0, [h] { h.resume(); });
    }
    st->waiters.clear();
    for (auto& cb : st->callbacks) {
      st->sim->schedule_after(0.0,
                              [st, f = std::move(cb)] { f(*st->value); });
    }
    st->callbacks.clear();
  }

 private:
  std::shared_ptr<State> state_;
};

/// Resolves to true when `f` resolves within `dt` virtual seconds from now,
/// or false when the deadline passes first. The race is decided through the
/// event queue, so it is deterministic; a resolution arriving after the
/// deadline is ignored here (the underlying future stays valid and can be
/// awaited again, e.g. by a retry with a longer deadline).
template <typename T>
Future<bool> with_timeout(Simulator& sim, const Future<T>& f, Time dt) {
  PRS_REQUIRE(f.valid(), "with_timeout on an invalid future");
  PRS_REQUIRE(dt >= 0.0, "with_timeout deadline must be non-negative");
  auto done = std::make_shared<Promise<bool>>(sim);
  auto decided = std::make_shared<bool>(false);
  f.on_ready([done, decided](const T&) {
    if (*decided) return;
    *decided = true;
    done->set_value(true);
  });
  sim.schedule_after(dt, [done, decided] {
    if (*decided) return;
    *decided = true;
    done->set_value(false);
  });
  return done->get_future();
}

/// Future that resolves when all inputs have resolved; carries the count.
template <typename T>
Future<Unit> when_all(Simulator& sim, const std::vector<Future<T>>& futures) {
  auto done = std::make_shared<Promise<Unit>>(sim);
  auto remaining = std::make_shared<std::size_t>(futures.size());
  if (futures.empty()) {
    done->set_value(Unit{});
    return done->get_future();
  }
  for (const auto& f : futures) {
    f.on_ready([done, remaining](const T&) {
      if (--*remaining == 0) done->set_value(Unit{});
    });
  }
  return done->get_future();
}

}  // namespace prs::sim
