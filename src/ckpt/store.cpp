#include "ckpt/store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"

namespace prs::ckpt {

namespace fs = std::filesystem;

// --- MemoryCheckpointStore --------------------------------------------------

void MemoryCheckpointStore::put(const std::string& key,
                                const std::string& blob) {
  blobs_[key] = blob;
}

bool MemoryCheckpointStore::get(const std::string& key,
                                std::string* out) const {
  auto it = blobs_.find(key);
  if (it == blobs_.end()) return false;
  *out = it->second;
  return true;
}

std::vector<std::string> MemoryCheckpointStore::keys() const {
  std::vector<std::string> out;
  out.reserve(blobs_.size());
  for (const auto& [k, v] : blobs_) out.push_back(k);
  return out;  // std::map iterates sorted
}

void MemoryCheckpointStore::remove(const std::string& key) {
  blobs_.erase(key);
}

// --- FileCheckpointStore ----------------------------------------------------

namespace {
constexpr const char* kExt = ".ckpt";

void validate_key(const std::string& key) {
  PRS_REQUIRE(!key.empty(), "ckpt: empty snapshot key");
  for (char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_';
    PRS_REQUIRE(ok, "ckpt: snapshot key '" + key +
                        "' contains characters unsafe for a filename");
  }
}
}  // namespace

FileCheckpointStore::FileCheckpointStore(std::string dir)
    : dir_(std::move(dir)) {
  PRS_REQUIRE(!dir_.empty(), "ckpt: empty checkpoint directory");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  PRS_REQUIRE(!ec, "ckpt: cannot create checkpoint directory '" + dir_ +
                       "': " + ec.message());
  PRS_REQUIRE(fs::is_directory(dir_, ec),
              "ckpt: checkpoint path '" + dir_ + "' is not a directory");
}

std::string FileCheckpointStore::path_for(const std::string& key) const {
  return dir_ + "/" + key + kExt;
}

void FileCheckpointStore::put(const std::string& key,
                              const std::string& blob) {
  validate_key(key);
  const std::string final_path = path_for(key);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    PRS_REQUIRE(out.good(),
                "ckpt: cannot open '" + tmp_path + "' for writing");
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    PRS_REQUIRE(out.good(), "ckpt: short write to '" + tmp_path + "'");
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) std::remove(tmp_path.c_str());
  PRS_REQUIRE(!ec, "ckpt: cannot rename '" + tmp_path + "' to '" + final_path +
                       "': " + ec.message());
}

bool FileCheckpointStore::get(const std::string& key, std::string* out) const {
  validate_key(key);
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in.is_open()) return false;
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  PRS_REQUIRE(!in.bad(), "ckpt: IO error reading '" + path_for(key) + "'");
  *out = std::move(blob);
  return true;
}

std::vector<std::string> FileCheckpointStore::keys() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.size() <= std::string(kExt).size()) continue;
    if (!name.ends_with(kExt)) continue;
    out.push_back(name.substr(0, name.size() - std::string(kExt).size()));
  }
  PRS_REQUIRE(!ec, "ckpt: cannot list checkpoint directory '" + dir_ +
                       "': " + ec.message());
  std::sort(out.begin(), out.end());
  return out;
}

void FileCheckpointStore::remove(const std::string& key) {
  validate_key(key);
  std::error_code ec;
  fs::remove(path_for(key), ec);
  PRS_REQUIRE(!ec, "ckpt: cannot remove snapshot '" + key + "': " +
                       ec.message());
}

// --- key helpers ------------------------------------------------------------

std::string snapshot_key(const std::string& prefix, int next_iteration) {
  PRS_REQUIRE(next_iteration >= 0, "ckpt: negative snapshot iteration");
  char num[16];
  std::snprintf(num, sizeof(num), "%08d", next_iteration);
  return prefix + "." + num;
}

std::string latest_snapshot_key(const CheckpointStore& store,
                                const std::string& prefix) {
  const std::string want = prefix + ".";
  std::string best;
  for (const auto& k : store.keys())
    if (k.size() > want.size() && k.compare(0, want.size(), want) == 0)
      best = k;  // keys() is sorted ascending; last match is newest
  return best;
}

bool has_snapshot(const CheckpointStore& store, const std::string& prefix) {
  return !latest_snapshot_key(store, prefix).empty();
}

void prune_snapshots(CheckpointStore& store, const std::string& prefix,
                     int keep) {
  if (keep <= 0) return;
  const std::string want = prefix + ".";
  std::vector<std::string> mine;
  for (const auto& k : store.keys())
    if (k.size() > want.size() && k.compare(0, want.size(), want) == 0)
      mine.push_back(k);
  if (static_cast<int>(mine.size()) <= keep) return;
  for (std::size_t i = 0; i + keep < mine.size(); ++i) store.remove(mine[i]);
}

}  // namespace prs::ckpt
