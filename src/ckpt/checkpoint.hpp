#pragma once
// Versioned, checksummed snapshots for the iterative driver.
//
// Wire layout (all little-endian; see DESIGN.md "Checkpoint/restart"):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------------
//   0       4     magic "PRSC" (bytes 50 52 53 43)
//   4       4     format version (currently 1)
//   8       8     payload length in bytes
//   16      8     FNV-1a-64 checksum of the payload
//   24      n     payload (codec-encoded Snapshot fields)
//
// The checksum covers the payload only, so truncation is caught by the
// length field and corruption by the checksum; a version the reader does not
// understand fails loudly (no silent migration). Every decode failure is a
// prs::Error — malformed snapshots must never be undefined behaviour.

#include <cstdint>
#include <functional>
#include <string>

#include "ckpt/codec.hpp"
#include "ckpt/store.hpp"
#include "core/job.hpp"
#include "linalg/matrix.hpp"

namespace prs::ckpt {

/// Current snapshot format version.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Magic bytes at the head of every snapshot ("PRSC" little-endian).
inline constexpr std::uint32_t kSnapshotMagic = 0x43535250u;

/// Everything the iterative driver needs to resume a run: where it was, the
/// application state, the accumulated statistics, the schedule-policy state
/// and the seeds that make the replayed trajectory deterministic.
struct Snapshot {
  std::string app;           // StateCodec tag; guards cross-app resume
  std::int32_t next_iteration = 0;  // first iteration still to run
  std::int32_t iterations_done = 0; // distinct iterations completed once
  bool finished = false;     // run converged/completed; nothing left to do
  std::uint64_t run_seed = 0;    // app data/init seed
  std::uint64_t fault_seed = 0;  // fault-injector seed
  std::string policy_name;   // SchedulePolicy::name() at snapshot time
  std::string policy_state;  // policy save_state() blob (may be empty)
  core::JobStats stats;      // accumulated over iterations_done iterations
  std::string app_state;     // StateCodec::encode blob
};

/// Serialize a snapshot to the framed wire format above.
std::string encode_snapshot(const Snapshot& snap);

/// Parse and validate a snapshot blob. Throws prs::Error on bad magic,
/// unsupported version, length mismatch, checksum mismatch or a truncated /
/// malformed payload.
Snapshot decode_snapshot(const std::string& blob);

/// Application hook pair that serializes the iteration-carried state (e.g.
/// the C-means centers). `tag` names the application and is verified on
/// restore so a snapshot cannot be decoded into the wrong app's state.
struct StateCodec {
  std::string tag;
  std::function<void(Writer&)> encode;
  std::function<void(Reader&)> decode;
};

/// What run_iterative should do when the fault-tolerant layer reports a node
/// crash (blacklisted node) during an iteration.
enum class OnCrash {
  kHalt,     // discard the iteration, keep checkpoints, throw prs::Error;
             // a fresh process resumes with recover=true (byte-identical
             // to the fault-free run — same cluster shape on restart)
  kRecover,  // same-process recovery: restore the latest snapshot and
             // continue on the surviving nodes (not byte-identical — the
             // survivor re-split changes block boundaries)
};

/// Checkpoint policy for core::run_iterative.
struct CheckpointConfig {
  CheckpointStore* store = nullptr;  // required; not owned
  int interval = 1;                  // snapshot every N completed iterations
  bool recover = true;               // resume from latest snapshot at start
  OnCrash on_crash = OnCrash::kHalt;
  std::string prefix = "ckpt";       // key namespace inside the store
  int keep = 2;                      // snapshots retained per prefix

  // Virtual-clock cost model for snapshot IO (write and restore), charged
  // to the driver: latency + bytes / bandwidth.
  double write_bandwidth = 1.5e9;    // bytes per virtual second
  double write_latency = 200e-6;     // virtual seconds per operation

  // Seeds recorded in every snapshot and verified on restore: resuming a
  // run under different seeds would silently diverge from the original
  // trajectory.
  std::uint64_t run_seed = 0;
  std::uint64_t fault_seed = 0;
};

/// Matrix helpers shared by the app StateCodecs: dims + row-major payload.
void put_matrix(Writer& w, const linalg::MatrixD& m);
/// Reads a matrix written by put_matrix, replacing `m` (dims come from the
/// snapshot; callers validate against expected shapes).
void get_matrix(Reader& r, linalg::MatrixD& m);

}  // namespace prs::ckpt
