#include "ckpt/checkpoint.hpp"

#include <cmath>
#include <type_traits>

#include "common/error.hpp"

namespace prs::ckpt {

namespace {
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;

void put_stats(Writer& w, const core::JobStats& stats) {
  // Field count first so a reader built against a different JobStats shape
  // fails loudly instead of slurping misaligned bytes.
  std::uint64_t count = 0;
  core::visit_stats_fields(stats, [&count](const char*, auto&) { ++count; });
  w.u64(count);
  core::visit_stats_fields(stats, [&w](const char*, auto& field) {
    using F = std::remove_cvref_t<decltype(field)>;
    if constexpr (std::is_floating_point_v<F>) {
      w.f64(field);
    } else {
      w.u64(static_cast<std::uint64_t>(field));
    }
  });
}

core::JobStats get_stats(Reader& r) {
  core::JobStats stats;
  std::uint64_t expect = 0;
  core::visit_stats_fields(stats, [&expect](const char*, auto&) { ++expect; });
  const std::uint64_t count = r.u64();
  PRS_REQUIRE(count == expect,
              "ckpt: snapshot stats have " + std::to_string(count) +
                  " fields, this build expects " + std::to_string(expect));
  core::visit_stats_fields(stats, [&r](const char*, auto& field) {
    using F = std::remove_reference_t<decltype(field)>;
    if constexpr (std::is_floating_point_v<F>) {
      field = r.f64();
    } else {
      field = static_cast<F>(r.u64());
    }
  });
  return stats;
}
}  // namespace

std::string encode_snapshot(const Snapshot& snap) {
  Writer payload;
  payload.str(snap.app);
  payload.i32(snap.next_iteration);
  payload.i32(snap.iterations_done);
  payload.u8(snap.finished ? 1 : 0);
  payload.u64(snap.run_seed);
  payload.u64(snap.fault_seed);
  payload.str(snap.policy_name);
  payload.str(snap.policy_state);
  put_stats(payload, snap.stats);
  payload.str(snap.app_state);
  const std::string body = payload.take();

  Writer framed;
  framed.u32(kSnapshotMagic);
  framed.u32(kSnapshotVersion);
  framed.u64(body.size());
  framed.u64(fnv1a64(body));
  std::string out = framed.take();
  out += body;
  return out;
}

Snapshot decode_snapshot(const std::string& blob) {
  PRS_REQUIRE(blob.size() >= kHeaderBytes,
              "ckpt: snapshot too short to hold a header (" +
                  std::to_string(blob.size()) + " bytes)");
  Reader header(std::string_view(blob).substr(0, kHeaderBytes));
  const std::uint32_t magic = header.u32();
  PRS_REQUIRE(magic == kSnapshotMagic,
              "ckpt: bad snapshot magic (not a PRS checkpoint)");
  const std::uint32_t version = header.u32();
  PRS_REQUIRE(version == kSnapshotVersion,
              "ckpt: unsupported snapshot version " + std::to_string(version) +
                  " (this build reads version " +
                  std::to_string(kSnapshotVersion) +
                  "); no migration path — re-run from scratch");
  const std::uint64_t payload_len = header.u64();
  const std::uint64_t checksum = header.u64();
  PRS_REQUIRE(payload_len == blob.size() - kHeaderBytes,
              "ckpt: snapshot length mismatch (header says " +
                  std::to_string(payload_len) + " payload bytes, file has " +
                  std::to_string(blob.size() - kHeaderBytes) + ")");
  const std::string_view body = std::string_view(blob).substr(kHeaderBytes);
  PRS_REQUIRE(fnv1a64(body) == checksum,
              "ckpt: snapshot checksum mismatch (corrupt file)");

  Reader r(body);
  Snapshot snap;
  snap.app = r.str();
  snap.next_iteration = r.i32();
  snap.iterations_done = r.i32();
  snap.finished = r.u8() != 0;
  snap.run_seed = r.u64();
  snap.fault_seed = r.u64();
  snap.policy_name = r.str();
  snap.policy_state = r.str();
  snap.stats = get_stats(r);
  snap.app_state = r.str();
  PRS_REQUIRE(r.done(), "ckpt: trailing bytes after snapshot payload");
  PRS_REQUIRE(snap.next_iteration >= 0 && snap.iterations_done >= 0,
              "ckpt: snapshot holds negative iteration indices");
  return snap;
}

void put_matrix(Writer& w, const linalg::MatrixD& m) {
  w.u64(m.rows());
  w.u64(m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) w.f64(m.data()[i]);
}

void get_matrix(Reader& r, linalg::MatrixD& m) {
  const std::uint64_t rows = r.u64();
  const std::uint64_t cols = r.u64();
  PRS_REQUIRE(rows < (1u << 20) && cols < (1u << 20),
              "ckpt: implausible matrix dimensions in snapshot");
  linalg::MatrixD out(rows, cols);
  for (std::size_t i = 0; i < out.size(); ++i) out.data()[i] = r.f64();
  m = std::move(out);
}

}  // namespace prs::ckpt
