#pragma once
// Byte-wise binary codec for checkpoint snapshots.
//
// The snapshot format must be stable across builds and platforms, so the
// codec writes every scalar explicitly little-endian, one byte at a time,
// instead of memcpy-ing structs (struct layout and padding are not part of
// the format). Doubles are transported via their IEEE-754 bit pattern
// (std::bit_cast), which round-trips NaNs, infinities, -0.0 and denormals
// bit-exactly.
//
// The Reader is bounds-checked: any read past the end of the buffer throws
// prs::Error. Malformed input must never be undefined behaviour.

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace prs::ckpt {

/// FNV-1a 64-bit hash; used as the snapshot payload checksum and by callers
/// that want a cheap deterministic digest of serialized state.
inline std::uint64_t fnv1a64(std::string_view bytes,
                             std::uint64_t seed = 0xcbf29ce484222325ull) {
  std::uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Append-only little-endian byte writer.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
  }

  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  /// Length-prefixed byte string (may contain NULs).
  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s.data(), s.size());
  }

  const std::string& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian reader over a caller-owned buffer. The
/// buffer must outlive the Reader.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= std::uint32_t(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= std::uint64_t(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
    pos_ += 8;
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  void need(std::uint64_t n) const {
    PRS_REQUIRE(n <= data_.size() - pos_,
                "ckpt: truncated snapshot payload (need " + std::to_string(n) +
                    " bytes, have " + std::to_string(data_.size() - pos_) +
                    ")");
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace prs::ckpt
