#pragma once
// Checkpoint storage backends.
//
// A CheckpointStore is a flat key → blob map. Keys are produced by
// snapshot_key() so that lexicographic order equals numeric iteration order,
// which lets latest_snapshot_key()/prune_snapshots() work on sorted key
// listings without parsing.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace prs::ckpt {

/// Abstract key/value blob store for snapshots.
class CheckpointStore {
 public:
  virtual ~CheckpointStore() = default;

  /// Store (or overwrite) a blob under `key`.
  virtual void put(const std::string& key, const std::string& blob) = 0;

  /// Fetch the blob stored under `key` into `out`. Returns false (and leaves
  /// `out` untouched) when the key is absent.
  virtual bool get(const std::string& key, std::string* out) const = 0;

  /// All keys, sorted ascending.
  virtual std::vector<std::string> keys() const = 0;

  /// Remove a key; removing an absent key is a no-op.
  virtual void remove(const std::string& key) = 0;

  /// Human-readable backend name ("memory", "file:<dir>").
  virtual std::string name() const = 0;
};

/// Process-local store; snapshots die with the process. Useful for tests and
/// for in-place (same-process) crash recovery.
class MemoryCheckpointStore final : public CheckpointStore {
 public:
  void put(const std::string& key, const std::string& blob) override;
  bool get(const std::string& key, std::string* out) const override;
  std::vector<std::string> keys() const override;
  void remove(const std::string& key) override;
  std::string name() const override { return "memory"; }

 private:
  std::map<std::string, std::string> blobs_;
};

/// Directory-backed store: one `<key>.ckpt` file per snapshot. Writes go
/// through a temp file + rename so a crash mid-write never leaves a torn
/// snapshot under a live key. IO failures throw prs::Error.
class FileCheckpointStore final : public CheckpointStore {
 public:
  /// Creates `dir` (and parents) if missing.
  explicit FileCheckpointStore(std::string dir);

  void put(const std::string& key, const std::string& blob) override;
  bool get(const std::string& key, std::string* out) const override;
  std::vector<std::string> keys() const override;
  void remove(const std::string& key) override;
  std::string name() const override { return "file:" + dir_; }

  const std::string& dir() const { return dir_; }

 private:
  std::string path_for(const std::string& key) const;

  std::string dir_;
};

/// Key for the snapshot taken before iteration `next_iteration` runs.
/// Zero-padded so lexicographic order equals numeric order.
std::string snapshot_key(const std::string& prefix, int next_iteration);

/// Newest snapshot key under `prefix` in `store`, or "" when none exists.
std::string latest_snapshot_key(const CheckpointStore& store,
                                const std::string& prefix);

/// True when at least one snapshot exists under `prefix`. Used by the job
/// server's crash recovery to count which re-admitted jobs will actually
/// resume from a snapshot rather than recompute from iteration 0.
bool has_snapshot(const CheckpointStore& store, const std::string& prefix);

/// Delete all but the newest `keep` snapshots under `prefix`.
void prune_snapshots(CheckpointStore& store, const std::string& prefix,
                     int keep);

}  // namespace prs::ckpt
