#include "svc/admission.hpp"

#include <cstdarg>
#include <cstdio>

#include "common/error.hpp"

namespace prs::svc {
namespace {

std::string fmt(const char* f, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof(buf), f, ap);
  va_end(ap);
  return buf;
}

}  // namespace

const char* admit_code_name(AdmitCode code) {
  switch (code) {
    case AdmitCode::kOk: return "ok";
    case AdmitCode::kUnknownTenant: return "unknown_tenant";
    case AdmitCode::kBadSpec: return "bad_spec";
    case AdmitCode::kTooLarge: return "too_large";
    case AdmitCode::kQuotaVgpus: return "quota_vgpus";
    case AdmitCode::kQuotaMemory: return "quota_memory";
    case AdmitCode::kQuotaQueued: return "quota_queued";
    case AdmitCode::kQueueFull: return "queue_full";
    case AdmitCode::kDraining: return "draining";
    case AdmitCode::kJournalBusy: return "journal_busy";
  }
  return "unknown";
}

bool admit_code_retryable(AdmitCode code) {
  return code == AdmitCode::kQuotaQueued || code == AdmitCode::kQueueFull ||
         code == AdmitCode::kJournalBusy;
}

AdmitDecision AdmissionController::check(const TenantAccount* tenant,
                                         const JobSpec& spec,
                                         int pool_capacity, int global_queued,
                                         bool draining) const {
  // Fixed check order: the same server state and spec always yield the same
  // code and message.
  if (draining) {
    return {AdmitCode::kDraining, "server is draining, not accepting jobs"};
  }
  if (tenant == nullptr) {
    return {AdmitCode::kUnknownTenant, "unknown tenant"};
  }
  try {
    spec.validate();
  } catch (const prs::Error& e) {
    return {AdmitCode::kBadSpec, e.what()};
  }
  const int need = spec.vgpus_needed();
  if (need > pool_capacity) {
    return {AdmitCode::kTooLarge,
            fmt("job needs %d vGPU(s) but the pool only has %d slot(s)", need,
                pool_capacity)};
  }
  const TenantQuota& q = tenant->quota;
  if (tenant->vgpus_in_use + need > q.max_vgpus) {
    return {AdmitCode::kQuotaVgpus,
            fmt("tenant '%s' vGPU quota exceeded: job needs %d, quota %d, "
                "%d already committed",
                tenant->name.c_str(), need, q.max_vgpus,
                tenant->vgpus_in_use)};
  }
  if (q.gpu_mem_bytes > 0 && spec.gpu_mem_bytes > q.gpu_mem_bytes) {
    return {AdmitCode::kQuotaMemory,
            fmt("tenant '%s' memory quota exceeded: job requests %llu bytes "
                "per vGPU, quota %llu",
                tenant->name.c_str(),
                static_cast<unsigned long long>(spec.gpu_mem_bytes),
                static_cast<unsigned long long>(q.gpu_mem_bytes))};
  }
  if (tenant->queued >= q.max_queued) {
    return {AdmitCode::kQuotaQueued,
            fmt("tenant '%s' queue is full (%d job(s) queued, bound %d)",
                tenant->name.c_str(), tenant->queued, q.max_queued)};
  }
  if (global_queued >= cfg_.max_queue_depth) {
    return {AdmitCode::kQueueFull,
            fmt("server queue is full (%d job(s) queued, bound %d)",
                global_queued, cfg_.max_queue_depth)};
  }
  return {};
}

}  // namespace prs::svc
