// The one per-app dispatch shared by prs_run (single-shot) and the job
// server (multi-tenant): given a JobSpec and a cluster, run the application
// and return its statistics plus a canonical result digest. Because both
// front-ends execute jobs through this exact code path, a job submitted to
// prs_serve produces byte-identical digests to the same job run single-shot
// — the acceptance property of the service layer.
#pragma once

#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/job.hpp"
#include "svc/job_spec.hpp"

namespace prs::svc {

struct LaunchOutcome {
  core::JobStats stats;
  /// 16-hex-digit FNV-1a digest of the job's result state: the application
  /// result (centers/objective, counts, vectors, …) in functional mode, or
  /// the JobStats fields in modeled mode. Identical specs (and seeds)
  /// produce identical digests on any front-end.
  std::string digest;
  /// Human-readable result lines ("converged in …", "… state digest: …")
  /// in the historical prs_run format; prs_run prints them verbatim.
  std::vector<std::string> lines;
};

/// Runs `spec` on `cluster` (already built with spec.node_config() — or a
/// vGPU-shaped variant of it) and returns the outcome. `cfg` must come from
/// spec.job_config() plus any front-end additions (policy instance, fault
/// injector, stage gate). `checkpoint` may be null.
LaunchOutcome run_job_spec(const JobSpec& spec, core::Cluster& cluster,
                           const core::NodeConfig& node,
                           const core::JobConfig& cfg, Rng& rng,
                           const ckpt::CheckpointConfig* checkpoint);

}  // namespace prs::svc
