// Admission control: decides synchronously, at SUBMIT time, whether a job
// enters the queue — against the tenant's quotas, the global queue bound
// and the pool's physical capacity. Rejections are deterministic: the same
// server state and spec always produce the same code and message, so a
// quota-breaching client sees a stable, explainable error rather than a
// race-dependent one.
#pragma once

#include <string>

#include "svc/job_spec.hpp"
#include "svc/tenant.hpp"

namespace prs::svc {

enum class AdmitCode {
  kOk,
  kUnknownTenant,   // no such tenant registered
  kBadSpec,         // JobSpec::validate() failed
  kTooLarge,        // needs more vGPUs than the whole pool has
  kQuotaVgpus,      // would exceed the tenant's vGPU quota
  kQuotaMemory,     // requests more per-vGPU memory than the tenant quota
  kQuotaQueued,     // tenant queue bound reached (per-tenant backpressure)
  kQueueFull,       // global queue bound reached (server backpressure)
  kDraining,        // server is draining, no new admissions
  kJournalBusy,     // journal fsync queue saturated (durability backlog)
};

/// Transient rejections a client should retry after a delay; the protocol
/// layer maps these to a RETRY-AFTER response instead of a plain ERR.
bool admit_code_retryable(AdmitCode code);

const char* admit_code_name(AdmitCode code);

struct AdmitDecision {
  AdmitCode code = AdmitCode::kOk;
  std::string message;  // empty on kOk

  bool ok() const { return code == AdmitCode::kOk; }
};

struct AdmissionConfig {
  /// Global bound on jobs queued (not yet running) across all tenants.
  int max_queue_depth = 32;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig cfg) : cfg_(cfg) {}

  const AdmissionConfig& config() const { return cfg_; }

  /// Pure decision function: no side effects, deterministic.
  AdmitDecision check(const TenantAccount* tenant, const JobSpec& spec,
                      int pool_capacity, int global_queued,
                      bool draining) const;

 private:
  AdmissionConfig cfg_;
};

}  // namespace prs::svc
