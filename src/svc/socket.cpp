#include "svc/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "svc/protocol.hpp"

namespace prs::svc {
namespace {

void fill_addr(const std::string& path, sockaddr_un& addr) {
  PRS_REQUIRE(path.size() < sizeof(addr.sun_path),
              "socket path too long: " + path);
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
}

/// Writes the whole buffer, retrying on short writes / EINTR.
/// MSG_NOSIGNAL: writing to a peer that already hung up must surface as an
/// EPIPE return, never a process-killing SIGPIPE — the resilient client
/// turns it into a reconnect, the server into a dropped connection.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketServer::SocketServer(std::string path, Handler handler)
    : path_(std::move(path)), handler_(std::move(handler)) {
  sockaddr_un addr;
  fill_addr(path_, addr);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PRS_CHECK(listen_fd_ >= 0, "socket() failed");
  ::unlink(path_.c_str());  // stale socket from a previous run
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("cannot bind " + path_ + ": " + std::strerror(err));
  }
  if (::listen(listen_fd_, 16) != 0) {
    int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
    throw Error("cannot listen on " + path_ + ": " + std::strerror(err));
  }
  accept_thread_ = std::thread(&SocketServer::accept_loop, this);
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::accept_loop() {
  for (;;) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    // A short poll timeout is the portable way to notice stop() without
    // racing close() against a blocked accept().
    int r = ::poll(&pfd, 1, 100);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) return;
    }
    if (r <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    connection_fds_.push_back(fd);
    connections_.emplace_back(&SocketServer::serve_connection, this, fd);
  }
}

void SocketServer::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    auto nl = buffer.find('\n');
    if (nl == std::string::npos) {
      if (buffer.size() > kMaxLineBytes) {
        // Oversized line: reject and hang up before the buffer grows
        // further. The partial line is never handed to the handler.
        write_all(fd, "ERR code=line_too_long request line exceeds " +
                          std::to_string(kMaxLineBytes) + " bytes\n");
        break;
      }
      ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // client hung up
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, nl);
    buffer.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    bool shutdown = false;
    std::string response = handler_(line, &shutdown);
    const bool ok = write_all(fd, response);
    if (shutdown) {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_requested_ = true;
      cv_.notify_all();
    }
    if (!ok || shutdown) break;
  }
  {
    // Unregister before close so stop() never touches a recycled fd.
    std::lock_guard<std::mutex> lk(mu_);
    connection_fds_.erase(
        std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
        connection_fds_.end());
  }
  ::close(fd);
}

void SocketServer::wait_for_shutdown() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return shutdown_requested_ || stopping_; });
}

void SocketServer::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return;
    stopping_ = true;
    // Kick connection threads out of blocked read()s: a client that stays
    // connected (idle) must not be able to wedge shutdown.
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    cv_.notify_all();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lk(mu_);
    conns.swap(connections_);
  }
  for (auto& t : conns) t.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(path_.c_str());
}

SocketClient::SocketClient(const std::string& path) {
  sockaddr_un addr;
  fill_addr(path, addr);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PRS_CHECK(fd_ >= 0, "socket() failed");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw ConnectFailed("cannot connect to server at " + path + ": " +
                        std::strerror(err) + " (is prs_serve running?)");
  }
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string SocketClient::read_line() {
  char chunk[4096];
  for (;;) {
    auto nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return line;
    }
    if (timeout_ms_ > 0) {
      pollfd pfd{fd_, POLLIN, 0};
      int r = ::poll(&pfd, 1, timeout_ms_);
      if (r < 0 && errno == EINTR) continue;
      if (r == 0) {
        throw RequestTimeout("no response within " +
                             std::to_string(timeout_ms_) + "ms");
      }
    }
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw Error("server closed the connection");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string SocketClient::request(const std::string& line) {
  PRS_REQUIRE(line.find('\n') == std::string::npos,
              "request must be a single line");
  if (!write_all(fd_, line + "\n")) {
    throw Error("write to server failed: " + std::string(std::strerror(errno)));
  }
  std::string header = read_line();
  std::string out = header + "\n";
  const long extra = header_field(header, "lines", 0);
  for (long i = 0; i < extra; ++i) out += read_line() + "\n";
  return out;
}

}  // namespace prs::svc
