// Resilient client for the job-server line protocol: per-request
// timeouts, bounded exponential backoff with deterministic seeded jitter,
// automatic reconnect across a server restart, and RETRY-AFTER honoring.
//
// Retry safety: a request is only re-sent after a connection-phase
// failure unless the caller marks it idempotent. SUBMIT becomes
// idempotent when it carries a dedup= key (the server echoes the existing
// job id on a replay), which is what lets `prs_run --server-retries` ride
// out a server crash between the send and the reply. STATUS/WAIT/CANCEL
// are idempotent by construction.
//
// The backoff schedule is a pure function of (policy, attempt): exponential
// growth from base_ms, capped at cap_ms, with splitmix64-seeded jitter in
// [ms/2, ms]. Deterministic so tests can assert the exact schedule and two
// clients with different seeds do not stampede in lockstep.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "svc/socket.hpp"

namespace prs::svc {

struct RetryPolicy {
  int retries = 0;        // re-attempts after the first try (0 = fail fast)
  int base_ms = 50;       // first backoff sleep
  int cap_ms = 2000;      // backoff ceiling
  std::uint64_t seed = 1; // jitter stream; same seed => same schedule
  int timeout_ms = 0;     // per-request read deadline (0 = block forever)
};

/// Backoff before re-attempt `attempt` (1-based). Deterministic.
int backoff_ms(const RetryPolicy& policy, int attempt);

/// Human-readable schedule ("52ms, 103ms, 201ms") for the UX satellite:
/// prs_run prints it when --server-retries is active.
std::string backoff_schedule(const RetryPolicy& policy);

class ResilientClient {
 public:
  /// Called before each backoff sleep: (1-based attempt, sleep ms, reason).
  using RetryObserver =
      std::function<void(int attempt, int sleep_ms, const std::string& why)>;

  ResilientClient(std::string path, RetryPolicy policy);

  void set_retry_observer(RetryObserver observer);

  /// Sends one request, reconnecting with backoff on connect failures,
  /// timeouts, dropped connections and RETRY-AFTER responses. When
  /// `idempotent` is false the request is never re-sent once it may have
  /// reached the server (only connect-phase failures retry). Throws
  /// svc::ConnectFailed when the retry budget is exhausted without ever
  /// reaching the server, prs::Error otherwise.
  std::string request(const std::string& line, bool idempotent = true);

  /// WAIT <job_id> that survives server restarts: request timeouts do not
  /// consume the retry budget (a long job is not a failure), and the budget
  /// resets after every successful response. Returns the terminal status
  /// response.
  std::string wait_job(int job_id);

  int reconnects() const { return reconnects_; }

 private:
  void ensure_connected();
  void backoff(int attempt, const std::string& why);

  std::string path_;
  RetryPolicy policy_;
  RetryObserver observer_;
  std::unique_ptr<SocketClient> conn_;
  int reconnects_ = 0;
};

/// Parses the advised delay out of a "RETRY-AFTER <ms> ..." response
/// header; returns -1 when the header is not a RETRY-AFTER response.
int retry_after_ms(const std::string& header);

}  // namespace prs::svc
