// Weighted fair-share scheduling via stride scheduling (Waldspurger &
// Weihl, OSDI '94), on tenants rather than threads.
//
// Every tenant carries a `pass` value. Each time one of the tenant's jobs
// receives a time slice (one stage of virtual time on its vGPUs), the
// tenant is charged: pass += service / weight. The scheduler always grants
// the tenant with the minimum pass, so over any busy interval tenant
// service converges to the weight ratio — a weight-2 tenant gets twice the
// virtual device-time of a weight-1 tenant, regardless of how many jobs
// each has in flight.
//
// Determinism: ties on pass break by tenant name, then job id, so the grant
// sequence is a pure function of the submission history.
#pragma once

#include <string>
#include <vector>

#include "svc/tenant.hpp"

namespace prs::svc {

/// One schedulable job: a job id parked at its scheduling gate plus the
/// account of the tenant that owns it.
struct StrideCandidate {
  const TenantAccount* tenant = nullptr;
  int job_id = -1;
};

/// Index of the candidate to grant next: minimum tenant pass, ties broken
/// by tenant name then job id. Returns -1 when `candidates` is empty.
int stride_pick(const std::vector<StrideCandidate>& candidates);

/// Charges `service` (virtual device-seconds) to the tenant, advancing its
/// pass by service / weight.
void stride_charge(TenantAccount& tenant, double service);

/// Clamps a tenant's pass up to `floor_pass` when it (re)enters the
/// runnable set, so an idle tenant cannot bank credit and then monopolize
/// the pool (the standard stride join rule).
void stride_clamp_pass(TenantAccount& tenant, double floor_pass);

/// Minimum pass over tenants that currently have runnable work; the floor
/// a joining tenant is clamped to. Returns 0 when `active` is empty.
double stride_min_pass(const std::vector<const TenantAccount*>& active);

}  // namespace prs::svc
