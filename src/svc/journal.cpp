#include "svc/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "ckpt/codec.hpp"
#include "common/error.hpp"

namespace prs::svc {
namespace {

constexpr std::uint32_t kJournalMagic = 0x4a535250;  // "PRSJ"
constexpr std::uint32_t kJournalVersion = 1;
// Header: magic + version + payload_len + checksum.
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;
// A payload larger than this is corruption, not a record: no legitimate
// record (spec tokens + result lines) comes anywhere close.
constexpr std::uint64_t kMaxPayload = 16ull * 1024 * 1024;

}  // namespace

const char* journal_record_name(JournalRecordType t) {
  switch (t) {
    case JournalRecordType::kSubmit: return "submit";
    case JournalRecordType::kStart: return "start";
    case JournalRecordType::kGate: return "gate";
    case JournalRecordType::kDone: return "done";
    case JournalRecordType::kFail: return "fail";
    case JournalRecordType::kCancel: return "cancel";
  }
  return "unknown";
}

bool parse_journal_record_name(const std::string& name,
                               JournalRecordType* out) {
  for (JournalRecordType t :
       {JournalRecordType::kSubmit, JournalRecordType::kStart,
        JournalRecordType::kGate, JournalRecordType::kDone,
        JournalRecordType::kFail, JournalRecordType::kCancel}) {
    if (name == journal_record_name(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

std::string encode_journal_record(const JournalRecord& rec) {
  ckpt::Writer payload;
  payload.u8(static_cast<std::uint8_t>(rec.type));
  payload.i32(rec.job_id);
  switch (rec.type) {
    case JournalRecordType::kSubmit:
      payload.str(rec.tenant);
      payload.str(rec.dedup);
      payload.str(rec.spec_tokens);
      break;
    case JournalRecordType::kStart:
      break;
    case JournalRecordType::kGate:
      payload.i32(rec.stages);
      break;
    case JournalRecordType::kDone:
      payload.str(rec.digest);
      payload.u32(static_cast<std::uint32_t>(rec.lines.size()));
      for (const std::string& line : rec.lines) payload.str(line);
      break;
    case JournalRecordType::kFail:
    case JournalRecordType::kCancel:
      payload.str(rec.error);
      break;
  }
  ckpt::Writer frame;
  frame.u32(kJournalMagic);
  frame.u32(kJournalVersion);
  frame.u64(payload.size());
  frame.u64(ckpt::fnv1a64(payload.bytes()));
  std::string out = frame.take();
  out += payload.bytes();
  return out;
}

JournalReplay decode_journal(const std::string& bytes) {
  JournalReplay out;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kHeaderBytes) {
      out.torn_tail = true;
      break;
    }
    ckpt::Reader header(std::string_view(bytes).substr(pos, kHeaderBytes));
    const std::uint32_t magic = header.u32();
    const std::uint32_t version = header.u32();
    const std::uint64_t payload_len = header.u64();
    const std::uint64_t checksum = header.u64();
    if (magic != kJournalMagic || version != kJournalVersion ||
        payload_len > kMaxPayload ||
        payload_len > bytes.size() - pos - kHeaderBytes) {
      out.torn_tail = true;
      break;
    }
    const std::string_view payload =
        std::string_view(bytes).substr(pos + kHeaderBytes, payload_len);
    if (ckpt::fnv1a64(payload) != checksum) {
      out.torn_tail = true;
      break;
    }
    JournalRecord rec;
    bool ok = true;
    try {
      ckpt::Reader r(payload);
      const std::uint8_t type = r.u8();
      if (type < 1 || type > 6) throw Error("bad journal record type");
      rec.type = static_cast<JournalRecordType>(type);
      rec.job_id = r.i32();
      switch (rec.type) {
        case JournalRecordType::kSubmit:
          rec.tenant = r.str();
          rec.dedup = r.str();
          rec.spec_tokens = r.str();
          break;
        case JournalRecordType::kStart:
          break;
        case JournalRecordType::kGate:
          rec.stages = r.i32();
          break;
        case JournalRecordType::kDone: {
          rec.digest = r.str();
          const std::uint32_t n = r.u32();
          rec.lines.reserve(n);
          for (std::uint32_t i = 0; i < n; ++i) rec.lines.push_back(r.str());
          break;
        }
        case JournalRecordType::kFail:
        case JournalRecordType::kCancel:
          rec.error = r.str();
          break;
      }
    } catch (const Error&) {
      ok = false;  // checksum matched but the payload grammar did not
    }
    if (!ok) {
      out.torn_tail = true;
      break;
    }
    out.records.push_back(std::move(rec));
    pos += kHeaderBytes + payload_len;
    out.bytes_consumed = pos;
  }
  return out;
}

JournalReplay read_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return JournalReplay{};  // missing file = empty journal
  std::ostringstream buf;
  buf << in.rdbuf();
  return decode_journal(buf.str());
}

Journal::Journal(Config cfg) : cfg_(std::move(cfg)) {
  PRS_REQUIRE(!cfg_.path.empty(), "journal path must not be empty");
  PRS_REQUIRE(cfg_.max_pending >= 1, "journal max_pending must be >= 1");
  fd_ = ::open(cfg_.path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw Error("cannot open journal " + cfg_.path + ": " +
                std::strerror(errno));
  }
  flusher_ = std::thread(&Journal::flusher_main, this);
}

Journal::~Journal() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
    paused_ = false;
    cv_.notify_all();
  }
  flusher_.join();
  ::close(fd_);
}

JournalReplay Journal::replay() const { return read_journal(cfg_.path); }

bool Journal::append_durable(const JournalRecord& rec) {
  std::uint64_t seq = 0;
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (static_cast<int>(queue_.size()) >= cfg_.max_pending) {
      shed_++;
      return false;
    }
    seq = next_seq_++;
    queue_.push_back({encode_journal_record(rec), rec.type, seq});
    cv_.notify_all();
    flushed_cv_.wait(lk, [&] { return flushed_seq_ >= seq || stopping_; });
    return flushed_seq_ >= seq;
  }
}

bool Journal::append_async(const JournalRecord& rec) {
  std::lock_guard<std::mutex> lk(mu_);
  if (static_cast<int>(queue_.size()) >= cfg_.max_pending) {
    shed_++;
    return false;
  }
  queue_.push_back({encode_journal_record(rec), rec.type, next_seq_++});
  cv_.notify_all();
  return true;
}

void Journal::flush() {
  std::unique_lock<std::mutex> lk(mu_);
  const std::uint64_t target = next_seq_ - 1;
  flushed_cv_.wait(lk, [&] { return flushed_seq_ >= target || stopping_; });
}

std::uint64_t Journal::records_appended() const {
  std::lock_guard<std::mutex> lk(mu_);
  return appended_;
}

std::uint64_t Journal::records_shed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return shed_;
}

void Journal::set_post_sync_hook(
    std::function<void(JournalRecordType, std::uint64_t)> hook) {
  std::lock_guard<std::mutex> lk(mu_);
  post_sync_hook_ = std::move(hook);
}

void Journal::pause_flush(bool paused) {
  std::lock_guard<std::mutex> lk(mu_);
  paused_ = paused;
  cv_.notify_all();
}

void Journal::flusher_main() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_.wait(lk, [&] {
      return stopping_ || (!paused_ && !queue_.empty());
    });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Group commit: take the whole queue, write it as one batch, fsync
    // once, then wake every durable waiter covered by the batch.
    std::deque<Pending> batch;
    batch.swap(queue_);
    lk.unlock();
    std::string data;
    for (const Pending& p : batch) data += p.bytes;
    std::size_t off = 0;
    bool io_ok = true;
    while (off < data.size()) {
      ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        io_ok = false;
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    if (io_ok) ::fsync(fd_);
    lk.lock();
    // A failed write still advances flushed_seq_ so durable waiters do not
    // hang; the journal is best-effort once the disk itself fails.
    for (const Pending& p : batch) {
      flushed_seq_ = std::max(flushed_seq_, p.seq);
      if (io_ok) {
        appended_++;
        const auto idx = static_cast<std::size_t>(p.type);
        type_counts_[idx]++;
        if (post_sync_hook_) {
          auto hook = post_sync_hook_;
          const std::uint64_t count = type_counts_[idx];
          lk.unlock();
          hook(p.type, count);
          lk.lock();
        }
      }
    }
    flushed_cv_.notify_all();
  }
}

}  // namespace prs::svc
