#include "svc/client.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <thread>

#include "common/error.hpp"

namespace prs::svc {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

int backoff_ms(const RetryPolicy& policy, int attempt) {
  PRS_REQUIRE(attempt >= 1, "backoff attempt is 1-based");
  const int base = std::max(1, policy.base_ms);
  const int cap = std::max(base, policy.cap_ms);
  // Exponential growth, saturating at the cap without overflowing.
  std::int64_t ms = base;
  for (int i = 1; i < attempt && ms < cap; ++i) ms *= 2;
  ms = std::min<std::int64_t>(ms, cap);
  // Jitter in [ms/2, ms]: decorrelates clients without ever collapsing the
  // wait to zero.
  const std::uint64_t r =
      splitmix64(policy.seed ^ (static_cast<std::uint64_t>(attempt) << 32));
  const std::int64_t half = ms / 2;
  return static_cast<int>(half + static_cast<std::int64_t>(
                                     r % static_cast<std::uint64_t>(ms - half + 1)));
}

std::string backoff_schedule(const RetryPolicy& policy) {
  std::string out;
  for (int a = 1; a <= policy.retries; ++a) {
    if (!out.empty()) out += ", ";
    out += std::to_string(backoff_ms(policy, a)) + "ms";
  }
  return out;
}

int retry_after_ms(const std::string& header) {
  const std::string prefix = "RETRY-AFTER ";
  if (header.rfind(prefix, 0) != 0) return -1;
  int ms = 0;
  const char* b = header.data() + prefix.size();
  const char* e = header.data() + header.size();
  auto [p, ec] = std::from_chars(b, e, ms);
  if (ec != std::errc() || p == b || ms < 0) return -1;
  return ms;
}

ResilientClient::ResilientClient(std::string path, RetryPolicy policy)
    : path_(std::move(path)), policy_(policy) {}

void ResilientClient::set_retry_observer(RetryObserver observer) {
  observer_ = std::move(observer);
}

void ResilientClient::ensure_connected() {
  if (conn_ != nullptr) return;
  conn_ = std::make_unique<SocketClient>(path_);
  conn_->set_timeout_ms(policy_.timeout_ms);
}

void ResilientClient::backoff(int attempt, const std::string& why) {
  const int ms = backoff_ms(policy_, attempt);
  if (observer_) observer_(attempt, ms, why);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::string ResilientClient::request(const std::string& line,
                                     bool idempotent) {
  std::string last_error;
  bool advised_wait = false;  // RETRY-AFTER already slept for this attempt
  for (int attempt = 0; attempt <= policy_.retries; ++attempt) {
    if (attempt > 0 && !advised_wait) backoff(attempt, last_error);
    advised_wait = false;
    bool sent = false;
    try {
      const bool fresh = conn_ == nullptr;
      ensure_connected();
      if (fresh && attempt > 0) reconnects_++;
      sent = true;  // request() writes first; treat everything past
                    // connect as maybe-delivered
      std::string response = conn_->request(line);
      const int advised = retry_after_ms(response);
      if (advised >= 0) {
        // Explicit shed: the server is up but overloaded. Honor its advice
        // (clamped into the policy's range) instead of our own schedule.
        last_error = "server shedding load (RETRY-AFTER " +
                     std::to_string(advised) + "ms)";
        if (attempt == policy_.retries) return response;  // budget exhausted
        const int ms = std::clamp(advised, 1, std::max(1, policy_.cap_ms));
        if (observer_) observer_(attempt + 1, ms, last_error);
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        advised_wait = true;  // the advised sleep replaces our own backoff
        continue;
      }
      return response;
    } catch (const ConnectFailed& e) {
      last_error = e.what();  // never reached the server: always retryable
      conn_.reset();
    } catch (const RequestTimeout& e) {
      conn_.reset();  // response stream is indeterminate; reconnect
      last_error = e.what();
      if (sent && !idempotent) throw;
    } catch (const Error& e) {
      conn_.reset();  // dropped mid-request (server crash/restart)
      last_error = e.what();
      if (sent && !idempotent) throw;
    }
  }
  throw ConnectFailed("request failed after " +
                      std::to_string(policy_.retries + 1) + " attempt(s): " +
                      last_error);
}

std::string ResilientClient::wait_job(int job_id) {
  const std::string line = "WAIT " + std::to_string(job_id);
  int consecutive_failures = 0;
  std::string last_error;
  for (;;) {
    try {
      ensure_connected();
      std::string response = conn_->request(line);
      return response;
    } catch (const RequestTimeout&) {
      // The job is just still running (or the server is wedged — the
      // reconnect below distinguishes them): re-issue WAIT on a fresh
      // connection without consuming the budget.
      conn_.reset();
      continue;
    } catch (const Error& e) {
      conn_.reset();
      last_error = e.what();
      consecutive_failures++;
      if (consecutive_failures > policy_.retries) {
        throw ConnectFailed("wait for job " + std::to_string(job_id) +
                            " failed after " +
                            std::to_string(consecutive_failures) +
                            " attempt(s): " + last_error);
      }
      reconnects_++;
      backoff(consecutive_failures, last_error);
    }
  }
}

}  // namespace prs::svc
