// Local-socket transport for the job server's line protocol: an AF_UNIX
// stream listener with one thread per connection (WAIT blocks, so
// connections must not share a reader thread), and the matching blocking
// client used by prs_run's --submit/--job-status/... modes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace prs::svc {

/// The server is not reachable (connection refused, stale socket file,
/// missing path). Distinct so prs_run can map it to a "server not
/// running?" message and its own exit code.
class ConnectFailed : public Error {
 public:
  explicit ConnectFailed(const std::string& what) : Error(what) {}
};

/// A response did not arrive within the client's per-request timeout. The
/// connection state is indeterminate afterwards — resilient callers
/// reconnect before retrying.
class RequestTimeout : public Error {
 public:
  explicit RequestTimeout(const std::string& what) : Error(what) {}
};

class SocketServer {
 public:
  /// Hard cap on one request line. A client that streams more without a
  /// newline gets an ERR response and its connection closed — an oversized
  /// line must not grow the server's buffer without bound.
  static constexpr std::size_t kMaxLineBytes = 64 * 1024;

  /// Handler for one request line; returns the full response text and sets
  /// `*shutdown` to ask the server to stop (the SHUTDOWN verb). Called
  /// concurrently from connection threads — svc::handle_request over a
  /// JobServer is safe.
  using Handler = std::function<std::string(const std::string& line,
                                            bool* shutdown)>;

  /// Binds and listens on `path` (an existing socket file is replaced) and
  /// starts the accept loop. Throws prs::Error on bind failure.
  SocketServer(std::string path, Handler handler);
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;
  ~SocketServer();

  const std::string& path() const { return path_; }

  /// Blocks until some connection issued SHUTDOWN (or stop() was called).
  void wait_for_shutdown();

  /// Stops accepting, closes the listener, joins connection threads and
  /// unlinks the socket file. Idempotent.
  void stop();

 private:
  void accept_loop();
  void serve_connection(int fd);

  std::string path_;
  Handler handler_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::thread> connections_;
  std::vector<int> connection_fds_;  // live fds, shut down by stop()
  bool stopping_ = false;
  bool shutdown_requested_ = false;
};

/// Blocking client for one server connection.
class SocketClient {
 public:
  /// Connects to the server at `path`; throws svc::ConnectFailed when the
  /// server is not reachable.
  explicit SocketClient(const std::string& path);
  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;
  ~SocketClient();

  /// Per-request read deadline in milliseconds; 0 (the default) blocks
  /// forever. On expiry request() throws svc::RequestTimeout.
  void set_timeout_ms(int timeout_ms) { timeout_ms_ = timeout_ms; }

  /// Sends one request line and returns the full response: the header line
  /// plus any `lines=<n>` continuation lines, '\n'-terminated each.
  std::string request(const std::string& line);

 private:
  std::string read_line();

  int fd_ = -1;
  int timeout_ms_ = 0;
  std::string buffer_;  // bytes read past the last returned line
};

}  // namespace prs::svc
