#include "svc/stats_io.hpp"

#include <cstdarg>
#include <cstdio>

#include "common/units.hpp"

namespace prs::svc {
namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

std::string job_stats_text(const core::JobStats& s, int nodes,
                           const exec::PoolStats* pool) {
  std::string out;
  appendf(out, "\n-- runtime statistics --\n");
  appendf(out, "virtual time        %s\n",
          units::format_time(s.elapsed).c_str());
  appendf(out, "throughput          %s (%s per node)\n",
          units::format_flops(s.flops_rate()).c_str(),
          units::format_flops(s.flops_rate() / nodes).c_str());
  appendf(out, "CPU / GPU flops     %.3g / %.3g (CPU share %.1f%%)\n",
          s.cpu_flops, s.gpu_flops,
          s.total_flops() > 0 ? s.cpu_flops / s.total_flops() * 100 : 0);
  appendf(out, "map tasks           %llu (+%llu reduce)\n",
          static_cast<unsigned long long>(s.map_tasks),
          static_cast<unsigned long long>(s.reduce_tasks));
  appendf(out, "PCI-E traffic       %s\n",
          units::format_bytes(s.pcie_bytes).c_str());
  appendf(out, "network traffic     %s\n",
          units::format_bytes(s.network_bytes).c_str());
  const double phases = s.startup_time + s.map_time + s.shuffle_time +
                        s.reduce_time + s.gather_time;
  if (phases > 0) {
    appendf(out,
            "phase breakdown     startup %.0f%% | map %.0f%% | shuffle "
            "%.0f%% | reduce %.0f%% | gather %.0f%%\n",
            s.startup_time / phases * 100, s.map_time / phases * 100,
            s.shuffle_time / phases * 100, s.reduce_time / phases * 100,
            s.gather_time / phases * 100);
  }
  if (pool != nullptr && pool->jobs > 0) {
    appendf(out,
            "host pool           %d thread(s) | %llu region(s) | %llu "
            "chunks (%llu stolen) | occupancy %.0f%%\n",
            pool->threads, static_cast<unsigned long long>(pool->jobs),
            static_cast<unsigned long long>(pool->chunks),
            static_cast<unsigned long long>(pool->stolen_chunks),
            pool->occupancy() * 100.0);
    // Steal locality only means something once the lane map has >1 socket
    // group; under the flat map every steal is "local" by construction.
    if (pool->sockets > 1) {
      appendf(out,
              "host numa           %d socket group(s) | %d pinned lane(s) | "
              "steals %llu local / %llu remote\n",
              pool->sockets, pool->pinned_lanes,
              static_cast<unsigned long long>(pool->steals_local),
              static_cast<unsigned long long>(pool->steals_remote));
    }
  }
  return out;
}

std::string job_stats_json(const core::JobStats& stats) {
  std::string out = "{";
  bool first = true;
  core::visit_stats_fields(stats, [&](const char* name, const auto& value) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += name;
    out += "\":";
    appendf(out, "%.17g", static_cast<double>(value));
  });
  out += '}';
  return out;
}

}  // namespace prs::svc
