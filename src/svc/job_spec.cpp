#include "svc/job_spec.hpp"

#include <charconv>

#include "common/error.hpp"
#include "simdev/device_spec.hpp"

namespace prs::svc {
namespace {

bool parse_u64(const std::string& v, std::uint64_t& out) {
  const char* b = v.data();
  const char* e = b + v.size();
  auto [p, ec] = std::from_chars(b, e, out);
  return ec == std::errc() && p == e;
}

bool parse_size(const std::string& v, std::size_t& out) {
  std::uint64_t u = 0;
  if (!parse_u64(v, u)) return false;
  out = static_cast<std::size_t>(u);
  return true;
}

bool parse_int(const std::string& v, int& out) {
  const char* b = v.data();
  const char* e = b + v.size();
  auto [p, ec] = std::from_chars(b, e, out);
  return ec == std::errc() && p == e;
}

bool parse_double(const std::string& v, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(v, &pos);
    return pos == v.size();
  } catch (...) {
    return false;
  }
}

bool parse_bool(const std::string& v, bool& out) {
  if (v == "1" || v == "true") {
    out = true;
    return true;
  }
  if (v == "0" || v == "false") {
    out = false;
    return true;
  }
  return false;
}

bool known_app(const std::string& a) {
  return a == "cmeans" || a == "kmeans" || a == "gmm" || a == "gemv" ||
         a == "dgemm" || a == "fft" || a == "wordcount" || a == "stencil";
}

}  // namespace

core::NodeConfig JobSpec::node_config() const {
  core::NodeConfig cfg;
  if (testbed == "bigred2") {
    cfg.cpu = simdev::bigred2_cpu();
    cfg.gpu = simdev::bigred2_k20();
  } else if (testbed == "phi") {
    cfg.gpu = simdev::xeon_phi_5110p();
  }
  cfg.gpus_per_node = gpus;
  return cfg;
}

core::JobConfig JobSpec::job_config() const {
  core::JobConfig cfg;
  cfg.mode = functional ? core::ExecutionMode::kFunctional
                        : core::ExecutionMode::kModeled;
  cfg.scheduling = policy == "dynamic" ? core::SchedulingMode::kDynamic
                                       : core::SchedulingMode::kStatic;
  cfg.use_cpu = !gpu_only;
  cfg.use_gpu = !cpu_only;
  cfg.cpu_fraction_override = cpu_fraction;
  cfg.engine = engine == "graph" ? core::ExecEngine::kGraph
                                 : core::ExecEngine::kStages;
  cfg.pipeline_depth = pipeline_depth;
  return cfg;
}

void JobSpec::validate() const {
  if (!known_app(app)) {
    throw InvalidArgument("unknown app '" + app +
                          "' (cmeans|kmeans|gmm|gemv|dgemm|fft|wordcount|"
                          "stencil)");
  }
  if (testbed != "delta" && testbed != "bigred2" && testbed != "phi") {
    throw InvalidArgument("unknown testbed '" + testbed + "'");
  }
  if (policy != "static" && policy != "dynamic" && policy != "adaptive") {
    throw InvalidArgument("unknown policy '" + policy + "'");
  }
  if (nodes < 1) throw InvalidArgument("nodes must be >= 1");
  if (gpus < 0) throw InvalidArgument("gpus must be >= 0");
  if (points == 0) throw InvalidArgument("points must be >= 1");
  if (dims == 0) throw InvalidArgument("dims must be >= 1");
  if (clusters < 1) throw InvalidArgument("clusters must be >= 1");
  if (iterations < 1) throw InvalidArgument("iterations must be >= 1");
  if (rows == 0 || cols == 0) throw InvalidArgument("rows/cols must be >= 1");
  if (gpu_only && cpu_only) {
    throw InvalidArgument("gpu_only and cpu_only are mutually exclusive");
  }
  if (gpu_only && gpus == 0) {
    throw InvalidArgument("gpu_only requires gpus >= 1");
  }
  if (cpu_fraction > 1.0) {
    throw InvalidArgument("cpu_fraction must be in [0,1]");
  }
  if ((checkpoint_every > 0 || resume) && checkpoint_dir.empty()) {
    throw InvalidArgument("checkpoint_every/resume require checkpoint_dir");
  }
  if (!checkpoint_dir.empty()) {
    if (app != "cmeans" && app != "kmeans" && app != "gmm" &&
        app != "stencil") {
      throw InvalidArgument(
          "checkpointing supports the iterative apps only");
    }
    if (!functional) {
      throw InvalidArgument("checkpointing requires functional mode");
    }
  }
  if (app == "stencil" && !functional) {
    throw InvalidArgument("stencil requires functional mode");
  }
  if (engine != "stages" && engine != "graph") {
    throw InvalidArgument("unknown engine '" + engine + "' (stages|graph)");
  }
  if (pipeline_depth < 1 || pipeline_depth > 64) {
    throw InvalidArgument("pipeline_depth must be in [1,64]");
  }
  if (pipeline_depth > 1 && engine != "graph") {
    throw InvalidArgument("pipeline_depth > 1 requires engine=graph");
  }
  if (engine == "graph" && policy == "dynamic") {
    throw InvalidArgument(
        "engine=graph requires a static-dispatch policy (static|adaptive)");
  }
}

std::string JobSpec::to_tokens() const {
  const JobSpec def;
  std::string out;
  auto emit = [&out](const std::string& k, const std::string& v) {
    if (!out.empty()) out += ' ';
    out += k;
    out += '=';
    out += v;
  };
  if (app != def.app) emit("app", app);
  if (testbed != def.testbed) emit("testbed", testbed);
  if (policy != def.policy) emit("policy", policy);
  if (nodes != def.nodes) emit("nodes", std::to_string(nodes));
  if (gpus != def.gpus) emit("gpus", std::to_string(gpus));
  if (points != def.points) emit("points", std::to_string(points));
  if (dims != def.dims) emit("dims", std::to_string(dims));
  if (clusters != def.clusters) emit("clusters", std::to_string(clusters));
  if (iterations != def.iterations) {
    emit("iterations", std::to_string(iterations));
  }
  if (rows != def.rows) emit("rows", std::to_string(rows));
  if (cols != def.cols) emit("cols", std::to_string(cols));
  if (functional != def.functional) emit("functional", "1");
  if (gpu_only != def.gpu_only) emit("gpu_only", "1");
  if (cpu_only != def.cpu_only) emit("cpu_only", "1");
  if (cpu_fraction != def.cpu_fraction) {
    emit("cpu_fraction", std::to_string(cpu_fraction));
  }
  if (seed != def.seed) emit("seed", std::to_string(seed));
  if (engine != def.engine) emit("engine", engine);
  if (pipeline_depth != def.pipeline_depth) {
    emit("pipeline_depth", std::to_string(pipeline_depth));
  }
  if (!fault_spec.empty()) emit("fault_spec", fault_spec);
  if (fault_seed != def.fault_seed) {
    emit("fault_seed", std::to_string(fault_seed));
  }
  if (checkpoint_every != def.checkpoint_every) {
    emit("checkpoint_every", std::to_string(checkpoint_every));
  }
  if (!checkpoint_dir.empty()) emit("checkpoint_dir", checkpoint_dir);
  if (resume) emit("resume", "1");
  if (gpu_mem_bytes != def.gpu_mem_bytes) {
    emit("gpu_mem_bytes", std::to_string(gpu_mem_bytes));
  }
  return out;
}

bool apply_job_spec_field(JobSpec& spec, const std::string& key,
                          const std::string& value, std::string& error) {
  bool ok = true;
  if (key == "app") {
    spec.app = value;
  } else if (key == "testbed") {
    spec.testbed = value;
  } else if (key == "policy") {
    spec.policy = value;
  } else if (key == "nodes") {
    ok = parse_int(value, spec.nodes);
  } else if (key == "gpus") {
    ok = parse_int(value, spec.gpus);
  } else if (key == "points" || key == "lines" || key == "signals") {
    ok = parse_size(value, spec.points);
  } else if (key == "dims") {
    ok = parse_size(value, spec.dims);
  } else if (key == "clusters" || key == "components") {
    ok = parse_int(value, spec.clusters);
  } else if (key == "iterations") {
    ok = parse_int(value, spec.iterations);
  } else if (key == "rows") {
    ok = parse_size(value, spec.rows);
  } else if (key == "cols") {
    ok = parse_size(value, spec.cols);
  } else if (key == "functional") {
    ok = parse_bool(value, spec.functional);
  } else if (key == "gpu_only") {
    ok = parse_bool(value, spec.gpu_only);
  } else if (key == "cpu_only") {
    ok = parse_bool(value, spec.cpu_only);
  } else if (key == "cpu_fraction") {
    ok = parse_double(value, spec.cpu_fraction);
  } else if (key == "seed") {
    ok = parse_u64(value, spec.seed);
  } else if (key == "engine") {
    spec.engine = value;
  } else if (key == "pipeline_depth") {
    ok = parse_int(value, spec.pipeline_depth);
  } else if (key == "fault_spec") {
    spec.fault_spec = value;
  } else if (key == "fault_seed") {
    ok = parse_u64(value, spec.fault_seed);
  } else if (key == "checkpoint_every") {
    ok = parse_int(value, spec.checkpoint_every);
  } else if (key == "checkpoint_dir") {
    spec.checkpoint_dir = value;
  } else if (key == "resume") {
    ok = parse_bool(value, spec.resume);
  } else if (key == "gpu_mem_bytes") {
    ok = parse_u64(value, spec.gpu_mem_bytes);
  } else {
    error = "unknown job field: " + key;
    return false;
  }
  if (!ok) {
    error = "invalid value for job field " + key + ": " + value;
    return false;
  }
  return true;
}

JobSpec parse_job_spec(const std::map<std::string, std::string>& fields) {
  JobSpec spec;
  std::string error;
  for (const auto& [k, v] : fields) {
    if (!apply_job_spec_field(spec, k, v, error)) {
      throw InvalidArgument(error);
    }
  }
  // Deliberately no validate() here: a well-formed SUBMIT describing a bad
  // job is an admission decision (code=bad_spec), not a protocol error.
  return spec;
}

JobSpec parse_job_spec_tokens(const std::string& tokens) {
  std::map<std::string, std::string> fields;
  std::size_t pos = 0;
  while (pos < tokens.size()) {
    auto sp = tokens.find(' ', pos);
    if (sp == std::string::npos) sp = tokens.size();
    const std::string tok = tokens.substr(pos, sp - pos);
    pos = sp + 1;
    if (tok.empty()) continue;
    auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw InvalidArgument("malformed job spec token '" + tok + "'");
    }
    fields[tok.substr(0, eq)] = tok.substr(eq + 1);
  }
  return parse_job_spec(fields);
}

}  // namespace prs::svc
