#include "svc/server.hpp"

#include <algorithm>
#include <sstream>

#include "ckpt/checkpoint.hpp"
#include "ckpt/store.hpp"
#include "common/error.hpp"
#include "core/schedule_policy.hpp"
#include "fault/injector.hpp"
#include "obs/export.hpp"
#include "svc/fair_share.hpp"

namespace prs::svc {
namespace {

constexpr const char* kQueueWaitHist = "svc.queue_wait_vsec";

}  // namespace

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "QUEUED";
    case JobState::kStarting: return "STARTING";
    case JobState::kWaiting: return "WAITING";
    case JobState::kRunningStage: return "RUNNING";
    case JobState::kDone: return "DONE";
    case JobState::kFailed: return "FAILED";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "UNKNOWN";
}

bool job_state_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

JobServer::JobServer(Config cfg)
    : cfg_(cfg),
      admission_(cfg.admission),
      pool_(cfg.pool),
      trace_(trace_sim_) {
  trace_.set_enabled(cfg_.record_trace);
  // Fixed bucket shape so two servers' histograms merge/diff cleanly.
  metrics_.histogram(kQueueWaitHist, obs::geometric_buckets(1e-3, 4.0, 16));
}

JobServer::~JobServer() {
  stop();
  {
    std::unique_lock<std::mutex> lk(mu_);
    shutting_down_ = true;
    for (auto& job : jobs_) {
      if (!job_state_terminal(job->state)) job->cancel_requested = true;
    }
    cv_.notify_all();
    // Parked job threads need grants to observe the cancel; keep granting
    // until every job is terminal.
    while (active_jobs_locked() > 0) {
      for (auto& job : jobs_) {
        if (job->state == JobState::kQueued) {
          finish_job_locked(*job, JobState::kCancelled, "server shutdown");
        }
      }
      if (active_jobs_locked() == 0) break;
      cv_.wait(lk);
    }
  }
  reap_finished();
}

void JobServer::add_tenant(const std::string& name, TenantQuota quota) {
  PRS_REQUIRE(!name.empty(), "tenant name must not be empty");
  PRS_REQUIRE(quota.weight > 0.0, "tenant weight must be positive");
  std::lock_guard<std::mutex> lk(mu_);
  TenantAccount& t = tenants_[name];
  t.name = name;
  t.quota = quota;
}

JobServer::SubmitResult JobServer::submit(const std::string& tenant,
                                          JobSpec spec,
                                          const std::string& dedup) {
  std::unique_lock<std::mutex> lk(mu_);
  SubmitResult res;
  // Idempotent replay: a repeat of a dedup-keyed submit (a client retrying
  // after a dropped reply) returns the existing job, whatever its state,
  // before admission runs — no second quota charge, no second job.
  if (!dedup.empty()) {
    auto hit = dedup_.find(tenant + "\n" + dedup);
    if (hit != dedup_.end()) {
      res.job_id = hit->second;
      res.deduped = true;
      metrics_.counter("svc.submit_dedup_hits").increment();
      return res;
    }
  }
  auto it = tenants_.find(tenant);
  TenantAccount* account = it == tenants_.end() ? nullptr : &it->second;
  res.decision = admission_.check(account, spec, pool_.capacity(),
                                  queued_jobs_locked(), draining_);
  if (res.decision.ok() && cfg_.journal != nullptr) {
    // Write-ahead: the SUBMIT record must be on disk before the job exists,
    // so an accepted job is never lost to a crash. A saturated fsync queue
    // sheds the submit instead of blocking the client indefinitely.
    JournalRecord rec;
    rec.type = JournalRecordType::kSubmit;
    rec.job_id = next_job_id_;  // reserved only if the append lands
    rec.tenant = tenant;
    rec.dedup = dedup;
    rec.spec_tokens = spec.to_tokens();
    if (!cfg_.journal->append_durable(rec)) {
      res.decision = {AdmitCode::kJournalBusy,
                      "journal fsync queue is saturated"};
      metrics_.counter("svc.journal_shed").increment();
    }
  }
  if (!res.decision.ok()) {
    metrics_.counter("svc.jobs_rejected").increment();
    metrics_
        .counter(std::string("svc.rejected.") +
                 admit_code_name(res.decision.code))
        .increment();
    if (account != nullptr) account->jobs_rejected++;
    if (admit_code_retryable(res.decision.code)) {
      res.retry_after_ms = cfg_.shed_retry_ms;
    }
    return res;
  }

  auto job = std::make_unique<Job>();
  job->id = next_job_id_++;
  job->tenant = tenant;
  job->spec = std::move(spec);
  job->dedup = dedup;
  job->submit_vnow = vnow_;
  res.job_id = job->id;
  if (!dedup.empty()) dedup_[tenant + "\n" + dedup] = job->id;

  account->jobs_submitted++;
  account->queued++;
  account->vgpus_in_use += job->spec.vgpus_needed();
  metrics_.counter("svc.jobs_submitted").increment();

  jobs_.push_back(std::move(job));
  cv_.notify_all();
  return res;
}

JobServer::RecoveryStats JobServer::recover() {
  RecoveryStats out;
  if (cfg_.journal == nullptr) return out;
  const JournalReplay replay = cfg_.journal->replay();
  out.journal_records = static_cast<int>(replay.records.size());
  out.torn_tail = replay.torn_tail;
  if (replay.records.empty()) return out;

  // Fold the record stream into per-job end states. std::map keeps jobs in
  // ascending-id order, which IS the original admission order (ids are
  // assigned under the lock in submit order and only ever grow).
  struct Rebuilt {
    JournalRecord submit;
    bool has_submit = false;
    bool started = false;
    int stages = 0;
    bool terminal = false;
    JournalRecord last_terminal;
  };
  std::map<int, Rebuilt> by_id;
  for (const JournalRecord& rec : replay.records) {
    Rebuilt& r = by_id[rec.job_id];
    switch (rec.type) {
      case JournalRecordType::kSubmit:
        r.submit = rec;
        r.has_submit = true;
        break;
      case JournalRecordType::kStart:
        r.started = true;
        break;
      case JournalRecordType::kGate:
        r.stages = std::max(r.stages, rec.stages);
        break;
      case JournalRecordType::kDone:
      case JournalRecordType::kFail:
      case JournalRecordType::kCancel:
        r.terminal = true;
        r.last_terminal = rec;
        break;
    }
  }

  std::unique_lock<std::mutex> lk(mu_);
  PRS_REQUIRE(jobs_.empty(),
              "recover() must run before any submissions (empty server)");
  for (auto& [id, r] : by_id) {
    if (!r.has_submit) continue;  // progress for a job we never saw admitted
    auto job = std::make_unique<Job>();
    job->id = id;
    job->tenant = r.submit.tenant;
    job->dedup = r.submit.dedup;
    job->recovered = true;
    next_job_id_ = std::max(next_job_id_, id + 1);
    if (!r.submit.dedup.empty()) {
      dedup_[r.submit.tenant + "\n" + r.submit.dedup] = id;
    }
    std::string spec_error;
    try {
      job->spec = parse_job_spec_tokens(r.submit.spec_tokens);
    } catch (const prs::Error& e) {
      spec_error = e.what();  // version drift; surfaced below
    }

    if (r.terminal) {
      // Already finished before the crash: restore as queryable history.
      // No tenant accounting — this incarnation never ran the job.
      switch (r.last_terminal.type) {
        case JournalRecordType::kDone:
          job->state = JobState::kDone;
          job->outcome.digest = r.last_terminal.digest;
          job->outcome.lines = r.last_terminal.lines;
          break;
        case JournalRecordType::kFail:
          job->state = JobState::kFailed;
          job->error = r.last_terminal.error;
          break;
        default:
          job->state = JobState::kCancelled;
          job->error = r.last_terminal.error;
          break;
      }
      job->stages = r.stages;
      out.jobs_restored++;
      metrics_.counter("svc.jobs_restored").increment();
      jobs_.push_back(std::move(job));
      continue;
    }

    // Incomplete: re-admit deterministically with the original id. The job
    // was already admitted once, so quota bounds are not re-checked — only
    // hard impossibilities (unknown tenant, pool too small) fail it.
    auto it = tenants_.find(job->tenant);
    std::string fail;
    if (!spec_error.empty()) {
      fail = "journal spec no longer parses: " + spec_error;
    } else if (it == tenants_.end()) {
      fail = "tenant '" + job->tenant + "' not registered after restart";
    } else if (job->spec.vgpus_needed() > pool_.capacity()) {
      fail = "pool too small after restart: job needs " +
             std::to_string(job->spec.vgpus_needed()) + " vGPU(s), pool has " +
             std::to_string(pool_.capacity());
    }
    if (!fail.empty()) {
      job->state = JobState::kFailed;
      job->error = fail;
      out.jobs_failed++;
      metrics_.counter("svc.jobs_failed").increment();
      jobs_.push_back(std::move(job));
      continue;
    }
    // A started iterative job resumes from its latest snapshot instead of
    // iteration 0 (the ckpt layer guarantees resumed bytes == fault-free
    // bytes). A job that never started has no snapshot, but resume=true is
    // still safe: with an empty store the driver runs fresh.
    if (r.started && !job->spec.checkpoint_dir.empty() && !job->spec.resume) {
      job->spec.resume = true;
    }
    if (job->spec.resume) {
      ckpt::FileCheckpointStore store(job->spec.checkpoint_dir);
      if (ckpt::has_snapshot(store, job->spec.app)) {
        out.jobs_resumed++;
        metrics_.counter("svc.jobs_resumed_from_ckpt").increment();
      }
    }
    TenantAccount& t = it->second;
    t.jobs_submitted++;
    t.queued++;
    t.vgpus_in_use += job->spec.vgpus_needed();
    out.jobs_recovered++;
    metrics_.counter("svc.jobs_recovered").increment();
    jobs_.push_back(std::move(job));
  }
  cv_.notify_all();
  return out;
}

int JobServer::active_jobs_locked() const {
  int n = 0;
  for (const auto& job : jobs_) {
    if (!job_state_terminal(job->state)) ++n;
  }
  return n;
}

int JobServer::queued_jobs_locked() const {
  int n = 0;
  for (const auto& job : jobs_) {
    if (job->state == JobState::kQueued) ++n;
  }
  return n;
}

JobServer::Job* JobServer::find_locked(int job_id) {
  for (auto& job : jobs_) {
    if (job->id == job_id) return job.get();
  }
  return nullptr;
}

const JobServer::Job* JobServer::find_locked(int job_id) const {
  for (const auto& job : jobs_) {
    if (job->id == job_id) return job.get();
  }
  return nullptr;
}

void JobServer::start_ready_jobs(std::unique_lock<std::mutex>&) {
  // Admission order = submission order: walk jobs by ascending id and start
  // every queued job whose tenant has a running slot and whose vGPUs fit.
  // Fairness between tenants is enforced later, per stage, by the stride
  // scheduler — start order only affects when a job *may* compete.
  for (auto& jp : jobs_) {
    Job& job = *jp;
    if (job.state != JobState::kQueued) continue;
    TenantAccount& t = tenants_.at(job.tenant);
    if (t.running >= t.quota.max_running) continue;
    const int need = job.spec.vgpus_needed();
    if (need > 0 && !pool_.can_acquire(need)) continue;

    std::uint64_t quota = job.spec.gpu_mem_bytes;
    if (t.quota.gpu_mem_bytes > 0 &&
        (quota == 0 || quota > t.quota.gpu_mem_bytes)) {
      quota = t.quota.gpu_mem_bytes;
    }
    if (need > 0) job.lease = pool_.acquire(job.tenant, need, quota);

    // Stride join rule: a tenant entering the runnable set is clamped to
    // the minimum active pass so idle time cannot bank credit.
    if (t.running == 0) {
      std::vector<const TenantAccount*> active;
      for (const auto& [name, acct] : tenants_) {
        if (acct.running > 0) active.push_back(&acct);
      }
      if (!active.empty()) stride_clamp_pass(t, stride_min_pass(active));
    }
    t.queued--;
    t.running++;
    job.state = JobState::kStarting;
    journal_transition_locked(job, JournalRecordType::kStart);
    job.thread = std::thread(&JobServer::job_thread_main, this, &job);
  }
}

void JobServer::grant_next(std::unique_lock<std::mutex>&) {
  std::vector<StrideCandidate> candidates;
  std::vector<Job*> waiting;
  for (auto& jp : jobs_) {
    if (jp->state == JobState::kWaiting) {
      candidates.push_back({&tenants_.at(jp->tenant), jp->id});
      waiting.push_back(jp.get());
    }
  }
  const int pick = stride_pick(candidates);
  if (pick < 0) return;
  Job& job = *waiting[pick];
  if (job.stages == 0) {
    job.queue_wait = vnow_ - job.submit_vnow;
    auto& hist = metrics_.histogram(kQueueWaitHist,
                                    obs::geometric_buckets(1e-3, 4.0, 16));
    hist.observe(job.queue_wait);
  }
  job.stage_begin_vnow = vnow_;
  job.granted = true;
  job.state = JobState::kRunningStage;
  running_job_ = job.id;
  metrics_.counter("svc.stages_granted").increment();
  cv_.notify_all();
}

bool JobServer::pump_once(std::unique_lock<std::mutex>& lk) {
  start_ready_jobs(lk);
  if (running_job_ < 0) grant_next(lk);
  if (active_jobs_locked() == 0) return false;  // idle
  // Something is in flight (a granted stage, a starting thread, or a queued
  // job waiting for resources): sleep until state changes.
  cv_.wait(lk);
  return true;
}

void JobServer::run_until_idle() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    PRS_REQUIRE(!pump_running_, "pump already running (start() was called)");
    while (pump_once(lk)) {
    }
  }
  reap_finished();
}

void JobServer::start() {
  std::lock_guard<std::mutex> lk(mu_);
  PRS_REQUIRE(!pump_running_, "pump already running");
  pump_running_ = true;
  pump_stop_ = false;
  pump_thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lk(mu_);
    while (!pump_stop_) {
      start_ready_jobs(lk);
      if (running_job_ < 0) grant_next(lk);
      // Sleep until any state change (submit, gate arrival, completion,
      // stop). Notifies only happen with mu_ held, so none can be lost.
      cv_.wait(lk);
    }
  });
}

void JobServer::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!pump_running_) return;
    pump_stop_ = true;
    cv_.notify_all();
  }
  pump_thread_.join();
  {
    std::lock_guard<std::mutex> lk(mu_);
    pump_running_ = false;
  }
  reap_finished();
}

void JobServer::reap_finished() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& job : jobs_) {
      if (job_state_terminal(job->state) && job->thread.joinable()) {
        done.push_back(std::move(job->thread));
      }
    }
  }
  for (auto& t : done) t.join();
}

JobStatus JobServer::snapshot_locked(const Job& job) const {
  JobStatus s;
  s.id = job.id;
  s.tenant = job.tenant;
  s.spec = job.spec;
  s.state = job.state;
  s.error = job.error;
  s.digest = job.outcome.digest;
  s.lines = job.outcome.lines;
  s.stats = job.outcome.stats;
  s.stages = job.stages;
  s.queue_wait = job.queue_wait;
  s.service = job.service;
  s.submit_vnow = job.submit_vnow;
  s.finish_vnow = job.finish_vnow;
  s.recovered = job.recovered;
  return s;
}

JobStatus JobServer::status(int job_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Job* job = find_locked(job_id);
  PRS_REQUIRE(job != nullptr,
              "unknown job id " + std::to_string(job_id));
  return snapshot_locked(*job);
}

JobStatus JobServer::wait(int job_id) {
  JobStatus out;
  {
    std::unique_lock<std::mutex> lk(mu_);
    Job* job = find_locked(job_id);
    PRS_REQUIRE(job != nullptr,
                "unknown job id " + std::to_string(job_id));
    cv_.wait(lk, [&] { return job_state_terminal(job->state); });
    out = snapshot_locked(*job);
  }
  reap_finished();
  return out;
}

bool JobServer::wait_for_stages(int job_id, int stages) {
  std::unique_lock<std::mutex> lk(mu_);
  Job* job = find_locked(job_id);
  PRS_REQUIRE(job != nullptr, "unknown job id " + std::to_string(job_id));
  cv_.wait(lk, [&] {
    return job->stages >= stages || job_state_terminal(job->state);
  });
  return job->stages >= stages;
}

bool JobServer::cancel(int job_id) {
  std::lock_guard<std::mutex> lk(mu_);
  Job* job = find_locked(job_id);
  PRS_REQUIRE(job != nullptr, "unknown job id " + std::to_string(job_id));
  if (job_state_terminal(job->state)) return false;
  if (job->state == JobState::kQueued) {
    // Never started: no thread, no lease — cancel in place.
    finish_job_locked(*job, JobState::kCancelled, "cancelled while queued");
    cv_.notify_all();
    return true;
  }
  job->cancel_requested = true;
  cv_.notify_all();
  return true;
}

void JobServer::drain() {
  std::lock_guard<std::mutex> lk(mu_);
  draining_ = true;
}

bool JobServer::draining() const {
  std::lock_guard<std::mutex> lk(mu_);
  return draining_;
}

bool JobServer::idle() const {
  std::lock_guard<std::mutex> lk(mu_);
  return active_jobs_locked() == 0;
}

double JobServer::vnow() const {
  std::lock_guard<std::mutex> lk(mu_);
  return vnow_;
}

std::vector<std::string> JobServer::tenants() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  for (const auto& [name, t] : tenants_) out.push_back(name);
  return out;
}

double JobServer::tenant_service(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = tenants_.find(name);
  PRS_REQUIRE(it != tenants_.end(), "unknown tenant '" + name + "'");
  return it->second.service;
}

TenantAccount JobServer::tenant_account(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = tenants_.find(name);
  PRS_REQUIRE(it != tenants_.end(), "unknown tenant '" + name + "'");
  return it->second;
}

std::vector<JobStatus> JobServer::jobs() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& job : jobs_) out.push_back(snapshot_locked(*job));
  return out;
}

std::string JobServer::metrics_json() const {
  std::ostringstream out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    obs::write_metrics_json(metrics_, out);
  }
  return out.str();
}

void JobServer::export_trace(const std::string& path) const {
  std::lock_guard<std::mutex> lk(mu_);
  obs::export_chrome_trace(trace_, path);
}

void JobServer::journal_transition_locked(const Job& job,
                                          JournalRecordType type) {
  if (cfg_.journal == nullptr) return;
  JournalRecord rec;
  rec.type = type;
  rec.job_id = job.id;
  switch (type) {
    case JournalRecordType::kGate:
      rec.stages = job.stages;
      break;
    case JournalRecordType::kDone:
      rec.digest = job.outcome.digest;
      rec.lines = job.outcome.lines;
      break;
    case JournalRecordType::kFail:
    case JournalRecordType::kCancel:
      rec.error = job.error;
      break;
    default:
      break;
  }
  // START and GATE are advisory (they refine recovery, not correctness):
  // async, fire-and-forget. Terminal records are what a restarted server
  // trusts to skip re-running a job, so they wait for the fsync; if the
  // queue is saturated the record is shed and the job simply re-runs after
  // a crash — deterministic, so still correct.
  bool appended = false;
  if (type == JournalRecordType::kStart || type == JournalRecordType::kGate) {
    appended = cfg_.journal->append_async(rec);
  } else {
    appended = cfg_.journal->append_durable(rec);
  }
  if (!appended) metrics_.counter("svc.journal_shed").increment();
}

void JobServer::finish_job_locked(Job& job, JobState final_state,
                                  const std::string& error) {
  TenantAccount& t = tenants_.at(job.tenant);
  if (job.state == JobState::kQueued) {
    t.queued--;
  } else {
    t.running--;
  }
  t.vgpus_in_use -= job.spec.vgpus_needed();
  job.state = final_state;
  job.error = error;
  job.finish_vnow = vnow_;
  if (job.lease.valid()) job.lease.release();
  switch (final_state) {
    case JobState::kDone:
      t.jobs_completed++;
      t.stats.accumulate(job.outcome.stats);
      metrics_.counter("svc.jobs_completed").increment();
      break;
    case JobState::kFailed:
      t.jobs_failed++;
      metrics_.counter("svc.jobs_failed").increment();
      break;
    case JobState::kCancelled:
      t.jobs_cancelled++;
      metrics_.counter("svc.jobs_cancelled").increment();
      break;
    default:
      break;
  }
  // Shutdown cancellations are deliberately NOT journaled: a job cut down
  // by the daemon stopping is exactly what recovery must re-admit.
  if (shutting_down_) return;
  switch (final_state) {
    case JobState::kDone:
      journal_transition_locked(job, JournalRecordType::kDone);
      break;
    case JobState::kFailed:
      journal_transition_locked(job, JournalRecordType::kFail);
      break;
    case JobState::kCancelled:
      journal_transition_locked(job, JournalRecordType::kCancel);
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------
// Job-thread side.

void JobServer::settle_stage_locked(Job& job, double sim_now,
                                    double gpu_busy) {
  const double elapsed = sim_now - job.last_sim_time;
  const double busy = gpu_busy - job.last_gpu_busy;
  job.last_sim_time = sim_now;
  job.last_gpu_busy = gpu_busy;
  PRS_CHECK(elapsed >= 0.0, "virtual time ran backwards across a stage");
  // Service = virtual time x width of the reservation, so a 4-vGPU tenant
  // is charged 4x what a 1-vGPU tenant is charged for the same wall of
  // virtual time (device-seconds, the fair-share currency).
  const int width = std::max(1, job.lease.size());
  const double service = elapsed * width;
  TenantAccount& t = tenants_.at(job.tenant);
  stride_charge(t, service);
  job.service += service;
  vnow_ += elapsed;
  job.stages++;
  if (job.lease.valid() && busy > 0.0) pool_.charge_busy(job.lease, busy);
  metrics_.counter("svc.service_vsec").add(service);
  if (cfg_.journal != nullptr && cfg_.journal_gate_every > 0 &&
      job.stages % cfg_.journal_gate_every == 0) {
    journal_transition_locked(job, JournalRecordType::kGate);
  }
  if (trace_.enabled()) {
    obs::TrackId track = trace_.track("svc:" + job.tenant,
                                      job.spec.app + "#" +
                                          std::to_string(job.id));
    trace_.complete(track, "stage " + std::to_string(job.stages), "svc",
                    job.stage_begin_vnow, vnow_);
  }
}

void JobServer::gate_wait(Job* job, double sim_now, double gpu_busy,
                          std::uint64_t open_streams,
                          std::uint64_t memory_in_use) {
  std::unique_lock<std::mutex> lk(mu_);
  if (job->state == JobState::kRunningStage) {
    settle_stage_locked(*job, sim_now, gpu_busy);
    if (job->lease.valid()) {
      pool_.report_usage(job->lease, open_streams, memory_in_use);
    }
  }
  job->state = JobState::kWaiting;
  if (running_job_ == job->id) running_job_ = -1;
  cv_.notify_all();
  cv_.wait(lk, [&] { return job->granted || job->cancel_requested; });
  job->granted = false;
  if (job->cancel_requested) {
    // Unpark without holding the slice: the catch handler in
    // job_thread_main finishes the bookkeeping.
    if (running_job_ == job->id) running_job_ = -1;
    throw JobCancelled{};
  }
}

void JobServer::run_one_job(Job* job) {
  const JobSpec spec = job->spec;  // private copy; stable w/o the lock

  // First gate before ANY setup: dataset generation and cluster
  // construction are real host work, so they too happen inside a granted
  // slice — the shared exec::ThreadPool never sees two jobs at once.
  gate_wait(job, 0.0, 0.0, 0, 0);

  sim::Simulator sim;
  core::NodeConfig node = spec.node_config();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (job->lease.valid()) node.gpu = pool_.vgpu_spec(job->lease);
  }
  core::Cluster cluster(sim, spec.nodes, node);
  core::JobConfig cfg = spec.job_config();
  auto policy = core::make_policy(spec.policy);
  cfg.policy = policy.get();

  std::unique_ptr<fault::FaultInjector> injector;
  if (!spec.fault_spec.empty()) {
    injector = std::make_unique<fault::FaultInjector>(
        sim, fault::FaultPlan::parse(spec.fault_spec), spec.fault_seed);
    cfg.faults = injector.get();
  }

  std::unique_ptr<ckpt::FileCheckpointStore> store;
  ckpt::CheckpointConfig ckpt_cfg;
  const ckpt::CheckpointConfig* checkpoint = nullptr;
  if (!spec.checkpoint_dir.empty()) {
    store = std::make_unique<ckpt::FileCheckpointStore>(spec.checkpoint_dir);
    ckpt_cfg.store = store.get();
    ckpt_cfg.interval = spec.checkpoint_every > 0 ? spec.checkpoint_every : 1;
    ckpt_cfg.recover = spec.resume;
    ckpt_cfg.on_crash = ckpt::OnCrash::kHalt;
    ckpt_cfg.prefix = spec.app;
    ckpt_cfg.run_seed = spec.seed;
    ckpt_cfg.fault_seed = spec.fault_seed;
    checkpoint = &ckpt_cfg;
  }

  cfg.stage_gate = [this, job, &sim, &cluster](int) {
    std::uint64_t streams = 0;
    std::uint64_t memory = 0;
    for (int r = 0; r < cluster.size(); ++r) {
      core::FatNode& n = cluster.node(r);
      for (int g = 0; g < n.gpu_count(); ++g) {
        streams += static_cast<std::uint64_t>(n.gpu(g).stream_count());
        memory += n.gpu(g).memory_used();
      }
      memory += static_cast<std::uint64_t>(n.region().bytes_allocated());
    }
    gate_wait(job, sim.now(), cluster.total_gpu_busy(), streams, memory);
  };

  Rng rng(spec.seed);
  LaunchOutcome outcome =
      run_job_spec(spec, cluster, node, cfg, rng, checkpoint);

  // Final (unparked) settle: charge the tail stage from the last gate to
  // completion, then publish the outcome.
  std::lock_guard<std::mutex> lk(mu_);
  settle_stage_locked(*job, sim.now(), cluster.total_gpu_busy());
  if (running_job_ == job->id) running_job_ = -1;
  job->outcome = std::move(outcome);
  finish_job_locked(*job, JobState::kDone, "");
  cv_.notify_all();
}

void JobServer::job_thread_main(Job* job) {
  try {
    run_one_job(job);
  } catch (const JobCancelled&) {
    std::lock_guard<std::mutex> lk(mu_);
    if (running_job_ == job->id) running_job_ = -1;
    finish_job_locked(*job, JobState::kCancelled, "cancelled at gate");
    cv_.notify_all();
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lk(mu_);
    if (running_job_ == job->id) running_job_ = -1;
    finish_job_locked(*job, JobState::kFailed, e.what());
    cv_.notify_all();
  }
}

}  // namespace prs::svc
