// The multi-tenant job server: a long-lived service that admits jobs from
// many tenants and schedules them over the shared host thread pool and the
// virtual-GPU pool.
//
// Execution model — time-sliced vGPU gang scheduling. Every job runs its
// own private simulation (Simulator + Cluster) on its own host thread, but
// the server grants exactly ONE job permission to execute at any moment:
// job threads park at a cooperative gate (JobConfig::stage_gate, invoked by
// run_iterative at every iteration boundary) and the scheduler picks who
// advances next by weighted fair share (stride scheduling over tenants, see
// fair_share.hpp). This is the same sharing discipline as NVIDIA's
// time-sliced vGPU profiles: tenants multiplex the physical cards in time,
// each seeing a private device. Serializing stages is what buys the two
// load-bearing properties:
//   * determinism — the grant sequence is a pure function of the submission
//     history (ties in the stride scheduler break by tenant name, job id),
//     so every run of the same submissions schedules identically; and
//   * digest equality — each job's numeric work happens inside its private
//     cluster through the same svc::run_job_spec path prs_run uses, with no
//     cross-job interleaving inside the shared exec::ThreadPool, so a job
//     submitted to the server produces byte-identical results to the same
//     job run single-shot.
//
// "Concurrency" here means what it means for time-sliced vGPUs: many jobs
// are admitted, hold vGPU leases and interleave at iteration granularity;
// their stages never overlap.
//
// Virtual service clock: vnow() advances by each stage's virtual elapsed
// time. Queue wait (admission to first grant) is measured on this clock and
// recorded in the svc.queue_wait histogram; per-tenant virtual device-time
// service backs the fair-share accounting and the 2:1-within-5% acceptance
// test.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simdev/virtual_gpu.hpp"
#include "simtime/simulator.hpp"
#include "svc/admission.hpp"
#include "svc/job_spec.hpp"
#include "svc/journal.hpp"
#include "svc/launcher.hpp"
#include "svc/tenant.hpp"

namespace prs::svc {

/// Thrown inside a job thread when its job is cancelled at a scheduling
/// gate. Deliberately NOT derived from prs::Error so no library-internal
/// recovery path (fault tolerance, checkpointing) can swallow it.
struct JobCancelled {};

enum class JobState {
  kQueued,        // admitted, waiting for resources (vGPU lease / slot)
  kStarting,      // thread spawned, not yet parked at its first gate
  kWaiting,       // parked at a scheduling gate
  kRunningStage,  // granted; executing one stage of virtual time
  kDone,
  kFailed,
  kCancelled,
};

const char* job_state_name(JobState s);
bool job_state_terminal(JobState s);

/// Copyable snapshot of one job, as returned by status()/wait().
struct JobStatus {
  int id = -1;
  std::string tenant;
  JobSpec spec;
  JobState state = JobState::kQueued;
  std::string error;   // failure reason / cancel note
  std::string digest;  // result digest (terminal kDone only)
  std::vector<std::string> lines;  // result lines in prs_run format
  core::JobStats stats;
  int stages = 0;           // scheduling gates passed
  double queue_wait = 0.0;  // vnow at first grant - vnow at submit
  double service = 0.0;     // virtual device-seconds charged
  double submit_vnow = 0.0;
  double finish_vnow = 0.0;
  bool recovered = false;  // re-admitted (or restored) from the journal
};

class JobServer {
 public:
  struct Config {
    simdev::VGpuPoolConfig pool;
    AdmissionConfig admission;
    /// Record per-stage spans (tenant-per-track) for chrome://tracing.
    bool record_trace = false;
    /// Write-ahead journal (owned by the caller, may be null). When set,
    /// SUBMIT and terminal transitions are durably journaled before they
    /// are acknowledged, and recover() can rebuild the queue after a
    /// crash.
    Journal* journal = nullptr;
    /// Journal a GATE progress record every N scheduling gates (async,
    /// advisory — governs how much recovery knows about progress).
    int journal_gate_every = 4;
    /// Delay advised to clients when a transient rejection (queue_full /
    /// quota_queued / journal_busy) sheds their submit.
    int shed_retry_ms = 100;
  };

  explicit JobServer(Config cfg);
  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;
  /// Stops the pump, cancels any live jobs and joins their threads.
  ~JobServer();

  /// Registers a tenant before it may submit. Re-adding an existing tenant
  /// updates its quota only.
  void add_tenant(const std::string& name, TenantQuota quota);

  struct SubmitResult {
    int job_id = -1;  // -1 on rejection
    AdmitDecision decision;
    bool deduped = false;     // an existing job with the same dedup key
    int retry_after_ms = 0;   // > 0: transient rejection, retry after this
    bool ok() const { return decision.ok(); }
  };

  /// Synchronous admission: quota/backpressure rejections are decided (and
  /// counted) here, deterministically; accepted jobs enter the queue.
  /// A non-empty `dedup` key makes the submit idempotent per tenant: a
  /// repeat with the same key returns the existing job's id (whatever its
  /// state) without admission or quota effects.
  SubmitResult submit(const std::string& tenant, JobSpec spec,
                      const std::string& dedup = "");

  struct RecoveryStats {
    int journal_records = 0;     // records replayed
    bool torn_tail = false;      // journal ended mid-record (crash artifact)
    int jobs_restored = 0;       // already-terminal jobs restored as history
    int jobs_recovered = 0;      // incomplete jobs re-admitted to the queue
    int jobs_resumed = 0;        // of those, will resume from a checkpoint
    int jobs_failed = 0;         // could not be re-admitted (tenant/pool)
  };

  /// Replays cfg.journal and rebuilds state from it: terminal jobs become
  /// queryable history (digest/result lines restored), incomplete jobs are
  /// re-admitted in their original admission order (ascending id) with
  /// their original ids, and started iterative jobs with a checkpoint_dir
  /// are flipped to resume from their latest snapshot instead of iteration
  /// 0. Call after add_tenant() and before start()/run_until_idle(); a
  /// null or empty journal is a no-op.
  RecoveryStats recover();

  // -- scheduling pump -------------------------------------------------
  /// Runs the scheduler on the calling thread until every submitted job is
  /// terminal (the test-friendly mode).
  void run_until_idle();
  /// Runs the scheduler on a background thread until stop() (the daemon
  /// mode used by prs_serve).
  void start();
  void stop();

  // -- job control -----------------------------------------------------
  /// Snapshot of one job; throws prs::InvalidArgument on an unknown id.
  JobStatus status(int job_id) const;
  /// Blocks until the job is terminal (needs a running pump).
  JobStatus wait(int job_id);
  /// Blocks until the job has passed `stages` gates or is terminal; returns
  /// false in the terminal case. Used to cancel mid-iteration in tests.
  bool wait_for_stages(int job_id, int stages);
  /// Requests cancellation: queued jobs cancel immediately, running jobs at
  /// their next scheduling gate. Returns false when already terminal.
  bool cancel(int job_id);
  /// Stops admitting new jobs; already-admitted jobs run to completion.
  void drain();
  bool draining() const;

  // -- introspection ---------------------------------------------------
  bool idle() const;
  double vnow() const;
  std::vector<std::string> tenants() const;
  /// Cumulative virtual device-time service charged to one tenant.
  double tenant_service(const std::string& name) const;
  TenantAccount tenant_account(const std::string& name) const;
  std::vector<JobStatus> jobs() const;
  const simdev::VirtualGpuPool& pool() const { return pool_; }
  /// svc.* counters and the queue-wait histogram as a JSON object.
  std::string metrics_json() const;
  /// Exports the per-stage span trace (only populated with record_trace).
  void export_trace(const std::string& path) const;

 private:
  struct Job {
    int id = 0;
    std::string tenant;
    JobSpec spec;
    JobState state = JobState::kQueued;
    std::string error;
    LaunchOutcome outcome;
    std::string dedup;       // client idempotency key ("" = none)
    bool recovered = false;  // rebuilt from the journal after a restart
    int stages = 0;
    double queue_wait = 0.0;
    double service = 0.0;
    double submit_vnow = 0.0;
    double stage_begin_vnow = 0.0;
    double finish_vnow = 0.0;
    bool granted = false;           // gate handshake flag
    bool cancel_requested = false;
    // Baselines for per-stage deltas, read by the job thread only.
    double last_sim_time = 0.0;
    double last_gpu_busy = 0.0;
    simdev::VGpuLease lease;
    std::thread thread;
  };

  // Pump internals (mu_ held).
  void start_ready_jobs(std::unique_lock<std::mutex>& lk);
  bool pump_once(std::unique_lock<std::mutex>& lk);
  void grant_next(std::unique_lock<std::mutex>& lk);
  int active_jobs_locked() const;   // non-terminal
  int queued_jobs_locked() const;
  JobStatus snapshot_locked(const Job& job) const;
  Job* find_locked(int job_id);
  const Job* find_locked(int job_id) const;
  void finish_job_locked(Job& job, JobState final_state,
                         const std::string& error);
  void reap_finished();
  /// Journals a terminal/progress transition (no-op without a journal).
  void journal_transition_locked(const Job& job, JournalRecordType type);

  // Job-thread side.
  void job_thread_main(Job* job);
  void run_one_job(Job* job);
  /// Parks at the gate, charging the stage that just ended. `sim_now` /
  /// `gpu_busy` / usage come from the job's private cluster (ready gate
  /// passes zeros). Throws JobCancelled when cancellation was requested.
  void gate_wait(Job* job, double sim_now, double gpu_busy,
                 std::uint64_t open_streams, std::uint64_t memory_in_use);
  void settle_stage_locked(Job& job, double sim_now, double gpu_busy);

  Config cfg_;
  AdmissionController admission_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  simdev::VirtualGpuPool pool_;
  std::map<std::string, TenantAccount> tenants_;
  std::vector<std::unique_ptr<Job>> jobs_;
  std::map<std::string, int> dedup_;  // tenant + '\n' + key -> job id
  int next_job_id_ = 1;
  int running_job_ = -1;  // id of the job currently granted a stage
  double vnow_ = 0.0;
  bool draining_ = false;
  bool shutting_down_ = false;

  std::thread pump_thread_;
  bool pump_running_ = false;
  bool pump_stop_ = false;

  obs::MetricsRegistry metrics_;
  // Trace spans are recorded on the service clock against a never-run
  // simulator (TraceRecorder needs one for its instant/counter helpers).
  sim::Simulator trace_sim_;
  obs::TraceRecorder trace_;
};

}  // namespace prs::svc
