// The job server's line protocol, shared by the socket front-end, the
// prs_run client mode and the protocol tests.
//
// Requests are single lines: a VERB followed by space-separated operands
// (key=value tokens for SUBMIT, a job id for STATUS/WAIT/CANCEL):
//
//   PING
//   SUBMIT tenant=alice app=cmeans points=20000 iterations=8 ...
//          [dedup=KEY]       (idempotency key: a retried SUBMIT with the
//                             same tenant+key returns the existing job id)
//   STATUS <job-id>
//   WAIT <job-id>            (blocks until the job is terminal)
//   CANCEL <job-id>
//   STATS                    (svc.* metrics as JSON)
//   DRAIN                    (stop admitting; running jobs finish)
//   SHUTDOWN
//
// Responses are a single header line — "OK ..." or
// "ERR code=<code> <message>" — optionally followed by exactly
// `lines=<n>` continuation lines (job result lines, metrics JSON), so a
// client always knows how much to read:
//
//   OK id=3
//   OK id=3 state=DONE stages=9 queue_wait=0.25 service=1.5
//      digest=00aabb... lines=2          (one line on the wire)
//   <result line 1>
//   <result line 2>
//   ERR code=quota_vgpus tenant 'bob' vGPU quota exceeded: ...
//   RETRY-AFTER 100 code=queue_full server queue is full (...)
//
// RETRY-AFTER is the overload (graceful-degradation) response: the server
// is up but shedding — the client should back off for the advised
// milliseconds and retry rather than treat it as a hard error.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "svc/server.hpp"

namespace prs::svc {

struct Request {
  std::string verb;                // upper-cased
  std::vector<std::string> args;   // remaining whitespace-split tokens
};

/// Splits one request line. Throws prs::InvalidArgument on an empty line.
Request parse_request(const std::string& line);

/// Parses key=value tokens (SUBMIT operands). Throws prs::InvalidArgument
/// on a token without '='.
std::map<std::string, std::string> parse_kv_tokens(
    const std::vector<std::string>& tokens);

/// Reads an integer attribute out of a response header ("lines=3"),
/// returning `fallback` when absent.
long header_field(const std::string& header, const std::string& key,
                  long fallback);

/// Full response (header + continuation lines, each '\n'-terminated) for a
/// job status snapshot; shared by the STATUS and WAIT verbs.
std::string format_status_response(const JobStatus& status);

std::string format_error(const std::string& code, const std::string& message);

/// Graceful-degradation response for transient overload (full queues, a
/// saturated journal): "RETRY-AFTER <ms> code=<code> <message>". Clients
/// back off for the advised delay and retry instead of failing.
std::string format_retry_after(int ms, const std::string& code,
                               const std::string& message);

/// Executes one request line against the server and returns the full
/// response text. Sets `*shutdown` when the verb was SHUTDOWN. Blocking
/// verbs (WAIT) block the calling thread, which is why the socket server
/// gives every connection its own thread.
std::string handle_request(JobServer& server, const std::string& line,
                           bool* shutdown);

}  // namespace prs::svc
