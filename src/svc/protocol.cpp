#include "svc/protocol.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace prs::svc {
namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

int parse_job_id(const Request& req) {
  PRS_REQUIRE(req.args.size() == 1,
              req.verb + " takes exactly one operand (the job id)");
  int id = 0;
  const std::string& s = req.args[0];
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), id);
  PRS_REQUIRE(ec == std::errc() && p == s.data() + s.size(),
              "malformed job id '" + s + "'");
  return id;
}

}  // namespace

Request parse_request(const std::string& line) {
  auto tokens = split_ws(line);
  PRS_REQUIRE(!tokens.empty(), "empty request line");
  Request req;
  req.verb = tokens[0];
  for (char& c : req.verb) c = static_cast<char>(std::toupper(c));
  req.args.assign(tokens.begin() + 1, tokens.end());
  return req;
}

std::map<std::string, std::string> parse_kv_tokens(
    const std::vector<std::string>& tokens) {
  std::map<std::string, std::string> out;
  for (const std::string& tok : tokens) {
    auto eq = tok.find('=');
    PRS_REQUIRE(eq != std::string::npos && eq > 0,
                "malformed token '" + tok + "' (expected key=value)");
    out[tok.substr(0, eq)] = tok.substr(eq + 1);
  }
  return out;
}

long header_field(const std::string& header, const std::string& key,
                  long fallback) {
  const std::string needle = " " + key + "=";
  auto pos = header.find(needle);
  if (pos == std::string::npos) return fallback;
  pos += needle.size();
  long value = fallback;
  auto end = header.find_first_of(" \n", pos);
  if (end == std::string::npos) end = header.size();
  std::from_chars(header.data() + pos, header.data() + end, value);
  return value;
}

std::string format_status_response(const JobStatus& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "OK id=%d state=%s tenant=%s app=%s stages=%d "
                "queue_wait=%.9g service=%.9g digest=%s lines=%zu",
                s.id, job_state_name(s.state), s.tenant.c_str(),
                s.spec.app.c_str(), s.stages, s.queue_wait, s.service,
                s.digest.empty() ? "-" : s.digest.c_str(), s.lines.size());
  std::string out = buf;
  if (!s.error.empty()) out += " error=" + s.error;  // last: may have spaces
  out += '\n';
  for (const std::string& line : s.lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string format_error(const std::string& code,
                         const std::string& message) {
  return "ERR code=" + code + " " + message + "\n";
}

std::string format_retry_after(int ms, const std::string& code,
                               const std::string& message) {
  return "RETRY-AFTER " + std::to_string(ms) + " code=" + code + " " +
         message + "\n";
}

std::string handle_request(JobServer& server, const std::string& line,
                           bool* shutdown) {
  try {
    Request req = parse_request(line);
    if (req.verb == "PING") {
      return "OK pong\n";
    }
    if (req.verb == "SUBMIT") {
      auto kv = parse_kv_tokens(req.args);
      auto tenant_it = kv.find("tenant");
      PRS_REQUIRE(tenant_it != kv.end(), "SUBMIT requires tenant=<name>");
      const std::string tenant = tenant_it->second;
      kv.erase(tenant_it);
      // dedup= is transport-level (idempotency key), not part of the spec.
      std::string dedup;
      auto dedup_it = kv.find("dedup");
      if (dedup_it != kv.end()) {
        dedup = dedup_it->second;
        kv.erase(dedup_it);
      }
      JobSpec spec = parse_job_spec(kv);
      auto res = server.submit(tenant, std::move(spec), dedup);
      if (res.deduped) {
        return "OK id=" + std::to_string(res.job_id) + " deduped=1\n";
      }
      if (!res.ok()) {
        if (res.retry_after_ms > 0) {
          return format_retry_after(res.retry_after_ms,
                                    admit_code_name(res.decision.code),
                                    res.decision.message);
        }
        return format_error(admit_code_name(res.decision.code),
                            res.decision.message);
      }
      return "OK id=" + std::to_string(res.job_id) + "\n";
    }
    if (req.verb == "STATUS") {
      return format_status_response(server.status(parse_job_id(req)));
    }
    if (req.verb == "WAIT") {
      return format_status_response(server.wait(parse_job_id(req)));
    }
    if (req.verb == "CANCEL") {
      const bool did = server.cancel(parse_job_id(req));
      return std::string("OK cancelled=") + (did ? "1" : "0") + "\n";
    }
    if (req.verb == "STATS") {
      std::string json = server.metrics_json();
      if (!json.empty() && json.back() == '\n') json.pop_back();
      long lines = 1;
      for (char c : json) {
        if (c == '\n') ++lines;
      }
      return "OK lines=" + std::to_string(lines) + "\n" + json + "\n";
    }
    if (req.verb == "DRAIN") {
      server.drain();
      return "OK draining\n";
    }
    if (req.verb == "SHUTDOWN") {
      if (shutdown != nullptr) *shutdown = true;
      return "OK shutting-down\n";
    }
    return format_error("bad_request", "unknown verb '" + req.verb + "'");
  } catch (const prs::Error& e) {
    return format_error("bad_request", e.what());
  }
}

}  // namespace prs::svc
