// Per-tenant quotas and runtime accounting for the multi-tenant job server.
#pragma once

#include <cstdint>
#include <string>

#include "core/job.hpp"

namespace prs::svc {

/// Static limits configured per tenant (prs_serve --tenants=…).
struct TenantQuota {
  /// Fair-share weight: a weight-2 tenant receives twice the virtual-time
  /// service of a weight-1 tenant while both have runnable work.
  double weight = 1.0;
  /// Max vGPU slots the tenant may hold across its running jobs.
  int max_vgpus = 8;
  /// Max jobs running (admitted onto resources) at once.
  int max_running = 4;
  /// Max jobs waiting in the tenant's queue (backpressure bound).
  int max_queued = 8;
  /// Per-vGPU device-memory quota (bytes; 0 = full physical card). Jobs may
  /// request less via JobSpec::gpu_mem_bytes, never more.
  std::uint64_t gpu_mem_bytes = 0;
};

/// Mutable per-tenant state maintained by the server.
struct TenantAccount {
  std::string name;
  TenantQuota quota;

  // Stride-scheduler state: pass advances by service/weight each time one
  // of the tenant's jobs finishes a time slice.
  double pass = 0.0;
  /// Cumulative virtual device-time service (seconds x vGPUs).
  double service = 0.0;

  int vgpus_in_use = 0;
  int running = 0;
  int queued = 0;

  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t jobs_rejected = 0;

  /// Aggregate statistics over the tenant's completed jobs.
  core::JobStats stats;
};

}  // namespace prs::svc
