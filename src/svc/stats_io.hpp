// The one JobStats serializer: the human text block prs_run prints after a
// run and the flat JSON object the job server returns from STATUS — both
// generated from core::visit_stats_fields so a field added to JobStats
// shows up in every surface automatically (and the duplicated formatting
// that used to live in prs_run.cpp has a single home).
#pragma once

#include <string>

#include "core/job.hpp"
#include "exec/thread_pool.hpp"

namespace prs::svc {

/// The "-- runtime statistics --" block (virtual time, throughput, CPU/GPU
/// split, task counts, traffic, phase breakdown, host pool). Byte-identical
/// to the block prs_run historically printed. `pool` adds the host-pool
/// line when it has executed at least one region; pass nullptr to omit.
std::string job_stats_text(const core::JobStats& stats, int nodes,
                           const exec::PoolStats* pool);

/// Every numeric JobStats field as one flat JSON object, in
/// visit_stats_fields order: {"elapsed":1.25e-01,...}. Deterministic
/// (field order fixed, %.17g floats) so server status digests are stable.
std::string job_stats_json(const core::JobStats& stats);

}  // namespace prs::svc
