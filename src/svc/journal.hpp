// Write-ahead journal for the job server: every job lifecycle transition
// (SUBMIT/START/GATE-PROGRESS/DONE/FAIL/CANCEL) is appended as a framed,
// checksummed record before the server acknowledges it, so a restarted
// prs_serve can rebuild its queue from disk and re-admit incomplete jobs
// in the original admission order.
//
// Record framing reuses the ckpt codec (little-endian, explicit bytes):
//
//   u32 magic "PRSJ" | u32 version | u64 payload_len | u64 fnv1a64(payload)
//   | payload
//
// where the payload starts with a u8 record type followed by type-specific
// fields (see encode_journal_record). Replay is torn-tail tolerant: a
// crash mid-append leaves a truncated or corrupt final record, which stops
// the replay cleanly at the last durable record instead of failing it —
// exactly the semantics a write-ahead log needs.
//
// Durability model: appends go through a bounded in-process flush queue
// drained by one background thread that writes and fsyncs in batches
// (group commit). `append_durable` (SUBMIT and terminal records) blocks
// until its record is on disk; `append_async` (GATE progress, advisory)
// returns immediately. When the queue is saturated both shed — the server
// maps that to a RETRY-AFTER response instead of wedging clients.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace prs::svc {

enum class JournalRecordType : std::uint8_t {
  kSubmit = 1,  // job admitted: id, tenant, dedup key, spec tokens
  kStart = 2,   // job left the queue (thread spawned, lease held)
  kGate = 3,    // progress: scheduling gates passed so far
  kDone = 4,    // terminal: result digest + result lines
  kFail = 5,    // terminal: error text
  kCancel = 6,  // terminal: cancel note
};

const char* journal_record_name(JournalRecordType t);
/// Parses a lower-case record name ("submit", "start", "gate", "done",
/// "fail", "cancel"); returns false on an unknown name. Used by the
/// --crash-after-journal test hook.
bool parse_journal_record_name(const std::string& name, JournalRecordType* out);

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kSubmit;
  int job_id = -1;
  // kSubmit only.
  std::string tenant;
  std::string dedup;        // client idempotency key ("" = none)
  std::string spec_tokens;  // JobSpec::to_tokens() wire form
  // kGate only.
  int stages = 0;
  // kDone only.
  std::string digest;
  std::vector<std::string> lines;
  // kFail / kCancel only.
  std::string error;
};

/// One framed record (header + payload), ready to append to the log.
std::string encode_journal_record(const JournalRecord& rec);

struct JournalReplay {
  std::vector<JournalRecord> records;
  std::size_t bytes_consumed = 0;  // offset of the first torn/corrupt byte
  bool torn_tail = false;  // file ended mid-record or with a bad checksum
};

/// Decodes every complete, checksum-valid record from the head of `bytes`,
/// stopping cleanly at a truncated or corrupt tail.
JournalReplay decode_journal(const std::string& bytes);

/// Reads and decodes a journal file. A missing file is an empty journal.
JournalReplay read_journal(const std::string& path);

class Journal {
 public:
  struct Config {
    std::string path;      // journal file; parent directory must exist
    int max_pending = 256; // flush-queue bound; beyond it appends shed
  };

  /// Opens (creating if absent) the journal file for appending. Existing
  /// records are preserved — call replay() before appending to recover.
  explicit Journal(Config cfg);
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  /// Flushes everything still queued, then closes the file.
  ~Journal();

  const std::string& path() const { return cfg_.path; }

  /// Decodes the records currently on disk (the ones written by previous
  /// incarnations plus anything already flushed by this one).
  JournalReplay replay() const;

  /// Queues `rec` and blocks until it is fsynced to disk. Returns false
  /// without queueing when the flush queue is saturated (shed — the caller
  /// answers RETRY-AFTER).
  bool append_durable(const JournalRecord& rec);

  /// Queues `rec` without waiting for the fsync. Returns false when the
  /// queue is saturated (the record is dropped; GATE progress is advisory,
  /// so a dropped record only costs replay precision, not correctness).
  bool append_async(const JournalRecord& rec);

  /// Blocks until the queue is empty and fsynced.
  void flush();

  std::uint64_t records_appended() const;
  std::uint64_t records_shed() const;

  /// Test hook: fired from the flusher thread right after a record of the
  /// matching type reaches disk, with the 1-based count of records of that
  /// type appended by THIS incarnation. prs_serve wires
  /// --crash-after-journal to _Exit here to build the crash matrix.
  void set_post_sync_hook(
      std::function<void(JournalRecordType, std::uint64_t)> hook);

  /// Test hook: freezes the flusher so tests can saturate the queue
  /// deterministically and observe shedding.
  void pause_flush(bool paused);

 private:
  struct Pending {
    std::string bytes;
    JournalRecordType type;
    std::uint64_t seq = 0;
  };

  void flusher_main();

  Config cfg_;
  int fd_ = -1;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // producers <-> flusher
  std::condition_variable flushed_cv_;  // durable waiters
  std::deque<Pending> queue_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t flushed_seq_ = 0;  // all seqs <= this are on disk
  std::uint64_t appended_ = 0;
  std::uint64_t shed_ = 0;
  bool paused_ = false;
  bool stopping_ = false;
  std::function<void(JournalRecordType, std::uint64_t)> post_sync_hook_;
  std::uint64_t type_counts_[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::thread flusher_;
};

}  // namespace prs::svc
