#include "svc/fair_share.hpp"

#include "common/error.hpp"

namespace prs::svc {

int stride_pick(const std::vector<StrideCandidate>& candidates) {
  int best = -1;
  for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
    const StrideCandidate& c = candidates[i];
    PRS_CHECK(c.tenant != nullptr, "stride candidate without a tenant");
    if (best < 0) {
      best = i;
      continue;
    }
    const StrideCandidate& b = candidates[best];
    if (c.tenant->pass != b.tenant->pass) {
      if (c.tenant->pass < b.tenant->pass) best = i;
    } else if (c.tenant->name != b.tenant->name) {
      if (c.tenant->name < b.tenant->name) best = i;
    } else if (c.job_id < b.job_id) {
      best = i;
    }
  }
  return best;
}

void stride_charge(TenantAccount& tenant, double service) {
  PRS_REQUIRE(service >= 0.0, "negative service charge");
  PRS_REQUIRE(tenant.quota.weight > 0.0, "tenant weight must be positive");
  tenant.service += service;
  tenant.pass += service / tenant.quota.weight;
}

void stride_clamp_pass(TenantAccount& tenant, double floor_pass) {
  if (tenant.pass < floor_pass) tenant.pass = floor_pass;
}

double stride_min_pass(const std::vector<const TenantAccount*>& active) {
  double min_pass = 0.0;
  bool seen = false;
  for (const TenantAccount* t : active) {
    if (!seen || t->pass < min_pass) {
      min_pass = t->pass;
      seen = true;
    }
  }
  return seen ? min_pass : 0.0;
}

}  // namespace prs::svc
