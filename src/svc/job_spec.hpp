// A self-contained description of one PRS job, as submitted to the
// multi-tenant job server (and, equivalently, as run single-shot by
// prs_run). The wire form is a flat list of key=value tokens — the same
// keys the SUBMIT verb of the line protocol carries — so one parser serves
// the socket front-end, the tests and the CLI client.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/cluster.hpp"
#include "core/job.hpp"

namespace prs::svc {

struct JobSpec {
  std::string app = "cmeans";    // cmeans | kmeans | gmm | gemv | dgemm |
                                 // fft | wordcount | stencil
  std::string testbed = "delta"; // delta | bigred2 | phi
  std::string policy = "static"; // static | dynamic | adaptive
  int nodes = 4;
  int gpus = 1;                  // simulated cards per node (vGPUs, under
                                 // the service)
  std::size_t points = 200000;   // items / points / signals / lines
  std::size_t dims = 100;        // dims; also DGEMM's K and stencil's rows
  int clusters = 10;
  int iterations = 10;
  std::size_t rows = 35000;      // GEMV/DGEMM M; stencil grid rows
  std::size_t cols = 10000;      // GEMV/DGEMM N; FFT signal size; grid cols
  bool functional = false;
  bool gpu_only = false;
  bool cpu_only = false;
  double cpu_fraction = -1.0;
  std::uint64_t seed = 42;
  std::string engine = "stages";  // stages | graph (task-graph runtime)
  int pipeline_depth = 1;        // graph engine: iterations in flight

  // Fault injection / checkpointing ride unchanged under the service.
  std::string fault_spec;
  std::uint64_t fault_seed = 1;
  int checkpoint_every = 0;
  std::string checkpoint_dir;
  bool resume = false;

  // Service resource request.
  std::uint64_t gpu_mem_bytes = 0;  // per-vGPU memory quota (0 = full card)

  /// vGPU slots this job needs: one per simulated card of its cluster.
  int vgpus_needed() const { return cpu_only ? 0 : nodes * gpus; }

  /// Node hardware implied by testbed/gpus (the service overrides the GPU
  /// spec with the leased vGPU spec).
  core::NodeConfig node_config() const;

  /// Job configuration implied by the mode/backend/policy fields. The
  /// caller owns the policy instance.
  core::JobConfig job_config() const;

  /// Validates field combinations; throws prs::InvalidArgument with a
  /// deterministic message on the first violation.
  void validate() const;

  /// Wire form: space-separated key=value tokens (only non-default fields
  /// are emitted, deterministic key order).
  std::string to_tokens() const;
};

/// Parses `key` `value` into `spec`. Returns false (setting `error`) on an
/// unknown key or malformed value; used by both the SUBMIT verb and the
/// CLI client.
bool apply_job_spec_field(JobSpec& spec, const std::string& key,
                          const std::string& value, std::string& error);

/// Parses a full key=value map (e.g. a SUBMIT payload). Throws
/// prs::InvalidArgument naming the offending key.
JobSpec parse_job_spec(const std::map<std::string, std::string>& fields);

/// Inverse of JobSpec::to_tokens(): parses the space-separated key=value
/// wire form back into a spec (the journal stores specs in this form).
/// Throws prs::InvalidArgument on a malformed token or unknown key.
JobSpec parse_job_spec_tokens(const std::string& tokens);

}  // namespace prs::svc
