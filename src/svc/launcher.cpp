#include "svc/launcher.hpp"

#include <cstdarg>
#include <cstdio>

#include "apps/cmeans.hpp"
#include "apps/dgemm.hpp"
#include "apps/fftbatch.hpp"
#include "apps/gemv.hpp"
#include "apps/gmm.hpp"
#include "apps/kmeans.hpp"
#include "apps/stencil.hpp"
#include "apps/wordcount.hpp"
#include "ckpt/codec.hpp"
#include "common/error.hpp"
#include "data/dataset.hpp"
#include "linalg/fft.hpp"

namespace prs::svc {
namespace {

void linef(std::vector<std::string>& lines, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  lines.emplace_back(buf);
}

/// 16-hex-digit FNV digest of a Writer's encoded bytes. CI diffs this line
/// between single-shot, fault-injected, resumed and server-submitted runs.
std::string writer_digest(const ckpt::Writer& w) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(ckpt::fnv1a64(w.bytes())));
  return buf;
}

/// Modeled runs have no application result; digest the statistics instead
/// (deterministic: virtual time and counters are bit-reproducible).
std::string stats_digest(const core::JobStats& stats) {
  ckpt::Writer w;
  core::visit_stats_fields(stats, [&w](const char*, const auto& value) {
    w.f64(static_cast<double>(value));
  });
  return writer_digest(w);
}

}  // namespace

LaunchOutcome run_job_spec(const JobSpec& spec, core::Cluster& cluster,
                           const core::NodeConfig& node,
                           const core::JobConfig& cfg, Rng& rng,
                           const ckpt::CheckpointConfig* checkpoint) {
  const auto& sched = cluster.scheduler(0);
  LaunchOutcome out;
  core::JobStats& stats = out.stats;

  if (spec.app == "cmeans" || spec.app == "kmeans") {
    const double ai = spec.app == "cmeans"
                          ? apps::cmeans_arithmetic_intensity(spec.clusters)
                          : apps::kmeans_arithmetic_intensity(spec.clusters);
    linef(out.lines, "%s: N=%zu D=%zu M=%d iters<=%d | AI=%g -> p=%.1f%%",
          spec.app.c_str(), spec.points, spec.dims, spec.clusters,
          spec.iterations, ai,
          sched.workload_split(ai, false, node.gpus_per_node).cpu_fraction *
              100.0);
    if (spec.functional) {
      auto ds = data::generate_blobs(rng, spec.points, spec.dims,
                                     spec.clusters, 10.0, 1.0);
      if (spec.app == "cmeans") {
        apps::CmeansParams p;
        p.clusters = spec.clusters;
        p.max_iterations = spec.iterations;
        p.seed = spec.seed;
        auto res = apps::cmeans_prs(cluster, ds.points, p, cfg, &stats,
                                    checkpoint);
        linef(out.lines, "converged in %d iterations, J_m = %.6g",
              res.iterations, res.objective);
        ckpt::Writer w;
        ckpt::put_matrix(w, res.centers);
        w.f64(res.objective);
        out.digest = writer_digest(w);
        linef(out.lines, "cmeans state digest: %s", out.digest.c_str());
      } else {
        apps::KmeansParams p;
        p.clusters = spec.clusters;
        p.max_iterations = spec.iterations;
        p.seed = spec.seed;
        auto res = apps::kmeans_prs(cluster, ds.points, p, cfg, &stats,
                                    checkpoint);
        linef(out.lines, "converged in %d iterations, inertia = %.6g",
              res.iterations, res.inertia);
        ckpt::Writer w;
        ckpt::put_matrix(w, res.centers);
        w.f64(res.inertia);
        out.digest = writer_digest(w);
        linef(out.lines, "kmeans state digest: %s", out.digest.c_str());
      }
    } else if (spec.app == "cmeans") {
      apps::CmeansParams p;
      p.clusters = spec.clusters;
      p.max_iterations = spec.iterations;
      stats = apps::cmeans_prs_modeled(cluster, spec.points, spec.dims, p,
                                       cfg);
    } else {
      apps::KmeansParams p;
      p.clusters = spec.clusters;
      p.max_iterations = spec.iterations;
      stats = apps::kmeans_prs_modeled(cluster, spec.points, spec.dims, p,
                                       cfg);
    }
  } else if (spec.app == "gmm") {
    const double ai =
        apps::gmm_arithmetic_intensity(spec.clusters, spec.dims);
    linef(out.lines, "gmm: N=%zu D=%zu M=%d iters<=%d | AI=%g -> p=%.1f%%",
          spec.points, spec.dims, spec.clusters, spec.iterations, ai,
          sched.workload_split(ai, false, node.gpus_per_node).cpu_fraction *
              100.0);
    if (spec.functional) {
      auto ds = data::generate_blobs(rng, spec.points, spec.dims,
                                     spec.clusters, 10.0, 1.0);
      apps::GmmParams p;
      p.components = spec.clusters;
      p.max_iterations = spec.iterations;
      p.seed = spec.seed;
      auto model = apps::gmm_prs(cluster, ds.points, p, cfg, &stats,
                                 checkpoint);
      linef(out.lines, "converged in %d iterations, log-likelihood = %.6g",
            model.iterations, model.log_likelihood);
      ckpt::Writer w;
      w.u64(model.weights.size());
      for (double wm : model.weights) w.f64(wm);
      ckpt::put_matrix(w, model.means);
      ckpt::put_matrix(w, model.variances);
      w.f64(model.log_likelihood);
      out.digest = writer_digest(w);
      linef(out.lines, "gmm state digest: %s", out.digest.c_str());
    } else {
      apps::GmmParams p;
      p.components = spec.clusters;
      p.max_iterations = spec.iterations;
      stats = apps::gmm_prs_modeled(cluster, spec.points, spec.dims, p, cfg);
    }
  } else if (spec.app == "gemv") {
    const double ai = apps::gemv_arithmetic_intensity();
    linef(out.lines, "gemv: %zu x %zu | AI=%g -> p=%.1f%%", spec.rows,
          spec.cols, ai,
          sched.workload_split(ai, true, node.gpus_per_node).cpu_fraction *
              100.0);
    if (spec.functional) {
      auto a = data::random_matrix(rng, spec.rows, spec.cols);
      auto x = data::random_vector(rng, spec.cols);
      auto y = apps::gemv_prs(cluster, a, x, cfg, &stats);
      linef(out.lines, "y[0] = %.6g, y[n-1] = %.6g", y.front(), y.back());
      ckpt::Writer w;
      w.u64(y.size());
      for (double v : y) w.f64(v);
      out.digest = writer_digest(w);
    } else {
      stats = apps::gemv_prs_modeled(cluster, spec.rows, spec.cols, cfg);
    }
  } else if (spec.app == "dgemm") {
    // C (rows x cols) = A (rows x dims) * B (dims x cols).
    const double ai = apps::dgemm_block_ai(
        static_cast<double>(spec.rows), spec.dims, spec.cols);
    linef(out.lines, "dgemm: (%zu x %zu) * (%zu x %zu) | AI=%g -> p=%.1f%%",
          spec.rows, spec.dims, spec.dims, spec.cols, ai,
          sched.workload_split(ai, true, node.gpus_per_node).cpu_fraction *
              100.0);
    if (spec.functional) {
      auto a = data::random_matrix(rng, spec.rows, spec.dims);
      auto b = data::random_matrix(rng, spec.dims, spec.cols);
      auto c = apps::dgemm_prs(cluster, a, b, cfg, &stats);
      linef(out.lines, "C[0][0] = %.6g, C[m-1][n-1] = %.6g", c(0, 0),
            c(c.rows() - 1, c.cols() - 1));
      ckpt::Writer w;
      ckpt::put_matrix(w, c);
      out.digest = writer_digest(w);
    } else {
      stats = apps::dgemm_prs_modeled(cluster, spec.rows, spec.cols,
                                      spec.dims, cfg);
    }
  } else if (spec.app == "stencil") {
    // Grid: dims rows x cols columns (functional only; validate() enforces).
    const double ai = apps::stencil_arithmetic_intensity();
    linef(out.lines, "stencil: %zu x %zu grid, iters<=%d | AI=%g -> p=%.1f%%",
          spec.dims, spec.cols, spec.iterations, ai,
          sched.workload_split(ai, false, node.gpus_per_node).cpu_fraction *
              100.0);
    auto grid = data::random_matrix(rng, spec.dims, spec.cols);
    apps::StencilParams p;
    p.max_iterations = spec.iterations;
    auto res = apps::stencil_prs(cluster, grid, p, cfg, &stats, checkpoint);
    linef(out.lines, "relaxed in %d iterations, residual = %.6g",
          res.iterations, res.residual);
    ckpt::Writer w;
    ckpt::put_matrix(w, res.grid);
    w.f64(res.residual);
    out.digest = writer_digest(w);
    linef(out.lines, "stencil state digest: %s", out.digest.c_str());
  } else if (spec.app == "fft") {
    const double ai = linalg::fft_arithmetic_intensity(spec.cols);
    linef(out.lines,
          "fft batch: %zu signals x %zu samples | AI=%g -> p=%.1f%%",
          spec.points, spec.cols, ai,
          sched.workload_split(ai, true, node.gpus_per_node).cpu_fraction *
              100.0);
    stats = apps::fft_batch_prs_modeled(cluster, spec.points, spec.cols,
                                        cfg);
  } else if (spec.app == "wordcount") {
    auto corpus = std::make_shared<const apps::Corpus>(
        apps::generate_corpus(rng, spec.points, 8, 5000));
    auto counts = apps::wordcount_prs(cluster, corpus, cfg, &stats);
    unsigned long long total = 0;
    for (const auto& [w, c] : counts) total += c;
    // Deterministic one-line digest of the result (CI diffs this line
    // between fault-free and fault-injected runs).
    linef(out.lines,
          "wordcount result: %zu lines, %zu distinct words, "
          "%llu total occurrences",
          spec.points, counts.size(), total);
    ckpt::Writer w;
    w.u64(counts.size());
    for (const auto& [word, c] : counts) {
      w.str(word);
      w.u64(static_cast<std::uint64_t>(c));
    }
    out.digest = writer_digest(w);
  } else {
    throw InvalidArgument("unknown app '" + spec.app + "' (try --list)");
  }

  // Modeled runs (and functional paths without an app-state digest) fall
  // back to digesting the deterministic statistics.
  if (out.digest.empty()) out.digest = stats_digest(stats);
  linef(out.lines, "result digest: %s", out.digest.c_str());
  return out;
}

}  // namespace prs::svc
