// Exporters for the observability buffers (obs/trace.hpp, obs/metrics.hpp):
//
//   * Chrome trace-event JSON — load in chrome://tracing or
//     https://ui.perfetto.dev. One "process" per fat node, one "thread" per
//     runner / CPU lane / GPU stream / NIC track, metadata events naming
//     both, then all spans ("X"), instants ("i") and counter samples ("C").
//   * Flat metrics dump — one row per counter and per histogram, as CSV or
//     JSON (export_metrics() picks by the path's ".json" suffix).
//
// All writers emit events in recording order with fixed number formatting,
// so deterministic runs export byte-identical files.
#pragma once

#include <ostream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace prs::obs {

/// Writes the recorder's buffer as Chrome trace-event JSON.
void write_chrome_trace(const TraceRecorder& rec, std::ostream& out);

/// Renders the Chrome trace-event JSON into a string (tests, tools).
std::string chrome_trace_string(const TraceRecorder& rec);

/// Writes the Chrome trace to `path`; throws prs::Error on I/O failure.
void export_chrome_trace(const TraceRecorder& rec, const std::string& path);

/// Flat metrics table, CSV: kind,name,count,sum,min,max,mean + one
/// bucket row per histogram bucket.
void write_metrics_csv(const MetricsRegistry& metrics, std::ostream& out);

/// Flat metrics table, JSON: {"counters":{...},"histograms":{...}}.
void write_metrics_json(const MetricsRegistry& metrics, std::ostream& out);

/// Writes metrics to `path` (JSON when it ends in ".json", CSV otherwise);
/// throws prs::Error on I/O failure.
void export_metrics(const MetricsRegistry& metrics, const std::string& path);

}  // namespace prs::obs
