// Virtual-clock execution tracing (the runtime's observability layer).
//
// A TraceRecorder collects spans ("X" complete events), instant markers and
// counter samples stamped with the simulator's virtual clock. Because the
// simulator is deterministic, so is the trace: two identical runs produce
// byte-identical exports (obs/export.hpp turns the buffer into Chrome
// trace-event JSON for chrome://tracing / Perfetto, and the embedded
// MetricsRegistry into a flat CSV/JSON dump).
//
// Track model: every event lives on a track addressed as (process, thread).
// The convention used by the instrumented layers:
//   process "node<r>"   — one per fat node
//     thread "runner"       job phases + scheduler-decision markers
//     thread "cpu.core<k>"  CPU daemon worker lanes (one per busy core)
//     thread "gpu<g>.s<s>"  GPU daemon, card g stream s (kernels + copies)
//     thread "nic"          fabric egress (message delivery spans)
//     thread "region"       region-allocator chunk growth / clears
// pids/tids are assigned in first-registration order, which is simulator
// event order, hence deterministic.
//
// Cost when disabled: instrumentation sites fetch the recorder with
// sim::Simulator::tracer(); when none is attached (the default) the whole
// site is one pointer null-check — no string formatting, no allocation.
// Every TraceRecorder member is additionally a no-op while !enabled().
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "simtime/simulator.hpp"

namespace prs::obs {

/// Index into TraceRecorder's track table.
using TrackId = std::uint32_t;

/// One pre-formatted event argument: `value` is a ready JSON literal
/// (quoted string or plain number) produced by the arg() helpers.
struct TraceArg {
  std::string key;
  std::string value;
};

/// Formats a numeric/string value as a JSON literal argument.
TraceArg arg(std::string key, double value);
TraceArg arg(std::string key, std::uint64_t value);
TraceArg arg(std::string key, int value);
TraceArg arg(std::string key, const char* value);
TraceArg arg(std::string key, const std::string& value);

/// One recorded event. `ts`/`dur` are virtual seconds.
struct TraceEvent {
  enum class Phase : std::uint8_t {
    kComplete,  // span with duration ("X")
    kInstant,   // point marker ("i")
    kCounter,   // counter sample ("C")
  };

  Phase phase = Phase::kInstant;
  TrackId track = 0;
  double ts = 0.0;
  double dur = 0.0;  // kComplete only
  std::string name;
  std::string category;
  std::vector<TraceArg> args;
};

/// A (process, thread) pair resolved to Chrome-trace pid/tid numbers.
struct TraceTrack {
  std::string process;
  std::string thread;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(sim::Simulator& sim) : sim_(sim) {}
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Recording switch; every record call is a no-op while false.
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Current virtual time (convenience for span begin timestamps).
  double now() const { return sim_.now(); }

  /// Resolves (process, thread) to a TrackId, registering it on first use.
  /// pids follow process first-seen order, tids thread order within one
  /// process — deterministic because registration happens in event order.
  TrackId track(const std::string& process, const std::string& thread);

  /// Records a span covering [begin, end] on `track`.
  void complete(TrackId track, std::string name, std::string category,
                double begin, double end, std::vector<TraceArg> args = {});

  /// Records a point marker at the current virtual time.
  void instant(TrackId track, std::string name, std::string category,
               std::vector<TraceArg> args = {});

  /// Records a counter sample at the current virtual time.
  void counter(TrackId track, std::string name, double value);

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<TraceTrack>& tracks() const { return tracks_; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  sim::Simulator& sim_;
  bool enabled_ = true;
  std::vector<TraceEvent> events_;
  std::vector<TraceTrack> tracks_;
  std::map<std::pair<std::string, std::string>, TrackId> track_index_;
  std::map<std::string, std::uint32_t> pid_index_;
  std::vector<std::uint32_t> next_tid_;  // per pid
  MetricsRegistry metrics_;
};

/// RAII span: records a kComplete event covering construction..destruction
/// (or ..close()). Null/disabled recorders make every member a no-op, so a
/// ScopedSpan can sit unconditionally in rarely-hot scopes; genuinely hot
/// paths should branch on the recorder pointer instead. Safe to hold across
/// co_await — the simulator is single-threaded and the span only samples
/// the virtual clock.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(TraceRecorder* rec, TrackId track, std::string name,
             std::string category)
      : rec_(rec != nullptr && rec->enabled() ? rec : nullptr),
        track_(track),
        begin_(rec_ != nullptr ? rec_->now() : 0.0),
        name_(std::move(name)),
        category_(std::move(category)) {}
  ScopedSpan(ScopedSpan&& o) noexcept { *this = std::move(o); }
  ScopedSpan& operator=(ScopedSpan&& o) noexcept {
    if (this != &o) {
      close();
      rec_ = o.rec_;
      track_ = o.track_;
      begin_ = o.begin_;
      name_ = std::move(o.name_);
      category_ = std::move(o.category_);
      args_ = std::move(o.args_);
      o.rec_ = nullptr;
    }
    return *this;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { close(); }

  /// Attaches an argument to the span (shown in the trace viewer).
  void add_arg(TraceArg a) {
    if (rec_ != nullptr) args_.push_back(std::move(a));
  }

  /// Ends the span now; the destructor becomes a no-op.
  void close() {
    if (rec_ == nullptr) return;
    rec_->complete(track_, std::move(name_), std::move(category_), begin_,
                   rec_->now(), std::move(args_));
    rec_ = nullptr;
  }

  bool active() const { return rec_ != nullptr; }

 private:
  TraceRecorder* rec_ = nullptr;
  TrackId track_ = 0;
  double begin_ = 0.0;
  std::string name_;
  std::string category_;
  std::vector<TraceArg> args_;
};

}  // namespace prs::obs
