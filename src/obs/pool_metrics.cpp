#include "obs/pool_metrics.hpp"

namespace prs::obs {
namespace {

/// Counters are monotonic adders; a snapshot "set" is an add of the delta,
/// which also keeps repeated snapshots idempotent for unchanged stats.
void set_counter(MetricsRegistry& m, const std::string& name, double value) {
  Counter& c = m.counter(name);
  c.add(value - c.value());
}

}  // namespace

void record_pool_metrics(MetricsRegistry& m, const exec::PoolStats& s) {
  set_counter(m, "exec.pool.jobs", static_cast<double>(s.jobs));
  set_counter(m, "exec.pool.nested_jobs", static_cast<double>(s.nested_jobs));
  set_counter(m, "exec.pool.chunks", static_cast<double>(s.chunks));
  set_counter(m, "exec.pool.stolen_chunks",
              static_cast<double>(s.stolen_chunks));
  set_counter(m, "exec.pool.steals_local",
              static_cast<double>(s.steals_local));
  set_counter(m, "exec.pool.steals_remote",
              static_cast<double>(s.steals_remote));
  set_counter(m, "exec.pool.caller_chunks",
              static_cast<double>(s.caller_chunks));
  set_counter(m, "exec.pool.lane_engagements",
              static_cast<double>(s.lane_engagements));
  set_counter(m, "exec.pool.lane_slots", static_cast<double>(s.lane_slots));
  set_counter(m, "exec.pool.threads", static_cast<double>(s.threads));
  set_counter(m, "exec.pool.occupancy", s.occupancy());
}

void record_pool_metrics(MetricsRegistry& m) {
  record_pool_metrics(m, exec::ThreadPool::instance().stats());
}

}  // namespace prs::obs
