#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace prs::obs {
namespace {

/// Virtual seconds -> trace microseconds with fixed precision (1 ns
/// resolution); fixed formatting keeps exports byte-identical across runs.
std::string format_us(double seconds) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

std::string format_value(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          out += esc;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void write_args(const std::vector<TraceArg>& args, std::ostream& out) {
  out << "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out << ",";
    out << quote(args[i].key) << ":" << args[i].value;
  }
  out << "}";
}

std::ofstream open_for_write(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open " + path + " for writing");
  return out;
}

}  // namespace

void write_chrome_trace(const TraceRecorder& rec, std::ostream& out) {
  out << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  // Metadata: name every process (one per fat node) and thread (one per
  // daemon / stream / NIC track). sort_index keeps registration order in
  // the viewer instead of alphabetical order.
  std::vector<std::uint32_t> named_pids;
  for (const TraceTrack& t : rec.tracks()) {
    bool pid_named = false;
    for (std::uint32_t p : named_pids) pid_named = pid_named || p == t.pid;
    if (!pid_named) {
      named_pids.push_back(t.pid);
      sep();
      out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << t.pid
          << ",\"args\":{\"name\":" << quote(t.process) << "}}";
      sep();
      out << "{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":" << t.pid
          << ",\"args\":{\"sort_index\":" << t.pid << "}}";
    }
    sep();
    out << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << t.pid
        << ",\"tid\":" << t.tid << ",\"args\":{\"name\":" << quote(t.thread)
        << "}}";
    sep();
    out << "{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":" << t.pid
        << ",\"tid\":" << t.tid << ",\"args\":{\"sort_index\":" << t.tid
        << "}}";
  }

  for (const TraceEvent& e : rec.events()) {
    const TraceTrack& t = rec.tracks()[e.track];
    sep();
    switch (e.phase) {
      case TraceEvent::Phase::kComplete:
        out << "{\"ph\":\"X\",\"pid\":" << t.pid << ",\"tid\":" << t.tid
            << ",\"ts\":" << format_us(e.ts) << ",\"dur\":" << format_us(e.dur)
            << ",\"name\":" << quote(e.name) << ",\"cat\":"
            << quote(e.category.empty() ? "prs" : e.category);
        if (!e.args.empty()) {
          out << ",\"args\":";
          write_args(e.args, out);
        }
        out << "}";
        break;
      case TraceEvent::Phase::kInstant:
        out << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << t.pid
            << ",\"tid\":" << t.tid << ",\"ts\":" << format_us(e.ts)
            << ",\"name\":" << quote(e.name) << ",\"cat\":"
            << quote(e.category.empty() ? "prs" : e.category);
        if (!e.args.empty()) {
          out << ",\"args\":";
          write_args(e.args, out);
        }
        out << "}";
        break;
      case TraceEvent::Phase::kCounter:
        out << "{\"ph\":\"C\",\"pid\":" << t.pid << ",\"tid\":" << t.tid
            << ",\"ts\":" << format_us(e.ts) << ",\"name\":" << quote(e.name)
            << ",\"args\":";
        write_args(e.args, out);
        out << "}";
        break;
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string chrome_trace_string(const TraceRecorder& rec) {
  std::ostringstream out;
  write_chrome_trace(rec, out);
  return out.str();
}

void export_chrome_trace(const TraceRecorder& rec, const std::string& path) {
  auto out = open_for_write(path);
  write_chrome_trace(rec, out);
  if (!out) throw Error("failed writing trace to " + path);
}

void write_metrics_csv(const MetricsRegistry& metrics, std::ostream& out) {
  out << "kind,name,count,sum,min,max,mean\n";
  for (const auto& [name, c] : metrics.counters()) {
    out << "counter," << name << ",," << format_value(c.value()) << ",,,\n";
  }
  for (const auto& [name, h] : metrics.histograms()) {
    out << "histogram," << name << "," << h.count() << ","
        << format_value(h.sum()) << "," << format_value(h.min()) << ","
        << format_value(h.max()) << "," << format_value(h.mean()) << "\n";
    for (std::size_t i = 0; i < h.buckets().size(); ++i) {
      out << "bucket," << name << "[le="
          << (i < h.bounds().size() ? format_value(h.bounds()[i]) : "inf")
          << "]," << h.buckets()[i] << ",,,,\n";
    }
  }
}

void write_metrics_json(const MetricsRegistry& metrics, std::ostream& out) {
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : metrics.counters()) {
    if (!first) out << ",";
    first = false;
    out << "\n" << quote(name) << ":" << format_value(c.value());
  }
  out << "},\n\"histograms\":{";
  first = true;
  for (const auto& [name, h] : metrics.histograms()) {
    if (!first) out << ",";
    first = false;
    out << "\n"
        << quote(name) << ":{\"count\":" << h.count()
        << ",\"sum\":" << format_value(h.sum())
        << ",\"min\":" << format_value(h.min())
        << ",\"max\":" << format_value(h.max())
        << ",\"mean\":" << format_value(h.mean()) << ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i > 0) out << ",";
      out << format_value(h.bounds()[i]);
    }
    out << "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets().size(); ++i) {
      if (i > 0) out << ",";
      out << h.buckets()[i];
    }
    out << "]}";
  }
  out << "}}\n";
}

void export_metrics(const MetricsRegistry& metrics, const std::string& path) {
  auto out = open_for_write(path);
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (json) {
    write_metrics_json(metrics, out);
  } else {
    write_metrics_csv(metrics, out);
  }
  if (!out) throw Error("failed writing metrics to " + path);
}

}  // namespace prs::obs
