#include "obs/trace.hpp"

#include <cstdio>

namespace prs::obs {
namespace {

/// Shortest deterministic decimal that round-trips a double; identical
/// inputs format identically on every run and platform (IEEE-754 + C
/// locale), which the byte-identical-trace guarantee rests on.
std::string format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = 0.0;
  for (int prec = 1; prec <= 16; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    std::sscanf(probe, "%lf", &parsed);
    if (parsed == v) return probe;
  }
  return buf;
}

std::string quote_json(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          out += esc;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

TraceArg arg(std::string key, double value) {
  return {std::move(key), format_number(value)};
}

TraceArg arg(std::string key, std::uint64_t value) {
  return {std::move(key), std::to_string(value)};
}

TraceArg arg(std::string key, int value) {
  return {std::move(key), std::to_string(value)};
}

TraceArg arg(std::string key, const char* value) {
  return {std::move(key), quote_json(value)};
}

TraceArg arg(std::string key, const std::string& value) {
  return {std::move(key), quote_json(value)};
}

TrackId TraceRecorder::track(const std::string& process,
                             const std::string& thread) {
  auto key = std::make_pair(process, thread);
  auto it = track_index_.find(key);
  if (it != track_index_.end()) return it->second;

  auto pid_it = pid_index_.find(process);
  if (pid_it == pid_index_.end()) {
    pid_it = pid_index_
                 .emplace(process,
                          static_cast<std::uint32_t>(pid_index_.size()))
                 .first;
    next_tid_.push_back(0);
  }
  const std::uint32_t pid = pid_it->second;
  const auto id = static_cast<TrackId>(tracks_.size());
  tracks_.push_back(TraceTrack{process, thread, pid, next_tid_[pid]++});
  track_index_.emplace(std::move(key), id);
  return id;
}

void TraceRecorder::complete(TrackId track, std::string name,
                             std::string category, double begin, double end,
                             std::vector<TraceArg> args) {
  if (!enabled_) return;
  PRS_REQUIRE(track < tracks_.size(), "unknown trace track");
  PRS_REQUIRE(end >= begin, "span must end at or after its begin");
  events_.push_back(TraceEvent{TraceEvent::Phase::kComplete, track, begin,
                               end - begin, std::move(name),
                               std::move(category), std::move(args)});
}

void TraceRecorder::instant(TrackId track, std::string name,
                            std::string category,
                            std::vector<TraceArg> args) {
  if (!enabled_) return;
  PRS_REQUIRE(track < tracks_.size(), "unknown trace track");
  events_.push_back(TraceEvent{TraceEvent::Phase::kInstant, track, sim_.now(),
                               0.0, std::move(name), std::move(category),
                               std::move(args)});
}

void TraceRecorder::counter(TrackId track, std::string name, double value) {
  if (!enabled_) return;
  PRS_REQUIRE(track < tracks_.size(), "unknown trace track");
  TraceEvent e{TraceEvent::Phase::kCounter, track, sim_.now(), 0.0,
               std::move(name), {}, {}};
  e.args.push_back(arg("value", value));
  events_.push_back(std::move(e));
}

}  // namespace prs::obs
