// Bridges the host thread pool's counters (exec/thread_pool.hpp) into a
// MetricsRegistry as the "exec.pool.*" family, so pool occupancy and steal
// behaviour land in the same CSV/JSON dumps as the virtual-clock metrics.
//
// Caveat, and the reason this is a separate opt-in call rather than
// automatic recording: chunk/steal attribution depends on OS scheduling,
// so unlike every other metric in the registry the exec.pool.* values are
// *not* byte-reproducible across runs or host-thread counts. Exporters that
// promise byte-identical output must not call this.
#pragma once

#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace prs::obs {

/// Overwrites the "exec.pool.*" counters in `m` with a snapshot of `s`:
/// jobs, nested_jobs, chunks, stolen_chunks, caller_chunks,
/// lane_engagements, threads and occupancy (mean engaged-lane fraction).
void record_pool_metrics(MetricsRegistry& m, const exec::PoolStats& s);

/// Convenience overload: snapshots the process-wide pool.
void record_pool_metrics(MetricsRegistry& m);

}  // namespace prs::obs
