#include "obs/metrics.hpp"

#include <algorithm>

namespace prs::obs {

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds_(std::move(bucket_bounds)),
      bucket_counts_(bounds_.size() + 1, 0) {
  PRS_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  PRS_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
              "histogram bucket bounds must be ascending");
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++bucket_counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bucket_bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(std::move(bucket_bounds))).first;
  }
  return it->second;
}

void MetricsRegistry::clear() {
  counters_.clear();
  histograms_.clear();
}

std::vector<double> geometric_buckets(double start, double factor, int n) {
  PRS_REQUIRE(start > 0.0 && factor > 1.0 && n >= 1,
              "geometric buckets need start > 0, factor > 1, n >= 1");
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(n));
  double b = start;
  for (int i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

}  // namespace prs::obs
