// Named runtime metrics recorded against the virtual clock: monotonic
// counters plus fixed-bucket histograms (map-block latency, shuffle message
// size, ...). A MetricsRegistry is owned by the TraceRecorder (obs/trace.hpp)
// but is independently usable; exporters in obs/export.hpp dump it as a flat
// CSV or JSON table.
//
// Determinism: registries iterate in name order (std::map), values are
// plain doubles updated in simulator event order, so two identical runs
// export byte-identical dumps.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace prs::obs {

/// A monotonically accumulating named value (bytes sent, tasks run, ...).
class Counter {
 public:
  void add(double delta) { value_ += delta; }
  void increment() { value_ += 1.0; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket counts the rest. Bounds are set on first use and
/// must not change afterwards.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bucket_bounds);

  void observe(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  const std::vector<std::uint64_t>& buckets() const { return bucket_counts_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> bucket_counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name -> counter/histogram registry with deterministic (sorted) iteration.
class MetricsRegistry {
 public:
  /// Returns the counter named `name`, creating it on first use.
  Counter& counter(const std::string& name);

  /// Returns the histogram named `name`; `bucket_bounds` (ascending) applies
  /// on first use only — later callers get the existing histogram.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bucket_bounds);

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  bool empty() const { return counters_.empty() && histograms_.empty(); }
  void clear();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

/// Geometric bucket bounds {start, start*factor, ...} with `n` entries —
/// the standard latency/size histogram shape.
std::vector<double> geometric_buckets(double start, double factor, int n);

}  // namespace prs::obs
