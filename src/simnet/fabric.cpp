#include "simnet/fabric.hpp"

#include <algorithm>
#include <string>

#include "obs/trace.hpp"
#include "simtime/process.hpp"

namespace prs::simnet {
namespace {

// Collectives that run in phases (allreduce = reduce + broadcast) offset the
// user's tag per phase; the caller owns tags below this stride.
constexpr int kPhaseTagStride = 1 << 24;

// Ack tags count down from here; user tags are non-negative, so the two
// spaces can never collide.
constexpr int kAckTagBase = -1;

}  // namespace

// -- Fabric -------------------------------------------------------------------

Fabric::Fabric(sim::Simulator& sim, int nodes, FabricSpec spec)
    : sim_(sim), spec_(spec) {
  PRS_REQUIRE(nodes >= 1, "fabric needs at least one node");
  PRS_REQUIRE(spec.link_bandwidth > 0.0, "link bandwidth must be positive");
  PRS_REQUIRE(spec.latency >= 0.0, "latency must be non-negative");
  for (int r = 0; r < nodes; ++r) {
    // Latency is charged once, on the egress side.
    egress_.push_back(std::make_unique<sim::BandwidthLink>(
        sim, spec.link_bandwidth, spec.latency));
    ingress_.push_back(
        std::make_unique<sim::BandwidthLink>(sim, spec.link_bandwidth, 0.0));
    comms_.push_back(std::unique_ptr<Communicator>(new Communicator(*this, r)));
  }
}

Fabric::~Fabric() = default;

Communicator& Fabric::comm(int rank) {
  PRS_REQUIRE(rank >= 0 && rank < size(), "rank out of range");
  return *comms_[static_cast<std::size_t>(rank)];
}

double Fabric::bytes_sent() const {
  double total = 0.0;
  for (const auto& link : egress_) total += link->bytes_transferred();
  return total;
}

// -- Communicator ---------------------------------------------------------------

sim::Channel<Message>& Communicator::inbox(int src, int tag) {
  auto key = std::make_pair(src, tag);
  auto it = inboxes_.find(key);
  if (it == inboxes_.end()) {
    it = inboxes_
             .emplace(key, std::make_unique<sim::Channel<Message>>(
                               fabric_.simulator()))
             .first;
  }
  return *it->second;
}

sim::Process Communicator::deliver(int dst, int tag, Message msg) {
  auto& egress = *fabric_.egress_[static_cast<std::size_t>(rank_)];
  auto& ingress = *fabric_.ingress_[static_cast<std::size_t>(dst)];
  const double bytes = msg.bytes;
  const double t0 = fabric_.simulator().now();
  // Raw deliveries (fault-free traffic, protocol acks) can still be dropped
  // or delayed by an attached hook; one null check when detached.
  NetFault fault;
  if (fabric_.fault_hook_ != nullptr) {
    fault = fabric_.fault_hook_->on_message(rank_, dst, tag, bytes);
  }
  co_await egress.transfer(bytes);
  if (fault.drop) co_return;
  if (fault.extra_delay > 0.0) {
    auto lag = sim::delay(fabric_.simulator(), fault.extra_delay);
    co_await lag;
  }
  co_await ingress.transfer(bytes);
  obs::TraceRecorder* tr = fabric_.simulator().tracer();
  if (tr != nullptr && tr->enabled()) {
    // Span covers egress queueing + both serializations + fabric latency —
    // the sender-side view of the message, on the sender's NIC track.
    tr->complete(tr->track("node" + std::to_string(rank_), "nic"),
                 "send.n" + std::to_string(dst), "net", t0,
                 fabric_.simulator().now(),
                 {obs::arg("bytes", bytes), obs::arg("dst", dst),
                  obs::arg("tag", tag)});
    tr->metrics().counter("net.bytes").add(bytes);
    tr->metrics()
        .histogram("net.msg_bytes", obs::geometric_buckets(64.0, 4.0, 16))
        .observe(bytes);
  }
  Communicator& peer = fabric_.comm(dst);
  if (tag < 0) {
    // Protocol ack: if the sender already gave up (its ack inbox was
    // reclaimed), discard instead of resurrecting the inbox entry.
    auto it = peer.inboxes_.find(std::make_pair(rank_, tag));
    if (it == peer.inboxes_.end()) co_return;
    it->second->send(std::move(msg));
    co_return;
  }
  peer.inbox(rank_, tag).send(std::move(msg));
}

void Communicator::send(int dst, int tag, Message msg) {
  PRS_REQUIRE(dst >= 0 && dst < size(), "destination rank out of range");
  PRS_REQUIRE(msg.bytes >= 0.0, "message size must be non-negative");
  if (dst == rank_) {
    // Loopback: no wire cost, delivered as an event at the current time.
    // Loopback never touches the wire, so fault hooks do not apply.
    auto& box = inbox(rank_, tag);
    fabric_.simulator().schedule_after(
        0.0, [&box, m = std::make_shared<Message>(std::move(msg))]() mutable {
          box.send(std::move(*m));
        });
    return;
  }
  if (fabric_.fault_hook_ != nullptr) {
    // Lossy fabric: sequenced ack/retransmit protocol.
    const std::uint64_t seq = rel_next_seq_[std::make_pair(dst, tag)]++;
    fabric_.simulator().spawn(reliable_send(dst, tag, std::move(msg), seq));
    return;
  }
  fabric_.simulator().spawn(deliver(dst, tag, std::move(msg)));
}

sim::Process Communicator::ack_pump(int src, int ack_tag,
                                    sim::Promise<sim::Unit> acked) {
  auto v = co_await inbox(src, ack_tag).recv();
  // nullopt: the ack inbox was reclaimed (sender gave up) — nothing to do.
  if (v.has_value()) acked.set_value(sim::Unit{});
}

sim::Process Communicator::reliable_send(int dst, int tag, Message msg,
                                         std::uint64_t seq) {
  sim::Simulator& sim = fabric_.simulator();
  auto& egress = *fabric_.egress_[static_cast<std::size_t>(rank_)];
  auto& ingress = *fabric_.ingress_[static_cast<std::size_t>(dst)];
  const ReliabilityParams& rel = fabric_.reliability_;
  const double bytes = msg.bytes;
  const int ack_tag = kAckTagBase - next_ack_id_++;

  sim::Promise<sim::Unit> acked(sim);
  sim::Future<sim::Unit> ack_future = acked.get_future();
  {
    sim::Process pump = ack_pump(dst, ack_tag, acked);
    sim.spawn(std::move(pump));
  }

  const FabricSpec& fs = fabric_.spec_;
  const double rtt_estimate =
      2.0 * fs.latency + (bytes + rel.ack_bytes) / fs.link_bandwidth;
  double deadline =
      std::max(rel.min_ack_timeout, rel.ack_timeout_factor * rtt_estimate);

  for (int attempt = 0;; ++attempt) {
    NetFault fault;
    if (fabric_.fault_hook_ != nullptr) {
      fault = fabric_.fault_hook_->on_message(rank_, dst, tag, bytes);
    }
    const double t0 = sim.now();
    co_await egress.transfer(bytes);
    if (!fault.drop) {
      if (fault.extra_delay > 0.0) {
        auto lag = sim::delay(sim, fault.extra_delay);
        co_await lag;
      }
      co_await ingress.transfer(bytes);
      obs::TraceRecorder* tr = sim.tracer();
      if (tr != nullptr && tr->enabled()) {
        tr->complete(tr->track("node" + std::to_string(rank_), "nic"),
                     "send.n" + std::to_string(dst), "net", t0, sim.now(),
                     {obs::arg("bytes", bytes), obs::arg("dst", dst),
                      obs::arg("tag", tag), obs::arg("attempt", attempt)});
        tr->metrics().counter("net.bytes").add(bytes);
        tr->metrics()
            .histogram("net.msg_bytes", obs::geometric_buckets(64.0, 4.0, 16))
            .observe(bytes);
      }
      Communicator& peer = fabric_.comm(dst);
      peer.reliable_accept(rank_, tag, seq, ack_tag, msg);
      if (fault.duplicate) peer.reliable_accept(rank_, tag, seq, ack_tag, msg);
    }
    auto timed = sim::with_timeout(sim, ack_future, deadline);
    const bool got_ack = co_await timed;
    if (got_ack || attempt >= rel.max_retransmits) {
      // Success — or the peer is presumed dead and job-level recovery takes
      // over. Reclaim the ack inbox; a pending pump wakes with nullopt and
      // exits, a late ack finds no inbox and is discarded.
      inboxes_.erase(std::make_pair(dst, ack_tag));
      co_return;
    }
    deadline *= 2.0;
    ++fabric_.retransmits_;
    obs::TraceRecorder* tr = sim.tracer();
    if (tr != nullptr && tr->enabled()) {
      tr->metrics().counter("net.retransmits").increment();
    }
  }
}

void Communicator::reliable_accept(int src, int tag, std::uint64_t seq,
                                   int ack_tag, Message msg) {
  // Ack every copy, even duplicates: the previous ack may have been lost.
  Message ack;
  ack.bytes = fabric_.reliability_.ack_bytes;
  send_unreliable(src, ack_tag, std::move(ack));
  RelInbound& in = rel_in_[std::make_pair(src, tag)];
  if (seq < in.next_seq || in.held.count(seq) != 0) return;  // duplicate
  in.held.emplace(seq, std::move(msg));
  // Release in sequence order so recv() keeps per-(src,tag) FIFO semantics.
  for (auto it = in.held.find(in.next_seq); it != in.held.end();
       it = in.held.find(in.next_seq)) {
    inbox(src, tag).send(std::move(it->second));
    in.held.erase(it);
    ++in.next_seq;
  }
}

void Communicator::send_unreliable(int dst, int tag, Message msg) {
  fabric_.simulator().spawn(deliver(dst, tag, std::move(msg)));
}

sim::Task<Message> Communicator::recv(int src, int tag) {
  PRS_REQUIRE(src >= 0 && src < size(), "source rank out of range");
  auto v = co_await inbox(src, tag).recv();
  PRS_CHECK(v.has_value(), "inbox closed while receiving");
  co_return std::move(*v);
}

sim::Task<Message> Communicator::broadcast(int root, Message msg, int tag) {
  PRS_REQUIRE(root >= 0 && root < size(), "root rank out of range");
  const int p = size();
  const int vrank = (rank_ - root + p) % p;

  // Receive from the parent (MPICH binomial tree), unless we are the root.
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int parent = ((vrank - mask) + root) % p;
      msg = co_await recv(parent, tag);
      break;
    }
    mask <<= 1;
  }
  // Forward to children.
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < p) {
      const int child = ((vrank + mask) + root) % p;
      send(child, tag, msg);  // copy: fan-out keeps the payload
    }
    mask >>= 1;
  }
  co_return msg;
}

sim::Task<Message> Communicator::reduce(int root, Message contribution,
                                        Combiner combine, int tag) {
  PRS_REQUIRE(root >= 0 && root < size(), "root rank out of range");
  PRS_REQUIRE(combine != nullptr, "reduce needs a combiner");
  const int p = size();
  const int vrank = (rank_ - root + p) % p;

  Message acc = std::move(contribution);
  for (int mask = 1; mask < p; mask <<= 1) {
    if (vrank & mask) {
      const int parent = ((vrank - mask) + root) % p;
      send(parent, tag, std::move(acc));
      acc = Message{};  // moved out; non-root result is unspecified anyway
      break;
    }
    const int child_v = vrank + mask;
    if (child_v < p) {
      const int child = (child_v + root) % p;
      Message m = co_await recv(child, tag);
      acc = combine(std::move(acc), std::move(m));
    }
  }
  co_return acc;
}

sim::Task<Message> Communicator::allreduce(Message contribution,
                                           Combiner combine, int tag) {
  Message reduced =
      co_await reduce(0, std::move(contribution), std::move(combine), tag);
  Message result =
      co_await broadcast(0, std::move(reduced), tag + kPhaseTagStride);
  co_return result;
}

sim::Task<std::vector<Message>> Communicator::gather(int root,
                                                     Message contribution,
                                                     int tag) {
  PRS_REQUIRE(root >= 0 && root < size(), "root rank out of range");
  const int p = size();
  std::vector<Message> out;
  if (rank_ != root) {
    send(root, tag, std::move(contribution));
    co_return out;
  }
  out.resize(static_cast<std::size_t>(p));
  out[static_cast<std::size_t>(root)] = std::move(contribution);
  for (int src = 0; src < p; ++src) {
    if (src == root) continue;
    out[static_cast<std::size_t>(src)] = co_await recv(src, tag);
  }
  co_return out;
}

sim::Task<std::vector<Message>> Communicator::all_to_all(
    std::vector<Message> outbound, int tag) {
  const int p = size();
  PRS_REQUIRE(static_cast<int>(outbound.size()) == p,
              "all_to_all needs one outbound message per rank");
  std::vector<Message> in(static_cast<std::size_t>(p));
  for (int dst = 0; dst < p; ++dst) {
    if (dst == rank_) {
      in[static_cast<std::size_t>(dst)] =
          std::move(outbound[static_cast<std::size_t>(dst)]);
    } else {
      send(dst, tag, std::move(outbound[static_cast<std::size_t>(dst)]));
    }
  }
  for (int src = 0; src < p; ++src) {
    if (src == rank_) continue;
    in[static_cast<std::size_t>(src)] = co_await recv(src, tag);
  }
  co_return in;
}

sim::Task<sim::Unit> Communicator::barrier(int tag) {
  // Named locals: see the GCC-12 temporaries rule in simtime/process.hpp.
  Combiner noop = [](Message a, Message) { return a; };
  Message empty;
  (void)co_await allreduce(std::move(empty), std::move(noop), tag);
  co_return sim::Unit{};
}

}  // namespace prs::simnet
