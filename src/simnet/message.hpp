// Messages on the simulated fabric.
//
// A Message separates wire cost (`bytes`, charged against link bandwidth)
// from functional content (`payload`, a std::any moved between ranks). The
// PRS runtime ships real intermediate key/value data in Functional mode and
// only the byte count in Modeled mode; the network model treats both
// identically.
#pragma once

#include <any>
#include <utility>

namespace prs::simnet {

struct Message {
  /// Size charged on the wire (bytes). May exceed the in-memory payload
  /// size (headers, serialization overhead) or stand in for elided payload.
  double bytes = 0.0;

  /// Functional content. Use payload_as<T>() to view it.
  std::any payload;

  Message() = default;
  Message(double wire_bytes, std::any content)
      : bytes(wire_bytes), payload(std::move(content)) {}

  template <typename T>
  const T& payload_as() const {
    return std::any_cast<const T&>(payload);
  }
  template <typename T>
  T& payload_as() {
    return std::any_cast<T&>(payload);
  }
  bool has_payload() const { return payload.has_value(); }
};

}  // namespace prs::simnet
