// Simulated cluster interconnect: per-node full-duplex links into an ideal
// switch, MPI-like point-to-point messaging and tree-based collectives.
//
// Timing model: a message from src to dst serializes through src's egress
// link, pays the fabric latency once, then serializes through dst's ingress
// link. Under an all-to-all shuffle every link saturates independently,
// which matches the paper's cluster (nodes on a common switch) well enough
// to reproduce the weak-scaling shape of Figure 6 including the global-
// reduction overhead visible at 8 nodes.
//
// Collectives use binomial trees (MPICH-style), so their critical path
// grows as ceil(log2 P) link hops — the mechanism behind the C-means
// per-node throughput drop the paper reports.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "simnet/fault_hook.hpp"
#include "simnet/message.hpp"
#include "simtime/channel.hpp"
#include "simtime/future.hpp"
#include "simtime/resource.hpp"
#include "simtime/simulator.hpp"
#include "simtime/task.hpp"

namespace prs::simnet {

struct FabricSpec {
  /// Per-direction bandwidth of each node's link (bytes/s).
  double link_bandwidth = 1e9;
  /// One-way message latency (s).
  double latency = 50e-6;
};

/// Knobs for the ack/retransmit protocol engaged while a fault hook is
/// attached (lossy fabric). Unused on the fault-free fast path.
struct ReliabilityParams {
  /// Retransmissions before the sender gives up (peer presumed dead).
  int max_retransmits = 8;
  /// First ack deadline = factor x estimated RTT; doubles per retry.
  double ack_timeout_factor = 8.0;
  /// Floor for the first ack deadline (seconds of virtual time).
  double min_ack_timeout = 1e-4;
  /// Wire size charged for each ack message.
  double ack_bytes = 64.0;
};

class Communicator;

/// The interconnect shared by all ranks of one simulated cluster.
class Fabric {
 public:
  Fabric(sim::Simulator& sim, int nodes, FabricSpec spec);
  ~Fabric();
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int size() const { return static_cast<int>(comms_.size()); }
  sim::Simulator& simulator() { return sim_; }
  const FabricSpec& spec() const { return spec_; }

  /// The endpoint owned by `rank`.
  Communicator& comm(int rank);

  /// Total bytes moved through the fabric (all links, egress side).
  double bytes_sent() const;

  /// Attaches (or detaches, with nullptr) the fault-injection hook. While a
  /// hook is attached, point-to-point sends switch to a sequenced
  /// ack/retransmit protocol (drops are retransmitted, duplicates deduped,
  /// per-(src,tag) FIFO order preserved); loopback sends are unaffected.
  /// Detach only when the fabric is quiescent (simulator drained).
  void set_fault_hook(NetFaultHook* hook) { fault_hook_ = hook; }
  NetFaultHook* fault_hook() const { return fault_hook_; }

  void set_reliability(ReliabilityParams params) { reliability_ = params; }
  const ReliabilityParams& reliability() const { return reliability_; }

  /// Retransmissions performed since construction (monotonic).
  std::uint64_t retransmits() const { return retransmits_; }

 private:
  friend class Communicator;

  sim::Simulator& sim_;
  FabricSpec spec_;
  std::vector<std::unique_ptr<sim::BandwidthLink>> egress_;
  std::vector<std::unique_ptr<sim::BandwidthLink>> ingress_;
  std::vector<std::unique_ptr<Communicator>> comms_;
  NetFaultHook* fault_hook_ = nullptr;
  ReliabilityParams reliability_;
  std::uint64_t retransmits_ = 0;
};

/// Combines two reduction contributions into one (payload + wire size).
using Combiner = std::function<Message(Message, Message)>;

/// Per-rank endpoint with MPI-flavoured operations. All operations must be
/// called from simulator processes of that rank.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const { return fabric_.size(); }

  /// Asynchronous send (buffered, fire-and-forget like MPI_Isend whose
  /// completion the sender does not track).
  void send(int dst, int tag, Message msg);

  /// Receives the next message with this (src, tag); FIFO per channel.
  sim::Task<Message> recv(int src, int tag);

  // -- collectives ------------------------------------------------------
  // `tag` must be unique per collective invocation across concurrently
  // running collectives on this communicator (the caller owns the tag
  // space, as in MPI). Every rank must call the same collective with the
  // same tag and root.

  /// Binomial-tree broadcast; returns the root's message on every rank.
  sim::Task<Message> broadcast(int root, Message msg, int tag);

  /// Binomial-tree reduce; the result is meaningful on `root` only
  /// (other ranks get their partial accumulation back).
  sim::Task<Message> reduce(int root, Message contribution, Combiner combine,
                            int tag);

  /// reduce to rank 0 + broadcast: every rank gets the combined value.
  sim::Task<Message> allreduce(Message contribution, Combiner combine,
                               int tag);

  /// Root receives all contributions ordered by rank.
  sim::Task<std::vector<Message>> gather(int root, Message contribution,
                                         int tag);

  /// Personalized all-to-all: `outbound[r]` goes to rank r; returns the
  /// messages received, indexed by source rank. outbound.size() == size().
  sim::Task<std::vector<Message>> all_to_all(std::vector<Message> outbound,
                                             int tag);

  /// All ranks wait until all ranks arrive.
  sim::Task<sim::Unit> barrier(int tag);

 private:
  friend class Fabric;
  Communicator(Fabric& fabric, int rank) : fabric_(fabric), rank_(rank) {}

  sim::Channel<Message>& inbox(int src, int tag);
  sim::Process deliver(int dst, int tag, Message msg);

  // -- reliable path (active while a fault hook is attached) -------------
  // Each message gets a per-(dst,tag) sequence number and a unique ack tag
  // (negative, so it can never collide with user tags). The sender
  // retransmits with exponential backoff until the ack arrives or it gives
  // up; the receiver acks every copy, dedups, and releases messages to the
  // inbox strictly in sequence order so recv() keeps FIFO semantics.
  sim::Process reliable_send(int dst, int tag, Message msg,
                             std::uint64_t seq);
  sim::Process ack_pump(int src, int ack_tag, sim::Promise<sim::Unit> acked);
  void reliable_accept(int src, int tag, std::uint64_t seq, int ack_tag,
                       Message msg);
  void send_unreliable(int dst, int tag, Message msg);

  struct RelInbound {
    std::uint64_t next_seq = 0;
    std::map<std::uint64_t, Message> held;  // out-of-order buffer
  };

  Fabric& fabric_;
  int rank_;
  std::map<std::pair<int, int>, std::unique_ptr<sim::Channel<Message>>>
      inboxes_;
  std::map<std::pair<int, int>, std::uint64_t> rel_next_seq_;  // (dst, tag)
  std::map<std::pair<int, int>, RelInbound> rel_in_;           // (src, tag)
  int next_ack_id_ = 0;
};

}  // namespace prs::simnet
