// Simulated cluster interconnect: per-node full-duplex links into an ideal
// switch, MPI-like point-to-point messaging and tree-based collectives.
//
// Timing model: a message from src to dst serializes through src's egress
// link, pays the fabric latency once, then serializes through dst's ingress
// link. Under an all-to-all shuffle every link saturates independently,
// which matches the paper's cluster (nodes on a common switch) well enough
// to reproduce the weak-scaling shape of Figure 6 including the global-
// reduction overhead visible at 8 nodes.
//
// Collectives use binomial trees (MPICH-style), so their critical path
// grows as ceil(log2 P) link hops — the mechanism behind the C-means
// per-node throughput drop the paper reports.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "simnet/message.hpp"
#include "simtime/channel.hpp"
#include "simtime/future.hpp"
#include "simtime/resource.hpp"
#include "simtime/simulator.hpp"
#include "simtime/task.hpp"

namespace prs::simnet {

struct FabricSpec {
  /// Per-direction bandwidth of each node's link (bytes/s).
  double link_bandwidth = 1e9;
  /// One-way message latency (s).
  double latency = 50e-6;
};

class Communicator;

/// The interconnect shared by all ranks of one simulated cluster.
class Fabric {
 public:
  Fabric(sim::Simulator& sim, int nodes, FabricSpec spec);
  ~Fabric();
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int size() const { return static_cast<int>(comms_.size()); }
  sim::Simulator& simulator() { return sim_; }
  const FabricSpec& spec() const { return spec_; }

  /// The endpoint owned by `rank`.
  Communicator& comm(int rank);

  /// Total bytes moved through the fabric (all links, egress side).
  double bytes_sent() const;

 private:
  friend class Communicator;

  sim::Simulator& sim_;
  FabricSpec spec_;
  std::vector<std::unique_ptr<sim::BandwidthLink>> egress_;
  std::vector<std::unique_ptr<sim::BandwidthLink>> ingress_;
  std::vector<std::unique_ptr<Communicator>> comms_;
};

/// Combines two reduction contributions into one (payload + wire size).
using Combiner = std::function<Message(Message, Message)>;

/// Per-rank endpoint with MPI-flavoured operations. All operations must be
/// called from simulator processes of that rank.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const { return fabric_.size(); }

  /// Asynchronous send (buffered, fire-and-forget like MPI_Isend whose
  /// completion the sender does not track).
  void send(int dst, int tag, Message msg);

  /// Receives the next message with this (src, tag); FIFO per channel.
  sim::Task<Message> recv(int src, int tag);

  // -- collectives ------------------------------------------------------
  // `tag` must be unique per collective invocation across concurrently
  // running collectives on this communicator (the caller owns the tag
  // space, as in MPI). Every rank must call the same collective with the
  // same tag and root.

  /// Binomial-tree broadcast; returns the root's message on every rank.
  sim::Task<Message> broadcast(int root, Message msg, int tag);

  /// Binomial-tree reduce; the result is meaningful on `root` only
  /// (other ranks get their partial accumulation back).
  sim::Task<Message> reduce(int root, Message contribution, Combiner combine,
                            int tag);

  /// reduce to rank 0 + broadcast: every rank gets the combined value.
  sim::Task<Message> allreduce(Message contribution, Combiner combine,
                               int tag);

  /// Root receives all contributions ordered by rank.
  sim::Task<std::vector<Message>> gather(int root, Message contribution,
                                         int tag);

  /// Personalized all-to-all: `outbound[r]` goes to rank r; returns the
  /// messages received, indexed by source rank. outbound.size() == size().
  sim::Task<std::vector<Message>> all_to_all(std::vector<Message> outbound,
                                             int tag);

  /// All ranks wait until all ranks arrive.
  sim::Task<sim::Unit> barrier(int tag);

 private:
  friend class Fabric;
  Communicator(Fabric& fabric, int rank) : fabric_(fabric), rank_(rank) {}

  sim::Channel<Message>& inbox(int src, int tag);
  sim::Process deliver(int dst, int tag, Message msg);

  Fabric& fabric_;
  int rank_;
  std::map<std::pair<int, int>, std::unique_ptr<sim::Channel<Message>>>
      inboxes_;
};

}  // namespace prs::simnet
