// Fault-injection hook for fabric message delivery.
//
// The fabric consults an optional NetFaultHook once per wire attempt (first
// transmission, every retransmission, and acks alike). The hook decides from
// the virtual clock and its own seeded randomness whether that attempt is
// dropped, delayed, or duplicated. prs::fault implements the interface;
// simnet only sees this narrow surface so the layering stays acyclic. With
// no hook attached the cost is a single null check, keeping fault-free runs
// byte-identical.
#pragma once

namespace prs::simnet {

/// Verdict for one wire attempt of one message.
struct NetFault {
  /// Message vanishes after occupying the sender's egress link.
  bool drop = false;
  /// Extra in-flight latency (seconds) added after egress.
  double extra_delay = 0.0;
  /// Message is delivered twice (receiver-side dedup must discard one).
  bool duplicate = false;
};

class NetFaultHook {
 public:
  virtual ~NetFaultHook() = default;
  /// Called once per wire attempt; `tag` < 0 marks protocol acks.
  virtual NetFault on_message(int src, int dst, int tag, double bytes) = 0;
};

}  // namespace prs::simnet
