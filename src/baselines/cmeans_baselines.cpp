#include "baselines/cmeans_baselines.hpp"

#include <thread>

#include "apps/cmeans.hpp"
#include "core/calibration.hpp"
#include "simtime/process.hpp"

namespace prs::baselines {
namespace {

using core::calib::kHadoopPerItem;
using core::calib::kHadoopPerIterationLaunch;
using core::calib::kMpiCpuEfficiency;
using core::calib::kMpiGpuPerItem;
using core::calib::kMpiJobStartup;

constexpr int kCentersTag = 500;

simnet::Combiner sum_bytes_combiner() {
  return [](simnet::Message a, simnet::Message b) {
    return simnet::Message{std::max(a.bytes, b.bytes), {}};
  };
}

/// One MPI rank of the MPI/GPU implementation: per iteration, one fused
/// kernel over the local points (event matrix resident in GPU memory, as
/// in the paper's CUDA code) + an allreduce of the partial centers.
sim::Process mpi_gpu_rank(core::Cluster& cluster, int rank,
                          CmeansWorkload w, std::shared_ptr<int> remaining) {
  auto& sim = cluster.simulator();
  auto& node = cluster.node(rank);
  auto& comm = cluster.fabric().comm(rank);
  const auto local_points = static_cast<double>(w.total_points) /
                            static_cast<double>(w.nodes);
  const double flops_per_point =
      apps::cmeans_flops_per_point(w.clusters, w.dims);
  const double ai = apps::cmeans_arithmetic_intensity(w.clusters);
  const double centers_bytes =
      static_cast<double>(w.clusters) * static_cast<double>(w.dims + 1);

  co_await sim::delay(sim, kMpiJobStartup);
  for (int it = 0; it < w.iterations; ++it) {
    simdev::KernelDesc k;
    k.name = "cmeans:mpi-gpu";
    k.workload.flops = local_points * flops_per_point;
    k.workload.mem_traffic = k.workload.flops / ai;
    k.compute_efficiency = core::calib::kCmeans.gpu_compute;
    k.memory_efficiency = core::calib::kCmeans.gpu_memory;
    auto kernel_done = node.gpu().default_stream().launch(std::move(k));
    co_await kernel_done;

    // Host-side per-point bookkeeping (launch batching, pageable copies of
    // the partial sums, center update).
    co_await sim::delay(sim, local_points * kMpiGpuPerItem);

    // MPI_Allreduce of the partial center matrix.
    simnet::Message mine{centers_bytes, {}};
    simnet::Combiner combine = sum_bytes_combiner();
    auto red = comm.allreduce(std::move(mine), std::move(combine),
                              kCentersTag);
    (void)co_await red;
  }
  --*remaining;
}

/// One MPI rank of the MPI/CPU implementation: the local points are split
/// over 2x the cores (hyper-threading, as the paper states), each chunk is
/// one pthread task at the baseline's (low) efficiency.
sim::Process mpi_cpu_rank(core::Cluster& cluster, int rank,
                          CmeansWorkload w, std::shared_ptr<int> remaining) {
  auto& sim = cluster.simulator();
  auto& node = cluster.node(rank);
  auto& comm = cluster.fabric().comm(rank);
  const auto local_points = static_cast<double>(w.total_points) /
                            static_cast<double>(w.nodes);
  const double flops_per_point =
      apps::cmeans_flops_per_point(w.clusters, w.dims);
  const double ai = apps::cmeans_arithmetic_intensity(w.clusters);
  const double centers_bytes =
      static_cast<double>(w.clusters) * static_cast<double>(w.dims + 1);
  const int threads = node.cpu().cores() * 2;  // hyper-threading

  co_await sim::delay(sim, kMpiJobStartup);
  for (int it = 0; it < w.iterations; ++it) {
    std::vector<sim::Future<sim::Unit>> futs;
    futs.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      simdev::CpuTask task;
      task.name = "cmeans:mpi-cpu";
      task.workload.flops =
          local_points / threads * flops_per_point;
      task.workload.mem_traffic = task.workload.flops / ai;
      task.compute_efficiency = kMpiCpuEfficiency;
      task.memory_efficiency = kMpiCpuEfficiency;
      futs.push_back(node.cpu().submit(std::move(task)));
    }
    auto all = sim::when_all(sim, futs);
    co_await all;

    simnet::Message mine{centers_bytes, {}};
    simnet::Combiner combine = sum_bytes_combiner();
    auto red = comm.allreduce(std::move(mine), std::move(combine),
                              kCentersTag);
    (void)co_await red;
  }
  --*remaining;
}

}  // namespace

double cmeans_mpi_gpu(const CmeansWorkload& w, const core::NodeConfig& node) {
  sim::Simulator sim;
  core::Cluster cluster(sim, w.nodes, node);
  auto remaining = std::make_shared<int>(w.nodes);
  const double t0 = sim.now();
  for (int r = 0; r < w.nodes; ++r) {
    sim.spawn(mpi_gpu_rank(cluster, r, w, remaining));
  }
  sim.run();
  PRS_CHECK(*remaining == 0, "MPI/GPU ranks did not finish");
  return sim.now() - t0;
}

double cmeans_mpi_cpu(const CmeansWorkload& w, const core::NodeConfig& node) {
  sim::Simulator sim;
  core::Cluster cluster(sim, w.nodes, node);
  auto remaining = std::make_shared<int>(w.nodes);
  const double t0 = sim.now();
  for (int r = 0; r < w.nodes; ++r) {
    sim.spawn(mpi_cpu_rank(cluster, r, w, remaining));
  }
  sim.run();
  PRS_CHECK(*remaining == 0, "MPI/CPU ranks did not finish");
  return sim.now() - t0;
}

double cmeans_raw_thread_map(const linalg::MatrixD& points,
                             const linalg::MatrixD& centers,
                             double fuzziness, int threads) {
  PRS_REQUIRE(threads >= 1, "need at least one thread");
  const std::size_t n = points.rows();
  const auto t = static_cast<std::size_t>(threads);
  std::vector<std::vector<std::vector<double>>> partials(t);
  // Static split, one slice per thread — the paper's pthread CPU daemon.
  // Each thread runs the real serial kernel over its slice; no chunking,
  // no stealing, so results depend on the split (wall-clock baseline only).
  {
    std::vector<std::thread> pool;
    pool.reserve(t);
    for (std::size_t w = 0; w < t; ++w) {
      pool.emplace_back([&, w] {
        const std::size_t begin = n * w / t;
        const std::size_t end = n * (w + 1) / t;
        // The caller must size the process pool to one thread while timing
        // this baseline (bench_ablation_host_threads does), so the slice
        // runs serially in-thread instead of routing back through the pool.
        apps::cmeans_accumulate(points, centers, fuzziness, begin, end,
                                partials[w]);
      });
    }
    for (auto& th : pool) th.join();
  }
  double objective = 0.0;
  for (const auto& p : partials) {
    if (!p.empty()) objective += p[0].back();
  }
  return objective;
}

double cmeans_mahout(const CmeansWorkload& w) {
  // Hadoop executes one MapReduce job per C-means iteration; each pays job
  // submission + JVM spin-up, then streams the points from HDFS. Compute
  // itself is negligible next to that (the "two orders of magnitude" gap).
  const double points_per_node = static_cast<double>(w.total_points) /
                                 static_cast<double>(w.nodes);
  const double per_iteration =
      kHadoopPerIterationLaunch + points_per_node * kHadoopPerItem;
  return static_cast<double>(w.iterations) * per_iteration;
}

}  // namespace prs::baselines
