// Baseline runtimes the paper compares PRS against in Table 3:
//   MPI/GPU    — hand-written MPI + CUDA C-means, one GPU per node, no
//                runtime framework overhead beyond kernel/copy bookkeeping;
//   MPI/CPU    — hand-written MPI + pthreads C-means on all cores (the
//                paper's unvectorized reference, see calib::kMpiCpuEfficiency);
//   Mahout/CPU — Hadoop-based clustering: per-iteration job submission and
//                HDFS traffic dominate (the "two orders of magnitude" row).
//
// Each baseline runs on the same simulated devices/fabric as the PRS so the
// comparison isolates framework overhead, exactly like the paper's setup.
#pragma once

#include <cstddef>

#include "core/cluster.hpp"

namespace prs::baselines {

/// Workload of Table 3: C-means with D dimensions, M clusters, fixed
/// iteration count, evenly split across `nodes` fat nodes.
struct CmeansWorkload {
  std::size_t total_points = 200000;
  std::size_t dims = 100;
  int clusters = 10;
  int iterations = 300;  // calib::kTable3Iterations
  int nodes = 4;
};

/// Virtual elapsed seconds of the MPI + one-GPU-per-node implementation.
double cmeans_mpi_gpu(const CmeansWorkload& w, const core::NodeConfig& node);

/// Virtual elapsed seconds of the MPI + all-CPU-cores implementation
/// (two threads per core with hyper-threading, per the paper).
double cmeans_mpi_cpu(const CmeansWorkload& w, const core::NodeConfig& node);

/// Virtual elapsed seconds of the Mahout-on-Hadoop implementation.
double cmeans_mahout(const CmeansWorkload& w);

}  // namespace prs::baselines
