// Baseline runtimes the paper compares PRS against in Table 3:
//   MPI/GPU    — hand-written MPI + CUDA C-means, one GPU per node, no
//                runtime framework overhead beyond kernel/copy bookkeeping;
//   MPI/CPU    — hand-written MPI + pthreads C-means on all cores (the
//                paper's unvectorized reference, see calib::kMpiCpuEfficiency);
//   Mahout/CPU — Hadoop-based clustering: per-iteration job submission and
//                HDFS traffic dominate (the "two orders of magnitude" row).
//
// Each baseline runs on the same simulated devices/fabric as the PRS so the
// comparison isolates framework overhead, exactly like the paper's setup.
#pragma once

#include <cstddef>

#include "core/cluster.hpp"
#include "linalg/matrix.hpp"

namespace prs::baselines {

/// Workload of Table 3: C-means with D dimensions, M clusters, fixed
/// iteration count, evenly split across `nodes` fat nodes.
struct CmeansWorkload {
  std::size_t total_points = 200000;
  std::size_t dims = 100;
  int clusters = 10;
  int iterations = 300;  // calib::kTable3Iterations
  int nodes = 4;
};

/// Virtual elapsed seconds of the MPI + one-GPU-per-node implementation.
double cmeans_mpi_gpu(const CmeansWorkload& w, const core::NodeConfig& node);

/// Virtual elapsed seconds of the MPI + all-CPU-cores implementation
/// (two threads per core with hyper-threading, per the paper).
double cmeans_mpi_cpu(const CmeansWorkload& w, const core::NodeConfig& node);

/// Virtual elapsed seconds of the Mahout-on-Hadoop implementation.
double cmeans_mahout(const CmeansWorkload& w);

/// *Wall-clock* reference for the host thread pool: one real C-means map
/// sweep (Eq 13 weights + Eq 14 partial sums over all points) executed by
/// `threads` raw std::threads over a fixed static split — the paper's
/// "one pthread per CPU core" CPU-daemon structure with no pool, no
/// stealing, no fixed chunking. bench_ablation_host_threads compares
/// exec::ThreadPool against this to price the pool's determinism
/// machinery. The caller must configure the process pool to one thread
/// while timing this, or each raw thread re-enters the pool. Returns the
/// summed J_m objective so the work cannot be optimized away.
double cmeans_raw_thread_map(const linalg::MatrixD& points,
                             const linalg::MatrixD& centers,
                             double fuzziness, int threads);

}  // namespace prs::baselines
