// NUMA-aware host execution, layer 1: the topology model.
//
// The paper's CPU side assumes the host delivers its full aggregate memory
// bandwidth; once the SIMD kernels saturate a single socket, cross-socket
// traffic becomes the next wall. This header models the host's socket
// layout and turns it into the three *scheduling decisions* the thread
// pool consumes:
//
//   * the lane -> socket map (which worker lanes form a socket group);
//   * the per-lane steal order (steal within your socket before crossing);
//   * the prefault plan (which lane first-touches which byte extent, so
//     pages land on the socket that will process them).
//
// Every decision is a pure function of (lane count, Topology) — and the
// Topology itself can be injected synthetically (set_topology /
// PRS_NUMA_TOPOLOGY), so single-socket CI runners can assert 2- and
// 4-socket behaviour exactly (tests/numa_test.cpp). Real discovery reads
// /sys/devices/system/node/node*/cpulist filtered by sched_getaffinity;
// when sysfs is absent the host degrades to one socket and NUMA mode
// becomes a no-op (clean fallback).
//
// Determinism: none of this changes *what* is computed. The pool's
// determinism contract (chunk decomposition + fixed combine order,
// DESIGN.md §4f) already guarantees byte-identical results regardless of
// which lane runs which chunk, so affinity, steal order and placement are
// pure placement decisions — PRS_NUMA=on/off and any topology produce the
// same bytes (swept in tests/numa_test.cpp and bench_ablation_numa).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace prs::numa {

/// The host's socket layout: one sorted CPU-id list per socket (sysfs
/// "NUMA node" granularity — the unit that shares a memory controller).
struct Topology {
  /// socket -> sorted CPU ids. Never empty after validate(); sockets with
  /// no allowed CPUs are dropped at discovery/parse time.
  std::vector<std::vector<int>> sockets;

  /// True only for the discovered host topology: CPU ids are valid
  /// arguments for thread affinity on this machine. Synthetic topologies
  /// (set_topology, PRS_NUMA_TOPOLOGY, parse, uniform) are never pinnable
  /// — their CPU ids describe an imaginary host.
  bool real = false;

  int socket_count() const { return static_cast<int>(sockets.size()); }
  int cpu_count() const;

  /// Synthetic `sockets` x `cpus_per_socket` layout with CPU ids numbered
  /// contiguously socket by socket (socket s owns [s*c, (s+1)*c)).
  static Topology uniform(int sockets, int cpus_per_socket);

  /// Parses a synthetic-topology spec (the PRS_NUMA_TOPOLOGY grammar):
  ///   "2x4"        — 2 sockets x 4 CPUs (uniform);
  ///   "0-3;4-7,12" — explicit per-socket CPU lists, ';'-separated,
  ///                  each in sysfs cpulist syntax (ranges + commas).
  /// Throws prs::InvalidArgument on malformed or empty specs.
  static Topology parse(const std::string& spec);

  /// "2 socket(s), cpus 4+4" — for status lines and error messages.
  std::string summary() const;

  /// Throws prs::InvalidArgument on empty sockets, empty groups,
  /// negative or duplicate CPU ids.
  void validate() const;

  /// Structural equality — the pool compares against the topology its
  /// current lane map was built from to detect injection between jobs.
  friend bool operator==(const Topology& a, const Topology& b) {
    return a.real == b.real && a.sockets == b.sockets;
  }
  friend bool operator!=(const Topology& a, const Topology& b) {
    return !(a == b);
  }
};

/// Parses one sysfs-style cpulist ("0-3,8,10-11") into sorted CPU ids.
/// Exposed for tests; throws prs::InvalidArgument on malformed input.
std::vector<int> parse_cpulist(const std::string& list);

/// Reads the real host layout: /sys/devices/system/node/node*/cpulist
/// intersected with this process's CPU affinity mask. Falls back to one
/// socket holding every allowed CPU when sysfs is unavailable (non-Linux,
/// containers without /sys). The result has real = true.
Topology discover();

/// The topology every scheduling decision routes through:
/// set_topology override > PRS_NUMA_TOPOLOGY > discover(). Returned by
/// value: injection must never invalidate a map a caller already built.
Topology active_topology();

/// Injects a synthetic topology (tests, what-if benches). Marks it
/// real = false, so the pool will not attempt pinning. Call before the
/// pool's workers (re)start — like the SIMD overrides, switching while
/// kernels are in flight is not supported.
void set_topology(Topology topo);
void clear_topology_override();

/// NUMA mode: set_enabled override > PRS_NUMA env (1/true/on/yes or
/// 0/false/off/no; anything else throws) > off. Off is the default: the
/// pool keeps its flat round-robin steal order and no pinning, exactly
/// the pre-NUMA behaviour.
bool enabled();
void set_enabled(bool on);
void clear_enabled_override();

/// RAII enablement override that restores the *previous* override state
/// (set, cleared, or absent) on destruction — used by the job runner to
/// honour JobConfig::host_numa for exactly one job.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on);
  ~ScopedEnable();
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  int prev_;
};

/// The thread pool's per-lane placement decisions, derived once per
/// worker generation from (lane count, Topology). Pure data — building it
/// touches no threads, so tests assert it for any synthetic layout.
struct LaneMap {
  /// lane -> socket group. Lanes are assigned to sockets in contiguous
  /// blocks proportional to each socket's CPU count (largest-remainder
  /// free: block boundaries are round(lanes * cpu_prefix / cpus)).
  std::vector<int> socket_of;
  /// lane -> CPU id to pin the lane's worker to (round-robin within the
  /// socket's CPU list), or -1 when the topology is not pinnable.
  std::vector<int> cpu_of;
  /// lane -> complete victim probe order, self first: own lane, then the
  /// rest of the own socket group in ascending wrap-around order, then
  /// remote sockets in ascending wrap-around order (each group's lanes
  /// ascending). Every lane appears exactly once.
  std::vector<std::vector<int>> probe_order;
  /// Number of socket groups that received at least one lane.
  int sockets = 1;
  /// True when cpu_of carries real, pinnable CPU ids.
  bool pin = false;

  int lanes() const { return static_cast<int>(socket_of.size()); }
};

/// NUMA-aware lane map for `lanes` worker lanes over `topo`.
LaneMap build_lane_map(int lanes, const Topology& topo);

/// The pre-NUMA behaviour as a LaneMap: one socket, probe order
/// (lane + k) % lanes, no pinning. Used when NUMA mode is off so the
/// pool has exactly one code path.
LaneMap flat_lane_map(int lanes);

/// One extent of a prefault plan: lane `lane` (on socket `socket`)
/// first-touches bytes [begin, end) of the buffer.
struct PrefaultExtent {
  std::size_t begin = 0;
  std::size_t end = 0;
  int lane = 0;
  int socket = 0;
};

/// Splits [0, bytes) into one page-aligned extent per lane — the same
/// balanced contiguous split the pool hands its lanes — so the lane that
/// will process a region is the lane that faults its pages in. Pure
/// function of (bytes, lanes, topo); executed by
/// exec::prefault_first_touch via a no-steal pool job.
std::vector<PrefaultExtent> plan_prefault(std::size_t bytes, int lanes,
                                          const Topology& topo);

/// The page granularity plan_prefault aligns extents to.
inline constexpr std::size_t kPrefaultPageBytes = 4096;

}  // namespace prs::numa
