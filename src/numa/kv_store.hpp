// Metis-style per-lane intermediate kv-store for the shuffle phase.
//
// The Metis MapReduce runtime keeps one hash store per core: each mapper
// writes only its own store — no locks, no cache-line ping-pong, and with
// NUMA first-touch the store's pages live on the writer's socket. The
// shuffle then merges the per-core stores in a *fixed* order. This module
// is that design for wordcount's word->count shuffle:
//
//   * LaneKvStore — open-addressed, linear-probe string->long hash table.
//     Single-writer by construction: lane L owns store L and is the only
//     thread that may call add() on it (enforced by the pool's chunking,
//     checked under TSan in CI). Growing reallocates from the owner lane's
//     thread, so rehashed pages are first-touched on the owner's socket.
//
//   * merge_lane_stores — folds stores[0..n) into one sorted std::map in
//     ascending lane order. Counts are integers and addition over them is
//     associative and commutative, so *any* distribution of words across
//     lanes merges to the same bytes; the fixed order makes the procedure
//     (not just the result) deterministic. This is the determinism
//     argument of DESIGN.md §4k: byte-identical output at any thread
//     count, any topology, and NUMA on or off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace prs::numa {

/// FNV-1a 64-bit — cheap, dependency-free, and stable across platforms
/// (the store's iteration order must not leak into results anyway).
inline std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ull;
  }
  return h;
}

/// Open-addressed linear-probe hash store, single-writer lock-free.
/// Power-of-two capacity; grows at 70% load by doubling and rehashing
/// with the cached hash (keys are not re-scanned).
class LaneKvStore {
 public:
  /// `initial_slots` is rounded up to a power of two (minimum 8).
  explicit LaneKvStore(std::size_t initial_slots = 1024);

  /// Adds `delta` to `key`'s count, inserting the key on first sight.
  /// Owner-lane only — concurrent add() on one store is a data race.
  void add(std::string_view key, long delta);

  /// Distinct keys currently stored.
  std::size_t size() const { return size_; }
  /// Current slot count (power of two).
  std::size_t capacity() const { return slots_.size(); }
  /// Number of grow/rehash cycles since construction (test hook).
  std::size_t grow_count() const { return grows_; }

  /// Visits every (key, count) pair in unspecified (probe) order. The
  /// caller must impose its own order before results become external —
  /// merge_lane_stores does, by folding into a sorted map.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.used) fn(s.key, s.value);
    }
  }

 private:
  struct Slot {
    std::string key;
    std::uint64_t hash = 0;
    long value = 0;
    bool used = false;
  };

  void grow();

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t grows_ = 0;
};

/// Folds per-lane stores into one sorted map in ascending lane order.
/// Byte-identical to counting the same words in a single store (or a
/// single std::map) regardless of how words were distributed over lanes.
std::map<std::string, long> merge_lane_stores(
    const std::vector<LaneKvStore>& stores);

}  // namespace prs::numa
