#include "numa/kv_store.hpp"

#include <utility>

#include "common/error.hpp"

namespace prs::numa {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t cap = 8;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

LaneKvStore::LaneKvStore(std::size_t initial_slots) {
  slots_.resize(round_up_pow2(initial_slots));
}

void LaneKvStore::add(std::string_view key, long delta) {
  // Grow *before* inserting so the probe below always finds a free slot;
  // 70% load keeps linear-probe clusters short.
  if ((size_ + 1) * 10 >= slots_.size() * 7) grow();
  const std::uint64_t h = fnv1a(key);
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  while (true) {
    Slot& s = slots_[i];
    if (!s.used) {
      s.key.assign(key.data(), key.size());
      s.hash = h;
      s.value = delta;
      s.used = true;
      ++size_;
      return;
    }
    if (s.hash == h && s.key == key) {
      s.value += delta;
      return;
    }
    i = (i + 1) & mask;
  }
}

void LaneKvStore::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.clear();
  slots_.resize(old.size() * 2);
  const std::size_t mask = slots_.size() - 1;
  for (Slot& s : old) {
    if (!s.used) continue;
    std::size_t i = static_cast<std::size_t>(s.hash) & mask;
    while (slots_[i].used) i = (i + 1) & mask;
    slots_[i] = std::move(s);
  }
  ++grows_;
}

std::map<std::string, long> merge_lane_stores(
    const std::vector<LaneKvStore>& stores) {
  std::map<std::string, long> out;
  // Ascending lane order. Integer addition is associative+commutative, so
  // the order only fixes the *procedure*; the sorted map fixes the bytes.
  for (const LaneKvStore& store : stores) {
    store.for_each([&out](const std::string& key, long value) {
      out[key] += value;
    });
  }
  return out;
}

}  // namespace prs::numa
