#include "numa/topology.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <optional>
#include <set>
#include <thread>

#include "common/error.hpp"

#if defined(__linux__)
#include <sched.h>
#endif

namespace prs::numa {
namespace {

/// Programmatic overrides. The enablement override is an atomic int
/// (-1 none / 0 off / 1 on) like the SIMD overrides; the topology override
/// is guarded by a mutex because Topology is not trivially copyable.
std::atomic<int> g_enabled_override{-1};
std::mutex g_topology_mutex;
std::optional<Topology> g_topology_override;

bool env_flag(const char* name, bool fallback) {
  const char* e = std::getenv(name);
  if (e == nullptr || *e == '\0') return fallback;
  const std::string v = e;
  if (v == "1" || v == "true" || v == "on" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "off" || v == "no") return false;
  throw InvalidArgument(std::string(name) + "=" + v +
                        " (expected on/off/1/0/true/false/yes/no)");
}

/// PRS_NUMA resolved once; mid-process env flips are not a supported way
/// to switch modes — use set_enabled, as the CLI does.
bool env_enabled() {
  static const bool cached = env_flag("PRS_NUMA", false);
  return cached;
}

/// PRS_NUMA_TOPOLOGY > discover(), resolved once.
const Topology& env_or_discovered() {
  static const Topology cached = [] {
    const char* e = std::getenv("PRS_NUMA_TOPOLOGY");
    if (e != nullptr && *e != '\0') return Topology::parse(e);
    return discover();
  }();
  return cached;
}

#if defined(__linux__)
/// CPUs this process may run on; empty mask means "no restriction known".
std::set<int> affinity_mask() {
  std::set<int> allowed;
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
      if (CPU_ISSET(cpu, &mask)) allowed.insert(cpu);
    }
  }
  return allowed;
}
#endif

}  // namespace

int Topology::cpu_count() const {
  std::size_t n = 0;
  for (const auto& group : sockets) n += group.size();
  return static_cast<int>(n);
}

Topology Topology::uniform(int socket_count, int cpus_per_socket) {
  PRS_REQUIRE(socket_count >= 1 && cpus_per_socket >= 1,
              "synthetic topology needs >= 1 socket and >= 1 cpu/socket");
  Topology t;
  int cpu = 0;
  for (int s = 0; s < socket_count; ++s) {
    std::vector<int> group;
    for (int c = 0; c < cpus_per_socket; ++c) group.push_back(cpu++);
    t.sockets.push_back(std::move(group));
  }
  return t;
}

std::vector<int> parse_cpulist(const std::string& list) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string item = list.substr(pos, comma - pos);
    const std::size_t dash = item.find('-');
    try {
      std::size_t used = 0;
      if (dash == std::string::npos) {
        const int cpu = std::stoi(item, &used);
        PRS_REQUIRE(used == item.size() && cpu >= 0, "bad cpu id");
        cpus.push_back(cpu);
      } else {
        const int lo = std::stoi(item.substr(0, dash), &used);
        PRS_REQUIRE(used == dash && lo >= 0, "bad range start");
        const std::string hi_s = item.substr(dash + 1);
        const int hi = std::stoi(hi_s, &used);
        PRS_REQUIRE(used == hi_s.size() && hi >= lo, "bad range end");
        for (int cpu = lo; cpu <= hi; ++cpu) cpus.push_back(cpu);
      }
    } catch (const prs::Error&) {
      throw InvalidArgument("malformed cpulist: \"" + list + "\"");
    } catch (...) {
      throw InvalidArgument("malformed cpulist: \"" + list + "\"");
    }
    pos = comma + 1;
  }
  if (cpus.empty()) {
    throw InvalidArgument("empty cpulist: \"" + list + "\"");
  }
  std::sort(cpus.begin(), cpus.end());
  return cpus;
}

Topology Topology::parse(const std::string& spec) {
  PRS_REQUIRE(!spec.empty(), "empty topology spec");
  Topology t;
  // "SxC" uniform shorthand: exactly one 'x', both sides integers.
  const std::size_t x = spec.find('x');
  if (x != std::string::npos && spec.find('x', x + 1) == std::string::npos &&
      spec.find(';') == std::string::npos &&
      spec.find(',') == std::string::npos &&
      spec.find('-') == std::string::npos) {
    try {
      std::size_t used = 0;
      const int s = std::stoi(spec.substr(0, x), &used);
      PRS_REQUIRE(used == x, "bad socket count");
      const std::string c_s = spec.substr(x + 1);
      const int c = std::stoi(c_s, &used);
      PRS_REQUIRE(used == c_s.size(), "bad cpu count");
      return uniform(s, c);
    } catch (const prs::Error&) {
      throw InvalidArgument("malformed topology spec: \"" + spec +
                            "\" (want \"SxC\" or \"list;list;...\")");
    } catch (...) {
      throw InvalidArgument("malformed topology spec: \"" + spec +
                            "\" (want \"SxC\" or \"list;list;...\")");
    }
  }
  // Explicit ';'-separated cpulists.
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    t.sockets.push_back(parse_cpulist(spec.substr(pos, semi - pos)));
    pos = semi + 1;
    if (semi == spec.size()) break;
  }
  t.validate();
  return t;
}

std::string Topology::summary() const {
  std::string out = std::to_string(socket_count()) + " socket(s), cpus ";
  for (std::size_t s = 0; s < sockets.size(); ++s) {
    if (s > 0) out += '+';
    out += std::to_string(sockets[s].size());
  }
  out += real ? " (host)" : " (synthetic)";
  return out;
}

void Topology::validate() const {
  PRS_REQUIRE(!sockets.empty(), "topology needs >= 1 socket");
  std::set<int> seen;
  for (const auto& group : sockets) {
    PRS_REQUIRE(!group.empty(), "topology socket with no cpus");
    for (const int cpu : group) {
      PRS_REQUIRE(cpu >= 0, "negative cpu id in topology");
      PRS_REQUIRE(seen.insert(cpu).second,
                  "cpu " + std::to_string(cpu) +
                      " appears in two topology sockets");
    }
  }
}

Topology discover() {
  Topology t;
  t.real = true;
#if defined(__linux__)
  const std::set<int> allowed = affinity_mask();
  // Node numbering may have gaps (offlined nodes); scan a fixed window
  // instead of stopping at the first missing directory.
  for (int node = 0; node < 256; ++node) {
    std::ifstream f("/sys/devices/system/node/node" + std::to_string(node) +
                    "/cpulist");
    if (!f.is_open()) continue;
    std::string line;
    std::getline(f, line);
    if (line.empty()) continue;
    std::vector<int> cpus;
    try {
      cpus = parse_cpulist(line);
    } catch (const prs::Error&) {
      continue;  // unparsable sysfs entry: skip the node, keep the rest
    }
    if (!allowed.empty()) {
      std::vector<int> kept;
      for (const int cpu : cpus) {
        if (allowed.count(cpu) > 0) kept.push_back(cpu);
      }
      cpus = std::move(kept);
    }
    if (!cpus.empty()) t.sockets.push_back(std::move(cpus));
  }
  if (t.sockets.empty() && !allowed.empty()) {
    // No sysfs NUMA info: one socket holding every allowed CPU.
    t.sockets.emplace_back(allowed.begin(), allowed.end());
  }
#endif
  if (t.sockets.empty()) {
    unsigned n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
    std::vector<int> group;
    for (unsigned cpu = 0; cpu < n; ++cpu) {
      group.push_back(static_cast<int>(cpu));
    }
    t.sockets.push_back(std::move(group));
  }
  return t;
}

Topology active_topology() {
  {
    std::lock_guard<std::mutex> lock(g_topology_mutex);
    if (g_topology_override.has_value()) return *g_topology_override;
  }
  return env_or_discovered();
}

void set_topology(Topology topo) {
  topo.validate();
  topo.real = false;  // injected layouts are never pinnable
  std::lock_guard<std::mutex> lock(g_topology_mutex);
  g_topology_override = std::move(topo);
}

void clear_topology_override() {
  std::lock_guard<std::mutex> lock(g_topology_mutex);
  g_topology_override.reset();
}

bool enabled() {
  const int forced = g_enabled_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced == 1;
  return env_enabled();
}

void set_enabled(bool on) {
  g_enabled_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

void clear_enabled_override() {
  g_enabled_override.store(-1, std::memory_order_relaxed);
}

ScopedEnable::ScopedEnable(bool on)
    : prev_(g_enabled_override.load(std::memory_order_relaxed)) {
  set_enabled(on);
}

ScopedEnable::~ScopedEnable() {
  g_enabled_override.store(prev_, std::memory_order_relaxed);
}

LaneMap build_lane_map(int lanes, const Topology& topo) {
  PRS_REQUIRE(lanes >= 1, "lane map needs >= 1 lane");
  topo.validate();
  LaneMap m;
  m.socket_of.resize(static_cast<std::size_t>(lanes));
  m.cpu_of.assign(static_cast<std::size_t>(lanes), -1);
  m.pin = topo.real;

  // Contiguous lane blocks proportional to each socket's CPU count:
  // boundary after socket s = round(lanes * cpus(0..s) / cpus(total)).
  // Cheaper sockets may end up with zero lanes when lanes < sockets.
  const double total = static_cast<double>(topo.cpu_count());
  std::vector<std::vector<int>> groups(topo.sockets.size());
  std::size_t cpu_prefix = 0;
  int lane = 0;
  for (std::size_t s = 0; s < topo.sockets.size(); ++s) {
    cpu_prefix += topo.sockets[s].size();
    const int boundary = static_cast<int>(
        static_cast<double>(lanes) * static_cast<double>(cpu_prefix) / total +
        0.5);
    for (int j = 0; lane < boundary && lane < lanes; ++lane, ++j) {
      m.socket_of[static_cast<std::size_t>(lane)] = static_cast<int>(s);
      if (topo.real) {
        const auto& cpus = topo.sockets[s];
        m.cpu_of[static_cast<std::size_t>(lane)] =
            cpus[static_cast<std::size_t>(j) % cpus.size()];
      }
      groups[s].push_back(lane);
    }
  }
  // Rounding never leaves lanes unassigned (the last boundary is exactly
  // `lanes`), but guard anyway: spill stragglers onto the last socket.
  for (; lane < lanes; ++lane) {
    const auto last = topo.sockets.size() - 1;
    m.socket_of[static_cast<std::size_t>(lane)] = static_cast<int>(last);
    groups[last].push_back(lane);
  }
  for (const auto& g : groups) {
    if (!g.empty()) ++m.sockets;
  }
  --m.sockets;  // initialised to 1 above; count populated groups exactly
  if (m.sockets < 1) m.sockets = 1;

  // Probe order: own lane, rest of own socket (ascending wrap-around from
  // self), then remote sockets ascending wrap-around from own socket + 1,
  // each remote group's lanes in ascending order.
  m.probe_order.resize(static_cast<std::size_t>(lanes));
  const int n_sockets = static_cast<int>(topo.sockets.size());
  for (int l = 0; l < lanes; ++l) {
    auto& order = m.probe_order[static_cast<std::size_t>(l)];
    order.reserve(static_cast<std::size_t>(lanes));
    const int home = m.socket_of[static_cast<std::size_t>(l)];
    const auto& mine = groups[static_cast<std::size_t>(home)];
    const auto me = static_cast<std::size_t>(
        std::find(mine.begin(), mine.end(), l) - mine.begin());
    for (std::size_t k = 0; k < mine.size(); ++k) {
      order.push_back(mine[(me + k) % mine.size()]);
    }
    for (int ds = 1; ds < n_sockets; ++ds) {
      const auto s = static_cast<std::size_t>((home + ds) % n_sockets);
      for (const int victim : groups[s]) order.push_back(victim);
    }
  }
  return m;
}

LaneMap flat_lane_map(int lanes) {
  PRS_REQUIRE(lanes >= 1, "lane map needs >= 1 lane");
  LaneMap m;
  m.socket_of.assign(static_cast<std::size_t>(lanes), 0);
  m.cpu_of.assign(static_cast<std::size_t>(lanes), -1);
  m.sockets = 1;
  m.pin = false;
  m.probe_order.resize(static_cast<std::size_t>(lanes));
  for (int l = 0; l < lanes; ++l) {
    auto& order = m.probe_order[static_cast<std::size_t>(l)];
    for (int k = 0; k < lanes; ++k) order.push_back((l + k) % lanes);
  }
  return m;
}

std::vector<PrefaultExtent> plan_prefault(std::size_t bytes, int lanes,
                                          const Topology& topo) {
  PRS_REQUIRE(lanes >= 1, "prefault plan needs >= 1 lane");
  std::vector<PrefaultExtent> plan;
  if (bytes == 0) return plan;
  const LaneMap m = build_lane_map(lanes, topo);
  // Balanced contiguous split, boundaries rounded down to page multiples
  // so no page is split between two sockets (the faulting granularity).
  const auto n = static_cast<std::size_t>(lanes);
  std::size_t begin = 0;
  for (std::size_t w = 0; w < n && begin < bytes; ++w) {
    std::size_t end =
        w + 1 == n ? bytes : (bytes * (w + 1) / n) / kPrefaultPageBytes *
                                 kPrefaultPageBytes;
    if (end <= begin && w + 1 < n) continue;  // tiny buffer: later lane
    if (end <= begin) end = bytes;
    PrefaultExtent e;
    e.begin = begin;
    e.end = end;
    e.lane = static_cast<int>(w);
    e.socket = m.socket_of[w];
    plan.push_back(e);
    begin = end;
  }
  if (!plan.empty()) plan.back().end = bytes;
  return plan;
}

}  // namespace prs::numa
