#include "common/table.hpp"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace prs {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  PRS_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  PRS_REQUIRE(row.size() == header_.size(),
              "row arity must match header arity");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(width[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
  };
  emit_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TextTable::print() const { std::cout << to_string() << std::flush; }

}  // namespace prs
