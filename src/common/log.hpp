// Minimal leveled logger.
//
// The runtime emits scheduler decisions and device-daemon activity at Debug
// level; benches and examples run at Info. Logging is global and
// single-threaded by design: all runtime activity happens inside the
// deterministic discrete-event simulator loop.
#pragma once

#include <sstream>
#include <string>

namespace prs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one log line (with level prefix) to stderr if enabled.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace prs

#define PRS_LOG(level)                                  \
  if (static_cast<int>(level) < static_cast<int>(::prs::log_level())) { \
  } else                                                \
    ::prs::detail::LogLine(level)

#define PRS_DEBUG PRS_LOG(::prs::LogLevel::kDebug)
#define PRS_INFO PRS_LOG(::prs::LogLevel::kInfo)
#define PRS_WARN PRS_LOG(::prs::LogLevel::kWarn)
#define PRS_ERROR PRS_LOG(::prs::LogLevel::kError)
