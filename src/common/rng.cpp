#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace prs {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // Xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PRS_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  PRS_REQUIRE(n > 0, "uniform_index requires n > 0");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  // Avoid log(0).
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  PRS_REQUIRE(stddev >= 0.0, "normal stddev must be non-negative");
  return mean + stddev * normal();
}

Rng Rng::split(std::uint64_t salt) const {
  SplitMix64 sm(s_[0] ^ rotl(s_[3], 13) ^ (salt * 0x9e3779b97f4a7c15ull));
  return Rng(sm.next());
}

}  // namespace prs
