// Deterministic random number generation.
//
// All stochastic pieces of the library (data generators, dynamic-scheduler
// jitter, initial cluster centers) draw from these engines so that every
// test, example, and bench is bit-reproducible from a seed.
#pragma once

#include <cstdint>
#include <vector>

namespace prs {

/// SplitMix64 — tiny seeding/stream-splitting generator (Steele et al.).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high-quality PRNG (Blackman & Vigna). Satisfies the
/// UniformRandomBitGenerator concept so it plugs into <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Derives an independent child stream; children with distinct salts are
  /// statistically independent of the parent and of each other.
  Rng split(std::uint64_t salt) const;

  /// Fisher–Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace prs
