#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace prs {

void StatsAccumulator::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StatsAccumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double StatsAccumulator::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> xs, double q) {
  PRS_REQUIRE(!xs.empty(), "percentile of empty sample");
  PRS_REQUIRE(q >= 0.0 && q <= 100.0, "percentile q must be in [0, 100]");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double pos = q / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double relative_error(double a, double b, double eps) {
  return std::fabs(a - b) / std::max(std::fabs(b), eps);
}

}  // namespace prs
