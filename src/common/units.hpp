// Unit helpers: the simulation deals in seconds, bytes, and flops throughout.
// These constexpr factors and formatters keep magnitudes readable and prevent
// the classic GB-vs-GiB and Gflops-vs-flops slips in calibration code.
#pragma once

#include <cstdint>
#include <string>

namespace prs::units {

// Decimal (SI) scale factors — bandwidths and flop rates are quoted in SI
// units, matching vendor datasheets and the paper's roofline plots.
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

// Binary scale factors — memory capacities.
inline constexpr std::uint64_t kKiB = 1ull << 10;
inline constexpr std::uint64_t kMiB = 1ull << 20;
inline constexpr std::uint64_t kGiB = 1ull << 30;

/// Gigabytes-per-second to bytes-per-second.
constexpr double gb_per_s(double gb) { return gb * kGiga; }

/// Gigaflops to flops-per-second.
constexpr double gflops(double g) { return g * kGiga; }

/// Microseconds to seconds.
constexpr double usec(double us) { return us * 1e-6; }

/// Milliseconds to seconds.
constexpr double msec(double ms) { return ms * 1e-3; }

/// Formats a duration in seconds with an adaptive unit (ns/us/ms/s).
std::string format_time(double seconds);

/// Formats a byte count with an adaptive binary unit (B/KiB/MiB/GiB).
std::string format_bytes(double bytes);

/// Formats a rate in flops/s with an adaptive SI unit (flops/Kflops/...).
std::string format_flops(double flops_per_s);

/// Formats a bandwidth in bytes/s with an adaptive SI unit.
std::string format_bandwidth(double bytes_per_s);

}  // namespace prs::units
