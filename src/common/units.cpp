#include "common/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace prs::units {
namespace {

std::string format_scaled(double value, double base,
                          const std::array<const char*, 5>& suffixes) {
  double v = value;
  std::size_t i = 0;
  while (std::fabs(v) >= base && i + 1 < suffixes.size()) {
    v /= base;
    ++i;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g %s", v, suffixes[i]);
  return buf;
}

}  // namespace

std::string format_time(double seconds) {
  char buf[64];
  const double a = std::fabs(seconds);
  if (a < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.3g ns", seconds * 1e9);
  } else if (a < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3g us", seconds * 1e6);
  } else if (a < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3g ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g s", seconds);
  }
  return buf;
}

std::string format_bytes(double bytes) {
  return format_scaled(bytes, 1024.0, {"B", "KiB", "MiB", "GiB", "TiB"});
}

std::string format_flops(double flops_per_s) {
  return format_scaled(flops_per_s, 1000.0,
                       {"flop/s", "Kflop/s", "Mflop/s", "Gflop/s", "Tflop/s"});
}

std::string format_bandwidth(double bytes_per_s) {
  return format_scaled(bytes_per_s, 1000.0,
                       {"B/s", "KB/s", "MB/s", "GB/s", "TB/s"});
}

}  // namespace prs::units
