// ASCII table formatting for the benchmark harnesses.
//
// Every bench regenerates a table or figure from the paper; TextTable renders
// the same rows/columns the paper reports, aligned for terminal reading.
#pragma once

#include <string>
#include <vector>

namespace prs {

/// Column-aligned ASCII table with a header row and separator.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 4);

  /// Renders the table to a string, padding columns to the widest cell.
  std::string to_string() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace prs
