// Small statistics utilities used by benches and schedulers.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace prs {

/// Streaming accumulator: count / mean / variance (Welford) / min / max.
class StatsAccumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile of a sample (linear interpolation, q in [0, 100]).
/// Copies and sorts internally; intended for bench-sized vectors.
double percentile(std::vector<double> xs, double q);

/// Relative error |a - b| / max(|b|, eps). Used when comparing measured
/// values against the paper's reported numbers.
double relative_error(double a, double b, double eps = 1e-12);

}  // namespace prs
