#include "common/error.hpp"

#include <sstream>

namespace prs::detail {

void throw_check_failure(const char* kind, const char* expr, const char* file,
                         int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": " << kind << " failed: (" << expr << ")";
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "precondition") throw InvalidArgument(os.str());
  throw InternalError(os.str());
}

}  // namespace prs::detail
