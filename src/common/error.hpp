// Error handling primitives for the PRS library.
//
// The library uses exceptions for programming errors and unrecoverable
// conditions (per C++ Core Guidelines E.2): all throw sites funnel through
// prs::Error so callers can catch one type at the API boundary.
#pragma once

#include <stdexcept>
#include <string>

namespace prs {

/// Base exception for all errors raised by the PRS library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a caller violates an API precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Raised when an internal invariant is broken (library bug).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

/// Raised when a simulated resource is exhausted (e.g. GPU memory).
class ResourceExhausted : public Error {
 public:
  explicit ResourceExhausted(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg);
}  // namespace detail

}  // namespace prs

/// Precondition check: throws prs::InvalidArgument when `cond` is false.
#define PRS_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::prs::detail::throw_check_failure("precondition", #cond, __FILE__,   \
                                         __LINE__, (msg));                  \
    }                                                                       \
  } while (0)

/// Internal invariant check: throws prs::InternalError when `cond` is false.
#define PRS_CHECK(cond, msg)                                                \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::prs::detail::throw_check_failure("invariant", #cond, __FILE__,      \
                                         __LINE__, (msg));                  \
    }                                                                       \
  } while (0)
