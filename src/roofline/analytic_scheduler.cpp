#include "roofline/analytic_scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace prs::roofline {

WorkloadSplit WorkloadSplit::with_cpu_scale(double scale) const {
  PRS_REQUIRE(scale > 0.0, "CPU rate scale must be positive");
  WorkloadSplit out = *this;
  out.cpu_rate = cpu_rate * scale;
  // Eq (5)/(8) re-derived with the scaled Fc; regime classification keeps
  // the calibrated ridge comparison (it depends on intensities, not Fc).
  out.cpu_fraction = out.cpu_rate / (out.cpu_rate + out.gpu_rate);
  return out;
}

AnalyticScheduler::AnalyticScheduler(simdev::DeviceSpec cpu,
                                     simdev::DeviceSpec gpu)
    : cpu_(std::move(cpu)), gpu_(std::move(gpu)) {
  PRS_REQUIRE(cpu_.spec().kind == simdev::DeviceKind::kCpu,
              "first spec must be a CPU");
  PRS_REQUIRE(gpu_.spec().kind == simdev::DeviceKind::kGpu,
              "second spec must be a GPU");
}

WorkloadSplit AnalyticScheduler::workload_split(double ai_cpu, double ai_gpu,
                                                bool gpu_staged,
                                                int gpu_count) const {
  PRS_REQUIRE(ai_cpu > 0.0 && ai_gpu > 0.0,
              "arithmetic intensities must be positive");
  PRS_REQUIRE(gpu_count >= 1, "need at least one GPU for a split");

  // Eq (6): Fc = Ac * B_dram below the CPU ridge, Pc above.
  const double fc = cpu_.attainable_flops(ai_cpu);
  // Eq (7): staged GPUs pay DRAM + PCI-E serially; cached (iterative) data
  // uses the resident roofline (paper §IV.B: "the average arithmetic
  // intensity of C-means and GMM depends on the bandwidth of DRAM and peak
  // performance of GPU, rather than bandwidth of PCI-E bus"). Several
  // cards aggregate (each has its own PCI-E link and memory).
  const double fg = static_cast<double>(gpu_count) *
                    (gpu_staged ? gpu_.attainable_flops_staged(ai_gpu)
                                : gpu_.attainable_flops(ai_gpu));

  WorkloadSplit split;
  split.cpu_rate = fc;
  split.gpu_rate = fg;
  // Eq (5): balance Tc_p = Tg_p  =>  p = Fc / (Fc + Fg).
  split.cpu_fraction = fc / (fc + fg);

  const double acr = cpu_.ridge_point();
  const double agr =
      gpu_staged ? gpu_.ridge_point_staged() : gpu_.ridge_point();
  // Classify with the application's mean intensity, as the paper does.
  const double a = 0.5 * (ai_cpu + ai_gpu);
  if (a < acr) {
    split.regime = SplitRegime::kBelowCpuRidge;
  } else if (a < agr) {
    split.regime = SplitRegime::kBetweenRidges;
  } else {
    split.regime = SplitRegime::kAboveGpuRidge;
  }
  return split;
}

AnalyticScheduler::NetworkedSplit AnalyticScheduler::workload_split_networked(
    double ai_cpu, double ai_gpu, bool gpu_staged, int gpu_count,
    double network_bandwidth) const {
  PRS_REQUIRE(network_bandwidth > 0.0, "network bandwidth must be positive");
  NetworkedSplit out;
  out.split = workload_split(ai_cpu, ai_gpu, gpu_staged, gpu_count);
  // split.gpu_rate is already the gpu_count-aggregated Fg_total.
  out.compute_rate = out.split.cpu_rate + out.split.gpu_rate;
  // Streaming input over the link at B_net sustains at most A*B_net flop/s
  // (same derivation as the DRAM bound in Eq (6)).
  const double a = 0.5 * (ai_cpu + ai_gpu);
  out.network_rate = a * network_bandwidth;
  out.node_rate = std::min(out.compute_rate, out.network_rate);
  out.network_bound = out.network_rate < out.compute_rate;
  return out;
}

double AnalyticScheduler::overlap_percentage(double ai_gpu) const {
  PRS_REQUIRE(ai_gpu > 0.0, "arithmetic intensity must be positive");
  const auto& g = gpu_.spec();
  PRS_REQUIRE(g.pcie_bandwidth > 0.0, "overlap needs a PCI-E bandwidth");
  // Eq (9) with the block size cancelled: per byte of block,
  //   transfer cost  = 1/B_dram + 1/B_pcie
  //   compute cost   = Ag / Pg
  const double transfer = 1.0 / g.dram_bandwidth + 1.0 / g.pcie_bandwidth;
  const double compute = ai_gpu / g.peak_flops;
  return transfer / (transfer + compute);
}

std::optional<double> AnalyticScheduler::min_block_size(
    const AiOfBlock& ai_of_block, double lo_bytes, double hi_bytes) const {
  PRS_REQUIRE(ai_of_block != nullptr, "need an AI function");
  PRS_REQUIRE(lo_bytes > 0.0 && hi_bytes >= lo_bytes,
              "invalid block-size search range");
  const double target = gpu_.ridge_point_staged();  // Agr in Eq (11)

  if (ai_of_block(hi_bytes) < target) return std::nullopt;
  if (ai_of_block(lo_bytes) >= target) return lo_bytes;

  // Bisection on the monotone AI function: find the smallest Bs with
  // Fag(Bs) >= Agr, i.e. MinBs = Fag^{-1}(Agr).
  double lo = lo_bytes, hi = hi_bytes;
  for (int it = 0; it < 200 && (hi - lo) > 1.0; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (ai_of_block(mid) >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

int AnalyticScheduler::recommended_streams(double partition_bytes,
                                           const AiOfBlock& ai_of_block,
                                           double op_threshold) const {
  PRS_REQUIRE(partition_bytes > 0.0, "partition must be non-empty");
  PRS_REQUIRE(op_threshold > 0.0 && op_threshold < 1.0,
              "overlap threshold must be in (0, 1)");
  // Degenerate sub-byte partitions (tiny inputs after the CPU/GPU split)
  // cannot be usefully streamed.
  if (partition_bytes < 1.0) return 1;

  // Requirement 1 (§III.B.3.b): enough of the task time is data movement
  // for overlapping to pay off.
  const double op = overlap_percentage(ai_of_block(partition_bytes));
  if (op < op_threshold) return 1;

  // Requirement 2: blocks must still saturate the GPU, i.e. block size
  // >= MinBs; the stream count is how many MinBs blocks the partition
  // holds, capped by the hardware work queues.
  const auto min_bs = min_block_size(ai_of_block, 1.0, partition_bytes);
  if (!min_bs.has_value()) {
    // The app never saturates GPU peak; blocks only need to amortize launch
    // overhead, so allow as many streams as the hardware supports.
    return std::max(1, gpu_.spec().hardware_queues);
  }
  const int blocks = static_cast<int>(partition_bytes / *min_bs);
  return std::clamp(blocks, 1, std::max(1, gpu_.spec().hardware_queues));
}

int AnalyticScheduler::cpu_block_count(int cores, int multiplier) {
  PRS_REQUIRE(cores >= 1, "need at least one core");
  PRS_REQUIRE(multiplier >= 1, "multiplier must be >= 1");
  return cores * multiplier;
}

double AnalyticScheduler::rebalanced_fraction(double cpu_fraction,
                                              double cpu_time,
                                              double gpu_time) {
  PRS_REQUIRE(cpu_fraction > 0.0 && cpu_fraction < 1.0,
              "rebalancing needs both devices to have had work");
  PRS_REQUIRE(cpu_time > 0.0 && gpu_time > 0.0,
              "observed device times must be positive");
  const double cpu_rate = cpu_fraction / cpu_time;
  const double gpu_rate = (1.0 - cpu_fraction) / gpu_time;
  return cpu_rate / (cpu_rate + gpu_rate);
}

}  // namespace prs::roofline
