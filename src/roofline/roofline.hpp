// The roofline performance model (Williams et al.) specialized to the
// paper's Table 2 parameters: peak flops, DRAM bandwidth, and — for GPUs —
// PCI-E staging bandwidth.
//
// Two variants per the paper's Eq (6)/(7):
//   * resident: data already in the device's memory;
//         F = min(P, A * B_dram)
//   * staged (GPU only): input streams CPU memory -> PCI-E -> GPU DRAM, with
//     the serial-sum cost the paper uses:
//         A*S/F = S/B_dram + S/B_pcie   =>   F = A / (1/B_dram + 1/B_pcie)
//     capped at P. The ridge point is where the two regimes meet.
#pragma once

#include "simdev/device_spec.hpp"

namespace prs::roofline {

class RooflineModel {
 public:
  explicit RooflineModel(simdev::DeviceSpec spec);

  const simdev::DeviceSpec& spec() const { return spec_; }

  /// Attainable flop rate at arithmetic intensity `ai`, data resident in
  /// device memory: min(P, ai * B_dram).
  double attainable_flops(double ai) const;

  /// Attainable flop rate when input must be staged over PCI-E
  /// (Eq (7) first case, capped at peak). Requires a GPU spec.
  double attainable_flops_staged(double ai) const;

  /// Ridge point (flops/byte) for resident data: P / B_dram
  /// (Acr in Eq (6) for CPUs, the cached-data Agr for GPUs).
  double ridge_point() const;

  /// Ridge point with PCI-E staging: P * (1/B_dram + 1/B_pcie)
  /// (Agr in Eq (7)). Requires a GPU spec.
  double ridge_point_staged() const;

  /// Time to process `bytes` of input at arithmetic intensity `ai`
  /// (resident data): bytes * ai / attainable_flops(ai).
  double process_time(double ai, double bytes) const;

  /// Same with PCI-E staging.
  double process_time_staged(double ai, double bytes) const;

 private:
  simdev::DeviceSpec spec_;
};

}  // namespace prs::roofline
