#include "roofline/roofline.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace prs::roofline {

RooflineModel::RooflineModel(simdev::DeviceSpec spec) : spec_(std::move(spec)) {
  PRS_REQUIRE(spec_.peak_flops > 0.0, "peak flops must be positive");
  PRS_REQUIRE(spec_.dram_bandwidth > 0.0, "DRAM bandwidth must be positive");
}

double RooflineModel::attainable_flops(double ai) const {
  PRS_REQUIRE(ai > 0.0, "arithmetic intensity must be positive");
  return std::min(spec_.peak_flops, ai * spec_.dram_bandwidth);
}

double RooflineModel::attainable_flops_staged(double ai) const {
  PRS_REQUIRE(ai > 0.0, "arithmetic intensity must be positive");
  PRS_REQUIRE(spec_.pcie_bandwidth > 0.0,
              "staged roofline needs a PCI-E bandwidth (GPU spec)");
  // Serial-sum staging cost per byte: 1/B_dram + 1/B_pcie (paper Eq (7)).
  const double per_byte = 1.0 / spec_.dram_bandwidth +
                          1.0 / spec_.pcie_bandwidth;
  return std::min(spec_.peak_flops, ai / per_byte);
}

double RooflineModel::ridge_point() const {
  return spec_.peak_flops / spec_.dram_bandwidth;
}

double RooflineModel::ridge_point_staged() const {
  PRS_REQUIRE(spec_.pcie_bandwidth > 0.0,
              "staged ridge point needs a PCI-E bandwidth (GPU spec)");
  return spec_.peak_flops *
         (1.0 / spec_.dram_bandwidth + 1.0 / spec_.pcie_bandwidth);
}

double RooflineModel::process_time(double ai, double bytes) const {
  PRS_REQUIRE(bytes >= 0.0, "bytes must be non-negative");
  return bytes * ai / attainable_flops(ai);
}

double RooflineModel::process_time_staged(double ai, double bytes) const {
  PRS_REQUIRE(bytes >= 0.0, "bytes must be non-negative");
  return bytes * ai / attainable_flops_staged(ai);
}

}  // namespace prs::roofline
