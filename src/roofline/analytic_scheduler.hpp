// The paper's analytic scheduling model (its core contribution).
//
// From the CPU and GPU rooflines it derives, with no profiling runs:
//   * the optimal CPU workload fraction p (Eqs (1)-(8));
//   * the copy/compute overlap percentage op for CUDA streams (Eq (9));
//   * the minimal GPU block size MinBs that saturates the GPU (Eqs (10)-(11));
//   * task-granularity recommendations for both devices (§III.B.3.b).
//
// Note on Eq (8): the printed first case in the paper is dimensionally
// inconsistent; we implement the consistent derivation from Eqs (5)-(7)
// (Fc and Fg from the rooflines, p = Fc/(Fc+Fg)), which reproduces the
// paper's reported p values (see DESIGN.md "errata").
#pragma once

#include <functional>
#include <optional>

#include "roofline/roofline.hpp"
#include "simdev/device_spec.hpp"

namespace prs::roofline {

/// Which part of Eq (8) applied (for reporting and tests).
enum class SplitRegime {
  kBelowCpuRidge,   // A < Acr: both devices bandwidth-bound
  kBetweenRidges,   // Acr <= A < Agr: CPU at peak, GPU staging-bound
  kAboveGpuRidge,   // Agr <= A: both at peak, p = Pc / (Pc + Pg)
};

/// Result of the workload-distribution model.
struct WorkloadSplit {
  /// Fraction p of the input processed by the CPU (Eq (5)/(8)).
  double cpu_fraction = 0.0;
  /// Effective CPU rate Fc used in the derivation (flops/s).
  double cpu_rate = 0.0;
  /// Effective GPU rate Fg used in the derivation (flops/s).
  double gpu_rate = 0.0;
  SplitRegime regime = SplitRegime::kBelowCpuRidge;

  /// The same split with the CPU rate multiplied by `scale` and the Eq (8)
  /// fraction p = Fc/(Fc+Fg) re-derived. Feeds measured host vector
  /// throughput (e.g. simd::measure_host_speedup) back into the paper
  /// model without re-calibrating the roofline parameters.
  WorkloadSplit with_cpu_scale(double scale) const;
};

/// Arithmetic intensity of an application as a function of its block size
/// in bytes (the paper's Fag, Eq (10)). Must be monotone non-decreasing.
using AiOfBlock = std::function<double(double block_bytes)>;

class AnalyticScheduler {
 public:
  AnalyticScheduler(simdev::DeviceSpec cpu, simdev::DeviceSpec gpu);

  const RooflineModel& cpu_roofline() const { return cpu_; }
  const RooflineModel& gpu_roofline() const { return gpu_; }

  /// Eq (8) (corrected form): optimal CPU fraction for an application with
  /// arithmetic intensities `ai_cpu` (Ac) and `ai_gpu` (Ag).
  /// `gpu_staged` selects whether GPU input pays PCI-E staging every pass
  /// (true, e.g. single-pass GEMV) or is cached in device memory across
  /// iterations (false, e.g. C-means/GMM event data — paper §III.C.3).
  /// `gpu_count` extends the model to fat nodes with several GPU cards
  /// (Delta has two C2070s, Table 4): each card contributes its own Fg and
  /// its own PCI-E link, so Fg_total = gpu_count * Fg.
  WorkloadSplit workload_split(double ai_cpu, double ai_gpu, bool gpu_staged,
                               int gpu_count = 1) const;

  /// Convenience for apps with Ac ~= Ag (the common case, Eq (5)).
  WorkloadSplit workload_split(double ai, bool gpu_staged,
                               int gpu_count = 1) const {
    return workload_split(ai, ai, gpu_staged, gpu_count);
  }

  /// Future-work extension (a) of the paper: Eq (8) "can also be extended
  /// by considering the bandwidth of the network in order to schedule
  /// communication intensive tasks". When every pass pulls its input over
  /// the node's network link, the node-level rate is additionally capped by
  /// A * B_net; the CPU/GPU split inside the node is unchanged.
  struct NetworkedSplit {
    WorkloadSplit split;          // p between CPU and GPU (Eq (8))
    double compute_rate = 0.0;    // Fc + gpu_count * Fg (flops/s)
    double network_rate = 0.0;    // A * B_net (flops/s)
    double node_rate = 0.0;       // min of the two
    bool network_bound = false;   // network_rate < compute_rate
  };
  NetworkedSplit workload_split_networked(double ai_cpu, double ai_gpu,
                                          bool gpu_staged, int gpu_count,
                                          double network_bandwidth) const;

  /// Eq (9): fraction of a GPU task's total time spent on data movement —
  /// the share that CUDA streams can hide. Independent of block size for
  /// constant-AI kernels; pass Fag(Bs) for size-dependent kernels.
  double overlap_percentage(double ai_gpu) const;

  /// Eq (11): minimal block size (bytes) at which the application's
  /// arithmetic intensity reaches the GPU's staged ridge point, i.e. the
  /// smallest block saturating GPU peak. Searches [lo_bytes, hi_bytes] by
  /// bisection; nullopt when even hi_bytes does not reach the ridge
  /// (constant-AI apps below the ridge never saturate the GPU).
  std::optional<double> min_block_size(const AiOfBlock& ai_of_block,
                                       double lo_bytes, double hi_bytes) const;

  /// §III.B.3.b decision rule for multi-stream execution: use streams when
  /// the overlap percentage exceeds `op_threshold` AND the partition is at
  /// least two MinBs blocks. Returns the stream count (1 = no streaming),
  /// capped by the GPU's hardware queues.
  int recommended_streams(double partition_bytes, const AiOfBlock& ai_of_block,
                          double op_threshold = 0.2) const;

  /// The paper's CPU splitting pattern: #blocks = multiplier x cores, which
  /// balances load across cores with low scheduling overhead.
  static int cpu_block_count(int cores, int multiplier = 4);

  /// Feedback form of Eq (5): given the CPU fraction p a job actually ran
  /// with and the observed per-device completion times, the fraction p'
  /// that would have balanced them (Tc_p' == Tg_p'). With effective rates
  /// Rc = p/Tc and Rg = (1-p)/Tg, p' = Rc / (Rc + Rg). Policy helper for
  /// the adaptive scheduler (the paper's "p adjusted with runtime
  /// measurements" escape hatch).
  static double rebalanced_fraction(double cpu_fraction, double cpu_time,
                                    double gpu_time);

 private:
  RooflineModel cpu_;
  RooflineModel gpu_;
};

}  // namespace prs::roofline
