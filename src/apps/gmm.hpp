// Gaussian Mixture Model via Expectation-Maximization — paper §IV.A.2.
//
// The paper's GPU GMM (Pangborn's implementation) estimates theta = (pi,
// mu, R) for M clusters. We use diagonal covariances R_m: it keeps the
// per-point cost O(M*D), matching the paper's arithmetic-intensity formula
// AI = 11*M*D (Table 5), and is the standard choice for flow-cytometry
// scale data (documented substitution, DESIGN.md).
//
// Three forms as usual: serial reference, PRS spec, distributed run.
// Convergence: relative log-likelihood improvement below epsilon.
#pragma once

#include <memory>
#include <vector>

#include "core/cluster.hpp"
#include "core/iterative.hpp"
#include "core/mapreduce_spec.hpp"
#include "linalg/matrix.hpp"

namespace prs::apps {

struct GmmParams {
  int components = 5;       // M
  int max_iterations = 100;
  double epsilon = 1e-6;    // relative log-likelihood improvement
  double min_variance = 1e-6;
  std::uint64_t seed = 42;
};

struct GmmModel {
  std::vector<double> weights;  // pi_m
  linalg::MatrixD means;        // M x D
  linalg::MatrixD variances;    // M x D (diagonal covariances)
  double log_likelihood = 0.0;
  int iterations = 0;
};

GmmModel gmm_serial(const linalg::MatrixD& points, const GmmParams& params);

/// Per-point responsibilities under the model (E-step), for tests and
/// cluster assignment. Returns an N x M matrix.
linalg::MatrixD gmm_responsibilities(const linalg::MatrixD& points,
                                     const GmmModel& model);

double gmm_flops_per_point(int components, std::size_t dims);
double gmm_arithmetic_intensity(int components, std::size_t dims);

struct GmmState {
  const linalg::MatrixD* points = nullptr;
  GmmModel model;
  double min_variance = 1e-6;
};

/// Per-component partial: [resp sum, sum r*x (D), sum r*x^2 (D),
/// log-likelihood partial] — combine adds elementwise.
using GmmSpec = core::MapReduceSpec<int, std::vector<double>>;

GmmSpec gmm_spec(std::shared_ptr<GmmState> state, const GmmParams& params,
                 std::size_t dims);

/// Checkpoint codec over the iteration-carried state: the full model
/// (weights, means, variances, log-likelihood, iteration count).
ckpt::StateCodec gmm_state_codec(std::shared_ptr<GmmState> state);

GmmModel gmm_prs(core::Cluster& cluster, const linalg::MatrixD& points,
                 const GmmParams& params, const core::JobConfig& cfg,
                 core::JobStats* stats_out = nullptr,
                 const ckpt::CheckpointConfig* checkpoint = nullptr);

/// Paper-scale run in ExecutionMode::kModeled (no point matrix allocated);
/// always runs exactly params.max_iterations rounds.
core::JobStats gmm_prs_modeled(core::Cluster& cluster, std::size_t n_points,
                               std::size_t dims, const GmmParams& params,
                               core::JobConfig cfg);

}  // namespace prs::apps
