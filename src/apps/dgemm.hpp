// DGEMM (dense matrix-matrix multiply) — the paper's canonical
// high-arithmetic-intensity application (Figure 4's right edge; §III.B.3.b
// uses "BLAS3, whose arithmetic intensity is O(N)" as the motivating case
// for the MinBs block-size rule, Eqs (10)-(11)).
//
// Decomposition: C = A * B with row-block striping of A; B is replicated
// on every node (like GEMV's x vector). A map task owns a block of rows;
// its arithmetic intensity *depends on the block size* —
//     AI(R rows) = 2*R*N*K / (R*K + K*N + R*N)
// (read the A block and all of B, write the C block) — which is exactly
// the size-dependent Fag the analytic scheduler inverts to find MinBs and
// the stream count.
#pragma once

#include <memory>

#include "core/cluster.hpp"
#include "core/job_runner.hpp"
#include "core/mapreduce_spec.hpp"
#include "linalg/matrix.hpp"

namespace prs::apps {

/// AI of a row-block map task: `block_rows` rows of an (M x K) * (K x N)
/// product.
double dgemm_block_ai(double block_rows, std::size_t k, std::size_t n);

/// Total flops of the product.
double dgemm_flops(std::size_t m, std::size_t n, std::size_t k);

struct DgemmState {
  const linalg::MatrixD* a = nullptr;  // M x K
  const linalg::MatrixD* b = nullptr;  // K x N
};

/// Key = first row of the C block; value = the computed rows (row-major).
using DgemmSpec = core::MapReduceSpec<long, linalg::MatrixD>;

DgemmSpec dgemm_spec(std::shared_ptr<DgemmState> state, std::size_t k,
                     std::size_t n);

/// Distributed C = A * B; returns C (empty in modeled mode).
linalg::MatrixD dgemm_prs(core::Cluster& cluster, const linalg::MatrixD& a,
                          const linalg::MatrixD& b,
                          const core::JobConfig& cfg,
                          core::JobStats* stats_out = nullptr);

/// Paper-scale modeled run (no matrices allocated).
core::JobStats dgemm_prs_modeled(core::Cluster& cluster, std::size_t m,
                                 std::size_t n, std::size_t k,
                                 core::JobConfig cfg);

}  // namespace prs::apps
