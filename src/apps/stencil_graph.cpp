// Wavefront halo-graph stencil (apps/stencil.hpp::stencil_graph).
//
// The task-graph showcase shape: instead of one MapReduce round per Jacobi
// sweep (map barrier -> shuffle -> reduce -> gather -> host update ->
// broadcast), the grid's row blocks become long-lived graph nodes with
// pure halo dependencies:
//
//   block(j, b)  depends on  block(j-1, {b-1, b, b+1})   (data: halo rows)
//   block(j, b)  depends on  retire(j - depth)           (buffer window)
//
// Cross-rank halo neighbours are linked through explicit send -> recv node
// pairs, so the inter-node halo exchange is charged to the fabric and the
// receiving block waits for the wire — and because a recv node can only be
// dispatched after its send node completed, cancel_pending() at
// convergence can never strand a waiting receiver.
//
// Iterates land in depth+1 ping-pong grid buffers: iteration j reads
// buffers[j % K] and writes buffers[(j+1) % K] (K = depth+1). The neighbour
// chain makes block(j, b) transitively dependent on block(j-depth, b±1) —
// exactly the readers of the buffer it overwrites — so the window is safe
// without extra edges; retire(j - depth) bounds how far fast blocks run
// ahead of the convergence check.
//
// Convergence: retire(j) (a host node on the master) folds the iteration's
// block residuals in block order. max() over doubles is exact, and Jacobi
// writes every cell from the previous grid only, so grid bytes, residual
// and iteration count are identical to stencil_serial for ANY block
// decomposition, depth or host-thread count. A converged retire cancels
// all pending nodes; blocks already in flight drain into later buffers and
// their updates are simply never read (bounded by the window size).
//
// NOTE (GCC 12): all co_await sites follow the named-temporary rule
// documented in simtime/process.hpp.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "apps/stencil.hpp"
#include "common/error.hpp"
#include "core/job_graph.hpp"
#include "core/partitioner.hpp"
#include "core/pipeline.hpp"
#include "core/schedule_policy.hpp"
#include "graph/executor.hpp"
#include "graph/task_graph.hpp"

namespace prs::apps {
namespace {

/// Iterations per built graph: bounds graph memory for long runs and gives
/// convergence a hard cut point; the window barrier cost is one drained
/// graph per kChunk sweeps.
constexpr int kChunk = 32;

/// One row block of the decomposition, fixed across iterations.
struct HaloBlock {
  std::size_t r0 = 0, r1 = 0;  // interior-row range [r0, r1), 0-based
  int rank = 0;
  bool gpu = false;
  int card = 0;
  int stream = 0;
};

/// Convergence state shared by the retire nodes.
struct HaloBox {
  bool finished = false;
  int final_iter = -1;    // last counted iteration
  int iterations = 0;
  double residual = 0.0;
  graph::GraphExecutor* exec = nullptr;  // bound per window
};

/// CPU block: one roofline-timed task on the node's core pool.
sim::Process hg_cpu_block(core::Cluster* cluster, int rank,
                          simdev::Workload workload, double eff_compute,
                          double eff_memory, std::function<void()> body,
                          sim::Promise<sim::Unit> done) {
  simdev::CpuTask t;
  t.name = "stencil:halo:cpu";
  t.workload = workload;
  t.compute_efficiency = eff_compute;
  t.memory_efficiency = eff_memory;
  t.body = std::move(body);
  auto fut = cluster->node(rank).cpu().submit(std::move(t));
  co_await fut;
  done.set_value(sim::Unit{});
}

/// GPU block: halo rows in, kernel, updated rows back — all on the block's
/// stream, so other streams/cards keep computing beside the copies.
sim::Process hg_gpu_block(core::Cluster* cluster, int rank, int card,
                          int stream, simdev::Workload workload,
                          double eff_compute, double eff_memory,
                          double h2d_bytes, double d2h_bytes,
                          std::function<void()> body,
                          sim::Promise<sim::Unit> done) {
  simdev::Stream& s = cluster->node(rank).gpu(card).stream(stream);
  if (h2d_bytes > 0.0) s.memcpy_h2d(h2d_bytes);
  simdev::KernelDesc k;
  k.name = "stencil:halo:kernel";
  k.workload = workload;
  k.compute_efficiency = eff_compute;
  k.memory_efficiency = eff_memory;
  k.body = std::move(body);
  auto kf = s.launch(std::move(k));
  co_await kf;
  if (d2h_bytes > 0.0) {
    auto df = s.memcpy_d2h(d2h_bytes);
    co_await df;
  }
  done.set_value(sim::Unit{});
}

/// Receiving side of one cross-rank halo row; its graph dependency on the
/// send node guarantees the message is already in flight.
sim::Process hg_recv(core::Cluster* cluster, int rank, int src, int tag,
                     sim::Promise<sim::Unit> done) {
  auto r = cluster->fabric().comm(rank).recv(src, tag);
  (void)co_await r;
  done.set_value(sim::Unit{});
}

}  // namespace

StencilResult stencil_graph(core::Cluster& cluster,
                            const linalg::MatrixD& initial,
                            const StencilParams& params,
                            const core::JobConfig& cfg,
                            core::JobStats* stats_out) {
  PRS_REQUIRE(initial.rows() >= 3 && initial.cols() >= 3,
              "stencil needs at least a 3x3 grid");
  PRS_REQUIRE(params.max_iterations >= 1, "need at least one iteration");
  PRS_REQUIRE(cfg.mode == core::ExecutionMode::kFunctional,
              "the halo graph computes real grids (functional mode only)");
  PRS_REQUIRE(cfg.pipeline_depth >= 2,
              "the halo graph needs pipeline_depth >= 2 (buffer window)");
  auto& sim = cluster.simulator();
  const std::size_t cols = initial.cols();
  const std::size_t interior = initial.rows() - 2;
  const int nodes = cluster.size();
  const int depth = cfg.pipeline_depth;
  const int K = depth + 1;  // ping-pong buffers

  // Level-2 decision per node (same policy surface as the MapReduce path),
  // then a capability-weighted level-1 row split.
  std::unique_ptr<core::SchedulePolicy> owned_policy;
  core::SchedulePolicy* policy = cfg.policy;
  if (policy == nullptr) {
    owned_policy = core::make_policy(cfg.scheduling);
    policy = owned_policy.get();
  }
  PRS_REQUIRE(policy->dispatch() == core::SchedulingMode::kStatic,
              "the halo graph needs a static-dispatch policy");
  auto shape_state = std::make_shared<StencilState>();
  const StencilSpec spec = stencil_spec(shape_state, cols);
  const core::JobShape shape = core::detail::job_shape(spec);
  std::vector<double> capability(static_cast<std::size_t>(nodes), 0.0);
  std::vector<double> cpu_fraction(static_cast<std::size_t>(nodes), 1.0);
  for (int r = 0; r < nodes; ++r) {
    const core::NodeDecision d = policy->node_decision(cluster, shape, cfg, r);
    capability[static_cast<std::size_t>(r)] = d.capability;
    cpu_fraction[static_cast<std::size_t>(r)] = d.cpu_fraction;
  }
  const std::vector<core::InputSlice> shares =
      core::Partitioner::node_shares(interior, capability);

  // Block decomposition, ascending by row so index adjacency == halo
  // adjacency: each rank's share splits CPU-head/GPU-tail at its p, the
  // CPU part into two core-pool tasks, the GPU part into one block per
  // stream. Any decomposition yields the same grid — this one just keeps
  // every backend busy within each rank.
  std::vector<HaloBlock> blocks;
  for (int r = 0; r < nodes; ++r) {
    const auto rk = static_cast<std::size_t>(r);
    const core::InputSlice share = shares[rk];
    if (share.empty()) continue;
    const bool has_gpu = cfg.use_gpu && cluster.node(r).gpu_count() > 0;
    const double p = has_gpu ? cpu_fraction[rk] : 1.0;
    const auto [cpu_rows, gpu_rows] = share.split_at_fraction(p);
    for (const core::InputSlice& s : cpu_rows.blocks(2)) {
      if (s.empty()) continue;
      HaloBlock b;
      b.r0 = s.begin;
      b.r1 = s.end;
      b.rank = r;
      blocks.push_back(b);
    }
    if (!gpu_rows.empty() && has_gpu) {
      const int cards = cluster.node(r).gpu_count();
      const int streams = std::max(
          1, policy->gpu_streams(cluster, shape, cfg, r, share.size(),
                                 cpu_fraction[rk]));
      const auto n_gpu_blocks = static_cast<std::size_t>(cards * streams);
      std::size_t i = 0;
      for (const core::InputSlice& s : gpu_rows.blocks(n_gpu_blocks)) {
        if (s.empty()) continue;
        HaloBlock b;
        b.r0 = s.begin;
        b.r1 = s.end;
        b.rank = r;
        b.gpu = true;
        b.card = static_cast<int>(i % static_cast<std::size_t>(cards));
        b.stream = static_cast<int>((i / static_cast<std::size_t>(cards)) %
                                    static_cast<std::size_t>(streams));
        ++i;
        blocks.push_back(b);
      }
    }
  }
  const std::size_t B = blocks.size();
  PRS_CHECK(B > 0, "halo decomposition produced no blocks");

  // Ping-pong iterate buffers. Only the fixed boundary rows of slots
  // 1..K-1 are ever read before being written; copying the whole grid is
  // the simplest way to get them right.
  std::vector<linalg::MatrixD> bufs(static_cast<std::size_t>(K), initial);
  auto box = std::make_shared<HaloBox>();
  auto fail = std::make_shared<core::detail::GraphFailBox>();

  const double t0 = sim.now();
  const core::detail::ClusterCounters counters0 =
      core::detail::snapshot_counters(cluster);

  // Per-block roofline numbers (shared by CPU and GPU flavours).
  const double flops_per_row = stencil_flops_per_row(cols);
  const double ai = stencil_arithmetic_intensity();

  std::vector<std::vector<double>> residuals;
  int j0 = 0;
  while (!box->finished && j0 < params.max_iterations) {
    const int window = std::min(kChunk, params.max_iterations - j0);
    residuals.assign(static_cast<std::size_t>(window),
                     std::vector<double>(B, 0.0));
    graph::TaskGraph g("stencil:halo@" + std::to_string(j0));
    // node ids of the previous iteration's blocks / this window's retires
    std::vector<graph::NodeId> prev(B, graph::kNoNode);
    std::vector<graph::NodeId> retires;
    // prev_recv[b] = recv nodes feeding block b's next iteration
    std::vector<std::vector<graph::NodeId>> prev_recv(B);

    for (int jj = 0; jj < window; ++jj) {
      const int j = j0 + jj;
      std::vector<graph::NodeId> cur(B, graph::kNoNode);
      for (std::size_t b = 0; b < B; ++b) {
        const HaloBlock& hb = blocks[b];
        const std::string name = "i" + std::to_string(j) + ":b" +
                                 std::to_string(b) +
                                 (hb.gpu ? ":gpu" : ":cpu");
        const double rows = static_cast<double>(hb.r1 - hb.r0);
        simdev::Workload w;
        w.flops = rows * flops_per_row;
        w.mem_traffic = w.flops / ai;
        // The functional payload: relax this block's rows from the read
        // buffer into the write buffer and record the block residual.
        auto body = core::detail::graph_wrap_body(
            [bp = &bufs, rp = &residuals, j, jj, b, K, r0 = hb.r0,
             r1 = hb.r1] {
              const linalg::MatrixD& in =
                  (*bp)[static_cast<std::size_t>(j % K)];
              linalg::MatrixD& out =
                  (*bp)[static_cast<std::size_t>((j + 1) % K)];
              std::vector<double> rows_out;
              const double res =
                  stencil_detail::relax_rows(in, r0 + 1, r1 + 1, rows_out);
              const std::size_t c_n = in.cols();
              for (std::size_t r = r0; r < r1; ++r) {
                for (std::size_t c = 0; c < c_n; ++c) {
                  out(r + 1, c) = rows_out[(r - r0) * c_n + c];
                }
              }
              (*rp)[static_cast<std::size_t>(jj)][b] = res;
            },
            fail, name);
        graph::NodeId n;
        if (hb.gpu) {
          // Two halo rows in, the block's updated rows back out.
          const double h2d = 2.0 * spec.item_bytes;
          const double d2h = rows * spec.gpu_item_d2h_bytes;
          n = g.add_work(
              name, "kernel", hb.rank,
              [cl = &cluster, rank = hb.rank, card = hb.card,
               stream = hb.stream, w, ec = spec.efficiency.gpu_compute,
               em = spec.efficiency.gpu_memory, h2d, d2h,
               body](sim::Simulator& s, sim::Promise<sim::Unit> done) {
                (void)s;
                return hg_gpu_block(cl, rank, card, stream, w, ec, em, h2d,
                                    d2h, body, std::move(done));
              });
        } else {
          n = g.add_work(
              name, "cpu", hb.rank,
              [cl = &cluster, rank = hb.rank, w,
               ec = spec.efficiency.cpu_compute,
               em = spec.efficiency.cpu_memory,
               body](sim::Simulator& s, sim::Promise<sim::Unit> done) {
                (void)s;
                return hg_cpu_block(cl, rank, w, ec, em, body,
                                    std::move(done));
              });
        }
        if (jj > 0) {
          // Halo dependencies on the previous sweep: same-rank neighbours
          // by direct edge, cross-rank ones through their recv nodes.
          g.depend(n, prev[b]);
          if (b > 0 && blocks[b - 1].rank == hb.rank) {
            g.depend(n, prev[b - 1]);
          }
          if (b + 1 < B && blocks[b + 1].rank == hb.rank) {
            g.depend(n, prev[b + 1]);
          }
          for (const graph::NodeId rv : prev_recv[b]) g.depend(n, rv);
        }
        // Buffer window: never run more than `depth` sweeps ahead of the
        // convergence check.
        if (jj >= depth) {
          g.depend(n, retires[static_cast<std::size_t>(jj - depth)]);
        }
        cur[b] = n;
      }

      // Cross-rank halo exchange for the NEXT sweep: one row each way per
      // rank boundary. Tags cycle mod 2K — safely outside the in-flight
      // window — and encode the boundary and direction.
      for (auto& rv : prev_recv) rv.clear();
      for (std::size_t b = 0; b + 1 < B; ++b) {
        if (blocks[b].rank == blocks[b + 1].rank) continue;
        if (jj + 1 >= window) break;  // last sweep of the window: no readers
        const double bytes = spec.item_bytes;
        const int tag_base = 500 + (j % (2 * K)) * 64;
        for (int dir = 0; dir < 2; ++dir) {
          const std::size_t from = dir == 0 ? b : b + 1;
          const std::size_t to = dir == 0 ? b + 1 : b;
          const int src = blocks[from].rank;
          const int dst = blocks[to].rank;
          const int tag = tag_base + static_cast<int>(b) * 2 + dir;
          const std::string hn = "i" + std::to_string(j) + ":halo:b" +
                                 std::to_string(from) + ">b" +
                                 std::to_string(to);
          const graph::NodeId send = g.add_host(
              hn + ":send", "net", src,
              [cl = &cluster, src, dst, tag, bytes] {
                cl->fabric().comm(src).send(dst, tag,
                                            simnet::Message{bytes, {}});
              });
          g.depend(send, cur[from]);
          const graph::NodeId recv = g.add_work(
              hn + ":recv", "net", dst,
              [cl = &cluster, dst, src, tag](sim::Simulator& s,
                                             sim::Promise<sim::Unit> done) {
                (void)s;
                return hg_recv(cl, dst, src, tag, std::move(done));
              });
          g.depend(recv, send);
          prev_recv[to].push_back(recv);
        }
      }

      // Retire: fold the sweep's block residuals in block order on the
      // master and stop the wavefront once converged.
      const graph::NodeId retire = g.add_host(
          "i" + std::to_string(j) + ":retire", "host", 0,
          [box, rp = &residuals, jj, j,
           max_iterations = params.max_iterations, eps = params.epsilon] {
            if (box->finished) return;  // overrun sweep: ignored
            double res = 0.0;
            for (const double r : (*rp)[static_cast<std::size_t>(jj)]) {
              res = std::max(res, r);
            }
            box->residual = res;
            box->iterations = j + 1;
            box->final_iter = j;
            if (res < eps || j + 1 >= max_iterations) {
              box->finished = true;
              if (box->exec != nullptr) box->exec->cancel_pending();
            }
          });
      for (const graph::NodeId n : cur) g.depend(retire, n);
      retires.push_back(retire);
      prev = cur;
    }

    if (!cfg.graph_dump_path.empty() && j0 == 0) {
      core::detail::write_graph_dot(g, cfg.graph_dump_path);
    }
    graph::GraphExecutor exec(sim, g);
    fail->exec = &exec;
    box->exec = &exec;
    exec.start();
    try {
      sim.run();
    } catch (const Error&) {
      throw;
    } catch (const std::exception& e) {
      if (exec.failed()) {
        throw Error("task graph node '" + exec.failure_site() +
                    "' failed: " + e.what());
      }
      throw;
    }
    exec.rethrow_if_failed();
    box->exec = nullptr;
    fail->exec = nullptr;
    j0 += window;
  }

  PRS_CHECK(box->final_iter >= 0, "halo graph retired no sweep");
  StencilResult res;
  res.grid = bufs[static_cast<std::size_t>((box->final_iter + 1) % K)];
  res.residual = box->residual;
  res.iterations = box->iterations;
  if (stats_out != nullptr) {
    const core::detail::ClusterCounters counters1 =
        core::detail::snapshot_counters(cluster);
    core::JobStats s;
    s.elapsed = sim.now() - t0;
    s.cpu_busy = counters1.cpu_busy - counters0.cpu_busy;
    s.gpu_busy = counters1.gpu_busy - counters0.gpu_busy;
    s.cpu_flops = counters1.cpu_flops - counters0.cpu_flops;
    s.gpu_flops = counters1.gpu_flops - counters0.gpu_flops;
    s.pcie_bytes = counters1.pcie - counters0.pcie;
    s.network_bytes = counters1.net - counters0.net;
    s.map_tasks = static_cast<std::uint64_t>(B) *
                  static_cast<std::uint64_t>(box->iterations);
    s.iterations = box->iterations;
    *stats_out = s;
  }
  return res;
}

}  // namespace prs::apps
