#include "apps/cmeans.hpp"

#include <cmath>
#include <span>

#include "common/error.hpp"
#include "core/calibration.hpp"
#include "exec/parallel.hpp"
#include "exec/prefault.hpp"
#include "linalg/blas.hpp"
#include "simd/kernels.hpp"

namespace prs::apps {
namespace {

/// Host-pool grain for the per-point map loop: ~M*D*5 flops per point, so
/// 256 points amortize the chunk hand-off at the smallest paper shapes
/// while still splitting test-sized inputs across cores.
constexpr std::size_t kMapGrain = 256;

/// Membership weights u_ij^m of one point against all centers (Eq (13)).
/// Returns the per-cluster weights and accumulates the J_m contribution.
/// `ct` is the transposed center pack (ct[c*m + j] = centers(j, c)) so the
/// dispatched distance kernel reads contiguous lanes.
void fuzzy_weights(const double* x, const double* ct, std::size_t m,
                   std::size_t d, const simd::Kernels& kn, double fuzziness,
                   std::vector<double>& weights, double& objective) {
  weights.assign(m, 0.0);

  // Squared distances to every center.
  static thread_local std::vector<double> dist2;
  dist2.assign(m, 0.0);
  kn.dist2_block(x, ct, m, d, dist2.data());
  std::size_t hits = 0;
  for (std::size_t j = 0; j < m; ++j) {
    if (dist2[j] == 0.0) ++hits;
  }
  if (hits > 0) {
    // Point coincides with one or more centers (duplicated centers happen
    // with random initialization): the Eq (13) limit splits membership
    // equally across the tied centers, u_ij = 1/T each — not membership
    // 1.0 on whichever zero-distance center the scan saw last. The stored
    // weight is u^m for Eq (14); the J_m contribution is 0 either way.
    const double u = 1.0 / static_cast<double>(hits);
    const double w = std::pow(u, fuzziness);
    for (std::size_t j = 0; j < m; ++j) {
      if (dist2[j] == 0.0) weights[j] = w;
    }
    return;
  }

  // u_ij = 1 / sum_k (||x-c_j|| / ||x-c_k||)^(2/(m-1))   (Eq (13))
  // Using squared distances: ratio^(2/(m-1)) = (d2_j/d2_k)^(1/(m-1)).
  const double inv_exp = 1.0 / (fuzziness - 1.0);
  double denom_sum = 0.0;  // sum_k d2_k^(-1/(m-1))
  for (std::size_t k = 0; k < m; ++k) {
    denom_sum += std::pow(dist2[k], -inv_exp);
  }
  for (std::size_t j = 0; j < m; ++j) {
    const double u = std::pow(dist2[j], -inv_exp) / denom_sum;
    weights[j] = std::pow(u, fuzziness);       // u_ij^m for Eq (14)
    objective += weights[j] * dist2[j];        // Eq (12) contribution
  }
}

/// Serial accumulation of points [begin, end) into zero-initialized
/// per-cluster partials — the per-chunk body of cmeans_accumulate.
void accumulate_range(const linalg::MatrixD& points,
                      const linalg::MatrixD& centers, double fuzziness,
                      std::size_t begin, std::size_t end,
                      std::vector<std::vector<double>>& partials) {
  const std::size_t m = centers.rows();
  const std::size_t d = centers.cols();
  const simd::Kernels& kn = simd::active_kernels();
  static thread_local std::vector<double> ct;
  simd::pack_transposed(centers.row(0), m, d, ct);
  std::vector<double> weights;
  for (std::size_t i = begin; i < end; ++i) {
    double objective = 0.0;
    fuzzy_weights(points.row(i), ct.data(), m, d, kn, fuzziness, weights,
                  objective);
    for (std::size_t j = 0; j < m; ++j) {
      const double w = weights[j];
      if (w == 0.0) continue;
      auto& p = partials[j];
      const double* x = points.row(i);
      kn.axpy_acc(p.data(), x, w, d);
      p[d] += w;
    }
    // The objective is accounted on cluster 0's partial (summed globally).
    partials[0][d + 1] += objective;
  }
}

/// New centers from global partials (Eq (14)); returns max center movement.
double update_centers(linalg::MatrixD& centers,
                      const std::vector<std::vector<double>>& partials) {
  const std::size_t m = centers.rows();
  const std::size_t d = centers.cols();
  double max_move2 = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    const auto& p = partials[j];
    const double wsum = p[d];
    if (wsum <= 0.0) continue;  // empty cluster keeps its center
    double move2 = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double nc = p[c] / wsum;
      const double delta = nc - centers(j, c);
      move2 += delta * delta;
      centers(j, c) = nc;
    }
    max_move2 = std::max(max_move2, move2);
  }
  return std::sqrt(max_move2);
}

std::vector<int> hard_assignment(const linalg::MatrixD& points,
                                 const linalg::MatrixD& centers) {
  // argmax_j u_ij == argmin_j ||x_i - c_j|| for any fuzziness > 1.
  const std::size_t d = points.cols();
  const std::size_t m = centers.rows();
  const simd::Kernels& kn = simd::active_kernels();
  std::vector<double> ct;
  simd::pack_transposed(centers.row(0), m, d, ct);
  std::vector<double> dist2(m);
  std::vector<int> out(points.rows());
  for (std::size_t i = 0; i < points.rows(); ++i) {
    kn.dist2_block(points.row(i), ct.data(), m, d, dist2.data());
    double best = std::numeric_limits<double>::infinity();
    int arg = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (dist2[j] < best) {
        best = dist2[j];
        arg = static_cast<int>(j);
      }
    }
    out[i] = arg;
  }
  return out;
}

void validate_params(const linalg::MatrixD& points,
                     const CmeansParams& params) {
  PRS_REQUIRE(points.rows() > 0 && points.cols() > 0,
              "C-means needs a non-empty point set");
  PRS_REQUIRE(params.clusters >= 1, "need at least one cluster");
  PRS_REQUIRE(static_cast<std::size_t>(params.clusters) <= points.rows(),
              "more clusters than points");
  PRS_REQUIRE(params.fuzziness > 1.0, "fuzziness must exceed 1");
  PRS_REQUIRE(params.max_iterations >= 1, "need at least one iteration");
}

}  // namespace

void cmeans_accumulate(const linalg::MatrixD& points,
                       const linalg::MatrixD& centers, double fuzziness,
                       std::size_t begin, std::size_t end,
                       std::vector<std::vector<double>>& partials) {
  const std::size_t m = centers.rows();
  const std::size_t d = centers.cols();
  using Partials = std::vector<std::vector<double>>;
  if (begin >= end) {
    partials.assign(m, std::vector<double>(d + 2, 0.0));
    return;
  }
  // Fixed chunking + fixed-order tree combine (exec/parallel.hpp): the
  // same bytes come out for any host thread count.
  partials = exec::parallel_reduce(
      begin, end, kMapGrain, Partials{},
      [&](std::size_t b, std::size_t e, Partials acc) {
        acc.assign(m, std::vector<double>(d + 2, 0.0));
        accumulate_range(points, centers, fuzziness, b, e, acc);
        return acc;
      },
      [](Partials a, Partials b) {
        for (std::size_t j = 0; j < a.size(); ++j) {
          for (std::size_t c = 0; c < a[j].size(); ++c) a[j][c] += b[j][c];
        }
        return a;
      });
}

linalg::MatrixD initial_centers(const linalg::MatrixD& points, int clusters,
                                std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  // Distinct random indices (Floyd's algorithm keeps it O(M)).
  std::vector<std::size_t> picks;
  for (std::size_t j = n - static_cast<std::size_t>(clusters); j < n; ++j) {
    std::size_t t = rng.uniform_index(j + 1);
    if (std::find(picks.begin(), picks.end(), t) != picks.end()) t = j;
    picks.push_back(t);
  }
  linalg::MatrixD centers(static_cast<std::size_t>(clusters), d);
  for (std::size_t j = 0; j < picks.size(); ++j) {
    for (std::size_t c = 0; c < d; ++c) {
      centers(j, c) = points(picks[j], c);
    }
  }
  return centers;
}

CmeansResult cmeans_serial(const linalg::MatrixD& points,
                           const CmeansParams& params) {
  validate_params(points, params);
  CmeansResult res;
  res.centers = initial_centers(points, params.clusters, params.seed);

  std::vector<std::vector<double>> partials;
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    cmeans_accumulate(points, res.centers, params.fuzziness, 0,
                      points.rows(), partials);
    res.objective =
        partials[0][points.cols() + 1];
    const double move = update_centers(res.centers, partials);
    res.iterations = iter + 1;
    if (move < params.epsilon) break;
  }
  res.assignment = hard_assignment(points, res.centers);
  return res;
}

double cmeans_flops_per_point(int clusters, std::size_t dims) {
  // Paper convention: ~5 flops per cluster-dimension pair per point
  // (distances 3MD + weighted accumulation 2MD; the O(M^2)-free Eq (13)
  // form above matches it).
  return 5.0 * static_cast<double>(clusters) * static_cast<double>(dims);
}

double cmeans_arithmetic_intensity(int clusters) {
  // Table 5: AI(C-means) = 5 * M.
  return 5.0 * static_cast<double>(clusters);
}

CmeansSpec cmeans_spec(std::shared_ptr<CmeansState> state,
                       const CmeansParams& params, std::size_t dims) {
  PRS_REQUIRE(state != nullptr, "spec needs a state");
  CmeansSpec spec;
  spec.name = "cmeans";
  spec.cpu_map = [state](const core::InputSlice& s,
                         core::Emitter<int, std::vector<double>>& e) {
    std::vector<std::vector<double>> partials;
    cmeans_accumulate(*state->points, state->centers, state->fuzziness,
                      s.begin, s.end, partials);
    for (std::size_t j = 0; j < partials.size(); ++j) {
      e.emit(static_cast<int>(j), std::move(partials[j]));
    }
  };
  // The CUDA kernels compute the same partials (paper: source often
  // identical across backends).
  spec.gpu_map = spec.cpu_map;
  spec.modeled_map = [state](const core::InputSlice&,
                             core::Emitter<int, std::vector<double>>& e) {
    const std::size_t m = state->centers.rows();
    const std::size_t d = state->centers.cols();
    for (std::size_t j = 0; j < m; ++j) {
      e.emit(static_cast<int>(j), std::vector<double>(d + 2, 0.0));
    }
  };
  spec.combine = [](const std::vector<double>& a,
                    const std::vector<double>& b) {
    PRS_CHECK(a.size() == b.size(), "partial size mismatch");
    std::vector<double> out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
    return out;
  };

  spec.cpu_flops_per_item = cmeans_flops_per_point(params.clusters, dims);
  spec.gpu_flops_per_item = spec.cpu_flops_per_item;
  spec.ai_cpu = cmeans_arithmetic_intensity(params.clusters);
  spec.ai_gpu = spec.ai_cpu;
  spec.gpu_data_cached = true;  // event matrix cached in GPU memory (§IV.A.1)
  spec.item_bytes = static_cast<double>(dims);  // element-counted row
  spec.pair_bytes = static_cast<double>(dims + 2);
  spec.reduce_flops_per_pair = static_cast<double>(dims + 2);
  // Per-iteration membership rows (M elements per point) copied back from
  // the GPU — the PRS generality cost behind Table 3's PRS-vs-MPI gap; the
  // hand-written MPI/GPU baseline keeps them resident.
  spec.gpu_item_d2h_bytes = static_cast<double>(params.clusters);
  spec.efficiency = core::calib::kCmeans;
  return spec;
}

ckpt::StateCodec cmeans_state_codec(std::shared_ptr<CmeansState> state,
                                    double* objective, int* iterations) {
  ckpt::StateCodec codec;
  codec.tag = "cmeans";
  codec.encode = [state, objective, iterations](ckpt::Writer& w) {
    ckpt::put_matrix(w, state->centers);
    w.f64(state->fuzziness);
    w.f64(objective != nullptr ? *objective : 0.0);
    w.i32(iterations != nullptr ? *iterations : 0);
  };
  codec.decode = [state, objective, iterations](ckpt::Reader& r) {
    linalg::MatrixD centers;
    ckpt::get_matrix(r, centers);
    PRS_REQUIRE(centers.rows() == state->centers.rows() &&
                    centers.cols() == state->centers.cols(),
                "cmeans checkpoint centers shape does not match this run");
    const double fuzziness = r.f64();
    PRS_REQUIRE(fuzziness == state->fuzziness,
                "cmeans checkpoint was taken with a different fuzziness");
    state->centers = std::move(centers);
    const double obj = r.f64();
    const int iters = r.i32();
    if (objective != nullptr) *objective = obj;
    if (iterations != nullptr) *iterations = iters;
  };
  return codec;
}

CmeansResult cmeans_prs(core::Cluster& cluster, const linalg::MatrixD& points,
                        const CmeansParams& params,
                        const core::JobConfig& cfg,
                        core::JobStats* stats_out,
                        const ckpt::CheckpointConfig* checkpoint) {
  validate_params(points, params);
  const std::size_t d = points.cols();

  // NUMA mode: walk the points matrix from the lanes that will iterate
  // over it, so each socket's caches/TLBs are primed with its share
  // before the first accumulate pass (no-op when PRS_NUMA is off).
  exec::prefault_first_touch(points.data(),
                             points.rows() * points.cols() * sizeof(double));

  auto state = std::make_shared<CmeansState>();
  state->points = &points;
  state->centers = initial_centers(points, params.clusters, params.seed);
  state->fuzziness = params.fuzziness;
  CmeansSpec spec = cmeans_spec(state, params, d);

  CmeansResult res;
  auto on_iteration = [&](int iter,
                          const std::map<int, std::vector<double>>& out) {
    if (cfg.mode == core::ExecutionMode::kModeled) {
      return true;  // no numeric content to converge on
    }
    std::vector<std::vector<double>> partials(
        static_cast<std::size_t>(params.clusters));
    for (const auto& [k, v] : out) {
      partials[static_cast<std::size_t>(k)] = v;
    }
    res.objective = partials[0][d + 1];
    const double move = update_centers(state->centers, partials);
    res.iterations = iter + 1;
    return move >= params.epsilon;
  };

  const ckpt::StateCodec codec =
      cmeans_state_codec(state, &res.objective, &res.iterations);
  auto iterative = core::run_iterative<int, std::vector<double>>(
      cluster, spec, cfg, points.rows(), params.max_iterations, on_iteration,
      /*state_bytes=*/static_cast<double>(params.clusters) *
          static_cast<double>(d),
      checkpoint, checkpoint != nullptr ? &codec : nullptr);

  res.centers = state->centers;
  if (cfg.mode == core::ExecutionMode::kFunctional) {
    res.assignment = hard_assignment(points, res.centers);
  } else {
    res.iterations = iterative.iterations;
  }
  if (stats_out != nullptr) *stats_out = iterative.stats;
  return res;
}

core::JobStats cmeans_prs_modeled(core::Cluster& cluster,
                                  std::size_t n_points, std::size_t dims,
                                  const CmeansParams& params,
                                  core::JobConfig cfg) {
  PRS_REQUIRE(n_points > 0 && dims > 0, "modeled run needs a shape");
  cfg.mode = core::ExecutionMode::kModeled;
  auto state = std::make_shared<CmeansState>();
  state->points = nullptr;  // modeled_map never dereferences it
  state->centers = linalg::MatrixD(static_cast<std::size_t>(params.clusters),
                                   dims, 0.0);
  state->fuzziness = params.fuzziness;
  CmeansSpec spec = cmeans_spec(state, params, dims);

  auto iterative = core::run_iterative<int, std::vector<double>>(
      cluster, spec, cfg, n_points, params.max_iterations,
      [](int, const std::map<int, std::vector<double>>&) { return true; },
      static_cast<double>(params.clusters) * static_cast<double>(dims));
  return iterative.stats;
}

}  // namespace prs::apps
