#include "apps/stencil.hpp"

#include <cmath>

#include "common/error.hpp"
#include "core/calibration.hpp"
#include "exec/parallel.hpp"
#include "simd/kernels.hpp"

namespace prs::apps {
namespace {

/// Host-pool grain: one row is ~5*cols flops; 64 rows per chunk.
constexpr std::size_t kRowGrain = 64;

void validate_grid(const linalg::MatrixD& grid) {
  PRS_REQUIRE(grid.rows() >= 3 && grid.cols() >= 3,
              "stencil needs at least a 3x3 grid");
}

}  // namespace

namespace stencil_detail {

double relax_rows(const linalg::MatrixD& in, std::size_t begin,
                  std::size_t end, std::vector<double>& out) {
  const std::size_t cols = in.cols();
  out.assign((end - begin) * cols, 0.0);
  const simd::Kernels& kn = simd::active_kernels();
  // Jacobi reads only the previous grid: every output row is disjoint and
  // max() is exact, so the host-pool version is byte-identical to the
  // serial sweep for any thread count. The dispatched row kernel keeps the
  // ((up+down)+left)+right association of the scalar expression, and max
  // over non-negative |v - mid| is order-free, so vector rows match too.
  return exec::parallel_reduce(
      begin, end, kRowGrain, 0.0,
      [&](std::size_t rb, std::size_t re, double max_update) {
        for (std::size_t r = rb; r < re; ++r) {
          double* row_out = out.data() + (r - begin) * cols;
          // Boundary columns stay fixed.
          row_out[0] = in(r, 0);
          row_out[cols - 1] = in(r, cols - 1);
          const double row_max =
              kn.stencil_row(row_out, in.row(r), in.row(r - 1), in.row(r + 1),
                             cols);
          max_update = std::max(max_update, row_max);
        }
        return max_update;
      },
      [](double a, double b) { return std::max(a, b); });
}

}  // namespace stencil_detail

namespace {
using stencil_detail::relax_rows;
}  // namespace

double jacobi_step(const linalg::MatrixD& in, linalg::MatrixD& out) {
  validate_grid(in);
  PRS_REQUIRE(out.rows() == in.rows() && out.cols() == in.cols(),
              "output grid shape mismatch");
  out = in;  // boundaries copied
  std::vector<double> rows;
  const double residual = relax_rows(in, 1, in.rows() - 1, rows);
  for (std::size_t r = 1; r + 1 < in.rows(); ++r) {
    for (std::size_t c = 0; c < in.cols(); ++c) {
      out(r, c) = rows[(r - 1) * in.cols() + c];
    }
  }
  return residual;
}

StencilResult stencil_serial(const linalg::MatrixD& initial,
                             const StencilParams& params) {
  validate_grid(initial);
  PRS_REQUIRE(params.max_iterations >= 1, "need at least one iteration");
  StencilResult res;
  res.grid = initial;
  linalg::MatrixD next(initial.rows(), initial.cols());
  for (int it = 0; it < params.max_iterations; ++it) {
    res.residual = jacobi_step(res.grid, next);
    std::swap(res.grid, next);
    res.iterations = it + 1;
    if (res.residual < params.epsilon) break;
  }
  return res;
}

double stencil_flops_per_row(std::size_t cols) {
  // 3 adds + 1 multiply + 1 compare per interior cell.
  return 5.0 * static_cast<double>(cols);
}

double stencil_arithmetic_intensity() {
  // ~5 flops per touched element, halved by reading both the row and its
  // halos: element-counted AI ~ 2.5 — the paper's "middle range".
  return 2.5;
}

StencilSpec stencil_spec(std::shared_ptr<StencilState> state,
                         std::size_t cols) {
  PRS_REQUIRE(state != nullptr, "spec needs a state");
  StencilSpec spec;
  spec.name = "stencil";
  spec.cpu_map = [state](const core::InputSlice& s,
                         core::Emitter<long, std::vector<double>>& e) {
    // Items are interior rows: item i maps to grid row i + 1.
    std::vector<double> rows;
    const double residual =
        relax_rows(state->grid, s.begin + 1, s.end + 1, rows);
    rows.push_back(residual);  // block residual rides along
    e.emit(static_cast<long>(s.begin), std::move(rows));
  };
  spec.gpu_map = spec.cpu_map;
  spec.modeled_map = [](const core::InputSlice& s,
                        core::Emitter<long, std::vector<double>>& e) {
    e.emit(static_cast<long>(s.begin), std::vector<double>{0.0});
  };
  spec.combine = [](const std::vector<double>& a,
                    const std::vector<double>& b) {
    return a.size() >= b.size() ? a : b;  // unique keys: defensive
  };

  spec.cpu_flops_per_item = stencil_flops_per_row(cols);
  spec.gpu_flops_per_item = spec.cpu_flops_per_item;
  spec.ai_cpu = stencil_arithmetic_intensity();
  spec.ai_gpu = spec.ai_cpu;
  // The grid lives on the GPU across sweeps; halo rows move per iteration.
  spec.gpu_data_cached = true;
  spec.item_bytes = static_cast<double>(cols);
  spec.pair_bytes = static_cast<double>(cols);
  spec.gpu_item_d2h_bytes = static_cast<double>(cols);  // updated row back
  spec.reduce_flops_per_pair = 1.0;
  spec.efficiency = {0.5, 0.5, 0.5, 0.5};
  return spec;
}

ckpt::StateCodec stencil_state_codec(std::shared_ptr<StencilState> state,
                                     double* residual, int* iterations) {
  ckpt::StateCodec codec;
  codec.tag = "stencil";
  codec.encode = [state, residual, iterations](ckpt::Writer& w) {
    ckpt::put_matrix(w, state->grid);
    w.f64(residual != nullptr ? *residual : 0.0);
    w.i32(iterations != nullptr ? *iterations : 0);
  };
  codec.decode = [state, residual, iterations](ckpt::Reader& r) {
    linalg::MatrixD grid;
    ckpt::get_matrix(r, grid);
    PRS_REQUIRE(grid.rows() == state->grid.rows() &&
                    grid.cols() == state->grid.cols(),
                "stencil checkpoint grid shape does not match this run");
    state->grid = std::move(grid);
    const double res = r.f64();
    const int iters = r.i32();
    if (residual != nullptr) *residual = res;
    if (iterations != nullptr) *iterations = iters;
  };
  return codec;
}

StencilResult stencil_prs(core::Cluster& cluster,
                          const linalg::MatrixD& initial,
                          const StencilParams& params,
                          const core::JobConfig& cfg,
                          core::JobStats* stats_out,
                          const ckpt::CheckpointConfig* checkpoint) {
  validate_grid(initial);
  PRS_REQUIRE(params.max_iterations >= 1, "need at least one iteration");
  // The wavefront halo graph replaces the per-iteration MapReduce rounds
  // when the task-graph engine pipelines iterations. Fault injection and
  // checkpointing need the iterative driver's cut points, so they stay on
  // the stage path (as does modeled mode, whose map bodies are empty).
  if (cfg.engine == core::ExecEngine::kGraph && cfg.pipeline_depth > 1 &&
      cfg.mode == core::ExecutionMode::kFunctional &&
      cfg.faults == nullptr && checkpoint == nullptr) {
    return stencil_graph(cluster, initial, params, cfg, stats_out);
  }
  const std::size_t cols = initial.cols();
  const std::size_t interior_rows = initial.rows() - 2;

  auto state = std::make_shared<StencilState>();
  state->grid = initial;
  StencilSpec spec = stencil_spec(state, cols);

  StencilResult res;
  auto on_iteration =
      [&](int iter, const std::map<long, std::vector<double>>& out) {
        if (cfg.mode == core::ExecutionMode::kModeled) return true;
        double residual = 0.0;
        for (const auto& [start, rows] : out) {
          const std::size_t n_rows = (rows.size() - 1) / cols;
          residual = std::max(residual, rows.back());
          for (std::size_t r = 0; r < n_rows; ++r) {
            for (std::size_t c = 0; c < cols; ++c) {
              state->grid(static_cast<std::size_t>(start) + 1 + r, c) =
                  rows[r * cols + c];
            }
          }
        }
        res.residual = residual;
        res.iterations = iter + 1;
        return residual >= params.epsilon;
      };

  // Per-iteration exchange: two halo rows per block boundary; approximate
  // with 2 rows per node (the dominant inter-node traffic).
  const double halo_bytes = 2.0 * static_cast<double>(cols);
  const ckpt::StateCodec codec =
      stencil_state_codec(state, &res.residual, &res.iterations);
  auto iterative = core::run_iterative<long, std::vector<double>>(
      cluster, spec, cfg, interior_rows, params.max_iterations, on_iteration,
      halo_bytes, checkpoint, checkpoint != nullptr ? &codec : nullptr);

  res.grid = state->grid;
  if (cfg.mode == core::ExecutionMode::kModeled) {
    res.iterations = iterative.iterations;
  }
  if (stats_out != nullptr) *stats_out = iterative.stats;
  return res;
}

}  // namespace prs::apps
