#include "apps/gmm.hpp"

#include <cmath>
#include <numbers>
#include <span>

#include "apps/cmeans.hpp"  // initial_centers
#include "common/error.hpp"
#include "core/calibration.hpp"
#include "exec/parallel.hpp"
#include "simd/kernels.hpp"

namespace prs::apps {
namespace {

/// Host-pool grain: ~11*M*D flops per point (log/exp heavy) — 128 points
/// per chunk amortize the hand-off comfortably.
constexpr std::size_t kMapGrain = 128;

/// log N(x | mu_m, diag(var_m)) for one point/component (Eq (15), diagonal).
double log_gaussian(std::span<const double> x, const linalg::MatrixD& means,
                    const linalg::MatrixD& variances, std::size_t m) {
  const std::size_t d = means.cols();
  double quad = 0.0, logdet = 0.0;
  const double* mu = means.row(m);
  const double* var = variances.row(m);
  for (std::size_t c = 0; c < d; ++c) {
    const double diff = x[c] - mu[c];
    quad += diff * diff / var[c];
    logdet += std::log(var[c]);
  }
  return -0.5 * (quad + logdet +
                 static_cast<double>(d) * std::log(2.0 * std::numbers::pi));
}

/// E-step + partial M-step sums over a slice.
/// partial[m] = [sum_i r_im, sum_i r_im x_i (D), sum_i r_im x_i^2 (D),
///               loglik partial] (loglik accounted on component 0).
void accumulate_range(const linalg::MatrixD& points, const GmmModel& model,
                      std::size_t begin, std::size_t end,
                      std::vector<std::vector<double>>& partials) {
  const std::size_t m = model.means.rows();
  const std::size_t d = model.means.cols();
  const simd::Kernels& kn = simd::active_kernels();

  // Transposed mean/variance packs for the lane-per-component quadratic
  // kernel, plus per-component log-determinants hoisted out of the point
  // loop: logdet is a pure function of the variances, summed in the same
  // ascending-c order as log_gaussian, so hoisting does not change a bit.
  static thread_local std::vector<double> mu_t, var_t;
  simd::pack_transposed(model.means.row(0), m, d, mu_t);
  simd::pack_transposed(model.variances.row(0), m, d, var_t);
  static thread_local std::vector<double> logdetc, quad;
  logdetc.assign(m, 0.0);
  quad.assign(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    double logdet = 0.0;
    const double* var = model.variances.row(j);
    for (std::size_t c = 0; c < d; ++c) logdet += std::log(var[c]);
    logdetc[j] = logdet;
  }
  const double dl2pi =
      static_cast<double>(d) * std::log(2.0 * std::numbers::pi);

  std::vector<double> logp(m);
  for (std::size_t i = begin; i < end; ++i) {
    const double* x = points.row(i);
    kn.quad_block(x, mu_t.data(), var_t.data(), m, d, quad.data());
    double max_log = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < m; ++j) {
      // Same association as log_gaussian: (quad + logdet) + d*log(2*pi).
      logp[j] = std::log(model.weights[j]) +
                -0.5 * (quad[j] + logdetc[j] + dl2pi);
      max_log = std::max(max_log, logp[j]);
    }
    // log-sum-exp for numerical stability.
    double sum = 0.0;
    for (std::size_t j = 0; j < m; ++j) sum += std::exp(logp[j] - max_log);
    const double log_norm = max_log + std::log(sum);
    partials[0][2 * d + 1] += log_norm;

    for (std::size_t j = 0; j < m; ++j) {
      const double r = std::exp(logp[j] - log_norm);
      if (r == 0.0) continue;
      auto& p = partials[j];
      p[0] += r;
      kn.moments_acc(p.data() + 1, p.data() + 1 + d, x, r, d);
    }
  }
}

/// E-step + partial M-step over [begin, end) on the host thread pool —
/// fixed chunking and fixed-order combine make the result byte-identical
/// for any thread count (exec/parallel.hpp).
void accumulate_slice(const linalg::MatrixD& points, const GmmModel& model,
                      std::size_t begin, std::size_t end,
                      std::vector<std::vector<double>>& partials) {
  const std::size_t m = model.means.rows();
  const std::size_t d = model.means.cols();
  using Partials = std::vector<std::vector<double>>;
  if (begin >= end) {
    partials.assign(m, std::vector<double>(2 * d + 2, 0.0));
    return;
  }
  partials = exec::parallel_reduce(
      begin, end, kMapGrain, Partials{},
      [&](std::size_t b, std::size_t e, Partials acc) {
        acc.assign(m, std::vector<double>(2 * d + 2, 0.0));
        accumulate_range(points, model, b, e, acc);
        return acc;
      },
      [](Partials a, Partials b) {
        for (std::size_t j = 0; j < a.size(); ++j) {
          for (std::size_t c = 0; c < a[j].size(); ++c) a[j][c] += b[j][c];
        }
        return a;
      });
}

/// M-step from global partials; returns the data log-likelihood.
double update_model(GmmModel& model,
                    const std::vector<std::vector<double>>& partials,
                    double n_total, double min_variance) {
  const std::size_t m = model.means.rows();
  const std::size_t d = model.means.cols();
  for (std::size_t j = 0; j < m; ++j) {
    const auto& p = partials[j];
    const double rsum = p[0];
    if (rsum <= 0.0) continue;  // dead component: keep parameters
    model.weights[j] = rsum / n_total;
    for (std::size_t c = 0; c < d; ++c) {
      const double mean = p[1 + c] / rsum;
      model.means(j, c) = mean;
      const double ex2 = p[1 + d + c] / rsum;
      model.variances(j, c) = std::max(ex2 - mean * mean, min_variance);
    }
  }
  return partials[0][2 * d + 1];
}

GmmModel init_model(const linalg::MatrixD& points, const GmmParams& params) {
  const std::size_t d = points.cols();
  const auto m = static_cast<std::size_t>(params.components);
  GmmModel model;
  model.weights.assign(m, 1.0 / static_cast<double>(m));
  model.means = initial_centers(points, params.components, params.seed);
  // Start from the global per-dimension variance.
  model.variances = linalg::MatrixD(m, d);
  std::vector<double> mean(d, 0.0), var(d, 0.0);
  for (std::size_t i = 0; i < points.rows(); ++i) {
    for (std::size_t c = 0; c < d; ++c) mean[c] += points(i, c);
  }
  for (auto& v : mean) v /= static_cast<double>(points.rows());
  for (std::size_t i = 0; i < points.rows(); ++i) {
    for (std::size_t c = 0; c < d; ++c) {
      const double diff = points(i, c) - mean[c];
      var[c] += diff * diff;
    }
  }
  for (auto& v : var) {
    v = std::max(v / static_cast<double>(points.rows()), params.min_variance);
  }
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t c = 0; c < d; ++c) model.variances(j, c) = var[c];
  }
  model.log_likelihood = -std::numeric_limits<double>::infinity();
  return model;
}

void validate_params(const linalg::MatrixD& points, const GmmParams& params) {
  PRS_REQUIRE(points.rows() > 0 && points.cols() > 0,
              "GMM needs a non-empty point set");
  PRS_REQUIRE(params.components >= 1, "need at least one component");
  PRS_REQUIRE(static_cast<std::size_t>(params.components) <= points.rows(),
              "more components than points");
  PRS_REQUIRE(params.max_iterations >= 1, "need at least one iteration");
  PRS_REQUIRE(params.epsilon >= 0.0, "epsilon must be non-negative");
}

bool converged(double prev_ll, double ll, double epsilon) {
  if (!std::isfinite(prev_ll)) return false;
  return std::fabs(ll - prev_ll) <=
         epsilon * std::max(1.0, std::fabs(prev_ll));
}

}  // namespace

GmmModel gmm_serial(const linalg::MatrixD& points, const GmmParams& params) {
  validate_params(points, params);
  GmmModel model = init_model(points, params);
  std::vector<std::vector<double>> partials;
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    accumulate_slice(points, model, 0, points.rows(), partials);
    const double ll =
        update_model(model, partials, static_cast<double>(points.rows()),
                     params.min_variance);
    model.iterations = iter + 1;
    const double prev = model.log_likelihood;
    model.log_likelihood = ll;
    if (converged(prev, ll, params.epsilon)) break;
  }
  return model;
}

linalg::MatrixD gmm_responsibilities(const linalg::MatrixD& points,
                                     const GmmModel& model) {
  const std::size_t m = model.means.rows();
  const std::size_t d = model.means.cols();
  linalg::MatrixD resp(points.rows(), m);
  std::vector<double> logp(m);
  for (std::size_t i = 0; i < points.rows(); ++i) {
    std::span<const double> x{points.row(i), d};
    double max_log = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < m; ++j) {
      logp[j] = std::log(model.weights[j]) +
                log_gaussian(x, model.means, model.variances, j);
      max_log = std::max(max_log, logp[j]);
    }
    double sum = 0.0;
    for (std::size_t j = 0; j < m; ++j) sum += std::exp(logp[j] - max_log);
    const double log_norm = max_log + std::log(sum);
    for (std::size_t j = 0; j < m; ++j) {
      resp(i, j) = std::exp(logp[j] - log_norm);
    }
  }
  return resp;
}

double gmm_flops_per_point(int components, std::size_t dims) {
  // Paper convention (Table 5): 11 flops per component-dimension pair per
  // point (log-density quadratic, normalization, three M-step updates).
  return 11.0 * static_cast<double>(components) * static_cast<double>(dims);
}

double gmm_arithmetic_intensity(int components, std::size_t dims) {
  // Table 5: AI(GMM) = 11 * M * D.
  return 11.0 * static_cast<double>(components) * static_cast<double>(dims);
}

GmmSpec gmm_spec(std::shared_ptr<GmmState> state, const GmmParams& params,
                 std::size_t dims) {
  PRS_REQUIRE(state != nullptr, "spec needs a state");
  GmmSpec spec;
  spec.name = "gmm";
  spec.cpu_map = [state](const core::InputSlice& s,
                         core::Emitter<int, std::vector<double>>& e) {
    std::vector<std::vector<double>> partials;
    accumulate_slice(*state->points, state->model, s.begin, s.end, partials);
    for (std::size_t j = 0; j < partials.size(); ++j) {
      e.emit(static_cast<int>(j), std::move(partials[j]));
    }
  };
  spec.gpu_map = spec.cpu_map;
  spec.modeled_map = [state](const core::InputSlice&,
                             core::Emitter<int, std::vector<double>>& e) {
    const std::size_t m = state->model.means.rows();
    const std::size_t d = state->model.means.cols();
    for (std::size_t j = 0; j < m; ++j) {
      e.emit(static_cast<int>(j), std::vector<double>(2 * d + 2, 0.0));
    }
  };
  spec.combine = [](const std::vector<double>& a,
                    const std::vector<double>& b) {
    PRS_CHECK(a.size() == b.size(), "partial size mismatch");
    std::vector<double> out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
    return out;
  };
  spec.cpu_flops_per_item = gmm_flops_per_point(params.components, dims);
  spec.gpu_flops_per_item = spec.cpu_flops_per_item;
  spec.ai_cpu = gmm_arithmetic_intensity(params.components, dims);
  spec.ai_gpu = spec.ai_cpu;
  spec.gpu_data_cached = true;  // loop-invariant events cached (§III.C.3)
  spec.item_bytes = static_cast<double>(dims);
  spec.pair_bytes = static_cast<double>(2 * dims + 2);
  spec.reduce_flops_per_pair = static_cast<double>(2 * dims + 2);
  // Per-iteration responsibility rows copied back from the GPU (see the
  // matching note in cmeans.cpp).
  spec.gpu_item_d2h_bytes = static_cast<double>(params.components);
  spec.efficiency = core::calib::kGmm;
  return spec;
}

ckpt::StateCodec gmm_state_codec(std::shared_ptr<GmmState> state) {
  ckpt::StateCodec codec;
  codec.tag = "gmm";
  codec.encode = [state](ckpt::Writer& w) {
    w.u64(state->model.weights.size());
    for (double weight : state->model.weights) w.f64(weight);
    ckpt::put_matrix(w, state->model.means);
    ckpt::put_matrix(w, state->model.variances);
    w.f64(state->model.log_likelihood);
    w.i32(state->model.iterations);
    w.f64(state->min_variance);
  };
  codec.decode = [state](ckpt::Reader& r) {
    GmmModel model;
    const std::uint64_t m = r.u64();
    PRS_REQUIRE(m == state->model.weights.size(),
                "gmm checkpoint component count does not match this run");
    model.weights.resize(m);
    for (auto& weight : model.weights) weight = r.f64();
    ckpt::get_matrix(r, model.means);
    ckpt::get_matrix(r, model.variances);
    PRS_REQUIRE(model.means.rows() == state->model.means.rows() &&
                    model.means.cols() == state->model.means.cols() &&
                    model.variances.rows() == state->model.variances.rows() &&
                    model.variances.cols() == state->model.variances.cols(),
                "gmm checkpoint model shape does not match this run");
    model.log_likelihood = r.f64();
    model.iterations = r.i32();
    const double min_variance = r.f64();
    PRS_REQUIRE(min_variance == state->min_variance,
                "gmm checkpoint was taken with a different min_variance");
    state->model = std::move(model);
  };
  return codec;
}

GmmModel gmm_prs(core::Cluster& cluster, const linalg::MatrixD& points,
                 const GmmParams& params, const core::JobConfig& cfg,
                 core::JobStats* stats_out,
                 const ckpt::CheckpointConfig* checkpoint) {
  validate_params(points, params);
  const std::size_t d = points.cols();

  auto state = std::make_shared<GmmState>();
  state->points = &points;
  state->model = init_model(points, params);
  state->min_variance = params.min_variance;
  GmmSpec spec = gmm_spec(state, params, d);

  auto on_iteration = [&](int iter,
                          const std::map<int, std::vector<double>>& out) {
    if (cfg.mode == core::ExecutionMode::kModeled) return true;
    std::vector<std::vector<double>> partials(
        static_cast<std::size_t>(params.components));
    for (const auto& [k, v] : out) {
      partials[static_cast<std::size_t>(k)] = v;
    }
    const double ll =
        update_model(state->model, partials,
                     static_cast<double>(points.rows()), params.min_variance);
    state->model.iterations = iter + 1;
    const double prev = state->model.log_likelihood;
    state->model.log_likelihood = ll;
    return !converged(prev, ll, params.epsilon);
  };

  // Broadcast per iteration: weights (M) + means (M*D) + variances (M*D).
  const double state_bytes =
      static_cast<double>(params.components) * (1.0 + 2.0 * static_cast<double>(d));
  const ckpt::StateCodec codec = gmm_state_codec(state);
  auto iterative = core::run_iterative<int, std::vector<double>>(
      cluster, spec, cfg, points.rows(), params.max_iterations, on_iteration,
      state_bytes, checkpoint, checkpoint != nullptr ? &codec : nullptr);

  if (cfg.mode == core::ExecutionMode::kModeled) {
    state->model.iterations = iterative.iterations;
  }
  if (stats_out != nullptr) *stats_out = iterative.stats;
  return state->model;
}

core::JobStats gmm_prs_modeled(core::Cluster& cluster, std::size_t n_points,
                               std::size_t dims, const GmmParams& params,
                               core::JobConfig cfg) {
  PRS_REQUIRE(n_points > 0 && dims > 0, "modeled run needs a shape");
  cfg.mode = core::ExecutionMode::kModeled;
  auto state = std::make_shared<GmmState>();
  state->points = nullptr;  // modeled_map never dereferences it
  const auto m = static_cast<std::size_t>(params.components);
  state->model.weights.assign(m, 1.0 / static_cast<double>(m));
  state->model.means = linalg::MatrixD(m, dims, 0.0);
  state->model.variances = linalg::MatrixD(m, dims, 1.0);
  GmmSpec spec = gmm_spec(state, params, dims);

  const double state_bytes =
      static_cast<double>(params.components) *
      (1.0 + 2.0 * static_cast<double>(dims));
  auto iterative = core::run_iterative<int, std::vector<double>>(
      cluster, spec, cfg, n_points, params.max_iterations,
      [](int, const std::map<int, std::vector<double>>&) { return true; },
      state_bytes);
  return iterative.stats;
}

}  // namespace prs::apps
