#include "apps/kmeans.hpp"

#include <cmath>
#include <limits>
#include <span>

#include "apps/cmeans.hpp"  // initial_centers
#include "common/error.hpp"
#include "core/calibration.hpp"
#include "exec/parallel.hpp"
#include "linalg/blas.hpp"
#include "simd/kernels.hpp"

namespace prs::apps {
namespace {

/// Host-pool grain: ~3*M*D flops per point; 512-point chunks amortize the
/// hand-off on the cheapest shapes.
constexpr std::size_t kMapGrain = 512;

int nearest_center(std::span<const double> x, const linalg::MatrixD& centers,
                   double& dist2_out) {
  const std::size_t d = centers.cols();
  double best = std::numeric_limits<double>::infinity();
  int arg = 0;
  for (std::size_t j = 0; j < centers.rows(); ++j) {
    const double d2 =
        linalg::squared_distance<double>(x, {centers.row(j), d});
    if (d2 < best) {
      best = d2;
      arg = static_cast<int>(j);
    }
  }
  dist2_out = best;
  return arg;
}

/// Serial per-chunk body: accumulates [begin, end) into zero-initialized
/// per-cluster partials [sum x (D), count, inertia].
void accumulate_range(const linalg::MatrixD& points,
                      const linalg::MatrixD& centers, std::size_t begin,
                      std::size_t end,
                      std::vector<std::vector<double>>& partials) {
  const std::size_t m = centers.rows();
  const std::size_t d = centers.cols();
  const simd::Kernels& kn = simd::active_kernels();
  static thread_local std::vector<double> ct;
  simd::pack_transposed(centers.row(0), m, d, ct);
  static thread_local std::vector<double> dist2;
  dist2.assign(m, 0.0);
  for (std::size_t i = begin; i < end; ++i) {
    const double* x = points.row(i);
    // Same strict-< ascending-j argmin as nearest_center, on dispatched
    // per-center distances (bit-identical across SIMD levels).
    kn.dist2_block(x, ct.data(), m, d, dist2.data());
    double d2 = std::numeric_limits<double>::infinity();
    std::size_t j = 0;
    for (std::size_t k = 0; k < m; ++k) {
      if (dist2[k] < d2) {
        d2 = dist2[k];
        j = k;
      }
    }
    auto& p = partials[j];
    kn.add_acc(p.data(), x, d);
    p[d] += 1.0;
    partials[0][d + 1] += d2;  // inertia accounted on cluster 0
  }
}

/// Parallel map over a slice on the host pool; fixed chunking + fixed-order
/// combine keep the bytes identical for any thread count.
void accumulate_slice(const linalg::MatrixD& points,
                      const linalg::MatrixD& centers, std::size_t begin,
                      std::size_t end,
                      std::vector<std::vector<double>>& partials) {
  const std::size_t m = centers.rows();
  const std::size_t d = centers.cols();
  using Partials = std::vector<std::vector<double>>;
  if (begin >= end) {
    partials.assign(m, std::vector<double>(d + 2, 0.0));
    return;
  }
  partials = exec::parallel_reduce(
      begin, end, kMapGrain, Partials{},
      [&](std::size_t b, std::size_t e, Partials acc) {
        acc.assign(m, std::vector<double>(d + 2, 0.0));
        accumulate_range(points, centers, b, e, acc);
        return acc;
      },
      [](Partials a, Partials b) {
        for (std::size_t j = 0; j < a.size(); ++j) {
          for (std::size_t c = 0; c < a[j].size(); ++c) a[j][c] += b[j][c];
        }
        return a;
      });
}

double update_centers(linalg::MatrixD& centers,
                      const std::vector<std::vector<double>>& partials) {
  const std::size_t d = centers.cols();
  double max_move2 = 0.0;
  for (std::size_t j = 0; j < centers.rows(); ++j) {
    const auto& p = partials[j];
    if (p[d] <= 0.0) continue;  // empty cluster keeps its center
    double move2 = 0.0;
    for (std::size_t c = 0; c < d; ++c) {
      const double nc = p[c] / p[d];
      const double delta = nc - centers(j, c);
      move2 += delta * delta;
      centers(j, c) = nc;
    }
    max_move2 = std::max(max_move2, move2);
  }
  return std::sqrt(max_move2);
}

void validate_params(const linalg::MatrixD& points,
                     const KmeansParams& params) {
  PRS_REQUIRE(points.rows() > 0 && points.cols() > 0,
              "K-means needs a non-empty point set");
  PRS_REQUIRE(params.clusters >= 1, "need at least one cluster");
  PRS_REQUIRE(static_cast<std::size_t>(params.clusters) <= points.rows(),
              "more clusters than points");
  PRS_REQUIRE(params.max_iterations >= 1, "need at least one iteration");
}

}  // namespace

KmeansResult kmeans_serial(const linalg::MatrixD& points,
                           const KmeansParams& params) {
  validate_params(points, params);
  KmeansResult res;
  res.centers = initial_centers(points, params.clusters, params.seed);
  std::vector<std::vector<double>> partials;
  for (int iter = 0; iter < params.max_iterations; ++iter) {
    accumulate_slice(points, res.centers, 0, points.rows(), partials);
    res.inertia = partials[0][points.cols() + 1];
    const double move = update_centers(res.centers, partials);
    res.iterations = iter + 1;
    if (move < params.epsilon) break;
  }
  res.assignment.resize(points.rows());
  for (std::size_t i = 0; i < points.rows(); ++i) {
    double d2 = 0.0;
    res.assignment[i] =
        nearest_center({points.row(i), points.cols()}, res.centers, d2);
  }
  return res;
}

double kmeans_flops_per_point(int clusters, std::size_t dims) {
  return 3.0 * static_cast<double>(clusters) * static_cast<double>(dims);
}

double kmeans_arithmetic_intensity(int clusters) {
  return 3.0 * static_cast<double>(clusters);
}

KmeansSpec kmeans_spec(std::shared_ptr<KmeansState> state,
                       const KmeansParams& params, std::size_t dims) {
  PRS_REQUIRE(state != nullptr, "spec needs a state");
  KmeansSpec spec;
  spec.name = "kmeans";
  spec.cpu_map = [state](const core::InputSlice& s,
                         core::Emitter<int, std::vector<double>>& e) {
    std::vector<std::vector<double>> partials;
    accumulate_slice(*state->points, state->centers, s.begin, s.end,
                     partials);
    for (std::size_t j = 0; j < partials.size(); ++j) {
      e.emit(static_cast<int>(j), std::move(partials[j]));
    }
  };
  spec.gpu_map = spec.cpu_map;
  spec.modeled_map = [state](const core::InputSlice&,
                             core::Emitter<int, std::vector<double>>& e) {
    for (std::size_t j = 0; j < state->centers.rows(); ++j) {
      e.emit(static_cast<int>(j),
             std::vector<double>(state->centers.cols() + 2, 0.0));
    }
  };
  spec.combine = [](const std::vector<double>& a,
                    const std::vector<double>& b) {
    PRS_CHECK(a.size() == b.size(), "partial size mismatch");
    std::vector<double> out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
    return out;
  };
  spec.cpu_flops_per_item = kmeans_flops_per_point(params.clusters, dims);
  spec.gpu_flops_per_item = spec.cpu_flops_per_item;
  spec.ai_cpu = kmeans_arithmetic_intensity(params.clusters);
  spec.ai_gpu = spec.ai_cpu;
  spec.gpu_data_cached = true;
  spec.item_bytes = static_cast<double>(dims);
  spec.pair_bytes = static_cast<double>(dims + 2);
  spec.reduce_flops_per_pair = static_cast<double>(dims + 2);
  spec.efficiency = core::calib::kKmeans;
  return spec;
}

ckpt::StateCodec kmeans_state_codec(std::shared_ptr<KmeansState> state,
                                    double* inertia, int* iterations) {
  ckpt::StateCodec codec;
  codec.tag = "kmeans";
  codec.encode = [state, inertia, iterations](ckpt::Writer& w) {
    ckpt::put_matrix(w, state->centers);
    w.f64(inertia != nullptr ? *inertia : 0.0);
    w.i32(iterations != nullptr ? *iterations : 0);
  };
  codec.decode = [state, inertia, iterations](ckpt::Reader& r) {
    linalg::MatrixD centers;
    ckpt::get_matrix(r, centers);
    PRS_REQUIRE(centers.rows() == state->centers.rows() &&
                    centers.cols() == state->centers.cols(),
                "kmeans checkpoint centers shape does not match this run");
    state->centers = std::move(centers);
    const double in = r.f64();
    const int iters = r.i32();
    if (inertia != nullptr) *inertia = in;
    if (iterations != nullptr) *iterations = iters;
  };
  return codec;
}

KmeansResult kmeans_prs(core::Cluster& cluster, const linalg::MatrixD& points,
                        const KmeansParams& params,
                        const core::JobConfig& cfg,
                        core::JobStats* stats_out,
                        const ckpt::CheckpointConfig* checkpoint) {
  validate_params(points, params);
  const std::size_t d = points.cols();

  auto state = std::make_shared<KmeansState>();
  state->points = &points;
  state->centers = initial_centers(points, params.clusters, params.seed);
  KmeansSpec spec = kmeans_spec(state, params, d);

  KmeansResult res;
  auto on_iteration = [&](int iter,
                          const std::map<int, std::vector<double>>& out) {
    if (cfg.mode == core::ExecutionMode::kModeled) return true;
    std::vector<std::vector<double>> partials(
        static_cast<std::size_t>(params.clusters));
    for (const auto& [k, v] : out) {
      partials[static_cast<std::size_t>(k)] = v;
    }
    res.inertia = partials[0][d + 1];
    const double move = update_centers(state->centers, partials);
    res.iterations = iter + 1;
    return move >= params.epsilon;
  };

  const ckpt::StateCodec codec =
      kmeans_state_codec(state, &res.inertia, &res.iterations);
  auto iterative = core::run_iterative<int, std::vector<double>>(
      cluster, spec, cfg, points.rows(), params.max_iterations, on_iteration,
      static_cast<double>(params.clusters) * static_cast<double>(d),
      checkpoint, checkpoint != nullptr ? &codec : nullptr);

  res.centers = state->centers;
  if (cfg.mode == core::ExecutionMode::kFunctional) {
    res.assignment.resize(points.rows());
    for (std::size_t i = 0; i < points.rows(); ++i) {
      double d2 = 0.0;
      res.assignment[i] =
          nearest_center({points.row(i), d}, res.centers, d2);
    }
  } else {
    res.iterations = iterative.iterations;
  }
  if (stats_out != nullptr) *stats_out = iterative.stats;
  return res;
}

core::JobStats kmeans_prs_modeled(core::Cluster& cluster,
                                  std::size_t n_points, std::size_t dims,
                                  const KmeansParams& params,
                                  core::JobConfig cfg) {
  PRS_REQUIRE(n_points > 0 && dims > 0, "modeled run needs a shape");
  cfg.mode = core::ExecutionMode::kModeled;
  auto state = std::make_shared<KmeansState>();
  state->points = nullptr;  // modeled_map never dereferences it
  state->centers = linalg::MatrixD(static_cast<std::size_t>(params.clusters),
                                   dims, 0.0);
  KmeansSpec spec = kmeans_spec(state, params, dims);
  auto iterative = core::run_iterative<int, std::vector<double>>(
      cluster, spec, cfg, n_points, params.max_iterations,
      [](int, const std::map<int, std::vector<double>>&) { return true; },
      static_cast<double>(params.clusters) * static_cast<double>(dims));
  return iterative.stats;
}

}  // namespace prs::apps
