// K-means (Lloyd's algorithm) — the clustering baseline the paper compares
// C-means against in Figure 5 ("similar performance ratios for Kmeans").
// Same three forms as C-means: serial reference, PRS spec, distributed run.
//
// Cost model: flops/point = 3*M*D (distance scan) + D accumulate; AI = 3*M
// with the point matrix cached on the GPU across iterations.
#pragma once

#include <memory>
#include <vector>

#include "core/cluster.hpp"
#include "core/iterative.hpp"
#include "core/mapreduce_spec.hpp"
#include "linalg/matrix.hpp"

namespace prs::apps {

struct KmeansParams {
  int clusters = 5;
  int max_iterations = 100;
  double epsilon = 1e-6;  // max center movement
  std::uint64_t seed = 42;
};

struct KmeansResult {
  linalg::MatrixD centers;
  std::vector<int> assignment;
  double inertia = 0.0;  // sum of squared distances to assigned centers
  int iterations = 0;
};

KmeansResult kmeans_serial(const linalg::MatrixD& points,
                           const KmeansParams& params);

double kmeans_flops_per_point(int clusters, std::size_t dims);
double kmeans_arithmetic_intensity(int clusters);

struct KmeansState {
  const linalg::MatrixD* points = nullptr;
  linalg::MatrixD centers;
};

/// Per-cluster partial: [sum x (D), count, inertia partial].
using KmeansSpec = core::MapReduceSpec<int, std::vector<double>>;

KmeansSpec kmeans_spec(std::shared_ptr<KmeansState> state,
                       const KmeansParams& params, std::size_t dims);

/// Checkpoint codec over the iteration-carried state (centers matrix plus
/// the running inertia / iteration count when the pointers are set).
ckpt::StateCodec kmeans_state_codec(std::shared_ptr<KmeansState> state,
                                    double* inertia = nullptr,
                                    int* iterations = nullptr);

KmeansResult kmeans_prs(core::Cluster& cluster, const linalg::MatrixD& points,
                        const KmeansParams& params,
                        const core::JobConfig& cfg,
                        core::JobStats* stats_out = nullptr,
                        const ckpt::CheckpointConfig* checkpoint = nullptr);

/// Paper-scale run in ExecutionMode::kModeled (no point matrix allocated);
/// always runs exactly params.max_iterations rounds.
core::JobStats kmeans_prs_modeled(core::Cluster& cluster,
                                  std::size_t n_points, std::size_t dims,
                                  const KmeansParams& params,
                                  core::JobConfig cfg);

}  // namespace prs::apps
