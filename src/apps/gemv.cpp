#include "apps/gemv.hpp"

#include <span>

#include "common/error.hpp"
#include "core/calibration.hpp"
#include "exec/parallel.hpp"
#include "linalg/blas.hpp"
#include "simd/dispatch.hpp"
#include "simd/kernels.hpp"

namespace prs::apps {
namespace {

/// Host-pool grain: one row is a 2*cols-flop dot product; 64 rows amortize
/// the hand-off at the paper's widths (cols ~ 1e4).
constexpr std::size_t kRowGrain = 64;

}  // namespace

std::vector<double> gemv_serial(const linalg::MatrixD& a,
                                const std::vector<double>& x) {
  PRS_REQUIRE(a.cols() == x.size(), "gemv shape mismatch");
  std::vector<double> y(a.rows(), 0.0);
  linalg::gemv(1.0, a, std::span<const double>(x), 0.0, std::span<double>(y));
  return y;
}

double gemv_flops_per_row(std::size_t cols) {
  return 2.0 * static_cast<double>(cols);
}

double gemv_arithmetic_intensity() {
  // Table 5: AI(GEMV) = 2 (element-counted convention, DESIGN.md).
  return 2.0;
}

GemvSpec gemv_spec(std::shared_ptr<GemvState> state, std::size_t cols) {
  PRS_REQUIRE(state != nullptr, "spec needs a state");
  GemvSpec spec;
  spec.name = "gemv";
  spec.cpu_map = [state](const core::InputSlice& s,
                         core::Emitter<long, std::vector<double>>& e) {
    const auto& a = *state->a;
    const auto& x = *state->x;
    std::vector<double> segment(s.size(), 0.0);
    // Each row writes its own segment slot: trivially byte-identical for
    // any host thread count. row_dots accumulates each lane's row in the
    // same ascending-column order as the scalar dot, so it is also
    // byte-identical across SIMD levels; the fused per-row dot kernel is
    // only reachable through the explicit fma opt-in.
    const simd::Kernels& kn = simd::active_kernels();
    const bool fma = simd::fma_allowed();
    exec::parallel_for(s.begin, s.end, kRowGrain,
                       [&](std::size_t rb, std::size_t re) {
                         if (fma) {
                           for (std::size_t r = rb; r < re; ++r) {
                             segment[r - s.begin] =
                                 kn.dot_fast(a.row(r), x.data(), a.cols());
                           }
                         } else {
                           kn.row_dots(a.row(rb), a.cols(), re - rb, a.cols(),
                                       x.data(),
                                       segment.data() + (rb - s.begin));
                         }
                       });
    e.emit(static_cast<long>(s.begin), std::move(segment));
  };
  spec.gpu_map = spec.cpu_map;  // cuBLAS path computes the same segments
  spec.modeled_map = [](const core::InputSlice& s,
                        core::Emitter<long, std::vector<double>>& e) {
    e.emit(static_cast<long>(s.begin), std::vector<double>{});
  };
  spec.combine = [](const std::vector<double>& a,
                    const std::vector<double>& b) {
    // Keys (segment start rows) are unique; nothing should collide. Keep a
    // defensive concatenation.
    std::vector<double> out = a;
    out.insert(out.end(), b.begin(), b.end());
    return out;
  };
  spec.cpu_flops_per_item = gemv_flops_per_row(cols);
  spec.gpu_flops_per_item = spec.cpu_flops_per_item;
  spec.ai_cpu = gemv_arithmetic_intensity();
  spec.ai_gpu = spec.ai_cpu;
  spec.gpu_data_cached = false;  // single pass: GPU stages A over PCI-E
  spec.item_bytes = static_cast<double>(cols);  // one row, element-counted
  // One emitted pair per map task carries its whole result segment; size it
  // as the average segment (rows / tasks is unknown here, so per-row cost
  // lands on reduce_flops instead and the pair carries ~segment elements).
  spec.pair_bytes = 64.0;
  spec.reduce_flops_per_pair = 1.0;
  spec.gpu_item_d2h_bytes = 1.0;  // one result element per row
  spec.efficiency = core::calib::kGemv;
  return spec;
}

std::vector<double> gemv_prs(core::Cluster& cluster, const linalg::MatrixD& a,
                             const std::vector<double>& x,
                             const core::JobConfig& cfg,
                             core::JobStats* stats_out) {
  PRS_REQUIRE(a.cols() == x.size(), "gemv shape mismatch");
  auto state = std::make_shared<GemvState>();
  state->a = &a;
  state->x = &x;
  GemvSpec spec = gemv_spec(state, a.cols());

  auto result = core::run_job(cluster, spec, cfg, a.rows());
  if (stats_out != nullptr) *stats_out = result.stats;

  std::vector<double> y;
  if (cfg.mode == core::ExecutionMode::kFunctional) {
    y.resize(a.rows(), 0.0);
    for (const auto& [start, segment] : result.output) {
      PRS_CHECK(static_cast<std::size_t>(start) + segment.size() <= y.size(),
                "segment out of range");
      std::copy(segment.begin(), segment.end(),
                y.begin() + static_cast<std::ptrdiff_t>(start));
    }
  }
  return y;
}

core::JobStats gemv_prs_modeled(core::Cluster& cluster, std::size_t rows,
                                std::size_t cols, core::JobConfig cfg) {
  PRS_REQUIRE(rows > 0 && cols > 0, "modeled run needs a shape");
  cfg.mode = core::ExecutionMode::kModeled;
  auto state = std::make_shared<GemvState>();  // never dereferenced
  GemvSpec spec = gemv_spec(state, cols);
  auto result = core::run_job(cluster, spec, cfg, rows);
  return result.stats;
}

}  // namespace prs::apps
