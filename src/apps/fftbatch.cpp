#include "apps/fftbatch.hpp"

#include "common/error.hpp"
#include "core/calibration.hpp"
#include "exec/parallel.hpp"

namespace prs::apps {
namespace {

/// Host-pool grain: one transform is O(5 n log n) flops, so even short
/// batches split usefully at 4 signals per chunk.
constexpr std::size_t kSignalGrain = 4;

}  // namespace

SignalBatch fft_batch_serial(const SignalBatch& in) {
  PRS_REQUIRE(in.signal_size > 0, "batch needs a signal size");
  SignalBatch out = in;
  // Each signal transforms into its own slot — byte-identical for any
  // host thread count.
  exec::parallel_for(
      0, in.count(), kSignalGrain, [&](std::size_t b, std::size_t e) {
        std::vector<linalg::Complex> buf(in.signal_size);
        for (std::size_t i = b; i < e; ++i) {
          buf.assign(in.signal(i), in.signal(i) + in.signal_size);
          linalg::fft(buf);
          std::copy(buf.begin(), buf.end(), out.signal(i));
        }
      });
  return out;
}

FftBatchSpec fft_batch_spec(std::shared_ptr<FftBatchState> state,
                            std::size_t signal_size) {
  PRS_REQUIRE(state != nullptr, "spec needs a state");
  FftBatchSpec spec;
  spec.name = "fft-batch";
  spec.cpu_map =
      [state, signal_size](const core::InputSlice& s,
                           core::Emitter<long, std::vector<linalg::Complex>>& e) {
        const auto& in = *state->input;
        std::vector<linalg::Complex> out(s.size() * signal_size);
        exec::parallel_for(
            s.begin, s.end, kSignalGrain,
            [&](std::size_t b, std::size_t en) {
              std::vector<linalg::Complex> buf(signal_size);
              for (std::size_t i = b; i < en; ++i) {
                buf.assign(in.signal(i), in.signal(i) + signal_size);
                linalg::fft(buf);
                std::copy(buf.begin(), buf.end(),
                          out.begin() + static_cast<std::ptrdiff_t>(
                                            (i - s.begin) * signal_size));
              }
            });
        e.emit(static_cast<long>(s.begin), std::move(out));
      };
  spec.gpu_map = spec.cpu_map;  // cuFFT path computes the same transforms
  spec.modeled_map =
      [](const core::InputSlice& s,
         core::Emitter<long, std::vector<linalg::Complex>>& e) {
        e.emit(static_cast<long>(s.begin), std::vector<linalg::Complex>{});
      };
  spec.combine = [](const std::vector<linalg::Complex>& a,
                    const std::vector<linalg::Complex>& b) {
    std::vector<linalg::Complex> out = a;  // unique keys: defensive concat
    out.insert(out.end(), b.begin(), b.end());
    return out;
  };

  const auto n = static_cast<double>(signal_size);
  spec.cpu_flops_per_item = linalg::fft_flops(signal_size);
  spec.gpu_flops_per_item = spec.cpu_flops_per_item;
  spec.ai_cpu = linalg::fft_arithmetic_intensity(signal_size);
  spec.ai_gpu = spec.ai_cpu;
  spec.gpu_data_cached = false;  // each batch streams through once
  spec.item_bytes = n;           // one signal, element-counted
  spec.pair_bytes = n;           // transformed signal comes back
  spec.gpu_item_d2h_bytes = n;
  spec.reduce_flops_per_pair = 1.0;
  // FFT kernels attain a large fraction of the bandwidth roofline.
  spec.efficiency = {0.6, 0.6, 0.6, 0.6};
  return spec;
}

SignalBatch fft_batch_prs(core::Cluster& cluster, const SignalBatch& in,
                          const core::JobConfig& cfg,
                          core::JobStats* stats_out) {
  PRS_REQUIRE(in.count() > 0, "batch must be non-empty");
  auto state = std::make_shared<FftBatchState>();
  state->input = &in;
  FftBatchSpec spec = fft_batch_spec(state, in.signal_size);

  auto result = core::run_job(cluster, spec, cfg, in.count());
  if (stats_out != nullptr) *stats_out = result.stats;

  SignalBatch out;
  out.signal_size = in.signal_size;
  if (cfg.mode == core::ExecutionMode::kFunctional) {
    out.samples.resize(in.samples.size());
    for (const auto& [start, signals] : result.output) {
      const std::size_t offset =
          static_cast<std::size_t>(start) * in.signal_size;
      PRS_CHECK(offset + signals.size() <= out.samples.size(),
                "segment out of range");
      std::copy(signals.begin(), signals.end(),
                out.samples.begin() + static_cast<std::ptrdiff_t>(offset));
    }
  }
  return out;
}

core::JobStats fft_batch_prs_modeled(core::Cluster& cluster,
                                     std::size_t signals,
                                     std::size_t signal_size,
                                     core::JobConfig cfg) {
  PRS_REQUIRE(signals > 0, "modeled run needs a shape");
  cfg.mode = core::ExecutionMode::kModeled;
  auto state = std::make_shared<FftBatchState>();
  FftBatchSpec spec = fft_batch_spec(state, signal_size);
  auto result = core::run_job(cluster, spec, cfg, signals);
  return result.stats;
}

}  // namespace prs::apps
