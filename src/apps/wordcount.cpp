#include "apps/wordcount.hpp"

#include <sstream>

#include "common/error.hpp"
#include "core/calibration.hpp"

namespace prs::apps {
namespace {

/// Average bytes per line used by the cost model (kept in sync with the
/// generator below).
constexpr double kAvgWordLen = 6.0;

void count_line(const std::string& line, std::map<std::string, long>& acc) {
  std::istringstream ss(line);
  std::string word;
  while (ss >> word) acc[word]++;
}

}  // namespace

Corpus generate_corpus(Rng& rng, std::size_t lines,
                       std::size_t words_per_line, std::size_t vocabulary) {
  PRS_REQUIRE(vocabulary >= 1, "vocabulary must be non-empty");
  Corpus corpus;
  corpus.reserve(lines);
  for (std::size_t i = 0; i < lines; ++i) {
    std::string line;
    for (std::size_t w = 0; w < words_per_line; ++w) {
      // Zipf-ish: squared uniform biases toward low word ids.
      const double u = rng.uniform();
      const auto id =
          static_cast<std::size_t>(u * u * static_cast<double>(vocabulary));
      if (w > 0) line += ' ';
      line += "word" + std::to_string(std::min(id, vocabulary - 1));
    }
    corpus.push_back(std::move(line));
  }
  return corpus;
}

std::map<std::string, long> wordcount_serial(const Corpus& corpus) {
  std::map<std::string, long> counts;
  for (const auto& line : corpus) count_line(line, counts);
  return counts;
}

WordCountSpec wordcount_spec(std::shared_ptr<const Corpus> corpus) {
  PRS_REQUIRE(corpus != nullptr, "spec needs a corpus");
  WordCountSpec spec;
  spec.name = "wordcount";
  spec.cpu_map = [corpus](const core::InputSlice& s,
                          core::Emitter<std::string, long>& e) {
    // Per-task pre-aggregation (combiner inside the mapper).
    std::map<std::string, long> acc;
    for (std::size_t i = s.begin; i < s.end; ++i) {
      count_line((*corpus)[i], acc);
    }
    for (auto& [w, c] : acc) e.emit(w, c);
  };
  spec.gpu_map = spec.cpu_map;
  spec.modeled_map = [](const core::InputSlice&,
                        core::Emitter<std::string, long>& e) {
    e.emit("word0", 0);
  };
  spec.combine = [](const long& a, const long& b) { return a + b; };

  // Cost model: scanning text is ~1 flop (comparison) per byte — the
  // leftmost point of the paper's Figure 4 intensity spectrum.
  const double line_bytes = kAvgWordLen * 10.0;
  spec.cpu_flops_per_item = line_bytes;
  spec.gpu_flops_per_item = line_bytes;
  spec.ai_cpu = 0.125;  // Figure 4: word count AI ~ 1/8 flop per byte
  spec.ai_gpu = 0.125;
  spec.gpu_data_cached = false;
  spec.item_bytes = line_bytes;
  spec.pair_bytes = kAvgWordLen + 8.0;
  spec.reduce_flops_per_pair = 1.0;
  spec.efficiency = core::calib::kWordCount;
  return spec;
}

std::map<std::string, long> wordcount_prs(core::Cluster& cluster,
                                          std::shared_ptr<const Corpus> corpus,
                                          const core::JobConfig& cfg,
                                          core::JobStats* stats_out) {
  PRS_REQUIRE(corpus && !corpus->empty(), "corpus must be non-empty");
  WordCountSpec spec = wordcount_spec(corpus);
  auto res = core::run_job(cluster, spec, cfg, corpus->size());
  if (stats_out != nullptr) *stats_out = res.stats;
  return std::move(res.output);
}

}  // namespace prs::apps
