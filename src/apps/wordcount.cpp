#include "apps/wordcount.hpp"

#include <sstream>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "core/calibration.hpp"
#include "exec/parallel.hpp"
#include "numa/kv_store.hpp"
#include "numa/topology.hpp"

namespace prs::apps {
namespace {

/// Host-pool grain: scanning a line is cheap (~tens of flops), so chunks
/// need many lines to amortize the hand-off.
constexpr std::size_t kMapGrain = 256;

void count_line(const std::string& line, std::map<std::string, long>& acc) {
  std::istringstream ss(line);
  std::string word;
  while (ss >> word) acc[word]++;
}

/// Exactly the C-locale whitespace set `istream >> std::string` skips —
/// the two tokenizers below must agree word-for-word or the shuffle paths
/// would diverge.
bool is_word_space(char ch) {
  return ch == ' ' || ch == '\t' || ch == '\n' || ch == '\v' || ch == '\f' ||
         ch == '\r';
}

/// Allocation-free tokenizer for the per-lane path: splits like
/// `ss >> word` but feeds string_views straight into the store (no
/// std::string per word, no tree rebalance per count).
void count_line_fast(const std::string& line, numa::LaneKvStore& store) {
  const char* p = line.data();
  const char* const end = p + line.size();
  while (p < end) {
    while (p < end && is_word_space(*p)) ++p;
    const char* const w = p;
    while (p < end && !is_word_space(*p)) ++p;
    if (p > w) store.add(std::string_view(w, static_cast<std::size_t>(p - w)), 1);
  }
}

/// Shape of the actual corpus, measured once per spec so the Eq (8) cost
/// model reflects the data really passed in — not a hardcoded
/// 10-words-per-line assumption.
struct CorpusShape {
  double line_bytes = 0.0;  // average bytes per line
  double word_len = 0.0;    // average bytes per word
};

CorpusShape measure(const Corpus& corpus) {
  std::size_t bytes = 0, words = 0, word_bytes = 0;
  for (const auto& line : corpus) {
    bytes += line.size();
    bool in_word = false;
    for (const char ch : line) {
      const bool space = ch == ' ' || ch == '\t';
      if (!space) {
        ++word_bytes;
        if (!in_word) ++words;
      }
      in_word = !space;
    }
  }
  CorpusShape s;
  const auto n = static_cast<double>(corpus.size());
  s.line_bytes = n > 0 ? static_cast<double>(bytes) / n : 0.0;
  s.word_len = words > 0
                   ? static_cast<double>(word_bytes) / static_cast<double>(words)
                   : 0.0;
  return s;
}

}  // namespace

Corpus generate_corpus(Rng& rng, std::size_t lines,
                       std::size_t words_per_line, std::size_t vocabulary) {
  PRS_REQUIRE(vocabulary >= 1, "vocabulary must be non-empty");
  Corpus corpus;
  corpus.reserve(lines);
  for (std::size_t i = 0; i < lines; ++i) {
    std::string line;
    for (std::size_t w = 0; w < words_per_line; ++w) {
      // Zipf-ish: squared uniform biases toward low word ids.
      const double u = rng.uniform();
      const auto id =
          static_cast<std::size_t>(u * u * static_cast<double>(vocabulary));
      if (w > 0) line += ' ';
      line += "word" + std::to_string(std::min(id, vocabulary - 1));
    }
    corpus.push_back(std::move(line));
  }
  return corpus;
}

std::map<std::string, long> wordcount_serial(const Corpus& corpus) {
  std::map<std::string, long> counts;
  for (const auto& line : corpus) count_line(line, counts);
  return counts;
}

WordCountSpec wordcount_spec(std::shared_ptr<const Corpus> corpus) {
  PRS_REQUIRE(corpus != nullptr, "spec needs a corpus");
  WordCountSpec spec;
  spec.name = "wordcount";
  spec.cpu_map = [corpus](const core::InputSlice& s,
                          core::Emitter<std::string, long>& e) {
    // NUMA mode: Metis-style shuffle. One open-addressed store per pool
    // lane, written lock-free by its owner thread only (a thief counts
    // stolen chunks into its *own* store), then merged in ascending lane
    // order. Counts are integers, so any distribution of words over lanes
    // merges to the same sorted map — byte-identical to the reduce path
    // below at every thread count and topology (tests/shuffle_test.cpp,
    // tests/numa_test.cpp).
    if (numa::enabled()) {
      const int lanes = exec::ThreadPool::instance().threads();
      std::vector<numa::LaneKvStore> stores;
      stores.reserve(static_cast<std::size_t>(lanes));
      // Start tiny: nearly all slot pages are then allocated by grow()
      // *inside the owner lane* — first-touched on the owner's socket.
      for (int i = 0; i < lanes; ++i) stores.emplace_back(8);
      exec::parallel_for(
          s.begin, s.end, kMapGrain, [&](std::size_t b, std::size_t en) {
            numa::LaneKvStore& mine = stores[static_cast<std::size_t>(
                exec::ThreadPool::current_lane())];
            for (std::size_t i = b; i < en; ++i) {
              count_line_fast((*corpus)[i], mine);
            }
          });
      for (auto& [w, c] : numa::merge_lane_stores(stores)) e.emit(w, c);
      return;
    }
    // Per-task pre-aggregation (combiner inside the mapper), spread over
    // the host pool. Counts are integers and map merging is
    // order-insensitive, so the merged result is exact for any thread
    // count; the fixed-order tree combine makes it deterministic anyway.
    using Counts = std::map<std::string, long>;
    Counts acc = exec::parallel_reduce(
        s.begin, s.end, kMapGrain, Counts{},
        [&corpus](std::size_t b, std::size_t en, Counts m) {
          for (std::size_t i = b; i < en; ++i) count_line((*corpus)[i], m);
          return m;
        },
        [](Counts a, Counts b) {
          for (auto& [w, c] : b) a[w] += c;
          return a;
        });
    for (auto& [w, c] : acc) e.emit(w, c);
  };
  spec.gpu_map = spec.cpu_map;
  spec.modeled_map = [](const core::InputSlice&,
                        core::Emitter<std::string, long>& e) {
    e.emit("word0", 0);
  };
  spec.combine = [](const long& a, const long& b) { return a + b; };

  // Cost model: scanning text is ~1 flop (comparison) per byte — the
  // leftmost point of the paper's Figure 4 intensity spectrum. Byte counts
  // come from the corpus actually passed in, so Eq (8) splits stay honest
  // for corpora with other line lengths than the default generator's.
  const CorpusShape shape = measure(*corpus);
  spec.cpu_flops_per_item = shape.line_bytes;
  spec.gpu_flops_per_item = shape.line_bytes;
  spec.ai_cpu = 0.125;  // Figure 4: word count AI ~ 1/8 flop per byte
  spec.ai_gpu = 0.125;
  spec.gpu_data_cached = false;
  spec.item_bytes = shape.line_bytes;
  spec.pair_bytes = shape.word_len + 8.0;  // word text + count
  spec.reduce_flops_per_pair = 1.0;
  spec.efficiency = core::calib::kWordCount;
  return spec;
}

std::map<std::string, long> wordcount_prs(core::Cluster& cluster,
                                          std::shared_ptr<const Corpus> corpus,
                                          const core::JobConfig& cfg,
                                          core::JobStats* stats_out) {
  PRS_REQUIRE(corpus && !corpus->empty(), "corpus must be non-empty");
  WordCountSpec spec = wordcount_spec(corpus);
  auto res = core::run_job(cluster, spec, cfg, corpus->size());
  if (stats_out != nullptr) *stats_out = res.stats;
  return std::move(res.output);
}

}  // namespace prs::apps
