// GEMV (matrix-vector multiply) — paper §IV.A.3.
//
// Row-wise block-striped decomposition: a map task owns a range of rows of
// A, the vector x is replicated on every node, and the reduce stage
// concatenates the result segments (the paper's "reduce task can
// concatenate the pieces of vector C"). Single pass, no iteration, input
// staged over PCI-E on the GPU path — the paper's low-intensity showcase
// (AI = 2, Table 5) where the analytic model assigns ~97% to the CPU.
#pragma once

#include <vector>

#include "core/cluster.hpp"
#include "core/job_runner.hpp"
#include "core/mapreduce_spec.hpp"
#include "linalg/matrix.hpp"

namespace prs::apps {

/// Serial reference: y = A x.
std::vector<double> gemv_serial(const linalg::MatrixD& a,
                                const std::vector<double>& x);

double gemv_flops_per_row(std::size_t cols);
double gemv_arithmetic_intensity();

/// Key = first row of the segment, value = contiguous result segment.
/// Keys are unique, so the combiner is never invoked (it concatenates
/// defensively if a runtime ever re-slices).
using GemvSpec = core::MapReduceSpec<long, std::vector<double>>;

struct GemvState {
  const linalg::MatrixD* a = nullptr;
  const std::vector<double>* x = nullptr;
};

GemvSpec gemv_spec(std::shared_ptr<GemvState> state, std::size_t cols);

/// Distributed y = A x on the cluster; returns the assembled vector (empty
/// in modeled mode).
std::vector<double> gemv_prs(core::Cluster& cluster, const linalg::MatrixD& a,
                             const std::vector<double>& x,
                             const core::JobConfig& cfg,
                             core::JobStats* stats_out = nullptr);

/// Paper-scale y = A x in ExecutionMode::kModeled (A never materialized):
/// charges the full staging + compute time for an rows x cols multiply.
core::JobStats gemv_prs_modeled(core::Cluster& cluster, std::size_t rows,
                                std::size_t cols, core::JobConfig cfg);

}  // namespace prs::apps
