// Batch FFT — the paper's moderate-arithmetic-intensity SPMD example
// (Figure 4's middle band; §I: bottlenecked by DRAM and PCI-E bandwidth).
//
// Workload: transform a batch of independent fixed-size signals (the SPMD
// pattern of spectral pipelines). A map task owns a slice of signals; the
// reduce stage gathers the transformed signals (keys = signal index
// ranges, unique). AI = 5*log2(N) per element — between GEMV (2) and the
// clustering apps (hundreds), so Eq (8) splits the work more evenly than
// either extreme.
#pragma once

#include <memory>

#include "core/cluster.hpp"
#include "core/job_runner.hpp"
#include "core/mapreduce_spec.hpp"
#include "linalg/fft.hpp"

namespace prs::apps {

/// A batch of equally sized signals, stored contiguously.
struct SignalBatch {
  std::size_t signal_size = 0;  // power of two
  std::vector<linalg::Complex> samples;  // count * signal_size

  std::size_t count() const {
    return signal_size == 0 ? 0 : samples.size() / signal_size;
  }
  linalg::Complex* signal(std::size_t i) {
    return samples.data() + i * signal_size;
  }
  const linalg::Complex* signal(std::size_t i) const {
    return samples.data() + i * signal_size;
  }
};

/// Serial reference: FFT of every signal.
SignalBatch fft_batch_serial(const SignalBatch& in);

struct FftBatchState {
  const SignalBatch* input = nullptr;
};

/// Key = first signal index of the slice; value = transformed signals.
using FftBatchSpec = core::MapReduceSpec<long, std::vector<linalg::Complex>>;

FftBatchSpec fft_batch_spec(std::shared_ptr<FftBatchState> state,
                            std::size_t signal_size);

/// Distributed batch FFT; returns the transformed batch (empty in modeled
/// mode).
SignalBatch fft_batch_prs(core::Cluster& cluster, const SignalBatch& in,
                          const core::JobConfig& cfg,
                          core::JobStats* stats_out = nullptr);

/// Paper-scale modeled run.
core::JobStats fft_batch_prs_modeled(core::Cluster& cluster,
                                     std::size_t signals,
                                     std::size_t signal_size,
                                     core::JobConfig cfg);

}  // namespace prs::apps
