// 2-D Jacobi heat stencil — the paper's PDE example (§V: "For SPMD
// applications, such as PDEs, FFT whose arithmetic intensities are in the
// middle range ... both GPU and CPU can make the non-trivial contribution
// to overall computation").
//
// Iterative 5-point Jacobi relaxation with fixed (Dirichlet) boundaries.
// PRS formulation: map tasks own row blocks of the grid and read one halo
// row on each side; per-iteration communication is the halo/update
// exchange, modeled as the iterative driver's state broadcast (DESIGN.md).
// With AI ~ 2.5 the analytic split gives the CPU ~20-25% of the rows —
// squarely between GEMV (97%) and the clustering apps (11%).
#pragma once

#include <memory>

#include "core/cluster.hpp"
#include "core/iterative.hpp"
#include "core/mapreduce_spec.hpp"
#include "linalg/matrix.hpp"

namespace prs::apps {

struct StencilParams {
  int max_iterations = 100;
  double epsilon = 1e-6;  // max per-cell update to declare convergence
};

struct StencilResult {
  linalg::MatrixD grid;
  double residual = 0.0;  // max |update| of the last iteration
  int iterations = 0;
};

/// One Jacobi sweep: interior cells become the average of their four
/// neighbours; boundary cells are fixed. Returns the max |update|.
double jacobi_step(const linalg::MatrixD& in, linalg::MatrixD& out);

/// Serial reference relaxation.
StencilResult stencil_serial(const linalg::MatrixD& initial,
                             const StencilParams& params);

/// Cost model: ~5 flops per interior cell per sweep; element-counted AI.
double stencil_flops_per_row(std::size_t cols);
double stencil_arithmetic_intensity();

struct StencilState {
  linalg::MatrixD grid;  // current iterate (rows x cols)
};

/// Key = first interior row of the block; value = updated rows plus the
/// block's max |update| appended as the final element.
using StencilSpec = core::MapReduceSpec<long, std::vector<double>>;

StencilSpec stencil_spec(std::shared_ptr<StencilState> state,
                         std::size_t cols);

/// Checkpoint codec over the iteration-carried state (the grid plus the
/// running residual / iteration count when the pointers are set).
ckpt::StateCodec stencil_state_codec(std::shared_ptr<StencilState> state,
                                     double* residual = nullptr,
                                     int* iterations = nullptr);

/// Distributed relaxation on the cluster; numerically identical to
/// stencil_serial. With the task-graph engine at pipeline_depth > 1 (and no
/// faults/checkpointing, functional mode) this routes to stencil_graph.
StencilResult stencil_prs(core::Cluster& cluster,
                          const linalg::MatrixD& initial,
                          const StencilParams& params,
                          const core::JobConfig& cfg,
                          core::JobStats* stats_out = nullptr,
                          const ckpt::CheckpointConfig* checkpoint = nullptr);

/// Wavefront halo-graph relaxation — the task-graph showcase shape. Each
/// iteration's row block depends only on its three neighbour blocks of the
/// previous iteration (cross-rank neighbours through explicit halo
/// send/recv nodes), so fast blocks run up to `pipeline_depth` iterations
/// ahead of slow ones instead of meeting at a global per-iteration barrier.
/// Convergence is checked by per-iteration retire nodes over the exact
/// block-residual max; Jacobi is cell-deterministic, so grid and iteration
/// count are byte-identical to stencil_serial / stencil_prs for any depth.
/// Requires functional mode; faults and checkpointing take the stage path.
StencilResult stencil_graph(core::Cluster& cluster,
                            const linalg::MatrixD& initial,
                            const StencilParams& params,
                            const core::JobConfig& cfg,
                            core::JobStats* stats_out = nullptr);

namespace stencil_detail {
/// Relaxes interior rows [begin, end) of `in` into per-row output vectors;
/// returns the block's max |update| (exact for any thread count). Shared by
/// the map closures and the halo-graph block bodies.
double relax_rows(const linalg::MatrixD& in, std::size_t begin,
                  std::size_t end, std::vector<double>& out);
}  // namespace stencil_detail

}  // namespace prs::apps
