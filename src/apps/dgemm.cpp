#include "apps/dgemm.hpp"

#include "common/error.hpp"
#include "core/calibration.hpp"
#include "exec/parallel.hpp"
#include "linalg/blas.hpp"

namespace prs::apps {
namespace {

/// Host-pool grain for the A-block staging copy (memory bound).
constexpr std::size_t kCopyGrain = 64;

}  // namespace

double dgemm_block_ai(double block_rows, std::size_t k, std::size_t n) {
  PRS_REQUIRE(block_rows > 0.0, "block must be non-empty");
  const auto kd = static_cast<double>(k);
  const auto nd = static_cast<double>(n);
  const double flops = 2.0 * block_rows * nd * kd;
  const double traffic = block_rows * kd + kd * nd + block_rows * nd;
  return flops / traffic;
}

double dgemm_flops(std::size_t m, std::size_t n, std::size_t k) {
  return linalg::gemm_flops(static_cast<double>(m), static_cast<double>(n),
                            static_cast<double>(k));
}

DgemmSpec dgemm_spec(std::shared_ptr<DgemmState> state, std::size_t k,
                     std::size_t n) {
  PRS_REQUIRE(state != nullptr, "spec needs a state");
  DgemmSpec spec;
  spec.name = "dgemm";
  spec.cpu_map = [state](const core::InputSlice& s,
                         core::Emitter<long, linalg::MatrixD>& e) {
    const auto& a = *state->a;
    const auto& b = *state->b;
    // Compute the C block for rows [s.begin, s.end) with the blocked
    // kernel (the "MKL path"); the CUDA path would call cuBLAS. Both the
    // staging copy and gemm_blocked itself run on the host thread pool.
    linalg::MatrixD a_block(s.size(), a.cols());
    exec::parallel_for(s.begin, s.end, kCopyGrain,
                       [&](std::size_t rb, std::size_t re) {
                         for (std::size_t r = rb; r < re; ++r) {
                           for (std::size_t c = 0; c < a.cols(); ++c) {
                             a_block(r - s.begin, c) = a(r, c);
                           }
                         }
                       });
    linalg::MatrixD c_block(s.size(), b.cols(), 0.0);
    linalg::gemm_blocked(1.0, a_block, b, 0.0, c_block);
    e.emit(static_cast<long>(s.begin), std::move(c_block));
  };
  spec.gpu_map = spec.cpu_map;
  spec.modeled_map = [](const core::InputSlice& s,
                        core::Emitter<long, linalg::MatrixD>& e) {
    e.emit(static_cast<long>(s.begin), linalg::MatrixD{});
  };
  spec.combine = [](const linalg::MatrixD& a, const linalg::MatrixD& b) {
    // Row-block keys are unique; defensively keep the larger block.
    return a.size() >= b.size() ? a : b;
  };

  const auto kd = static_cast<double>(k);
  const auto nd = static_cast<double>(n);
  spec.cpu_flops_per_item = 2.0 * nd * kd;  // one row of C
  spec.gpu_flops_per_item = spec.cpu_flops_per_item;
  // Per-item (per-row) steady-state AI; the size-dependent form feeds the
  // MinBs/stream machinery through ai_of_block.
  spec.ai_cpu = dgemm_block_ai(256.0, k, n);  // typical CPU block
  spec.ai_gpu = dgemm_block_ai(1024.0, k, n);
  spec.ai_of_block = [k, n, kd](double block_bytes) {
    return dgemm_block_ai(std::max(1.0, block_bytes / kd), k, n);
  };
  spec.gpu_data_cached = false;
  spec.item_bytes = kd;  // one row of A (element-counted)
  spec.pair_bytes = nd;  // one row of C per input row, shipped in blocks
  spec.gpu_item_d2h_bytes = nd;
  spec.reduce_flops_per_pair = 1.0;
  // High-AI BLAS3 kernels run close to roofline on both backends.
  spec.efficiency = {0.85, 0.85, 0.7, 0.7};
  return spec;
}

linalg::MatrixD dgemm_prs(core::Cluster& cluster, const linalg::MatrixD& a,
                          const linalg::MatrixD& b,
                          const core::JobConfig& cfg,
                          core::JobStats* stats_out) {
  PRS_REQUIRE(a.cols() == b.rows(), "dgemm: inner dimensions must match");
  auto state = std::make_shared<DgemmState>();
  state->a = &a;
  state->b = &b;
  DgemmSpec spec = dgemm_spec(state, a.cols(), b.cols());

  auto result = core::run_job(cluster, spec, cfg, a.rows());
  if (stats_out != nullptr) *stats_out = result.stats;

  linalg::MatrixD c;
  if (cfg.mode == core::ExecutionMode::kFunctional) {
    c = linalg::MatrixD(a.rows(), b.cols(), 0.0);
    for (const auto& [start, block] : result.output) {
      PRS_CHECK(static_cast<std::size_t>(start) + block.rows() <= c.rows(),
                "block out of range");
      for (std::size_t r = 0; r < block.rows(); ++r) {
        for (std::size_t col = 0; col < block.cols(); ++col) {
          c(static_cast<std::size_t>(start) + r, col) = block(r, col);
        }
      }
    }
  }
  return c;
}

core::JobStats dgemm_prs_modeled(core::Cluster& cluster, std::size_t m,
                                 std::size_t n, std::size_t k,
                                 core::JobConfig cfg) {
  PRS_REQUIRE(m > 0 && n > 0 && k > 0, "modeled run needs a shape");
  cfg.mode = core::ExecutionMode::kModeled;
  auto state = std::make_shared<DgemmState>();
  DgemmSpec spec = dgemm_spec(state, k, n);
  auto result = core::run_job(cluster, spec, cfg, m);
  return result.stats;
}

}  // namespace prs::apps
