// C-means (fuzzy k-means) — paper §IV.A.1, Eqs (12)-(14).
//
// Provided in three forms:
//   * cmeans_serial      — reference implementation (correctness oracle);
//   * cmeans_spec        — the heterogeneous MapReduce formulation for the
//                          PRS runtime (map emits per-cluster partial sums,
//                          combine adds them, the iterative driver updates
//                          centers);
//   * cmeans_prs         — end-to-end distributed run on a Cluster.
//
// Cost model (paper Table 5): flops/point = 5*M*D, arithmetic intensity
// Ac = Ag = 5*M, with the event matrix cached in GPU memory across
// iterations (gpu_data_cached = true).
//
// Convergence: the paper stops on max |u_ij^(k+1) - u_ij^(k)| < eps, which
// needs the full N x M membership matrix; the distributed form uses the
// equivalent max-center-movement criterion instead (documented substitution,
// DESIGN.md) — both serial and PRS versions use it so results align.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/iterative.hpp"
#include "core/mapreduce_spec.hpp"
#include "linalg/matrix.hpp"

namespace prs::apps {

struct CmeansParams {
  int clusters = 5;          // M
  double fuzziness = 2.0;    // m in Eq (12); must be > 1
  int max_iterations = 100;
  double epsilon = 1e-4;     // max center movement to declare convergence
  std::uint64_t seed = 42;   // random initial centers (paper §IV.A.1)
};

struct CmeansResult {
  linalg::MatrixD centers;      // M x D
  std::vector<int> assignment;  // hard assignment: argmax_j u_ij
  double objective = 0.0;       // J_m (Eq (12))
  int iterations = 0;
};

/// Reference implementation of Eqs (12)-(14) on one host.
CmeansResult cmeans_serial(const linalg::MatrixD& points,
                           const CmeansParams& params);

/// Cost model helpers (paper Table 5 conventions; see DESIGN.md on the
/// element-counted byte convention).
double cmeans_flops_per_point(int clusters, std::size_t dims);
double cmeans_arithmetic_intensity(int clusters);

/// Shared state captured by the spec's map lambdas; the iterative driver's
/// on_iteration callback updates `centers` between rounds.
struct CmeansState {
  const linalg::MatrixD* points = nullptr;
  linalg::MatrixD centers;
  double fuzziness = 2.0;
};

/// Intermediate value: per-cluster [weighted x sums (D), weight sum,
/// objective partial] — combine adds elementwise.
using CmeansSpec = core::MapReduceSpec<int, std::vector<double>>;

/// Builds the PRS spec over `state` (state->points/centers must be set).
CmeansSpec cmeans_spec(std::shared_ptr<CmeansState> state,
                       const CmeansParams& params, std::size_t dims);

/// Checkpoint codec over the iteration-carried state: the centers matrix
/// plus fuzziness (validated on restore) and, when the pointers are set,
/// the running objective / iteration count so a resumed run reports them
/// without recomputing.
ckpt::StateCodec cmeans_state_codec(std::shared_ptr<CmeansState> state,
                                    double* objective = nullptr,
                                    int* iterations = nullptr);

/// Runs distributed C-means on the cluster; numerically equivalent to
/// cmeans_serial when cfg.mode == kFunctional (identical center updates in
/// a different summation order). `checkpoint` (optional) enables the
/// iterative driver's checkpoint/restart via cmeans_state_codec.
CmeansResult cmeans_prs(core::Cluster& cluster,
                        const linalg::MatrixD& points,
                        const CmeansParams& params,
                        const core::JobConfig& cfg,
                        core::JobStats* stats_out = nullptr,
                        const ckpt::CheckpointConfig* checkpoint = nullptr);

/// Picks `clusters` distinct random points as initial centers.
linalg::MatrixD initial_centers(const linalg::MatrixD& points, int clusters,
                                std::uint64_t seed);

/// The map kernel: accumulates points [begin, end) into per-cluster
/// partials [weighted x sums (D), weight sum, objective partial]. Runs on
/// the host thread pool (exec/parallel.hpp) with fixed chunking, so the
/// result is byte-identical for any PRS_HOST_THREADS. Exposed for the
/// host-threads ablation bench, the pthread baseline and the Eq (13)
/// limit-case regression tests.
void cmeans_accumulate(const linalg::MatrixD& points,
                       const linalg::MatrixD& centers, double fuzziness,
                       std::size_t begin, std::size_t end,
                       std::vector<std::vector<double>>& partials);

/// Paper-scale run in ExecutionMode::kModeled: charges the full workload's
/// virtual time without materializing the point matrix (benches for
/// Table 3 / Figure 6). Always runs exactly params.max_iterations rounds.
core::JobStats cmeans_prs_modeled(core::Cluster& cluster,
                                  std::size_t n_points, std::size_t dims,
                                  const CmeansParams& params,
                                  core::JobConfig cfg);

}  // namespace prs::apps
