// Word count — the paper's canonical low-arithmetic-intensity example
// ("for applications that have low arithmetic intensity, such as log
// analysis", §I; leftmost band of Figure 4). Exercises string keys, real
// combiners, and a shuffle with many distinct keys.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/job_runner.hpp"
#include "core/mapreduce_spec.hpp"

namespace prs::apps {

/// A corpus: one string per input item (a "line").
using Corpus = std::vector<std::string>;

/// Synthetic corpus with a Zipf-ish word distribution over `vocabulary`
/// distinct words.
Corpus generate_corpus(Rng& rng, std::size_t lines, std::size_t words_per_line,
                       std::size_t vocabulary);

/// Serial reference count.
std::map<std::string, long> wordcount_serial(const Corpus& corpus);

using WordCountSpec = core::MapReduceSpec<std::string, long>;

WordCountSpec wordcount_spec(std::shared_ptr<const Corpus> corpus);

std::map<std::string, long> wordcount_prs(core::Cluster& cluster,
                                          std::shared_ptr<const Corpus> corpus,
                                          const core::JobConfig& cfg,
                                          core::JobStats* stats_out = nullptr);

}  // namespace prs::apps
