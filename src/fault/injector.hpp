// Deterministic fault injector driven by the virtual clock.
//
// Implements both device-side (simdev::ExecFaultHook) and network-side
// (simnet::NetFaultHook) hook interfaces from one seeded plan. Every
// probabilistic decision draws from child streams of prs::Rng in event
// order, and activation times are compared against the simulator clock, so
// a given (plan, seed) pair produces a byte-identical fault schedule on
// every run — the `log()` records exactly what fired and when.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "simdev/fault_hook.hpp"
#include "simnet/fault_hook.hpp"
#include "simtime/simulator.hpp"

namespace prs::fault {

class FaultInjector final : public simdev::ExecFaultHook,
                            public simnet::NetFaultHook {
 public:
  /// Counts of faults actually fired (not clauses configured).
  struct Stats {
    std::uint64_t hangs = 0;
    std::uint64_t slowdowns = 0;
    std::uint64_t task_errors = 0;
    std::uint64_t drops = 0;
    std::uint64_t delays = 0;
    std::uint64_t duplicates = 0;

    bool operator==(const Stats&) const = default;
  };

  FaultInjector(sim::Simulator& sim, FaultPlan plan, std::uint64_t seed);

  simdev::ExecFault on_task(const simdev::ExecSite& site) override;
  simnet::NetFault on_message(int src, int dst, int tag,
                              double bytes) override;

  /// True when a node_crash clause for `node` has activated by now.
  bool node_crashed(int node) const;

  const FaultPlan& plan() const { return plan_; }
  std::uint64_t seed() const { return seed_; }
  const Stats& stats() const { return stats_; }

  /// The fired-fault schedule: one line per injected fault, in event order,
  /// deterministically formatted (byte-comparable across runs).
  const std::vector<std::string>& log() const { return log_; }

 private:
  void record(FaultKind kind, const std::string& detail);

  sim::Simulator& sim_;
  FaultPlan plan_;
  std::uint64_t seed_;
  Rng exec_rng_;  // device-side decisions
  Rng net_rng_;   // wire-side decisions
  Stats stats_;
  std::vector<std::string> log_;
};

}  // namespace prs::fault
