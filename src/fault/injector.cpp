#include "fault/injector.hpp"

#include <cstdio>

#include "obs/trace.hpp"

namespace prs::fault {
namespace {

bool node_matches(int clause_node, int node) {
  return clause_node < 0 || clause_node == node;
}

bool device_matches(DeviceFilter filter, simdev::DeviceClass cls) {
  switch (filter) {
    case DeviceFilter::kAny:
      return true;
    case DeviceFilter::kCpu:
      return cls == simdev::DeviceClass::kCpu;
    case DeviceFilter::kGpu:
      return cls == simdev::DeviceClass::kGpu;
  }
  return true;
}

/// Link clauses match both directions.
bool link_matches(const FaultClause& c, int src, int dst) {
  return (node_matches(c.node_a, src) && node_matches(c.node_b, dst)) ||
         (node_matches(c.node_a, dst) && node_matches(c.node_b, src));
}

std::string format_time(double t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", t);
  return buf;
}

}  // namespace

FaultInjector::FaultInjector(sim::Simulator& sim, FaultPlan plan,
                             std::uint64_t seed)
    : sim_(sim),
      plan_(std::move(plan)),
      seed_(seed),
      exec_rng_(Rng(seed).split(0x65786563ull)),  // "exec"
      net_rng_(Rng(seed).split(0x6e657477ull)) {}  // "netw"

void FaultInjector::record(FaultKind kind, const std::string& detail) {
  log_.push_back("t=" + format_time(sim_.now()) + " " + to_string(kind) +
                 " " + detail);
  obs::TraceRecorder* tr = sim_.tracer();
  if (tr != nullptr && tr->enabled()) {
    tr->instant(tr->track("fault", "injector"), to_string(kind), "fault",
                {obs::arg("detail", detail)});
    tr->metrics()
        .counter(std::string("fault.injected.") + to_string(kind))
        .increment();
  }
}

bool FaultInjector::node_crashed(int node) const {
  for (const FaultClause& c : plan_.clauses) {
    if (c.kind == FaultKind::kNodeCrash && node_matches(c.node_a, node) &&
        sim_.now() >= c.at) {
      return true;
    }
  }
  return false;
}

simdev::ExecFault FaultInjector::on_task(const simdev::ExecSite& site) {
  simdev::ExecFault fault;
  const double now = sim_.now();
  for (const FaultClause& c : plan_.clauses) {
    switch (c.kind) {
      case FaultKind::kNodeCrash:
        if (node_matches(c.node_a, site.node) && now >= c.at) {
          fault.hang = true;
        }
        break;
      case FaultKind::kGpuHang:
        if (site.device == simdev::DeviceClass::kGpu &&
            node_matches(c.node_a, site.node) && now >= c.at) {
          fault.hang = true;
        }
        break;
      case FaultKind::kSlowNode:
        if (node_matches(c.node_a, site.node) &&
            device_matches(c.device, site.device) && now >= c.at) {
          fault.slowdown *= c.factor;
        }
        break;
      case FaultKind::kTaskError: {
        // Draw whenever the clause applies, even if an earlier clause
        // already decided the verdict: the draw sequence must not depend
        // on clause interactions, or schedules stop being reproducible
        // under plan edits.
        if (node_matches(c.node_a, site.node) &&
            device_matches(c.device, site.device) && now >= c.at &&
            exec_rng_.uniform() < c.probability) {
          fault.fail = true;
        }
        break;
      }
      default:
        break;
    }
  }
  const std::string site_str =
      "node" + std::to_string(site.node) +
      (site.device == simdev::DeviceClass::kGpu
           ? ".gpu" + std::to_string(site.card)
           : ".cpu");
  if (fault.hang) {
    // A hang supersedes everything else for this task.
    fault.slowdown = 1.0;
    fault.fail = false;
    ++stats_.hangs;
    record(node_crashed(site.node) ? FaultKind::kNodeCrash
                                   : FaultKind::kGpuHang,
           site_str);
    return fault;
  }
  if (fault.slowdown != 1.0) {
    ++stats_.slowdowns;
    record(FaultKind::kSlowNode, site_str + " x" + format_time(fault.slowdown));
  }
  if (fault.fail) {
    ++stats_.task_errors;
    record(FaultKind::kTaskError, site_str);
  }
  return fault;
}

simnet::NetFault FaultInjector::on_message(int src, int dst, int tag,
                                           double bytes) {
  (void)bytes;
  simnet::NetFault fault;
  const double now = sim_.now();
  bool crash_drop = false;
  for (const FaultClause& c : plan_.clauses) {
    switch (c.kind) {
      case FaultKind::kNodeCrash:
        if (now >= c.at &&
            (node_matches(c.node_a, src) || node_matches(c.node_a, dst))) {
          fault.drop = true;
          crash_drop = true;
        }
        break;
      case FaultKind::kLinkDrop:
        if (link_matches(c, src, dst) && now >= c.at &&
            net_rng_.uniform() < c.probability) {
          fault.drop = true;
        }
        break;
      case FaultKind::kLinkDelay:
        if (link_matches(c, src, dst) && now >= c.at &&
            net_rng_.uniform() < c.probability) {
          fault.extra_delay += c.extra_delay;
        }
        break;
      case FaultKind::kLinkDup:
        if (link_matches(c, src, dst) && now >= c.at &&
            net_rng_.uniform() < c.probability) {
          fault.duplicate = true;
        }
        break;
      default:
        break;
    }
  }
  const std::string link_str = "node" + std::to_string(src) + "-node" +
                               std::to_string(dst) + " tag" +
                               std::to_string(tag);
  if (fault.drop) {
    ++stats_.drops;
    record(crash_drop ? FaultKind::kNodeCrash : FaultKind::kLinkDrop,
           link_str);
    // A dropped message cannot also be delayed or duplicated.
    fault.extra_delay = 0.0;
    fault.duplicate = false;
    return fault;
  }
  if (fault.extra_delay > 0.0) {
    ++stats_.delays;
    record(FaultKind::kLinkDelay,
           link_str + " +" + format_time(fault.extra_delay));
  }
  if (fault.duplicate) {
    ++stats_.duplicates;
    record(FaultKind::kLinkDup, link_str);
  }
  return fault;
}

}  // namespace prs::fault
