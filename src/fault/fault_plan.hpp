// Parsed fault-injection plan.
//
// A plan is a list of clauses parsed from a compact spec string, e.g.
//
//   gpu_hang:node1:t=2ms            stream worker on node1's GPU wedges at 2ms
//   node_crash:node2:t=5ms          node2 stops computing and answering at 5ms
//   slow_node:node3:x4              node3 runs all tasks 4x slower
//   slow_node:node0:x6:cpu          only node0's CPU tasks are slowed
//   task_error:node1:p=0.05         5% of node1's tasks fail transiently
//   link_drop:node0-node2:p=0.01    1% of messages between node0<->node2 drop
//   link_delay:*:t=1ms:p=0.1        10% of all messages get +1ms latency
//   link_dup:node0-*:p=0.02         2% of node0's wire traffic is duplicated
//
// Clauses are separated by ';' (or ','). Node targets are `nodeN` or `*`;
// link targets are `nodeA-nodeB` with `*` wildcards on either side and match
// both directions. Times accept s/ms/us/ns suffixes (bare numbers are
// seconds). The plan itself is pure data: the virtual-clock/randomness
// semantics live in FaultInjector.
#pragma once

#include <string>
#include <vector>

namespace prs::fault {

enum class FaultKind {
  kGpuHang,    // GPU stream commands on the node hang forever
  kNodeCrash,  // all tasks hang + all wire traffic to/from the node drops
  kSlowNode,   // task durations multiplied by `factor`
  kTaskError,  // tasks fail transiently with probability `probability`
  kLinkDrop,   // wire attempts on matching links drop
  kLinkDelay,  // wire attempts on matching links gain `extra_delay`
  kLinkDup,    // wire attempts on matching links are duplicated
};

/// Restricts device-targeted clauses to one engine class.
enum class DeviceFilter { kAny, kCpu, kGpu };

struct FaultClause {
  FaultKind kind = FaultKind::kTaskError;
  int node_a = -1;  // -1 = any node; for link kinds, one side of the link
  int node_b = -1;  // other side of the link (-1 = any)
  double at = 0.0;  // activation time on the virtual clock (seconds)
  double probability = 1.0;
  double factor = 1.0;       // slow_node multiplier (x4)
  double extra_delay = 0.0;  // link_delay amount (seconds, from t=)
  DeviceFilter device = DeviceFilter::kAny;

  bool operator==(const FaultClause&) const = default;
};

struct FaultPlan {
  std::vector<FaultClause> clauses;

  /// Parses a spec string; throws prs::InvalidArgument on malformed input.
  /// An empty/blank spec yields an empty plan (inject nothing).
  static FaultPlan parse(const std::string& spec);

  bool empty() const { return clauses.empty(); }

  /// Deterministic human-readable listing, one clause per line.
  std::string summary() const;

  /// Canonical spec string: parse(to_spec()) reproduces the same clauses
  /// (exact doubles via %.17g). Only grammar-expressible plans round-trip —
  /// a hand-built link_delay clause with an activation time has no spec
  /// form, since `t=` carries the delay for that kind.
  std::string to_spec() const;
};

const char* to_string(FaultKind kind);

}  // namespace prs::fault
