#include "fault/fault_plan.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>

#include "common/error.hpp"

namespace prs::fault {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

double parse_number(const std::string& text, const std::string& clause) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) {
      throw InvalidArgument("trailing junk in number '" + text +
                            "' in fault clause '" + clause + "'");
    }
    return v;
  } catch (const std::invalid_argument&) {
    throw InvalidArgument("bad number '" + text + "' in fault clause '" +
                          clause + "'");
  } catch (const std::out_of_range&) {
    // e.g. "1e99999": keep malformed-spec failures inside the prs::Error
    // hierarchy instead of leaking std exceptions.
    throw InvalidArgument("number out of range '" + text +
                          "' in fault clause '" + clause + "'");
  }
}

/// "2ms" -> 2e-3; suffixes s/ms/us/ns; bare numbers are seconds.
double parse_time(const std::string& text, const std::string& clause) {
  double scale = 1.0;
  std::string num = text;
  auto ends_with = [&](const char* suffix) {
    const std::string s(suffix);
    return num.size() > s.size() &&
           num.compare(num.size() - s.size(), s.size(), s) == 0;
  };
  if (ends_with("ns")) {
    scale = 1e-9;
    num = num.substr(0, num.size() - 2);
  } else if (ends_with("us")) {
    scale = 1e-6;
    num = num.substr(0, num.size() - 2);
  } else if (ends_with("ms")) {
    scale = 1e-3;
    num = num.substr(0, num.size() - 2);
  } else if (ends_with("s")) {
    scale = 1.0;
    num = num.substr(0, num.size() - 1);
  }
  const double v = parse_number(num, clause) * scale;
  if (v < 0.0) {
    throw InvalidArgument("negative time in fault clause '" + clause + "'");
  }
  return v;
}

/// "node3" -> 3, "*" -> -1; plain integers are accepted too.
int parse_node(const std::string& text, const std::string& clause) {
  if (text == "*") return -1;
  std::string num = text;
  if (num.rfind("node", 0) == 0) num = num.substr(4);
  if (num.empty()) {
    throw InvalidArgument("bad node target '" + text + "' in fault clause '" +
                          clause + "'");
  }
  for (char c : num) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      throw InvalidArgument("bad node target '" + text +
                            "' in fault clause '" + clause + "'");
    }
  }
  try {
    return std::stoi(num);
  } catch (const std::out_of_range&) {
    // e.g. "node99999999999999999999"
    throw InvalidArgument("node index out of range '" + text +
                          "' in fault clause '" + clause + "'");
  }
}

FaultClause parse_clause(const std::string& raw) {
  const std::string text = trim(raw);
  std::vector<std::string> parts = split(text, ':');
  if (parts.size() < 2) {
    throw InvalidArgument("fault clause '" + text +
                          "' needs at least kind:target");
  }
  FaultClause clause;
  const std::string kind = trim(parts[0]);
  bool link_kind = false;
  if (kind == "gpu_hang") {
    clause.kind = FaultKind::kGpuHang;
  } else if (kind == "node_crash") {
    clause.kind = FaultKind::kNodeCrash;
  } else if (kind == "slow_node") {
    clause.kind = FaultKind::kSlowNode;
  } else if (kind == "task_error") {
    clause.kind = FaultKind::kTaskError;
  } else if (kind == "link_drop") {
    clause.kind = FaultKind::kLinkDrop;
    link_kind = true;
  } else if (kind == "link_delay") {
    clause.kind = FaultKind::kLinkDelay;
    link_kind = true;
  } else if (kind == "link_dup") {
    clause.kind = FaultKind::kLinkDup;
    link_kind = true;
  } else {
    throw InvalidArgument("unknown fault kind '" + kind + "' in clause '" +
                          text + "'");
  }

  const std::string target = trim(parts[1]);
  if (link_kind) {
    const std::vector<std::string> ends = split(target, '-');
    if (ends.size() == 1 && trim(ends[0]) == "*") {
      clause.node_a = clause.node_b = -1;
    } else if (ends.size() == 2) {
      clause.node_a = parse_node(trim(ends[0]), text);
      clause.node_b = parse_node(trim(ends[1]), text);
    } else {
      throw InvalidArgument("bad link target '" + target +
                            "' in fault clause '" + text + "'");
    }
  } else {
    clause.node_a = parse_node(target, text);
  }

  for (std::size_t i = 2; i < parts.size(); ++i) {
    const std::string p = trim(parts[i]);
    if (p.rfind("t=", 0) == 0) {
      const double t = parse_time(p.substr(2), text);
      if (clause.kind == FaultKind::kLinkDelay) {
        clause.extra_delay = t;
      } else {
        clause.at = t;
      }
    } else if (p.rfind("p=", 0) == 0) {
      clause.probability = parse_number(p.substr(2), text);
      if (clause.probability < 0.0 || clause.probability > 1.0) {
        throw InvalidArgument("probability out of [0,1] in fault clause '" +
                              text + "'");
      }
    } else if (p.rfind("x", 0) == 0 && p.size() > 1) {
      clause.factor = parse_number(p.substr(1), text);
      if (clause.factor <= 0.0) {
        throw InvalidArgument("slowdown factor must be positive in '" + text +
                              "'");
      }
    } else if (p == "cpu") {
      clause.device = DeviceFilter::kCpu;
    } else if (p == "gpu") {
      clause.device = DeviceFilter::kGpu;
    } else {
      throw InvalidArgument("unknown parameter '" + p + "' in fault clause '" +
                            text + "'");
    }
  }

  if (clause.kind == FaultKind::kSlowNode && clause.factor == 1.0) {
    throw InvalidArgument("slow_node clause '" + text +
                          "' needs a slowdown factor (e.g. x4)");
  }
  if (clause.kind == FaultKind::kLinkDelay && clause.extra_delay == 0.0) {
    throw InvalidArgument("link_delay clause '" + text +
                          "' needs a delay (e.g. t=1ms)");
  }
  return clause;
}

std::string format_target(const FaultClause& c, bool link_kind) {
  auto node_str = [](int n) {
    return n < 0 ? std::string("*") : "node" + std::to_string(n);
  };
  if (!link_kind) return node_str(c.node_a);
  return node_str(c.node_a) + "-" + node_str(c.node_b);
}

std::string format_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Shortest decimal that round-trips the double exactly (for to_spec()).
std::string format_exact(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kGpuHang:
      return "gpu_hang";
    case FaultKind::kNodeCrash:
      return "node_crash";
    case FaultKind::kSlowNode:
      return "slow_node";
    case FaultKind::kTaskError:
      return "task_error";
    case FaultKind::kLinkDrop:
      return "link_drop";
    case FaultKind::kLinkDelay:
      return "link_delay";
    case FaultKind::kLinkDup:
      return "link_dup";
  }
  return "unknown";
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  // Accept both ';' and ',' as clause separators.
  std::string normalized = spec;
  for (char& c : normalized) {
    if (c == ',') c = ';';
  }
  for (const std::string& piece : split(normalized, ';')) {
    if (trim(piece).empty()) continue;
    plan.clauses.push_back(parse_clause(piece));
  }
  return plan;
}

std::string FaultPlan::to_spec() const {
  std::string out;
  for (const FaultClause& c : clauses) {
    const bool link_kind = c.kind == FaultKind::kLinkDrop ||
                           c.kind == FaultKind::kLinkDelay ||
                           c.kind == FaultKind::kLinkDup;
    if (!out.empty()) out += ';';
    out += to_string(c.kind);
    out += ':';
    out += format_target(c, link_kind);
    // The grammar's t= parameter means extra_delay for link_delay clauses
    // and activation time for every other kind.
    if (c.kind == FaultKind::kLinkDelay) {
      if (c.extra_delay > 0.0) out += ":t=" + format_exact(c.extra_delay) + "s";
    } else if (c.at > 0.0) {
      out += ":t=" + format_exact(c.at) + "s";
    }
    if (c.probability != 1.0) out += ":p=" + format_exact(c.probability);
    if (c.factor != 1.0) out += ":x" + format_exact(c.factor);
    if (c.device == DeviceFilter::kCpu) out += ":cpu";
    if (c.device == DeviceFilter::kGpu) out += ":gpu";
  }
  return out;
}

std::string FaultPlan::summary() const {
  std::string out;
  for (const FaultClause& c : clauses) {
    const bool link_kind = c.kind == FaultKind::kLinkDrop ||
                           c.kind == FaultKind::kLinkDelay ||
                           c.kind == FaultKind::kLinkDup;
    out += to_string(c.kind);
    out += " ";
    out += format_target(c, link_kind);
    if (c.at > 0.0) out += " t=" + format_value(c.at);
    if (c.extra_delay > 0.0) out += " delay=" + format_value(c.extra_delay);
    if (c.probability < 1.0) out += " p=" + format_value(c.probability);
    if (c.factor != 1.0) out += " x" + format_value(c.factor);
    if (c.device == DeviceFilter::kCpu) out += " cpu";
    if (c.device == DeviceFilter::kGpu) out += " gpu";
    out += "\n";
  }
  return out;
}

}  // namespace prs::fault
