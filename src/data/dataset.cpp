#include "data/dataset.hpp"

#include <cmath>

#include "common/error.hpp"

namespace prs::data {

Dataset sample_gaussian_mixture(Rng& rng, std::size_t n,
                                const std::vector<GaussianComponent>& comps) {
  PRS_REQUIRE(!comps.empty(), "mixture needs at least one component");
  const std::size_t d = comps.front().mean.size();
  double total_weight = 0.0;
  for (const auto& c : comps) {
    PRS_REQUIRE(c.mean.size() == d && c.stddev.size() == d,
                "all components must share the dimensionality");
    PRS_REQUIRE(c.weight > 0.0, "component weights must be positive");
    total_weight += c.weight;
  }

  Dataset ds;
  ds.points = linalg::MatrixD(n, d);
  ds.labels.resize(n);
  ds.num_clusters = static_cast<int>(comps.size());

  for (std::size_t i = 0; i < n; ++i) {
    // Pick the component by weight.
    double u = rng.uniform() * total_weight;
    std::size_t k = 0;
    for (; k + 1 < comps.size(); ++k) {
      if (u < comps[k].weight) break;
      u -= comps[k].weight;
    }
    const auto& c = comps[k];
    for (std::size_t j = 0; j < d; ++j) {
      ds.points(i, j) = rng.normal(c.mean[j], c.stddev[j]);
    }
    ds.labels[i] = static_cast<int>(k);
  }
  return ds;
}

Dataset generate_flame_like(Rng& rng, std::size_t n) {
  // Five overlapping, anisotropic 4-D Gaussians with unequal weights,
  // mimicking the lymphocyte subpopulations in the FLAME data set: two
  // large nearby populations, two medium, one small tight one.
  std::vector<GaussianComponent> comps = {
      {0.34, {0.0, 0.0, 0.0, 0.0}, {1.2, 0.8, 1.0, 0.6}},
      {0.27, {2.4, 1.2, -0.5, 0.8}, {0.9, 1.3, 0.7, 1.0}},
      {0.18, {-2.2, 2.6, 1.4, -1.0}, {0.7, 0.6, 1.1, 0.8}},
      {0.14, {1.0, -2.8, 2.2, 1.6}, {1.0, 0.9, 0.5, 0.7}},
      {0.07, {-1.2, -1.6, -2.4, 2.8}, {0.4, 0.5, 0.4, 0.5}},
  };
  return sample_gaussian_mixture(rng, n, comps);
}

Dataset generate_blobs(Rng& rng, std::size_t n, std::size_t d, int k,
                       double separation, double sigma) {
  PRS_REQUIRE(k >= 1, "need at least one blob");
  std::vector<GaussianComponent> comps;
  comps.reserve(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) {
    GaussianComponent g;
    g.weight = 1.0;
    g.mean.resize(d);
    g.stddev.assign(d, sigma);
    // Place centers on a randomized lattice so any d, k combination stays
    // separated by ~`separation`.
    for (std::size_t j = 0; j < d; ++j) {
      const double base =
          separation * static_cast<double>((c >> (j % 8)) & 1 ? c : -c);
      g.mean[j] = base + rng.uniform(-0.1, 0.1) * separation;
    }
    comps.push_back(std::move(g));
  }
  return sample_gaussian_mixture(rng, n, comps);
}

linalg::MatrixD random_matrix(Rng& rng, std::size_t rows, std::size_t cols,
                              double lo, double hi) {
  linalg::MatrixD m(rows, cols);
  for (auto& v : m.storage()) v = rng.uniform(lo, hi);
  return m;
}

std::vector<double> random_vector(Rng& rng, std::size_t n, double lo,
                                  double hi) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

}  // namespace prs::data
