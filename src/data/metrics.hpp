// Clustering-quality metrics for the Figure 5 comparison.
//
// The paper compares C-means against K-means (and DA) "in terms of average
// width over clusters and points and clusters overlapping with standard
// Flame results". We quantify both:
//   * average_cluster_width — mean distance of points to their assigned
//     center (lower = tighter clusters);
//   * overlap_with_reference — best-matching F-measure between a computed
//     labelling and the ground truth (higher = better agreement);
//   * purity and adjusted Rand index as additional standard measures.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace prs::data {

/// Mean Euclidean distance from each point to its assigned center.
/// `assignment[i]` indexes into `centers` rows.
double average_cluster_width(const linalg::MatrixD& points,
                             const std::vector<int>& assignment,
                             const linalg::MatrixD& centers);

/// Best-match F-measure: for each reference cluster take the computed
/// cluster maximizing F1 of the overlap, weight by reference cluster size.
/// In [0, 1], 1 = perfect recovery of the reference partition.
double overlap_with_reference(const std::vector<int>& computed,
                              const std::vector<int>& reference);

/// Fraction of points whose computed cluster's majority reference label
/// matches their own. In (0, 1].
double purity(const std::vector<int>& computed,
              const std::vector<int>& reference);

/// Adjusted Rand index between two labelings; 1 = identical partitions,
/// ~0 = random agreement.
double adjusted_rand_index(const std::vector<int>& a,
                           const std::vector<int>& b);

}  // namespace prs::data
