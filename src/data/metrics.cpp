#include "data/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <span>

#include "common/error.hpp"
#include "linalg/blas.hpp"

namespace prs::data {
namespace {

/// Contingency table between two labelings, plus marginals.
struct Contingency {
  std::map<std::pair<int, int>, std::size_t> cells;
  std::map<int, std::size_t> row_sums;  // first labeling
  std::map<int, std::size_t> col_sums;  // second labeling
  std::size_t n = 0;
};

Contingency build_contingency(const std::vector<int>& a,
                              const std::vector<int>& b) {
  PRS_REQUIRE(a.size() == b.size(), "labelings must have equal length");
  PRS_REQUIRE(!a.empty(), "labelings must be non-empty");
  Contingency t;
  t.n = a.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    ++t.cells[{a[i], b[i]}];
    ++t.row_sums[a[i]];
    ++t.col_sums[b[i]];
  }
  return t;
}

double choose2(double n) { return n * (n - 1.0) / 2.0; }

}  // namespace

double average_cluster_width(const linalg::MatrixD& points,
                             const std::vector<int>& assignment,
                             const linalg::MatrixD& centers) {
  PRS_REQUIRE(assignment.size() == points.rows(),
              "one assignment per point required");
  PRS_REQUIRE(centers.cols() == points.cols(),
              "centers must share the point dimensionality");
  const std::size_t d = points.cols();
  double total = 0.0;
  for (std::size_t i = 0; i < points.rows(); ++i) {
    const int c = assignment[i];
    PRS_REQUIRE(c >= 0 && static_cast<std::size_t>(c) < centers.rows(),
                "assignment references a missing center");
    total += std::sqrt(linalg::squared_distance<double>(
        {points.row(i), d}, {centers.row(static_cast<std::size_t>(c)), d}));
  }
  return total / static_cast<double>(points.rows());
}

double overlap_with_reference(const std::vector<int>& computed,
                              const std::vector<int>& reference) {
  const Contingency t = build_contingency(reference, computed);
  double weighted_f = 0.0;
  for (const auto& [ref_label, ref_size] : t.row_sums) {
    double best_f = 0.0;
    for (const auto& [comp_label, comp_size] : t.col_sums) {
      const auto it = t.cells.find({ref_label, comp_label});
      if (it == t.cells.end()) continue;
      const double inter = static_cast<double>(it->second);
      const double precision = inter / static_cast<double>(comp_size);
      const double recall = inter / static_cast<double>(ref_size);
      const double f = 2.0 * precision * recall / (precision + recall);
      best_f = std::max(best_f, f);
    }
    weighted_f +=
        best_f * static_cast<double>(ref_size) / static_cast<double>(t.n);
  }
  return weighted_f;
}

double purity(const std::vector<int>& computed,
              const std::vector<int>& reference) {
  const Contingency t = build_contingency(computed, reference);
  // For each computed cluster, count its majority reference label.
  std::map<int, std::size_t> best_per_cluster;
  for (const auto& [key, count] : t.cells) {
    auto& best = best_per_cluster[key.first];
    best = std::max(best, count);
  }
  std::size_t correct = 0;
  for (const auto& [cluster, best] : best_per_cluster) correct += best;
  return static_cast<double>(correct) / static_cast<double>(t.n);
}

double adjusted_rand_index(const std::vector<int>& a,
                           const std::vector<int>& b) {
  const Contingency t = build_contingency(a, b);
  double sum_cells = 0.0;
  for (const auto& [key, count] : t.cells) {
    sum_cells += choose2(static_cast<double>(count));
  }
  double sum_rows = 0.0;
  for (const auto& [label, count] : t.row_sums) {
    sum_rows += choose2(static_cast<double>(count));
  }
  double sum_cols = 0.0;
  for (const auto& [label, count] : t.col_sums) {
    sum_cols += choose2(static_cast<double>(count));
  }
  const double total_pairs = choose2(static_cast<double>(t.n));
  const double expected = sum_rows * sum_cols / total_pairs;
  const double max_index = 0.5 * (sum_rows + sum_cols);
  if (max_index == expected) return 1.0;  // degenerate: single cluster both
  return (sum_cells - expected) / (max_index - expected);
}

}  // namespace prs::data
