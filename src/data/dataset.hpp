// Point-set containers and synthetic data generators.
//
// The paper evaluates clustering on a FLAME flow-cytometry Lymphocytes data
// set (20054 points, 4 dimensions, 5 clusters) that we cannot redistribute;
// generate_flame_like() produces a Gaussian mixture with the same shape
// (overlapping anisotropic clusters, same N/D/K) and ground-truth labels so
// that the Figure 5 quality comparison is quantitative (see DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace prs::data {

/// A labelled point set: N points of dimension D, row-major.
struct Dataset {
  linalg::MatrixD points;           // N x D
  std::vector<int> labels;          // ground truth, size N (may be empty)
  int num_clusters = 0;             // ground-truth cluster count (0 unknown)

  std::size_t size() const { return points.rows(); }
  std::size_t dims() const { return points.cols(); }
};

/// One mixture component with diagonal covariance.
struct GaussianComponent {
  double weight = 1.0;              // mixing proportion (normalized on use)
  std::vector<double> mean;         // D
  std::vector<double> stddev;       // D (per-dimension sigma)
};

/// Samples `n` points from the mixture; labels record the component.
Dataset sample_gaussian_mixture(Rng& rng, std::size_t n,
                                const std::vector<GaussianComponent>& comps);

/// Synthetic stand-in for the FLAME Lymphocytes set: 4-D, 5 overlapping
/// anisotropic clusters, default 20054 points (paper §IV.A.1).
Dataset generate_flame_like(Rng& rng, std::size_t n = 20054);

/// `k` well-separated spherical clusters in `d` dimensions (easy case for
/// correctness tests).
Dataset generate_blobs(Rng& rng, std::size_t n, std::size_t d, int k,
                       double separation = 10.0, double sigma = 1.0);

/// Uniform random matrix entries in [lo, hi] (GEMV/GEMM inputs).
linalg::MatrixD random_matrix(Rng& rng, std::size_t rows, std::size_t cols,
                              double lo = -1.0, double hi = 1.0);

/// Uniform random vector.
std::vector<double> random_vector(Rng& rng, std::size_t n, double lo = -1.0,
                                  double hi = 1.0);

}  // namespace prs::data
