#include "simdev/virtual_gpu.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace prs::simdev {

VGpuLease::VGpuLease(VGpuLease&& o) noexcept
    : pool_(o.pool_),
      id_(o.id_),
      owner_(std::move(o.owner_)),
      cards_(std::move(o.cards_)),
      memory_quota_(o.memory_quota_) {
  o.pool_ = nullptr;
  o.id_ = -1;
}

VGpuLease& VGpuLease::operator=(VGpuLease&& o) noexcept {
  if (this != &o) {
    release();
    pool_ = o.pool_;
    id_ = o.id_;
    owner_ = std::move(o.owner_);
    cards_ = std::move(o.cards_);
    memory_quota_ = o.memory_quota_;
    o.pool_ = nullptr;
    o.id_ = -1;
  }
  return *this;
}

VGpuLease::~VGpuLease() { release(); }

void VGpuLease::release() {
  if (pool_ != nullptr) {
    pool_->release(*this);
    pool_ = nullptr;
    id_ = -1;
    cards_.clear();
  }
}

VirtualGpuPool::VirtualGpuPool(VGpuPoolConfig cfg) : cfg_(std::move(cfg)) {
  PRS_REQUIRE(cfg_.cards >= 1, "vGPU pool needs at least one physical card");
  PRS_REQUIRE(cfg_.slots_per_card >= 1,
              "vGPU pool needs at least one slot per card");
  card_state_.resize(static_cast<std::size_t>(cfg_.cards));
}

VGpuLease VirtualGpuPool::acquire(const std::string& owner, int count,
                                  std::uint64_t memory_quota) {
  PRS_REQUIRE(count >= 1, "vGPU lease needs at least one slot");
  if (count > free_slots()) {
    throw ResourceExhausted(
        "vGPU pool exhausted: " + std::to_string(count) +
        " slot(s) requested, " + std::to_string(free_slots()) + " of " +
        std::to_string(capacity()) + " free");
  }
  std::vector<int> cards;
  cards.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Least-loaded placement, lowest card index on ties — deterministic.
    int best = -1;
    for (int c = 0; c < cfg_.cards; ++c) {
      const auto& st = card_state_[static_cast<std::size_t>(c)];
      if (st.vgpus >= cfg_.slots_per_card) continue;
      if (best < 0 ||
          st.vgpus < card_state_[static_cast<std::size_t>(best)].vgpus) {
        best = c;
      }
    }
    PRS_CHECK(best >= 0, "free_slots() said slots were free");
    ++card_state_[static_cast<std::size_t>(best)].vgpus;
    ++slots_in_use_;
    cards.push_back(best);
  }
  ++active_leases_;
  const int id = next_lease_id_++;
  usage_[id] = LeaseUsage{};
  return VGpuLease(this, id, owner, std::move(cards), memory_quota);
}

void VirtualGpuPool::release(VGpuLease& lease) {
  for (int c : lease.cards_) {
    auto& st = card_state_[static_cast<std::size_t>(c)];
    PRS_CHECK(st.vgpus > 0, "vGPU release underflow");
    --st.vgpus;
    --slots_in_use_;
  }
  usage_.erase(lease.id_);
  --active_leases_;
}

DeviceSpec VirtualGpuPool::vgpu_spec(const VGpuLease& lease) const {
  DeviceSpec spec = cfg_.card_spec;
  if (lease.memory_quota() > 0) {
    spec.memory_bytes = std::min(spec.memory_bytes, lease.memory_quota());
  }
  spec.name = "vGPU(" + spec.name + ")";
  return spec;
}

void VirtualGpuPool::report_usage(const VGpuLease& lease,
                                  std::uint64_t open_streams,
                                  std::uint64_t memory_in_use) {
  auto it = usage_.find(lease.id());
  PRS_REQUIRE(it != usage_.end(), "usage report for a released lease");
  it->second.streams = open_streams;
  it->second.memory = memory_in_use;
}

void VirtualGpuPool::charge_busy(const VGpuLease& lease,
                                 double device_seconds) {
  if (lease.size() == 0 || device_seconds <= 0.0) return;
  const double per_card = device_seconds / lease.size();
  for (int c : lease.cards()) {
    card_state_[static_cast<std::size_t>(c)].busy += per_card;
  }
}

std::uint64_t VirtualGpuPool::open_streams() const {
  std::uint64_t n = 0;
  for (const auto& [id, u] : usage_) n += u.streams;
  return n;
}

std::uint64_t VirtualGpuPool::memory_in_use() const {
  std::uint64_t n = 0;
  for (const auto& [id, u] : usage_) n += u.memory;
  return n;
}

double VirtualGpuPool::card_busy(int card) const {
  PRS_REQUIRE(card >= 0 && card < cfg_.cards, "card index out of range");
  return card_state_[static_cast<std::size_t>(card)].busy;
}

int VirtualGpuPool::card_vgpus(int card) const {
  PRS_REQUIRE(card >= 0 && card < cfg_.cards, "card index out of range");
  return card_state_[static_cast<std::size_t>(card)].vgpus;
}

}  // namespace prs::simdev
