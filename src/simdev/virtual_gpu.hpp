// Virtual GPUs multiplexed over the physical simulated cards (Li et al.,
// "Efficient Resource Sharing Through GPU Virtualization on Accelerated HPC
// Systems" — see PAPERS.md).
//
// A VirtualGpuPool owns the inventory of physical card *slots*: each of the
// `cards` physical devices exposes `slots_per_card` vGPU slots, so a pool
// with 2 cards at 4x oversubscription can lease 8 vGPUs. A tenant job asks
// for N vGPUs (one per simulated card of its private cluster) and gets a
// VGpuLease — an RAII handle pinning N slots onto concrete physical cards
// (deterministic least-loaded placement, ties broken by card index).
//
// Per-vGPU accounting, the isolation half of the design:
//   * memory: each lease carries a per-vGPU memory quota. vgpu_spec()
//     shapes the job's DeviceSpec so the simulated card enforces
//     min(physical capacity, quota) — an over-quota tenant gets a
//     deterministic ResourceExhausted from its *own* allocation, never a
//     corrupted neighbour.
//   * streams/memory in use: the service reports the job's live stream and
//     device-memory footprint at every scheduling gate; on release both
//     must return to zero, which is how the cancel tests prove nothing
//     leaked.
//   * busy time: virtual device-seconds are charged to the lease's cards,
//     giving the per-card utilization view under oversubscription.
//
// The pool is bookkeeping only (the physical GpuDevice objects live inside
// each job's cluster); it is not thread-safe — the JobServer serializes all
// calls under its own lock.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "simdev/device_spec.hpp"

namespace prs::simdev {

class VirtualGpuPool;

struct VGpuPoolConfig {
  /// Physical simulated cards backing the pool.
  int cards = 1;
  /// vGPU slots per physical card (1 = no oversubscription).
  int slots_per_card = 1;
  /// Spec of every physical card (homogeneous pool, like the paper's
  /// testbeds).
  DeviceSpec card_spec = delta_c2070();
};

/// RAII lease of `size()` vGPU slots. Move-only; releasing (or destroying)
/// returns the slots and clears the per-lease accounting.
class VGpuLease {
 public:
  VGpuLease() = default;
  VGpuLease(VGpuLease&& o) noexcept;
  VGpuLease& operator=(VGpuLease&& o) noexcept;
  VGpuLease(const VGpuLease&) = delete;
  VGpuLease& operator=(const VGpuLease&) = delete;
  ~VGpuLease();

  bool valid() const { return pool_ != nullptr; }
  int size() const { return static_cast<int>(cards_.size()); }
  /// Physical card index backing vGPU i of this lease.
  const std::vector<int>& cards() const { return cards_; }
  std::uint64_t memory_quota() const { return memory_quota_; }
  const std::string& owner() const { return owner_; }
  int id() const { return id_; }

  void release();

 private:
  friend class VirtualGpuPool;
  VGpuLease(VirtualGpuPool* pool, int id, std::string owner,
            std::vector<int> cards, std::uint64_t memory_quota)
      : pool_(pool),
        id_(id),
        owner_(std::move(owner)),
        cards_(std::move(cards)),
        memory_quota_(memory_quota) {}

  VirtualGpuPool* pool_ = nullptr;
  int id_ = -1;
  std::string owner_;
  std::vector<int> cards_;  // physical card per vGPU
  std::uint64_t memory_quota_ = 0;
};

class VirtualGpuPool {
 public:
  explicit VirtualGpuPool(VGpuPoolConfig cfg);
  VirtualGpuPool(const VirtualGpuPool&) = delete;
  VirtualGpuPool& operator=(const VirtualGpuPool&) = delete;

  int cards() const { return cfg_.cards; }
  int capacity() const { return cfg_.cards * cfg_.slots_per_card; }
  int slots_in_use() const { return slots_in_use_; }
  int free_slots() const { return capacity() - slots_in_use_; }
  const VGpuPoolConfig& config() const { return cfg_; }

  bool can_acquire(int count) const { return count <= free_slots(); }

  /// Leases `count` vGPU slots for `owner`. `memory_quota` caps each vGPU's
  /// device memory (0 = full physical card). Throws ResourceExhausted when
  /// fewer than `count` slots are free. Placement is deterministic:
  /// repeatedly pick the card with the fewest occupied slots (lowest index
  /// on ties).
  VGpuLease acquire(const std::string& owner, int count,
                    std::uint64_t memory_quota = 0);

  /// DeviceSpec a leased vGPU presents to its job: the physical card with
  /// memory capped to the lease quota.
  DeviceSpec vgpu_spec(const VGpuLease& lease) const;

  /// Reports the lease's current footprint on its physical cards (live
  /// streams and allocated device bytes across the job's simulated cards).
  /// Called at every scheduling gate; replaced, not accumulated.
  void report_usage(const VGpuLease& lease, std::uint64_t open_streams,
                    std::uint64_t memory_in_use);

  /// Charges `device_seconds` of virtual busy time, spread evenly over the
  /// lease's cards.
  void charge_busy(const VGpuLease& lease, double device_seconds);

  // Pool-wide introspection (the leak checks of the cancel tests).
  int active_leases() const { return active_leases_; }
  std::uint64_t open_streams() const;
  std::uint64_t memory_in_use() const;
  double card_busy(int card) const;
  int card_vgpus(int card) const;  // occupied slots on one card

 private:
  friend class VGpuLease;
  void release(VGpuLease& lease);

  struct CardState {
    int vgpus = 0;           // occupied slots
    double busy = 0.0;       // charged virtual device-seconds
  };
  struct LeaseUsage {
    std::uint64_t streams = 0;
    std::uint64_t memory = 0;
  };

  VGpuPoolConfig cfg_;
  std::vector<CardState> card_state_;
  std::map<int, LeaseUsage> usage_;  // live leases by id
  int next_lease_id_ = 1;
  int slots_in_use_ = 0;
  int active_leases_ = 0;
};

}  // namespace prs::simdev
