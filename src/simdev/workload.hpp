// Workload descriptors: what a task *costs*, independent of what it computes.
//
// The runtime separates a task's functional payload (real C++ code producing
// real results) from its resource footprint. The footprint drives the
// virtual-time device models and the roofline scheduler; the payload drives
// correctness tests. This is the substitution that lets the reproduction run
// the paper's GPU-cluster experiments on any host.
#pragma once

#include "common/error.hpp"

namespace prs::simdev {

/// Resource footprint of one task/kernel execution.
struct Workload {
  /// Floating-point operations performed.
  double flops = 0.0;

  /// Bytes staged *into* the device before compute (PCI-E for GPUs).
  double bytes_in = 0.0;

  /// Bytes staged *out of* the device after compute.
  double bytes_out = 0.0;

  /// Device-memory traffic during the compute itself (>= unique bytes
  /// touched; reuse in cache reduces it, streaming increases it).
  double mem_traffic = 0.0;

  /// Arithmetic intensity A = flops / bytes of memory traffic — the X axis
  /// of the roofline plot.
  double arithmetic_intensity() const {
    PRS_REQUIRE(mem_traffic > 0.0,
                "arithmetic intensity needs positive memory traffic");
    return flops / mem_traffic;
  }

  /// Total staged bytes (both directions).
  double staged_bytes() const { return bytes_in + bytes_out; }

  /// Splits this workload proportionally: returns the `fraction` share.
  /// Used by the sub-task scheduler when dividing a partition.
  Workload scaled(double fraction) const {
    PRS_REQUIRE(fraction >= 0.0, "workload fraction must be non-negative");
    return Workload{flops * fraction, bytes_in * fraction,
                    bytes_out * fraction, mem_traffic * fraction};
  }

  Workload operator+(const Workload& o) const {
    return Workload{flops + o.flops, bytes_in + o.bytes_in,
                    bytes_out + o.bytes_out, mem_traffic + o.mem_traffic};
  }
};

}  // namespace prs::simdev
