#include "simdev/region.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "simtime/simulator.hpp"

namespace prs::simdev {
namespace {

constexpr bool is_power_of_two(std::size_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

std::size_t align_up(std::size_t offset, std::size_t alignment) {
  return (offset + alignment - 1) & ~(alignment - 1);
}

}  // namespace

Region::Region(std::size_t initial_chunk_bytes, std::size_t max_chunk_bytes,
               sim::Simulator* sim, std::string trace_process)
    : sim_(sim),
      trace_process_(std::move(trace_process)),
      next_chunk_bytes_(initial_chunk_bytes),
      max_chunk_bytes_(max_chunk_bytes) {
  PRS_REQUIRE(initial_chunk_bytes > 0, "initial chunk must be non-empty");
  PRS_REQUIRE(max_chunk_bytes >= initial_chunk_bytes,
              "max chunk must be >= initial chunk");
}

void Region::trace_instant(const char* name, std::size_t bytes) {
  if (sim_ == nullptr) return;
  obs::TraceRecorder* tr = sim_->tracer();
  if (tr == nullptr || !tr->enabled()) return;
  const obs::TrackId track = tr->track(trace_process_, "region");
  tr->instant(track, name, "mem",
              {obs::arg("bytes", static_cast<std::uint64_t>(bytes)),
               obs::arg("reserved",
                        static_cast<std::uint64_t>(bytes_reserved_))});
  tr->counter(track, "region.bytes_reserved",
              static_cast<double>(bytes_reserved_));
}

void* Region::allocate(std::size_t bytes, std::size_t alignment) {
  PRS_REQUIRE(is_power_of_two(alignment), "alignment must be a power of two");
  if (bytes == 0) bytes = 1;  // distinct non-null pointers for 0-byte asks

  // Alignment must hold for the absolute address, not the chunk offset.
  auto aligned_offset = [&](const Chunk& c) {
    const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
    return align_up(base + c.used, alignment) - base;
  };

  if (chunks_.empty()) add_chunk(bytes + alignment);
  Chunk* c = &chunks_.back();
  std::size_t offset = aligned_offset(*c);
  if (offset + bytes > c->size) {
    add_chunk(bytes + alignment);
    c = &chunks_.back();
    offset = aligned_offset(*c);
    PRS_CHECK(offset + bytes <= c->size, "fresh chunk too small");
  }
  c->used = offset + bytes;
  bytes_allocated_ += bytes;
  ++allocation_count_;
  return c->data.get() + offset;
}

void Region::clear() {
  if (chunks_.empty()) return;
  // Keep the largest chunk to serve the next batch without re-reserving.
  auto largest = std::max_element(
      chunks_.begin(), chunks_.end(),
      [](const Chunk& a, const Chunk& b) { return a.size < b.size; });
  Chunk kept = std::move(*largest);
  kept.used = 0;
  chunks_.clear();
  bytes_reserved_ = kept.size;
  chunks_.push_back(std::move(kept));
  bytes_allocated_ = 0;
  allocation_count_ = 0;
  trace_instant("region.clear", bytes_reserved_);
}

void Region::add_chunk(std::size_t at_least) {
  const std::size_t size = std::max(at_least, next_chunk_bytes_);
  Chunk c;
  c.data = std::make_unique<std::byte[]>(size);
  c.size = size;
  chunks_.push_back(std::move(c));
  bytes_reserved_ += size;
  next_chunk_bytes_ = std::min(next_chunk_bytes_ * 2, max_chunk_bytes_);
  trace_instant("region.grow", size);
}

}  // namespace prs::simdev
