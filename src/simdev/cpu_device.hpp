// CPU device model: a pool of cores executing tasks on the virtual clock.
//
// Each submitted task occupies one core; its duration follows the roofline
// with per-core slices of peak performance and DRAM bandwidth:
//     t = max(flops / (eff_c * peak/cores),
//             mem_traffic / (eff_m * dram_bw/cores))
// When all cores are busy the aggregate rate is therefore
// min(eff_c * peak, AI * eff_m * dram_bw) — exactly the CPU roofline the
// paper's Eq (6) assumes. (With fewer running tasks than cores the model
// under-uses DRAM slightly; the PRS always oversubscribes cores, so the
// saturated regime is the one that matters.)
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simdev/device_spec.hpp"
#include "simdev/fault_hook.hpp"
#include "simdev/workload.hpp"
#include "simtime/future.hpp"
#include "simtime/resource.hpp"
#include "simtime/simulator.hpp"

namespace prs::simdev {

/// A task to run on one CPU core.
struct CpuTask {
  std::string name;
  Workload workload;
  /// Fraction of per-core peak flops attained (calibration).
  double compute_efficiency = 1.0;
  /// Fraction of per-core DRAM bandwidth attained.
  double memory_efficiency = 1.0;
  /// Functional payload; runs at task completion time.
  std::function<void()> body;
  /// Optional out-flag set to true when fault injection fails this task
  /// (the body is then skipped but the completion future still resolves).
  bool* failed = nullptr;
};

/// One simulated multi-core CPU (all sockets of a node together).
class CpuDevice {
 public:
  /// `reserved_cores` restricts how many cores the runtime may use
  /// (0 = all). The paper dedicates all cores minus the GPU daemon thread.
  CpuDevice(sim::Simulator& sim, DeviceSpec spec, int reserved_cores = 0);
  CpuDevice(const CpuDevice&) = delete;
  CpuDevice& operator=(const CpuDevice&) = delete;

  const DeviceSpec& spec() const { return spec_; }
  sim::Simulator& simulator() { return sim_; }
  int cores() const { return cores_in_use_; }

  /// Submits a task to the core pool; the future resolves at completion.
  sim::Future<sim::Unit> submit(CpuTask task);

  /// Roofline duration of the task on one core (without queueing).
  double task_duration(const CpuTask& task) const;

  // Utilization counters (profiling-based splits, Table 5).
  double busy_time() const { return busy_time_; }
  double flops_executed() const { return flops_executed_; }
  std::uint64_t tasks_executed() const { return tasks_executed_; }
  void reset_counters();

  /// Trace "process" this device's spans are filed under (obs/trace.hpp);
  /// FatNode sets "node<r>", standalone devices default to "dev". Tasks
  /// appear on per-core lanes "cpu.core<k>" so concurrent spans never
  /// overlap within one track.
  void set_trace_process(std::string process) {
    trace_process_ = std::move(process);
  }

  /// Attaches (or detaches, with nullptr) the fault-injection hook and
  /// records which cluster node this device belongs to. Costs one null
  /// check per task when detached.
  void set_fault_context(ExecFaultHook* hook, int node) {
    fault_hook_ = hook;
    fault_node_ = node;
  }

 private:
  sim::Process task_worker(CpuTask task, sim::Promise<sim::Unit> done);
  int acquire_trace_lane();

  sim::Simulator& sim_;
  DeviceSpec spec_;
  int cores_in_use_;
  sim::Resource core_pool_;
  double busy_time_ = 0.0;
  double flops_executed_ = 0.0;
  std::uint64_t tasks_executed_ = 0;
  std::string trace_process_ = "dev";
  std::vector<std::uint8_t> trace_lane_busy_;  // per-core span lanes
  ExecFaultHook* fault_hook_ = nullptr;
  int fault_node_ = -1;
};

}  // namespace prs::simdev
