// Hardware device descriptions.
//
// A DeviceSpec carries exactly the parameters the paper's roofline-derived
// scheduler consumes (Table 2): peak flop rate, DRAM bandwidth, PCI-E
// bandwidth, plus queueing properties (hardware work queues: 1 on Fermi,
// many on Kepler Hyper-Q) and capacity limits. Factory functions return the
// calibrated specs of the paper's testbeds (Table 4: FutureGrid "Delta" and
// IU "BigRed2").
#pragma once

#include <cstdint>
#include <string>

namespace prs::simdev {

enum class DeviceKind { kCpu, kGpu };

/// Static description of one compute device.
struct DeviceSpec {
  std::string name;
  DeviceKind kind = DeviceKind::kCpu;

  /// Peak flop rate of the whole device (flops/s).
  double peak_flops = 0.0;

  /// Bandwidth of the device's own memory (bytes/s). For the CPU this is
  /// host DRAM; for the GPU it is device global memory.
  double dram_bandwidth = 0.0;

  /// Host<->device bandwidth over PCI-E (bytes/s); 0 for CPUs, which access
  /// host DRAM directly.
  double pcie_bandwidth = 0.0;

  /// One-way PCI-E transfer latency (s).
  double pcie_latency = 0.0;

  /// Physical cores (CPU) or CUDA cores (GPU); CPUs use this to slice peak
  /// performance and DRAM bandwidth across concurrently running tasks.
  int cores = 1;

  /// Device memory capacity (bytes).
  std::uint64_t memory_bytes = 0;

  /// Concurrent hardware work queues: 1 on Fermi (operations from all
  /// streams serialize), >1 on Kepler Hyper-Q (streams overlap).
  int hardware_queues = 1;

  /// Fixed overhead charged per kernel launch (s).
  double kernel_launch_overhead = 0.0;

  /// Ridge point of this device's roofline when data is resident in device
  /// memory: arithmetic intensity (flops/byte) where the device turns from
  /// bandwidth-bound to compute-bound.
  double ridge_point() const { return peak_flops / dram_bandwidth; }
};

// -- Calibrated testbed devices (paper Table 4 + Figure 3) --------------------

/// Delta node host: 2x Intel Xeon 5660, 12 cores, 192 GB.
/// Pc = 130 Gflop/s measured peak, B_dram = 40 GB/s.
DeviceSpec delta_cpu();

/// Delta node accelerator: NVIDIA Tesla C2070 (Fermi), 448 cores, 6 GB.
/// Pg = 1030 Gflop/s (SP), device DRAM 144 GB/s, effective PCI-E 1.1 GB/s,
/// one hardware work queue.
DeviceSpec delta_c2070();

/// BigRed2 node host: AMD Opteron 6212, 32 cores, 62 GB.
DeviceSpec bigred2_cpu();

/// BigRed2 accelerator: NVIDIA K20 (Kepler), 2496 cores, 5 GB, Hyper-Q.
DeviceSpec bigred2_k20();

/// Intel Xeon Phi 5110P (MIC) modeled as an accelerator: the paper's
/// future-work item (b) — "extend the framework to other backend or
/// accelerators, such as OpenCL, MIC". The device abstraction (peak rate,
/// GDDR bandwidth, PCI-E staging, concurrent command queues) covers it
/// without code changes.
DeviceSpec xeon_phi_5110p();

}  // namespace prs::simdev
