// GPU device model: CUDA-like streams, async copies and kernel launches on
// the virtual clock, with functional kernel payloads executed on the host.
//
// Semantics mirrored from CUDA (what the paper's PRS uses):
//   * a Stream is an in-order queue of commands (H2D copy, kernel, D2H copy);
//   * commands in different streams may overlap, limited by the device's
//     hardware work queues (1 on Fermi => cross-stream serialization; many
//     on Kepler Hyper-Q => copy/compute overlap, Eq (9) of the paper);
//   * all H2D/D2H copies share one PCI-E link (BandwidthLink, FIFO);
//   * kernels serialize on the compute engine; a kernel's duration comes
//     from the roofline: max(flops / (eff_c * peak),
//                            mem_traffic / (eff_m * dram_bw)) + launch cost.
//
// Lifetime: the device must outlive every simulator event that touches it.
// Destroying a device closes its stream queues so the actor processes exit
// on the next run(); the intended pattern is to drain the simulator before
// tearing anything down.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "simdev/device_spec.hpp"
#include "simdev/fault_hook.hpp"
#include "simdev/workload.hpp"
#include "simtime/channel.hpp"
#include "simtime/future.hpp"
#include "simtime/resource.hpp"
#include "simtime/simulator.hpp"

namespace prs::simdev {

class GpuDevice;

/// A kernel launch request: timing descriptor + optional functional payload.
struct KernelDesc {
  std::string name;
  Workload workload;
  /// Fraction of the device's peak flop rate this kernel attains
  /// (per-application calibration, see core/calibration.hpp).
  double compute_efficiency = 1.0;
  /// Fraction of the device's DRAM bandwidth this kernel attains.
  double memory_efficiency = 1.0;
  /// Host-executed functional payload producing the kernel's real results;
  /// runs at kernel completion time. May be empty in modeled-only benches.
  std::function<void()> body;
  /// Optional out-flag set to true when fault injection fails this kernel
  /// (the body is then skipped but the completion future still resolves).
  bool* failed = nullptr;
};

/// RAII handle for a device-memory allocation (accounting only — the actual
/// bytes of functional payloads live in host containers).
class DeviceAllocation {
 public:
  DeviceAllocation() = default;
  DeviceAllocation(GpuDevice* dev, std::uint64_t bytes);
  DeviceAllocation(DeviceAllocation&& o) noexcept;
  DeviceAllocation& operator=(DeviceAllocation&& o) noexcept;
  DeviceAllocation(const DeviceAllocation&) = delete;
  DeviceAllocation& operator=(const DeviceAllocation&) = delete;
  ~DeviceAllocation();

  std::uint64_t size() const { return bytes_; }
  bool valid() const { return dev_ != nullptr; }
  void release();

 private:
  GpuDevice* dev_ = nullptr;
  std::uint64_t bytes_ = 0;
};

/// In-order command queue bound to one GpuDevice.
class Stream {
 public:
  /// Enqueues a host-to-device copy; the future resolves when it completes.
  sim::Future<sim::Unit> memcpy_h2d(double bytes);

  /// Enqueues a device-to-host copy.
  sim::Future<sim::Unit> memcpy_d2h(double bytes);

  /// Enqueues a kernel launch.
  sim::Future<sim::Unit> launch(KernelDesc kernel);

  /// Future resolving when every previously enqueued command has finished
  /// (CUDA stream synchronize).
  sim::Future<sim::Unit> synchronize();

  int id() const { return id_; }

 private:
  friend class GpuDevice;
  struct Command {
    enum class Type { kCopyH2D, kCopyD2H, kKernel } type;
    double bytes = 0.0;
    KernelDesc kernel;
    sim::Promise<sim::Unit> done;
  };

  Stream(GpuDevice& dev, int id);
  sim::Future<sim::Unit> enqueue(Command cmd);

  GpuDevice& dev_;
  int id_;
  std::unique_ptr<sim::Channel<std::shared_ptr<Command>>> queue_;
  sim::Future<sim::Unit> last_op_;  // for synchronize()
};

/// One simulated GPU card.
class GpuDevice {
 public:
  GpuDevice(sim::Simulator& sim, DeviceSpec spec);
  ~GpuDevice();
  GpuDevice(const GpuDevice&) = delete;
  GpuDevice& operator=(const GpuDevice&) = delete;

  const DeviceSpec& spec() const { return spec_; }
  sim::Simulator& simulator() { return sim_; }

  /// Creates a new stream; streams live as long as the device.
  Stream& create_stream();

  /// Stream 0, created on construction.
  Stream& default_stream() { return *streams_.front(); }

  /// Returns stream `index`, creating streams up to it on demand. Lets
  /// repeated jobs reuse a stream pool instead of growing it per job.
  Stream& stream(int index);

  /// Streams created on this device so far (the service layer reports this
  /// per-vGPU footprint to the VirtualGpuPool at scheduling gates).
  int stream_count() const { return static_cast<int>(streams_.size()); }

  /// Device-memory accounting. Throws ResourceExhausted past capacity.
  DeviceAllocation allocate(std::uint64_t bytes);
  std::uint64_t memory_used() const { return memory_used_; }
  std::uint64_t memory_capacity() const { return spec_.memory_bytes; }

  /// Roofline duration of a kernel on this device (without queueing).
  double kernel_duration(const KernelDesc& k) const;

  // Utilization counters for profiling-based workload splits (Table 5).
  double compute_busy_time() const { return compute_busy_; }
  double flops_executed() const { return flops_executed_; }
  double pcie_busy_time() const { return pcie_.busy_time(); }
  double pcie_bytes() const { return pcie_.bytes_transferred(); }
  std::uint64_t kernels_launched() const { return kernels_launched_; }

  /// Resets utilization counters (between bench phases).
  void reset_counters();

  /// Trace labels (obs/trace.hpp): spans go on track
  /// (`process`, "<gpu_label>.s<stream>"). FatNode sets ("node<r>",
  /// "gpu<g>"); standalone devices default to ("dev", "gpu").
  void set_trace_context(std::string process, std::string gpu_label) {
    trace_process_ = std::move(process);
    trace_gpu_label_ = std::move(gpu_label);
  }

  /// Attaches (or detaches, with nullptr) the fault-injection hook and
  /// records this card's cluster coordinates. Costs one null check per
  /// stream command when detached. A command the hook hangs kills its
  /// stream's worker, so everything queued behind it also never completes —
  /// matching the in-order semantics of a wedged CUDA stream.
  void set_fault_context(ExecFaultHook* hook, int node, int card) {
    fault_hook_ = hook;
    fault_node_ = node;
    fault_card_ = card;
  }

 private:
  friend class Stream;
  friend class DeviceAllocation;

  sim::Process stream_worker(Stream& stream);
  void free_bytes(std::uint64_t bytes);

  sim::Simulator& sim_;
  DeviceSpec spec_;
  sim::BandwidthLink pcie_;
  sim::Resource compute_engine_;
  sim::Resource hw_queues_;
  std::deque<std::unique_ptr<Stream>> streams_;
  std::uint64_t memory_used_ = 0;
  double compute_busy_ = 0.0;
  double flops_executed_ = 0.0;
  std::uint64_t kernels_launched_ = 0;
  std::string trace_process_ = "dev";
  std::string trace_gpu_label_ = "gpu";
  ExecFaultHook* fault_hook_ = nullptr;
  int fault_node_ = -1;
  int fault_card_ = -1;
};

}  // namespace prs::simdev
