#include "simdev/cpu_device.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "simtime/process.hpp"

namespace prs::simdev {

CpuDevice::CpuDevice(sim::Simulator& sim, DeviceSpec spec, int reserved_cores)
    : sim_(sim),
      spec_(std::move(spec)),
      cores_in_use_(reserved_cores > 0
                        ? std::min(reserved_cores, spec_.cores)
                        : spec_.cores),
      core_pool_(sim, static_cast<std::size_t>(cores_in_use_)) {
  PRS_REQUIRE(spec_.kind == DeviceKind::kCpu, "CpuDevice needs a CPU spec");
  PRS_REQUIRE(spec_.peak_flops > 0.0, "CPU peak flops must be positive");
  PRS_REQUIRE(spec_.dram_bandwidth > 0.0, "CPU DRAM bandwidth must be > 0");
  PRS_REQUIRE(spec_.cores >= 1, "CPU needs at least one core");
}

double CpuDevice::task_duration(const CpuTask& task) const {
  // Per-core slices of the node's peak rate and DRAM bandwidth; reserving
  // fewer cores than physically present lowers aggregate throughput because
  // fewer tasks run concurrently, not because a core gets slower.
  const double per_core_flops =
      spec_.peak_flops / static_cast<double>(spec_.cores);
  const double per_core_bw =
      spec_.dram_bandwidth / static_cast<double>(spec_.cores);
  const double compute_t =
      task.workload.flops / (task.compute_efficiency * per_core_flops);
  const double memory_t =
      task.workload.mem_traffic / (task.memory_efficiency * per_core_bw);
  return std::max(compute_t, memory_t);
}

sim::Future<sim::Unit> CpuDevice::submit(CpuTask task) {
  PRS_REQUIRE(task.workload.flops >= 0.0, "task flops must be >= 0");
  PRS_REQUIRE(task.compute_efficiency > 0.0 && task.compute_efficiency <= 1.0,
              "compute efficiency must be in (0, 1]");
  PRS_REQUIRE(task.memory_efficiency > 0.0 && task.memory_efficiency <= 1.0,
              "memory efficiency must be in (0, 1]");
  sim::Promise<sim::Unit> done(sim_);
  auto fut = done.get_future();
  sim_.spawn(task_worker(std::move(task), std::move(done)));
  return fut;
}

int CpuDevice::acquire_trace_lane() {
  // One visual lane per concurrently busy core; the core_pool_ semaphore
  // bounds concurrency, so a free lane always exists.
  if (trace_lane_busy_.empty()) {
    trace_lane_busy_.resize(static_cast<std::size_t>(cores_in_use_), 0);
  }
  for (std::size_t i = 0; i < trace_lane_busy_.size(); ++i) {
    if (trace_lane_busy_[i] == 0) {
      trace_lane_busy_[i] = 1;
      return static_cast<int>(i);
    }
  }
  return -1;
}

sim::Process CpuDevice::task_worker(CpuTask task,
                                    sim::Promise<sim::Unit> done) {
  co_await core_pool_.acquire();
  sim::ResourceGuard core(core_pool_, 1);
  ExecFault fault;
  if (fault_hook_ != nullptr) {
    fault = fault_hook_->on_task(
        ExecSite{fault_node_, DeviceClass::kCpu, /*card=*/-1});
    if (fault.hang) {
      // Hung task: the completion promise is destroyed unresolved, so the
      // future never fires. The caller's timeout is the only way out.
      co_return;
    }
  }
  const double t = task_duration(task) * fault.slowdown;
  obs::TraceRecorder* tr = sim_.tracer();
  const int lane =
      (tr != nullptr && tr->enabled()) ? acquire_trace_lane() : -1;
  co_await sim::delay(sim_, t);
  busy_time_ += t;
  flops_executed_ += task.workload.flops;
  ++tasks_executed_;
  if (lane >= 0) {
    tr->complete(tr->track(trace_process_, "cpu.core" + std::to_string(lane)),
                 task.name, "cpu", sim_.now() - t, sim_.now(),
                 {obs::arg("flops", task.workload.flops),
                  obs::arg("bytes", task.workload.mem_traffic)});
    tr->metrics().counter("cpu.tasks").increment();
    tr->metrics()
        .histogram("cpu.task_seconds", obs::geometric_buckets(1e-6, 4.0, 16))
        .observe(t);
    trace_lane_busy_[static_cast<std::size_t>(lane)] = 0;
  }
  if (fault.fail) {
    // Transient failure: full time was charged, the functional payload is
    // skipped, and the caller learns about it through the failed-flag.
    if (task.failed != nullptr) *task.failed = true;
  } else {
    if (task.body) task.body();
  }
  done.set_value(sim::Unit{});
}

void CpuDevice::reset_counters() {
  busy_time_ = 0.0;
  flops_executed_ = 0.0;
  tasks_executed_ = 0;
}

}  // namespace prs::simdev
