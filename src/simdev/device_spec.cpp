#include "simdev/device_spec.hpp"

#include "common/units.hpp"

namespace prs::simdev {

using units::gb_per_s;
using units::gflops;
using units::kGiB;
using units::usec;

DeviceSpec delta_cpu() {
  DeviceSpec s;
  s.name = "Delta 2x Xeon 5660";
  s.kind = DeviceKind::kCpu;
  // Measured peak of the dual-socket node (paper Figure 3 calibration);
  // 2 sockets x 6 cores x 2.8 GHz x 4 DP flops/cycle ~= 134 Gflop/s nominal.
  s.peak_flops = gflops(130.0);
  // Dual-socket triple-channel DDR3: ~64 GB/s nominal, 40 GB/s measured.
  s.dram_bandwidth = gb_per_s(40.0);
  s.pcie_bandwidth = 0.0;
  s.cores = 12;
  s.memory_bytes = 192 * kGiB;
  s.hardware_queues = 1;
  return s;
}

DeviceSpec delta_c2070() {
  DeviceSpec s;
  s.name = "NVIDIA Tesla C2070";
  s.kind = DeviceKind::kGpu;
  // 1.03 Tflop/s single precision (the paper's CUDA apps are SP).
  s.peak_flops = gflops(1030.0);
  s.dram_bandwidth = gb_per_s(144.0);
  // Effective PCI-E Gen2 x16 with pageable host buffers as measured on the
  // Delta nodes (Figure 3); nominal is 8 GB/s but observed staging rates for
  // the paper's workloads were ~1.1 GB/s, which is what reproduces the
  // published GEMV workload split p = 97.3%.
  s.pcie_bandwidth = gb_per_s(1.1);
  s.pcie_latency = usec(15.0);
  s.cores = 448;
  s.memory_bytes = 6 * kGiB;
  s.hardware_queues = 1;  // Fermi: one hardware work queue
  s.kernel_launch_overhead = usec(7.0);
  return s;
}

DeviceSpec bigred2_cpu() {
  DeviceSpec s;
  s.name = "BigRed2 AMD Opteron 6212";
  s.kind = DeviceKind::kCpu;
  s.peak_flops = gflops(166.0);  // 32 Bulldozer cores at 2.6 GHz
  s.dram_bandwidth = gb_per_s(51.0);
  s.pcie_bandwidth = 0.0;
  s.cores = 32;
  s.memory_bytes = 62 * kGiB;
  s.hardware_queues = 1;
  return s;
}

DeviceSpec bigred2_k20() {
  DeviceSpec s;
  s.name = "NVIDIA Tesla K20";
  s.kind = DeviceKind::kGpu;
  s.peak_flops = gflops(3520.0);  // SP
  s.dram_bandwidth = gb_per_s(208.0);
  s.pcie_bandwidth = gb_per_s(3.0);  // Gen2, better effective staging
  s.pcie_latency = usec(12.0);
  s.cores = 2496;
  s.memory_bytes = 5 * kGiB;
  s.hardware_queues = 32;  // Kepler Hyper-Q
  s.kernel_launch_overhead = usec(5.0);
  return s;
}

DeviceSpec xeon_phi_5110p() {
  DeviceSpec s;
  s.name = "Intel Xeon Phi 5110P";
  s.kind = DeviceKind::kGpu;  // accelerator semantics: staged over PCI-E
  s.peak_flops = gflops(2022.0);  // 60 cores x 1.053 GHz x 16 SP lanes x 2
  s.dram_bandwidth = gb_per_s(160.0);  // GDDR5, measured
  s.pcie_bandwidth = gb_per_s(3.0);
  s.pcie_latency = usec(10.0);
  s.cores = 60;
  s.memory_bytes = 8 * kGiB;
  s.hardware_queues = 16;  // offload streams
  s.kernel_launch_overhead = usec(10.0);
  return s;
}

}  // namespace prs::simdev
