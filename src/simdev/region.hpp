// Region-based memory management (paper §III.C.2).
//
// Instead of many small mallocs from map/reduce tasks, the runtime gives
// each device daemon a Region: a chain of contiguous chunks with bump
// allocation. Allocation is a pointer increment; deallocation is freeing
// the whole region at once when the task batch completes. This is real
// memory management (not simulated) and is benchmarked against per-object
// malloc in bench_ablation_region_alloc.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace prs::sim {
class Simulator;  // for the optional trace hook below
}

namespace prs::simdev {

/// Bump allocator over a chain of geometrically growing chunks.
class Region {
 public:
  /// `initial_chunk_bytes` sizes the first chunk; later chunks double until
  /// `max_chunk_bytes`. When `sim` is given, chunk growth and clears are
  /// traced (obs/trace.hpp) under (`trace_process`, "region") — only those
  /// cold paths check the recorder, the bump fast path stays branch-free.
  explicit Region(std::size_t initial_chunk_bytes = 64 * 1024,
                  std::size_t max_chunk_bytes = 8 * 1024 * 1024,
                  sim::Simulator* sim = nullptr,
                  std::string trace_process = "dev");
  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;
  Region(Region&&) = default;
  Region& operator=(Region&&) = default;

  /// Allocates `bytes` with the given alignment (power of two).
  /// The memory lives until clear()/destruction; no per-object free.
  void* allocate(std::size_t bytes, std::size_t alignment = alignof(std::max_align_t));

  /// Typed allocation of `n` default-constructible objects of trivially
  /// destructible type T (region never runs destructors).
  template <typename T>
  T* allocate_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "regions do not run destructors");
    T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) ::new (static_cast<void*>(p + i)) T();
    return p;
  }

  /// Releases every allocation at once; keeps the first chunk for reuse.
  void clear();

  /// Bytes handed out since construction/clear.
  std::size_t bytes_allocated() const { return bytes_allocated_; }

  /// Bytes reserved from the system.
  std::size_t bytes_reserved() const { return bytes_reserved_; }

  /// Number of chunks currently owned.
  std::size_t chunk_count() const { return chunks_.size(); }

  /// Number of allocate() calls served (for the ablation bench).
  std::size_t allocation_count() const { return allocation_count_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void add_chunk(std::size_t at_least);
  void trace_instant(const char* name, std::size_t bytes);

  sim::Simulator* sim_ = nullptr;
  std::string trace_process_;
  std::vector<Chunk> chunks_;
  std::size_t next_chunk_bytes_;
  std::size_t max_chunk_bytes_;
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
  std::size_t allocation_count_ = 0;
};

}  // namespace prs::simdev
