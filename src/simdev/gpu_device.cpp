#include "simdev/gpu_device.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "simtime/process.hpp"

namespace prs::simdev {

// -- DeviceAllocation ---------------------------------------------------------

DeviceAllocation::DeviceAllocation(GpuDevice* dev, std::uint64_t bytes)
    : dev_(dev), bytes_(bytes) {}

DeviceAllocation::DeviceAllocation(DeviceAllocation&& o) noexcept
    : dev_(o.dev_), bytes_(o.bytes_) {
  o.dev_ = nullptr;
  o.bytes_ = 0;
}

DeviceAllocation& DeviceAllocation::operator=(DeviceAllocation&& o) noexcept {
  if (this != &o) {
    release();
    dev_ = o.dev_;
    bytes_ = o.bytes_;
    o.dev_ = nullptr;
    o.bytes_ = 0;
  }
  return *this;
}

DeviceAllocation::~DeviceAllocation() { release(); }

void DeviceAllocation::release() {
  if (dev_ != nullptr) {
    dev_->free_bytes(bytes_);
    dev_ = nullptr;
    bytes_ = 0;
  }
}

// -- Stream --------------------------------------------------------------------

Stream::Stream(GpuDevice& dev, int id)
    : dev_(dev),
      id_(id),
      queue_(std::make_unique<sim::Channel<std::shared_ptr<Command>>>(
          dev.simulator())) {}

sim::Future<sim::Unit> Stream::enqueue(Command cmd) {
  auto boxed = std::make_shared<Command>(std::move(cmd));
  auto fut = boxed->done.get_future();
  queue_->send(std::move(boxed));
  last_op_ = fut;
  return fut;
}

sim::Future<sim::Unit> Stream::memcpy_h2d(double bytes) {
  PRS_REQUIRE(bytes >= 0.0, "copy size must be non-negative");
  return enqueue(Command{Command::Type::kCopyH2D, bytes, {},
                         sim::Promise<sim::Unit>(dev_.simulator())});
}

sim::Future<sim::Unit> Stream::memcpy_d2h(double bytes) {
  PRS_REQUIRE(bytes >= 0.0, "copy size must be non-negative");
  return enqueue(Command{Command::Type::kCopyD2H, bytes, {},
                         sim::Promise<sim::Unit>(dev_.simulator())});
}

sim::Future<sim::Unit> Stream::launch(KernelDesc kernel) {
  PRS_REQUIRE(kernel.workload.flops >= 0.0, "kernel flops must be >= 0");
  PRS_REQUIRE(kernel.compute_efficiency > 0.0 &&
                  kernel.compute_efficiency <= 1.0,
              "compute efficiency must be in (0, 1]");
  PRS_REQUIRE(kernel.memory_efficiency > 0.0 &&
                  kernel.memory_efficiency <= 1.0,
              "memory efficiency must be in (0, 1]");
  return enqueue(Command{Command::Type::kKernel, 0.0, std::move(kernel),
                         sim::Promise<sim::Unit>(dev_.simulator())});
}

sim::Future<sim::Unit> Stream::synchronize() {
  if (!last_op_.valid()) {
    sim::Promise<sim::Unit> p(dev_.simulator());
    p.set_value(sim::Unit{});
    return p.get_future();
  }
  return last_op_;
}

// -- GpuDevice -------------------------------------------------------------------

GpuDevice::GpuDevice(sim::Simulator& sim, DeviceSpec spec)
    : sim_(sim),
      spec_(std::move(spec)),
      pcie_(sim, spec_.pcie_bandwidth > 0.0 ? spec_.pcie_bandwidth : 1.0,
            spec_.pcie_latency),
      compute_engine_(sim, 1),
      hw_queues_(sim, static_cast<std::size_t>(
                          std::max(1, spec_.hardware_queues))) {
  PRS_REQUIRE(spec_.kind == DeviceKind::kGpu, "GpuDevice needs a GPU spec");
  PRS_REQUIRE(spec_.peak_flops > 0.0, "GPU peak flops must be positive");
  PRS_REQUIRE(spec_.pcie_bandwidth > 0.0, "GPU needs a PCI-E bandwidth");
  create_stream();  // default stream 0
}

GpuDevice::~GpuDevice() {
  for (auto& s : streams_) {
    if (!s->queue_->closed()) s->queue_->close();
  }
}

Stream& GpuDevice::create_stream() {
  const int id = static_cast<int>(streams_.size());
  streams_.push_back(std::unique_ptr<Stream>(new Stream(*this, id)));
  sim_.spawn(stream_worker(*streams_.back()));
  return *streams_.back();
}

Stream& GpuDevice::stream(int index) {
  PRS_REQUIRE(index >= 0, "stream index must be non-negative");
  while (static_cast<int>(streams_.size()) <= index) create_stream();
  return *streams_[static_cast<std::size_t>(index)];
}

DeviceAllocation GpuDevice::allocate(std::uint64_t bytes) {
  if (memory_used_ + bytes > spec_.memory_bytes) {
    throw ResourceExhausted("GPU out of memory on " + spec_.name + ": " +
                            std::to_string(memory_used_ + bytes) + " of " +
                            std::to_string(spec_.memory_bytes) + " bytes");
  }
  memory_used_ += bytes;
  return DeviceAllocation(this, bytes);
}

void GpuDevice::free_bytes(std::uint64_t bytes) {
  PRS_CHECK(memory_used_ >= bytes, "device memory double free");
  memory_used_ -= bytes;
}

double GpuDevice::kernel_duration(const KernelDesc& k) const {
  const double compute_t =
      k.workload.flops / (k.compute_efficiency * spec_.peak_flops);
  const double memory_t =
      k.workload.mem_traffic / (k.memory_efficiency * spec_.dram_bandwidth);
  return spec_.kernel_launch_overhead + std::max(compute_t, memory_t);
}

void GpuDevice::reset_counters() {
  compute_busy_ = 0.0;
  flops_executed_ = 0.0;
  kernels_launched_ = 0;
  pcie_.reset_counters();
}

sim::Process GpuDevice::stream_worker(Stream& stream) {
  sim::Channel<std::shared_ptr<Stream::Command>>& q = *stream.queue_;
  const int stream_id = stream.id_;
  for (;;) {
    auto cmd = co_await q.recv();
    if (!cmd) break;  // device destroyed
    ExecFault fault;
    if (fault_hook_ != nullptr) {
      fault = fault_hook_->on_task(
          ExecSite{fault_node_, DeviceClass::kGpu, fault_card_});
      if (fault.hang) {
        // Wedged stream: this command and everything queued behind it
        // never complete (the worker exits; futures stay unresolved).
        co_return;
      }
    }
    // A hardware work queue slot covers the whole command. With one queue
    // (Fermi) every command on the device serializes; with Hyper-Q copies
    // and kernels from different streams overlap.
    co_await hw_queues_.acquire();
    sim::ResourceGuard queue_slot(hw_queues_, 1);
    // One branch per command when tracing is off; span strings are only
    // built in the traced case below.
    obs::TraceRecorder* tr = sim_.tracer();
    if (tr != nullptr && !tr->enabled()) tr = nullptr;
    const double t0 = sim_.now();
    switch ((*cmd)->type) {
      case Stream::Command::Type::kCopyH2D:
      case Stream::Command::Type::kCopyD2H: {
        const bool h2d = (*cmd)->type == Stream::Command::Type::kCopyH2D;
        co_await pcie_.transfer((*cmd)->bytes);
        if (tr != nullptr) {
          // Span covers PCI-E link queueing + serialization for this copy.
          tr->complete(
              tr->track(trace_process_,
                        trace_gpu_label_ + ".s" + std::to_string(stream_id)),
              h2d ? "memcpy_h2d" : "memcpy_d2h", "pcie", t0, sim_.now(),
              {obs::arg("bytes", (*cmd)->bytes)});
          tr->metrics().counter("pcie.bytes").add((*cmd)->bytes);
          tr->metrics()
              .histogram("pcie.copy_bytes",
                         obs::geometric_buckets(1024.0, 4.0, 16))
              .observe((*cmd)->bytes);
        }
        break;
      }
      case Stream::Command::Type::kKernel: {
        co_await compute_engine_.acquire();
        sim::ResourceGuard engine(compute_engine_, 1);
        const double t = kernel_duration((*cmd)->kernel) * fault.slowdown;
        co_await sim::delay(sim_, t);
        compute_busy_ += t;
        flops_executed_ += (*cmd)->kernel.workload.flops;
        ++kernels_launched_;
        if (tr != nullptr) {
          // Span covers execution only (compute-engine occupancy), not the
          // wait for the engine.
          tr->complete(
              tr->track(trace_process_,
                        trace_gpu_label_ + ".s" + std::to_string(stream_id)),
              (*cmd)->kernel.name, "kernel", sim_.now() - t, sim_.now(),
              {obs::arg("flops", (*cmd)->kernel.workload.flops),
               obs::arg("bytes", (*cmd)->kernel.workload.mem_traffic)});
          tr->metrics().counter("gpu.kernels").increment();
          tr->metrics()
              .histogram("gpu.kernel_seconds",
                         obs::geometric_buckets(1e-6, 4.0, 16))
              .observe(t);
        }
        if (fault.fail) {
          // Transient kernel failure: time charged, payload skipped.
          if ((*cmd)->kernel.failed != nullptr) *(*cmd)->kernel.failed = true;
        } else {
          if ((*cmd)->kernel.body) (*cmd)->kernel.body();
        }
        break;
      }
    }
    (*cmd)->done.set_value(sim::Unit{});
  }
}

}  // namespace prs::simdev
