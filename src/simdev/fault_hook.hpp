// Fault-injection hook for device task execution.
//
// Devices consult an optional ExecFaultHook immediately before running each
// task/kernel. The hook decides, from the virtual clock and its own seeded
// randomness, whether this particular execution is slowed down, fails
// transiently, or hangs forever. The hook lives above simdev (prs::fault
// implements it); devices only know the narrow interface so the layering
// stays acyclic. When no hook is attached the cost is a single null check,
// keeping fault-free runs byte-identical.
#pragma once

namespace prs::simdev {

/// Which execution engine a faulted task was headed for.
enum class DeviceClass { kCpu, kGpu };

/// Verdict for one task execution.
struct ExecFault {
  /// Multiplies the modeled duration (1.0 = healthy, 4.0 = 4x slower).
  double slowdown = 1.0;
  /// Task never completes: time is consumed, the completion future is never
  /// resolved (models a hung GPU daemon / seized core).
  bool hang = false;
  /// Task completes on time but reports failure through its failed-flag;
  /// the functional payload is skipped (transient error, retryable).
  bool fail = false;
};

/// Where a task is about to execute.
struct ExecSite {
  int node = -1;  // FatNode rank, -1 for standalone devices
  DeviceClass device = DeviceClass::kCpu;
  int card = -1;  // GPU index within the node, -1 for CPU
};

class ExecFaultHook {
 public:
  virtual ~ExecFaultHook() = default;
  /// Called once per task execution attempt, at submission-to-engine time.
  virtual ExecFault on_task(const ExecSite& site) = 0;
};

}  // namespace prs::simdev
