// Radix-2 complex FFT (iterative Cooley-Tukey) and a reference DFT.
//
// The paper places FFT in the middle band of the arithmetic-intensity
// spectrum (Figure 4, §I: "applications with moderate arithmetic
// intensity, such as FFT and Kmeans, the performance bottleneck lies in
// the DRAM and PCI-E bandwidth"). apps/fftbatch builds an SPMD batch-FFT
// application on top of these kernels.
#pragma once

#include <complex>
#include <vector>

#include "common/error.hpp"

namespace prs::linalg {

using Complex = std::complex<double>;

/// In-place iterative radix-2 FFT; size must be a power of two.
/// `inverse` applies the conjugate transform with 1/N normalization.
void fft(std::vector<Complex>& data, bool inverse = false);

/// O(N^2) reference DFT (for tests).
std::vector<Complex> dft_reference(const std::vector<Complex>& in,
                                   bool inverse = false);

/// Flops of one radix-2 FFT of size n: ~5 n log2(n)
/// (one complex multiply (6) + two adds (4) per butterfly, n/2 log2 n
/// butterflies — the standard accounting).
double fft_flops(std::size_t n);

/// Arithmetic intensity of an FFT of size n under the paper's
/// element-counted convention: 5*log2(n) flops per touched element.
double fft_arithmetic_intensity(std::size_t n);

}  // namespace prs::linalg
