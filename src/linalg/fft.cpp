#include "linalg/fft.hpp"

#include <cmath>
#include <numbers>

namespace prs::linalg {
namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t log2_of(std::size_t n) {
  std::size_t bits = 0;
  while ((1ull << bits) < n) ++bits;
  return bits;
}

}  // namespace

void fft(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  PRS_REQUIRE(is_power_of_two(n), "FFT size must be a power of two");
  if (n <= 1) return;

  // Bit-reversal permutation.
  const std::size_t bits = log2_of(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t rev = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      rev |= ((i >> b) & 1u) << (bits - 1 - b);
    }
    if (i < rev) std::swap(data[i], data[rev]);
  }

  // Butterflies.
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * std::numbers::pi /
                         static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t start = 0; start < n; start += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[start + k];
        const Complex v = data[start + k + len / 2] * w;
        data[start + k] = u + v;
        data[start + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
}

std::vector<Complex> dft_reference(const std::vector<Complex>& in,
                                   bool inverse) {
  const std::size_t n = in.size();
  std::vector<Complex> out(n, Complex(0.0, 0.0));
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = sign * 2.0 * std::numbers::pi *
                           static_cast<double>(k * j) /
                           static_cast<double>(n);
      out[k] += in[j] * Complex(std::cos(angle), std::sin(angle));
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : out) x *= inv_n;
  }
  return out;
}

double fft_flops(std::size_t n) {
  PRS_REQUIRE(is_power_of_two(n), "FFT size must be a power of two");
  if (n <= 1) return 0.0;
  const auto nd = static_cast<double>(n);
  return 5.0 * nd * static_cast<double>(log2_of(n));
}

double fft_arithmetic_intensity(std::size_t n) {
  PRS_REQUIRE(is_power_of_two(n) && n > 1, "FFT size must be a power of two");
  return 5.0 * static_cast<double>(log2_of(n));
}

}  // namespace prs::linalg
