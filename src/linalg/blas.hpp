// BLAS-subset kernels (reference implementations with exact flop counts).
//
// Flop accounting matters more than speed here: the device models charge
// virtual time from these counts, so each kernel documents its count and
// the tests assert it.
#pragma once

#include <cmath>
#include <span>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "exec/parallel.hpp"
#include "linalg/matrix.hpp"
#include "simd/dispatch.hpp"
#include "simd/kernels.hpp"

namespace prs::linalg {

/// y += alpha * x. Flops: 2n.
template <typename T>
void axpy(T alpha, std::span<const T> x, std::span<T> y) {
  PRS_REQUIRE(x.size() == y.size(), "axpy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// Dot product. Flops: 2n.
///
/// A single running sum cannot vectorize without reassociating, so the
/// deterministic tier keeps the scalar loop at every SIMD level; the
/// multi-accumulator fused kernel is only reachable through the explicit
/// fma opt-in (PRS_SIMD_FMA / --simd-fma), which waives bit-identity for
/// a documented ULP bound.
template <typename T>
T dot(std::span<const T> x, std::span<const T> y) {
  PRS_REQUIRE(x.size() == y.size(), "dot size mismatch");
  if constexpr (std::is_same_v<T, double>) {
    if (simd::fma_allowed()) {
      return simd::active_kernels().dot_fast(x.data(), y.data(), x.size());
    }
  }
  T acc{};
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

/// Euclidean norm. Flops: 2n (+1 sqrt) — the scaling divides below are
/// bookkeeping, not counted, matching LAPACK's dnrm2 convention.
///
/// Scaled accumulation (LAPACK dnrm2 style): tracks the running maximum
/// magnitude `scale` and accumulates sum((x_i/scale)^2), so inputs near
/// 1e200 no longer overflow to inf when squared and inputs near 1e-200 no
/// longer underflow to 0.
/// Special-value contract (LAPACK dnrm2 parity): any NaN input yields NaN;
/// otherwise any +/-Inf input yields +Inf; signed zeros are skipped (they
/// contribute nothing and never become the scale).
template <typename T>
T nrm2(std::span<const T> x) {
  if constexpr (std::is_same_v<T, double>) {
    if (simd::fma_allowed()) {
      return simd::active_kernels().nrm2_fast(x.data(), x.size());
    }
  }
  T scale{};   // largest |x_i| seen so far
  T ssq{1};    // sum of (x_i / scale)^2
  bool any = false;
  for (const T v : x) {
    if (v == T{}) continue;
    const T av = v < T{} ? -v : v;
    if (!any) {
      scale = av;
      ssq = T{1};
      any = true;
    } else if (scale < av) {
      const T r = scale / av;
      ssq = T{1} + ssq * r * r;
      scale = av;
    } else if (av == scale) {
      // av/scale would be exactly 1 for finite values, so adding 1
      // directly is bit-identical — and it keeps Inf inputs from
      // producing Inf/Inf = NaN (the norm of a vector containing an
      // infinity is +Inf, not NaN).
      ssq += T{1};
    } else {
      const T r = av / scale;
      ssq += r * r;
    }
  }
  if (!any) return T{};
  return scale * std::sqrt(ssq);
}

/// Squared Euclidean distance between two points. Flops: 3n.
template <typename T>
T squared_distance(std::span<const T> a, std::span<const T> b) {
  PRS_REQUIRE(a.size() == b.size(), "distance size mismatch");
  T acc{};
  for (std::size_t i = 0; i < a.size(); ++i) {
    const T d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

/// y = alpha * A * x + beta * y for row-major A (M x N).
/// Flops: 2*M*N (+ 2*M for the beta/alpha combine).
template <typename T>
void gemv(T alpha, const Matrix<T>& a, std::span<const T> x, T beta,
          std::span<T> y) {
  PRS_REQUIRE(x.size() == a.cols(), "gemv: x size must equal cols");
  PRS_REQUIRE(y.size() == a.rows(), "gemv: y size must equal rows");
  if constexpr (std::is_same_v<T, double>) {
    // Lane-per-row: each output row accumulates in the same ascending-c
    // mul+add order as the scalar loop, so row_dots is bit-identical at
    // every SIMD level. The fused per-row dot is fma-tier only.
    if (a.rows() > 0) {
      const simd::Kernels& kn = simd::active_kernels();
      std::vector<double> acc(a.rows());
      if (simd::fma_allowed()) {
        for (std::size_t r = 0; r < a.rows(); ++r) {
          acc[r] = kn.dot_fast(a.row(r), x.data(), a.cols());
        }
      } else {
        kn.row_dots(a.row(0), a.cols(), a.rows(), a.cols(), x.data(),
                    acc.data());
      }
      for (std::size_t r = 0; r < a.rows(); ++r) {
        y[r] = alpha * acc[r] + beta * y[r];
      }
    }
    return;
  }
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const T* row = a.row(r);
    T acc{};
    for (std::size_t c = 0; c < a.cols(); ++c) acc += row[c] * x[c];
    y[r] = alpha * acc + beta * y[r];
  }
}

/// Workload helper: flops of gemv on an MxN matrix.
constexpr double gemv_flops(double m, double n) { return 2.0 * m * n; }

/// C = alpha * A * B + beta * C, row-major, naive triple loop (ikj order).
/// Flops: 2*M*N*K.
template <typename T>
void gemm(T alpha, const Matrix<T>& a, const Matrix<T>& b, T beta,
          Matrix<T>& c) {
  PRS_REQUIRE(a.cols() == b.rows(), "gemm: inner dimensions must match");
  PRS_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
              "gemm: output shape mismatch");
  for (auto& v : c.storage()) v *= beta;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    T* crow = c.row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const T aik = alpha * a(i, k);
      const T* brow = b.row(k);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
}

/// Workload helper: flops of gemm (MxK)*(KxN).
constexpr double gemm_flops(double m, double n, double k) {
  return 2.0 * m * n * k;
}

/// Blocked gemm (cache tiling); same result as gemm, same flop count.
/// Row blocks of C are disjoint, so they run in parallel on the host
/// thread pool; every C element is still produced by exactly one block in
/// the same k0/j0 order, hence results are byte-identical to the serial
/// loop for any thread count.
template <typename T>
void gemm_blocked(T alpha, const Matrix<T>& a, const Matrix<T>& b, T beta,
                  Matrix<T>& c, std::size_t block = 64) {
  PRS_REQUIRE(a.cols() == b.rows(), "gemm: inner dimensions must match");
  PRS_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
              "gemm: output shape mismatch");
  PRS_REQUIRE(block > 0, "block size must be positive");
  const std::size_t m = a.rows(), n = b.cols(), kk = a.cols();
  const std::size_t row_blocks = (m + block - 1) / block;
  // Hoisted once: active_kernels() reads an atomic, and the level must not
  // change between chunks of one call anyway.
  const simd::Kernels& kn = simd::active_kernels();
  const bool fma = simd::fma_allowed();
  exec::parallel_for(0, row_blocks, 1, [&](std::size_t rb0, std::size_t rb1) {
    for (std::size_t rb = rb0; rb < rb1; ++rb) {
      const std::size_t i0 = rb * block;
      const std::size_t i1 = std::min(i0 + block, m);
      for (std::size_t i = i0; i < i1; ++i) {
        T* crow = c.row(i);
        if constexpr (std::is_same_v<T, double>) {
          kn.scale(crow, beta, n);
        } else {
          for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
        }
      }
      for (std::size_t k0 = 0; k0 < kk; k0 += block) {
        const std::size_t k1 = std::min(k0 + block, kk);
        for (std::size_t j0 = 0; j0 < n; j0 += block) {
          const std::size_t j1 = std::min(j0 + block, n);
          for (std::size_t i = i0; i < i1; ++i) {
            T* crow = c.row(i);
            for (std::size_t k = k0; k < k1; ++k) {
              const T aik = alpha * a(i, k);
              const T* brow = b.row(k);
              // crow[j] += aik * brow[j] is element-wise (one product, one
              // add per C element, no cross-element reassociation), so the
              // vector form is bit-identical to the scalar loop.
              if constexpr (std::is_same_v<T, double>) {
                (fma ? kn.axpy_acc_fast : kn.axpy_acc)(crow + j0, brow + j0,
                                                       aik, j1 - j0);
              } else {
                for (std::size_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
              }
            }
          }
        }
      }
    }
  });
}

/// Transpose. No flops (data movement only).
template <typename T>
Matrix<T> transpose(const Matrix<T>& a) {
  Matrix<T> t(a.cols(), a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) t(c, r) = a(r, c);
  }
  return t;
}

}  // namespace prs::linalg
