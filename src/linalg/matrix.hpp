// Dense row-major matrix/vector containers used by the applications.
//
// Deliberately minimal: the paper treats BLAS as a black box (cuBLAS/MKL);
// the reproduction needs correct kernels with known flop counts, not tuned
// ones. All functional app payloads (GEMV, C-means distances, GMM E/M
// steps) run on these types.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace prs::linalg {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    PRS_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    PRS_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Pointer to the start of row r (contiguous, cols() elements).
  T* row(std::size_t r) {
    PRS_REQUIRE(r < rows_, "row index out of range");
    return data_.data() + r * cols_;
  }
  const T* row(std::size_t r) const {
    PRS_REQUIRE(r < rows_, "row index out of range");
    return data_.data() + r * cols_;
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  std::vector<T>& storage() { return data_; }
  const std::vector<T>& storage() const { return data_; }

  bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixF = Matrix<float>;
using MatrixD = Matrix<double>;

}  // namespace prs::linalg
