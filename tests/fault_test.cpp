// Tests for the fault-injection subsystem (prs::fault) and the
// fault-tolerant job path in core: spec-string parsing, byte-reproducible
// fault schedules, output equality under every fault class, crash recovery
// via blacklisting + re-splitting, and straggler speculation.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"

#include "core/cluster.hpp"
#include "core/job_runner.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace prs::core {
namespace {

// -- FaultPlan grammar ------------------------------------------------------

TEST(FaultPlan, ParsesClausesOfEveryKind) {
  auto plan = fault::FaultPlan::parse(
      "gpu_hang:node1:t=2ms; link_drop:node0-node2:p=0.01,"
      "slow_node:node3:x4:gpu; node_crash:*:t=1500us;"
      "link_delay:*:t=1ms:p=0.1; link_dup:node0-*:p=0.02;"
      "task_error:node1:p=0.05");
  ASSERT_EQ(plan.clauses.size(), 7u);
  EXPECT_EQ(plan.clauses[0].kind, fault::FaultKind::kGpuHang);
  EXPECT_EQ(plan.clauses[0].node_a, 1);
  EXPECT_DOUBLE_EQ(plan.clauses[0].at, 2e-3);
  EXPECT_EQ(plan.clauses[1].kind, fault::FaultKind::kLinkDrop);
  EXPECT_EQ(plan.clauses[1].node_a, 0);
  EXPECT_EQ(plan.clauses[1].node_b, 2);
  EXPECT_DOUBLE_EQ(plan.clauses[1].probability, 0.01);
  EXPECT_DOUBLE_EQ(plan.clauses[2].factor, 4.0);
  EXPECT_EQ(plan.clauses[2].device, fault::DeviceFilter::kGpu);
  EXPECT_EQ(plan.clauses[3].node_a, -1);  // wildcard
  EXPECT_DOUBLE_EQ(plan.clauses[3].at, 1.5e-3);
  EXPECT_DOUBLE_EQ(plan.clauses[4].extra_delay, 1e-3);
  EXPECT_EQ(plan.clauses[5].node_a, 0);
  EXPECT_EQ(plan.clauses[5].node_b, -1);
  EXPECT_DOUBLE_EQ(plan.clauses[6].probability, 0.05);
}

TEST(FaultPlan, BlankSpecIsEmptyAndMalformedSpecsThrow) {
  EXPECT_TRUE(fault::FaultPlan::parse("").empty());
  EXPECT_TRUE(fault::FaultPlan::parse("  ;  , ").empty());
  EXPECT_THROW(fault::FaultPlan::parse("bogus:node1"), InvalidArgument);
  EXPECT_THROW(fault::FaultPlan::parse("gpu_hang"), InvalidArgument);
  EXPECT_THROW(fault::FaultPlan::parse("gpu_hang:node1:t=2parsecs"),
               InvalidArgument);
  EXPECT_THROW(fault::FaultPlan::parse("link_drop:node0:p=0.5"),
               InvalidArgument);  // link kinds need a-b targets
  EXPECT_THROW(fault::FaultPlan::parse("task_error:node0:p=1.5"),
               InvalidArgument);
  EXPECT_THROW(fault::FaultPlan::parse("slow_node:node0"), InvalidArgument);
  EXPECT_THROW(fault::FaultPlan::parse("link_delay:*:p=0.1"),
               InvalidArgument);
}

// -- toy job under faults ---------------------------------------------------

/// Item i emits (i % kKeys, i); the reduced output holds per-residue index
/// sums — exact integers, independent of block layout, shuffle bucketing,
/// and merge order, so any silent drop or duplication under faults changes
/// the value.
constexpr int kKeys = 37;

MapReduceSpec<int, long long> sum_spec(double flops_per_item = 2000.0) {
  MapReduceSpec<int, long long> spec;
  spec.name = "fault-sum";
  spec.cpu_map = [](const InputSlice& s, Emitter<int, long long>& e) {
    long long sums[kKeys] = {};
    for (std::size_t i = s.begin; i < s.end; ++i) {
      sums[i % kKeys] += static_cast<long long>(i);
    }
    for (int k = 0; k < kKeys; ++k) {
      if (sums[k] != 0) e.emit(k, sums[k]);
    }
  };
  spec.combine = [](const long long& a, const long long& b) { return a + b; };
  spec.cpu_flops_per_item = flops_per_item;
  spec.gpu_flops_per_item = flops_per_item;
  spec.ai_cpu = 50.0;
  spec.ai_gpu = 50.0;
  spec.item_bytes = 8.0;
  spec.pair_bytes = 16.0;
  return spec;
}

std::map<int, long long> expected_sums(std::size_t n) {
  std::map<int, long long> out;
  for (std::size_t i = 0; i < n; ++i) {
    out[static_cast<int>(i % kKeys)] += static_cast<long long>(i);
  }
  return out;
}

constexpr std::size_t kItems = 20000;
constexpr int kNodes = 4;

/// One tolerant run with everything observable captured for comparison.
struct FaultRun {
  std::map<int, long long> output;
  JobStats stats;
  fault::FaultInjector::Stats injected;
  std::vector<std::string> log;
  std::string trace_json;
};

FaultRun run_with_faults(const std::string& spec_str, std::uint64_t seed,
                         FaultToleranceConfig tol = {},
                         double flops_per_item = 2000.0,
                         ExecEngine engine = ExecEngine::kStages) {
  sim::Simulator simu;
  obs::TraceRecorder rec(simu);
  simu.set_tracer(&rec);
  Cluster cluster(simu, kNodes, NodeConfig{});
  fault::FaultInjector inj(simu, fault::FaultPlan::parse(spec_str), seed);
  auto spec = sum_spec(flops_per_item);
  JobConfig cfg;
  cfg.charge_job_startup = false;  // fault window starts at t=0
  cfg.faults = &inj;
  cfg.tolerance = tol;
  cfg.engine = engine;
  auto res = run_job(cluster, spec, cfg, kItems);
  FaultRun out;
  out.output = std::move(res.output);
  out.stats = res.stats;
  out.injected = inj.stats();
  out.log = inj.log();
  out.trace_json = obs::chrome_trace_string(rec);
  simu.set_tracer(nullptr);
  return out;
}

std::map<int, long long> run_fault_free() {
  sim::Simulator simu;
  Cluster cluster(simu, kNodes, NodeConfig{});
  auto spec = sum_spec();
  JobConfig cfg;
  cfg.charge_job_startup = false;
  auto res = run_job(cluster, spec, cfg, kItems);
  return res.output;
}

// -- (a) determinism --------------------------------------------------------

TEST(FaultInjector, SameSeedGivesByteIdenticalScheduleAndTrace) {
  const std::string spec =
      "link_drop:*:p=0.05; task_error:node1:p=0.1; slow_node:node2:x2";
  auto a = run_with_faults(spec, 7);
  auto b = run_with_faults(spec, 7);
  EXPECT_EQ(a.log, b.log);
  EXPECT_TRUE(a.injected == b.injected);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.output, b.output);
  EXPECT_DOUBLE_EQ(a.stats.elapsed, b.stats.elapsed);
  EXPECT_EQ(a.stats.task_retries, b.stats.task_retries);
  EXPECT_EQ(a.stats.retransmits, b.stats.retransmits);
  // A different seed draws a different probabilistic schedule.
  auto c = run_with_faults(spec, 8);
  EXPECT_NE(a.log, c.log);
  // But the computed result is still exact.
  EXPECT_EQ(a.output, expected_sums(kItems));
  EXPECT_EQ(c.output, expected_sums(kItems));
}

// -- (b) output equality per fault class ------------------------------------

TEST(FaultTolerance, OutputMatchesFaultFreeUnderEachFaultClass) {
  const auto want = run_fault_free();
  ASSERT_EQ(want, expected_sums(kItems));
  for (const char* spec :
       {"gpu_hang:node1:t=0ms", "link_drop:*:p=0.2", "slow_node:node3:x4",
        "task_error:*:p=0.1", "link_delay:*:t=200us:p=0.5",
        "link_dup:*:p=0.2"}) {
    auto got = run_with_faults(spec, 3);
    EXPECT_EQ(got.output, want) << "under " << spec;
  }
}

TEST(FaultTolerance, GraphEngineWithFaultsRoutesToTolerantPathUnchanged) {
  // An attached fault injector always wins the routing decision in
  // run_job: the tolerant runner (timeouts, retries, speculation) takes
  // over even when the caller requested the task-graph engine, so the
  // faulted timeline, injector log and output are byte-identical to the
  // same request under the legacy engine.
  const std::string spec = "link_drop:*:p=0.1; task_error:node1:p=0.1";
  auto stages = run_with_faults(spec, 11);
  auto graph = run_with_faults(spec, 11, {}, 2000.0, ExecEngine::kGraph);
  EXPECT_EQ(graph.output, stages.output);
  EXPECT_EQ(graph.log, stages.log);
  EXPECT_EQ(graph.trace_json, stages.trace_json);
  EXPECT_DOUBLE_EQ(graph.stats.elapsed, stages.stats.elapsed);
  EXPECT_EQ(graph.output, expected_sums(kItems));
}

TEST(FaultTolerance, DroppedMessagesAreRetransmitted) {
  auto got = run_with_faults("link_drop:*:p=0.2", 3);
  EXPECT_GT(got.injected.drops, 0u);
  EXPECT_GE(got.stats.retransmits, got.injected.drops);
  EXPECT_EQ(got.output, expected_sums(kItems));
}

TEST(FaultTolerance, GpuHangRetriesOntoTheCpu) {
  auto got = run_with_faults("gpu_hang:node1:t=0ms", 3);
  EXPECT_GT(got.injected.hangs, 0u);
  EXPECT_GT(got.stats.task_retries, 0u);
  EXPECT_EQ(got.stats.blacklisted_nodes, 0);  // hang tolerated in place
  EXPECT_EQ(got.output, expected_sums(kItems));
}

TEST(FaultTolerance, TransientTaskErrorsAreRetried) {
  auto got = run_with_faults("task_error:*:p=0.1", 3);
  EXPECT_GT(got.injected.task_errors, 0u);
  EXPECT_GT(got.stats.task_retries, 0u);
  EXPECT_EQ(got.output, expected_sums(kItems));
}

TEST(FaultTolerance, EmptyPlanOnTolerantPathStaysClean) {
  auto got = run_with_faults("", 1);
  EXPECT_EQ(got.output, expected_sums(kItems));
  EXPECT_EQ(got.stats.task_retries, 0u);
  EXPECT_EQ(got.stats.retransmits, 0u);
  EXPECT_EQ(got.stats.blacklisted_nodes, 0);
  EXPECT_EQ(got.stats.job_attempts, 1);
  EXPECT_TRUE(got.log.empty());
}

// -- (c) crash recovery -----------------------------------------------------

TEST(FaultTolerance, CrashedNodeIsBlacklistedAndWorkResplitsAcrossSurvivors) {
  const auto want = run_fault_free();
  auto got = run_with_faults("node_crash:node2:t=0", 5);
  EXPECT_EQ(got.output, want);
  EXPECT_EQ(got.stats.blacklisted_nodes, 1);
  EXPECT_EQ(got.stats.job_attempts, 2);
  EXPECT_GT(got.stats.task_retries, 0u);  // the crashed node's hung attempts
  EXPECT_GT(got.stats.elapsed, 0.0);
}

TEST(FaultTolerance, TwoCrashedNodesStillRecoverable) {
  auto got = run_with_faults("node_crash:node1:t=0; node_crash:node3:t=0", 5);
  EXPECT_EQ(got.output, expected_sums(kItems));
  EXPECT_EQ(got.stats.blacklisted_nodes, 2);
  EXPECT_GE(got.stats.job_attempts, 2);
}

// -- (d) straggler speculation ----------------------------------------------

TEST(FaultTolerance, StragglerSpeculationWinsAndDuplicatesAreDiscarded) {
  // node0's CPU runs 6x slower — below the 8x timeout factor, so its tasks
  // never time out; they can only be beaten by speculative re-execution on
  // the GPU. The fast GPU blocks establish the duration median; the slowed
  // CPU blocks exceed straggler_factor x median, the watchdog launches
  // backups, the backups win, and the late CPU originals are discarded as
  // double completions.
  FaultToleranceConfig tol;
  tol.straggler_tick = 50e-6;
  tol.straggler_min_completed = 2;
  tol.straggler_factor = 2.0;
  auto got = run_with_faults("slow_node:node0:x6:cpu", 11, tol,
                             /*flops_per_item=*/20000.0);
  EXPECT_GT(got.injected.slowdowns, 0u);
  EXPECT_GE(got.stats.speculations, 1u);
  EXPECT_GE(got.stats.speculative_wins, 1u);
  EXPECT_GE(got.stats.double_completions, 1u);
  // First-result-wins must not change the reduced values.
  EXPECT_EQ(got.output, expected_sums(kItems));
  EXPECT_EQ(got.stats.blacklisted_nodes, 0);
}

// -- (e) fault-spec grammar fuzzing -----------------------------------------

std::string format_exact17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Builds a random spec clause that the grammar documents as valid.
std::string random_valid_clause(Rng& rng) {
  static const char* kDeviceKinds[] = {"gpu_hang", "node_crash", "slow_node",
                                       "task_error"};
  static const char* kLinkKinds[] = {"link_drop", "link_delay", "link_dup"};
  static const char* kSuffixes[] = {"", "s", "ms", "us", "ns"};

  const bool link = rng.uniform() < 0.4;
  std::string kind = link ? kLinkKinds[rng.uniform_index(3)]
                          : kDeviceKinds[rng.uniform_index(4)];
  std::string clause = kind + ":";
  auto node = [&] {
    return rng.uniform() < 0.2
               ? std::string("*")
               : "node" + std::to_string(rng.uniform_index(64));
  };
  if (link) {
    clause += rng.uniform() < 0.25 ? "*" : node() + "-" + node();
  } else {
    clause += node();
  }
  if (kind == "slow_node") {
    clause += ":x" + format_exact17(rng.uniform(1.5, 16.0));
  }
  if (kind == "link_delay") {
    clause += ":t=" + format_exact17(rng.uniform(1e-6, 1e-2)) + "s";
  } else if (rng.uniform() < 0.5) {
    clause += ":t=" + format_exact17(rng.uniform(0.0, 10.0)) +
              kSuffixes[rng.uniform_index(5)];
  }
  if (rng.uniform() < 0.5) {
    clause += ":p=" + format_exact17(rng.uniform());
  }
  if (!link && rng.uniform() < 0.3) {
    clause += rng.uniform() < 0.5 ? ":cpu" : ":gpu";
  }
  return clause;
}

TEST(FaultPlanFuzz, GeneratedValidSpecsParseAndRoundTripThroughToSpec) {
  Rng rng(0xfa11);
  for (int i = 0; i < 100; ++i) {
    std::string spec = random_valid_clause(rng);
    const std::size_t extra = rng.uniform_index(3);
    for (std::size_t c = 0; c < extra; ++c) {
      spec += (rng.uniform() < 0.5 ? ";" : ",") + random_valid_clause(rng);
    }
    SCOPED_TRACE(spec);
    fault::FaultPlan plan;
    ASSERT_NO_THROW(plan = fault::FaultPlan::parse(spec));
    ASSERT_FALSE(plan.empty());
    // The canonical spelling reparses to the same clauses, doubles exact.
    const std::string canonical = plan.to_spec();
    const fault::FaultPlan back = fault::FaultPlan::parse(canonical);
    EXPECT_EQ(back.clauses, plan.clauses);
    EXPECT_EQ(back.to_spec(), canonical);
  }
}

TEST(FaultPlanFuzz, MutatedSpecsEitherParseOrThrowPrsErrorsOnly) {
  Rng rng(0xbadf00d);
  std::string charset =
      "abcdefghijklmnopqrstuvwxyz0123456789:;,.*-=_ xXtTpPeE+\t\n";
  charset.push_back('\0');   // embedded NUL
  charset.push_back('\x7f');
  charset.push_back('\xff');
  int parsed = 0;
  int rejected = 0;
  for (int i = 0; i < 200; ++i) {
    std::string spec = random_valid_clause(rng);
    const int mutations = 1 + static_cast<int>(rng.uniform_index(4));
    for (int m = 0; m < mutations; ++m) {
      if (spec.empty()) break;
      const std::size_t pos = rng.uniform_index(spec.size());
      const char c = charset[rng.uniform_index(charset.size())];
      switch (rng.uniform_index(3)) {
        case 0:
          spec[pos] = c;
          break;
        case 1:
          spec.insert(pos, 1, c);
          break;
        default:
          spec.erase(pos, 1);
          break;
      }
    }
    SCOPED_TRACE(spec);
    try {
      fault::FaultPlan::parse(spec);
      ++parsed;
    } catch (const prs::Error&) {
      ++rejected;  // the only acceptable failure mode
    }
    // Anything else (std::out_of_range from stoi/stod, bad_alloc from a
    // bogus length, segfault) escapes and fails the test.
  }
  // The mutator must actually exercise both sides of the parser.
  EXPECT_GT(parsed, 5);
  EXPECT_GT(rejected, 5);
}

TEST(FaultPlanFuzz, OverflowingNumbersAreRejectedAsInvalidArgument) {
  EXPECT_THROW(
      fault::FaultPlan::parse("node_crash:node99999999999999999999"),
      InvalidArgument);
  EXPECT_THROW(fault::FaultPlan::parse("slow_node:node0:x1e999"),
               InvalidArgument);
  EXPECT_THROW(fault::FaultPlan::parse("gpu_hang:node1:t=1e999s"),
               InvalidArgument);
  EXPECT_THROW(fault::FaultPlan::parse("task_error:node1:p=1e999"),
               InvalidArgument);
  EXPECT_THROW(fault::FaultPlan::parse("link_delay:*:t=1e-999999s"),
               InvalidArgument);
}

TEST(FaultPlanFuzz, ToSpecOfParsedSpecIsAFixedPoint) {
  const char* specs[] = {
      "gpu_hang:node1:t=2ms; link_drop:node0-node2:p=0.01,"
      "slow_node:node3:x4:gpu; node_crash:*:t=1500us",
      "link_delay:*:t=1ms:p=0.1; link_dup:node0-*:p=0.02",
      "task_error:node1:p=0.05",
  };
  for (const char* s : specs) {
    const auto plan = fault::FaultPlan::parse(s);
    const std::string canonical = plan.to_spec();
    const auto back = fault::FaultPlan::parse(canonical);
    EXPECT_EQ(back.clauses, plan.clauses) << s;
    EXPECT_EQ(back.to_spec(), canonical) << s;
  }
}

}  // namespace
}  // namespace prs::core
