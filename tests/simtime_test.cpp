// Unit tests for the discrete-event simulation engine: clock semantics,
// deterministic ordering, coroutine processes, futures, channels, resources
// and bandwidth links.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "simtime/channel.hpp"
#include "simtime/future.hpp"
#include "simtime/process.hpp"
#include "simtime/resource.hpp"
#include "simtime/simulator.hpp"

namespace prs::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, AdvancesClockToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(2.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 2.5);
  EXPECT_EQ(sim.now(), 2.5);
}

TEST(Simulator, DispatchesInTimeOrderRegardlessOfInsertion) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesBreakFifoByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    sim.schedule_at(1.0, [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, RejectsSchedulingInThePast) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), InvalidArgument);
  EXPECT_THROW(sim.schedule_after(-0.1, [] {}), InvalidArgument);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule_after(1.0, chain);
  };
  sim.schedule_after(1.0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(3.5, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 2);  // events at t<=2 inclusive
  EXPECT_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, CountsDispatchedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_after(0.0, [] {});
  sim.run();
  EXPECT_EQ(sim.events_dispatched(), 7u);
}

// -- processes ---------------------------------------------------------------

Process sleeper(Simulator& sim, std::vector<double>& wakes, double dt,
                int times) {
  for (int i = 0; i < times; ++i) {
    co_await delay(sim, dt);
    wakes.push_back(sim.now());
  }
}

TEST(Process, DelayAdvancesVirtualTime) {
  Simulator sim;
  std::vector<double> wakes;
  sim.spawn(sleeper(sim, wakes, 0.5, 3));
  sim.run();
  ASSERT_EQ(wakes.size(), 3u);
  EXPECT_DOUBLE_EQ(wakes[0], 0.5);
  EXPECT_DOUBLE_EQ(wakes[1], 1.0);
  EXPECT_DOUBLE_EQ(wakes[2], 1.5);
}

TEST(Process, ManyProcessesInterleaveDeterministically) {
  Simulator sim;
  std::vector<double> a, b;
  sim.spawn(sleeper(sim, a, 0.3, 4));
  sim.spawn(sleeper(sim, b, 0.5, 2));
  sim.run();
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_DOUBLE_EQ(a.back(), 1.2);
  EXPECT_DOUBLE_EQ(b.back(), 1.0);
}

Process thrower(Simulator& sim) {
  co_await delay(sim, 1.0);
  throw InvalidArgument("boom");
}

TEST(Process, ExceptionPropagatesToRun) {
  Simulator sim;
  sim.spawn(thrower(sim));
  EXPECT_THROW(sim.run(), InvalidArgument);
}

TEST(Process, UnspawnedProcessDoesNotLeakOrRun) {
  Simulator sim;
  bool ran = false;
  {
    auto coro = [](Simulator& s, bool& flag) -> Process {
      flag = true;
      co_await delay(s, 1.0);
    }(sim, ran);
    // destroyed without spawn
  }
  sim.run();
  EXPECT_FALSE(ran);
}

// -- futures -----------------------------------------------------------------

Process await_future(Simulator& sim, Future<int> f, std::vector<int>& out) {
  const int v = co_await f;
  out.push_back(v);
  out.push_back(static_cast<int>(sim.now()));
}

Process resolve_later(Simulator& sim, Promise<int> p, double at, int value) {
  co_await delay(sim, at);
  p.set_value(value);
}

TEST(Future, AwaitBlocksUntilResolution) {
  Simulator sim;
  Promise<int> p(sim);
  std::vector<int> out;
  sim.spawn(await_future(sim, p.get_future(), out));
  sim.spawn(resolve_later(sim, p, 3.0, 42));
  sim.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 42);
  EXPECT_EQ(out[1], 3);
}

TEST(Future, AwaitOnAlreadyResolvedReturnsImmediately) {
  Simulator sim;
  Promise<int> p(sim);
  p.set_value(7);
  std::vector<int> out;
  sim.spawn(await_future(sim, p.get_future(), out));
  sim.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(out[1], 0);
}

TEST(Future, MultipleWaitersAllResume) {
  Simulator sim;
  Promise<int> p(sim);
  std::vector<int> out;
  for (int i = 0; i < 5; ++i) {
    sim.spawn(await_future(sim, p.get_future(), out));
  }
  sim.spawn(resolve_later(sim, p, 1.0, 9));
  sim.run();
  EXPECT_EQ(out.size(), 10u);
}

TEST(Future, DoubleResolveThrows) {
  Simulator sim;
  Promise<int> p(sim);
  p.set_value(1);
  EXPECT_THROW(p.set_value(2), InvalidArgument);
}

TEST(Future, OnReadyCallbackFires) {
  Simulator sim;
  Promise<int> p(sim);
  int seen = 0;
  p.get_future().on_ready([&](const int& v) { seen = v; });
  p.set_value(13);
  sim.run();
  EXPECT_EQ(seen, 13);
}

TEST(Future, WhenAllResolvesAfterLastInput) {
  Simulator sim;
  std::vector<Promise<int>> ps;
  std::vector<Future<int>> fs;
  for (int i = 0; i < 4; ++i) {
    ps.emplace_back(sim);
    fs.push_back(ps.back().get_future());
  }
  auto all = when_all(sim, fs);
  double resolved_at = -1.0;
  all.on_ready([&](const Unit&) { resolved_at = sim.now(); });
  for (int i = 0; i < 4; ++i) {
    sim.spawn(resolve_later(sim, ps[static_cast<size_t>(i)],
                            1.0 + static_cast<double>(i), i));
  }
  sim.run();
  EXPECT_DOUBLE_EQ(resolved_at, 4.0);
}

TEST(Future, WhenAllOfEmptySetResolvesImmediately) {
  Simulator sim;
  auto all = when_all(sim, std::vector<Future<int>>{});
  EXPECT_TRUE(all.ready());
}

TEST(Future, WithTimeoutResolvesTrueWhenFutureWins) {
  Simulator sim;
  Promise<int> p(sim);
  sim.schedule_at(1.0, [&] { p.set_value(7); });
  bool result = false;
  double resolved_at = -1.0;
  auto timed = with_timeout(sim, p.get_future(), 5.0);
  timed.on_ready([&](bool ok) {
    result = ok;
    resolved_at = sim.now();
  });
  sim.run();
  EXPECT_TRUE(result);
  EXPECT_EQ(resolved_at, 1.0);
}

TEST(Future, WithTimeoutResolvesFalseWhenDeadlineWins) {
  Simulator sim;
  Promise<int> p(sim);
  sim.schedule_at(9.0, [&] { p.set_value(7); });  // too late
  bool result = true;
  double resolved_at = -1.0;
  auto timed = with_timeout(sim, p.get_future(), 2.0);
  timed.on_ready([&](bool ok) {
    result = ok;
    resolved_at = sim.now();
  });
  sim.run();
  EXPECT_FALSE(result);
  EXPECT_EQ(resolved_at, 2.0);
}

TEST(Future, WithTimeoutLateResolutionLeavesFutureReusable) {
  // A retry can re-arm with_timeout on the same underlying future.
  Simulator sim;
  Promise<int> p(sim);
  sim.schedule_at(3.0, [&] { p.set_value(7); });
  std::vector<bool> results;
  auto first = with_timeout(sim, p.get_future(), 1.0);
  first.on_ready([&](bool ok) {
    results.push_back(ok);
    auto second = with_timeout(sim, p.get_future(), 4.0);
    second.on_ready([&](bool ok2) { results.push_back(ok2); });
  });
  sim.run();
  EXPECT_EQ(results, (std::vector<bool>{false, true}));
}

// -- channels ----------------------------------------------------------------

Process consumer(Simulator& sim, Channel<int>& ch, std::vector<int>& out) {
  for (;;) {
    auto v = co_await ch.recv();
    if (!v) break;
    out.push_back(*v);
    (void)sim;
  }
}

Process producer(Simulator& sim, Channel<int>& ch, int n, double dt) {
  for (int i = 0; i < n; ++i) {
    co_await delay(sim, dt);
    ch.send(i);
  }
  ch.close();
}

TEST(Channel, DeliversAllValuesInOrder) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> out;
  sim.spawn(consumer(sim, ch, out));
  sim.spawn(producer(sim, ch, 5, 0.1));
  sim.run();
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, BufferedValuesSurviveUntilReceiverArrives) {
  Simulator sim;
  Channel<int> ch(sim);
  ch.send(1);
  ch.send(2);
  EXPECT_EQ(ch.size(), 2u);
  std::vector<int> out;
  sim.spawn(consumer(sim, ch, out));
  sim.schedule_at(1.0, [&] { ch.close(); });
  sim.run();
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

TEST(Channel, CloseWakesBlockedReceiversWithNullopt) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> out;
  bool done = false;
  sim.spawn([](Simulator&, Channel<int>& c, bool& flag) -> Process {
    auto v = co_await c.recv();
    EXPECT_FALSE(v.has_value());
    flag = true;
  }(sim, ch, done));
  sim.schedule_at(2.0, [&] { ch.close(); });
  sim.run();
  EXPECT_TRUE(done);
}

TEST(Channel, DestroyedWhileReceiverSuspendedYieldsNullopt) {
  // Regression: a process blocked on recv() used to dereference freed
  // channel state when the channel was destroyed before it resumed. The
  // waiter must instead be woken with nullopt and never touch the channel.
  Simulator sim;
  auto ch = std::make_unique<Channel<int>>(sim);
  bool resumed = false;
  sim.spawn([](Simulator&, Channel<int>& c, bool& flag) -> Process {
    auto v = co_await c.recv();
    EXPECT_FALSE(v.has_value());
    flag = true;
  }(sim, *ch, resumed));
  sim.schedule_at(1.0, [&] { ch.reset(); });  // destroy mid-run
  sim.run();
  EXPECT_TRUE(resumed);
}

TEST(Channel, DestroyedAfterCloseBeforeResumeIsSafe) {
  // close() schedules the wake-up; destroying the channel before the woken
  // receiver actually runs must not leave it reading freed state.
  Simulator sim;
  auto ch = std::make_unique<Channel<int>>(sim);
  bool resumed = false;
  sim.spawn([](Simulator&, Channel<int>& c, bool& flag) -> Process {
    auto v = co_await c.recv();
    EXPECT_FALSE(v.has_value());
    flag = true;
  }(sim, *ch, resumed));
  sim.schedule_at(1.0, [&] {
    ch->close();
    ch.reset();  // freed before the close() wake-up event dispatches
  });
  sim.run();
  EXPECT_TRUE(resumed);
}

TEST(Channel, TwoConsumersSplitWorkFifo) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> a, b;
  sim.spawn(consumer(sim, ch, a));
  sim.spawn(consumer(sim, ch, b));
  sim.spawn(producer(sim, ch, 6, 0.1));
  sim.run();
  EXPECT_EQ(a.size() + b.size(), 6u);
  // The first-registered consumer receives the first item.
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a[0], 0);
}

TEST(Channel, SendOnClosedThrows) {
  Simulator sim;
  Channel<int> ch(sim);
  ch.close();
  EXPECT_THROW(ch.send(1), InvalidArgument);
}

TEST(Channel, TryRecvIsNonBlocking) {
  Simulator sim;
  Channel<int> ch(sim);
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(5);
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
}

// -- resources ---------------------------------------------------------------

Process hold_resource(Simulator& sim, Resource& res, double for_time,
                      std::vector<double>& grants) {
  co_await res.acquire();
  grants.push_back(sim.now());
  co_await delay(sim, for_time);
  res.release();
}

TEST(Resource, SerializesWhenCapacityIsOne) {
  Simulator sim;
  Resource res(sim, 1);
  std::vector<double> grants;
  for (int i = 0; i < 3; ++i) sim.spawn(hold_resource(sim, res, 2.0, grants));
  sim.run();
  ASSERT_EQ(grants.size(), 3u);
  EXPECT_DOUBLE_EQ(grants[0], 0.0);
  EXPECT_DOUBLE_EQ(grants[1], 2.0);
  EXPECT_DOUBLE_EQ(grants[2], 4.0);
}

TEST(Resource, AllowsConcurrencyUpToCapacity) {
  Simulator sim;
  Resource res(sim, 2);
  std::vector<double> grants;
  for (int i = 0; i < 4; ++i) sim.spawn(hold_resource(sim, res, 1.0, grants));
  sim.run();
  ASSERT_EQ(grants.size(), 4u);
  EXPECT_DOUBLE_EQ(grants[0], 0.0);
  EXPECT_DOUBLE_EQ(grants[1], 0.0);
  EXPECT_DOUBLE_EQ(grants[2], 1.0);
  EXPECT_DOUBLE_EQ(grants[3], 1.0);
}

TEST(Resource, MultiUnitAcquireWaitsForEnoughUnits) {
  Simulator sim;
  Resource res(sim, 4);
  std::vector<std::string> log;
  sim.spawn([](Simulator& s, Resource& r,
               std::vector<std::string>& lg) -> Process {
    co_await r.acquire(3);
    lg.push_back("big@" + std::to_string(s.now()));
    co_await delay(s, 2.0);
    r.release(3);
  }(sim, res, log));
  sim.spawn([](Simulator& s, Resource& r,
               std::vector<std::string>& lg) -> Process {
    co_await delay(s, 0.5);
    co_await r.acquire(2);  // only 1 free until t=2
    lg.push_back("small@" + std::to_string(s.now()));
    r.release(2);
  }(sim, res, log));
  sim.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].substr(0, 4), "big@");
  EXPECT_EQ(log[1].substr(0, 15), "small@2.000000");
}

TEST(Resource, InvalidAcquireAmountThrows) {
  Simulator sim;
  Resource res(sim, 2);
  EXPECT_THROW(res.acquire(0), InvalidArgument);
  EXPECT_THROW(res.acquire(3), InvalidArgument);
}

TEST(Resource, AvailableTracksGrants) {
  Simulator sim;
  Resource res(sim, 3);
  std::vector<double> grants;
  sim.spawn(hold_resource(sim, res, 1.0, grants));
  sim.run_until(0.5);
  EXPECT_EQ(res.available(), 2u);
  sim.run();
  EXPECT_EQ(res.available(), 3u);
}

// -- bandwidth links ----------------------------------------------------------

Process do_transfer(Simulator& sim, BandwidthLink& link, double bytes,
                    std::vector<double>& done) {
  co_await link.transfer(bytes);
  done.push_back(sim.now());
}

TEST(BandwidthLink, TransferTimeIsSizeOverBandwidth) {
  Simulator sim;
  BandwidthLink link(sim, 100.0);  // 100 B/s
  std::vector<double> done;
  sim.spawn(do_transfer(sim, link, 250.0, done));
  sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0], 2.5);
}

TEST(BandwidthLink, SerializesConcurrentTransfers) {
  Simulator sim;
  BandwidthLink link(sim, 100.0);
  std::vector<double> done;
  sim.spawn(do_transfer(sim, link, 100.0, done));
  sim.spawn(do_transfer(sim, link, 100.0, done));
  sim.spawn(do_transfer(sim, link, 100.0, done));
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 2.0);
  EXPECT_DOUBLE_EQ(done[2], 3.0);
}

TEST(BandwidthLink, LatencyIsPipelinedNotOccupying) {
  Simulator sim;
  BandwidthLink link(sim, 100.0, /*latency=*/0.5);
  std::vector<double> done;
  sim.spawn(do_transfer(sim, link, 100.0, done));
  sim.spawn(do_transfer(sim, link, 100.0, done));
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 1.5);  // 1.0 service + 0.5 latency
  EXPECT_DOUBLE_EQ(done[1], 2.5);  // server freed at 2.0, +0.5 latency
}

TEST(BandwidthLink, TracksUtilization) {
  Simulator sim;
  BandwidthLink link(sim, 50.0);
  std::vector<double> done;
  sim.spawn(do_transfer(sim, link, 100.0, done));
  sim.run();
  EXPECT_DOUBLE_EQ(link.busy_time(), 2.0);
  EXPECT_DOUBLE_EQ(link.bytes_transferred(), 100.0);
}

TEST(BandwidthLink, EstimateCompletionMatchesActual) {
  Simulator sim;
  BandwidthLink link(sim, 100.0, 0.25);
  const double est = link.estimate_completion(100.0);
  std::vector<double> done;
  sim.spawn(do_transfer(sim, link, 100.0, done));
  sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0], est);
}

TEST(BandwidthLink, ZeroByteTransferPaysOnlyLatency) {
  Simulator sim;
  BandwidthLink link(sim, 100.0, 0.5);
  std::vector<double> done;
  sim.spawn(do_transfer(sim, link, 0.0, done));
  sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0], 0.5);
}

// Determinism: the same program produces the identical event trace twice.
TEST(Simulator, EndToEndDeterminism) {
  auto trace = [] {
    Simulator sim;
    Channel<int> ch(sim);
    Resource res(sim, 2);
    std::vector<double> grants;
    std::vector<int> consumed;
    sim.spawn(producer(sim, ch, 8, 0.05));
    sim.spawn(consumer(sim, ch, consumed));
    for (int i = 0; i < 3; ++i) {
      sim.spawn(hold_resource(sim, res, 0.3, grants));
    }
    sim.run();
    return std::tuple(sim.events_dispatched(), sim.now(), grants, consumed);
  };
  EXPECT_EQ(trace(), trace());
}

// A daemon blocked forever on a channel never finishes; its frame (and the
// destructors of its locals) must still be released when the simulator is
// torn down, or every eternal device loop leaks.
struct TeardownGuard {
  int* destroyed;
  ~TeardownGuard() { ++*destroyed; }
};

Process eternal_daemon(Channel<int>& ch, int* destroyed) {
  TeardownGuard guard{destroyed};
  for (;;) {
    auto v = co_await ch.recv();
    if (!v) break;
  }
}

Process send_without_closing(Simulator& sim, Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await delay(sim, 0.1);
    ch.send(i);
  }
}

TEST(Simulator, DestroysLiveDaemonFramesAtTeardown) {
  int destroyed = 0;
  {
    Simulator sim;
    Channel<int> ch(sim);
    sim.spawn(eternal_daemon(ch, &destroyed));
    sim.spawn(send_without_closing(sim, ch, 3));  // finishes; ch stays open
    sim.run();
    EXPECT_TRUE(sim.idle());
    // The sender's frame was retired; only the daemon is still live.
    EXPECT_EQ(sim.live_processes(), 1u);
    EXPECT_EQ(destroyed, 0);
  }
  EXPECT_EQ(destroyed, 1);
}

}  // namespace
}  // namespace prs::sim
