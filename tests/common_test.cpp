// Unit tests for common utilities: error macros, RNG, stats, units, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace prs {
namespace {

TEST(Error, RequireThrowsInvalidArgument) {
  EXPECT_THROW(PRS_REQUIRE(false, "nope"), InvalidArgument);
  EXPECT_NO_THROW(PRS_REQUIRE(true, "ok"));
}

TEST(Error, CheckThrowsInternalError) {
  EXPECT_THROW(PRS_CHECK(false, "bug"), InternalError);
}

TEST(Error, MessageContainsLocationAndText) {
  try {
    PRS_REQUIRE(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom context"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW(r.uniform(2.0, 1.0), InvalidArgument);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng r(11);
  std::array<int, 5> counts{};
  for (int i = 0; i < 50000; ++i) counts[r.uniform_index(5)]++;
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
  EXPECT_THROW(r.uniform_index(0), InvalidArgument);
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng r(42);
  StatsAccumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(r.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalWithParamsScales) {
  Rng r(42);
  StatsAccumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(99);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1.next() == c2.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  r.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Stats, AccumulatorBasics) {
  StatsAccumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, EmptyAccumulatorIsZero) {
  StatsAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
  EXPECT_THROW(percentile({}, 50), InvalidArgument);
  EXPECT_THROW(percentile(xs, 101), InvalidArgument);
}

TEST(Stats, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(11.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(10.0, 10.0), 0.0);
  EXPECT_GT(relative_error(1.0, 0.0), 1e6);  // guarded by eps
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(units::gb_per_s(8.0), 8e9);
  EXPECT_DOUBLE_EQ(units::gflops(1.5), 1.5e9);
  EXPECT_DOUBLE_EQ(units::usec(3.0), 3e-6);
  EXPECT_DOUBLE_EQ(units::msec(3.0), 3e-3);
}

TEST(Units, TimeFormatting) {
  EXPECT_EQ(units::format_time(2.0), "2 s");
  EXPECT_EQ(units::format_time(2e-3), "2 ms");
  EXPECT_EQ(units::format_time(2e-6), "2 us");
  EXPECT_EQ(units::format_time(2e-9), "2 ns");
}

TEST(Units, ByteAndRateFormatting) {
  EXPECT_EQ(units::format_bytes(2048), "2 KiB");
  EXPECT_EQ(units::format_flops(1.03e12), "1.03 Tflop/s");
  EXPECT_EQ(units::format_bandwidth(4e10), "40 GB/s");
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, NumFormatsCompactly) {
  EXPECT_EQ(TextTable::num(2.5), "2.5");
  EXPECT_EQ(TextTable::num(1234.5678, 6), "1234.57");
}

}  // namespace
}  // namespace prs
