// Unit + property tests for the BLAS-subset kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace prs::linalg {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  MatrixD m(3, 4, 1.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_DOUBLE_EQ(m(2, 3), 1.5);
  m(1, 2) = -7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), -7.0);
  EXPECT_THROW(m(3, 0), InvalidArgument);
  EXPECT_THROW(m(0, 4), InvalidArgument);
}

TEST(Matrix, RowsAreContiguous) {
  MatrixD m(2, 3);
  for (std::size_t c = 0; c < 3; ++c) m(1, c) = static_cast<double>(c);
  const double* r = m.row(1);
  EXPECT_DOUBLE_EQ(r[0], 0.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
  EXPECT_THROW(m.row(2), InvalidArgument);
}

TEST(Matrix, EqualityIsElementwise) {
  MatrixD a(2, 2, 1.0), b(2, 2, 1.0);
  EXPECT_EQ(a, b);
  b(0, 0) = 2.0;
  EXPECT_NE(a, b);
}

TEST(Blas, AxpyAndDot) {
  std::vector<double> x{1, 2, 3}, y{10, 20, 30};
  axpy(2.0, std::span<const double>(x), std::span<double>(y));
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 36.0);
  EXPECT_DOUBLE_EQ(dot(std::span<const double>(x), std::span<const double>(x)),
                   14.0);
  std::vector<double> bad{1.0};
  EXPECT_THROW(
      dot(std::span<const double>(x), std::span<const double>(bad)),
      InvalidArgument);
}

TEST(Blas, Nrm2AndDistance) {
  std::vector<double> a{3, 4}, b{0, 0};
  EXPECT_DOUBLE_EQ(nrm2(std::span<const double>(a)), 5.0);
  EXPECT_DOUBLE_EQ(squared_distance(std::span<const double>(a),
                                    std::span<const double>(b)),
                   25.0);
}

TEST(Blas, Nrm2SurvivesOverflowProneInputs) {
  // Naive sum-of-squares overflows to inf at 1e200 (1e400 > DBL_MAX); the
  // dnrm2-style scaled accumulation must return the exact norm instead.
  std::vector<double> big{3e200, 4e200};
  EXPECT_DOUBLE_EQ(nrm2(std::span<const double>(big)), 5e200);
  std::vector<double> same{1e200, 1e200};
  EXPECT_DOUBLE_EQ(nrm2(std::span<const double>(same)),
                   std::sqrt(2.0) * 1e200);
}

TEST(Blas, Nrm2SurvivesUnderflowProneInputs) {
  // Naive squaring underflows 1e-200 to 0 (1e-400 < DBL_MIN) and loses the
  // tiny component entirely; scaling keeps it.
  std::vector<double> tiny{3e-200, 4e-200};
  EXPECT_DOUBLE_EQ(nrm2(std::span<const double>(tiny)), 5e-200);
  std::vector<double> mixed{1e-200, 0.0, -1e-200};
  EXPECT_DOUBLE_EQ(nrm2(std::span<const double>(mixed)),
                   std::sqrt(2.0) * 1e-200);
  std::vector<double> zeros{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(nrm2(std::span<const double>(zeros)), 0.0);
}

TEST(Blas, GemvAgainstHandComputedValues) {
  MatrixD a(2, 3);
  // [1 2 3; 4 5 6] * [1 1 1]^T = [6, 15]^T
  double v = 1;
  for (auto& e : a.storage()) e = v++;
  std::vector<double> x{1, 1, 1}, y{100, 100};
  gemv(1.0, a, std::span<const double>(x), 0.0, std::span<double>(y));
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  // With alpha/beta: y = 2*A*x + 1*y
  gemv(2.0, a, std::span<const double>(x), 1.0, std::span<double>(y));
  EXPECT_DOUBLE_EQ(y[0], 18.0);
  EXPECT_DOUBLE_EQ(y[1], 45.0);
}

TEST(Blas, GemvShapeChecks) {
  MatrixD a(2, 3);
  std::vector<double> x(2), y(2);
  EXPECT_THROW(
      gemv(1.0, a, std::span<const double>(x), 0.0, std::span<double>(y)),
      InvalidArgument);
}

TEST(Blas, GemmAgainstHandComputedValues) {
  MatrixD a(2, 2), b(2, 2), c(2, 2, 0.0);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  gemm(1.0, a, b, 0.0, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Blas, FlopCountHelpers) {
  EXPECT_DOUBLE_EQ(gemv_flops(100, 50), 10000.0);
  EXPECT_DOUBLE_EQ(gemm_flops(10, 20, 30), 12000.0);
}

// Property: blocked gemm agrees with naive gemm on random matrices for
// various shapes and block sizes.
struct GemmCase {
  std::size_t m, n, k, block;
};

class GemmEquivalence : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmEquivalence, BlockedMatchesNaive) {
  const auto p = GetParam();
  Rng rng(p.m * 1000 + p.n * 100 + p.k);
  MatrixD a(p.m, p.k), b(p.k, p.n);
  for (auto& v : a.storage()) v = rng.uniform(-1, 1);
  for (auto& v : b.storage()) v = rng.uniform(-1, 1);
  MatrixD c1(p.m, p.n, 0.5), c2(p.m, p.n, 0.5);
  gemm(1.3, a, b, 0.7, c1);
  gemm_blocked(1.3, a, b, 0.7, c2, p.block);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1.storage()[i], c2.storage()[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmEquivalence,
    ::testing::Values(GemmCase{1, 1, 1, 4}, GemmCase{5, 7, 3, 2},
                      GemmCase{16, 16, 16, 8}, GemmCase{33, 17, 29, 8},
                      GemmCase{64, 64, 64, 64}, GemmCase{10, 100, 1, 16}));

// Property: gemv is a linear operator.
TEST(Blas, GemvLinearity) {
  Rng rng(31);
  MatrixD a(8, 6);
  for (auto& v : a.storage()) v = rng.uniform(-1, 1);
  std::vector<double> x1(6), x2(6), xsum(6);
  for (std::size_t i = 0; i < 6; ++i) {
    x1[i] = rng.uniform(-1, 1);
    x2[i] = rng.uniform(-1, 1);
    xsum[i] = x1[i] + x2[i];
  }
  std::vector<double> y1(8, 0.0), y2(8, 0.0), ysum(8, 0.0);
  gemv(1.0, a, std::span<const double>(x1), 0.0, std::span<double>(y1));
  gemv(1.0, a, std::span<const double>(x2), 0.0, std::span<double>(y2));
  gemv(1.0, a, std::span<const double>(xsum), 0.0, std::span<double>(ysum));
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(ysum[i], y1[i] + y2[i], 1e-12);
  }
}

TEST(Blas, TransposeRoundTrips) {
  Rng rng(77);
  MatrixD a(5, 9);
  for (auto& v : a.storage()) v = rng.uniform(-1, 1);
  const MatrixD t = transpose(a);
  EXPECT_EQ(t.rows(), 9u);
  EXPECT_EQ(t.cols(), 5u);
  EXPECT_EQ(transpose(t), a);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_DOUBLE_EQ(t(c, r), a(r, c));
    }
  }
}

}  // namespace
}  // namespace prs::linalg
