// NUMA topology layer (src/numa) + NUMA-aware pool behaviour, proven on
// synthetic topologies: CI runners are single-socket, so every scheduling
// decision (lane -> socket map, steal order, prefault placement) is
// asserted on injected 1/2/4-socket mock layouts — and full app runs are
// swept across topologies, thread counts and PRS_NUMA on/off to pin the
// byte-identity contract (DESIGN.md §4k).
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/cmeans.hpp"
#include "apps/wordcount.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/job_runner.hpp"
#include "data/dataset.hpp"
#include "exec/parallel.hpp"
#include "exec/prefault.hpp"
#include "exec/thread_pool.hpp"
#include "numa/topology.hpp"

namespace {

using namespace prs;

/// Restores pool sizing AND all numa overrides when a test scope ends.
struct NumaGuard {
  ~NumaGuard() {
    numa::clear_enabled_override();
    numa::clear_topology_override();
    exec::ThreadPool::instance().configure(0);
  }
};

std::uint64_t digest(std::uint64_t h, const double* p, std::size_t n) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n * sizeof(double); ++i) {
    h = (h ^ bytes[i]) * 1099511628211ULL;
  }
  return h;
}

// -- cpulist / spec parsing --------------------------------------------------

TEST(NumaTopology, ParsesCpulists) {
  EXPECT_EQ(numa::parse_cpulist("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(numa::parse_cpulist("5"), (std::vector<int>{5}));
  EXPECT_EQ(numa::parse_cpulist("0-2,8,10-11"),
            (std::vector<int>{0, 1, 2, 8, 10, 11}));
  // Output is sorted even when the input is not.
  EXPECT_EQ(numa::parse_cpulist("7,3-4"), (std::vector<int>{3, 4, 7}));
  EXPECT_THROW(numa::parse_cpulist(""), Error);
  EXPECT_THROW(numa::parse_cpulist("abc"), Error);
  EXPECT_THROW(numa::parse_cpulist("3-1"), Error);
  EXPECT_THROW(numa::parse_cpulist("1,,2"), Error);
  EXPECT_THROW(numa::parse_cpulist("-2"), Error);
}

TEST(NumaTopology, ParsesUniformShorthand) {
  const numa::Topology t = numa::Topology::parse("2x4");
  EXPECT_EQ(t.socket_count(), 2);
  EXPECT_EQ(t.cpu_count(), 8);
  EXPECT_EQ(t.sockets[0], (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(t.sockets[1], (std::vector<int>{4, 5, 6, 7}));
  EXPECT_FALSE(t.real);
}

TEST(NumaTopology, ParsesExplicitSocketLists) {
  const numa::Topology t = numa::Topology::parse("0-3;4-7,12");
  EXPECT_EQ(t.socket_count(), 2);
  EXPECT_EQ(t.sockets[0], (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(t.sockets[1], (std::vector<int>{4, 5, 6, 7, 12}));
}

TEST(NumaTopology, RejectsMalformedSpecs) {
  EXPECT_THROW(numa::Topology::parse(""), Error);
  EXPECT_THROW(numa::Topology::parse("0x4"), Error);   // 0 sockets
  EXPECT_THROW(numa::Topology::parse("2x"), Error);
  EXPECT_THROW(numa::Topology::parse("x4"), Error);
  EXPECT_THROW(numa::Topology::parse("0-3;"), Error);  // empty socket
  EXPECT_THROW(numa::Topology::parse("0-3;2-5"), Error);  // duplicate cpu
}

TEST(NumaTopology, SummaryNamesShape) {
  EXPECT_EQ(numa::Topology::uniform(2, 4).summary(),
            "2 socket(s), cpus 4+4 (synthetic)");
  const numa::Topology host = numa::discover();
  EXPECT_TRUE(host.real);
  EXPECT_GE(host.socket_count(), 1);
  EXPECT_GE(host.cpu_count(), 1);
  EXPECT_NE(host.summary().find("(host)"), std::string::npos);
}

// -- injection ---------------------------------------------------------------

TEST(NumaTopology, InjectedTopologyWinsAndIsNeverPinnable) {
  NumaGuard guard;
  numa::Topology t = numa::Topology::uniform(4, 2);
  t.real = true;  // a liar: injection must strip this
  numa::set_topology(t);
  const numa::Topology got = numa::active_topology();
  EXPECT_EQ(got.socket_count(), 4);
  EXPECT_FALSE(got.real);
  numa::clear_topology_override();
  EXPECT_TRUE(numa::active_topology().real ||
              numa::active_topology().socket_count() >= 1);
}

TEST(NumaEnable, OverrideAndScopedRestore) {
  NumaGuard guard;
  numa::clear_enabled_override();
  // Default (no PRS_NUMA in the test environment) is off.
  numa::set_enabled(true);
  EXPECT_TRUE(numa::enabled());
  {
    numa::ScopedEnable off(false);
    EXPECT_FALSE(numa::enabled());
    {
      numa::ScopedEnable on(true);
      EXPECT_TRUE(numa::enabled());
    }
    EXPECT_FALSE(numa::enabled());
  }
  // ScopedEnable restored the *override*, not just a bool.
  EXPECT_TRUE(numa::enabled());
  numa::clear_enabled_override();
}

// -- lane -> socket assignment ----------------------------------------------

TEST(NumaLaneMap, SingleSocketIsFlat) {
  const numa::LaneMap m =
      numa::build_lane_map(4, numa::Topology::uniform(1, 4));
  EXPECT_EQ(m.sockets, 1);
  EXPECT_EQ(m.socket_of, (std::vector<int>{0, 0, 0, 0}));
  const numa::LaneMap flat = numa::flat_lane_map(4);
  EXPECT_EQ(flat.probe_order, m.probe_order);
  EXPECT_FALSE(flat.pin);
}

TEST(NumaLaneMap, TwoSocketsSplitLanesInBlocks) {
  const numa::LaneMap m =
      numa::build_lane_map(8, numa::Topology::uniform(2, 4));
  EXPECT_EQ(m.sockets, 2);
  EXPECT_EQ(m.socket_of, (std::vector<int>{0, 0, 0, 0, 1, 1, 1, 1}));
}

TEST(NumaLaneMap, FourSocketsSplitLanesInBlocks) {
  const numa::LaneMap m =
      numa::build_lane_map(8, numa::Topology::uniform(4, 2));
  EXPECT_EQ(m.sockets, 4);
  EXPECT_EQ(m.socket_of, (std::vector<int>{0, 0, 1, 1, 2, 2, 3, 3}));
}

TEST(NumaLaneMap, AsymmetricSocketsGetProportionalLanes) {
  // 6 cpus on socket 0, 2 on socket 1 -> 6 lanes of 8 on socket 0.
  const numa::LaneMap m =
      numa::build_lane_map(8, numa::Topology::parse("0-5;6-7"));
  EXPECT_EQ(m.socket_of, (std::vector<int>{0, 0, 0, 0, 0, 0, 1, 1}));
}

TEST(NumaLaneMap, FewerLanesThanSocketsStillCoversEachLane) {
  const numa::LaneMap m =
      numa::build_lane_map(2, numa::Topology::uniform(4, 2));
  ASSERT_EQ(m.lanes(), 2);
  for (int l = 0; l < 2; ++l) {
    EXPECT_GE(m.socket_of[static_cast<std::size_t>(l)], 0);
    EXPECT_LT(m.socket_of[static_cast<std::size_t>(l)], 4);
  }
}

TEST(NumaLaneMap, SyntheticTopologyNeverPins) {
  const numa::LaneMap m =
      numa::build_lane_map(4, numa::Topology::uniform(2, 2));
  EXPECT_FALSE(m.pin);
  EXPECT_EQ(m.cpu_of, (std::vector<int>{-1, -1, -1, -1}));
}

// -- steal order -------------------------------------------------------------

/// Socket-local-first: self first, then every own-socket lane, then every
/// remote lane; each lane exactly once.
void check_probe_order(const numa::LaneMap& m) {
  const int lanes = m.lanes();
  for (int l = 0; l < lanes; ++l) {
    const auto& order = m.probe_order[static_cast<std::size_t>(l)];
    ASSERT_EQ(static_cast<int>(order.size()), lanes) << "lane " << l;
    EXPECT_EQ(order[0], l) << "lane " << l << " must probe itself first";
    std::set<int> seen(order.begin(), order.end());
    EXPECT_EQ(static_cast<int>(seen.size()), lanes)
        << "lane " << l << ": every victim exactly once";
    const int home = m.socket_of[static_cast<std::size_t>(l)];
    bool crossed = false;
    for (const int victim : order) {
      const bool remote =
          m.socket_of[static_cast<std::size_t>(victim)] != home;
      if (remote) crossed = true;
      EXPECT_FALSE(crossed && !remote)
          << "lane " << l << ": local victim " << victim
          << " probed after a remote one";
    }
  }
}

TEST(NumaStealOrder, LocalLanesPrecedeRemoteOnMockLayouts) {
  for (const char* spec : {"1x8", "2x4", "4x2", "0-5;6-7", "0;1-3;4-9"}) {
    for (int lanes : {1, 2, 3, 5, 8}) {
      check_probe_order(
          numa::build_lane_map(lanes, numa::Topology::parse(spec)));
    }
  }
}

TEST(NumaStealOrder, TwoSocketExampleIsExact) {
  const numa::LaneMap m =
      numa::build_lane_map(4, numa::Topology::uniform(2, 2));
  // Lanes 0,1 on socket 0; lanes 2,3 on socket 1.
  EXPECT_EQ(m.probe_order[0], (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(m.probe_order[1], (std::vector<int>{1, 0, 2, 3}));
  EXPECT_EQ(m.probe_order[2], (std::vector<int>{2, 3, 0, 1}));
  EXPECT_EQ(m.probe_order[3], (std::vector<int>{3, 2, 0, 1}));
}

// -- prefault plan -----------------------------------------------------------

TEST(NumaPrefault, PlanCoversBufferWithPageAlignedLaneExtents) {
  const numa::Topology topo = numa::Topology::uniform(2, 2);
  const std::size_t bytes = 1 << 20;  // 1 MiB over 4 lanes
  const auto plan = numa::plan_prefault(bytes, 4, topo);
  ASSERT_EQ(plan.size(), 4u);
  const numa::LaneMap m = numa::build_lane_map(4, topo);
  std::size_t expect_begin = 0;
  for (const auto& e : plan) {
    EXPECT_EQ(e.begin, expect_begin);  // contiguous, no gaps or overlap
    EXPECT_GT(e.end, e.begin);
    if (e.begin != 0) {
      EXPECT_EQ(e.begin % numa::kPrefaultPageBytes, 0u);
    }
    EXPECT_EQ(e.socket, m.socket_of[static_cast<std::size_t>(e.lane)]);
    expect_begin = e.end;
  }
  EXPECT_EQ(plan.back().end, bytes);
}

TEST(NumaPrefault, TinyBufferCollapsesToFewerExtents) {
  const auto plan =
      numa::plan_prefault(100, 8, numa::Topology::uniform(2, 4));
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan.front().begin, 0u);
  EXPECT_EQ(plan.back().end, 100u);
  EXPECT_TRUE(numa::plan_prefault(0, 8, numa::Topology::uniform(2, 4))
                  .empty());
}

TEST(NumaPrefault, FirstTouchWalksWithoutChangingContents) {
  NumaGuard guard;
  exec::ThreadPool::instance().configure(4);
  numa::set_topology(numa::Topology::uniform(2, 2));
  numa::set_enabled(true);
  std::vector<double> buf(70000, 1.25);
  exec::prefault_first_touch(buf.data(), buf.size() * sizeof(double));
  for (const double v : buf) ASSERT_EQ(v, 1.25);
  // Off: a clean no-op (also covers the nullptr/empty guards).
  numa::set_enabled(false);
  exec::prefault_first_touch(buf.data(), buf.size() * sizeof(double));
  exec::prefault_first_touch(nullptr, 64);
  exec::prefault_first_touch(buf.data(), 0);
}

// -- pool integration: stats gauges under a mock topology --------------------

TEST(NumaPool, SocketGaugeFollowsInjectedTopology) {
  NumaGuard guard;
  auto& pool = exec::ThreadPool::instance();
  pool.configure(4);
  numa::set_topology(numa::Topology::uniform(2, 2));
  numa::set_enabled(true);
  exec::parallel_for(0, 64, 1, [](std::size_t, std::size_t) {});
  exec::PoolStats s = pool.stats();
  EXPECT_EQ(s.sockets, 2);
  EXPECT_EQ(s.pinned_lanes, 0);  // synthetic layouts never pin

  // Toggling off restarts the workers flat at the next region.
  numa::set_enabled(false);
  exec::parallel_for(0, 64, 1, [](std::size_t, std::size_t) {});
  s = pool.stats();
  EXPECT_EQ(s.sockets, 1);
}

// -- byte-identity sweep (the acceptance criterion) --------------------------

/// Digest of full app runs: wordcount through its map kernel (engages the
/// per-lane kv-store path when NUMA is on), cmeans through a functional
/// distributed run (engages the prefault hook and JobConfig::host_numa).
std::uint64_t app_digest() {
  std::uint64_t h = 1469598103934665603ULL;

  Rng rng(42);
  auto corpus = std::make_shared<const apps::Corpus>(
      apps::generate_corpus(rng, 300, 8, 150));
  auto spec = apps::wordcount_spec(corpus);
  core::Emitter<std::string, long> em;
  spec.cpu_map(core::InputSlice{0, corpus->size()}, em);
  for (const auto& [w, c] : em.pairs()) {
    for (const char ch : w) {
      h = (h ^ static_cast<unsigned char>(ch)) * 1099511628211ULL;
    }
    const auto cd = static_cast<double>(c);
    h = digest(h, &cd, 1);
  }

  auto ds = data::generate_blobs(rng, 240, 6, 3, 10.0, 1.0);
  sim::Simulator simu;
  core::Cluster cluster(simu, 2, core::NodeConfig{});
  apps::CmeansParams cp;
  cp.clusters = 3;
  cp.max_iterations = 5;
  auto res = apps::cmeans_prs(cluster, ds.points, cp, core::JobConfig{});
  h = digest(h, &res.centers(0, 0), res.centers.size());
  h = digest(h, &res.objective, 1);
  return h;
}

TEST(NumaDeterminism, AppsAreByteIdenticalAcrossTopologiesAndThreads) {
  NumaGuard guard;
  auto& pool = exec::ThreadPool::instance();

  // Reference: NUMA off, one thread.
  numa::set_enabled(false);
  pool.configure(1);
  const std::uint64_t ref = app_digest();

  for (const char* spec : {"1x4", "2x2", "4x1", "0-2;3,4"}) {
    numa::set_topology(numa::Topology::parse(spec));
    for (int threads : {1, 2, 5}) {
      pool.configure(threads);
      numa::set_enabled(true);
      EXPECT_EQ(app_digest(), ref)
          << "topology=" << spec << " threads=" << threads << " numa=on";
      numa::set_enabled(false);
      EXPECT_EQ(app_digest(), ref)
          << "topology=" << spec << " threads=" << threads << " numa=off";
    }
  }
}

TEST(NumaDeterminism, PerJobOverrideMatchesProcessWideMode) {
  NumaGuard guard;
  exec::ThreadPool::instance().configure(3);
  numa::set_topology(numa::Topology::uniform(2, 2));
  numa::set_enabled(false);

  Rng rng(7);
  auto ds = data::generate_blobs(rng, 200, 5, 3, 8.0, 1.0);
  apps::CmeansParams cp;
  cp.clusters = 3;
  cp.max_iterations = 4;

  auto run = [&](int host_numa) {
    sim::Simulator simu;
    core::Cluster cluster(simu, 2, core::NodeConfig{});
    core::JobConfig cfg;
    cfg.host_numa = host_numa;
    auto res = apps::cmeans_prs(cluster, ds.points, cp, cfg);
    std::uint64_t h = 1469598103934665603ULL;
    h = digest(h, &res.centers(0, 0), res.centers.size());
    return digest(h, &res.objective, 1);
  };

  const std::uint64_t off = run(0);
  EXPECT_EQ(run(1), off);   // forced on: same bytes
  EXPECT_EQ(run(-1), off);  // inherit (off): same bytes
  // The scoped override restored the process-wide state.
  EXPECT_FALSE(numa::enabled());
}

}  // namespace
