// Tests for the heterogeneity extensions: multi-GPU fat nodes (paper
// Table 4: Delta carries two C2070s), inhomogeneous clusters with
// capability-weighted input splits (§III.B.3.a / future work c), the MIC
// accelerator backend (future work b), and the DGEMM application whose
// arithmetic intensity depends on block size (Eqs (10)-(11)).
#include <gtest/gtest.h>

#include "apps/cmeans.hpp"
#include "apps/dgemm.hpp"
#include "linalg/blas.hpp"
#include "apps/gemv.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/job_runner.hpp"
#include "data/dataset.hpp"

namespace prs::core {
namespace {

// -- multi-GPU fat nodes -------------------------------------------------------

NodeConfig delta_with_gpus(int gpus) {
  NodeConfig cfg;
  cfg.gpus_per_node = gpus;
  return cfg;
}

TEST(MultiGpu, SecondGpuLowersAnalyticCpuShare) {
  roofline::AnalyticScheduler sched(simdev::delta_cpu(),
                                    simdev::delta_c2070());
  const double p1 = sched.workload_split(500.0, false, 1).cpu_fraction;
  const double p2 = sched.workload_split(500.0, false, 2).cpu_fraction;
  EXPECT_LT(p2, p1);
  // Two compute-bound GPUs: p = Pc / (Pc + 2*Pg).
  EXPECT_NEAR(p2, 130.0 / (130.0 + 2.0 * 1030.0), 1e-3);
  EXPECT_THROW(sched.workload_split(500.0, false, 0), InvalidArgument);
}

TEST(MultiGpu, TwoGpusSpeedUpGpuOnlyJobs) {
  auto elapsed = [](int gpus) {
    sim::Simulator sim;
    Cluster cluster(sim, 1, delta_with_gpus(gpus));
    apps::CmeansParams p;
    p.clusters = 10;
    p.max_iterations = 5;
    JobConfig cfg;
    cfg.use_cpu = false;
    cfg.charge_job_startup = false;
    return apps::cmeans_prs_modeled(cluster, 500000, 100, p, cfg).elapsed;
  };
  const double t1 = elapsed(1);
  const double t2 = elapsed(2);
  EXPECT_LT(t2, t1 * 0.65);  // near-2x on the compute-dominated part
}

TEST(MultiGpu, ResultsUnchangedByGpuCount) {
  Rng rng(3);
  auto ds = data::generate_blobs(rng, 300, 3, 3, 10.0, 1.0);
  apps::CmeansParams p;
  p.clusters = 3;
  p.max_iterations = 15;

  sim::Simulator s1, s2;
  Cluster c1(s1, 2, delta_with_gpus(1));
  Cluster c2(s2, 2, delta_with_gpus(2));
  auto r1 = apps::cmeans_prs(c1, ds.points, p, JobConfig{});
  auto r2 = apps::cmeans_prs(c2, ds.points, p, JobConfig{});
  // The GPU count changes the work split (different p, different task
  // slices), so partial sums accumulate in a different order: centers agree
  // to summation tolerance, assignments exactly (blobs are well separated).
  ASSERT_EQ(r1.centers.rows(), r2.centers.rows());
  for (std::size_t i = 0; i < r1.centers.size(); ++i) {
    EXPECT_NEAR(r1.centers.storage()[i], r2.centers.storage()[i], 1e-6);
  }
  EXPECT_EQ(r1.assignment, r2.assignment);
}

TEST(MultiGpu, DynamicSchedulingUsesAllCards) {
  sim::Simulator sim;
  Cluster cluster(sim, 1, delta_with_gpus(2));
  auto& node = cluster.node(0);
  MapReduceSpec<int, long> spec;
  spec.name = "spread";
  spec.cpu_map = [](const InputSlice&, Emitter<int, long>& e) {
    e.emit(0, 1);
  };
  spec.combine = [](const long& a, const long& b) { return a + b; };
  spec.cpu_flops_per_item = 1000.0;
  spec.gpu_flops_per_item = 1000.0;
  spec.ai_cpu = 500.0;
  spec.ai_gpu = 500.0;
  spec.gpu_data_cached = true;
  spec.item_bytes = 8.0;
  JobConfig cfg;
  cfg.scheduling = SchedulingMode::kDynamic;
  cfg.use_cpu = false;
  (void)run_job(cluster, spec, cfg, 50000);
  EXPECT_GT(node.gpu(0).kernels_launched(), 0u);
  EXPECT_GT(node.gpu(1).kernels_launched(), 0u);
}

// -- inhomogeneous clusters -----------------------------------------------------

NodeConfig bigred2_node() {
  NodeConfig cfg;
  cfg.cpu = simdev::bigred2_cpu();
  cfg.gpu = simdev::bigred2_k20();
  return cfg;
}

NodeConfig cpu_only_node() {
  NodeConfig cfg;
  cfg.gpus_per_node = 0;
  return cfg;
}

TEST(HeteroCluster, DetectsHomogeneity) {
  sim::Simulator sim;
  Cluster homo(sim, 3, NodeConfig{});
  EXPECT_TRUE(homo.homogeneous());
  sim::Simulator sim2;
  Cluster mixed(sim2, {NodeConfig{}, bigred2_node()});
  EXPECT_FALSE(mixed.homogeneous());
  EXPECT_EQ(mixed.size(), 2);
  EXPECT_EQ(mixed.node_config(1).cpu.name, "BigRed2 AMD Opteron 6212");
}

TEST(HeteroCluster, PerNodeSchedulersDiffer) {
  sim::Simulator sim;
  Cluster mixed(sim, {NodeConfig{}, bigred2_node()});
  const double p_delta =
      mixed.scheduler(0).workload_split(500.0, false).cpu_fraction;
  const double p_br2 =
      mixed.scheduler(1).workload_split(500.0, false).cpu_fraction;
  // The K20 is ~3.4x the C2070: BigRed2's CPU share must be smaller.
  EXPECT_LT(p_br2, p_delta);
}

TEST(HeteroCluster, FasterNodeReceivesMoreInput) {
  sim::Simulator sim;
  Cluster mixed(sim, {NodeConfig{}, bigred2_node()});
  apps::CmeansParams p;
  p.clusters = 10;
  p.max_iterations = 3;
  JobConfig cfg;
  cfg.charge_job_startup = false;
  auto stats = apps::cmeans_prs_modeled(mixed, 400000, 100, p, cfg);
  (void)stats;
  // Capability-weighted split: the BigRed2 node (K20 + 32-core Opteron)
  // must have executed more flops than the Delta node.
  const double delta_flops =
      mixed.node(0).cpu_flops() + mixed.node(0).gpu_flops();
  const double br2_flops =
      mixed.node(1).cpu_flops() + mixed.node(1).gpu_flops();
  EXPECT_GT(br2_flops, 1.5 * delta_flops);
}

TEST(HeteroCluster, ResultsCorrectAcrossMixedNodes) {
  Rng rng(5);
  auto a = data::random_matrix(rng, 150, 40);
  auto x = data::random_vector(rng, 40);
  auto want = apps::gemv_serial(a, x);

  sim::Simulator sim;
  Cluster mixed(sim, {NodeConfig{}, bigred2_node(), cpu_only_node()});
  auto got = apps::gemv_prs(mixed, a, x, JobConfig{});
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-12);
  }
}

TEST(HeteroCluster, GpuOnlyJobSkipsGpulessNodes) {
  sim::Simulator sim;
  Cluster mixed(sim, {NodeConfig{}, cpu_only_node()});
  apps::CmeansParams p;
  p.clusters = 5;
  p.max_iterations = 2;
  JobConfig cfg;
  cfg.use_cpu = false;
  auto stats = apps::cmeans_prs_modeled(mixed, 100000, 50, p, cfg);
  (void)stats;
  EXPECT_GT(mixed.node(0).gpu_flops(), 0.0);
  EXPECT_DOUBLE_EQ(mixed.node(1).cpu_flops(), 0.0);
  EXPECT_DOUBLE_EQ(mixed.node(1).gpu_flops(), 0.0);
}

// -- MIC / Xeon Phi backend -------------------------------------------------------

TEST(MicBackend, SpecIsValidAcceleratorModel) {
  const auto phi = simdev::xeon_phi_5110p();
  EXPECT_EQ(phi.kind, simdev::DeviceKind::kGpu);
  EXPECT_GT(phi.peak_flops, 1e12);
  EXPECT_GT(phi.hardware_queues, 1);
  sim::Simulator sim;
  simdev::GpuDevice dev(sim, phi);  // constructible as an accelerator
  EXPECT_EQ(dev.memory_capacity(), phi.memory_bytes);
}

TEST(MicBackend, SchedulerPlacesWorkOnPhi) {
  NodeConfig phi_node;
  phi_node.gpu = simdev::xeon_phi_5110p();
  sim::Simulator sim;
  Cluster cluster(sim, 1, phi_node);
  const auto split = cluster.scheduler(0).workload_split(500.0, false);
  // Phi at peak ~2 Tflops vs CPU 130 Gflops: ~94% of work offloaded.
  EXPECT_NEAR(split.cpu_fraction, 130.0 / (130.0 + 2022.0), 1e-3);
}

TEST(MicBackend, JobsRunCorrectlyOnPhiNodes) {
  Rng rng(6);
  auto ds = data::generate_blobs(rng, 200, 3, 2, 10.0, 1.0);
  apps::CmeansParams p;
  p.clusters = 2;
  p.max_iterations = 10;
  auto serial = apps::cmeans_serial(ds.points, p);

  NodeConfig phi_node;
  phi_node.gpu = simdev::xeon_phi_5110p();
  sim::Simulator sim;
  Cluster cluster(sim, 2, phi_node);
  auto res = apps::cmeans_prs(cluster, ds.points, p, JobConfig{});
  for (std::size_t i = 0; i < serial.centers.size(); ++i) {
    EXPECT_NEAR(res.centers.storage()[i], serial.centers.storage()[i], 1e-6);
  }
}

// -- DGEMM ------------------------------------------------------------------------

TEST(Dgemm, BlockAiGrowsWithBlockSize) {
  double prev = 0.0;
  for (double rows : {1.0, 8.0, 64.0, 512.0, 4096.0}) {
    const double ai = apps::dgemm_block_ai(rows, 1024, 1024);
    EXPECT_GT(ai, prev);
    prev = ai;
  }
  // Limits: one row ~ 2 flops/element; huge blocks approach
  // 2*N*K/(K+N) ~ N for square shapes.
  EXPECT_LT(apps::dgemm_block_ai(1, 1024, 1024), 2.1);
  EXPECT_GT(apps::dgemm_block_ai(1 << 20, 1024, 1024), 500.0);
}

TEST(Dgemm, PrsMatchesBlockedKernel) {
  Rng rng(7);
  auto a = data::random_matrix(rng, 60, 32);
  auto b = data::random_matrix(rng, 32, 48);
  linalg::MatrixD want(60, 48, 0.0);
  linalg::gemm(1.0, a, b, 0.0, want);

  for (int nodes : {1, 3}) {
    sim::Simulator sim;
    Cluster cluster(sim, nodes, NodeConfig{});
    auto got = apps::dgemm_prs(cluster, a, b, JobConfig{});
    ASSERT_EQ(got.rows(), want.rows());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_NEAR(got.storage()[i], want.storage()[i], 1e-9)
          << nodes << " nodes";
    }
  }
}

TEST(Dgemm, HighAiSendsWorkToGpu) {
  sim::Simulator sim;
  Cluster cluster(sim, 1, NodeConfig{});
  JobConfig cfg;
  cfg.charge_job_startup = false;
  auto stats = apps::dgemm_prs_modeled(cluster, 16384, 4096, 4096, cfg);
  EXPECT_GT(stats.gpu_flops, 4.0 * stats.cpu_flops);
}

TEST(Dgemm, ShapeMismatchThrows) {
  sim::Simulator sim;
  Cluster cluster(sim, 1, NodeConfig{});
  linalg::MatrixD a(4, 3), b(4, 4);
  EXPECT_THROW(apps::dgemm_prs(cluster, a, b, JobConfig{}), InvalidArgument);
}

TEST(Dgemm, StreamsRecommendedForBlas3) {
  // BLAS3's size-dependent AI should trigger multi-stream execution on
  // partitions big enough to hold several MinBs blocks — on a Hyper-Q
  // device. On Fermi (one hardware work queue) the same analysis must be
  // capped at a single stream (§III.B.3.b).
  auto state = std::make_shared<apps::DgemmState>();
  auto spec = apps::dgemm_spec(state, 4096, 4096);
  roofline::AiOfBlock ai = [&spec](double b) {
    return spec.ai_of_block_or_default(b);
  };
  sim::Simulator s1;
  Cluster kepler(s1, 1, bigred2_node());
  EXPECT_GT(kepler.scheduler(0).recommended_streams(64e6, ai, 0.2), 1);

  sim::Simulator s2;
  Cluster fermi(s2, 1, NodeConfig{});
  EXPECT_EQ(fermi.scheduler(0).recommended_streams(64e6, ai, 0.2), 1);
}

}  // namespace
}  // namespace prs::core
