// Unit tests for the simulated interconnect: p2p timing and ordering,
// collectives correctness, cost scaling, and the Task<T> coroutine type.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simnet/fabric.hpp"
#include "simtime/process.hpp"

namespace prs::simnet {
namespace {

using sim::Simulator;

FabricSpec fast_fabric() {
  FabricSpec s;
  s.link_bandwidth = 100.0;  // bytes/s — easy numbers
  s.latency = 0.5;
  return s;
}

// -- Task<T> ---------------------------------------------------------------

sim::Task<int> add_later(Simulator& sim, int a, int b) {
  co_await sim::delay(sim, 1.0);
  co_return a + b;
}

sim::Task<int> nested(Simulator& sim) {
  const int x = co_await add_later(sim, 1, 2);
  const int y = co_await add_later(sim, x, 10);
  co_return y;
}

sim::Process drive_task(Simulator& sim, int& out, double& at) {
  out = co_await nested(sim);
  at = sim.now();
}

TEST(Task, NestedTasksComposeAndReturnValues) {
  Simulator sim;
  int out = 0;
  double at = -1;
  sim.spawn(drive_task(sim, out, at));
  sim.run();
  EXPECT_EQ(out, 13);
  EXPECT_DOUBLE_EQ(at, 2.0);
}

sim::Task<int> failing_task(Simulator& sim) {
  co_await sim::delay(sim, 0.5);
  throw InvalidArgument("task failure");
}

sim::Process drive_failing(Simulator& sim, bool& caught) {
  try {
    (void)co_await failing_task(sim);
  } catch (const InvalidArgument&) {
    caught = true;
  }
}

TEST(Task, ExceptionsPropagateToAwaiter) {
  Simulator sim;
  bool caught = false;
  sim.spawn(drive_failing(sim, caught));
  sim.run();
  EXPECT_TRUE(caught);
}

// -- point to point ------------------------------------------------------------

sim::Process sender(Simulator& sim, Communicator& c, int dst, double bytes,
                    int value) {
  c.send(dst, /*tag=*/1, Message{bytes, value});
  (void)sim;
  co_return;
}

sim::Process receiver(Simulator& sim, Communicator& c, int src,
                      std::vector<std::pair<int, double>>& log) {
  Message m = co_await c.recv(src, /*tag=*/1);
  log.emplace_back(m.payload_as<int>(), sim.now());
}

TEST(Fabric, PointToPointDeliversPayloadWithWireCost) {
  Simulator sim;
  Fabric fab(sim, 2, fast_fabric());
  std::vector<std::pair<int, double>> log;
  sim.spawn(sender(sim, fab.comm(0), 1, 100.0, 77));
  sim.spawn(receiver(sim, fab.comm(1), 0, log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].first, 77);
  // 1 s egress + 0.5 s latency + 1 s ingress.
  EXPECT_DOUBLE_EQ(log[0].second, 2.5);
}

TEST(Fabric, SelfSendIsFreeLoopback) {
  Simulator sim;
  Fabric fab(sim, 2, fast_fabric());
  std::vector<std::pair<int, double>> log;
  sim.spawn(sender(sim, fab.comm(0), 0, 1000.0, 5));
  sim.spawn(receiver(sim, fab.comm(0), 0, log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0].second, 0.0);
  EXPECT_DOUBLE_EQ(fab.bytes_sent(), 0.0);
}

TEST(Fabric, EgressContentionSerializesSends) {
  Simulator sim;
  Fabric fab(sim, 3, fast_fabric());
  std::vector<std::pair<int, double>> log1, log2;
  // Rank 0 sends 100 bytes to both 1 and 2: second send queues on egress.
  sim.spawn([](Simulator&, Communicator& c) -> sim::Process {
    c.send(1, 1, Message{100.0, 1});
    c.send(2, 1, Message{100.0, 2});
    co_return;
  }(sim, fab.comm(0)));
  sim.spawn(receiver(sim, fab.comm(1), 0, log1));
  sim.spawn(receiver(sim, fab.comm(2), 0, log2));
  sim.run();
  ASSERT_EQ(log1.size(), 1u);
  ASSERT_EQ(log2.size(), 1u);
  EXPECT_DOUBLE_EQ(log1[0].second, 2.5);
  EXPECT_DOUBLE_EQ(log2[0].second, 3.5);  // +1 s queued behind first
}

TEST(Fabric, MessagesBetweenSamePairStayOrdered) {
  Simulator sim;
  Fabric fab(sim, 2, fast_fabric());
  std::vector<int> got;
  sim.spawn([](Simulator&, Communicator& c) -> sim::Process {
    for (int i = 0; i < 5; ++i) c.send(1, 7, Message{10.0, i});
    co_return;
  }(sim, fab.comm(0)));
  sim.spawn([](Simulator&, Communicator& c,
               std::vector<int>& out) -> sim::Process {
    for (int i = 0; i < 5; ++i) {
      Message m = co_await c.recv(0, 7);
      out.push_back(m.payload_as<int>());
    }
  }(sim, fab.comm(1), got));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

// -- collectives -----------------------------------------------------------------

/// Runs `body` as an SPMD process on every rank and returns the fabric time.
template <typename Body>
double run_spmd(int nodes, FabricSpec spec, Body body) {
  Simulator sim;
  Fabric fab(sim, nodes, spec);
  for (int r = 0; r < nodes; ++r) {
    sim.spawn(body(sim, fab.comm(r)));
  }
  sim.run();
  return sim.now();
}

TEST(Collectives, BroadcastReachesEveryRank) {
  for (int nodes : {1, 2, 3, 4, 5, 8}) {
    Simulator sim;
    Fabric fab(sim, nodes, fast_fabric());
    std::vector<int> got(static_cast<std::size_t>(nodes), -1);
    for (int r = 0; r < nodes; ++r) {
      sim.spawn([](Simulator&, Communicator& c, std::vector<int>& out,
                   int rank) -> sim::Process {
        // Named message: see the GCC-12 temporaries rule in process.hpp.
        Message mine = rank == 0 ? Message{40.0, 123} : Message{};
        Message m = co_await c.broadcast(/*root=*/0, std::move(mine),
                                         /*tag=*/3);
        out[static_cast<std::size_t>(rank)] = m.payload_as<int>();
      }(sim, fab.comm(r), got, r));
    }
    sim.run();
    for (int r = 0; r < nodes; ++r) {
      EXPECT_EQ(got[static_cast<std::size_t>(r)], 123) << "rank " << r
                                                       << " of " << nodes;
    }
  }
}

TEST(Collectives, BroadcastFromNonZeroRoot) {
  const int nodes = 6, root = 4;
  Simulator sim;
  Fabric fab(sim, nodes, fast_fabric());
  std::vector<int> got(nodes, -1);
  for (int r = 0; r < nodes; ++r) {
    sim.spawn([](Simulator&, Communicator& c, std::vector<int>& out, int rank,
                 int rt) -> sim::Process {
      Message mine = rank == rt ? Message{8.0, 55} : Message{};
      Message m = co_await c.broadcast(rt, std::move(mine), 9);
      out[static_cast<std::size_t>(rank)] = m.payload_as<int>();
    }(sim, fab.comm(r), got, r, root));
  }
  sim.run();
  for (int v : got) EXPECT_EQ(v, 55);
}

Combiner int_sum() {
  return [](Message a, Message b) {
    const int av = a.has_payload() ? a.payload_as<int>() : 0;
    const int bv = b.has_payload() ? b.payload_as<int>() : 0;
    return Message{std::max(a.bytes, b.bytes), av + bv};
  };
}

TEST(Collectives, ReduceSumsContributionsOnRoot) {
  for (int nodes : {1, 2, 4, 7}) {
    Simulator sim;
    Fabric fab(sim, nodes, fast_fabric());
    int root_total = -1;
    for (int r = 0; r < nodes; ++r) {
      sim.spawn([](Simulator&, Communicator& c, int rank,
                   int& out) -> sim::Process {
        Message mine{8.0, rank + 1};
        Combiner combine = int_sum();
        Message m =
            co_await c.reduce(0, std::move(mine), std::move(combine), 4);
        if (rank == 0) out = m.payload_as<int>();
      }(sim, fab.comm(r), r, root_total));
    }
    sim.run();
    EXPECT_EQ(root_total, nodes * (nodes + 1) / 2) << nodes << " nodes";
  }
}

TEST(Collectives, AllreduceGivesEveryRankTheTotal) {
  const int nodes = 5;
  Simulator sim;
  Fabric fab(sim, nodes, fast_fabric());
  std::vector<int> got(nodes, -1);
  for (int r = 0; r < nodes; ++r) {
    sim.spawn([](Simulator&, Communicator& c, std::vector<int>& out,
                 int rank) -> sim::Process {
      Message mine{8.0, rank + 1};
      Combiner combine = int_sum();
      Message m =
          co_await c.allreduce(std::move(mine), std::move(combine), 6);
      out[static_cast<std::size_t>(rank)] = m.payload_as<int>();
    }(sim, fab.comm(r), got, r));
  }
  sim.run();
  for (int v : got) EXPECT_EQ(v, 15);
}

TEST(Collectives, GatherCollectsInRankOrder) {
  const int nodes = 4;
  Simulator sim;
  Fabric fab(sim, nodes, fast_fabric());
  std::vector<int> collected;
  for (int r = 0; r < nodes; ++r) {
    sim.spawn([](Simulator&, Communicator& c, int rank,
                 std::vector<int>& out) -> sim::Process {
      Message mine{8.0, rank * 10};
      auto msgs = co_await c.gather(0, std::move(mine), 11);
      if (rank == 0) {
        for (auto& m : msgs) out.push_back(m.payload_as<int>());
      }
    }(sim, fab.comm(r), r, collected));
  }
  sim.run();
  EXPECT_EQ(collected, (std::vector<int>{0, 10, 20, 30}));
}

TEST(Collectives, AllToAllTransposesMessages) {
  const int nodes = 3;
  Simulator sim;
  Fabric fab(sim, nodes, fast_fabric());
  std::vector<std::vector<int>> got(nodes);
  for (int r = 0; r < nodes; ++r) {
    sim.spawn([](Simulator&, Communicator& c, int rank,
                 std::vector<int>& out) -> sim::Process {
      std::vector<Message> outbound;
      for (int dst = 0; dst < c.size(); ++dst) {
        outbound.push_back(Message{8.0, rank * 100 + dst});
      }
      auto in = co_await c.all_to_all(std::move(outbound), 13);
      for (auto& m : in) out.push_back(m.payload_as<int>());
    }(sim, fab.comm(r), r, got[static_cast<std::size_t>(r)]));
  }
  sim.run();
  // Rank r receives src*100 + r from each src.
  for (int r = 0; r < nodes; ++r) {
    for (int src = 0; src < nodes; ++src) {
      EXPECT_EQ(got[static_cast<std::size_t>(r)][static_cast<std::size_t>(src)],
                src * 100 + r);
    }
  }
}

TEST(Collectives, BarrierSynchronizesRanks) {
  const int nodes = 4;
  Simulator sim;
  Fabric fab(sim, nodes, fast_fabric());
  std::vector<double> after(nodes, -1);
  for (int r = 0; r < nodes; ++r) {
    sim.spawn([](Simulator& s, Communicator& c, int rank,
                 std::vector<double>& out) -> sim::Process {
      // Stagger arrivals: rank r arrives at t = r seconds.
      co_await sim::delay(s, static_cast<double>(rank));
      co_await c.barrier(17);
      out[static_cast<std::size_t>(rank)] = s.now();
    }(sim, fab.comm(r), r, after));
  }
  sim.run();
  // Nobody may leave the barrier before the last arrival at t = 3.
  for (double t : after) EXPECT_GE(t, 3.0);
}

TEST(Collectives, ReduceCostGrowsLogarithmically) {
  // Binomial tree: critical path ~ ceil(log2 P) hops. Measure completion
  // time of a pure reduce for growing cluster sizes and check that the cost
  // of 8 nodes is ~3 hops vs 1 hop for 2 nodes (not 7x like a linear chain).
  auto reduce_time = [](int nodes) {
    Simulator sim;
    Fabric fab(sim, nodes, fast_fabric());
    for (int r = 0; r < nodes; ++r) {
      sim.spawn([](Simulator&, Communicator& c, int rank) -> sim::Process {
        (void)rank;
        Message mine{100.0, 1};
        Combiner combine = int_sum();
        (void)co_await c.reduce(0, std::move(mine), std::move(combine), 2);
      }(sim, fab.comm(r), r));
    }
    sim.run();
    return sim.now();
  };
  const double t2 = reduce_time(2);
  const double t8 = reduce_time(8);
  EXPECT_GT(t8, t2);
  EXPECT_LE(t8, 4.0 * t2);  // log-ish, not linear in P
}

TEST(Collectives, MismatchedAllToAllSizeThrows) {
  Simulator sim;
  Fabric fab(sim, 3, fast_fabric());
  bool threw = false;
  sim.spawn([](Simulator&, Communicator& c, bool& t) -> sim::Process {
    try {
      std::vector<Message> outbound(2);
      (void)co_await c.all_to_all(std::move(outbound), 1);
    } catch (const InvalidArgument&) {
      t = true;
    }
  }(sim, fab.comm(0), threw));
  sim.run();
  EXPECT_TRUE(threw);
}

// -- edge cases (behavior the retransmit layer relies on) -------------------

TEST(Fabric, ZeroByteMessageCostsOnlyLatency) {
  Simulator sim;
  Fabric fab(sim, 2, fast_fabric());
  std::vector<std::pair<int, double>> log;
  sim.spawn(sender(sim, fab.comm(0), 1, /*bytes=*/0.0, 9));
  sim.spawn(receiver(sim, fab.comm(1), 0, log));
  sim.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].first, 9);
  EXPECT_DOUBLE_EQ(log[0].second, 0.5);  // no wire time, pure latency
}

TEST(Fabric, InterleavedTagsResolveToMatchingReceivers) {
  Simulator sim;
  Fabric fab(sim, 2, fast_fabric());
  std::vector<int> tag1, tag2;
  sim.spawn([](Simulator&, Communicator& c) -> sim::Process {
    c.send(1, 1, Message{10.0, 100});
    c.send(1, 2, Message{10.0, 200});
    c.send(1, 1, Message{10.0, 101});
    c.send(1, 2, Message{10.0, 201});
    co_return;
  }(sim, fab.comm(0)));
  // The tag-2 receiver is spawned first but must not steal tag-1 traffic.
  sim.spawn([](Simulator&, Communicator& c,
               std::vector<int>& out) -> sim::Process {
    for (int i = 0; i < 2; ++i) {
      Message m = co_await c.recv(0, 2);
      out.push_back(m.payload_as<int>());
    }
  }(sim, fab.comm(1), tag2));
  sim.spawn([](Simulator&, Communicator& c,
               std::vector<int>& out) -> sim::Process {
    for (int i = 0; i < 2; ++i) {
      Message m = co_await c.recv(0, 1);
      out.push_back(m.payload_as<int>());
    }
  }(sim, fab.comm(1), tag1));
  sim.run();
  EXPECT_EQ(tag1, (std::vector<int>{100, 101}));
  EXPECT_EQ(tag2, (std::vector<int>{200, 201}));
}

TEST(Fabric, SelfSendWithInterleavedTagsAndZeroBytes) {
  Simulator sim;
  Fabric fab(sim, 1, fast_fabric());
  std::vector<int> got;
  sim.spawn([](Simulator&, Communicator& c,
               std::vector<int>& out) -> sim::Process {
    c.send(0, 5, Message{0.0, 1});
    c.send(0, 6, Message{0.0, 2});
    // Receive in the opposite tag order: loopback must match by tag, not
    // arrival order.
    Message b = co_await c.recv(0, 6);
    Message a = co_await c.recv(0, 5);
    out.push_back(b.payload_as<int>());
    out.push_back(a.payload_as<int>());
  }(sim, fab.comm(0), got));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{2, 1}));
  EXPECT_DOUBLE_EQ(fab.bytes_sent(), 0.0);  // loopback never hits the wire
}

TEST(Fabric, RankValidation) {
  Simulator sim;
  Fabric fab(sim, 2, fast_fabric());
  EXPECT_THROW(fab.comm(2), InvalidArgument);
  EXPECT_THROW(fab.comm(-1), InvalidArgument);
  EXPECT_THROW(fab.comm(0).send(5, 1, Message{}), InvalidArgument);
}

}  // namespace
}  // namespace prs::simnet
