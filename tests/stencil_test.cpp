// Tests for the Jacobi stencil app: PDE correctness properties (maximum
// principle, convergence to the harmonic solution), serial/PRS equivalence,
// and the §V scheduling claim (middle-range AI -> both backends contribute
// non-trivially).
#include <gtest/gtest.h>

#include <cmath>

#include "apps/stencil.hpp"
#include "core/cluster.hpp"

namespace prs::apps {
namespace {

using core::Cluster;
using core::JobConfig;
using core::NodeConfig;

/// Grid with hot left edge (1.0), cold elsewhere on the boundary.
linalg::MatrixD hot_edge_grid(std::size_t rows, std::size_t cols) {
  linalg::MatrixD g(rows, cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) g(r, 0) = 1.0;
  return g;
}

TEST(StencilSerial, OneStepAveragesNeighbors) {
  linalg::MatrixD g(3, 3, 0.0);
  g(0, 1) = 4.0;  // north neighbour of the single interior cell
  linalg::MatrixD out(3, 3);
  const double residual = jacobi_step(g, out);
  EXPECT_DOUBLE_EQ(out(1, 1), 1.0);  // (4+0+0+0)/4
  EXPECT_DOUBLE_EQ(residual, 1.0);
  // Boundaries unchanged.
  EXPECT_DOUBLE_EQ(out(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(out(2, 2), 0.0);
}

TEST(StencilSerial, MaximumPrincipleHolds) {
  // Interior values of the harmonic solution stay within boundary extremes.
  auto g = hot_edge_grid(12, 12);
  StencilParams p;
  p.max_iterations = 500;
  p.epsilon = 1e-9;
  auto res = stencil_serial(g, p);
  for (std::size_t r = 1; r + 1 < 12; ++r) {
    for (std::size_t c = 1; c + 1 < 12; ++c) {
      EXPECT_GE(res.grid(r, c), 0.0);
      EXPECT_LE(res.grid(r, c), 1.0);
    }
  }
  // Cells near the hot edge are hotter than cells near the cold edge.
  EXPECT_GT(res.grid(6, 1), res.grid(6, 10));
}

TEST(StencilSerial, ConvergesToLinearProfileIn1DLikeStrip) {
  // A tall narrow strip with hot left/cold right converges to a linear
  // temperature profile across columns (the 1-D harmonic function).
  const std::size_t rows = 40, cols = 10;
  linalg::MatrixD g(rows, cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) g(r, 0) = 1.0;
  // Make top/bottom boundaries follow the same linear profile so the 2-D
  // solution is exactly linear.
  for (std::size_t c = 0; c < cols; ++c) {
    const double v =
        1.0 - static_cast<double>(c) / static_cast<double>(cols - 1);
    g(0, c) = v;
    g(rows - 1, c) = v;
  }
  StencilParams p;
  p.max_iterations = 4000;
  p.epsilon = 1e-12;
  auto res = stencil_serial(g, p);
  for (std::size_t c = 0; c < cols; ++c) {
    const double want =
        1.0 - static_cast<double>(c) / static_cast<double>(cols - 1);
    EXPECT_NEAR(res.grid(rows / 2, c), want, 1e-6) << "col " << c;
  }
}

TEST(StencilSerial, ResidualDecreasesMonotonically) {
  auto g = hot_edge_grid(16, 16);
  double prev = 1e300;
  for (int iters = 1; iters <= 6; ++iters) {
    StencilParams p;
    p.max_iterations = iters;
    p.epsilon = 0.0;
    auto res = stencil_serial(g, p);
    EXPECT_LE(res.residual, prev * (1 + 1e-12));
    prev = res.residual;
  }
}

TEST(StencilSerial, RejectsTinyGrids) {
  linalg::MatrixD g(2, 5);
  StencilParams p;
  EXPECT_THROW(stencil_serial(g, p), InvalidArgument);
}

TEST(StencilPrs, MatchesSerialExactly) {
  auto g = hot_edge_grid(20, 15);
  StencilParams p;
  p.max_iterations = 30;
  p.epsilon = 0.0;
  auto serial = stencil_serial(g, p);
  for (int nodes : {1, 3}) {
    sim::Simulator sim;
    Cluster cluster(sim, nodes, NodeConfig{});
    auto prs = stencil_prs(cluster, g, p, JobConfig{});
    ASSERT_EQ(prs.grid.rows(), serial.grid.rows());
    for (std::size_t i = 0; i < serial.grid.size(); ++i) {
      EXPECT_DOUBLE_EQ(prs.grid.storage()[i], serial.grid.storage()[i])
          << nodes << " nodes, cell " << i;
    }
    EXPECT_EQ(prs.iterations, serial.iterations);
    EXPECT_NEAR(prs.residual, serial.residual, 1e-15);
  }
}

TEST(StencilPrs, DynamicSchedulingMatchesToo) {
  auto g = hot_edge_grid(18, 12);
  StencilParams p;
  p.max_iterations = 20;
  p.epsilon = 0.0;
  auto serial = stencil_serial(g, p);
  sim::Simulator sim;
  Cluster cluster(sim, 2, NodeConfig{});
  JobConfig cfg;
  cfg.scheduling = core::SchedulingMode::kDynamic;
  auto prs = stencil_prs(cluster, g, p, cfg);
  for (std::size_t i = 0; i < serial.grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(prs.grid.storage()[i], serial.grid.storage()[i]);
  }
}

TEST(StencilScheduling, MiddleAiGivesBothBackendsNontrivialShares) {
  // §V: PDE-class apps sit between GEMV (97% CPU) and C-means (11% CPU) —
  // both devices make "the non-trivial contribution".
  sim::Simulator sim;
  Cluster cluster(sim, 1, NodeConfig{});
  const double p = cluster.scheduler(0)
                       .workload_split(stencil_arithmetic_intensity(),
                                       /*gpu_staged=*/false)
                       .cpu_fraction;
  EXPECT_GT(p, 0.12);
  EXPECT_LT(p, 0.60);
}

TEST(StencilScheduling, RuntimePlacementFollowsModel) {
  auto g = hot_edge_grid(300, 200);
  StencilParams p;
  p.max_iterations = 5;
  p.epsilon = 0.0;
  sim::Simulator sim;
  Cluster cluster(sim, 1, NodeConfig{});
  core::JobStats stats;
  (void)stencil_prs(cluster, g, p, JobConfig{}, &stats);
  const double share = stats.cpu_flops / stats.total_flops();
  const double want = cluster.scheduler(0)
                          .workload_split(stencil_arithmetic_intensity(),
                                          false)
                          .cpu_fraction;
  EXPECT_NEAR(share, want, 0.05);
}


// -- Wavefront halo graph --------------------------------------------------------

TEST(StencilHaloGraph, MatchesSerialExactlyAtEveryDepth) {
  auto g = hot_edge_grid(24, 16);
  StencilParams p;
  p.max_iterations = 40;  // spans two 32-iteration super-windows
  p.epsilon = 0.0;
  auto serial = stencil_serial(g, p);
  for (int nodes : {1, 3}) {
    for (int depth : {2, 4}) {
      sim::Simulator sim;
      Cluster cluster(sim, nodes, NodeConfig{});
      JobConfig cfg;
      cfg.engine = core::ExecEngine::kGraph;
      cfg.pipeline_depth = depth;
      auto prs = stencil_prs(cluster, g, p, cfg);
      ASSERT_EQ(prs.grid.rows(), serial.grid.rows());
      for (std::size_t i = 0; i < serial.grid.size(); ++i) {
        EXPECT_DOUBLE_EQ(prs.grid.storage()[i], serial.grid.storage()[i])
            << nodes << " nodes, depth " << depth << ", cell " << i;
      }
      EXPECT_EQ(prs.iterations, serial.iterations);
      EXPECT_NEAR(prs.residual, serial.residual, 1e-15);
    }
  }
}

TEST(StencilHaloGraph, ConvergenceStopsAtTheSameIteration) {
  // Loose epsilon so the run converges mid-window: the retire node must
  // stop the wavefront at exactly the serial iteration count even with
  // depth sweeps already in flight.
  auto g = hot_edge_grid(16, 12);
  StencilParams p;
  p.max_iterations = 200;
  p.epsilon = 1e-3;
  auto serial = stencil_serial(g, p);
  ASSERT_LT(serial.iterations, p.max_iterations);  // actually converges
  sim::Simulator sim;
  Cluster cluster(sim, 2, NodeConfig{});
  JobConfig cfg;
  cfg.engine = core::ExecEngine::kGraph;
  cfg.pipeline_depth = 4;
  auto prs = stencil_prs(cluster, g, p, cfg);
  EXPECT_EQ(prs.iterations, serial.iterations);
  EXPECT_NEAR(prs.residual, serial.residual, 1e-15);
  for (std::size_t i = 0; i < serial.grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(prs.grid.storage()[i], serial.grid.storage()[i]);
  }
}

TEST(StencilHaloGraph, OverlapBeatsTheStageBarrier) {
  // The payoff claim: with halo dependencies instead of per-iteration
  // global barriers, the same work finishes in less virtual time.
  auto g = hot_edge_grid(64, 48);
  StencilParams p;
  p.max_iterations = 30;
  p.epsilon = 0.0;
  double t_stages = 0.0, t_graph = 0.0;
  {
    sim::Simulator sim;
    Cluster cluster(sim, 2, NodeConfig{});
    core::JobStats stats;
    (void)stencil_prs(cluster, g, p, JobConfig{}, &stats);
    t_stages = stats.elapsed;
  }
  {
    sim::Simulator sim;
    Cluster cluster(sim, 2, NodeConfig{});
    JobConfig cfg;
    cfg.engine = core::ExecEngine::kGraph;
    cfg.pipeline_depth = 4;
    core::JobStats stats;
    (void)stencil_prs(cluster, g, p, cfg, &stats);
    t_graph = stats.elapsed;
  }
  ASSERT_GT(t_stages, 0.0);
  ASSERT_GT(t_graph, 0.0);
  EXPECT_LT(t_graph, t_stages);
}

}  // namespace
}  // namespace prs::apps
