// Additional edge-case coverage for the simulation engine and network
// layer: Task<T> composition corners, when_all with pre-resolved inputs,
// channel fairness, bandwidth estimation under queueing, concurrent
// collectives on disjoint tags, and congestion timing.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/job_runner.hpp"
#include "simnet/fabric.hpp"
#include "simtime/channel.hpp"
#include "simtime/future.hpp"
#include "simtime/process.hpp"
#include "simtime/resource.hpp"
#include "simtime/task.hpp"

namespace prs::sim {
namespace {

// -- Task<T> corners ------------------------------------------------------------

Task<int> immediate(int v) { co_return v; }

Process drive_immediate(Simulator& sim, std::vector<int>& out) {
  // A task that never suspends still goes through symmetric transfer.
  const int a = co_await immediate(7);
  const int b = co_await immediate(a + 1);
  out.push_back(b);
  (void)sim;
}

TEST(TaskEdge, NonSuspendingTasksComplete) {
  Simulator sim;
  std::vector<int> out;
  sim.spawn(drive_immediate(sim, out));
  sim.run();
  EXPECT_EQ(out, (std::vector<int>{8}));
}

Task<std::vector<int>> collect(Simulator& sim, int n) {
  std::vector<int> v;
  for (int i = 0; i < n; ++i) {
    co_await delay(sim, 0.1);
    v.push_back(i);
  }
  co_return v;
}

Process drive_collect(Simulator& sim, std::size_t& size, double& at) {
  auto v = co_await collect(sim, 5);
  size = v.size();
  at = sim.now();
}

TEST(TaskEdge, MoveOnlyishResultsTransferCorrectly) {
  Simulator sim;
  std::size_t size = 0;
  double at = 0;
  sim.spawn(drive_collect(sim, size, at));
  sim.run();
  EXPECT_EQ(size, 5u);
  EXPECT_DOUBLE_EQ(at, 0.5);
}

TEST(TaskEdge, UnawaitedTaskIsDestroyedWithoutRunning) {
  Simulator sim;
  bool ran = false;
  {
    auto t = [](Simulator& s, bool& flag) -> Task<int> {
      flag = true;
      co_await delay(s, 1.0);
      co_return 1;
    }(sim, ran);
    // destroyed unawaited: lazy start means the body never runs
  }
  sim.run();
  EXPECT_FALSE(ran);
}

// -- when_all corners --------------------------------------------------------------

TEST(WhenAllEdge, MixOfResolvedAndPending) {
  Simulator sim;
  Promise<int> a(sim), b(sim);
  a.set_value(1);  // resolved before when_all
  std::vector<Future<int>> fs{a.get_future(), b.get_future()};
  auto all = when_all(sim, fs);
  EXPECT_FALSE(all.ready());
  sim.schedule_at(2.0, [&] { b.set_value(2); });
  sim.run();
  EXPECT_TRUE(all.ready());
}

TEST(WhenAllEdge, DuplicateFuturesCountSeparately) {
  Simulator sim;
  Promise<int> p(sim);
  std::vector<Future<int>> fs{p.get_future(), p.get_future(),
                              p.get_future()};
  auto all = when_all(sim, fs);
  p.set_value(5);
  sim.run();
  EXPECT_TRUE(all.ready());
}

// -- channel fairness ----------------------------------------------------------------

Process greedy_consumer(Simulator&, Channel<int>& ch, std::vector<int>& got) {
  for (;;) {
    auto v = co_await ch.recv();
    if (!v) break;
    got.push_back(*v);
  }
}

TEST(ChannelEdge, TwoConsumersAlternateOnHandoff) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> a, b;
  sim.spawn(greedy_consumer(sim, ch, a));
  sim.spawn(greedy_consumer(sim, ch, b));
  sim.spawn([](Simulator& s, Channel<int>& c) -> Process {
    for (int i = 0; i < 10; ++i) {
      co_await delay(s, 0.1);  // one at a time: both consumers wait
      c.send(i);
    }
    c.close();
  }(sim, ch));
  sim.run();
  // Direct handoff to the longest-waiting consumer: strict alternation.
  ASSERT_EQ(a.size(), 5u);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(a, (std::vector<int>{0, 2, 4, 6, 8}));
  EXPECT_EQ(b, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(ChannelEdge, CloseIsIdempotentAndDrainsBuffered) {
  Simulator sim;
  Channel<int> ch(sim);
  ch.send(1);
  ch.close();
  ch.close();  // idempotent
  std::vector<int> got;
  sim.spawn(greedy_consumer(sim, ch, got));
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1}));
}

// -- bandwidth estimation under queueing ----------------------------------------------

Process queue_transfers(Simulator&, BandwidthLink& link, double bytes,
                        int count, Promise<Unit> done) {
  for (int i = 0; i < count; ++i) {
    auto t = link.transfer(bytes);
    if (i + 1 == count) co_await t;
  }
  done.set_value(Unit{});
}

TEST(BandwidthEdge, EstimateAccountsForQueuedWork) {
  Simulator sim;
  BandwidthLink link(sim, 100.0, 0.0);
  // Enqueue 300 bytes of work (3 s of service) without awaiting.
  (void)link.transfer(100.0);
  (void)link.transfer(200.0);
  // A new 100-byte transfer completes only after the queue drains.
  EXPECT_DOUBLE_EQ(link.estimate_completion(100.0), 4.0);
}

TEST(BandwidthEdge, UtilizationAccumulatesAcrossTransfers) {
  Simulator sim;
  BandwidthLink link(sim, 100.0, 0.0);
  Promise<Unit> done(sim);
  sim.spawn(queue_transfers(sim, link, 50.0, 4, done));
  sim.run();
  EXPECT_DOUBLE_EQ(link.busy_time(), 2.0);
  EXPECT_DOUBLE_EQ(link.bytes_transferred(), 200.0);
}

}  // namespace
}  // namespace prs::sim

namespace prs::simnet {
namespace {

using sim::Simulator;

// -- concurrent collectives on disjoint tags -------------------------------------------

TEST(CollectiveEdge, DisjointTagCollectivesDoNotInterfere) {
  const int nodes = 4;
  Simulator simu;
  Fabric fab(simu, nodes, FabricSpec{1000.0, 0.0});
  std::vector<int> sums(nodes, 0), prods(nodes, 1);
  for (int r = 0; r < nodes; ++r) {
    simu.spawn([](Simulator&, Communicator& c, int rank, std::vector<int>& s,
                  std::vector<int>& p) -> sim::Process {
      // Two allreduces in flight from the same rank on different tags.
      Combiner add = [](Message a, Message b) {
        return Message{8.0, a.payload_as<int>() + b.payload_as<int>()};
      };
      Combiner mul = [](Message a, Message b) {
        return Message{8.0, a.payload_as<int>() * b.payload_as<int>()};
      };
      Message m1{8.0, rank + 1};
      Message m2{8.0, rank + 1};
      auto t1 = c.allreduce(std::move(m1), std::move(add), 10);
      Message r1 = co_await t1;
      auto t2 = c.allreduce(std::move(m2), std::move(mul), 20);
      Message r2 = co_await t2;
      s[static_cast<std::size_t>(rank)] = r1.payload_as<int>();
      p[static_cast<std::size_t>(rank)] = r2.payload_as<int>();
    }(simu, fab.comm(r), r, sums, prods));
  }
  simu.run();
  for (int r = 0; r < nodes; ++r) {
    EXPECT_EQ(sums[static_cast<std::size_t>(r)], 10);   // 1+2+3+4
    EXPECT_EQ(prods[static_cast<std::size_t>(r)], 24);  // 1*2*3*4
  }
}

TEST(CollectiveEdge, AllToAllCostScalesWithMessageSize) {
  auto makespan = [](double bytes) {
    const int nodes = 4;
    Simulator simu;
    Fabric fab(simu, nodes, FabricSpec{1000.0, 0.0});
    for (int r = 0; r < nodes; ++r) {
      simu.spawn([](Simulator&, Communicator& c,
                    double sz) -> sim::Process {
        std::vector<Message> out(static_cast<std::size_t>(c.size()));
        for (auto& m : out) m.bytes = sz;
        (void)co_await c.all_to_all(std::move(out), 5);
      }(simu, fab.comm(r), bytes));
    }
    simu.run();
    return simu.now();
  };
  const double t1 = makespan(100.0);
  const double t4 = makespan(400.0);
  EXPECT_NEAR(t4 / t1, 4.0, 0.2);  // bandwidth-bound regime
}

TEST(CollectiveEdge, SingleNodeCollectivesAreInstant) {
  Simulator simu;
  Fabric fab(simu, 1, FabricSpec{1000.0, 1.0});
  bool done = false;
  simu.spawn([](Simulator&, Communicator& c, bool& flag) -> sim::Process {
    Combiner keep = [](Message a, Message) { return a; };
    Message mine{1e9, 42};
    Message r = co_await c.allreduce(std::move(mine), std::move(keep), 3);
    EXPECT_EQ(r.payload_as<int>(), 42);
    std::vector<Message> out(1);
    out[0] = Message{1e9, 1};
    (void)co_await c.all_to_all(std::move(out), 4);
    flag = true;
  }(simu, fab.comm(0), done));
  simu.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(simu.now(), 0.0);  // loopback costs nothing
}

}  // namespace
}  // namespace prs::simnet

// -- Task-graph engine edges ----------------------------------------------------
//
// Regression: a functional map closure throwing mid-stage must surface the
// FIRST failure immediately — at the throwing block's completion time, with
// the graph node named in the error — instead of an anonymous error after
// the full stage barrier (the old behaviour let every sibling block finish
// and lost the failing task's identity).

namespace prs::core {
namespace {

MapReduceSpec<int, int> counting_spec(bool poisoned) {
  MapReduceSpec<int, int> spec;
  spec.name = "edge-count";
  spec.cpu_map = [poisoned](const InputSlice& s, Emitter<int, int>& e) {
    for (std::size_t i = s.begin; i < s.end; ++i) {
      if (poisoned && i == 0) throw std::runtime_error("poison item 0");
      e.emit(static_cast<int>(i % 7), 1);
    }
  };
  spec.combine = [](const int& a, const int& b) { return a + b; };
  spec.cpu_flops_per_item = 1000.0;
  spec.gpu_flops_per_item = 1000.0;
  spec.item_bytes = 8.0;
  return spec;
}

TEST(GraphEngineEdge, MapClosureThrowPropagatesFirstFailureImmediately) {
  // Fault-free reference run: total virtual time of the whole job.
  double t_clean = 0.0;
  {
    sim::Simulator simu;
    Cluster cluster(simu, 2, NodeConfig{});
    JobConfig cfg;
    cfg.engine = ExecEngine::kGraph;
    auto res = run_job(cluster, counting_spec(false), cfg, 4096);
    EXPECT_EQ(res.output.size(), 7u);
    t_clean = res.stats.elapsed;
    ASSERT_GT(t_clean, 0.0);
  }

  // Poisoned run: item 0 lives in rank 0's first CPU map block.
  sim::Simulator simu;
  Cluster cluster(simu, 2, NodeConfig{});
  JobConfig cfg;
  cfg.engine = ExecEngine::kGraph;
  try {
    run_job(cluster, counting_spec(true), cfg, 4096);
    FAIL() << "expected the poisoned map closure to surface an Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    // The graph runner names the failing node...
    EXPECT_NE(what.find("task graph node"), std::string::npos) << what;
    EXPECT_NE(what.find("map:cpu"), std::string::npos) << what;
    // ...and carries the original cause.
    EXPECT_NE(what.find("poison item 0"), std::string::npos) << what;
  }
  // Immediate propagation: the error surfaced at the failing block's
  // completion time, well before the fault-free job's total time (which
  // still owes shuffle/reduce/gather after the map barrier).
  EXPECT_LT(simu.now(), t_clean);
  EXPECT_GT(simu.now(), 0.0);
}

TEST(GraphEngineEdge, GraphMatchesStagesOutput) {
  auto run_with = [](ExecEngine engine) {
    sim::Simulator simu;
    Cluster cluster(simu, 3, NodeConfig{});
    JobConfig cfg;
    cfg.engine = engine;
    return run_job(cluster, counting_spec(false), cfg, 3000);
  };
  const auto stages = run_with(ExecEngine::kStages);
  const auto graph = run_with(ExecEngine::kGraph);
  EXPECT_EQ(stages.output, graph.output);
  EXPECT_DOUBLE_EQ(stages.stats.elapsed, graph.stats.elapsed);
}

}  // namespace
}  // namespace prs::core
