// Unit tests for data generators and clustering-quality metrics.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "data/dataset.hpp"
#include "data/metrics.hpp"

namespace prs::data {
namespace {

TEST(Generators, GaussianMixtureShapeAndLabels) {
  Rng rng(1);
  std::vector<GaussianComponent> comps = {
      {0.5, {0.0, 0.0}, {1.0, 1.0}},
      {0.5, {10.0, 10.0}, {1.0, 1.0}},
  };
  Dataset ds = sample_gaussian_mixture(rng, 1000, comps);
  EXPECT_EQ(ds.size(), 1000u);
  EXPECT_EQ(ds.dims(), 2u);
  EXPECT_EQ(ds.labels.size(), 1000u);
  EXPECT_EQ(ds.num_clusters, 2);
  std::set<int> labels(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(labels, (std::set<int>{0, 1}));
}

TEST(Generators, MixtureRespectsComponentMoments) {
  Rng rng(2);
  std::vector<GaussianComponent> comps = {
      {1.0, {5.0, -3.0}, {2.0, 0.5}},
  };
  Dataset ds = sample_gaussian_mixture(rng, 20000, comps);
  StatsAccumulator d0, d1;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    d0.add(ds.points(i, 0));
    d1.add(ds.points(i, 1));
  }
  EXPECT_NEAR(d0.mean(), 5.0, 0.05);
  EXPECT_NEAR(d0.stddev(), 2.0, 0.05);
  EXPECT_NEAR(d1.mean(), -3.0, 0.02);
  EXPECT_NEAR(d1.stddev(), 0.5, 0.02);
}

TEST(Generators, MixtureWeightsControlProportions) {
  Rng rng(3);
  std::vector<GaussianComponent> comps = {
      {0.8, {0.0}, {1.0}},
      {0.2, {100.0}, {1.0}},
  };
  Dataset ds = sample_gaussian_mixture(rng, 10000, comps);
  const auto c0 = static_cast<double>(
      std::count(ds.labels.begin(), ds.labels.end(), 0));
  EXPECT_NEAR(c0 / 10000.0, 0.8, 0.02);
}

TEST(Generators, FlameLikeMatchesPaperShape) {
  Rng rng(4);
  Dataset ds = generate_flame_like(rng);
  EXPECT_EQ(ds.size(), 20054u);  // paper §IV.A.1
  EXPECT_EQ(ds.dims(), 4u);
  EXPECT_EQ(ds.num_clusters, 5);
}

TEST(Generators, BlobsAreWellSeparated) {
  Rng rng(5);
  Dataset ds = generate_blobs(rng, 600, 3, 3, 20.0, 0.5);
  EXPECT_EQ(ds.num_clusters, 3);
  // With separation >> sigma the ground truth labels should be perfectly
  // recoverable by nearest-true-center: overlap metric with itself is 1.
  EXPECT_DOUBLE_EQ(overlap_with_reference(ds.labels, ds.labels), 1.0);
}

TEST(Generators, DeterministicGivenSeed) {
  Rng a(42), b(42);
  Dataset d1 = generate_flame_like(a, 500);
  Dataset d2 = generate_flame_like(b, 500);
  EXPECT_EQ(d1.points, d2.points);
  EXPECT_EQ(d1.labels, d2.labels);
}

TEST(Generators, RandomMatrixAndVectorBounds) {
  Rng rng(6);
  auto m = random_matrix(rng, 10, 20, -2.0, 3.0);
  EXPECT_EQ(m.rows(), 10u);
  EXPECT_EQ(m.cols(), 20u);
  for (double v : m.storage()) {
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
  auto v = random_vector(rng, 50);
  EXPECT_EQ(v.size(), 50u);
}

// -- metrics -----------------------------------------------------------------

TEST(Metrics, AverageClusterWidthHandComputed) {
  linalg::MatrixD points(2, 1);
  points(0, 0) = 0.0;
  points(1, 0) = 4.0;
  linalg::MatrixD centers(1, 1);
  centers(0, 0) = 1.0;
  // distances 1 and 3 -> mean 2.
  EXPECT_DOUBLE_EQ(average_cluster_width(points, {0, 0}, centers), 2.0);
}

TEST(Metrics, WidthRejectsBadAssignment) {
  linalg::MatrixD points(2, 1), centers(1, 1);
  EXPECT_THROW(average_cluster_width(points, {0}, centers), InvalidArgument);
  EXPECT_THROW(average_cluster_width(points, {0, 5}, centers),
               InvalidArgument);
}

TEST(Metrics, OverlapPerfectAndPermuted) {
  std::vector<int> ref{0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(overlap_with_reference(ref, ref), 1.0);
  // Relabelled partitions are still a perfect match.
  std::vector<int> permuted{2, 2, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(overlap_with_reference(permuted, ref), 1.0);
}

TEST(Metrics, OverlapDegradesWithMistakes) {
  std::vector<int> ref{0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<int> ok{0, 0, 0, 0, 1, 1, 1, 1};
  std::vector<int> one_err{0, 0, 0, 1, 1, 1, 1, 1};
  std::vector<int> merged(8, 0);
  const double s_ok = overlap_with_reference(ok, ref);
  const double s_err = overlap_with_reference(one_err, ref);
  const double s_merged = overlap_with_reference(merged, ref);
  EXPECT_GT(s_ok, s_err);
  EXPECT_GT(s_err, s_merged);
}

TEST(Metrics, PurityMajorityVote) {
  std::vector<int> computed{0, 0, 0, 1, 1, 1};
  std::vector<int> ref{0, 0, 1, 1, 1, 1};
  // Cluster 0: majority ref 0 (2 of 3); cluster 1: majority ref 1 (3 of 3).
  EXPECT_NEAR(purity(computed, ref), 5.0 / 6.0, 1e-12);
}

TEST(Metrics, AdjustedRandIndexKnownValues) {
  std::vector<int> a{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, a), 1.0);
  std::vector<int> perm{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, perm), 1.0);
  // Merging everything into one cluster scores 0: no information beyond
  // the chance-level agreement the adjustment subtracts.
  std::vector<int> merged{0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, merged), 0.0);
  std::vector<int> half{0, 1, 0, 1};
  EXPECT_LT(adjusted_rand_index(a, half), 0.5);
}

TEST(Metrics, LabelingsMustAlign) {
  EXPECT_THROW(overlap_with_reference({0, 1}, {0}), InvalidArgument);
  EXPECT_THROW(purity({}, {}), InvalidArgument);
}

}  // namespace
}  // namespace prs::data
