// Unit + property tests for the roofline model and the paper's analytic
// scheduler (Eqs (5)-(11)), including reproduction of Table 5's predicted
// workload splits on the calibrated Delta node.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "roofline/analytic_scheduler.hpp"
#include "roofline/roofline.hpp"
#include "simdev/device_spec.hpp"

namespace prs::roofline {
namespace {

simdev::DeviceSpec toy_cpu() {
  simdev::DeviceSpec s;
  s.name = "toy-cpu";
  s.kind = simdev::DeviceKind::kCpu;
  s.peak_flops = 100.0;
  s.dram_bandwidth = 10.0;  // ridge at AI = 10
  s.cores = 4;
  return s;
}

simdev::DeviceSpec toy_gpu() {
  simdev::DeviceSpec s;
  s.name = "toy-gpu";
  s.kind = simdev::DeviceKind::kGpu;
  s.peak_flops = 1000.0;
  s.dram_bandwidth = 100.0;  // resident ridge at AI = 10
  s.pcie_bandwidth = 10.0;   // staged ridge at 1000*(0.01+0.1) = 110
  s.cores = 64;
  s.hardware_queues = 4;
  return s;
}

TEST(Roofline, AttainableIsMinOfPeakAndBandwidthTimesAi) {
  RooflineModel m(toy_cpu());
  EXPECT_DOUBLE_EQ(m.attainable_flops(1.0), 10.0);   // bandwidth bound
  EXPECT_DOUBLE_EQ(m.attainable_flops(10.0), 100.0); // exactly the ridge
  EXPECT_DOUBLE_EQ(m.attainable_flops(50.0), 100.0); // compute bound
}

TEST(Roofline, StagedAttainableUsesSerialSum) {
  RooflineModel m(toy_gpu());
  // per byte: 1/100 + 1/10 = 0.11 s; at AI=1: F = 1/0.11.
  EXPECT_NEAR(m.attainable_flops_staged(1.0), 1.0 / 0.11, 1e-9);
  EXPECT_DOUBLE_EQ(m.attainable_flops_staged(1000.0), 1000.0);  // capped
}

TEST(Roofline, RidgePoints) {
  RooflineModel cpu(toy_cpu()), gpu(toy_gpu());
  EXPECT_DOUBLE_EQ(cpu.ridge_point(), 10.0);
  EXPECT_DOUBLE_EQ(gpu.ridge_point(), 10.0);
  EXPECT_DOUBLE_EQ(gpu.ridge_point_staged(), 110.0);
  // Staged ridge is always to the right of the resident ridge (paper Fig 3).
  EXPECT_GT(gpu.ridge_point_staged(), gpu.ridge_point());
}

TEST(Roofline, ProcessTimeIsBytesTimesAiOverRate) {
  RooflineModel m(toy_cpu());
  // 100 bytes at AI 1 -> 100 flops at 10 flop/s = 10 s.
  EXPECT_DOUBLE_EQ(m.process_time(1.0, 100.0), 10.0);
  // Above the ridge: 100 bytes at AI 20 -> 2000 flops at 100 flop/s = 20 s.
  EXPECT_DOUBLE_EQ(m.process_time(20.0, 100.0), 20.0);
}

TEST(Roofline, CpuSpecRejectsStagedQueries) {
  RooflineModel m(toy_cpu());
  EXPECT_THROW(m.attainable_flops_staged(1.0), InvalidArgument);
  EXPECT_THROW(m.ridge_point_staged(), InvalidArgument);
}

// -- workload split (Eq 8) -----------------------------------------------------

TEST(AnalyticScheduler, RequiresCpuThenGpu) {
  EXPECT_THROW(AnalyticScheduler(toy_gpu(), toy_cpu()), InvalidArgument);
  EXPECT_NO_THROW(AnalyticScheduler(toy_cpu(), toy_gpu()));
}

TEST(AnalyticScheduler, SplitEqualsFcOverFcPlusFg) {
  AnalyticScheduler sched(toy_cpu(), toy_gpu());
  // AI=1 staged: Fc = 10, Fg = 1/0.11 = 9.0909... -> p = 10/19.09 = 0.5238.
  const auto s = sched.workload_split(1.0, /*gpu_staged=*/true);
  EXPECT_NEAR(s.cpu_rate, 10.0, 1e-9);
  EXPECT_NEAR(s.gpu_rate, 9.0909090909, 1e-6);
  EXPECT_NEAR(s.cpu_fraction, 10.0 / 19.0909090909, 1e-6);
  EXPECT_EQ(s.regime, SplitRegime::kBelowCpuRidge);
}

TEST(AnalyticScheduler, HighAiSplitIsPeakRatio) {
  AnalyticScheduler sched(toy_cpu(), toy_gpu());
  // AI=500 >= both ridges: p = Pc / (Pc + Pg) = 100/1100.
  const auto s = sched.workload_split(500.0, true);
  EXPECT_NEAR(s.cpu_fraction, 100.0 / 1100.0, 1e-12);
  EXPECT_EQ(s.regime, SplitRegime::kAboveGpuRidge);
}

TEST(AnalyticScheduler, MiddleRegimeCpuAtPeakGpuStagingBound) {
  AnalyticScheduler sched(toy_cpu(), toy_gpu());
  // AI=50: above CPU ridge (10), below staged GPU ridge (110).
  const auto s = sched.workload_split(50.0, true);
  EXPECT_DOUBLE_EQ(s.cpu_rate, 100.0);          // Pc
  EXPECT_NEAR(s.gpu_rate, 50.0 / 0.11, 1e-9);   // staging bound
  EXPECT_EQ(s.regime, SplitRegime::kBetweenRidges);
}

TEST(AnalyticScheduler, CachedDataUsesResidentGpuRoofline) {
  AnalyticScheduler sched(toy_cpu(), toy_gpu());
  const auto staged = sched.workload_split(50.0, true);
  const auto cached = sched.workload_split(50.0, false);
  // With cached data the GPU is compute bound at AI=50 (>= ridge 10):
  EXPECT_DOUBLE_EQ(cached.gpu_rate, 1000.0);
  // so the CPU share shrinks versus the staged case.
  EXPECT_LT(cached.cpu_fraction, staged.cpu_fraction);
}

// Property sweep: p is always a valid probability and monotone in the
// intuitive directions.
class SplitProperty : public ::testing::TestWithParam<double> {};

TEST_P(SplitProperty, FractionInUnitIntervalAndRatesPositive) {
  AnalyticScheduler sched(toy_cpu(), toy_gpu());
  const double ai = GetParam();
  for (bool staged : {true, false}) {
    const auto s = sched.workload_split(ai, staged);
    EXPECT_GT(s.cpu_fraction, 0.0) << "ai=" << ai;
    EXPECT_LT(s.cpu_fraction, 1.0) << "ai=" << ai;
    EXPECT_GT(s.cpu_rate, 0.0);
    EXPECT_GT(s.gpu_rate, 0.0);
    EXPECT_NEAR(s.cpu_fraction, s.cpu_rate / (s.cpu_rate + s.gpu_rate),
                1e-12);
  }
}

TEST_P(SplitProperty, FasterGpuLowersCpuShare) {
  const double ai = GetParam();
  simdev::DeviceSpec big = toy_gpu();
  big.peak_flops *= 4.0;
  big.dram_bandwidth *= 4.0;
  big.pcie_bandwidth *= 4.0;
  AnalyticScheduler base(toy_cpu(), toy_gpu());
  AnalyticScheduler faster(toy_cpu(), big);
  EXPECT_LT(faster.workload_split(ai, true).cpu_fraction,
            base.workload_split(ai, true).cpu_fraction)
      << "ai=" << ai;
}

TEST_P(SplitProperty, ContinuityAcrossRegimeBoundaries) {
  // Eq (8) must be continuous at Acr and Agr: evaluate p on both sides of
  // each ridge and require a small jump.
  AnalyticScheduler sched(toy_cpu(), toy_gpu());
  const double ridge = GetParam() < 50.0 ? 10.0 : 110.0;  // Acr or Agr
  const double eps = 1e-6;
  const double below = sched.workload_split(ridge - eps, true).cpu_fraction;
  const double above = sched.workload_split(ridge + eps, true).cpu_fraction;
  EXPECT_NEAR(below, above, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AiSweep, SplitProperty,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 5.0, 9.9, 10.1,
                                           20.0, 50.0, 109.0, 111.0, 500.0,
                                           6600.0));

// -- Table 5 reproduction ---------------------------------------------------------

TEST(Table5, GemvPredictedSplitMatchesPaper) {
  // GEMV: AI = 2, non-iterative (input staged over PCI-E every time).
  AnalyticScheduler sched(simdev::delta_cpu(), simdev::delta_c2070());
  const auto s = sched.workload_split(2.0, /*gpu_staged=*/true);
  // Paper Table 5: p = 97.3%.
  EXPECT_NEAR(s.cpu_fraction, 0.973, 0.005);
  EXPECT_EQ(s.regime, SplitRegime::kBelowCpuRidge);
}

TEST(Table5, CmeansPredictedSplitMatchesPaper) {
  // C-means: AI = 5*M = 500 (M=100), iterative with the event matrix cached
  // in GPU memory (paper §III.C.3), so the GPU uses its resident roofline.
  AnalyticScheduler sched(simdev::delta_cpu(), simdev::delta_c2070());
  const auto s = sched.workload_split(500.0, /*gpu_staged=*/false);
  // Paper Table 5: p = 11.2%.
  EXPECT_NEAR(s.cpu_fraction, 0.112, 0.005);
}

TEST(Table5, GmmPredictedSplitMatchesPaper) {
  // GMM: AI = 11*M*D = 6600 (M=10, D=60), iterative/cached as well.
  AnalyticScheduler sched(simdev::delta_cpu(), simdev::delta_c2070());
  const auto s = sched.workload_split(6600.0, /*gpu_staged=*/false);
  // Paper Table 5: p = 11.2% (same regime as C-means: both at peak).
  EXPECT_NEAR(s.cpu_fraction, 0.112, 0.005);
  EXPECT_EQ(s.regime, SplitRegime::kAboveGpuRidge);
}

// -- networked split (paper future work a) ----------------------------------------

TEST(NetworkedSplit, CapsNodeRateAtNetworkBound) {
  AnalyticScheduler sched(toy_cpu(), toy_gpu());
  // AI=1 staged: Fc=10, Fg=9.09, compute=19.09. Network at B=5 B/s:
  // network rate = 1*5 = 5 < compute -> network bound.
  const auto slow = sched.workload_split_networked(1.0, 1.0, true, 1, 5.0);
  EXPECT_TRUE(slow.network_bound);
  EXPECT_DOUBLE_EQ(slow.network_rate, 5.0);
  EXPECT_DOUBLE_EQ(slow.node_rate, 5.0);
  EXPECT_NEAR(slow.compute_rate, 19.0909, 1e-3);
  // Fast network: compute bound.
  const auto fast = sched.workload_split_networked(1.0, 1.0, true, 1, 1e6);
  EXPECT_FALSE(fast.network_bound);
  EXPECT_NEAR(fast.node_rate, fast.compute_rate, 1e-9);
  // The inner CPU/GPU split is unchanged by the network term.
  EXPECT_DOUBLE_EQ(slow.split.cpu_fraction, fast.split.cpu_fraction);
}

TEST(NetworkedSplit, MultiGpuRaisesComputeRate) {
  AnalyticScheduler sched(toy_cpu(), toy_gpu());
  const auto one = sched.workload_split_networked(1.0, 1.0, true, 1, 1e6);
  const auto two = sched.workload_split_networked(1.0, 1.0, true, 2, 1e6);
  EXPECT_NEAR(two.compute_rate - one.compute_rate, one.split.gpu_rate, 1e-9);
}

TEST(NetworkedSplit, CrossoverAtComputeOverAi) {
  AnalyticScheduler sched(toy_cpu(), toy_gpu());
  const auto base = sched.workload_split(2.0, true);
  const double crossover = (base.cpu_rate + base.gpu_rate) / 2.0;
  const auto below =
      sched.workload_split_networked(2.0, 2.0, true, 1, crossover * 0.99);
  const auto above =
      sched.workload_split_networked(2.0, 2.0, true, 1, crossover * 1.01);
  EXPECT_TRUE(below.network_bound);
  EXPECT_FALSE(above.network_bound);
}

TEST(NetworkedSplit, RejectsNonPositiveBandwidth) {
  AnalyticScheduler sched(toy_cpu(), toy_gpu());
  EXPECT_THROW(sched.workload_split_networked(1.0, 1.0, true, 1, 0.0),
               InvalidArgument);
}

// -- overlap percentage (Eq 9) ---------------------------------------------------

TEST(Overlap, MatchesClosedForm) {
  AnalyticScheduler sched(toy_cpu(), toy_gpu());
  // transfer/byte = 0.11 s, compute/byte at AI=10 is 10/1000 = 0.01 s.
  EXPECT_NEAR(sched.overlap_percentage(10.0), 0.11 / 0.12, 1e-12);
}

TEST(Overlap, DecreasesWithArithmeticIntensity) {
  AnalyticScheduler sched(toy_cpu(), toy_gpu());
  double prev = 1.0;
  for (double ai : {0.5, 1.0, 5.0, 50.0, 500.0}) {
    const double op = sched.overlap_percentage(ai);
    EXPECT_GT(op, 0.0);
    EXPECT_LT(op, 1.0);
    EXPECT_LT(op, prev);
    prev = op;
  }
}

// -- MinBs (Eq 10/11) -------------------------------------------------------------

TEST(MinBlockSize, InvertsMonotoneAiFunction) {
  AnalyticScheduler sched(toy_cpu(), toy_gpu());
  // BLAS3-like: AI(Bs) = sqrt(Bs) (grows with block size).
  AiOfBlock ai = [](double bs) { return std::sqrt(bs); };
  // Staged ridge = 110 -> MinBs = 110^2 = 12100.
  const auto bs = sched.min_block_size(ai, 1.0, 1e9);
  ASSERT_TRUE(bs.has_value());
  EXPECT_NEAR(*bs, 12100.0, 2.0);
  // And it is genuinely the inverse: AI(MinBs) ~= ridge.
  EXPECT_NEAR(ai(*bs), 110.0, 0.05);
}

TEST(MinBlockSize, ConstantLowAiNeverSaturates) {
  AnalyticScheduler sched(toy_cpu(), toy_gpu());
  AiOfBlock ai = [](double) { return 2.0; };  // GEMV-like
  EXPECT_FALSE(sched.min_block_size(ai, 1.0, 1e12).has_value());
}

TEST(MinBlockSize, AlreadySaturatedReturnsLowerBound) {
  AnalyticScheduler sched(toy_cpu(), toy_gpu());
  AiOfBlock ai = [](double) { return 1e6; };  // DGEMM on a huge block
  const auto bs = sched.min_block_size(ai, 64.0, 1e9);
  ASSERT_TRUE(bs.has_value());
  EXPECT_DOUBLE_EQ(*bs, 64.0);
}

// -- stream recommendation ---------------------------------------------------------

TEST(Streams, LowOverlapMeansNoStreaming) {
  AnalyticScheduler sched(toy_cpu(), toy_gpu());
  // Very high AI -> compute dominates, op ~ 0 -> single stream.
  AiOfBlock ai = [](double) { return 1e7; };
  EXPECT_EQ(sched.recommended_streams(1e6, ai), 1);
}

TEST(Streams, BandwidthBoundAppGetsAllQueues) {
  AnalyticScheduler sched(toy_cpu(), toy_gpu());
  AiOfBlock ai = [](double) { return 1.0; };  // never saturates peak
  EXPECT_EQ(sched.recommended_streams(1e6, ai), 4);  // hw queue cap
}

TEST(Streams, BlockCountCappedByQueuesAndMinBs) {
  AnalyticScheduler sched(toy_cpu(), toy_gpu());
  AiOfBlock ai = [](double bs) { return std::sqrt(bs); };  // MinBs = 12100
  // Partition holding ~3.3 MinBs blocks, op(sqrt(40000)) = 0.11/0.31 = 0.35
  // above threshold -> 3 streams.
  EXPECT_EQ(sched.recommended_streams(40000.0, ai), 3);
  // Tiny partition: a single MinBs block -> 1 stream.
  EXPECT_EQ(sched.recommended_streams(12100.0, ai), 1);
}

TEST(Streams, CpuBlockCountIsMultipleOfCores) {
  EXPECT_EQ(AnalyticScheduler::cpu_block_count(12), 48);
  EXPECT_EQ(AnalyticScheduler::cpu_block_count(12, 2), 24);
  EXPECT_THROW(AnalyticScheduler::cpu_block_count(0), InvalidArgument);
}

}  // namespace
}  // namespace prs::roofline
