// Application tests: serial references against hand-checked/analytic
// results, distributed PRS runs against the serial references, and
// algorithmic invariants (objective monotonicity, likelihood ascent).
#include <gtest/gtest.h>

#include <cmath>

#include "apps/cmeans.hpp"
#include "apps/gemv.hpp"
#include "apps/gmm.hpp"
#include "apps/kmeans.hpp"
#include "apps/wordcount.hpp"
#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "data/metrics.hpp"

namespace prs::apps {
namespace {

using core::Cluster;
using core::JobConfig;
using core::NodeConfig;

linalg::MatrixD two_blob_points() {
  // 8 points in two tight 2-D blobs around (0,0) and (10,10).
  linalg::MatrixD pts(8, 2);
  const double raw[8][2] = {{0, 0},  {1, 0},  {0, 1},  {1, 1},
                            {10, 10}, {11, 10}, {10, 11}, {11, 11}};
  for (std::size_t i = 0; i < 8; ++i) {
    pts(i, 0) = raw[i][0];
    pts(i, 1) = raw[i][1];
  }
  return pts;
}

// -- C-means -----------------------------------------------------------------

TEST(CmeansSerial, RecoversTwoObviousBlobs) {
  auto pts = two_blob_points();
  CmeansParams p;
  p.clusters = 2;
  auto res = cmeans_serial(pts, p);
  // Centers converge to the blob centroids (0.5,0.5) and (10.5,10.5).
  std::vector<double> c0{res.centers(0, 0), res.centers(0, 1)};
  std::vector<double> c1{res.centers(1, 0), res.centers(1, 1)};
  if (c0[0] > c1[0]) std::swap(c0, c1);
  EXPECT_NEAR(c0[0], 0.5, 0.05);
  EXPECT_NEAR(c0[1], 0.5, 0.05);
  EXPECT_NEAR(c1[0], 10.5, 0.05);
  EXPECT_NEAR(c1[1], 10.5, 0.05);
  // Hard assignment splits 4/4 consistent with ground truth.
  EXPECT_EQ(res.assignment[0], res.assignment[3]);
  EXPECT_EQ(res.assignment[4], res.assignment[7]);
  EXPECT_NE(res.assignment[0], res.assignment[4]);
}

TEST(CmeansSerial, ObjectiveDecreasesMonotonically) {
  Rng rng(3);
  auto ds = data::generate_blobs(rng, 300, 3, 3, 8.0, 1.0);
  CmeansParams p;
  p.clusters = 3;
  p.epsilon = 0.0;  // never early-stop
  double prev = std::numeric_limits<double>::infinity();
  for (int iters = 1; iters <= 8; ++iters) {
    CmeansParams pi = p;
    pi.max_iterations = iters;
    auto res = cmeans_serial(ds.points, pi);
    EXPECT_LE(res.objective, prev * (1.0 + 1e-9)) << "iteration " << iters;
    prev = res.objective;
  }
}

TEST(CmeansSerial, PointOnCenterGetsFullMembership) {
  // A degenerate config: one point exactly at a center must not produce
  // NaNs (Eq (13) divides by distance).
  linalg::MatrixD pts(3, 1);
  pts(0, 0) = 0.0;
  pts(1, 0) = 0.0;  // duplicate point -> initial center hit
  pts(2, 0) = 5.0;
  CmeansParams p;
  p.clusters = 2;
  p.max_iterations = 5;
  auto res = cmeans_serial(pts, p);
  for (std::size_t i = 0; i < res.centers.size(); ++i) {
    EXPECT_TRUE(std::isfinite(res.centers.storage()[i]));
  }
}

TEST(CmeansSerial, ValidatesParameters) {
  auto pts = two_blob_points();
  CmeansParams p;
  p.clusters = 0;
  EXPECT_THROW(cmeans_serial(pts, p), InvalidArgument);
  p.clusters = 100;
  EXPECT_THROW(cmeans_serial(pts, p), InvalidArgument);
  p.clusters = 2;
  p.fuzziness = 1.0;
  EXPECT_THROW(cmeans_serial(pts, p), InvalidArgument);
}

TEST(CmeansPrs, MatchesSerialReference) {
  Rng rng(7);
  auto ds = data::generate_blobs(rng, 400, 4, 3, 10.0, 1.0);
  CmeansParams p;
  p.clusters = 3;
  p.max_iterations = 20;

  auto serial = cmeans_serial(ds.points, p);

  for (int nodes : {1, 3}) {
    sim::Simulator simu;
    Cluster cluster(simu, nodes, NodeConfig{});
    auto prs = cmeans_prs(cluster, ds.points, p, JobConfig{});
    ASSERT_EQ(prs.centers.rows(), serial.centers.rows());
    for (std::size_t i = 0; i < serial.centers.size(); ++i) {
      EXPECT_NEAR(prs.centers.storage()[i], serial.centers.storage()[i],
                  1e-6)
          << nodes << " nodes";
    }
    EXPECT_EQ(prs.assignment, serial.assignment);
  }
}

TEST(CmeansPrs, DynamicSchedulingMatchesToo) {
  Rng rng(8);
  auto ds = data::generate_blobs(rng, 200, 3, 2, 10.0, 1.0);
  CmeansParams p;
  p.clusters = 2;
  p.max_iterations = 15;
  auto serial = cmeans_serial(ds.points, p);

  sim::Simulator simu;
  Cluster cluster(simu, 2, NodeConfig{});
  JobConfig cfg;
  cfg.scheduling = core::SchedulingMode::kDynamic;
  auto prs = cmeans_prs(cluster, ds.points, p, cfg);
  for (std::size_t i = 0; i < serial.centers.size(); ++i) {
    EXPECT_NEAR(prs.centers.storage()[i], serial.centers.storage()[i], 1e-6);
  }
}

TEST(CmeansPrs, RecoversFlameLikeClusters) {
  Rng rng(9);
  auto ds = data::generate_flame_like(rng, 2000);
  CmeansParams p;
  p.clusters = 5;
  p.max_iterations = 50;
  sim::Simulator simu;
  Cluster cluster(simu, 2, NodeConfig{});
  auto prs = cmeans_prs(cluster, ds.points, p, JobConfig{});
  const double overlap = data::overlap_with_reference(prs.assignment,
                                                      ds.labels);
  // Overlapping mixture: expect decent but not perfect recovery.
  EXPECT_GT(overlap, 0.6);
}

TEST(CmeansCostModel, MatchesTable5Formulas) {
  EXPECT_DOUBLE_EQ(cmeans_arithmetic_intensity(100), 500.0);
  EXPECT_DOUBLE_EQ(cmeans_flops_per_point(10, 100), 5000.0);
}

TEST(CmeansMapKernel, TiedZeroDistanceCentersSplitMembershipEqually) {
  // Eq (13) limit case: a point sitting exactly on T coincident centers
  // (duplicated centers happen with random initialization) has membership
  // u = 1/T in each — not u = 1 on whichever tied center the scan saw
  // last. With fuzziness m = 2 the stored Eq (14) weight is u^2 = 0.25.
  linalg::MatrixD pts(1, 2);
  pts(0, 0) = 1.0;
  pts(0, 1) = 2.0;
  linalg::MatrixD centers(3, 2);
  centers(0, 0) = 1.0;
  centers(0, 1) = 2.0;
  centers(1, 0) = 1.0;  // duplicate of center 0, both on the point
  centers(1, 1) = 2.0;
  centers(2, 0) = 7.0;
  centers(2, 1) = 9.0;

  std::vector<std::vector<double>> partials;
  cmeans_accumulate(pts, centers, 2.0, 0, 1, partials);

  // Layout per cluster: [weighted x sums (D), weight sum, objective].
  EXPECT_DOUBLE_EQ(partials[0][2], 0.25);
  EXPECT_DOUBLE_EQ(partials[1][2], 0.25);
  EXPECT_DOUBLE_EQ(partials[2][2], 0.0);  // far center gets nothing
  EXPECT_DOUBLE_EQ(partials[0][0], 0.25 * 1.0);
  EXPECT_DOUBLE_EQ(partials[0][1], 0.25 * 2.0);
  EXPECT_DOUBLE_EQ(partials[1][0], 0.25 * 1.0);
  EXPECT_DOUBLE_EQ(partials[1][1], 0.25 * 2.0);
  EXPECT_DOUBLE_EQ(partials[0][3], 0.0);  // zero distance -> J_m adds 0

  // Both tied centers stay exactly on the point after the Eq (14) update.
  EXPECT_DOUBLE_EQ(partials[0][0] / partials[0][2], 1.0);
  EXPECT_DOUBLE_EQ(partials[1][1] / partials[1][2], 2.0);
}

TEST(CmeansMapKernel, SingleZeroDistanceCenterKeepsFullMembership) {
  // The unduplicated case must behave exactly as before the tie fix:
  // the point belongs to its center with u = 1 (weight u^m = 1).
  linalg::MatrixD pts(1, 2);
  pts(0, 0) = 1.0;
  pts(0, 1) = 2.0;
  linalg::MatrixD centers(2, 2);
  centers(0, 0) = 1.0;
  centers(0, 1) = 2.0;
  centers(1, 0) = 7.0;
  centers(1, 1) = 9.0;

  std::vector<std::vector<double>> partials;
  cmeans_accumulate(pts, centers, 2.0, 0, 1, partials);
  EXPECT_DOUBLE_EQ(partials[0][2], 1.0);
  EXPECT_DOUBLE_EQ(partials[1][2], 0.0);
}

// -- K-means -----------------------------------------------------------------

TEST(KmeansSerial, RecoversTwoObviousBlobs) {
  auto pts = two_blob_points();
  KmeansParams p;
  p.clusters = 2;
  auto res = kmeans_serial(pts, p);
  std::vector<double> c0{res.centers(0, 0), res.centers(0, 1)};
  std::vector<double> c1{res.centers(1, 0), res.centers(1, 1)};
  if (c0[0] > c1[0]) std::swap(c0, c1);
  EXPECT_NEAR(c0[0], 0.5, 1e-9);
  EXPECT_NEAR(c1[0], 10.5, 1e-9);
  // Inertia for converged two-blob K-means: 8 points each 0.5 away in both
  // axes from its centroid -> sum d^2 = 8 * 0.5 = 4.
  EXPECT_NEAR(res.inertia, 4.0, 1e-9);
}

TEST(KmeansSerial, InertiaNeverIncreases) {
  Rng rng(4);
  auto ds = data::generate_blobs(rng, 250, 2, 4, 6.0, 1.2);
  KmeansParams p;
  p.clusters = 4;
  p.epsilon = 0.0;
  double prev = std::numeric_limits<double>::infinity();
  for (int iters = 1; iters <= 8; ++iters) {
    KmeansParams pi = p;
    pi.max_iterations = iters;
    auto res = kmeans_serial(ds.points, pi);
    EXPECT_LE(res.inertia, prev * (1.0 + 1e-9));
    prev = res.inertia;
  }
}

TEST(KmeansPrs, MatchesSerialReference) {
  Rng rng(11);
  auto ds = data::generate_blobs(rng, 300, 3, 3, 9.0, 1.0);
  KmeansParams p;
  p.clusters = 3;
  p.max_iterations = 25;
  auto serial = kmeans_serial(ds.points, p);

  sim::Simulator simu;
  Cluster cluster(simu, 2, NodeConfig{});
  auto prs = kmeans_prs(cluster, ds.points, p, JobConfig{});
  for (std::size_t i = 0; i < serial.centers.size(); ++i) {
    EXPECT_NEAR(prs.centers.storage()[i], serial.centers.storage()[i], 1e-9);
  }
  EXPECT_EQ(prs.assignment, serial.assignment);
  EXPECT_EQ(prs.iterations, serial.iterations);
}

// -- GMM ----------------------------------------------------------------------

TEST(GmmSerial, FitsTwoWellSeparatedGaussians) {
  Rng rng(5);
  std::vector<data::GaussianComponent> comps = {
      {0.6, {0.0, 0.0}, {1.0, 1.0}},
      {0.4, {12.0, -8.0}, {0.5, 2.0}},
  };
  auto ds = data::sample_gaussian_mixture(rng, 4000, comps);
  GmmParams p;
  p.components = 2;
  p.max_iterations = 60;
  auto model = gmm_serial(ds.points, p);

  // Identify components by their first mean coordinate.
  std::size_t far = model.means(0, 0) > model.means(1, 0) ? 0 : 1;
  std::size_t near = 1 - far;
  EXPECT_NEAR(model.means(near, 0), 0.0, 0.15);
  EXPECT_NEAR(model.means(near, 1), 0.0, 0.15);
  EXPECT_NEAR(model.means(far, 0), 12.0, 0.15);
  EXPECT_NEAR(model.means(far, 1), -8.0, 0.15);
  EXPECT_NEAR(model.weights[near], 0.6, 0.03);
  EXPECT_NEAR(model.weights[far], 0.4, 0.03);
  EXPECT_NEAR(model.variances(far, 0), 0.25, 0.05);
  EXPECT_NEAR(model.variances(far, 1), 4.0, 0.4);
}

TEST(GmmSerial, LogLikelihoodIsNonDecreasing) {
  Rng rng(6);
  auto ds = data::generate_blobs(rng, 500, 2, 3, 7.0, 1.0);
  GmmParams p;
  p.components = 3;
  p.epsilon = 0.0;
  double prev = -std::numeric_limits<double>::infinity();
  for (int iters = 1; iters <= 10; ++iters) {
    GmmParams pi = p;
    pi.max_iterations = iters;
    auto model = gmm_serial(ds.points, pi);
    EXPECT_GE(model.log_likelihood, prev - 1e-9) << "iteration " << iters;
    prev = model.log_likelihood;
  }
}

TEST(GmmSerial, WeightsFormDistribution) {
  Rng rng(13);
  auto ds = data::generate_flame_like(rng, 1500);
  GmmParams p;
  p.components = 5;
  p.max_iterations = 30;
  auto model = gmm_serial(ds.points, p);
  double total = 0.0;
  for (double w : model.weights) {
    EXPECT_GT(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (std::size_t i = 0; i < model.variances.size(); ++i) {
    EXPECT_GE(model.variances.storage()[i], p.min_variance);
  }
}

TEST(GmmSerial, ResponsibilitiesRowsSumToOne) {
  Rng rng(14);
  auto ds = data::generate_blobs(rng, 100, 2, 2, 10.0, 1.0);
  GmmParams p;
  p.components = 2;
  p.max_iterations = 10;
  auto model = gmm_serial(ds.points, p);
  auto resp = gmm_responsibilities(ds.points, model);
  for (std::size_t i = 0; i < resp.rows(); ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < resp.cols(); ++j) row += resp(i, j);
    EXPECT_NEAR(row, 1.0, 1e-9);
  }
}

TEST(GmmPrs, MatchesSerialReference) {
  Rng rng(15);
  auto ds = data::generate_blobs(rng, 400, 3, 2, 12.0, 1.0);
  GmmParams p;
  p.components = 2;
  p.max_iterations = 20;
  auto serial = gmm_serial(ds.points, p);

  sim::Simulator simu;
  Cluster cluster(simu, 3, NodeConfig{});
  auto prs = gmm_prs(cluster, ds.points, p, JobConfig{});
  for (std::size_t i = 0; i < serial.means.size(); ++i) {
    EXPECT_NEAR(prs.means.storage()[i], serial.means.storage()[i], 1e-6);
  }
  for (std::size_t i = 0; i < serial.variances.size(); ++i) {
    EXPECT_NEAR(prs.variances.storage()[i], serial.variances.storage()[i],
                1e-6);
  }
  EXPECT_NEAR(prs.log_likelihood, serial.log_likelihood, 1e-6);
}

TEST(GmmCostModel, MatchesTable5Formula) {
  EXPECT_DOUBLE_EQ(gmm_arithmetic_intensity(10, 60), 6600.0);
  EXPECT_DOUBLE_EQ(gmm_flops_per_point(10, 60), 6600.0);
}

// -- GEMV ----------------------------------------------------------------------

TEST(GemvSerial, MatchesBlasKernel) {
  Rng rng(16);
  auto a = data::random_matrix(rng, 17, 9);
  auto x = data::random_vector(rng, 9);
  auto y = gemv_serial(a, x);
  ASSERT_EQ(y.size(), 17u);
  // Spot-check one row by hand.
  double acc = 0.0;
  for (std::size_t c = 0; c < 9; ++c) acc += a(5, c) * x[c];
  EXPECT_NEAR(y[5], acc, 1e-12);
}

TEST(GemvPrs, MatchesSerialOnAnyClusterSize) {
  Rng rng(17);
  auto a = data::random_matrix(rng, 203, 57);
  auto x = data::random_vector(rng, 57);
  auto want = gemv_serial(a, x);
  for (int nodes : {1, 2, 5}) {
    sim::Simulator simu;
    Cluster cluster(simu, nodes, NodeConfig{});
    auto got = gemv_prs(cluster, a, x, JobConfig{});
    ASSERT_EQ(got.size(), want.size()) << nodes << " nodes";
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_NEAR(got[i], want[i], 1e-12) << "row " << i;
    }
  }
}

TEST(GemvPrs, AnalyticModelSendsMostWorkToCpu) {
  // GEMV on the Delta node: Eq (8) predicts p ~ 97%; check the runtime
  // actually executed ~that share of flops on the CPU.
  Rng rng(18);
  auto a = data::random_matrix(rng, 400, 64);
  auto x = data::random_vector(rng, 64);
  sim::Simulator simu;
  Cluster cluster(simu, 1, NodeConfig{});
  core::JobStats stats;
  (void)gemv_prs(cluster, a, x, JobConfig{}, &stats);
  const double cpu_share = stats.cpu_flops / stats.total_flops();
  EXPECT_GT(cpu_share, 0.9);
}

TEST(GemvPrs, ShapeMismatchThrows) {
  sim::Simulator simu;
  Cluster cluster(simu, 1, NodeConfig{});
  linalg::MatrixD a(4, 3);
  std::vector<double> x(5);
  EXPECT_THROW(gemv_prs(cluster, a, x, JobConfig{}), InvalidArgument);
}

// -- word count ------------------------------------------------------------------

TEST(WordCount, SerialCountsHandBuiltCorpus) {
  Corpus corpus{"a b a", "b c", "a"};
  auto counts = wordcount_serial(corpus);
  EXPECT_EQ(counts["a"], 3);
  EXPECT_EQ(counts["b"], 2);
  EXPECT_EQ(counts["c"], 1);
  EXPECT_EQ(counts.size(), 3u);
}

TEST(WordCount, GeneratorProducesRequestedShape) {
  Rng rng(19);
  auto corpus = generate_corpus(rng, 100, 8, 50);
  EXPECT_EQ(corpus.size(), 100u);
  auto counts = wordcount_serial(corpus);
  long total = 0;
  for (const auto& [w, c] : counts) total += c;
  EXPECT_EQ(total, 800);
  EXPECT_LE(counts.size(), 50u);
}

TEST(WordCount, PrsMatchesSerial) {
  Rng rng(20);
  auto corpus =
      std::make_shared<const Corpus>(generate_corpus(rng, 500, 6, 40));
  auto want = wordcount_serial(*corpus);
  for (int nodes : {1, 4}) {
    sim::Simulator simu;
    Cluster cluster(simu, nodes, NodeConfig{});
    auto got = wordcount_prs(cluster, corpus, JobConfig{});
    EXPECT_EQ(got, want) << nodes << " nodes";
  }
}

TEST(WordCount, LowIntensityFavorsCpuHeavySplit) {
  Rng rng(21);
  auto corpus =
      std::make_shared<const Corpus>(generate_corpus(rng, 300, 6, 40));
  sim::Simulator simu;
  Cluster cluster(simu, 1, NodeConfig{});
  core::JobStats stats;
  (void)wordcount_prs(cluster, corpus, JobConfig{}, &stats);
  EXPECT_GT(stats.cpu_flops, stats.gpu_flops);
}

TEST(WordCount, CostModelMeasuresTheActualCorpus) {
  // The spec's per-item costs must come from the corpus really passed in
  // (mean line/word length), not from a hardcoded words-per-line guess:
  // a 40-words-per-line corpus models ~5x the per-line cost of an
  // 8-words-per-line one and must shift the modeled virtual times.
  // Enough lines that modeled per-item cost dominates per-task overhead.
  Rng rng(11);
  auto narrow =
      std::make_shared<const Corpus>(generate_corpus(rng, 20000, 8, 500));
  auto wide =
      std::make_shared<const Corpus>(generate_corpus(rng, 20000, 40, 500));
  auto mean_line_bytes = [](const Corpus& c) {
    std::size_t bytes = 0;
    for (const auto& line : c) bytes += line.size();
    return static_cast<double>(bytes) / static_cast<double>(c.size());
  };

  auto s8 = wordcount_spec(narrow);
  auto s40 = wordcount_spec(wide);
  EXPECT_DOUBLE_EQ(s8.item_bytes, mean_line_bytes(*narrow));
  EXPECT_DOUBLE_EQ(s40.item_bytes, mean_line_bytes(*wide));
  EXPECT_DOUBLE_EQ(s8.cpu_flops_per_item, s8.item_bytes);
  EXPECT_GT(s40.item_bytes, 3.0 * s8.item_bytes);
  EXPECT_GT(s8.pair_bytes, 8.0);  // word text + 8-byte count

  // Same line count, longer lines -> proportionally more modeled map time.
  // CPU-only keeps the comparison clean of per-block GPU launch overhead,
  // which is line-length independent and would mask the scaling.
  JobConfig cfg;
  cfg.mode = core::ExecutionMode::kModeled;
  cfg.use_gpu = false;
  core::JobStats st8, st40;
  {
    sim::Simulator simu;
    Cluster cluster(simu, 2, NodeConfig{});
    (void)wordcount_prs(cluster, narrow, cfg, &st8);
  }
  {
    sim::Simulator simu;
    Cluster cluster(simu, 2, NodeConfig{});
    (void)wordcount_prs(cluster, wide, cfg, &st40);
  }
  // The calibrated per-iteration dispatch overhead (~kPrsIterationOverhead)
  // is line-length independent and shared by both runs, so the ratio is
  // damped well below the 5x byte ratio — but the per-byte part must show.
  EXPECT_GT(st40.map_time, 1.15 * st8.map_time);
}

}  // namespace
}  // namespace prs::apps
