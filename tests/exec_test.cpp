// Host thread pool (src/exec): lifecycle, correctness of the parallel
// wrappers, exception propagation, nested regions, and — the load-bearing
// property — byte-identical app results for any thread count.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/cmeans.hpp"
#include "apps/gmm.hpp"
#include "apps/wordcount.hpp"
#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "numa/topology.hpp"

namespace {

using namespace prs;

/// Restores the pool's default sizing when a test scope ends, so thread
/// counts forced by one test never leak into another.
struct PoolGuard {
  ~PoolGuard() { exec::ThreadPool::instance().configure(0); }
};

/// FNV-1a over raw double bytes — equality below means byte identity.
std::uint64_t digest(std::uint64_t h, const double* p, std::size_t n) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n * sizeof(double); ++i) {
    h = (h ^ bytes[i]) * 1099511628211ULL;
  }
  return h;
}

TEST(ThreadPool, ConfigureAndShutdownRoundTrip) {
  PoolGuard guard;
  auto& pool = exec::ThreadPool::instance();
  pool.configure(3);
  EXPECT_EQ(pool.threads(), 3);

  std::vector<int> out(100, 0);
  exec::parallel_for(0, out.size(), 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) out[i] = static_cast<int>(i);
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }

  // Shut down, then run again: workers must restart lazily.
  pool.shutdown();
  long sum = exec::parallel_reduce(
      1, 101, 9, 0L,
      [](std::size_t b, std::size_t e, long acc) {
        for (std::size_t i = b; i < e; ++i) acc += static_cast<long>(i);
        return acc;
      },
      [](long a, long b) { return a + b; });
  EXPECT_EQ(sum, 5050);

  pool.configure(0);
  EXPECT_EQ(pool.threads(), exec::ThreadPool::default_threads());
}

TEST(ThreadPool, RejectsOutOfRangeConfiguration) {
  auto& pool = exec::ThreadPool::instance();
  EXPECT_THROW(pool.configure(-1), Error);
  EXPECT_THROW(pool.configure(exec::ThreadPool::kMaxThreads + 1), Error);
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  PoolGuard guard;
  exec::ThreadPool::instance().configure(4);
  int calls = 0;
  exec::parallel_for(5, 5, 16, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(exec::parallel_reduce(
                0, 1, 1024, 10,
                [](std::size_t, std::size_t, int acc) { return acc + 1; },
                [](int a, int b) { return a + b; }),
            11);
}

TEST(ThreadPool, ChunkCountEdgesAndOverflow) {
  // Basic shapes.
  EXPECT_EQ(exec::chunk_count(0, 16), 0u);
  EXPECT_EQ(exec::chunk_count(1, 16), 1u);
  EXPECT_EQ(exec::chunk_count(16, 16), 1u);
  EXPECT_EQ(exec::chunk_count(17, 16), 2u);
  // Grain far above n: one chunk, never zero. The old (n + g - 1) / g
  // wrapped for grain near SIZE_MAX and reported 0 chunks for a non-empty
  // range (then indexed partials[0] out of bounds).
  const std::size_t huge = std::numeric_limits<std::size_t>::max();
  EXPECT_EQ(exec::chunk_count(5, huge), 1u);
  EXPECT_EQ(exec::chunk_count(5, huge - 3), 1u);
  EXPECT_EQ(exec::chunk_count(huge, huge), 1u);
  EXPECT_EQ(exec::chunk_count(huge, 1), huge);
  EXPECT_THROW(exec::chunk_count(5, 0), Error);
}

TEST(ThreadPool, RangesNearSizeMaxDoNotWrap) {
  PoolGuard guard;
  exec::ThreadPool::instance().configure(3);
  // A range whose end sits at SIZE_MAX: the old chunk-end computation
  // cb + grain overflowed to a tiny value and handed out a truncated (or
  // inverted) chunk. Count items and check the exact bounds instead.
  const std::size_t end = std::numeric_limits<std::size_t>::max();
  const std::size_t begin = end - 5;
  std::atomic<std::size_t> items{0};
  exec::parallel_for(begin, end, 1024, [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(b, begin);
    EXPECT_EQ(e, end);
    items += e - b;
  });
  EXPECT_EQ(items.load(), 5u);

  // Same boundary through the reduce path, with more than one chunk.
  const std::size_t sum = exec::parallel_reduce(
      end - 10, end, 4, std::size_t{0},
      [&](std::size_t b, std::size_t e, std::size_t acc) {
        EXPECT_LE(b, e);
        return acc + (e - b);
      },
      [](std::size_t a, std::size_t b) { return a + b; });
  EXPECT_EQ(sum, 10u);
}

TEST(ThreadPool, ReduceWithGrainAboveRange) {
  PoolGuard guard;
  exec::ThreadPool::instance().configure(4);
  // n < grain must mean exactly one chunk covering the whole range.
  int chunks = 0;
  const long total = exec::parallel_reduce(
      3, 10, exec::kDefaultGrain, 0L,
      [&](std::size_t b, std::size_t e, long acc) {
        ++chunks;
        EXPECT_EQ(b, 3u);
        EXPECT_EQ(e, 10u);
        for (std::size_t i = b; i < e; ++i) acc += static_cast<long>(i);
        return acc;
      },
      [](long a, long b) { return a + b; });
  EXPECT_EQ(chunks, 1);
  EXPECT_EQ(total, 3 + 4 + 5 + 6 + 7 + 8 + 9);
}

TEST(ThreadPool, LowestChunkExceptionPropagates) {
  PoolGuard guard;
  exec::ThreadPool::instance().configure(4);
  // Several chunks throw; the *first* failing chunk's exception must
  // surface regardless of which worker hits which chunk first.
  try {
    exec::parallel_for(0, 1000, 10, [](std::size_t b, std::size_t) {
      if (b >= 300) throw std::runtime_error("chunk@" + std::to_string(b));
    });
    FAIL() << "expected the body's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk@300");
  }
  // The pool must stay usable after a failed region.
  std::atomic<int> ran{0};
  exec::parallel_for(0, 100, 10,
                     [&](std::size_t, std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, NestedRegionsRunInlineAndStaySafe) {
  PoolGuard guard;
  auto& pool = exec::ThreadPool::instance();
  pool.configure(4);
  pool.reset_stats();
  EXPECT_FALSE(exec::ThreadPool::in_parallel_region());

  // 8 outer chunks x 32 inner items; the inner region must not deadlock
  // and must see in_parallel_region() == true.
  std::vector<int> out(8 * 32, 0);
  std::atomic<int> inner_observed{0};
  exec::parallel_for(0, 8, 1, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t o = ob; o < oe; ++o) {
      if (exec::ThreadPool::in_parallel_region()) ++inner_observed;
      exec::parallel_for(0, 32, 4, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          out[o * 32 + i] = static_cast<int>(o * 32 + i);
        }
      });
    }
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
  EXPECT_EQ(inner_observed.load(), 8);
  EXPECT_FALSE(exec::ThreadPool::in_parallel_region());

  const exec::PoolStats s = pool.stats();
  EXPECT_EQ(s.jobs, 1u);
  EXPECT_EQ(s.nested_jobs, 8u);
  EXPECT_EQ(s.chunks, 8u + 8u * 8u);  // outer chunks + 8 inner per outer
}

TEST(ThreadPool, StatsCountChunksAndOccupancy) {
  PoolGuard guard;
  auto& pool = exec::ThreadPool::instance();
  pool.configure(2);
  pool.reset_stats();
  exec::parallel_for(0, 100, 10, [](std::size_t, std::size_t) {});
  const exec::PoolStats s = pool.stats();
  EXPECT_EQ(s.jobs, 1u);
  EXPECT_EQ(s.chunks, 10u);
  EXPECT_EQ(s.threads, 2);
  EXPECT_GT(s.lane_engagements, 0u);
  EXPECT_GE(s.occupancy(), 0.0);
  EXPECT_LE(s.occupancy(), 1.0);
  // Every chunk was either run by the caller or stolen-adjacent on a
  // worker lane; the split varies, the total must not.
  EXPECT_LE(s.caller_chunks, s.chunks);
}

/// Forces exactly one steal of a lane-0 chunk by lane 1, deterministically:
/// with 2 lanes and 4 unit chunks, lane 0 owns {0, 1} and lane 1 owns
/// {2, 3}. Chunk 0's body spins until the other three chunks finished, so
/// whichever thread claims it is parked — the other thread must run its
/// own block and steal the one remaining lane-0 chunk. Either interleaving
/// yields exactly one cross-lane claim of a lane-0 chunk.
void run_one_forced_steal() {
  std::atomic<int> others_done{0};
  exec::parallel_for(0, 4, 1, [&](std::size_t b, std::size_t) {
    if (b == 0) {
      for (int spin = 0; others_done.load() < 3 && spin < 200000; ++spin) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    } else {
      ++others_done;
    }
  });
}

TEST(ThreadPool, StealSplitCountsLocalUnderFlatMap) {
  PoolGuard guard;
  // Force the flat map even when the CI environment sets PRS_NUMA=on.
  numa::ScopedEnable numa_off(false);
  auto& pool = exec::ThreadPool::instance();
  pool.configure(2);
  pool.reset_stats();
  run_one_forced_steal();
  const exec::PoolStats s = pool.stats();
  EXPECT_EQ(s.stolen_chunks, 1u);
  // Flat map: one socket group, so every steal is local by construction.
  EXPECT_EQ(s.sockets, 1);
  EXPECT_EQ(s.steals_local, 1u);
  EXPECT_EQ(s.steals_remote, 0u);
}

TEST(ThreadPool, StealSplitCountsRemoteUnderSyntheticTwoSocketMap) {
  PoolGuard guard;
  auto& pool = exec::ThreadPool::instance();
  pool.configure(2);
  // Two lanes on two different mock sockets: any steal crosses sockets.
  numa::set_topology(numa::Topology::uniform(2, 1));
  numa::set_enabled(true);
  pool.reset_stats();
  run_one_forced_steal();
  exec::PoolStats s = pool.stats();
  EXPECT_EQ(s.sockets, 2);
  EXPECT_EQ(s.stolen_chunks, 1u);
  EXPECT_EQ(s.steals_local, 0u);
  EXPECT_EQ(s.steals_remote, 1u);
  numa::clear_enabled_override();
  numa::clear_topology_override();
  // Totals stay consistent after more (flat) work: stolen = local + remote.
  run_one_forced_steal();
  s = pool.stats();
  EXPECT_EQ(s.stolen_chunks, s.steals_local + s.steals_remote);
}

TEST(ThreadPool, NoStealJobsKeepEveryChunkOnItsOwnLane) {
  PoolGuard guard;
  auto& pool = exec::ThreadPool::instance();
  pool.configure(3);
  pool.reset_stats();
  struct LaneProbe : exec::detail::ParallelJob {
    explicit LaneProbe(std::size_t lanes)
        : ParallelJob(lanes, /*steal_allowed=*/false), seen(lanes, -1) {}
    void run_chunk(std::size_t chunk) override {
      seen[chunk] = exec::ThreadPool::current_lane();
    }
    std::vector<int> seen;
  } job(3);
  pool.run(job);
  const exec::PoolStats s = pool.stats();
  EXPECT_EQ(s.stolen_chunks, 0u);
  EXPECT_EQ(s.steals_local, 0u);
  EXPECT_EQ(s.steals_remote, 0u);
  // chunks == lanes and stealing off: chunk i really ran on lane i.
  for (std::size_t i = 0; i < job.seen.size(); ++i) {
    EXPECT_EQ(job.seen[i], static_cast<int>(i)) << "chunk " << i;
  }
}

TEST(ThreadPool, ReduceIsDeterministicAcrossThreadCounts) {
  PoolGuard guard;
  auto& pool = exec::ThreadPool::instance();
  // Floating-point sum whose value depends on association order: the fixed
  // chunk tree must give bit-equal results for every thread count.
  Rng rng(7);
  std::vector<double> xs(10001);
  for (auto& x : xs) x = rng.uniform() * 1e6 - 5e5;

  auto run = [&] {
    return exec::parallel_reduce(
        0, xs.size(), 64, 0.0,
        [&](std::size_t b, std::size_t e, double acc) {
          for (std::size_t i = b; i < e; ++i) acc += xs[i];
          return acc;
        },
        [](double a, double b) { return a + b; });
  };
  pool.configure(1);
  const double ref = run();
  for (int t : {2, 3, 8}) {
    pool.configure(t);
    for (int rep = 0; rep < 5; ++rep) {
      const double got = run();
      EXPECT_EQ(std::memcmp(&got, &ref, sizeof(double)), 0)
          << "threads=" << t << " rep=" << rep;
    }
  }
}

/// The tentpole acceptance check: full app runs produce byte-identical
/// results for 1, 2 and hardware_concurrency threads.
TEST(ThreadPool, AppResultsAreByteIdenticalForAnyThreadCount) {
  PoolGuard guard;
  auto& pool = exec::ThreadPool::instance();

  Rng rng(42);
  auto ds = data::generate_blobs(rng, 600, 8, 3, 10.0, 1.0);
  auto corpus = std::make_shared<const apps::Corpus>(
      apps::generate_corpus(rng, 400, 8, 200));

  auto run_all = [&] {
    std::uint64_t h = 1469598103934665603ULL;
    apps::CmeansParams cp;
    cp.clusters = 3;
    cp.max_iterations = 8;
    auto cm = apps::cmeans_serial(ds.points, cp);
    h = digest(h, &cm.centers(0, 0), cm.centers.size());
    h = digest(h, &cm.objective, 1);

    apps::GmmParams gp;
    gp.components = 3;
    gp.max_iterations = 8;
    auto gm = apps::gmm_serial(ds.points, gp);
    h = digest(h, &gm.means(0, 0), gm.means.size());
    h = digest(h, &gm.variances(0, 0), gm.variances.size());
    h = digest(h, &gm.log_likelihood, 1);

    // Wordcount through the parallel map kernel (integer counts).
    auto spec = apps::wordcount_spec(corpus);
    core::Emitter<std::string, long> em;
    spec.cpu_map(core::InputSlice{0, corpus->size()}, em);
    for (const auto& [w, c] : em.pairs()) {
      for (const char ch : w) h = (h ^ static_cast<unsigned char>(ch)) *
                                  1099511628211ULL;
      const auto cd = static_cast<double>(c);
      h = digest(h, &cd, 1);
    }
    return h;
  };

  pool.configure(1);
  const std::uint64_t ref = run_all();
  const int hw = exec::ThreadPool::default_threads();
  for (int t : {2, hw}) {
    pool.configure(t);
    EXPECT_EQ(run_all(), ref) << "threads=" << t;
  }
}

}  // namespace
