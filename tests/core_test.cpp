// Tests for the PRS core runtime: input slicing, the two-level scheduler,
// the full map/combine/shuffle/reduce/gather pipeline on simulated clusters,
// scheduling modes, backend selection, and the iterative driver.
#include <gtest/gtest.h>

#include <map>

#include "core/cluster.hpp"
#include "core/iterative.hpp"
#include "core/job_runner.hpp"

namespace prs::core {
namespace {

// -- InputSlice -----------------------------------------------------------------

TEST(InputSlice, SplitAtFraction) {
  InputSlice s{0, 100};
  auto [head, tail] = s.split_at_fraction(0.25);
  EXPECT_EQ(head.begin, 0u);
  EXPECT_EQ(head.end, 25u);
  EXPECT_EQ(tail.begin, 25u);
  EXPECT_EQ(tail.end, 100u);
  auto [all, none] = s.split_at_fraction(1.0);
  EXPECT_EQ(all.size(), 100u);
  EXPECT_TRUE(none.empty());
  EXPECT_THROW(s.split_at_fraction(1.5), InvalidArgument);
}

TEST(InputSlice, SplitRoundsToItems) {
  InputSlice s{10, 13};  // 3 items
  auto [head, tail] = s.split_at_fraction(0.5);
  EXPECT_EQ(head.size() + tail.size(), 3u);
  EXPECT_EQ(head.end, tail.begin);
}

TEST(InputSlice, BlocksCoverExactlyWithoutEmpties) {
  InputSlice s{5, 27};  // 22 items
  for (std::size_t n : {1u, 2u, 3u, 7u, 22u, 50u}) {
    auto bs = s.blocks(n);
    EXPECT_EQ(bs.size(), std::min<std::size_t>(n, 22));
    std::size_t cursor = 5;
    for (const auto& b : bs) {
      EXPECT_EQ(b.begin, cursor);
      EXPECT_FALSE(b.empty());
      cursor = b.end;
    }
    EXPECT_EQ(cursor, 27u);
  }
}

TEST(InputSlice, BlocksOfFixedSize) {
  InputSlice s{0, 10};
  auto bs = s.blocks_of(3);
  ASSERT_EQ(bs.size(), 4u);
  EXPECT_EQ(bs[3].size(), 1u);
  EXPECT_THROW(s.blocks_of(0), InvalidArgument);
}

TEST(InputSlice, EmptySliceHasNoBlocks) {
  InputSlice s{4, 4};
  EXPECT_TRUE(s.blocks(3).empty());
  EXPECT_TRUE(s.blocks_of(2).empty());
}

// -- toy job -----------------------------------------------------------------

/// Toy SPMD app: item i emits (i % kKeys, 1); the reduced output counts
/// items per residue class — exact, order-independent ground truth.
constexpr int kKeys = 5;

MapReduceSpec<int, long> toy_spec(double ai = 50.0, bool cached = false) {
  MapReduceSpec<int, long> spec;
  spec.name = "toy-count";
  spec.cpu_map = [](const InputSlice& s, Emitter<int, long>& e) {
    // Pre-aggregate per task (like the paper's combiner-style mappers):
    // at most kKeys pairs per map task regardless of slice size.
    long counts[kKeys] = {};
    for (std::size_t i = s.begin; i < s.end; ++i) counts[i % kKeys]++;
    for (int k = 0; k < kKeys; ++k) {
      if (counts[k] > 0) e.emit(k, counts[k]);
    }
  };
  spec.combine = [](const long& a, const long& b) { return a + b; };
  spec.cpu_flops_per_item = 100.0;
  spec.gpu_flops_per_item = 100.0;
  spec.ai_cpu = ai;
  spec.ai_gpu = ai;
  spec.gpu_data_cached = cached;
  spec.item_bytes = 8.0;
  spec.pair_bytes = 16.0;
  return spec;
}

std::map<int, long> expected_counts(std::size_t n) {
  std::map<int, long> out;
  for (std::size_t i = 0; i < n; ++i) out[static_cast<int>(i % kKeys)]++;
  return out;
}

TEST(RunJob, SingleNodeProducesExactCounts) {
  sim::Simulator simu;
  Cluster cluster(simu, 1, NodeConfig{});
  auto spec = toy_spec();
  auto res = run_job(cluster, spec, JobConfig{}, 1000);
  EXPECT_EQ(res.output, expected_counts(1000));
  EXPECT_GT(res.stats.elapsed, 0.0);
}

TEST(RunJob, MultiNodeClustersAgreeWithGroundTruth) {
  for (int nodes : {2, 3, 4, 8}) {
    sim::Simulator simu;
    Cluster cluster(simu, nodes, NodeConfig{});
    auto spec = toy_spec();
    auto res = run_job(cluster, spec, JobConfig{}, 3000);
    EXPECT_EQ(res.output, expected_counts(3000)) << nodes << " nodes";
  }
}

TEST(RunJob, DynamicSchedulingSameResultsAsStatic) {
  sim::Simulator simu;
  Cluster cluster(simu, 3, NodeConfig{});
  auto spec = toy_spec();
  JobConfig stat;
  stat.scheduling = SchedulingMode::kStatic;
  JobConfig dyn;
  dyn.scheduling = SchedulingMode::kDynamic;
  auto r1 = run_job(cluster, spec, stat, 2000);
  auto r2 = run_job(cluster, spec, dyn, 2000);
  EXPECT_EQ(r1.output, r2.output);
  EXPECT_EQ(r1.output, expected_counts(2000));
  EXPECT_GT(r2.stats.map_tasks, 0u);
}

TEST(RunJob, CpuOnlyLeavesGpuIdle) {
  sim::Simulator simu;
  Cluster cluster(simu, 2, NodeConfig{});
  auto spec = toy_spec();
  JobConfig cfg;
  cfg.use_gpu = false;
  auto res = run_job(cluster, spec, cfg, 1000);
  EXPECT_EQ(res.output, expected_counts(1000));
  EXPECT_DOUBLE_EQ(res.stats.gpu_flops, 0.0);
  EXPECT_GT(res.stats.cpu_flops, 0.0);
}

TEST(RunJob, GpuOnlyLeavesCpuIdle) {
  sim::Simulator simu;
  Cluster cluster(simu, 2, NodeConfig{});
  auto spec = toy_spec();
  JobConfig cfg;
  cfg.use_cpu = false;
  auto res = run_job(cluster, spec, cfg, 1000);
  EXPECT_EQ(res.output, expected_counts(1000));
  EXPECT_DOUBLE_EQ(res.stats.cpu_flops, 0.0);
  EXPECT_GT(res.stats.gpu_flops, 0.0);
}

TEST(RunJob, RejectsNoBackendsAndEmptyInput) {
  sim::Simulator simu;
  Cluster cluster(simu, 1, NodeConfig{});
  auto spec = toy_spec();
  JobConfig cfg;
  cfg.use_cpu = false;
  cfg.use_gpu = false;
  EXPECT_THROW(run_job(cluster, spec, cfg, 100), InvalidArgument);
  EXPECT_THROW(run_job(cluster, spec, JobConfig{}, 0), InvalidArgument);
}

TEST(RunJob, MapFlopsAccountedOnDevices) {
  sim::Simulator simu;
  Cluster cluster(simu, 2, NodeConfig{});
  auto spec = toy_spec();
  auto res = run_job(cluster, spec, JobConfig{}, 4000);
  const double map_flops = 4000 * 100.0;
  // Total device flops = map flops + small reduce-stage flops.
  EXPECT_GE(res.stats.total_flops(), map_flops);
  EXPECT_LT(res.stats.total_flops(), map_flops * 1.05);
}

TEST(RunJob, FractionOverrideShiftsWork) {
  sim::Simulator simu;
  Cluster cluster(simu, 1, NodeConfig{});
  auto spec = toy_spec();
  JobConfig mostly_cpu;
  mostly_cpu.cpu_fraction_override = 0.9;
  JobConfig mostly_gpu;
  mostly_gpu.cpu_fraction_override = 0.1;
  auto r1 = run_job(cluster, spec, mostly_cpu, 10000);
  auto r2 = run_job(cluster, spec, mostly_gpu, 10000);
  EXPECT_GT(r1.stats.cpu_flops, r2.stats.cpu_flops);
  EXPECT_LT(r1.stats.gpu_flops, r2.stats.gpu_flops);
  EXPECT_EQ(r1.output, r2.output);
  // The shares match the override within block-rounding tolerance.
  EXPECT_NEAR(r1.stats.cpu_flops / (10000 * 100.0), 0.9, 0.02);
}

TEST(RunJob, AnalyticFractionAppliedByDefault) {
  sim::Simulator simu;
  Cluster cluster(simu, 1, NodeConfig{});
  auto spec = toy_spec(/*ai=*/500.0, /*cached=*/true);
  const double p = cluster.scheduler()
                       .workload_split(500.0, /*staged=*/false)
                       .cpu_fraction;
  auto res = run_job(cluster, spec, JobConfig{}, 20000);
  EXPECT_NEAR(res.stats.cpu_flops / (20000 * 100.0), p, 0.02);
}

TEST(RunJob, InputDistributionCostsNetworkTime) {
  auto elapsed_with = [&](bool distribute) {
    sim::Simulator simu;
    Cluster cluster(simu, 4, NodeConfig{});
    auto spec = toy_spec();
    spec.item_bytes = 1e6;  // make staging expensive
    JobConfig cfg;
    cfg.time_input_distribution = distribute;
    auto res = run_job(cluster, spec, cfg, 1000);
    return std::pair(res.stats.elapsed, res.stats.network_bytes);
  };
  auto [t_no, b_no] = elapsed_with(false);
  auto [t_yes, b_yes] = elapsed_with(true);
  EXPECT_GT(t_yes, t_no);
  EXPECT_GT(b_yes, b_no);
}

TEST(RunJob, CachedGpuDataSkipsPerJobStaging) {
  auto pcie_bytes = [&](bool cached) {
    sim::Simulator simu;
    Cluster cluster(simu, 1, NodeConfig{});
    auto spec = toy_spec(50.0, cached);
    auto res = run_job(cluster, spec, JobConfig{}, 5000);
    return res.stats.pcie_bytes;
  };
  // Uncached jobs stage map input over PCI-E; cached jobs only move the
  // small intermediate/reduce traffic.
  EXPECT_GT(pcie_bytes(false), 4.0 * pcie_bytes(true));
}

TEST(RunJob, DeterministicAcrossRuns) {
  auto one = [] {
    sim::Simulator simu;
    Cluster cluster(simu, 3, NodeConfig{});
    auto spec = toy_spec();
    auto res = run_job(cluster, spec, JobConfig{}, 2500);
    return std::tuple(res.stats.elapsed, res.stats.map_tasks,
                      res.output);
  };
  EXPECT_EQ(one(), one());
}

TEST(RunJob, DisablingLocalCombinerKeepsResultsButCostsNetwork) {
  // The paper's combiner() is optional (Table 1): without it every raw
  // pair is shuffled and the reduce stage does all merging.
  auto run = [](bool combine_locally) {
    sim::Simulator simu;
    Cluster cluster(simu, 4, NodeConfig{});
    auto spec = toy_spec();
    spec.local_combine = combine_locally;
    spec.cpu_map = [](const InputSlice& s, Emitter<int, long>& e) {
      for (std::size_t i = s.begin; i < s.end; ++i) {
        e.emit(static_cast<int>(i % kKeys), 1);  // raw, un-aggregated
      }
    };
    return run_job(cluster, spec, JobConfig{}, 4000);
  };
  auto with = run(true);
  auto without = run(false);
  EXPECT_EQ(with.output, expected_counts(4000));
  EXPECT_EQ(without.output, expected_counts(4000));
  // Raw pairs on the wire: far more network traffic and reduce input.
  EXPECT_GT(without.stats.network_bytes, 5.0 * with.stats.network_bytes);
}

TEST(RunJob, ModeledModeChargesTimeWithoutPayloads) {
  sim::Simulator simu;
  Cluster cluster(simu, 1, NodeConfig{});
  auto spec = toy_spec();
  JobConfig cfg;
  cfg.mode = ExecutionMode::kModeled;
  auto res = run_job(cluster, spec, cfg, 100000);
  EXPECT_TRUE(res.output.empty());  // no modeled_map given
  EXPECT_GT(res.stats.elapsed, 0.0);
  EXPECT_GT(res.stats.total_flops(), 0.0);  // time still charged
}

TEST(RunJob, ModeledMapPreservesShape) {
  sim::Simulator simu;
  Cluster cluster(simu, 2, NodeConfig{});
  auto spec = toy_spec();
  spec.modeled_map = [](const InputSlice&, Emitter<int, long>& e) {
    for (int k = 0; k < kKeys; ++k) e.emit(k, 0);
  };
  JobConfig cfg;
  cfg.mode = ExecutionMode::kModeled;
  auto res = run_job(cluster, spec, cfg, 10000);
  EXPECT_EQ(res.output.size(), static_cast<std::size_t>(kKeys));
}

TEST(RunJob, MoreNodesShortenElapsedTime) {
  auto elapsed = [](int nodes) {
    sim::Simulator simu;
    Cluster cluster(simu, nodes, NodeConfig{});
    auto spec = toy_spec();
    JobConfig cfg;
    cfg.charge_job_startup = false;  // isolate the compute scaling
    auto res = run_job(cluster, spec, cfg, 400000);
    return res.stats.elapsed;
  };
  const double t1 = elapsed(1);
  const double t4 = elapsed(4);
  EXPECT_LT(t4, t1);
}

TEST(RunJob, FinalizeTransformsValues) {
  sim::Simulator simu;
  Cluster cluster(simu, 1, NodeConfig{});
  auto spec = toy_spec();
  spec.finalize = [](const int&, long v) { return v * 10; };
  auto res = run_job(cluster, spec, JobConfig{}, 100);
  auto want = expected_counts(100);
  for (auto& [k, v] : want) v *= 10;
  EXPECT_EQ(res.output, want);
}

// -- iterative driver -----------------------------------------------------------

TEST(Iterative, RunsRequestedIterationsAndStops) {
  sim::Simulator simu;
  Cluster cluster(simu, 2, NodeConfig{});
  auto spec = toy_spec(500.0, /*cached=*/true);
  int seen = 0;
  auto res = run_iterative<int, long>(
      cluster, spec, JobConfig{}, 1000, 10,
      [&](int iter, const std::map<int, long>& out) {
        EXPECT_EQ(iter, seen);
        EXPECT_EQ(out, expected_counts(1000));
        ++seen;
        return iter < 3;  // stop after 4 iterations
      },
      /*state_bytes=*/1024.0);
  EXPECT_EQ(res.iterations, 4);
  EXPECT_EQ(seen, 4);
  EXPECT_EQ(res.stats.iterations, 4);
}

TEST(Iterative, CachedDataStagedOnceUpFront) {
  sim::Simulator simu;
  Cluster cluster(simu, 2, NodeConfig{});
  auto spec = toy_spec(500.0, /*cached=*/true);
  spec.item_bytes = 1000.0;
  auto res = run_iterative<int, long>(
      cluster, spec, JobConfig{}, 2000, 3,
      [](int, const std::map<int, long>&) { return true; });
  EXPECT_GT(res.staging_time, 0.0);
  // Iteration-phase PCI-E traffic excludes the map input (cached): only
  // intermediate/reduce traffic remains, far below restaging 3x input.
  EXPECT_LT(res.stats.pcie_bytes, 3 * 2000 * 1000.0 * 0.1);
}

TEST(Iterative, CachedDataMustFitGpuMemory) {
  // A C2070 has 6 GB (Table 4): caching a larger invariant data set must
  // fail loudly at staging time, not corrupt the run.
  sim::Simulator simu;
  Cluster cluster(simu, 1, NodeConfig{});
  auto spec = toy_spec(500.0, /*cached=*/true);
  spec.item_bytes = 1e6;  // 1 MB/item x 10k items = 10 GB > 6 GB
  auto run = [&] {
    (void)run_iterative<int, long>(
        cluster, spec, JobConfig{}, 10000, 2,
        [](int, const std::map<int, long>&) { return true; });
  };
  EXPECT_THROW(run(), ResourceExhausted);
}

TEST(Iterative, CachedAllocationsReleasedAfterRun) {
  sim::Simulator simu;
  Cluster cluster(simu, 1, NodeConfig{});
  auto spec = toy_spec(500.0, /*cached=*/true);
  spec.item_bytes = 1000.0;
  (void)run_iterative<int, long>(
      cluster, spec, JobConfig{}, 1000, 2,
      [](int, const std::map<int, long>&) { return true; });
  EXPECT_EQ(cluster.node(0).gpu(0).memory_used(), 0u);
}

TEST(Iterative, StartupChargedOnlyOnFirstIteration) {
  auto elapsed_for_iters = [](int iters) {
    sim::Simulator simu;
    Cluster cluster(simu, 1, NodeConfig{});
    auto spec = toy_spec(500.0, true);
    auto res = run_iterative<int, long>(
        cluster, spec, JobConfig{}, 1000, iters,
        [](int, const std::map<int, long>&) { return true; });
    return res.stats.elapsed;
  };
  const double t1 = elapsed_for_iters(1);
  const double t2 = elapsed_for_iters(2);
  // If startup were charged per iteration, t2 >= 2 * t1. It must be well
  // below that (startup dominates a tiny job).
  EXPECT_LT(t2, 1.5 * t1);
}

}  // namespace
}  // namespace prs::core
