// Tests for the job-level statistics: per-phase decomposition, utilization
// counters, and their consistency with the pipeline's structure.
#include <gtest/gtest.h>

#include "apps/cmeans.hpp"
#include "apps/wordcount.hpp"
#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/job_runner.hpp"

namespace prs::core {
namespace {

MapReduceSpec<int, long> simple_spec(double flops_per_item = 1000.0) {
  MapReduceSpec<int, long> spec;
  spec.name = "stats-probe";
  spec.cpu_map = [](const InputSlice& s, Emitter<int, long>& e) {
    e.emit(0, static_cast<long>(s.size()));
  };
  spec.combine = [](const long& a, const long& b) { return a + b; };
  spec.cpu_flops_per_item = flops_per_item;
  spec.gpu_flops_per_item = flops_per_item;
  spec.ai_cpu = 50.0;
  spec.ai_gpu = 50.0;
  spec.gpu_data_cached = true;
  spec.item_bytes = 20.0;
  return spec;
}

TEST(PhaseStats, PhasesRoughlySumToElapsed) {
  sim::Simulator sim;
  Cluster cluster(sim, 2, NodeConfig{});
  auto spec = simple_spec();
  auto res = run_job(cluster, spec, JobConfig{}, 100000);
  const auto& s = res.stats;
  const double sum = s.startup_time + s.map_time + s.shuffle_time +
                     s.reduce_time + s.gather_time;
  // Phase maxima are per-node; their sum bounds elapsed from above within
  // the slack of inter-node skew.
  EXPECT_GE(sum, s.elapsed * 0.7);
  EXPECT_LE(s.map_time, s.elapsed);
  EXPECT_GT(s.map_time, 0.0);
  EXPECT_GT(s.shuffle_time, 0.0);
  EXPECT_GT(s.gather_time, 0.0);
}

TEST(PhaseStats, StartupChargeIsVisibleAndSwitchable) {
  auto startup = [](bool charge) {
    sim::Simulator sim;
    Cluster cluster(sim, 1, NodeConfig{});
    auto spec = simple_spec();
    JobConfig cfg;
    cfg.charge_job_startup = charge;
    return run_job(cluster, spec, cfg, 1000).stats.startup_time;
  };
  EXPECT_GT(startup(true), 0.5);  // kPrsJobStartup dominates
  EXPECT_LT(startup(false), 0.01);
}

TEST(PhaseStats, ComputeBoundJobsAreMapDominated) {
  sim::Simulator sim;
  Cluster cluster(sim, 2, NodeConfig{});
  auto spec = simple_spec(/*flops_per_item=*/50000.0);
  JobConfig cfg;
  cfg.charge_job_startup = false;
  auto res = run_job(cluster, spec, cfg, 500000);
  const auto& s = res.stats;
  const double total = s.startup_time + s.map_time + s.shuffle_time +
                       s.reduce_time + s.gather_time;
  EXPECT_GT(s.map_time / total, 0.9);
}

TEST(PhaseStats, WideKeySpaceShiftsTimeIntoShuffle) {
  Rng rng(8);
  auto corpus = std::make_shared<const apps::Corpus>(
      apps::generate_corpus(rng, 5000, 8, 3000));
  sim::Simulator sim;
  Cluster cluster(sim, 4, NodeConfig{});
  JobConfig cfg;
  cfg.charge_job_startup = false;
  JobStats s;
  (void)apps::wordcount_prs(cluster, corpus, cfg, &s);
  // Thousands of string keys: the shuffle+gather share is substantial.
  const double total = s.startup_time + s.map_time + s.shuffle_time +
                       s.reduce_time + s.gather_time;
  EXPECT_GT((s.shuffle_time + s.gather_time) / total, 0.2);
}

TEST(PhaseStats, IterativeAccumulatesPhaseTimes) {
  sim::Simulator sim;
  Cluster cluster(sim, 2, NodeConfig{});
  apps::CmeansParams p;
  p.clusters = 5;
  p.max_iterations = 4;
  JobConfig cfg;
  cfg.charge_job_startup = false;
  auto stats = apps::cmeans_prs_modeled(cluster, 100000, 50, p, cfg);
  EXPECT_EQ(stats.iterations, 4);
  EXPECT_GT(stats.map_time, 0.0);
  // Four iterations of map work: per-iteration map time times 4, roughly.
  EXPECT_GT(stats.map_time, 3.0 * stats.map_time / 4.0);
}

TEST(UtilizationStats, BusyTimeNeverExceedsElapsedTimesCapacity) {
  sim::Simulator sim;
  Cluster cluster(sim, 2, NodeConfig{});
  auto spec = simple_spec();
  JobConfig cfg;
  cfg.charge_job_startup = false;
  auto res = run_job(cluster, spec, cfg, 200000);
  const auto& s = res.stats;
  // 2 nodes x 12 cores.
  EXPECT_LE(s.cpu_busy, s.elapsed * 24.0 * 1.001);
  // 2 nodes x 1 GPU compute engine.
  EXPECT_LE(s.gpu_busy, s.elapsed * 2.0 * 1.001);
}

TEST(UtilizationStats, PcieTrafficMatchesIntermediateVolume) {
  sim::Simulator sim;
  Cluster cluster(sim, 1, NodeConfig{});
  auto spec = simple_spec();
  spec.gpu_data_cached = true;      // no input staging
  spec.gpu_item_d2h_bytes = 4.0;    // only the per-item D2H remains
  spec.pair_bytes = 0.5;
  JobConfig cfg;
  cfg.use_cpu = false;  // all items through the GPU
  cfg.charge_job_startup = false;
  auto res = run_job(cluster, spec, cfg, 10000);
  // D2H = items * 4 + pairs * 0.5 + reduce round trip (pairs-based, small).
  EXPECT_NEAR(res.stats.pcie_bytes, 10000 * 4.0, 10000 * 4.0 * 0.05);
}

TEST(UtilizationStats, NetworkBytesZeroOnSingleNode) {
  sim::Simulator sim;
  Cluster cluster(sim, 1, NodeConfig{});
  auto spec = simple_spec();
  auto res = run_job(cluster, spec, JobConfig{}, 5000);
  EXPECT_DOUBLE_EQ(res.stats.network_bytes, 0.0);  // loopback is free
}

TEST(UtilizationStats, NetworkBytesGrowWithClusterSize) {
  auto net = [](int nodes) {
    sim::Simulator sim;
    Cluster cluster(sim, nodes, NodeConfig{});
    MapReduceSpec<int, long> spec = simple_spec();
    // Many keys so the shuffle actually moves data.
    spec.cpu_map = [](const InputSlice& s, Emitter<int, long>& e) {
      for (std::size_t i = s.begin; i < s.end; ++i) {
        e.emit(static_cast<int>(i % 100), 1);
      }
    };
    spec.pair_bytes = 64.0;
    return run_job(cluster, spec, JobConfig{}, 20000).stats.network_bytes;
  };
  EXPECT_GT(net(4), net(2));
  EXPECT_GT(net(2), 0.0);
}

}  // namespace
}  // namespace prs::core
